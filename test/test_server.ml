(* Tests for the event-driven server runtime: the Evq readiness engine's
   epoll semantics (against scripted fake sockets), the HTTP incremental
   parser, and deterministic end-to-end load runs over both stacks. *)

open Uls_engine
module Evq = Uls_server.Evq
module Sched = Uls_server.Sched
module Http = Uls_apps.Http
module Load = Uls_bench.Load
module Chaos = Uls_bench.Chaos

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* A scripted socket: [readable] reads a ref, [fire] invokes the
   installed watchers — the minimal contract Evq builds on. *)
type fake = {
  mutable f_readable : bool;
  mutable f_watchers : (unit -> unit) list;
}

let fake ?(readable = false) () = { f_readable = readable; f_watchers = [] }
let fire f = List.iter (fun w -> w ()) f.f_watchers

let register q ?mode f payload =
  Evq.register q ?mode
    ~readable:(fun () -> f.f_readable)
    ~watch:(fun w -> f.f_watchers <- w :: f.f_watchers)
    payload

(* --- Evq semantics ---------------------------------------------------- *)

let test_empty_interest_set () =
  let sim = Sim.create () in
  let q = Evq.create sim ~node:0 in
  let got = ref None in
  Sim.spawn sim (fun () -> got := Some (Evq.wait q));
  Sim.spawn sim (fun () ->
      Sim.delay sim (Time.us 10);
      Evq.kick q);
  ignore (Sim.run sim);
  check_bool "wait returned" true (!got <> None);
  check_int "kick returns empty batch" 0 (List.length (Option.get !got));
  check_int "nothing registered" 0 (Evq.registered q)

let test_register_already_readable () =
  let sim = Sim.create () in
  let q = Evq.create sim ~node:0 in
  let f = fake ~readable:true () in
  let batches = ref [] in
  Sim.spawn sim (fun () ->
      ignore (register q f "a");
      batches := Evq.wait q :: !batches);
  ignore (Sim.run sim);
  (* EPOLL_CTL_ADD on a readable fd delivers without any event. *)
  check_bool "delivered immediately" true (!batches = [ [ "a" ] ])

let test_level_redelivers_undrained () =
  let sim = Sim.create () in
  let q = Evq.create sim ~node:0 in
  let f = fake () in
  let batches = ref [] in
  Sim.spawn sim (fun () ->
      ignore (register q ~mode:Evq.Level f "a");
      f.f_readable <- true;
      fire f;
      (* Consumer never drains: level triggering must redeliver. *)
      batches := Evq.wait q :: !batches;
      batches := Evq.wait q :: !batches);
  ignore (Sim.run sim);
  check_bool "redelivered while readable" true
    (!batches = [ [ "a" ]; [ "a" ] ])

let test_edge_delivers_once () =
  let sim = Sim.create () in
  let q = Evq.create sim ~node:0 in
  let f = fake () in
  let batches = ref [] in
  Sim.spawn sim (fun () ->
      ignore (register q ~mode:Evq.Edge f "a");
      f.f_readable <- true;
      fire f;
      batches := Evq.wait q :: !batches;
      (* Still readable but no new event: edge must NOT redeliver. *)
      batches := Evq.wait q :: !batches);
  Sim.spawn sim (fun () ->
      Sim.delay sim (Time.ms 1);
      Evq.kick q);
  ignore (Sim.run sim);
  check_bool "one delivery then the kick's empty batch" true
    (!batches = [ []; [ "a" ] ])

let test_edge_rearm_after_partial_drain () =
  let sim = Sim.create () in
  let q = Evq.create sim ~node:0 in
  let f = fake () in
  let batches = ref [] in
  Sim.spawn sim (fun () ->
      let h = register q ~mode:Evq.Edge f "a" in
      f.f_readable <- true;
      fire f;
      batches := Evq.wait q :: !batches;
      (* The consumer stopped mid-drain (socket still readable) and
         knows it: rearm recovers the remaining buffered data. *)
      Evq.rearm h;
      batches := Evq.wait q :: !batches);
  ignore (Sim.run sim);
  check_bool "rearm redelivered" true (!batches = [ [ "a" ]; [ "a" ] ])

let test_modify_edge_to_level_recovers () =
  let sim = Sim.create () in
  let q = Evq.create sim ~node:0 in
  let f = fake () in
  let batches = ref [] in
  Sim.spawn sim (fun () ->
      let h = register q ~mode:Evq.Edge f "a" in
      f.f_readable <- true;
      fire f;
      batches := Evq.wait q :: !batches;
      Evq.modify h Evq.Level;
      batches := Evq.wait q :: !batches);
  ignore (Sim.run sim);
  check_bool "switch to level re-checks readiness" true
    (!batches = [ [ "a" ]; [ "a" ] ])

let test_deregister_while_ready () =
  let sim = Sim.create () in
  let q = Evq.create sim ~node:0 in
  let f = fake () in
  let g = fake () in
  let batches = ref [] in
  Sim.spawn sim (fun () ->
      let h = register q f "dead" in
      ignore (register q g "live");
      f.f_readable <- true;
      fire f;
      g.f_readable <- true;
      fire g;
      (* "dead" is queued; deregistering now must discard it. *)
      Evq.deregister h;
      Evq.deregister h (* idempotent *);
      batches := Evq.wait q :: !batches);
  ignore (Sim.run sim);
  check_bool "queued handle discarded" true (!batches = [ [ "live" ] ]);
  check_int "registration count" 1 (Evq.registered q)

let test_level_spurious_counted () =
  let sim = Sim.create () in
  let q = Evq.create sim ~node:0 in
  let f = fake () in
  let g = fake () in
  let batches = ref [] in
  Sim.spawn sim (fun () ->
      ignore (register q ~mode:Evq.Level f "gone");
      ignore (register q g "live");
      f.f_readable <- true;
      fire f;
      g.f_readable <- true;
      fire g;
      (* Drained by someone else before delivery: the epoll spurious
         wake-up. *)
      f.f_readable <- false;
      batches := Evq.wait q :: !batches);
  ignore (Sim.run sim);
  check_bool "only live handle delivered" true (!batches = [ [ "live" ] ]);
  check_int "spurious counted" 1
    (Metrics.counter_value (Metrics.for_sim sim) ~node:0 "server.evq.spurious")

let test_batch_order_oldest_first () =
  let sim = Sim.create () in
  let q = Evq.create sim ~node:0 in
  let fs = Array.init 3 (fun _ -> fake ()) in
  let batches = ref [] in
  Sim.spawn sim (fun () ->
      Array.iteri (fun i f -> ignore (register q f i)) fs;
      Array.iter
        (fun f ->
          f.f_readable <- true;
          fire f)
        fs;
      batches := Evq.wait q :: !batches);
  ignore (Sim.run sim);
  check_bool "one batch, event order" true (!batches = [ [ 0; 1; 2 ] ])

(* --- readiness from the real stacks ----------------------------------- *)

(* A peer-closed stream must become readable (EOF is a read event —
   level-triggered epoll reports it until consumed), and the watcher
   must fire for it. *)
let readiness_on_peer_close api c =
  let sim = Uls_bench.Cluster.sim c in
  let q = Evq.create sim ~node:0 in
  let eof = ref None in
  Sim.spawn sim (fun () ->
      (* listen posts descriptors, so it must run inside a fiber *)
      let l = api.Uls_api.Sockets_api.listen ~node:0 ~port:80 ~backlog:4 in
      let s, _ = l.accept () in
      ignore
        (Evq.register q ~readable:s.readable ~watch:s.watch ());
      (match Evq.wait q with
      | [ () ] -> eof := Some (s.recv 4096)
      | _ -> ());
      l.close_listener ());
  Sim.spawn sim (fun () ->
      let s = api.connect ~node:1 { node = 0; port = 80 } in
      Sim.delay sim (Time.ms 1);
      s.close ());
  ignore (Uls_bench.Cluster.run c);
  check_bool "watcher fired on peer close" true (!eof <> None);
  check_str "recv returned EOF" "" (Option.get !eof)

let test_peer_close_readiness_sub () =
  let c = Uls_bench.Cluster.create ~n:2 () in
  readiness_on_peer_close
    (Uls_bench.Cluster.substrate_api ~opts:Uls_substrate.Options.server c)
    c

let test_peer_close_readiness_tcp () =
  let c = Uls_bench.Cluster.create ~n:2 () in
  readiness_on_peer_close (Uls_bench.Cluster.tcp_api c) c

(* --- scheduler --------------------------------------------------------- *)

(* Fairness under a hot neighbor: one worker, one connection with far
   more traffic than the rest. One-chunk-per-dispatch with tail requeue
   must keep serving the quiet connections throughout. *)
let test_scheduler_fairness_hot_neighbor () =
  let c = Uls_bench.Cluster.create ~n:2 () in
  let sim = Uls_bench.Cluster.sim c in
  let api =
    Uls_bench.Cluster.substrate_api ~opts:Uls_substrate.Options.server c
  in
  let server = ref None in
  Sim.spawn sim (fun () ->
      server :=
        Some
          (Uls_server.Server.start sim api ~node:0 ~port:80 ~backlog:8
             ~config:{ Sched.default_config with workers = 1 }
             Uls_server.Server.Echo));
  let hot_done = ref 0 and quiet_done = ref 0 in
  let request s payload =
    s.Uls_api.Sockets_api.send payload;
    Uls_api.Sockets_api.recv_exact s (String.length payload)
  in
  Sim.spawn sim (fun () ->
      let s = api.connect ~node:1 { node = 0; port = 80 } in
      for _ = 1 to 50 do
        ignore (request s (String.make 256 'h'));
        incr hot_done
      done;
      s.close ());
  for i = 1 to 4 do
    Sim.spawn sim (fun () ->
        Sim.delay sim (Time.ms i);
        let s = api.connect ~node:1 { node = 0; port = 80 } in
        for _ = 1 to 5 do
          ignore (request s (String.make 64 'q'));
          incr quiet_done
        done;
        s.close ())
  done;
  Sim.spawn sim (fun () ->
      Sim.delay sim (Time.s 30);
      match !server with Some s -> Uls_server.Server.stop s | None -> ());
  ignore (Uls_bench.Cluster.run ~until:(Time.s 40) c);
  check_int "hot connection served" 50 !hot_done;
  check_int "quiet connections served despite hot neighbor" 20 !quiet_done

let test_scheduler_admission_control () =
  let c = Uls_bench.Cluster.create ~n:2 () in
  let sim = Uls_bench.Cluster.sim c in
  let api =
    Uls_bench.Cluster.substrate_api ~opts:Uls_substrate.Options.server c
  in
  let server = ref None in
  Sim.spawn sim (fun () ->
      server :=
        Some
          (Uls_server.Server.start sim api ~node:0 ~port:80 ~backlog:16
             ~config:
               {
                 Sched.default_config with
                 max_inflight = 2;
                 reject = Some Uls_server.Server.http_reject;
               }
             (Uls_server.Server.Http 64)));
  let admitted = ref 0 and rejected = ref 0 in
  for i = 0 to 5 do
    Sim.spawn sim (fun () ->
        (* Near-simultaneous arrivals, so the first two hold the
           inflight budget while the rest hit the shed path. *)
        Sim.delay sim (Time.us (10 * i));
        let s = api.connect ~node:1 { node = 0; port = 80 } in
        let p = Http.Response_parser.create () in
        let rec first () =
          match Http.Response_parser.feed p (s.recv 4096) with
          | r :: _ -> r
          | [] -> first ()
        in
        (try
           s.send
             (Http.format_request
                {
                  Http.meth = "GET";
                  path = "/";
                  version = "HTTP/1.1";
                  req_headers = [];
                  req_body = "";
                });
           match (first ()).Http.status with
           | 503 -> incr rejected
           | 200 -> incr admitted
           | _ -> ()
         with _ ->
           (* sending into the shed conn's close can race: that is
              still an explicit refusal, not silence *)
           incr rejected);
        s.close ())
  done;
  Sim.spawn sim (fun () ->
      Sim.delay sim (Time.s 10);
      match !server with Some s -> Uls_server.Server.stop s | None -> ());
  ignore (Uls_bench.Cluster.run ~until:(Time.s 20) c);
  check_int "all connections answered" 6 (!admitted + !rejected);
  check_bool "admission control shed some" true (!rejected > 0);
  check_bool "admission control admitted some" true (!admitted > 0)

(* --- HTTP incremental parsing ------------------------------------------ *)

let req ?(version = "HTTP/1.1") ?(headers = []) ?(body = "") path =
  Http.format_request
    {
      Http.meth = "GET";
      path;
      version;
      req_headers = headers;
      req_body = body;
    }

let test_parser_byte_by_byte () =
  let p = Http.Parser.create () in
  let wire = req ~body:"hello body" "/x" in
  let got = ref [] in
  String.iter
    (fun ch -> got := !got @ Http.Parser.feed p (String.make 1 ch))
    wire;
  match !got with
  | [ r ] ->
    check_str "path" "/x" r.Http.path;
    check_str "body survived short reads" "hello body" r.Http.req_body;
    check_int "nothing buffered" 0 (Http.Parser.buffered p)
  | rs -> Alcotest.failf "expected 1 request, got %d" (List.length rs)

let test_parser_pipelined_single_feed () =
  let p = Http.Parser.create () in
  let wire = req "/a" ^ req ~body:"b" "/b" ^ req "/c" in
  let rs = Http.Parser.feed p wire in
  check_int "three pipelined requests" 3 (List.length rs);
  check_bool "paths in order" true
    (List.map (fun r -> r.Http.path) rs = [ "/a"; "/b"; "/c" ])

let test_parser_split_across_body () =
  let p = Http.Parser.create () in
  let wire = req ~body:"0123456789" "/split" in
  let cut = String.length wire - 4 in
  check_int "incomplete: nothing yet" 0
    (List.length (Http.Parser.feed p (String.sub wire 0 cut)));
  match Http.Parser.feed p (String.sub wire cut 4) with
  | [ r ] -> check_str "body reassembled" "0123456789" r.Http.req_body
  | rs -> Alcotest.failf "expected 1 request, got %d" (List.length rs)

let test_keep_alive_rules () =
  let mk version headers =
    match Http.Parser.feed (Http.Parser.create ()) (req ~version ~headers "/") with
    | [ r ] -> r
    | _ -> Alcotest.fail "parse failed"
  in
  check_bool "1.1 default on" true (Http.keep_alive (mk "HTTP/1.1" []));
  check_bool "1.1 close off" false
    (Http.keep_alive (mk "HTTP/1.1" [ ("connection", "close") ]));
  check_bool "1.0 default off" false (Http.keep_alive (mk "HTTP/1.0" []));
  check_bool "1.0 keep-alive on" true
    (Http.keep_alive (mk "HTTP/1.0" [ ("connection", "keep-alive") ]))

let test_parser_bad_framing () =
  let bad wire =
    try
      ignore (Http.Parser.feed (Http.Parser.create ()) wire);
      false
    with Http.Bad_request _ -> true
  in
  check_bool "garbage start line" true (bad "not an http request\r\n\r\n");
  check_bool "bad content-length" true
    (bad "GET / HTTP/1.1\r\ncontent-length: banana\r\n\r\n")

let test_parser_header_cap () =
  let p = Http.Parser.create ~max_header_bytes:64 () in
  check_bool "oversized headers rejected" true
    (try
       ignore (Http.Parser.feed p ("GET /" ^ String.make 100 'a' ^ " HT"));
       false
     with Http.Bad_request _ -> true)

let test_response_roundtrip () =
  let body = Http.body_for ~size:300 in
  let wire =
    Http.format_response
      {
        Http.status = 200;
        reason = "OK";
        resp_version = "HTTP/1.1";
        resp_headers = [ ("connection", "keep-alive") ];
        resp_body = body;
      }
  in
  let p = Http.Response_parser.create () in
  let half = String.length wire / 2 in
  let first = Http.Response_parser.feed p (String.sub wire 0 half) in
  let second =
    Http.Response_parser.feed p
      (String.sub wire half (String.length wire - half))
  in
  match first @ second with
  | [ r ] ->
    check_int "status" 200 r.Http.status;
    check_str "body" body r.Http.resp_body;
    check_bool "content-length set" true
      (Http.header r.Http.resp_headers "content-length" = Some "300")
  | _ -> Alcotest.fail "expected exactly one response"

(* --- end-to-end load runs ---------------------------------------------- *)

let small_cfg kind workload =
  {
    Load.default with
    kind;
    workload;
    conns = 16;
    requests_per_conn = 2;
    size = 128;
    client_nodes = 2;
    backlog = 16;
  }

let check_clean label (r : Load.report) =
  check_bool (label ^ " quiesced") true r.completed_run;
  check_bool (label ^ " intact") true r.intact;
  check_int (label ^ " completed") 32 r.completed;
  check_int (label ^ " peak open") 16 r.peak_open;
  check_int (label ^ " server agrees") 32 r.server_requests

let test_load_echo_substrate_deterministic () =
  let cfg =
    small_cfg (Chaos.Sub Uls_substrate.Options.server) Load.Echo
  in
  let a = Load.run cfg in
  let b = Load.run cfg in
  check_clean "echo/sub" a;
  check_bool "deterministic report" true (a = b)

let test_load_http_tcp_deterministic () =
  let cfg = small_cfg (Chaos.Tcp Uls_tcp.Config.default) Load.Http in
  let a = Load.run cfg in
  let b = Load.run cfg in
  check_clean "http/tcp" a;
  check_bool "deterministic report" true (a = b)

let test_load_open_loop () =
  let cfg =
    {
      (small_cfg (Chaos.Sub Uls_substrate.Options.server) Load.Echo) with
      loop = Load.Open 20_000.;
    }
  in
  let r = Load.run cfg in
  check_bool "open loop quiesced" true r.completed_run;
  check_bool "open loop intact" true r.intact;
  check_int "open loop completed" 32 r.completed

(* The event engine's core claim: wake-ups track events, not registered
   sockets — and the server path never touches the O(n) select scan. *)
let test_evq_wakeups_scale_with_events () =
  let r =
    Load.run (small_cfg (Chaos.Sub Uls_substrate.Options.server) Load.Echo)
  in
  check_bool "no select scans on the event-driven path" true
    (r.select_streams_scanned = 0);
  (* 16 conns x (1 accept + 2 requests + 1 eof) events, plus credit/ack
     noise: anything within a small constant factor is O(events); a
     per-wakeup scan of all 16 conns would be an order of magnitude up. *)
  check_bool
    (Printf.sprintf "wakeups bounded by events (%d)" r.evq_wakeups)
    true
    (r.evq_wakeups > 0 && r.evq_wakeups <= 16 * 4 * 4)

let suites =
  [
    ( "server.evq",
      [
        Alcotest.test_case "empty interest set" `Quick test_empty_interest_set;
        Alcotest.test_case "register already-readable" `Quick
          test_register_already_readable;
        Alcotest.test_case "level redelivers undrained" `Quick
          test_level_redelivers_undrained;
        Alcotest.test_case "edge delivers once" `Quick test_edge_delivers_once;
        Alcotest.test_case "edge rearm after partial drain" `Quick
          test_edge_rearm_after_partial_drain;
        Alcotest.test_case "modify edge->level recovers" `Quick
          test_modify_edge_to_level_recovers;
        Alcotest.test_case "deregister while ready" `Quick
          test_deregister_while_ready;
        Alcotest.test_case "level spurious counted" `Quick
          test_level_spurious_counted;
        Alcotest.test_case "batch order oldest first" `Quick
          test_batch_order_oldest_first;
        Alcotest.test_case "peer-close readiness (substrate)" `Quick
          test_peer_close_readiness_sub;
        Alcotest.test_case "peer-close readiness (tcp)" `Quick
          test_peer_close_readiness_tcp;
      ] );
    ( "server.sched",
      [
        Alcotest.test_case "fairness under hot neighbor" `Quick
          test_scheduler_fairness_hot_neighbor;
        Alcotest.test_case "admission control sheds" `Quick
          test_scheduler_admission_control;
      ] );
    ( "server.http",
      [
        Alcotest.test_case "byte-by-byte feeds" `Quick test_parser_byte_by_byte;
        Alcotest.test_case "pipelined single feed" `Quick
          test_parser_pipelined_single_feed;
        Alcotest.test_case "split across body" `Quick
          test_parser_split_across_body;
        Alcotest.test_case "keep-alive rules" `Quick test_keep_alive_rules;
        Alcotest.test_case "bad framing" `Quick test_parser_bad_framing;
        Alcotest.test_case "header cap" `Quick test_parser_header_cap;
        Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
      ] );
    ( "server.load",
      [
        Alcotest.test_case "echo over substrate, deterministic" `Quick
          test_load_echo_substrate_deterministic;
        Alcotest.test_case "http over tcp, deterministic" `Quick
          test_load_http_tcp_deterministic;
        Alcotest.test_case "open loop" `Quick test_load_open_loop;
        Alcotest.test_case "evq wakeups scale with events" `Quick
          test_evq_wakeups_scale_with_events;
      ] );
  ]
