(* Tests for the sharded serving fabric: the consistent-hash ring's
   placement contract (balance, minimal disruption on membership change,
   order-independence), the SO_REUSEPORT steering hash, and fleet-scale
   end-to-end runs over both stacks — clean, kill-mid-load, and
   drain-mid-load — including schedule-independence of the report. *)

open Uls_engine
module Ring = Uls_fabric.Ring
module Reuseport = Uls_server.Reuseport
module Fleet = Uls_bench.Fleet
module Chaos = Uls_bench.Chaos

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- consistent-hash ring --------------------------------------------- *)

let keys n = List.init n (fun i -> i)

let owners ring ks =
  List.map (fun k -> (k, Option.get (Ring.lookup ring ~key:k))) ks

let full_ring ~seed cells =
  let ring = Ring.create ~seed () in
  for c = 0 to cells - 1 do
    Ring.add ring c
  done;
  ring

let test_ring_balance () =
  let cells = 8 and n = 100_000 in
  let ring = full_ring ~seed:3 cells in
  let counts = Array.make cells 0 in
  List.iter
    (fun (_, c) -> counts.(c) <- counts.(c) + 1)
    (owners ring (keys n));
  let ideal = float_of_int n /. float_of_int cells in
  Array.iteri
    (fun c got ->
      let ratio = float_of_int got /. ideal in
      check_bool
        (Printf.sprintf "cell %d share %.2fx ideal within 30%%" c ratio)
        true
        (ratio > 0.7 && ratio < 1.3))
    counts

let test_ring_remove_minimal_disruption () =
  let cells = 8 and n = 50_000 in
  let ring = full_ring ~seed:5 cells in
  let before = owners ring (keys n) in
  Ring.remove ring 3;
  let moved = ref 0 in
  List.iter
    (fun (k, old) ->
      let now = Option.get (Ring.lookup ring ~key:k) in
      if old = 3 then begin
        check_bool "victim's key remapped" true (now <> 3);
        incr moved
      end
      else check_int "survivor's key stayed" old now)
    before;
  (* Only the victim's keys moved, so the moved fraction is the victim's
     share: ~1/8 of all keys (within the ring's balance tolerance). *)
  let frac = float_of_int !moved /. float_of_int n in
  check_bool
    (Printf.sprintf "moved fraction %.3f ~ 1/8" frac)
    true
    (frac > 0.08 && frac < 0.17)

let test_ring_add_moves_only_to_newcomer () =
  let cells = 8 and n = 50_000 in
  let ring = full_ring ~seed:7 cells in
  let before = owners ring (keys n) in
  Ring.add ring cells;
  let moved = ref 0 in
  List.iter
    (fun (k, old) ->
      let now = Option.get (Ring.lookup ring ~key:k) in
      if now <> old then begin
        check_int "moved key landed on the newcomer" cells now;
        incr moved
      end)
    before;
  let frac = float_of_int !moved /. float_of_int n in
  check_bool
    (Printf.sprintf "moved fraction %.3f ~ 1/9" frac)
    true
    (frac > 0.06 && frac < 0.16)

let test_ring_order_independent () =
  let a = Ring.create ~seed:9 () and b = Ring.create ~seed:9 () in
  List.iter (Ring.add a) [ 0; 1; 2; 3; 4 ];
  List.iter (Ring.add b) [ 4; 2; 0; 3; 1 ];
  List.iter
    (fun k ->
      check_bool "same owner regardless of insertion order" true
        (Ring.lookup a ~key:k = Ring.lookup b ~key:k))
    (keys 10_000);
  check_bool "members ascending" true (Ring.members a = [ 0; 1; 2; 3; 4 ])

let test_ring_empty_and_idempotent () =
  let r = Ring.create () in
  check_bool "empty ring has no owner" true (Ring.lookup r ~key:7 = None);
  Ring.add r 1;
  Ring.add r 1;
  check_int "add idempotent" 1 (Ring.size r);
  Ring.remove r 1;
  Ring.remove r 1;
  check_int "remove idempotent" 0 (Ring.size r);
  check_bool "empty again" true (Ring.lookup r ~key:7 = None)

(* --- SO_REUSEPORT steering hash ---------------------------------------- *)

let test_steering_hash_spread_and_affinity () =
  let shards = 4 in
  let counts = Array.make shards 0 in
  for node = 0 to 1023 do
    let addr = { Uls_api.Sockets_api.node; port = 1_000 + (node mod 7) } in
    let s = Reuseport.default_hash addr mod shards in
    (* Flow affinity: the same peer address always steers the same way. *)
    check_int "deterministic steering" s (Reuseport.default_hash addr mod shards);
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "shard %d fed (%d/1024)" i c)
        true
        (c > 1024 / shards / 2))
    counts

(* --- fleet end-to-end -------------------------------------------------- *)

let small ?(kind = Chaos.Sub Uls_substrate.Options.server) () =
  {
    Fleet.default with
    kind;
    cells = 3;
    shards = 2;
    conns = 48;
    rate = 20_000.;
    size = 64;
    client_nodes = 3;
    seed = 7;
  }

let check_clean label (r : Fleet.report) =
  check_bool (label ^ " quiesced") true r.Fleet.completed_run;
  check_bool (label ^ " intact") true r.Fleet.intact;
  check_int (label ^ " established") 48 r.Fleet.established;
  check_int (label ^ " completed") 96 r.Fleet.completed;
  check_int (label ^ " failures") 0
    (r.Fleet.shed + r.Fleet.refused + r.Fleet.resets + r.Fleet.errors
   + r.Fleet.mismatches + r.Fleet.no_route);
  check_bool (label ^ " flows spread over every cell") true
    (Array.for_all (fun c -> c.Fleet.c_connects > 0) r.Fleet.per_cell)

let test_fleet_substrate_deterministic () =
  let cfg = small () in
  let a = Fleet.run cfg in
  let b = Fleet.run cfg in
  check_clean "fleet/sub" a;
  check_bool "deterministic report" true (a = b)

let test_fleet_tcp () = check_clean "fleet/tcp" (Fleet.run (small ~kind:(Chaos.Tcp Uls_tcp.Config.default) ()))

let test_fleet_reuseport_fanout () =
  let steered = ref 0 in
  let cfg =
    { (small ()) with cells = 1; shards = 4; conns = 64; client_nodes = 4 }
  in
  let r =
    Fleet.run
      ~on_metrics:(fun m ->
        steered := Metrics.counter_value m ~node:0 "server.reuseport.steered")
      cfg
  in
  check_bool "quiesced" true r.Fleet.completed_run;
  check_bool "intact" true r.Fleet.intact;
  (* Every accepted connection (clients and health probes) went through
     the reuseport demux to a shard. *)
  check_bool
    (Printf.sprintf "demux steered >= established (%d >= %d)" !steered
       r.Fleet.established)
    true
    (!steered >= r.Fleet.established)

let check_failover label (r : Fleet.report) ~killed =
  check_bool (label ^ " quiesced") true r.Fleet.completed_run;
  check_bool (label ^ " intact") true r.Fleet.intact;
  check_bool (label ^ " ring healed") true (r.Fleet.healed_at_ms >= 0.);
  check_str (label ^ " killed cell down") "down"
    r.Fleet.per_cell.(killed).Fleet.c_state;
  Array.iteri
    (fun id c ->
      if id <> killed then
        check_int
          (Printf.sprintf "%s survivor cell %d clean" label id)
          0
          (c.Fleet.c_resets + c.Fleet.c_refused + c.Fleet.c_errors))
    r.Fleet.per_cell

let kill_cfg kind =
  (* Arrivals span ~32 ms at 2000/s, so the 8 ms kill lands mid-load
     with flows still arriving for the dead cell's key range. *)
  {
    (small ~kind ()) with
    conns = 64;
    rate = 2_000.;
    kill = Some (1, Time.ms 8);
  }

let test_fleet_kill_failover_tcp () =
  check_failover "kill/tcp"
    (Fleet.run (kill_cfg (Chaos.Tcp Uls_tcp.Config.default)))
    ~killed:1

let test_fleet_kill_failover_substrate () =
  check_failover "kill/sub"
    (Fleet.run (kill_cfg (Chaos.Sub Uls_substrate.Options.server)))
    ~killed:1

let test_fleet_drain () =
  let cfg =
    { (small ()) with conns = 64; rate = 2_000.; drain = Some (0, Time.ms 8) }
  in
  let r = Fleet.run cfg in
  check_bool "quiesced" true r.Fleet.completed_run;
  check_bool "intact" true r.Fleet.intact;
  check_bool "drain completed" true (r.Fleet.drained_at_ms >= 0.);
  check_str "cell drained" "drained" r.Fleet.per_cell.(0).Fleet.c_state;
  (* Draining is graceful: nothing breaks anywhere. *)
  check_int "no failures" 0
    (r.Fleet.resets + r.Fleet.refused + r.Fleet.errors + r.Fleet.shed)

(* The report's schedule-independent facts must not change when
   same-timestamp dispatch order is perturbed — the race detector's
   discipline applied to the whole fabric. *)
let test_fleet_schedule_independent () =
  let base = small () in
  let facts (r : Fleet.report) =
    ( r.Fleet.established,
      r.Fleet.completed,
      r.Fleet.shed + r.Fleet.refused + r.Fleet.resets + r.Fleet.errors,
      r.Fleet.mismatches,
      r.Fleet.remapped,
      r.Fleet.no_route,
      Array.map
        (fun c -> (c.Fleet.c_state, c.Fleet.c_connects, c.Fleet.c_completed))
        r.Fleet.per_cell )
  in
  let fifo = facts (Fleet.run { base with tiebreak = Some `Fifo }) in
  for s = 0 to 2 do
    let p =
      facts (Fleet.run { base with tiebreak = Some (`Seeded_shuffle s) })
    in
    check_bool (Printf.sprintf "shuffle seed %d matches fifo" s) true
      (p = fifo)
  done

let suites =
  [
    ( "fabric.ring",
      [
        Alcotest.test_case "balance across cells" `Quick test_ring_balance;
        Alcotest.test_case "remove: minimal disruption" `Quick
          test_ring_remove_minimal_disruption;
        Alcotest.test_case "add: moves only to newcomer" `Quick
          test_ring_add_moves_only_to_newcomer;
        Alcotest.test_case "insertion-order independent" `Quick
          test_ring_order_independent;
        Alcotest.test_case "empty + idempotent membership" `Quick
          test_ring_empty_and_idempotent;
      ] );
    ( "fabric.reuseport",
      [
        Alcotest.test_case "steering hash spread + affinity" `Quick
          test_steering_hash_spread_and_affinity;
      ] );
    ( "fabric.fleet",
      [
        Alcotest.test_case "substrate echo deterministic" `Quick
          test_fleet_substrate_deterministic;
        Alcotest.test_case "tcp echo" `Quick test_fleet_tcp;
        Alcotest.test_case "reuseport fanout" `Quick test_fleet_reuseport_fanout;
        Alcotest.test_case "kill failover (tcp)" `Quick
          test_fleet_kill_failover_tcp;
        Alcotest.test_case "kill failover (substrate)" `Quick
          test_fleet_kill_failover_substrate;
        Alcotest.test_case "drain mid-load" `Quick test_fleet_drain;
        Alcotest.test_case "schedule-independent report" `Quick
          test_fleet_schedule_independent;
      ] );
  ]
