(* Collective subsystem: correctness of every operation over every
   transport/algorithm combination, round-count complexity, and the
   latency advantage of the NIC-forwarded barrier. *)

open Uls_engine
module Group = Uls_collective.Group
module Emp_group = Uls_collective.Emp_group
module Sockets_group = Uls_collective.Sockets_group
module Cluster = Uls_bench.Cluster
module Options = Uls_substrate.Options

(* --- harness ----------------------------------------------------------- *)

(* Run [f group rank] as one fiber per rank and return every rank's
   result (failing the test on deadlock). *)
let run_ranks ~n ~make f =
  let c = Cluster.create ~n () in
  let setup = make c in
  let results = Array.make n None in
  for r = 0 to n - 1 do
    Sim.spawn (Cluster.sim c)
      ~name:(Printf.sprintf "rank%d" r)
      (fun () ->
        let g = setup ~rank:r in
        results.(r) <- Some (f g r))
  done;
  (match Cluster.run c with
  | `Quiescent -> ()
  | _ -> Alcotest.fail "cluster did not quiesce");
  Array.map
    (function
      | Some v -> v
      | None -> Alcotest.fail "rank fiber deadlocked")
    results

let emp_make ?nic () c =
  let eps = Array.init (Cluster.size c) (fun i -> Cluster.emp c i) in
  fun ~rank -> Emp_group.create ?nic eps ~rank

let sockets_make ~opts c =
  let stack = Cluster.substrate_api ~opts c in
  let nodes =
    Array.init (Cluster.size c) (fun i -> Uls_host.Node.id (Cluster.node c i))
  in
  fun ~rank ->
    Sockets_group.connect_mesh (Cluster.sim c) stack ~nodes ~rank
      ~base_port:2000

let eager_opts = Options.data_streaming_enhanced
let rendezvous_opts = { Options.data_streaming_enhanced with scheme = Rendezvous }

(* --- data helpers ------------------------------------------------------ *)

let pack_floats fs =
  let b = Bytes.create (8 * Array.length fs) in
  Array.iteri (fun i f -> Bytes.set_int64_le b (i * 8) (Int64.bits_of_float f)) fs;
  Bytes.to_string b

let unpack_floats s =
  Array.init (String.length s / 8) (fun i ->
      Int64.float_of_bits (String.get_int64_le s (i * 8)))

let part_of i = Printf.sprintf "part-%04d!" i
let check_str = Alcotest.(check string)

(* Exercise every collective once under [alg]; assertions run inside the
   rank fibers (a failure surfaces as a Fiber_failure). *)
let exercise ~alg g rank =
  let n = Group.size g in
  let root = (n - 1) / 2 in
  let where op = Printf.sprintf "%s/%s n=%d rank=%d"
      op (Group.algorithm_name alg) n rank in
  Group.barrier ~alg g;
  (* bcast *)
  let payload = "broadcast-payload" in
  let got = Group.bcast ~alg g ~root ~max:64 (if rank = root then payload else "") in
  check_str (where "bcast") payload got;
  (* scatter *)
  let parts = if rank = root then Array.init n part_of else [||] in
  let mine = Group.scatter ~alg g ~root ~max:16 parts in
  check_str (where "scatter") (part_of rank) mine;
  (* gather *)
  let gathered = Group.gather ~alg g ~root ~max:16 (part_of rank) in
  (match gathered, rank = root with
  | Some parts, true ->
    Array.iteri (fun i p -> check_str (where "gather") (part_of i) p) parts
  | None, false -> ()
  | _ -> Alcotest.fail (where "gather: wrong side returned the array"));
  (* allgather *)
  let all = Group.allgather ~alg g ~max:16 (part_of rank) in
  Alcotest.(check int) (where "allgather size") n (Array.length all);
  Array.iteri (fun i p -> check_str (where "allgather") (part_of i) p) all;
  (* reduce: integer-valued doubles, so any combine order is exact *)
  let contrib = pack_floats [| float_of_int (rank + 1); float_of_int (2 * (rank + 1)) |] in
  let expect = [| float_of_int (n * (n + 1) / 2); float_of_int (n * (n + 1)) |] in
  (match Group.reduce ~alg g ~op:Group.float_sum ~root ~max:16 contrib, rank = root with
  | Some r, true ->
    Alcotest.(check (array (float 0.0))) (where "reduce") expect (unpack_floats r)
  | None, false -> ()
  | _ -> Alcotest.fail (where "reduce: wrong side returned the result"));
  (* allreduce *)
  let r = Group.allreduce ~alg g ~op:Group.float_sum ~max:16 contrib in
  Alcotest.(check (array (float 0.0))) (where "allreduce") expect (unpack_floats r)

let algorithms =
  [ Group.Linear; Group.Binomial_tree; Group.Recursive_doubling; Group.Nic_forward ]

let correctness_case name make sizes =
  Alcotest.test_case name `Slow (fun () ->
      List.iter
        (fun n ->
          ignore
            (run_ranks ~n ~make (fun g rank ->
                 List.iter (fun alg -> exercise ~alg g rank) algorithms)))
        sizes)

(* --- complexity: rounds and timestamps --------------------------------- *)

(* Per-iteration barrier latency: a warm-up barrier, then [iters] timed
   barriers between per-rank timestamps. Dividing the full span by the
   iteration count amortises the exit skew of the warm-up barrier. *)
let barrier_timing ~alg ~n ?nic () =
  let iters = 5 in
  let c = Cluster.create ~n () in
  let eps = Array.init n (fun i -> Cluster.emp c i) in
  let sim = Cluster.sim c in
  let start = Array.make n max_int in
  let finish = Array.make n 0 in
  let rounds = Array.make n 0 in
  for r = 0 to n - 1 do
    Sim.spawn sim
      ~name:(Printf.sprintf "rank%d" r)
      (fun () ->
        let g = Emp_group.create ?nic eps ~rank:r in
        Group.barrier ~alg g;
        start.(r) <- Sim.now sim;
        for _ = 1 to iters do
          Group.barrier ~alg g
        done;
        rounds.(r) <- Group.last_rounds g;
        finish.(r) <- Sim.now sim)
  done;
  (match Cluster.run c with
  | `Quiescent -> ()
  | _ -> Alcotest.fail "barrier timing: no quiesce");
  let span =
    Array.fold_left max 0 finish - Array.fold_left min max_int start
  in
  (span / iters, rounds)

let ceil_log2 n =
  let r = ref 0 in
  while 1 lsl !r < n do incr r done;
  !r

let rounds_test () =
  let n = 16 in
  let _, lin = barrier_timing ~alg:Group.Linear ~n () in
  Alcotest.(check int) "linear barrier root rounds O(N)" (2 * (n - 1)) lin.(0);
  let _, bin = barrier_timing ~alg:Group.Binomial_tree ~n () in
  Array.iteri
    (fun r k ->
      if k > 2 * ceil_log2 n then
        Alcotest.failf "binomial rank %d took %d rounds (> 2 log2 N = %d)" r k
          (2 * ceil_log2 n))
    bin

let timestamps_test () =
  let n = 16 in
  let lin, _ = barrier_timing ~alg:Group.Linear ~n () in
  let bin, _ = barrier_timing ~alg:Group.Binomial_tree ~n () in
  if not (bin < lin) then
    Alcotest.failf "binomial barrier (%d ns) not faster than linear (%d ns) at N=%d"
      bin lin n

let nic_barrier_test () =
  let n = 8 in
  let host, _ = barrier_timing ~alg:Group.Linear ~n () in
  let nic, _ = barrier_timing ~alg:Group.Nic_forward ~n () in
  if not (nic < host) then
    Alcotest.failf
      "NIC-forwarded barrier (%d ns) not faster than host linear barrier (%d ns) at N=8"
      nic host

(* --- collectives-backed matmul ----------------------------------------- *)

let matmul_run ~use_collectives =
  let n = 64 in
  let c = Cluster.create ~n:4 () in
  let api = Cluster.substrate_api ~opts:eager_opts c in
  let sim = Cluster.sim c in
  let a = Uls_apps.Matmul.random_matrix ~seed:21 ~n in
  let b = Uls_apps.Matmul.random_matrix ~seed:22 ~n in
  for w = 1 to 3 do
    Sim.spawn sim (fun () ->
        Uls_apps.Matmul.worker sim api ~node:w ~master:{ node = 0; port = 90 } ())
  done;
  let result = ref None in
  Sim.spawn sim (fun () ->
      let r =
        Uls_apps.Matmul.master ~use_collectives sim api ~node:0 ~port:90
          ~workers:3 ~a ~b
      in
      result := Some r;
      Sim.stop sim);
  ignore (Cluster.run c);
  match !result with
  | Some r ->
    Alcotest.(check bool)
      "distributed product = sequential" true
      (Uls_apps.Matmul.matrices_equal ~eps:1e-6
         (Uls_apps.Matmul.multiply_seq a b)
         r.Uls_apps.Matmul.product);
    r.Uls_apps.Matmul.elapsed
  | None -> Alcotest.fail "matmul did not finish"

let matmul_test () =
  let p2p = matmul_run ~use_collectives:false in
  let coll = matmul_run ~use_collectives:true in
  if coll > p2p then
    Alcotest.failf
      "collectives-backed matmul slower than point-to-point (%d ns > %d ns)"
      coll p2p

(* --- suites ------------------------------------------------------------ *)

let sizes_emp = [ 2; 3; 4; 5; 8; 13; 16 ]
let sizes_sockets = [ 2; 3; 5; 8 ]

let suites =
  [
    ( "collective.correct",
      [
        correctness_case "emp all ops/algs" (emp_make ()) sizes_emp;
        correctness_case "emp no-nic fallback" (emp_make ~nic:false ()) [ 4 ];
        correctness_case "sockets eager all ops/algs"
          (sockets_make ~opts:eager_opts) sizes_sockets;
        correctness_case "sockets rendezvous all ops/algs"
          (sockets_make ~opts:rendezvous_opts) sizes_sockets;
      ] );
    ( "collective.complexity",
      [
        Alcotest.test_case "rounds: binomial O(log N) vs linear O(N)" `Quick
          rounds_test;
        Alcotest.test_case "timestamps: binomial beats linear at N=16" `Quick
          timestamps_test;
        Alcotest.test_case "NIC barrier beats host linear at N=8" `Quick
          nic_barrier_test;
      ] );
    ( "collective.matmul",
      [
        Alcotest.test_case "matmul over collectives: correct and no slower"
          `Slow matmul_test;
      ] );
  ]
