(* Tests for the analysis layer: invariant monitor mechanics, the three
   sanitizers against seeded known-bad scenarios, the deadlock
   diagnoser's wait-for report, and the schedule-perturbation race
   detector (clean scenario stays clean; the re-introduced
   shared-grant-queue bug is caught). *)
open Uls_engine
module Cluster = Uls_bench.Cluster
module Sub = Uls_substrate.Substrate
module Conn = Uls_substrate.Conn
module An = Uls_analysis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains ~affix s =
  let n = String.length affix and l = String.length s in
  let rec go i = i + n <= l && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* --- Sim accounting regression ----------------------------------------- *)

(* A suspend whose register function raises used to leave the fiber
   counted as blocked forever (stale [blocked] accounting). The fiber
   must be accounted dead, and the failure must escape as
   Fiber_failure. *)
let test_register_raises_accounting () =
  let sim = Sim.create () in
  Sim.spawn sim ~name:"boom" (fun () ->
      Sim.suspend sim ~label:"exploding-register" (fun _resume ->
          failwith "register exploded"));
  (match Sim.run sim with
  | exception Sim.Fiber_failure ("boom", Failure _) -> ()
  | exception e -> raise e
  | (_ : [ `Quiescent | `Time_limit | `Stopped ]) ->
    Alcotest.fail "expected Fiber_failure out of run");
  check_int "no stale blocked fiber" 0 (Sim.blocked_fibers sim);
  check_int "no parked entries" 0 (List.length (Sim.blocked_report sim));
  (* The simulator survives: later fibers still run. *)
  let ran = ref false in
  Sim.spawn sim ~name:"after" (fun () -> ran := true);
  ignore (Sim.run sim);
  check_bool "sim still usable" true !ran

(* --- Invariant monitor mechanics --------------------------------------- *)

let test_invariant_disabled_is_free () =
  let sim = Sim.create () in
  let inv = Invariant.create sim in
  let forced = ref false in
  Invariant.check inv ~name:"x" false (fun () ->
      forced := true;
      "detail");
  check_bool "detail not forced when disabled" false !forced;
  check_int "nothing recorded" 0 (Invariant.count inv)

let test_invariant_records_and_names () =
  let sim = Sim.create () in
  let inv = Invariant.create sim in
  Invariant.enable inv;
  Sim.spawn sim ~name:"offender" (fun () ->
      Sim.delay sim (Time.us 3);
      Invariant.check inv ~name:"test.rule" false (fun () -> "broke it"));
  ignore (Sim.run sim);
  match Invariant.violations inv with
  | [ v ] ->
    check_str "name" "test.rule" v.Invariant.v_name;
    check_str "fiber" "offender" v.Invariant.v_fiber;
    check_int "time" (Time.us 3) v.Invariant.v_time;
    check_str "detail" "broke it" v.Invariant.v_detail
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_invariant_strict_raises () =
  let sim = Sim.create () in
  let inv = Invariant.create sim in
  Invariant.enable ~strict:true inv;
  match Invariant.check inv ~name:"strict.rule" false (fun () -> "boom") with
  | exception Invariant.Violation _ -> ()
  | () -> Alcotest.fail "strict mode must raise at the violation"

(* --- sanitizers against seeded known-bad scenarios ---------------------- *)

let connected_pair cluster =
  (* One established connection pair, both ends returned. *)
  let server = Cluster.substrate cluster 0 in
  let client = Cluster.substrate cluster 1 in
  let sconn = ref None and cconn = ref None in
  let sim = Cluster.sim cluster in
  Sim.spawn sim ~name:"pair-server" (fun () ->
      let l = Sub.listen server ~port:80 ~backlog:1 in
      let conn, _ = Sub.accept server l in
      sconn := Some conn;
      Sub.close_listener server l);
  Sim.spawn sim ~name:"pair-client" (fun () ->
      Sim.delay sim (Time.us 10);
      cconn := Some (Sub.connect client { Uls_api.Sockets_api.node = 0; port = 80 }));
  ignore (Cluster.run cluster);
  (Option.get !sconn, Option.get !cconn)

let find_check name findings =
  List.filter (fun f -> f.An.Sanitizer.f_check = name) findings

let test_sanitizer_descriptor_leak () =
  let cluster = Cluster.create ~n:2 () in
  let sim = Cluster.sim cluster in
  Invariant.enable (Invariant.for_sim sim);
  let sconn, cconn = connected_pair cluster in
  Sim.spawn sim ~name:"leaker" (fun () ->
      Conn.close cconn;
      Conn.close sconn;
      (* Re-post one receive slot on the closed server conn: the bug this
         scan exists to catch (close missing an unpost). *)
      Conn.debug_leak_slot sconn);
  ignore (Cluster.run cluster);
  let conns = [ (0, sconn); (1, cconn) ] in
  match find_check "sub.desc_leak" (An.Sanitizer.scan ~conns cluster) with
  | [ f ] ->
    check_int "attributed to the server node" 0 f.An.Sanitizer.f_node;
    check_bool "detail names the conn"
      true
      (contains ~affix:"still posted" f.An.Sanitizer.f_detail);
    (* The finding is also recorded as an invariant violation (so it
       reaches race-detector fingerprints). *)
    check_bool "recorded in the monitor" true
      (List.exists
         (fun v -> v.Invariant.v_name = "sub.desc_leak")
         (Invariant.violations (Invariant.for_sim sim)))
  | fs -> Alcotest.failf "expected 1 desc-leak finding, got %d" (List.length fs)

let test_sanitizer_clean_pair () =
  (* Control: a properly closed pair produces zero findings. *)
  let cluster = Cluster.create ~n:2 () in
  let sim = Cluster.sim cluster in
  Invariant.enable (Invariant.for_sim sim);
  let sconn, cconn = connected_pair cluster in
  Sim.spawn sim ~name:"closer" (fun () ->
      Conn.write cconn "ping";
      check_str "data" "ping" (Conn.read sconn 4);
      Conn.close cconn;
      Conn.close sconn);
  ignore (Cluster.run cluster);
  let conns = [ (0, sconn); (1, cconn) ] in
  check_int "no findings" 0 (List.length (An.Sanitizer.scan ~conns cluster));
  check_int "no violations" 0 (Invariant.count (Invariant.for_sim sim))

let test_credit_double_grant_detected () =
  let cluster = Cluster.create ~n:2 () in
  let sim = Cluster.sim cluster in
  Invariant.enable (Invariant.for_sim sim);
  let _sconn, cconn = connected_pair cluster in
  Sim.spawn sim ~name:"double-granter" (fun () ->
      (* A fresh connection holds its full credit window; one more grant
         is exactly the double-granted ack the monitor watches for. *)
      Conn.add_credits cconn 1);
  ignore (Cluster.run cluster);
  match
    List.filter
      (fun v -> v.Invariant.v_name = "sub.credit_range")
      (Invariant.violations (Invariant.for_sim sim))
  with
  | v :: _ ->
    check_str "offending fiber" "double-granter" v.Invariant.v_fiber;
    check_bool "detail points at a double grant" true
      (contains ~affix:"double grant" v.Invariant.v_detail)
  | [] -> Alcotest.fail "credit-range monitor missed the double grant"

(* --- deadlock diagnoser ------------------------------------------------- *)

let test_deadlock_named_report () =
  let sim = Sim.create () in
  let lock_a = Cond.create ~label:"lock-a" sim in
  let lock_b = Cond.create ~label:"lock-b" sim in
  (* The classic two-lock cycle: each fiber holds one lock and waits
     forever for the other's. *)
  Sim.spawn sim ~name:"worker-1" (fun () ->
      Sim.delay sim (Time.us 1);
      Cond.wait lock_b);
  Sim.spawn sim ~name:"worker-2" (fun () ->
      Sim.delay sim (Time.us 1);
      Cond.wait lock_a);
  (* A daemon service fiber parks too — it must NOT appear in the
     report. *)
  Sim.spawn sim ~name:"service" ~daemon:true (fun () ->
      Cond.wait (Cond.create ~label:"service-idle" sim));
  check_str "run quiesces instead of hanging" "q"
    (match Sim.run sim with `Quiescent -> "q" | _ -> "other");
  match An.Deadlock.check sim with
  | None -> Alcotest.fail "deadlock not detected"
  | Some rep ->
    check_int "two stuck fibers" 2 (List.length rep.An.Deadlock.rep_stuck);
    let rendered = An.Deadlock.render rep in
    List.iter
      (fun needle ->
        check_bool (needle ^ " in report") true
          (contains ~affix:needle rendered))
      [ "worker-1"; "worker-2"; "lock-a"; "lock-b"; "DEADLOCK" ];
    check_bool "daemon fiber not reported" false
      (contains ~affix:"service" rendered)

let test_no_deadlock_on_clean_run () =
  let sim = Sim.create () in
  Sim.spawn sim ~name:"worker" (fun () -> Sim.delay sim (Time.us 5));
  Sim.spawn sim ~name:"service" ~daemon:true (fun () ->
      Cond.wait (Cond.create ~label:"idle" sim));
  ignore (Sim.run sim);
  check_bool "daemon parked fibers are not a deadlock" true
    (An.Deadlock.check sim = None)

(* --- race detector ------------------------------------------------------ *)

let scenario name =
  match An.Scenarios.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %s not registered" name

let test_race_clean_scenario () =
  let v = An.Race.run_scenario ~seeds:4 (scenario "rendezvous-grants") in
  check_bool "clean across seeds" true (An.Race.clean v);
  check_int "all seeds ran" 4 (List.length v.An.Race.v_perturbed)

let test_race_catches_shared_grant_queue () =
  let v = An.Race.run_until_flagged ~max_seeds:16 (scenario "shared-grant-queue") in
  check_bool "flagged" true (An.Race.flagged v);
  (* The detector reports both signals: fingerprint divergence and the
     named invariant violation, each with its offending seed. *)
  check_bool "fingerprint divergence" true (v.An.Race.v_divergent <> []);
  (match v.An.Race.v_violating with
  | (seed, first) :: _ ->
    check_bool "seed recorded for replay" true (seed >= 0);
    check_bool "violation names the grant-routing invariant" true
      (contains ~affix:"scenario.grant_routing" first);
    (* Determinism: replaying the offending seed reproduces the bug. *)
    let replayed = An.Race.replay (scenario "shared-grant-queue") ~seed in
    check_bool "replay reproduces the violation" true
      (List.exists
         (fun viol -> viol.Invariant.v_name = "scenario.grant_routing")
         replayed.An.Scenarios.violations)
  | [] -> Alcotest.fail "no violation recorded");
  check_bool "FIFO baseline itself is quiet (the bug needs perturbation)"
    true
    (v.An.Race.v_baseline.An.Race.r_outcome.An.Scenarios.violations = [])

let test_fingerprint_stability () =
  (* Same scenario, same seed, twice: byte-identical fingerprints. *)
  let sc = scenario "connect-churn" in
  let a = An.Race.replay sc ~seed:7 and b = An.Race.replay sc ~seed:7 in
  check_str "deterministic digest"
    (An.Fingerprint.digest a.An.Scenarios.fingerprint)
    (An.Fingerprint.digest b.An.Scenarios.fingerprint);
  check_bool "fingerprint carries content" true
    (An.Fingerprint.lines a.An.Scenarios.fingerprint <> [])

(* --- systematic explorer ------------------------------------------------ *)

let test_explore_schedule_id_roundtrip () =
  let roundtrip a =
    match An.Explore.parse_schedule_id (An.Explore.schedule_id a) with
    | Some b -> check_bool "roundtrip" true (a = b)
    | None -> Alcotest.fail "id failed to parse back"
  in
  roundtrip [||];
  roundtrip [| 0; 0; 1 |];
  roundtrip [| 0; 4; 0; 0; 1 |];
  check_str "empty prefix is fifo" "fifo" (An.Explore.schedule_id [||]);
  check_str "sparse form" "2:1" (An.Explore.schedule_id [| 0; 0; 1 |]);
  check_bool "garbage rejected" true
    (An.Explore.parse_schedule_id "2:x" = None)

(* Satellite: a deadlock that exists only on a non-FIFO interleaving,
   found exhaustively, reported with named wait-for edges. *)
let test_explore_lost_signal_exhaustive () =
  let v = An.Explore.explore (scenario "lost-signal") in
  check_bool "explorer flags the lost wakeup" true (An.Explore.flagged v);
  check_bool "coverage is exhaustive" true v.An.Explore.e_stats.An.Explore.st_exhaustive;
  check_int "the space is exactly two schedules" 2
    v.An.Explore.e_stats.An.Explore.st_runs;
  check_bool "FIFO baseline itself is quiet" true
    (v.An.Explore.e_baseline.An.Scenarios.deadlock = None);
  match v.An.Explore.e_flagged with
  | [ f ] ->
    check_bool "found on a non-FIFO schedule" true
      (f.An.Explore.fl_schedule <> "fifo");
    (match f.An.Explore.fl_finding with
    | An.Explore.Deadlocked rep ->
      let rendered = An.Deadlock.render rep in
      check_bool "wait-for edge names the fiber" true
        (contains ~affix:"ls-waiter" rendered);
      check_bool "wait-for edge names the condition" true
        (contains ~affix:"lost-signal-ready" rendered)
    | _ -> Alcotest.fail "expected a deadlock finding")
  | fs -> Alcotest.failf "expected exactly one flagged schedule, got %d"
            (List.length fs)

(* The headline acceptance: shared-grant-queue found deterministically —
   every explore call, not 11/16 seeds — with the racing pair named. *)
let test_explore_catches_shared_grant_queue () =
  let v = An.Explore.explore (scenario "shared-grant-queue") in
  check_bool "flagged deterministically" true (An.Explore.flagged v);
  let violating =
    List.filter_map
      (fun f ->
        match f.An.Explore.fl_finding with
        | An.Explore.Violating msg -> Some (f.An.Explore.fl_schedule, msg)
        | _ -> None)
      v.An.Explore.e_flagged
  in
  (match violating with
  | (sched, msg) :: _ ->
    check_bool "violation names the grant-routing invariant" true
      (contains ~affix:"scenario.grant_routing" msg);
    check_bool "schedule id recorded for replay" true (sched <> "");
    (* Satellite: the schedule id carried by the finding reproduces it. *)
    let outcome, _ =
      An.Explore.replay (scenario "shared-grant-queue") ~schedule:sched
    in
    check_bool "replay by schedule id reproduces the violation" true
      (List.exists
         (fun viol -> viol.Invariant.v_name = "scenario.grant_routing")
         outcome.An.Scenarios.violations);
    (* And twice: schedule ids are deterministic coordinates. *)
    let again, _ =
      An.Explore.replay (scenario "shared-grant-queue") ~schedule:sched
    in
    check_str "replay is deterministic"
      (An.Fingerprint.digest outcome.An.Scenarios.fingerprint)
      (An.Fingerprint.digest again.An.Scenarios.fingerprint)
  | [] -> Alcotest.fail "no violating schedule recorded");
  (* The racing pair: the two conflicting operations with no
     happens-before edge, by name. *)
  check_bool "racing pair names the two writers on the shared queue" true
    (List.exists
       (fun (p : An.Hb.pair) ->
         p.An.Hb.p_label = "shared-grant-queue"
         && p.An.Hb.p_a_op = "Mailbox.recv"
         && p.An.Hb.p_b_op = "Mailbox.recv"
         && contains ~affix:"grant-writer" p.An.Hb.p_a_fiber
         && contains ~affix:"grant-writer" p.An.Hb.p_b_fiber)
       v.An.Explore.e_pairs)

let test_explore_clean_scenario () =
  (* A correct protocol scenario: every explored schedule converges to
     the one fingerprint, no violations, no deadlock. *)
  let v = An.Explore.explore ~max_runs:24 (scenario "rings-firehose") in
  check_bool "clean" true (An.Explore.clean v);
  check_int "all schedules reach the same end state" 1
    v.An.Explore.e_stats.An.Explore.st_distinct_states

let test_explore_controlled_fifo_parity () =
  (* The all-defaults Controlled schedule (the explorer's baseline, with
     happens-before tracking attached) must reproduce the plain Fifo
     fingerprint bit-for-bit: instrumentation observes, never perturbs. *)
  let sc = scenario "lost-signal" in
  let plain = sc.An.Scenarios.sc_run `Fifo in
  let v = An.Explore.explore sc in
  check_str "controlled fifo == plain fifo"
    (An.Fingerprint.digest plain.An.Scenarios.fingerprint)
    (An.Fingerprint.digest v.An.Explore.e_baseline.An.Scenarios.fingerprint)

let suites =
  [
    ( "analysis",
      [
        Alcotest.test_case "register-raise keeps blocked accounting" `Quick
          test_register_raises_accounting;
        Alcotest.test_case "disabled monitor is free" `Quick
          test_invariant_disabled_is_free;
        Alcotest.test_case "violation records name/fiber/time" `Quick
          test_invariant_records_and_names;
        Alcotest.test_case "strict mode raises" `Quick
          test_invariant_strict_raises;
        Alcotest.test_case "sanitizer finds leaked descriptor" `Quick
          test_sanitizer_descriptor_leak;
        Alcotest.test_case "sanitizer clean on proper close" `Quick
          test_sanitizer_clean_pair;
        Alcotest.test_case "credit monitor catches double grant" `Quick
          test_credit_double_grant_detected;
        Alcotest.test_case "deadlock produces named wait-for report" `Quick
          test_deadlock_named_report;
        Alcotest.test_case "quiescent daemons are not deadlock" `Quick
          test_no_deadlock_on_clean_run;
        Alcotest.test_case "race: clean scenario stays clean" `Quick
          test_race_clean_scenario;
        Alcotest.test_case "race: shared grant queue caught + replays" `Quick
          test_race_catches_shared_grant_queue;
        Alcotest.test_case "race: fingerprints deterministic per seed" `Quick
          test_fingerprint_stability;
        Alcotest.test_case "explore: schedule ids roundtrip" `Quick
          test_explore_schedule_id_roundtrip;
        Alcotest.test_case "explore: lost signal found exhaustively" `Quick
          test_explore_lost_signal_exhaustive;
        Alcotest.test_case "explore: shared grant queue deterministic" `Quick
          test_explore_catches_shared_grant_queue;
        Alcotest.test_case "explore: clean scenario converges" `Quick
          test_explore_clean_scenario;
        Alcotest.test_case "explore: controlled fifo parity" `Quick
          test_explore_controlled_fifo_parity;
      ] );
  ]
