(* Tests for the NIC model: tag matching list semantics and walk
   accounting (both engines), descriptor rings, RSS steering, Tigon
   resources and transmit backpressure. *)
open Uls_engine
open Uls_nic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Match_list (every semantic test runs under both engines) --- *)

let test_match_basic engine () =
  let ml = Match_list.create ~engine () in
  Match_list.post ml ~src:1 ~tag:10 "a";
  Match_list.post ml ~src:1 ~tag:11 "b";
  (match Match_list.take ml ~src:1 ~tag:11 with
  | Some "b", _ -> ()
  | _ -> Alcotest.fail "expected b");
  check_int "one left" 1 (Match_list.length ml);
  match Match_list.take ml ~src:1 ~tag:10 with
  | Some "a", _ -> ()
  | _ -> Alcotest.fail "expected a"

let test_match_walk_accounting () =
  (* Linear engine: probe.walked counts descriptors examined, matched
     one included; no hash lookups. *)
  let ml = Match_list.create ~engine:Match_list.Linear () in
  Match_list.post ml ~src:1 ~tag:10 "a";
  Match_list.post ml ~src:1 ~tag:11 "b";
  (match Match_list.take ml ~src:1 ~tag:11 with
  | Some "b", { Match_list.walked; lookups } ->
    check_int "walked past a" 2 walked;
    check_int "no hash lookups" 0 lookups
  | _ -> Alcotest.fail "expected b");
  match Match_list.take ml ~src:1 ~tag:10 with
  | Some "a", { Match_list.walked; _ } -> check_int "head match walks 1" 1 walked
  | _ -> Alcotest.fail "expected a"

let test_hashed_lookup_accounting () =
  (* Hashed engine: cost is hash probes + ring-head comparisons,
     independent of how many other keys hold descriptors. *)
  let ml = Match_list.create ~engine:Match_list.Hashed () in
  for i = 0 to 999 do
    Match_list.post ml ~src:i ~tag:7 i
  done;
  (match Match_list.take ml ~src:999 ~tag:7 with
  | Some 999, { Match_list.walked; lookups } ->
    check_bool "walked stays O(1)" true (walked <= 4);
    check_bool "few hash probes" true (lookups >= 1 && lookups <= 4)
  | _ -> Alcotest.fail "expected 999");
  (* A miss is cheap too: no full-list walk. *)
  match Match_list.take ml ~src:5000 ~tag:7 with
  | None, { Match_list.walked; _ } -> check_bool "miss is O(1)" true (walked <= 4)
  | Some _, _ -> Alcotest.fail "unexpected match"

let test_match_fifo_same_tag engine () =
  let ml = Match_list.create ~engine () in
  Match_list.post ml ~src:1 ~tag:5 "first";
  Match_list.post ml ~src:1 ~tag:5 "second";
  (match Match_list.take ml ~src:1 ~tag:5 with
  | Some "first", _ -> ()
  | _ -> Alcotest.fail "FIFO violated");
  match Match_list.take ml ~src:1 ~tag:5 with
  | Some "second", _ -> ()
  | _ -> Alcotest.fail "second not found at head"

let test_match_src_filter engine () =
  let ml = Match_list.create ~engine () in
  Match_list.post ml ~src:1 ~tag:5 "from1";
  Match_list.post ml ~src:2 ~tag:5 "from2";
  (match Match_list.take ml ~src:2 ~tag:5 with
  | Some "from2", _ -> ()
  | _ -> Alcotest.fail "src filter failed");
  check_int "from1 remains" 1 (Match_list.length ml)

let test_match_wildcards engine () =
  let ml = Match_list.create ~engine () in
  Match_list.post ml ~src:(-1) ~tag:9 "anysrc";
  (match Match_list.take ml ~src:42 ~tag:9 with
  | Some "anysrc", _ -> ()
  | _ -> Alcotest.fail "wildcard src should match");
  Match_list.post ml ~src:3 ~tag:(-1) "anytag";
  (match Match_list.take ml ~src:3 ~tag:12345 with
  | Some "anytag", _ -> ()
  | _ -> Alcotest.fail "wildcard tag should match");
  Match_list.post ml ~src:(-1) ~tag:(-1) "anything";
  match Match_list.take ml ~src:7 ~tag:7 with
  | Some "anything", _ -> ()
  | _ -> Alcotest.fail "full wildcard should match"

let test_wildcard_beats_later_exact engine () =
  (* Post order decides between a wildcard and an exact match: the
     earlier post wins, whichever class it is in. *)
  let ml = Match_list.create ~engine () in
  Match_list.post ml ~src:(-1) ~tag:4 "wild-first";
  Match_list.post ml ~src:2 ~tag:4 "exact-later";
  (match Match_list.take ml ~src:2 ~tag:4 with
  | Some "wild-first", _ -> ()
  | _ -> Alcotest.fail "earlier wildcard should win");
  match Match_list.take ml ~src:2 ~tag:4 with
  | Some "exact-later", _ -> ()
  | _ -> Alcotest.fail "exact entry should remain"

let test_match_miss_walks_all engine () =
  let ml = Match_list.create ~engine () in
  for i = 0 to 9 do
    Match_list.post ml ~src:1 ~tag:i i
  done;
  check_bool "no match" true (fst (Match_list.take ml ~src:1 ~tag:99) = None);
  check_int "all still posted" 10 (Match_list.length ml)

let test_unpost engine () =
  let ml = Match_list.create ~engine () in
  for i = 0 to 4 do
    Match_list.post ml ~src:1 ~tag:i i
  done;
  let removed = Match_list.unpost_matching ml (fun v -> v mod 2 = 0) in
  Alcotest.(check (list int)) "evens removed" [ 0; 2; 4 ] removed;
  check_int "two left" 2 (Match_list.length ml);
  let rest = Match_list.unpost_all ml in
  Alcotest.(check (list int)) "rest in order" [ 1; 3 ] rest;
  check_int "empty" 0 (Match_list.length ml)

let test_unposted_never_matches engine () =
  (* An entry tombstoned through the global list must not surface via
     the hashed rings later. *)
  let ml = Match_list.create ~engine () in
  Match_list.post ml ~src:1 ~tag:1 "dead";
  Match_list.post ml ~src:1 ~tag:1 "live";
  ignore (Match_list.unpost_matching ml (fun v -> v = "dead"));
  (match Match_list.take ml ~src:1 ~tag:1 with
  | Some "live", _ -> ()
  | _ -> Alcotest.fail "tombstone leaked");
  check_bool "empty now" true (fst (Match_list.take ml ~src:1 ~tag:1) = None)

let test_removed_not_counted_in_walk () =
  let ml = Match_list.create () in
  for i = 0 to 9 do
    Match_list.post ml ~src:1 ~tag:i i
  done;
  ignore (Match_list.unpost_matching ml (fun v -> v < 9));
  match Match_list.take ml ~src:1 ~tag:9 with
  | Some 9, { Match_list.walked; _ } ->
    check_int "tombstones are free to skip" 1 walked
  | _ -> Alcotest.fail "expected 9"

let test_compaction_preserves_order engine () =
  let ml = Match_list.create ~engine () in
  for i = 0 to 99 do
    Match_list.post ml ~src:1 ~tag:i i
  done;
  (* Remove most entries to trigger compaction, then check the rest. *)
  ignore (Match_list.unpost_matching ml (fun v -> v mod 10 <> 0));
  let rest = ref [] in
  Match_list.iter ml (fun v -> rest := v :: !rest);
  Alcotest.(check (list int)) "order kept"
    [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90 ]
    (List.rev !rest)

let test_churn_10k engine () =
  (* Sustained post/take churn across 10k entries: the in-place
     compaction must keep FIFO-per-key order the whole way (and not
     blow up quadratically — this test is also the regression witness
     for the list-rebuild compaction it replaced). *)
  let ml = Match_list.create ~engine () in
  let next = Array.make 7 0 and posted = Array.make 7 0 in
  let total = 10_000 in
  for i = 0 to total - 1 do
    let key = i mod 7 in
    Match_list.post ml ~src:key ~tag:key (i / 7);
    posted.(key) <- posted.(key) + 1;
    (* Every third post, drain two entries: constant churn keeps the
       vector full of tombstones and compaction busy. *)
    if i mod 3 = 2 then
      for _ = 1 to 2 do
        let key = (i / 3) mod 7 in
        if next.(key) < posted.(key) then begin
          match Match_list.take ml ~src:key ~tag:key with
          | Some v, _ ->
            check_int "FIFO within key under churn" next.(key) v;
            next.(key) <- next.(key) + 1
          | None, _ -> Alcotest.fail "posted entry vanished"
        end
      done
  done;
  (* Drain the rest; order must still hold per key. *)
  for key = 0 to 6 do
    while next.(key) < posted.(key) do
      match Match_list.take ml ~src:key ~tag:key with
      | Some v, _ ->
        check_int "FIFO within key at drain" next.(key) v;
        next.(key) <- next.(key) + 1
      | None, _ -> Alcotest.fail "posted entry vanished at drain"
    done
  done;
  check_int "all drained" 0 (Match_list.length ml)

let prop_match_list_vs_model =
  (* Compare against a naive list model under random post/take. *)
  QCheck.Test.make ~name:"match_list equals naive model" ~count:200
    QCheck.(list (pair bool (pair (int_range 0 3) (int_range 0 3))))
    (fun ops ->
      let ml = Match_list.create () in
      let model = ref [] in
      let counter = ref 0 in
      List.for_all
        (fun (is_post, (src, tag)) ->
          if is_post then begin
            incr counter;
            Match_list.post ml ~src ~tag !counter;
            model := !model @ [ (src, tag, !counter) ];
            true
          end
          else begin
            let expected =
              let rec find = function
                | [] -> None
                | (s, g, v) :: rest ->
                  if (s = -1 || s = src) && (g = -1 || g = tag) then begin
                    model := List.filter (fun (_, _, v') -> v' <> v) !model;
                    Some v
                  end
                  else
                    (match find rest with
                    | some -> some)
              in
              find !model
            in
            match (Match_list.take ml ~src ~tag, expected) with
            | (Some v, _), Some v' -> v = v'
            | (None, _), None -> true
            | _ -> false
          end)
        ops)

(* Hashed-vs-linear parity: randomized posts mixing exact, src-wildcard,
   tag-wildcard and fully-wildcard descriptors, queried with concrete
   and wildcard (src = -1 / tag = -1) lookups; both engines must return
   identical entries in identical (FIFO-within-key, post-order-across-
   key) order. Seeds pinned so every run replays the same histories. *)
let test_engine_parity_seeded () =
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let lin = Match_list.create ~engine:Match_list.Linear () in
      let hsh = Match_list.create ~engine:Match_list.Hashed () in
      let counter = ref 0 in
      let pick_id () =
        (* -1 (wildcard) sometimes; small ranges force key collisions. *)
        if Random.State.int rng 5 = 0 then -1 else Random.State.int rng 4
      in
      for _ = 1 to 3_000 do
        match Random.State.int rng 5 with
        | 0 | 1 | 2 ->
          incr counter;
          let src = pick_id () and tag = pick_id () in
          Match_list.post lin ~src ~tag !counter;
          Match_list.post hsh ~src ~tag !counter
        | 3 ->
          (* Query side: concrete most of the time, wildcard sometimes
             (the hashed engine's documented linear fallback). *)
          let src = pick_id () and tag = pick_id () in
          let l, _ = Match_list.take lin ~src ~tag in
          let h, _ = Match_list.take hsh ~src ~tag in
          if l <> h then
            Alcotest.failf "seed %d: take(%d,%d): linear=%s hashed=%s" seed src
              tag
              (match l with None -> "none" | Some v -> string_of_int v)
              (match h with None -> "none" | Some v -> string_of_int v)
        | _ ->
          let src = pick_id () and tag = pick_id () in
          let l, _ = Match_list.find lin ~src ~tag in
          let h, _ = Match_list.find hsh ~src ~tag in
          if l <> h then Alcotest.failf "seed %d: find mismatch" seed
      done;
      (* Drain both fully with a universal query: remaining order must
         agree entry by entry. *)
      let rec drain () =
        let l, _ = Match_list.take lin ~src:(-1) ~tag:(-1) in
        let h, _ = Match_list.take hsh ~src:(-1) ~tag:(-1) in
        if l <> h then Alcotest.failf "seed %d: drain order diverged" seed;
        if l <> None then drain ()
      in
      drain ())
    [ 7; 42; 1337; 9001; 123456 ]

(* --- Desc_ring --- *)

let test_desc_ring_fifo () =
  let r = Desc_ring.create ~dead:(fun v -> !v < 0) () in
  let cells = Array.init 20 (fun i -> ref i) in
  Array.iter (Desc_ring.push r) cells;
  check_int "length" 20 (Desc_ring.length r);
  (* Tombstone a prefix and some interior entries. *)
  List.iter (fun i -> cells.(i) := -1) [ 0; 1; 2; 5; 7 ];
  (match Desc_ring.peek r with
  | Some v -> check_int "peek reaps dead heads" 3 !v
  | None -> Alcotest.fail "empty after reap");
  (match Desc_ring.pop r with
  | Some v -> check_int "pop returns live head" 3 !v
  | None -> Alcotest.fail "pop failed");
  (match Desc_ring.pop r with
  | Some v -> check_int "next live" 4 !v
  | None -> Alcotest.fail "pop failed");
  (* Interior tombstones are reaped when they surface. *)
  (match Desc_ring.pop r with
  | Some v -> check_int "skips 5" 6 !v
  | None -> Alcotest.fail "pop failed");
  (match Desc_ring.pop r with
  | Some v -> check_int "skips 7" 8 !v
  | None -> Alcotest.fail "pop failed");
  (* Push while partially drained exercises the circular wrap. *)
  for i = 20 to 40 do
    Desc_ring.push r (ref i)
  done;
  let last = ref (-1) in
  let rec drain () =
    match Desc_ring.pop r with
    | Some v ->
      check_bool "monotone drain" true (!v > !last);
      last := !v;
      drain ()
    | None -> ()
  in
  drain ();
  check_int "fully drained" 0 (Desc_ring.length r);
  check_bool "empty" true (Desc_ring.is_empty r)

(* --- Tigon --- *)

let mk_nic ?match_engine () =
  let sim = Sim.create () in
  let model = Uls_host.Cost_model.paper_testbed in
  let net = Uls_ether.Network.create sim ~stations:2 () in
  (sim, Tigon.create ?match_engine sim model net ~node:0, net)

let test_tigon_resources_serialize () =
  let sim, nic, _ = mk_nic () in
  let done_at = Array.make 2 0 in
  for i = 0 to 1 do
    Sim.spawn sim (fun () ->
        Tigon.tx_work nic 1_000;
        done_at.(i) <- Sim.now sim)
  done;
  ignore (Sim.run sim);
  Alcotest.(check (array int)) "tx core FIFO" [| 1_000; 2_000 |] done_at

let test_tigon_dma_cost () =
  let sim, nic, _ = mk_nic () in
  Sim.spawn sim (fun () -> Tigon.dma nic ~bytes:1_000);
  ignore (Sim.run sim);
  check_int "dma setup + per byte" (1_800 + 1_900) (Sim.now sim)

let test_tigon_backpressure () =
  let sim, nic, _net = mk_nic () in
  (* Blast 20 full frames; the MAC FIFO (~100 us) must throttle the
     transmitting fiber rather than queue 20 frames' wire time. *)
  let sent_all_at = ref 0 in
  Sim.spawn sim (fun () ->
      for _ = 1 to 20 do
        Tigon.transmit nic
          (Uls_ether.Frame.make ~src:0 ~dst:1 ~payload_len:1500 Uls_ether.Frame.Raw)
      done;
      sent_all_at := Sim.now sim);
  ignore (Sim.run sim);
  (* 20 frames x 12.3 us of wire time is ~246 us; with a 100 us FIFO the
     sender must have been stalled until roughly total - fifo. *)
  check_bool "sender throttled" true (!sent_all_at > 100_000);
  check_bool "but not serialized to the last frame" true (!sent_all_at < 246_080)

let test_tigon_rx_dispatch () =
  let sim, nic, net = mk_nic () in
  let nic1 = Tigon.create sim Uls_host.Cost_model.paper_testbed net ~node:1 in
  let got = ref 0 in
  Tigon.set_firmware_rx nic1 (fun _ -> incr got);
  Sim.spawn sim (fun () ->
      Tigon.transmit nic
        (Uls_ether.Frame.make ~src:0 ~dst:1 ~payload_len:64 Uls_ether.Frame.Raw));
  ignore (Sim.run sim);
  check_int "firmware handler ran" 1 !got;
  check_int "counter" 1 (Tigon.frames_received nic1)

let test_tigon_rss_steering () =
  (* Linear firmware: single receive queue, everything steers to 0.
     Hashed firmware: two queues, both actually used, and steering is a
     pure function of the flow. *)
  let _, lin, _ = mk_nic () in
  check_int "linear has 1 rx queue" 1 (Tigon.rx_queues lin);
  for flow = 0 to 31 do
    check_int "all flows on queue 0" 0 (Tigon.steer lin ~flow)
  done;
  let _, hsh, _ = mk_nic ~match_engine:Match_list.Hashed () in
  check_int "hashed has 2 rx queues" 2 (Tigon.rx_queues hsh);
  let seen = Array.make 2 0 in
  for flow = 0 to 31 do
    let q = Tigon.steer hsh ~flow in
    check_bool "queue in range" true (q = 0 || q = 1);
    check_int "steering is stable" q (Tigon.steer hsh ~flow);
    seen.(q) <- seen.(q) + 1
  done;
  check_bool "both queues used" true (seen.(0) > 0 && seen.(1) > 0)

let engine_cases name f =
  [
    Alcotest.test_case (name ^ " (linear)") `Quick (f Match_list.Linear);
    Alcotest.test_case (name ^ " (hashed)") `Quick (f Match_list.Hashed);
  ]

let suites =
  [
    ( "nic.match_list",
      List.concat
        [
          engine_cases "basic" test_match_basic;
          [ Alcotest.test_case "linear walk accounting" `Quick
              test_match_walk_accounting;
            Alcotest.test_case "hashed lookup accounting" `Quick
              test_hashed_lookup_accounting ];
          engine_cases "FIFO same tag" test_match_fifo_same_tag;
          engine_cases "src filter" test_match_src_filter;
          engine_cases "wildcards" test_match_wildcards;
          engine_cases "wildcard beats later exact"
            test_wildcard_beats_later_exact;
          engine_cases "miss walks all" test_match_miss_walks_all;
          engine_cases "unpost" test_unpost;
          engine_cases "unposted never matches" test_unposted_never_matches;
          [ Alcotest.test_case "tombstones free" `Quick
              test_removed_not_counted_in_walk ];
          engine_cases "compaction order" test_compaction_preserves_order;
          engine_cases "10k churn keeps order" test_churn_10k;
          [ Alcotest.test_case "engine parity (pinned seeds)" `Quick
              test_engine_parity_seeded ];
          List.map QCheck_alcotest.to_alcotest [ prop_match_list_vs_model ];
        ] );
    ( "nic.desc_ring",
      [ Alcotest.test_case "FIFO with tombstones" `Quick test_desc_ring_fifo ] );
    ( "nic.tigon",
      [
        Alcotest.test_case "resource FIFO" `Quick test_tigon_resources_serialize;
        Alcotest.test_case "dma cost" `Quick test_tigon_dma_cost;
        Alcotest.test_case "tx backpressure" `Quick test_tigon_backpressure;
        Alcotest.test_case "rx dispatch" `Quick test_tigon_rx_dispatch;
        Alcotest.test_case "rss steering" `Quick test_tigon_rss_steering;
      ] );
  ]
