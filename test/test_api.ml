(* Tests for the stack-agnostic sockets API helpers, using an in-memory
   fake stream (no simulator). *)
open Uls_api.Sockets_api

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* A scripted stream: recv returns the scripted chunks one by one
   (respecting the requested size), then "". *)
let fake_stream chunks =
  let pending = ref chunks in
  let sent = Buffer.create 64 in
  let stream =
    {
      send = Buffer.add_string sent;
      recv =
        (fun n ->
          match !pending with
          | [] -> ""
          | c :: rest ->
            if String.length c <= n then begin
              pending := rest;
              c
            end
            else begin
              pending := String.sub c n (String.length c - n) :: rest;
              String.sub c 0 n
            end);
      close = (fun () -> ());
      readable = (fun () -> !pending <> []);
      watch = (fun _ -> ());
      peer = (fun () -> { node = 1; port = 2 });
      local = (fun () -> { node = 0; port = 3 });
    }
  in
  (stream, sent)

let test_recv_exact_across_chunks () =
  let s, _ = fake_stream [ "ab"; "cd"; "efgh" ] in
  check_str "spans chunks" "abcde" (recv_exact s 5);
  check_str "remainder" "fgh" (recv_exact s 3)

let test_recv_exact_eof_raises () =
  let s, _ = fake_stream [ "ab" ] in
  Alcotest.check_raises "premature eof" Connection_closed (fun () ->
      ignore (recv_exact s 5))

let test_recv_line () =
  let s, _ = fake_stream [ "GET /x"; "\n"; "rest\n" ] in
  check_str "first line" "GET /x" (recv_line s);
  check_str "second line" "rest" (recv_line s)

let test_recv_line_eof_raises () =
  let s, _ = fake_stream [ "no newline" ] in
  Alcotest.check_raises "eof before newline" Connection_closed (fun () ->
      ignore (recv_line s))

let test_send_string () =
  let s, sent = fake_stream [] in
  send_string s "payload";
  check_str "sent" "payload" (Buffer.contents sent)

let test_pp_addr () =
  check_str "format" "3:1234"
    (Format.asprintf "%a" pp_addr { node = 3; port = 1234 })

let test_recv_exact_zero () =
  let s, _ = fake_stream [ "abc" ] in
  check_str "zero bytes" "" (recv_exact s 0);
  check_bool "stream untouched" true (s.readable ())

let suites =
  [
    ( "api.helpers",
      [
        Alcotest.test_case "recv_exact across chunks" `Quick
          test_recv_exact_across_chunks;
        Alcotest.test_case "recv_exact eof" `Quick test_recv_exact_eof_raises;
        Alcotest.test_case "recv_exact zero" `Quick test_recv_exact_zero;
        Alcotest.test_case "recv_line" `Quick test_recv_line;
        Alcotest.test_case "recv_line eof" `Quick test_recv_line_eof_raises;
        Alcotest.test_case "send_string" `Quick test_send_string;
        Alcotest.test_case "pp_addr" `Quick test_pp_addr;
      ] );
  ]
