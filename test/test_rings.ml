(* Tests for the ring-based batched I/O subsystem: cursor-ring
   mechanics (wrap-around, overflow past 2^62), ringpair semantics
   (doorbell batching, backpressure, reaping, busy-poll parity), and
   the end-to-end firehose invariants (batch=1 ablation parity on both
   match engines, doorbell/fetch audit, chaos soak). *)
open Uls_engine
module CR = Uls_rings.Cursor_ring
module RP = Uls_rings.Ringpair
module Firehose = Uls_bench.Firehose

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Cursor_ring mechanics --- *)

let test_wrap_around () =
  let r = CR.create ~capacity:4 ~dummy:(-1) () in
  (* Push/pop more than 3x capacity so the slot index wraps repeatedly;
     FIFO order must survive every wrap. *)
  let popped = ref [] in
  for i = 0 to 13 do
    check_bool "push accepted" true (CR.try_push r i);
    if i mod 2 = 1 then (
      match (CR.try_pop r, CR.try_pop r) with
      | Some a, Some b -> popped := b :: a :: !popped
      | _ -> Alcotest.fail "pop on non-empty ring")
  done;
  Alcotest.(check (list int))
    "FIFO across wraps"
    (List.init 14 (fun i -> i))
    (List.rev !popped);
  check_bool "drained" true (CR.is_empty r)

let test_full_empty_edges () =
  let r = CR.create ~capacity:2 ~dummy:0 () in
  check_bool "fresh ring empty" true (CR.is_empty r);
  check_bool "push 1" true (CR.try_push r 1);
  check_bool "push 2" true (CR.try_push r 2);
  check_bool "full ring rejects" false (CR.try_push r 3);
  check_bool "full" true (CR.is_full r);
  check_int "length" 2 (CR.length r);
  check_bool "drop_oldest" true (CR.drop_oldest r);
  Alcotest.(check (option int)) "2 survives the drop" (Some 2) (CR.try_pop r);
  check_bool "drop on empty" false (CR.drop_oldest r);
  Alcotest.(check (option int)) "pop on empty" None (CR.try_pop r)

let test_cursor_overflow () =
  (* Cursors are free-running ints; place them within a few pushes of
     max_int (2^62 - 1 on 64-bit) and run straight through the
     wrap. Two's-complement distances must keep length/full/empty
     correct on both sides of the overflow. *)
  let r = CR.create ~start:(max_int - 3) ~capacity:8 ~dummy:(-1) () in
  check_bool "starts empty near max_int" true (CR.is_empty r);
  for i = 0 to 7 do
    check_bool "push across overflow" true (CR.try_push r i)
  done;
  check_bool "full across overflow" true (CR.is_full r);
  check_bool "cursor wrapped negative" true (CR.prod_cursor r < 0);
  check_int "length across overflow" 8 (CR.length r);
  Alcotest.(check (list int))
    "order across overflow"
    (List.init 8 (fun i -> i))
    (CR.pop_up_to r ~max:8);
  check_bool "empty after overflow drain" true (CR.is_empty r);
  check_bool "post-overflow push" true (CR.try_push r 99);
  Alcotest.(check (option int)) "post-overflow pop" (Some 99) (CR.try_pop r)

(* --- Ringpair semantics --- *)

let model = Uls_host.Cost_model.paper_testbed

let mk_ring ?mode ?backpressure ?sq_capacity ?(consume = fun _ -> ()) sim =
  let nic_cpu = Resource.create sim ~name:"nic" in
  RP.create ?mode ?backpressure ?sq_capacity ~label:"test-ring" sim ~model
    ~nic_cpu ~dummy_sub:(-1) ~dummy_comp:(-1) ~consume ()

let test_doorbell_batching () =
  let sim = Sim.create () in
  let consumed = ref [] in
  let rp = mk_ring ~consume:(fun x -> consumed := x :: !consumed) sim in
  Sim.spawn sim (fun () ->
      for i = 0 to 31 do
        ignore (RP.submit rp i : bool)
      done;
      RP.ring_doorbell rp;
      (* An empty-SQ doorbell ring must be a free no-op. *)
      Sim.delay sim (Time.ms 1);
      RP.ring_doorbell rp);
  ignore (Sim.run sim);
  let s = RP.stats rp in
  check_int "one doorbell covers the batch" 1 s.RP.doorbells;
  check_int "one fetch batch" 1 s.RP.fetch_batches;
  check_int "all fetched" 32 s.RP.fetched;
  Alcotest.(check (list int))
    "consumed in order"
    (List.init 32 (fun i -> i))
    (List.rev !consumed)

let test_backpressure_block () =
  let sim = Sim.create () in
  let rp = mk_ring ~sq_capacity:4 ~backpressure:RP.Block sim in
  let submitted = ref 0 in
  Sim.spawn sim (fun () ->
      (* 12 submissions through a 4-slot SQ: the producer must block on
         the full ring (flushing the doorbell first, or it would
         deadlock) and still land every descriptor. *)
      for i = 0 to 11 do
        check_bool "block mode always lands" true (RP.submit rp i);
        incr submitted
      done;
      RP.ring_doorbell rp);
  ignore (Sim.run sim);
  let s = RP.stats rp in
  check_int "all submitted" 12 !submitted;
  check_int "all fetched" 12 s.RP.fetched;
  check_int "no drops in block mode" 0 s.RP.sq_drops;
  check_bool "multiple doorbells forced by blocking" true (s.RP.doorbells > 1)

let test_backpressure_drop () =
  let sim = Sim.create () in
  let rp = mk_ring ~sq_capacity:4 ~backpressure:RP.Drop sim in
  let accepted = ref 0 and dropped = ref 0 in
  Sim.spawn sim (fun () ->
      (* No doorbell until the end: the NIC never drains, so pushes
         past capacity must come back [false] instead of blocking. *)
      for i = 0 to 9 do
        if RP.submit rp i then incr accepted else incr dropped
      done;
      RP.ring_doorbell rp);
  ignore (Sim.run sim);
  let s = RP.stats rp in
  check_int "ring capacity accepted" 4 !accepted;
  check_int "overflow dropped" 6 !dropped;
  check_int "drops counted" 6 s.RP.sq_drops;
  check_int "fetched only what landed" 4 s.RP.fetched

let test_empty_reap () =
  let sim = Sim.create () in
  let rp = mk_ring sim in
  Sim.spawn sim (fun () ->
      let t0 = Sim.now sim in
      Alcotest.(check (list int)) "empty reap returns nothing" []
        (RP.reap rp ~max:8);
      check_int "empty reap is free" t0 (Sim.now sim));
  ignore (Sim.run sim);
  check_int "nothing reaped" 0 (RP.stats rp).RP.reaped

let test_reap_batching () =
  let sim = Sim.create () in
  let rp = mk_ring sim in
  Sim.spawn sim (fun () ->
      for i = 0 to 5 do
        RP.complete rp i
      done;
      let t0 = Sim.now sim in
      Alcotest.(check (list int))
        "bulk reap, oldest first"
        [ 0; 1; 2; 3; 4 ]
        (RP.reap rp ~max:5);
      (* First completion pays emp_host_reap; the other four ride at
         ring_reap_slot each. *)
      check_int "reap charge"
        (model.Uls_host.Cost_model.emp_host_reap
        + (4 * model.Uls_host.Cost_model.ring_reap_slot))
        (Sim.now sim - t0);
      Alcotest.(check (list int)) "remainder" [ 5 ] (RP.reap rp ~max:5));
  ignore (Sim.run sim);
  check_int "all reaped" 6 (RP.stats rp).RP.reaped

let test_busy_poll_parity () =
  (* Both modes must consume the identical descriptor sequence; only
     the notification accounting differs (busy-poll rings nothing). *)
  let run_mode mode =
    let sim = Sim.create () in
    let consumed = ref [] in
    let rp =
      mk_ring ~mode ~consume:(fun x -> consumed := x :: !consumed) sim
    in
    Sim.spawn sim (fun () ->
        for i = 0 to 63 do
          ignore (RP.submit rp i : bool);
          if i mod 16 = 15 then RP.ring_doorbell rp
        done);
    ignore (Sim.run sim);
    (List.rev !consumed, (RP.stats rp).RP.doorbells)
  in
  let wake, wake_bells = run_mode RP.Wakeup in
  let poll, poll_bells = run_mode RP.Busy_poll in
  Alcotest.(check (list int)) "same descriptors either mode" wake poll;
  check_int "wakeup rang per batch" 4 wake_bells;
  check_int "busy-poll rang nothing" 0 poll_bells

(* --- End-to-end firehose invariants --- *)

let quick =
  { Firehose.default with Firehose.sinks = 2; count = 300; size = 64 }

let test_batch1_parity_both_engines () =
  (* batch=1 is the per-call ablation: no ring traffic, strict
     doorbell/fetch equality, and (descriptor handling being
     tag-for-tag identical) the same virtual-time result on both match
     engines at the pinned seed. *)
  List.iter
    (fun engine ->
      let r =
        Firehose.run
          { quick with Firehose.batch = 1; match_engine = engine }
      in
      check_bool "completed" true r.Firehose.completed_run;
      check_bool "intact" true r.Firehose.intact;
      check_int "no ring traffic at batch=1" 0 r.Firehose.ring_submitted;
      check_int "no ring doorbells at batch=1" 0 r.Firehose.ring_doorbells;
      check_int "doorbell audit exact at batch=1" r.Firehose.doorbells
        r.Firehose.mailbox_fetches)
    [ Uls_nic.Match_list.Linear; Uls_nic.Match_list.Hashed ];
  let linear =
    Firehose.run
      { quick with Firehose.batch = 1; match_engine = Uls_nic.Match_list.Linear }
  in
  let hashed =
    Firehose.run
      { quick with Firehose.batch = 1; match_engine = Uls_nic.Match_list.Hashed }
  in
  check_int "same deliveries either engine" linear.Firehose.delivered
    hashed.Firehose.delivered;
  check_int "same bytes either engine" linear.Firehose.bytes
    hashed.Firehose.bytes

let test_determinism () =
  let a = Firehose.run { quick with Firehose.batch = 32 } in
  let b = Firehose.run { quick with Firehose.batch = 32 } in
  check_bool "seeded double-run byte-identical" true (a = b)

let test_doorbell_audit_pair () =
  let r = Firehose.run { quick with Firehose.batch = 32 } in
  check_bool "completed" true r.Firehose.completed_run;
  check_bool "batched run uses the ring" true (r.Firehose.ring_submitted > 0);
  (* Every fetch is explained by a doorbell; a doorbell rung while the
     firmware is mid-fetch may coalesce, so doorbells can lead by a
     handful but never trail. *)
  check_bool "fetches never exceed doorbells" true
    (r.Firehose.mailbox_fetches <= r.Firehose.doorbells);
  check_bool "coalescing gap stays small" true
    (r.Firehose.doorbells - r.Firehose.mailbox_fetches <= 16)

let test_chaos_soak () =
  (* 2% seeded frame loss: the reliability layer must re-deliver every
     byte exactly, and the fault engine must actually have fired. *)
  let r = Firehose.run { quick with Firehose.batch = 32; loss = 0.02 } in
  check_bool "completed under loss" true r.Firehose.completed_run;
  check_bool "byte-exact under loss" true r.Firehose.intact;
  check_int "zero mismatches" 0 r.Firehose.mismatches;
  check_bool "faults actually injected" true (r.Firehose.faults_injected > 0);
  check_bool "losses were retransmitted" true (r.Firehose.retransmits > 0)

let suites =
  [
    ( "rings.cursor",
      [
        Alcotest.test_case "wrap-around FIFO" `Quick test_wrap_around;
        Alcotest.test_case "full/empty edges" `Quick test_full_empty_edges;
        Alcotest.test_case "overflow past 2^62" `Quick test_cursor_overflow;
      ] );
    ( "rings.pair",
      [
        Alcotest.test_case "doorbell batching" `Quick test_doorbell_batching;
        Alcotest.test_case "backpressure: block" `Quick test_backpressure_block;
        Alcotest.test_case "backpressure: drop" `Quick test_backpressure_drop;
        Alcotest.test_case "empty reap" `Quick test_empty_reap;
        Alcotest.test_case "bulk reap charge" `Quick test_reap_batching;
        Alcotest.test_case "busy-poll vs wakeup parity" `Quick
          test_busy_poll_parity;
      ] );
    ( "rings.firehose",
      [
        Alcotest.test_case "batch=1 ablation parity (both engines)" `Quick
          test_batch1_parity_both_engines;
        Alcotest.test_case "seeded determinism" `Quick test_determinism;
        Alcotest.test_case "doorbell/fetch audit pair" `Quick
          test_doorbell_audit_pair;
        Alcotest.test_case "chaos soak: byte-exact at 2% loss" `Quick
          test_chaos_soak;
      ] );
  ]
