(* Tests for the fd-tracking layer (§5.4): one generic read/write call
   routed to files or sockets by descriptor. *)
open Uls_engine
module Fdio = Uls_apps.Fdio

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let with_disk f =
  let sim = Sim.create () in
  Sim.spawn sim (fun () ->
      let node = Uls_host.Node.create sim Uls_host.Cost_model.paper_testbed ~id:0 in
      f (Uls_apps.Ramdisk.create node));
  ignore (Sim.run sim)

let test_file_read_cursor () =
  with_disk (fun disk ->
      Uls_apps.Ramdisk.write_file disk ~name:"f" "abcdefgh";
      let t = Fdio.create () in
      let fd = Fdio.open_file t disk ~name:"f" ~mode:`Read in
      check_str "first" "abc" (Fdio.read t fd 3);
      check_str "second advances" "def" (Fdio.read t fd 3);
      check_str "tail" "gh" (Fdio.read t fd 10);
      check_str "eof" "" (Fdio.read t fd 10);
      Fdio.close t fd;
      check_int "closed removes" 0 (Fdio.descriptor_count t))

let test_file_create_flushes_on_close () =
  with_disk (fun disk ->
      let t = Fdio.create () in
      let fd = Fdio.open_file t disk ~name:"out" ~mode:`Create in
      Fdio.write t fd "hello ";
      Fdio.write t fd "world";
      check_bool "not yet on disk" false (Uls_apps.Ramdisk.exists disk "out");
      Fdio.close t fd;
      check_str "flushed" "hello world"
        (Uls_apps.Ramdisk.read disk ~name:"out" ~off:0 ~len:64))

let test_open_missing_raises () =
  with_disk (fun disk ->
      let t = Fdio.create () in
      try
        ignore (Fdio.open_file t disk ~name:"nope" ~mode:`Read);
        Alcotest.fail "expected Not_found"
      with Not_found -> ())

let test_bad_fd () =
  let t = Fdio.create () in
  Alcotest.check_raises "bad fd" (Fdio.Bad_fd 42) (fun () ->
      ignore (Fdio.read t 42 1))

let test_double_close_raises () =
  with_disk (fun disk ->
      Uls_apps.Ramdisk.write_file disk ~name:"f" "x";
      let t = Fdio.create () in
      let fd = Fdio.open_file t disk ~name:"f" ~mode:`Read in
      Fdio.close t fd;
      Alcotest.check_raises "double close" (Fdio.Bad_fd fd) (fun () ->
          Fdio.close t fd))

let test_write_readonly_rejected () =
  with_disk (fun disk ->
      Uls_apps.Ramdisk.write_file disk ~name:"f" "x";
      let t = Fdio.create () in
      let fd = Fdio.open_file t disk ~name:"f" ~mode:`Read in
      Alcotest.check_raises "read-only"
        (Invalid_argument "Fdio.write: read-only file") (fun () ->
          Fdio.write t fd "nope"))

let test_dispatch_file_vs_socket () =
  (* The same generic calls drive a file fd and a socket fd — the whole
     point of descriptor tracking. *)
  with_disk (fun disk ->
      Uls_apps.Ramdisk.write_file disk ~name:"f" "data";
      let sent = Buffer.create 16 in
      let fake : Uls_api.Sockets_api.stream =
        {
          send = Buffer.add_string sent;
          recv = (fun _ -> "sockdata");
          close = (fun () -> Buffer.add_string sent "[closed]");
          readable = (fun () -> true);
          watch = (fun _ -> ());
          peer = (fun () -> { node = 1; port = 1 });
          local = (fun () -> { node = 0; port = 1 });
        }
      in
      let t = Fdio.create () in
      let file_fd = Fdio.open_file t disk ~name:"f" ~mode:`Read in
      let sock_fd = Fdio.socket_fd t fake in
      check_bool "file is not socket" false (Fdio.is_socket t file_fd);
      check_bool "socket is socket" true (Fdio.is_socket t sock_fd);
      check_str "file read" "data" (Fdio.read t file_fd 10);
      check_str "socket read" "sockdata" (Fdio.read t sock_fd 10);
      Fdio.write t sock_fd "tosock";
      Fdio.close t sock_fd;
      check_str "socket ops routed" "tosock[closed]" (Buffer.contents sent);
      Alcotest.check_raises "file fd has no stream" (Fdio.Bad_fd file_fd)
        (fun () -> ignore (Fdio.stream_of_fd t file_fd)))

let test_distinct_fds () =
  with_disk (fun disk ->
      Uls_apps.Ramdisk.write_file disk ~name:"f" "x";
      let t = Fdio.create () in
      let a = Fdio.open_file t disk ~name:"f" ~mode:`Read in
      let b = Fdio.open_file t disk ~name:"f" ~mode:`Read in
      check_bool "unique" true (a <> b);
      check_int "two open" 2 (Fdio.descriptor_count t))

let suites =
  [
    ( "apps.fdio",
      [
        Alcotest.test_case "file cursor" `Quick test_file_read_cursor;
        Alcotest.test_case "create flushes on close" `Quick
          test_file_create_flushes_on_close;
        Alcotest.test_case "open missing" `Quick test_open_missing_raises;
        Alcotest.test_case "bad fd" `Quick test_bad_fd;
        Alcotest.test_case "double close" `Quick test_double_close_raises;
        Alcotest.test_case "read-only write" `Quick test_write_readonly_rejected;
        Alcotest.test_case "file vs socket dispatch" `Quick
          test_dispatch_file_vs_socket;
        Alcotest.test_case "distinct fds" `Quick test_distinct_fds;
      ] );
  ]
