let () =
  Printexc.register_printer (function
    | Uls_engine.Sim.Fiber_failure (name, e) ->
      Some (Printf.sprintf "Fiber_failure(%s, %s)" name (Printexc.to_string e))
    | _ -> None)

let () =
  Alcotest.run "ulsockets"
    (Test_engine.suites @ Test_ether.suites @ Test_host.suites
   @ Test_nic.suites @ Test_emp.suites @ Test_tcp.suites @ Test_substrate.suites
   @ Test_apps.suites @ Test_fdio.suites @ Test_units.suites @ Test_api.suites @ Test_lifecycle.suites @ Test_shape.suites @ Test_collective.suites
   @ Test_chaos.suites @ Test_server.suites @ Test_analysis.suites
   @ Test_fabric.suites @ Test_rings.suites)
