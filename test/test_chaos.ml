(* Fault injection and recovery: the fault engine's determinism, EMP's
   loss recovery mechanics (NACK fast-retransmit, RTO rewind, duplicate
   suppression), the substrate's failure surface (refused vs timed-out
   connects, resets when the transport gives up), and end-to-end chaos
   soaks that stream checksummed data through seeded loss. *)
open Uls_engine
open Uls_host
open Uls_api.Sockets_api
module E = Uls_emp.Endpoint
module Opt = Uls_substrate.Options
module Sub = Uls_substrate.Substrate
module Chaos = Uls_bench.Chaos
module Cluster = Uls_bench.Cluster
module Group = Uls_collective.Group

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let seed = 42
let ds = Opt.data_streaming_enhanced

(* --- Fault engine ------------------------------------------------------ *)

let verdicts ?(n = 200) ?(link = "uplink-0") fault =
  List.init n (fun i ->
      Fault.decision_kind (Fault.decide fault ~link ~src:0 ~dst:(i mod 3)))

let lossy = { Fault.clean with drop_p = 0.2; dup_p = 0.1; corrupt_p = 0.1 }

let test_fault_deterministic () =
  let run () =
    let f = Fault.create ~seed (Sim.create ()) in
    Fault.set_default_plan f lossy;
    verdicts f
  in
  Alcotest.(check (list string)) "same seed, same verdicts" (run ()) (run ());
  let other =
    let f = Fault.create ~seed:(seed + 1) (Sim.create ()) in
    Fault.set_default_plan f lossy;
    verdicts f
  in
  check_bool "different seed, different verdicts" false (run () = other)

let test_fault_inactive_is_free () =
  let f = Fault.create ~seed (Sim.create ()) in
  check_bool "no plan installed" false (Fault.active f);
  List.iter
    (fun v -> check_str "short-circuits to deliver" "deliver" v)
    (verdicts f);
  check_int "nothing injected" 0 (Fault.faults_injected f)

let test_fault_links_independent () =
  (* Each link owns its random stream: traffic on one link must not
     shift the fault pattern another link sees. *)
  let make () =
    let f = Fault.create ~seed (Sim.create ()) in
    Fault.set_default_plan f lossy;
    f
  in
  let quiet = make () in
  let busy = make () in
  ignore (verdicts ~link:"uplink-0" busy);
  Alcotest.(check (list string))
    "uplink-1 pattern unaffected by uplink-0 traffic"
    (verdicts ~link:"uplink-1" quiet)
    (verdicts ~link:"uplink-1" busy);
  check_bool "distinct links, distinct patterns" false
    (verdicts ~link:"uplink-0" quiet = verdicts ~link:"uplink-1" quiet)

let test_fault_link_down_window () =
  let sim = Sim.create () in
  let f = Fault.create ~seed sim in
  Fault.link_down f ~link:"uplink-0" ~from:(Time.us 10) ~until:(Time.us 20);
  let at t = Sim.spawn_at sim t in
  let got = ref [] in
  let probe link () =
    got := Fault.decision_kind (Fault.decide f ~link ~src:0 ~dst:1) :: !got
  in
  at (Time.us 5) (probe "uplink-0");
  at (Time.us 15) (probe "uplink-0");
  at (Time.us 15) (probe "uplink-1");
  at (Time.us 25) (probe "uplink-0");
  ignore (Sim.run sim);
  Alcotest.(check (list string))
    "dropped only inside the window, only on that link"
    [ "deliver"; "drop"; "deliver"; "deliver" ]
    (List.rev !got);
  Alcotest.(check (list (pair string int)))
    "cause accounted" [ ("drop.down", 1) ] (Fault.decisions f)

let test_fault_node_pause () =
  let sim = Sim.create () in
  let f = Fault.create ~seed sim in
  Fault.pause_node f ~node:2 ~from:0 ~until:(Time.us 10);
  let d ~src ~dst = Fault.decision_kind (Fault.decide f ~link:"x" ~src ~dst) in
  check_str "to the paused node" "drop" (d ~src:0 ~dst:2);
  check_str "from the paused node" "drop" (d ~src:2 ~dst:1);
  check_str "bystanders unaffected" "deliver" (d ~src:0 ~dst:1)

(* --- Switch drop accounting -------------------------------------------- *)

let test_switch_drop_causes () =
  let sim = Sim.create () in
  (* Tiny egress queue so convergent traffic overflows deterministically. *)
  let net = Uls_ether.Network.create sim ~queue_limit:4_000 ~stations:4 () in
  for i = 0 to 3 do
    Uls_ether.Network.attach net ~station:i (fun _ -> ())
  done;
  let m = Metrics.for_sim sim in
  let count cause = Metrics.counter_value m ("switch.drop." ^ cause) in
  let frame ~src ~dst =
    Uls_ether.Frame.make ~src ~dst ~payload_len:1500 Uls_ether.Frame.Raw
  in
  (* MAC-table miss. *)
  Uls_ether.Network.send net (frame ~src:0 ~dst:9);
  ignore (Sim.run sim);
  check_int "unknown_dst" 1 (count "unknown_dst");
  (* Two stations flood one egress at 2x its drain rate. *)
  for _ = 1 to 6 do
    Uls_ether.Network.send net (frame ~src:0 ~dst:1);
    Uls_ether.Network.send net (frame ~src:2 ~dst:1)
  done;
  ignore (Sim.run sim);
  check_bool "queue_full" true (count "queue_full" > 0);
  (* Injected fault at switch ingress. *)
  let f = Fault.create ~seed sim in
  Fault.set_default_plan f (Fault.uniform_loss 1.0);
  Uls_ether.Switch.set_fault (Uls_ether.Network.switch net) f;
  Uls_ether.Network.send net (frame ~src:0 ~dst:1);
  ignore (Sim.run sim);
  check_int "fault" 1 (count "fault");
  Alcotest.(check (list (pair string int)))
    "engine agrees" [ ("drop.loss", 1) ] (Fault.decisions f);
  (* Legacy boolean filter keeps its own cause. *)
  Uls_ether.Network.set_fault_filter net (fun _ -> true);
  Uls_ether.Network.send net (frame ~src:0 ~dst:1);
  ignore (Sim.run sim);
  check_int "filter" 1 (count "filter")

(* --- EMP loss recovery -------------------------------------------------- *)

let two_nodes ?config () =
  let c = Cluster.create ~n:2 () in
  let e0 = Cluster.emp ?config c 0 in
  let e1 = Cluster.emp ?config c 1 in
  (c, e0, e1)

let send_string e ~dst ~tag s =
  let region = Memory.of_string s in
  E.post_send e ~dst ~tag region ~off:0 ~len:(String.length s)

let test_single_drop_one_nack () =
  (* One lost data frame: the receiver NACKs the gap exactly once and
     the sender rewinds immediately — well before its 2 ms RTO. *)
  let c, e0, e1 = two_nodes () in
  let sim = Cluster.sim c in
  let n = ref 0 in
  Uls_ether.Network.set_fault_filter (Cluster.network c) (fun frame ->
      match frame.Uls_ether.Frame.payload with
      | Uls_emp.Wire.Data _ ->
        incr n;
        !n = 3
      | _ -> false);
  let size = 50_000 in
  let payload = String.init size (fun i -> Char.chr (i mod 251)) in
  let got = ref "" in
  let t_done = ref max_int in
  Sim.spawn sim (fun () ->
      let buf = Memory.alloc size in
      let r = E.post_recv e1 ~src:0 ~tag:5 buf ~off:0 ~len:size in
      let len, _, _ = E.wait_recv e1 r in
      got := Memory.sub_string buf ~off:0 ~len);
  Sim.spawn sim (fun () ->
      E.wait_send e0 (send_string e0 ~dst:1 ~tag:5 payload);
      t_done := Sim.now sim);
  ignore (Cluster.run c);
  check_bool "payload intact" true (String.equal payload !got);
  check_int "exactly one nack" 1 (E.stats e1).E.nacks_sent;
  check_bool "frames retransmitted" true
    ((E.stats e0).E.frames_retransmitted > 0);
  check_bool "fast retransmit beat the RTO" true
    (!t_done < (E.config e0).E.rto)

let test_ack_loss_rto_rewind () =
  (* Every early ack is lost: only the RTO rewind can recover, and since
     the receiver holds a complete prefix it never NACKs. *)
  let c, e0, e1 = two_nodes () in
  let sim = Cluster.sim c in
  let dropped = ref 0 in
  Uls_ether.Network.set_fault_filter (Cluster.network c) (fun frame ->
      match frame.Uls_ether.Frame.payload with
      | Uls_emp.Wire.Ack _ when !dropped < 3 ->
        incr dropped;
        true
      | _ -> false);
  let payload = String.init 8_000 (fun i -> Char.chr (i mod 256)) in
  let got = ref "" in
  Sim.spawn sim (fun () ->
      let buf = Memory.alloc 8_000 in
      let r = E.post_recv e1 ~src:0 ~tag:6 buf ~off:0 ~len:8_000 in
      let len, _, _ = E.wait_recv e1 r in
      got := Memory.sub_string buf ~off:0 ~len);
  Sim.spawn sim (fun () -> E.wait_send e0 (send_string e0 ~dst:1 ~tag:6 payload));
  ignore (Cluster.run c);
  check_bool "payload intact" true (String.equal payload !got);
  check_bool "rewind retransmitted" true
    ((E.stats e0).E.frames_retransmitted > 0);
  check_int "no gap, no nack" 0 (E.stats e1).E.nacks_sent;
  check_bool "acks were lost" true (!dropped >= 2)

let test_duplicates_never_double_count () =
  (* Every frame from node 0 delivered twice: payloads must arrive once
     each, and message accounting must not inflate. *)
  let c, e0, e1 = two_nodes () in
  let sim = Cluster.sim c in
  let fault = Fault.create ~seed sim in
  Fault.set_link_plan fault ~link:"uplink-0" { Fault.clean with dup_p = 1.0 };
  Uls_ether.Network.set_fault (Cluster.network c) fault;
  let payloads =
    List.init 3 (fun k -> String.init 10_000 (fun i -> Char.chr ((i + k) mod 256)))
  in
  let got = ref [] in
  Sim.spawn sim (fun () ->
      List.iteri
        (fun k p ->
          let buf = Memory.alloc (String.length p) in
          let r =
            E.post_recv e1 ~src:0 ~tag:(10 + k) buf ~off:0
              ~len:(String.length p)
          in
          let len, _, _ = E.wait_recv e1 r in
          got := Memory.sub_string buf ~off:0 ~len :: !got)
        payloads);
  Sim.spawn sim (fun () ->
      List.iteri
        (fun k p -> E.wait_send e0 (send_string e0 ~dst:1 ~tag:(10 + k) p))
        payloads);
  ignore (Cluster.run c);
  Alcotest.(check (list string)) "each payload delivered once" payloads
    (List.rev !got);
  check_int "message count not inflated" 3 (E.stats e1).E.messages_received;
  check_bool "duplicates were injected" true (Fault.faults_injected fault > 0)

let test_corruption_crc_dropped_and_recovered () =
  (* Corrupted frames reach the NIC, fail its CRC check and are dropped
     there; EMP retransmission heals the stream. *)
  let c, e0, e1 = two_nodes () in
  let sim = Cluster.sim c in
  let fault = Fault.create ~seed sim in
  Fault.set_link_plan fault ~link:"uplink-0"
    { Fault.clean with corrupt_p = 0.05 };
  Uls_ether.Network.set_fault (Cluster.network c) fault;
  let size = 100_000 in
  let payload = String.init size (fun i -> Char.chr (i mod 253)) in
  let got = ref "" in
  Sim.spawn sim (fun () ->
      let buf = Memory.alloc size in
      let r = E.post_recv e1 ~src:0 ~tag:2 buf ~off:0 ~len:size in
      let len, _, _ = E.wait_recv e1 r in
      got := Memory.sub_string buf ~off:0 ~len);
  Sim.spawn sim (fun () -> E.wait_send e0 (send_string e0 ~dst:1 ~tag:2 payload));
  ignore (Cluster.run c);
  check_bool "payload intact" true (String.equal payload !got);
  let crc_drops =
    Metrics.counter_value (Metrics.for_sim sim) ~node:1 "nic.rx_crc_drop"
  in
  check_bool "NIC counted CRC drops" true (crc_drops > 0)

(* --- Substrate failure surface ------------------------------------------ *)

let test_connect_refused_releases_connection () =
  (* UQ on: the server's refusal scanner answers requests for dead ports,
     so the client learns immediately and tears its half-connection down. *)
  let opts = { ds with Opt.connect_timeout = Time.ms 5 } in
  let c = Cluster.create ~n:2 () in
  let api = Cluster.substrate_api ~opts c in
  let sim = Cluster.sim c in
  let refused = ref false in
  Sim.spawn sim (fun () ->
      try ignore (api.connect ~node:0 { node = 1; port = 99 })
      with Connection_refused _ -> refused := true);
  ignore (Cluster.run c);
  check_bool "refused" true !refused;
  check_int "no leaked connection" 0
    (Sub.active_connections (Cluster.substrate c 0));
  check_bool "server sent the refusal" true
    (Metrics.counter_value (Metrics.for_sim sim) ~node:1 "sub.refusals_sent"
    > 0)

let test_connect_timeout_after_retries () =
  (* UQ off: nothing on the server can answer, so the client resends
     with backoff and finally raises the retryable timeout. *)
  let opts =
    {
      Opt.data_streaming with
      Opt.connect_timeout = Time.ms 2;
      connect_attempts = 3;
    }
  in
  let c = Cluster.create ~n:2 () in
  let api = Cluster.substrate_api ~opts c in
  let sim = Cluster.sim c in
  let timed_out = ref false in
  Sim.spawn sim (fun () ->
      try ignore (api.connect ~node:0 { node = 1; port = 99 })
      with Connection_timeout _ -> timed_out := true);
  ignore (Cluster.run c);
  check_bool "timed out" true !timed_out;
  check_int "no leaked connection" 0
    (Sub.active_connections (Cluster.substrate c 0));
  check_int "request was retried" 2
    (Metrics.counter_value (Metrics.for_sim sim) ~node:0 "sub.connect_retries")

let test_link_down_resets_connection () =
  (* The wire goes dark mid-stream: EMP exhausts its retries, the
     substrate maps the failure to the connection, and the blocked
     writer unwinds with Connection_reset instead of hanging. *)
  let config = { E.default_config with E.max_retries = 3; rto = Time.us 200 } in
  let c = Cluster.create ~n:2 () in
  let e0 = Cluster.emp ~config c 0 in
  ignore (Cluster.emp ~config c 1);
  let opts = { ds with Opt.credits = 2; buffer_size = 4_096 } in
  let api = Cluster.substrate_api ~opts c in
  let sim = Cluster.sim c in
  let fault = Fault.create ~seed sim in
  Fault.link_down fault ~link:"uplink-0" ~from:(Time.ms 1) ~until:(Time.s 50);
  Uls_ether.Network.set_fault (Cluster.network c) fault;
  let reset = ref false in
  let descriptors_after = ref (-1) in
  Sim.spawn sim (fun () ->
      let l = api.listen ~node:1 ~port:80 ~backlog:1 in
      let s, _ = l.accept () in
      (* Consume continuously so the writer streams — and therefore has
         frames in flight — at the moment the link dies. *)
      try
        while true do
          ignore (s.recv 4_096)
        done
      with
      (* The server may learn of the dead peer through its own failing
         credit-ack sends, so its side can reset as well. *)
      | Connection_closed | Connection_reset -> ());
  Sim.spawn sim (fun () ->
      Sim.delay sim (Time.us 10);
      let s = api.connect ~node:0 { node = 1; port = 80 } in
      let chunk = String.make 2_000 'z' in
      (try
         for _ = 1 to 1_000 do
           s.send chunk
         done
       with Connection_reset ->
         reset := true;
         descriptors_after := E.posted_descriptors e0);
      s.close ());
  let outcome = Cluster.run ~until:(Time.s 60) c in
  check_bool "writer unwound with reset" true !reset;
  check_bool "sim quiesced (no hung fiber)" true (outcome = `Quiescent);
  check_int "reset counted" 1
    (Metrics.counter_value (Metrics.for_sim sim) ~node:0 "sub.resets");
  check_int "descriptors reclaimed" 0 !descriptors_after;
  check_int "no leaked connection" 0
    (Sub.active_connections (Cluster.substrate c 0))

(* --- End-to-end chaos soaks --------------------------------------------- *)

let loss_rates = Chaos.default_rates

let test_stream_integrity kind () =
  List.iter
    (fun loss ->
      let r = Chaos.stream_run ~kind ~seed ~loss ~total:262_144 ~msg:8_192 in
      let label =
        Printf.sprintf "%s at %.1f%% loss" (Chaos.kind_name kind)
          (loss *. 100.)
      in
      check_bool (label ^ ": finished in bounded time") true r.Chaos.completed;
      check_bool (label ^ ": bytes intact") true r.Chaos.intact;
      if loss > 0. then begin
        check_bool (label ^ ": faults were injected") true
          (r.Chaos.faults_injected > 0);
        check_bool (label ^ ": recovery work happened") true
          (r.Chaos.retransmits > 0)
      end
      else
        check_int (label ^ ": clean run needs no retransmits") 0
          r.Chaos.retransmits)
    loss_rates

let test_chaos_deterministic () =
  let kind = Chaos.Sub ds in
  let run () = Chaos.stream_run ~kind ~seed ~loss:0.02 ~total:131_072 ~msg:4_096 in
  let a = run () and b = run () in
  check_int "same faults" a.Chaos.faults_injected b.Chaos.faults_injected;
  check_int "same retransmits" a.Chaos.retransmits b.Chaos.retransmits;
  check_int "same nacks" a.Chaos.nacks b.Chaos.nacks;
  check_bool "same virtual elapsed" true (a.Chaos.elapsed_ms = b.Chaos.elapsed_ms)

let test_pingpong_under_chaos () =
  (* Mixed faults — loss, duplication, delay/reordering — under a strict
     request/reply pattern: every reply must match its request. *)
  let c = Cluster.create ~n:2 () in
  let api = Cluster.substrate_api ~opts:ds c in
  let sim = Cluster.sim c in
  let fault = Fault.create ~seed sim in
  Fault.set_default_plan fault
    {
      Fault.clean with
      drop_p = 0.02;
      dup_p = 0.005;
      delay_p = 0.01;
      delay_max = Time.us 50;
    };
  Uls_ether.Network.set_fault (Cluster.network c) fault;
  let rounds = 50 in
  let ok = ref 0 in
  Sim.spawn sim (fun () ->
      let l = api.listen ~node:1 ~port:80 ~backlog:1 in
      let s, _ = l.accept () in
      (try
         while true do
           s.send (recv_exact s 64)
         done
       with Connection_closed -> ());
      s.close ());
  Sim.spawn sim (fun () ->
      Sim.delay sim (Time.us 20);
      let s = api.connect ~node:0 { node = 1; port = 80 } in
      for i = 1 to rounds do
        let msg = Printf.sprintf "%064d" i in
        s.send msg;
        if String.equal (recv_exact s 64) msg then incr ok
      done;
      s.close ());
  let outcome = Cluster.run ~until:(Time.s 60) c in
  check_bool "liveness" true (outcome = `Quiescent);
  check_int "every round echoed exactly" rounds !ok;
  check_bool "chaos actually ran" true (Fault.faults_injected fault > 0)

let test_datagram_rendezvous_under_loss () =
  (* Datagram mode straddling eager_max: small messages go eager, large
     ones rendezvous, all under loss, all boundary-exact. *)
  let sizes = [ 512; 24_000; 1_024; 40_000; 100 ] in
  let c = Cluster.create ~n:2 () in
  let api = Cluster.substrate_api ~opts:Opt.datagram c in
  let sim = Cluster.sim c in
  let fault = Fault.create ~seed sim in
  Fault.set_default_plan fault (Fault.uniform_loss 0.02);
  Uls_ether.Network.set_fault (Cluster.network c) fault;
  let payload k n = String.init n (fun i -> Char.chr ((i + (7 * k)) mod 256)) in
  let bad = ref 0 in
  Sim.spawn sim (fun () ->
      let l = api.listen ~node:1 ~port:80 ~backlog:1 in
      let s, _ = l.accept () in
      List.iteri
        (fun k n -> if not (String.equal (s.recv n) (payload k n)) then incr bad)
        sizes;
      s.close ());
  Sim.spawn sim (fun () ->
      Sim.delay sim (Time.us 10);
      let s = api.connect ~node:0 { node = 1; port = 80 } in
      List.iteri (fun k n -> s.send (payload k n)) sizes;
      s.close ());
  let outcome = Cluster.run ~until:(Time.s 60) c in
  check_bool "liveness" true (outcome = `Quiescent);
  check_int "every datagram boundary-exact" 0 !bad

let pack_float v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float v);
  Bytes.to_string b

let unpack_float s = Int64.float_of_bits (Bytes.get_int64_le (Bytes.of_string s) 0)

let test_collectives_under_loss () =
  (* Barrier and allreduce on the reliable binomial tree, under loss:
     EMP retransmission must keep every round exact. *)
  let n = 4 in
  let c = Cluster.create ~n () in
  let sim = Cluster.sim c in
  let fault = Fault.create ~seed sim in
  Fault.set_default_plan fault (Fault.uniform_loss 0.02);
  Uls_ether.Network.set_fault (Cluster.network c) fault;
  let eps = Array.init n (fun i -> Cluster.emp c i) in
  let sums = Array.make n [] in
  for r = 0 to n - 1 do
    Sim.spawn sim (fun () ->
        let g = Uls_collective.Emp_group.create ~nic:false eps ~rank:r in
        for round = 1 to 3 do
          Group.barrier ~alg:Group.Binomial_tree g;
          let v = pack_float (float_of_int ((r + 1) * round)) in
          let s =
            Group.allreduce ~alg:Group.Binomial_tree g ~op:Group.float_sum
              ~max:8 v
          in
          sums.(r) <- unpack_float s :: sums.(r)
        done)
  done;
  let outcome = Cluster.run ~until:(Time.s 60) c in
  check_bool "liveness" true (outcome = `Quiescent);
  (* Sum over ranks of (r+1)*round = 10 * round. *)
  Array.iteri
    (fun r got ->
      Alcotest.(check (list (float 1e-9)))
        (Printf.sprintf "rank %d allreduce results" r)
        [ 30.0; 20.0; 10.0 ] got)
    sums;
  check_bool "loss was injected" true (Fault.faults_injected fault > 0)

let suites =
  [
    ( "fault",
      [
        Alcotest.test_case "deterministic" `Quick test_fault_deterministic;
        Alcotest.test_case "inactive is free" `Quick test_fault_inactive_is_free;
        Alcotest.test_case "links independent" `Quick
          test_fault_links_independent;
        Alcotest.test_case "link down window" `Quick test_fault_link_down_window;
        Alcotest.test_case "node pause" `Quick test_fault_node_pause;
        Alcotest.test_case "switch drop causes" `Quick test_switch_drop_causes;
      ] );
    ( "emp-recovery",
      [
        Alcotest.test_case "single drop, one nack" `Quick
          test_single_drop_one_nack;
        Alcotest.test_case "ack loss, rto rewind" `Quick
          test_ack_loss_rto_rewind;
        Alcotest.test_case "duplicates not double-counted" `Quick
          test_duplicates_never_double_count;
        Alcotest.test_case "corruption crc-dropped, recovered" `Quick
          test_corruption_crc_dropped_and_recovered;
      ] );
    ( "substrate-failures",
      [
        Alcotest.test_case "refused releases connection" `Quick
          test_connect_refused_releases_connection;
        Alcotest.test_case "timeout after retries" `Quick
          test_connect_timeout_after_retries;
        Alcotest.test_case "link down resets connection" `Quick
          test_link_down_resets_connection;
      ] );
    ( "chaos",
      [
        Alcotest.test_case "substrate stream loss sweep" `Slow
          (test_stream_integrity (Chaos.Sub ds));
        Alcotest.test_case "tcp stream loss sweep" `Slow
          (test_stream_integrity (Chaos.Tcp Uls_tcp.Config.default));
        Alcotest.test_case "deterministic sweep" `Quick
          test_chaos_deterministic;
        Alcotest.test_case "pingpong under chaos" `Quick
          test_pingpong_under_chaos;
        Alcotest.test_case "datagram rendezvous under loss" `Quick
          test_datagram_rendezvous_under_loss;
        Alcotest.test_case "collectives under loss" `Quick
          test_collectives_under_loss;
      ] );
  ]
