(* Tests for the sockets-over-EMP substrate: connection management,
   streaming vs datagram semantics, credit flow control, rendezvous
   (including the Figure 7 deadlock), enhancement options, resource
   reclamation, select. *)
open Uls_engine
open Uls_api.Sockets_api
module Opt = Uls_substrate.Options
module Sub = Uls_substrate.Substrate
module E = Uls_emp.Endpoint

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let ds = Opt.data_streaming_enhanced
let dg = Opt.datagram

let with_cluster ?(opts = ds) ~n f =
  let c = Uls_bench.Cluster.create ~n () in
  let api = Uls_bench.Cluster.substrate_api ~opts c in
  f c api (Uls_bench.Cluster.sim c)

let test_connect_exchange () =
  with_cluster ~n:2 (fun c api sim ->
      let got = ref "" in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:4 in
          let s, peer = l.accept () in
          check_int "client node" 0 peer.node;
          got := recv_exact s 5;
          s.send "world";
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send "hello";
          check_str "reply" "world" (recv_exact s 5);
          check_str "eof" "" (s.recv 4);
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_str "request" "hello" !got)

let test_connection_refused () =
  let opts = { ds with Opt.connect_timeout = Time.ms 5 } in
  with_cluster ~opts ~n:2 (fun c api sim ->
      let refused = ref false in
      Sim.spawn sim (fun () ->
          try ignore (api.connect ~node:0 { node = 1; port = 99 })
          with Connection_refused _ -> refused := true);
      ignore (Uls_bench.Cluster.run c);
      check_bool "refused" true !refused)

let test_streaming_partial_reads () =
  (* The paper's §5.2 example: send 10 bytes, read them as 2 x 5. *)
  with_cluster ~n:2 (fun c api sim ->
      let parts = ref [] in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          let first = recv_exact s 5 in
          let second = recv_exact s 5 in
          parts := [ first; second ];
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send "0123456789";
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      Alcotest.(check (list string)) "split read" [ "01234"; "56789" ] !parts)

let test_streaming_coalesced_reads () =
  (* Two writes read back in one recv (boundaries are not preserved). *)
  with_cluster ~n:2 (fun c api sim ->
      let got = ref "" in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          Sim.delay sim (Time.ms 1);
          (* both messages have arrived by now *)
          got := recv_exact s 8;
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send "aaaa";
          s.send "bbbb";
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_str "coalesced" "aaaabbbb" !got)

let test_datagram_boundaries () =
  with_cluster ~opts:dg ~n:2 (fun c api sim ->
      let reads = ref [] in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          for _ = 1 to 3 do
            reads := s.recv 100 :: !reads
          done;
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send "first";
          s.send "second";
          s.send "third";
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      Alcotest.(check (list string))
        "one message per recv" [ "first"; "second"; "third" ] (List.rev !reads))

let test_datagram_truncation () =
  with_cluster ~opts:dg ~n:2 (fun c api sim ->
      let reads = ref [] in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          let first = s.recv 3 in
          let second = s.recv 10 in
          reads := [ first; second ];
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send "truncate-me";
          s.send "next";
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      Alcotest.(check (list string))
        "short read truncates the datagram" [ "tru"; "next" ] !reads)

let test_large_transfer_integrity_ds () =
  with_cluster ~n:2 (fun c api sim ->
      let total = 1_000_000 in
      let payload = String.init total (fun i -> Char.chr ((i * 13) mod 256)) in
      let received = Buffer.create total in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          let rec pull () =
            let chunk = s.recv 48_000 in
            if chunk <> "" then begin
              Buffer.add_string received chunk;
              pull ()
            end
          in
          pull ();
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send payload;
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_bool "1MB stream intact" true
        (String.equal payload (Buffer.contents received)))

let test_rendezvous_large_datagram () =
  with_cluster ~opts:dg ~n:2 (fun c api sim ->
      (* Over eager_max: travels via the rendezvous zero-copy path. *)
      let size = 100_000 in
      let payload = String.init size (fun i -> Char.chr ((i * 3) mod 256)) in
      let got = ref "" in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          got := s.recv size;
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send payload;
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_bool "rendezvous payload intact" true (String.equal payload !got))

let test_rendezvous_interleaves_with_eager_in_order () =
  with_cluster ~opts:dg ~n:2 (fun c api sim ->
      let big = String.make 50_000 'B' in
      let reads = ref [] in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          for _ = 1 to 3 do
            reads := String.length (s.recv 60_000) :: !reads
          done;
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send "small1";
          s.send big;
          s.send "small2";
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      Alcotest.(check (list int))
        "arrival order preserved across paths" [ 6; 50_000; 6 ] (List.rev !reads))

let test_credit_exhaustion_blocks_writer () =
  let opts = { ds with Opt.credits = 4; buffer_size = 4_096 } in
  with_cluster ~opts ~n:2 (fun c api sim ->
      let writer_done = ref 0 and reader_started = ref 0 in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          Sim.delay sim (Time.ms 10);
          reader_started := Sim.now sim;
          let rec drain got =
            if got < 100_000 then drain (got + String.length (s.recv 8_192))
          in
          drain 0;
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          (* 100 KB through 4 x 4 KB credits: must stall until reads. *)
          s.send (String.make 100_000 'c');
          writer_done := Sim.now sim;
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_bool "writer waited for credits" true (!writer_done > !reader_started))

let test_eager_tolerates_crossing_writes () =
  (* Figure 9: up to N outstanding writes before the matching reads. *)
  with_cluster ~n:2 (fun c api sim ->
      let completed = ref 0 in
      let payload = String.make 4_096 'x' in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          s.send payload;
          ignore (recv_exact s 4_096);
          incr completed;
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send payload;
          ignore (recv_exact s 4_096);
          incr completed;
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_int "both sides completed" 2 !completed)

let test_rendezvous_deadlock_figure7 () =
  let opts = { ds with Opt.scheme = Opt.Rendezvous } in
  with_cluster ~opts ~n:2 (fun c api sim ->
      let completed = ref 0 in
      let payload = String.make 4_096 'x' in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          s.send payload;
          ignore (recv_exact s 4_096);
          incr completed);
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send payload;
          ignore (recv_exact s 4_096);
          incr completed);
      (match Uls_bench.Cluster.run ~until:(Time.ms 200) c with
      | `Time_limit | `Quiescent | `Stopped -> ());
      check_int "neither side progressed" 0 !completed;
      check_bool "writers parked" true (Sim.blocked_fibers sim >= 2))

let test_close_reclaims_descriptors () =
  with_cluster ~n:2 (fun c api sim ->
      let emp1 = Uls_bench.Cluster.emp c 1 in
      let baseline = ref 0 and during = ref 0 and after = ref 0 in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:2 in
          baseline := E.posted_descriptors emp1;
          let s, _ = l.accept () in
          during := E.posted_descriptors emp1;
          ignore (recv_exact s 3);
          s.close ();
          Sim.delay sim (Time.ms 1);
          after := E.posted_descriptors emp1);
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send "bye";
          Sim.delay sim (Time.ms 30);
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_bool "connection posted descriptors" true (!during > !baseline);
      check_int "close unposted them all" !baseline !after)

let test_close_message_preserves_tail_data () =
  (* Writer sends a multi-frame message and closes immediately; the
     reader must still get every byte before EOF (close carries a
     sequence number so it cannot overtake data). *)
  with_cluster ~n:2 (fun c api sim ->
      let got = ref 0 in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          let rec drain () =
            let chunk = s.recv 65_536 in
            if chunk <> "" then begin
              got := !got + String.length chunk;
              drain ()
            end
          in
          drain ();
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send (String.make 50_000 't');
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_int "all bytes before EOF" 50_000 !got)

let test_send_to_closed_peer_raises () =
  with_cluster ~n:2 (fun c api sim ->
      let raised = ref false in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          Sim.delay sim (Time.ms 1);
          (try s.send "too late" with Connection_closed -> raised := true);
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_bool "write after peer close raises" true !raised)

let test_backlog_queues_connections () =
  with_cluster ~n:4 (fun c api sim ->
      let served = ref [] in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:0 ~port:80 ~backlog:3 in
          for _ = 1 to 3 do
            let s, peer = l.accept () in
            served := peer.node :: !served;
            ignore (recv_exact s 1);
            s.close ()
          done);
      for client = 1 to 3 do
        Sim.spawn sim (fun () ->
            Sim.delay sim (Time.us (10 * client));
            let s = api.connect ~node:client { node = 0; port = 80 } in
            s.send "x";
            Sim.delay sim (Time.ms 20);
            s.close ())
      done;
      ignore (Uls_bench.Cluster.run c);
      Alcotest.(check (list int)) "accepted in request order" [ 1; 2; 3 ]
        (List.rev !served))

let test_bind_in_use () =
  with_cluster ~n:2 (fun c api sim ->
      let raised = ref false in
      Sim.spawn sim (fun () ->
          let _l = api.listen ~node:1 ~port:80 ~backlog:1 in
          try ignore (api.listen ~node:1 ~port:80 ~backlog:1)
          with Bind_in_use _ -> raised := true);
      ignore (Uls_bench.Cluster.run c);
      check_bool "second bind rejected" true !raised)

let test_select_substrate () =
  with_cluster ~n:3 (fun c api sim ->
      let order = ref [] in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:0 ~port:80 ~backlog:2 in
          let s1, _ = l.accept () in
          let s2, _ = l.accept () in
          for _ = 1 to 2 do
            let ready = api.select ~node:0 [ s1; s2 ] in
            List.iter
              (fun s ->
                let m = s.recv 16 in
                if m <> "" then order := m :: !order)
              ready
          done;
          s1.close ();
          s2.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:1 { node = 0; port = 80 } in
          Sim.delay sim (Time.ms 3);
          s.send "late";
          Sim.delay sim (Time.ms 10);
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 20);
          let s = api.connect ~node:2 { node = 0; port = 80 } in
          Sim.delay sim (Time.ms 1);
          s.send "early";
          Sim.delay sim (Time.ms 10);
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      Alcotest.(check (list string)) "select wake order" [ "early"; "late" ]
        (List.rev !order))

let test_uq_option_uses_unexpected_queue () =
  with_cluster ~opts:{ ds with Opt.credits = 4 } ~n:2 (fun c api sim ->
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          for _ = 1 to 20 do
            ignore (recv_exact s 64)
          done;
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          for _ = 1 to 20 do
            s.send (String.make 64 'u')
          done;
          Sim.delay sim (Time.ms 5);
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      (* The client's credit acks arrive with no pre-posted descriptor
         and are absorbed by the unexpected queue. *)
      check_bool "acks landed in the UQ" true
        ((E.stats (Uls_bench.Cluster.emp c 0)).E.unexpected_queue_hits > 0))

let test_piggyback_reduces_messages () =
  let count_messages piggyback =
    let opts = { ds with Opt.piggyback; delayed_acks = false } in
    with_cluster ~opts ~n:2 (fun c api sim ->
        Sim.spawn sim (fun () ->
            let l = api.listen ~node:1 ~port:80 ~backlog:1 in
            let s, _ = l.accept () in
            for _ = 1 to 20 do
              s.send (recv_exact s 8)
            done;
            s.close ());
        Sim.spawn sim (fun () ->
            Sim.delay sim (Time.us 10);
            let s = api.connect ~node:0 { node = 1; port = 80 } in
            for _ = 1 to 20 do
              s.send "12345678";
              ignore (recv_exact s 8)
            done;
            s.close ());
        ignore (Uls_bench.Cluster.run c);
        (E.stats (Uls_bench.Cluster.emp c 1)).E.messages_sent)
  in
  let without = count_messages false in
  let with_pb = count_messages true in
  check_bool "piggyback eliminates explicit acks" true (with_pb < without)

let test_comm_thread_scheme () =
  (* §5.2 alternative 1: no credits/acks; the comm thread reposts. *)
  let opts = { ds with Opt.scheme = Opt.Comm_thread } in
  with_cluster ~opts ~n:2 (fun c api sim ->
      let total = 200_000 in
      let payload = String.init total (fun i -> Char.chr ((i * 5) mod 256)) in
      let received = Buffer.create total in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          let rec pull () =
            let chunk = s.recv 65_536 in
            if chunk <> "" then begin
              Buffer.add_string received chunk;
              pull ()
            end
          in
          pull ();
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send payload;
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_bool "comm-thread stream intact" true
        (String.equal payload (Buffer.contents received));
      (* no substrate-level credit acks at all *)
      let tags_acked =
        (E.stats (Uls_bench.Cluster.emp c 0)).E.unexpected_queue_hits
      in
      check_int "no credit acks" 0 tags_acked)

let test_comm_thread_unresponsive_reader_recovers () =
  (* With no flow control, a sleeping reader exhausts the 2N buffers;
     EMP retransmission recovers once it drains (the congestion the
     paper warns about in 5.2). *)
  let opts =
    { ds with Opt.scheme = Opt.Comm_thread; credits = 2; buffer_size = 4_096 }
  in
  with_cluster ~opts ~n:2 (fun c api sim ->
      let total = 60_000 in
      let got = ref 0 in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          Sim.delay sim (Time.ms 20);
          let rec pull () =
            let chunk = s.recv 65_536 in
            if chunk <> "" then begin
              got := !got + String.length chunk;
              pull ()
            end
          in
          pull ();
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send (String.make total 'z');
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_int "all bytes eventually delivered" total !got;
      check_bool "retransmissions occurred" true
        ((E.stats (Uls_bench.Cluster.emp c 0)).E.frames_retransmitted > 0))

let test_block_send_completes_and_costs_rtt () =
  let run block_send =
    let opts = { ds with Opt.block_send } in
    with_cluster ~opts ~n:2 (fun c api sim ->
        let finish = ref 0 in
        Sim.spawn sim (fun () ->
            let l = api.listen ~node:1 ~port:80 ~backlog:1 in
            let s, _ = l.accept () in
            for _ = 1 to 10 do
              ignore (recv_exact s 64)
            done;
            s.close ());
        Sim.spawn sim (fun () ->
            Sim.delay sim (Time.us 10);
            let s = api.connect ~node:0 { node = 1; port = 80 } in
            for _ = 1 to 10 do
              s.send (String.make 64 'b')
            done;
            finish := Sim.now sim;
            s.close ());
        ignore (Uls_bench.Cluster.run c);
        !finish)
  in
  let normal = run false and blocking = run true in
  check_bool "blocking send is much slower" true (blocking > 2 * normal)

let test_many_connections_interleaved () =
  (* Several simultaneous sockets between the same pair of nodes: tag
     matching must keep their byte streams apart. *)
  with_cluster ~n:2 (fun c api sim ->
      let conns = 5 and per_conn = 30_000 in
      let payload k =
        String.init per_conn (fun i -> Char.chr (((i * 7) + (k * 31)) mod 256))
      in
      let results = Array.make conns "" in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:conns in
          for _ = 1 to conns do
            let s, _ = l.accept () in
            Sim.spawn sim (fun () ->
                let k = int_of_string (recv_exact s 1) in
                results.(k) <- recv_exact s per_conn;
                s.close ())
          done);
      for k = 0 to conns - 1 do
        Sim.spawn sim (fun () ->
            Sim.delay sim (Time.us (10 * (k + 1)));
            let s = api.connect ~node:0 { node = 1; port = 80 } in
            s.send (string_of_int k);
            s.send (payload k);
            Sim.delay sim (Time.ms 50);
            s.close ())
      done;
      ignore (Uls_bench.Cluster.run c);
      for k = 0 to conns - 1 do
        check_bool
          (Printf.sprintf "stream %d kept separate" k)
          true
          (String.equal results.(k) (payload k))
      done)

let test_substrate_loss_recovery () =
  (* EMP's NIC-level reliability hides switch drops from the sockets
     layer entirely. *)
  with_cluster ~n:2 (fun c api sim ->
      let rng = Rng.create ~seed:11 in
      Uls_ether.Network.set_fault_filter (Uls_bench.Cluster.network c) (fun _ ->
          Rng.int rng 20 = 0);
      let total = 300_000 in
      let payload = String.init total (fun i -> Char.chr ((i * 29) mod 256)) in
      let received = Buffer.create total in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          let rec pull () =
            let chunk = s.recv 65_536 in
            if chunk <> "" then begin
              Buffer.add_string received chunk;
              pull ()
            end
          in
          pull ();
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send payload;
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_bool "stream intact under 5% loss" true
        (String.equal payload (Buffer.contents received));
      check_bool "EMP retransmitted" true
        ((E.stats (Uls_bench.Cluster.emp c 0)).E.frames_retransmitted > 0))

(* --- regression tests --------------------------------------------------- *)

let rz = { ds with Opt.scheme = Opt.Rendezvous }

let test_rendezvous_short_read_keeps_tail () =
  (* A rendezvous message read with a smaller buffer must not lose its
     tail in Data_streaming mode: the remainder is served by later
     reads, exactly like the eager path. *)
  with_cluster ~opts:rz ~n:2 (fun c api sim ->
      let parts = ref [] in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          let first = s.recv 4 in
          let second = try recv_exact s 6 with Connection_closed -> "<eof>" in
          parts := [ first; second ];
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send "0123456789";
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      Alcotest.(check (list string))
        "short rendezvous read keeps the tail" [ "0123"; "456789" ] !parts)

let test_close_listener_wakes_acceptor () =
  (* Closing a listener must wake a fiber parked in accept rather than
     leaving it blocked forever. *)
  with_cluster ~n:2 (fun c api sim ->
      let woken = ref false in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          Sim.spawn sim (fun () ->
              try ignore (l.accept ()) with Connection_closed -> woken := true);
          Sim.delay sim (Time.ms 1);
          l.close_listener ());
      ignore (Uls_bench.Cluster.run c);
      check_bool "parked acceptor raised Connection_closed" true !woken)

let test_undecodable_close_is_protocol_error () =
  (* A close message too short to carry its sequence number must be
     flagged as a protocol error, not treated as "close at seq 0" (which
     would discard data still in flight). *)
  with_cluster ~n:2 (fun c api sim ->
      let got_error = ref false in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          (try ignore (s.recv 16) with Connection_closed -> ());
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          ignore s;
          Sim.delay sim (Time.us 50);
          (* A buggy peer: 3 bytes of garbage where the 8-byte close
             sequence number belongs, aimed at the server's conn id. *)
          let e0 = Uls_bench.Cluster.emp c 0 in
          let region = Uls_host.Memory.alloc 3 in
          Uls_host.Memory.blit_from_string "zzz" region ~off:0;
          let snd =
            E.post_send e0 ~dst:1
              ~tag:Uls_substrate.Tags.(make Close 1)
              region ~off:0 ~len:3
          in
          E.wait_send e0 snd);
      (try ignore (Uls_bench.Cluster.run c) with
      | Sim.Fiber_failure (_, Uls_substrate.Codec.Protocol_error _) ->
        got_error := true);
      check_bool "undecodable close is a protocol error" true !got_error)

let test_peer_close_wakes_all_rendezvous_writers () =
  (* Two fibers blocked awaiting rendezvous grants on the same
     connection: the peer closing must wake both (the shared grant
     mailbox delivered its -1 sentinel to only one, starving the
     other forever). *)
  with_cluster ~opts:rz ~n:2 (fun c api sim ->
      let closed = ref 0 in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          (* Let both writers park on their grants, then close without
             reading. *)
          Sim.delay sim (Time.ms 2);
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          for _ = 1 to 2 do
            Sim.spawn sim (fun () ->
                try s.send (String.make 1_024 'r')
                with Connection_closed -> incr closed)
          done);
      ignore (Uls_bench.Cluster.run c);
      check_int "both parked writers raised Closed" 2 !closed)

let test_concurrent_rendezvous_writers_deliver_all () =
  (* Two fibers writing concurrently through the rendezvous path: each
     must receive its own grant (routed by rid) and every byte must
     reach the reader. *)
  with_cluster ~opts:rz ~n:2 (fun c api sim ->
      let per_write = 8_192 and writes_each = 4 in
      let expect = 2 * writes_each * per_write in
      let failures = ref 0 and wrote = ref 0 and got = ref 0 in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          while !got < expect do
            got := !got + String.length (s.recv 65_536)
          done;
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          for w = 0 to 1 do
            Sim.spawn sim (fun () ->
                try
                  for _ = 1 to writes_each do
                    s.send (String.make per_write (Char.chr (Char.code 'a' + w)));
                    incr wrote
                  done
                with Connection_closed -> incr failures)
          done);
      ignore (Uls_bench.Cluster.run c);
      check_int "no writer saw a spurious Closed" 0 !failures;
      check_int "every write completed" (2 * writes_each) !wrote;
      check_int "reader drained every byte" expect !got)

let prop_ds_stream_integrity =
  QCheck.Test.make ~name:"substrate DS preserves random byte streams" ~count:15
    QCheck.(pair (int_range 1 120_000) (int_range 1 30_000))
    (fun (total, read_chunk) ->
      with_cluster ~n:2 (fun c api sim ->
          let payload = String.init total (fun i -> Char.chr ((i * 17) mod 256)) in
          let received = Buffer.create total in
          Sim.spawn sim (fun () ->
              let l = api.listen ~node:1 ~port:80 ~backlog:1 in
              let s, _ = l.accept () in
              let rec pull () =
                let chunk = s.recv read_chunk in
                if chunk <> "" then begin
                  Buffer.add_string received chunk;
                  pull ()
                end
              in
              pull ();
              s.close ());
          Sim.spawn sim (fun () ->
              Sim.delay sim (Time.us 10);
              let s = api.connect ~node:0 { node = 1; port = 80 } in
              s.send payload;
              s.close ());
          ignore (Uls_bench.Cluster.run c);
          String.equal payload (Buffer.contents received)))

let prop_dg_message_count =
  QCheck.Test.make ~name:"substrate DG: k sends = k recvs" ~count:15
    QCheck.(list_of_size Gen.(1 -- 10) (int_range 1 4_000))
    (fun sizes ->
      with_cluster ~opts:dg ~n:2 (fun c api sim ->
          let got = ref [] in
          let k = List.length sizes in
          Sim.spawn sim (fun () ->
              let l = api.listen ~node:1 ~port:80 ~backlog:1 in
              let s, _ = l.accept () in
              for _ = 1 to k do
                got := String.length (s.recv 1_000_000) :: !got
              done;
              s.close ());
          Sim.spawn sim (fun () ->
              Sim.delay sim (Time.us 10);
              let s = api.connect ~node:0 { node = 1; port = 80 } in
              List.iter (fun n -> s.send (String.make n 'd')) sizes;
              s.close ());
          ignore (Uls_bench.Cluster.run c);
          List.rev !got = sizes))

let suites =
  [
    ( "substrate.connection",
      [
        Alcotest.test_case "connect+exchange" `Quick test_connect_exchange;
        Alcotest.test_case "refused" `Quick test_connection_refused;
        Alcotest.test_case "backlog order" `Quick test_backlog_queues_connections;
        Alcotest.test_case "bind in use" `Quick test_bind_in_use;
      ] );
    ( "substrate.streaming",
      Alcotest.test_case "partial reads (5+5)" `Quick test_streaming_partial_reads
      :: Alcotest.test_case "coalesced reads" `Quick test_streaming_coalesced_reads
      :: Alcotest.test_case "1MB integrity" `Quick test_large_transfer_integrity_ds
      :: List.map QCheck_alcotest.to_alcotest [ prop_ds_stream_integrity ] );
    ( "substrate.datagram",
      Alcotest.test_case "boundaries" `Quick test_datagram_boundaries
      :: Alcotest.test_case "truncation" `Quick test_datagram_truncation
      :: Alcotest.test_case "rendezvous large" `Quick test_rendezvous_large_datagram
      :: Alcotest.test_case "eager/rendezvous order" `Quick
           test_rendezvous_interleaves_with_eager_in_order
      :: List.map QCheck_alcotest.to_alcotest [ prop_dg_message_count ] );
    ( "substrate.flow_control",
      [
        Alcotest.test_case "credit exhaustion" `Quick
          test_credit_exhaustion_blocks_writer;
        Alcotest.test_case "crossing writes (eager)" `Quick
          test_eager_tolerates_crossing_writes;
        Alcotest.test_case "Figure 7 deadlock (rendezvous)" `Quick
          test_rendezvous_deadlock_figure7;
        Alcotest.test_case "UQ absorbs acks" `Quick
          test_uq_option_uses_unexpected_queue;
        Alcotest.test_case "piggyback" `Quick test_piggyback_reduces_messages;
        Alcotest.test_case "comm-thread scheme" `Quick test_comm_thread_scheme;
        Alcotest.test_case "comm-thread overload recovery" `Quick
          test_comm_thread_unresponsive_reader_recovers;
        Alcotest.test_case "blocking send" `Quick
          test_block_send_completes_and_costs_rtt;
      ] );
    ( "substrate.lifecycle",
      [
        Alcotest.test_case "descriptors reclaimed" `Quick
          test_close_reclaims_descriptors;
        Alcotest.test_case "close preserves tail" `Quick
          test_close_message_preserves_tail_data;
        Alcotest.test_case "send to closed peer" `Quick
          test_send_to_closed_peer_raises;
        Alcotest.test_case "select" `Quick test_select_substrate;
        Alcotest.test_case "many interleaved connections" `Quick
          test_many_connections_interleaved;
        Alcotest.test_case "loss recovery" `Quick test_substrate_loss_recovery;
      ] );
    ( "substrate.regressions",
      [
        Alcotest.test_case "short rendezvous read keeps tail" `Quick
          test_rendezvous_short_read_keeps_tail;
        Alcotest.test_case "close_listener wakes acceptor" `Quick
          test_close_listener_wakes_acceptor;
        Alcotest.test_case "undecodable close is protocol error" `Quick
          test_undecodable_close_is_protocol_error;
        Alcotest.test_case "peer close wakes all rendezvous writers" `Quick
          test_peer_close_wakes_all_rendezvous_writers;
        Alcotest.test_case "concurrent rendezvous writers" `Quick
          test_concurrent_rendezvous_writers_deliver_all;
      ] );
  ]
