(* Unit + property tests for the discrete-event core. *)
open Uls_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Vec --- *)

let test_vec_push_pop () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 42 (Vec.get v 42);
  check_int "pop" 99 (Vec.pop v);
  check_int "length after pop" 99 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "oob get" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 1));
  ignore (Vec.pop v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop v))

let test_vec_sort () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 3; 1; 2 ];
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ]
    (Array.to_list (Vec.to_array v))

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* --- Sim basics --- *)

let test_sim_delay_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim (fun () ->
      Sim.delay sim 100;
      log := ("a", Sim.now sim) :: !log);
  Sim.spawn sim (fun () ->
      Sim.delay sim 50;
      log := ("b", Sim.now sim) :: !log;
      Sim.delay sim 100;
      log := ("c", Sim.now sim) :: !log);
  ignore (Sim.run sim);
  Alcotest.(check (list (pair string int)))
    "event order"
    [ ("b", 50); ("a", 100); ("c", 150) ]
    (List.rev !log)

let test_sim_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.at sim 10 (fun () -> log := i :: !log)
  done;
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "fifo at same timestamp" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref false in
  Sim.at sim 1_000 (fun () -> fired := true);
  let r = Sim.run ~until:500 sim in
  check_bool "not yet" false !fired;
  check_int "clock at limit" 500 (Sim.now sim);
  (match r with
  | `Time_limit -> ()
  | _ -> Alcotest.fail "expected `Time_limit");
  ignore (Sim.run sim);
  check_bool "fires on resume" true !fired

let test_sim_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.spawn sim (fun () ->
      for _ = 1 to 100 do
        incr count;
        if !count = 10 then Sim.stop sim;
        Sim.delay sim 1
      done);
  (match Sim.run sim with
  | `Stopped -> ()
  | _ -> Alcotest.fail "expected `Stopped");
  check_int "stopped early" 10 !count

let test_sim_fiber_failure () =
  let sim = Sim.create () in
  Sim.spawn sim ~name:"boom" (fun () -> failwith "bang");
  (try
     ignore (Sim.run sim);
     Alcotest.fail "expected Fiber_failure"
   with Sim.Fiber_failure (name, Failure msg) ->
     Alcotest.(check string) "fiber name" "boom" name;
     Alcotest.(check string) "payload" "bang" msg)

let test_sim_past_scheduling_rejected () =
  let sim = Sim.create () in
  Sim.spawn sim (fun () -> Sim.delay sim 100);
  ignore (Sim.run sim);
  Alcotest.check_raises "past" (Invalid_argument "Sim: scheduling in the past")
    (fun () -> Sim.at sim 50 (fun () -> ()))

(* --- Cond --- *)

let test_cond_signal_fifo () =
  let sim = Sim.create () in
  let c = Cond.create sim in
  let log = ref [] in
  for i = 1 to 3 do
    Sim.spawn sim (fun () ->
        Cond.wait c;
        log := i :: !log)
  done;
  Sim.spawn sim (fun () ->
      Sim.delay sim 10;
      Cond.signal c;
      Sim.delay sim 10;
      Cond.broadcast c);
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "fifo wakeups" [ 1; 2; 3 ] (List.rev !log)

let test_cond_timeout () =
  let sim = Sim.create () in
  let c = Cond.create sim in
  let outcome = ref `Ok in
  Sim.spawn sim (fun () -> outcome := Cond.wait_timeout c 100);
  ignore (Sim.run sim);
  check_bool "timed out" true (!outcome = `Timeout);
  check_int "time advanced" 100 (Sim.now sim)

let test_cond_signal_beats_timeout () =
  let sim = Sim.create () in
  let c = Cond.create sim in
  let outcome = ref `Timeout in
  Sim.spawn sim (fun () -> outcome := Cond.wait_timeout c 100);
  Sim.spawn sim (fun () ->
      Sim.delay sim 50;
      Cond.signal c);
  ignore (Sim.run sim);
  check_bool "signalled" true (!outcome = `Ok)

let test_cond_timeout_not_double_woken () =
  (* A waiter cancelled by timeout must not steal a later signal. *)
  let sim = Sim.create () in
  let c = Cond.create sim in
  let second_woke = ref false in
  Sim.spawn sim (fun () -> ignore (Cond.wait_timeout c 10));
  Sim.spawn sim (fun () ->
      Cond.wait c;
      second_woke := true);
  Sim.spawn sim (fun () ->
      Sim.delay sim 50;
      Cond.signal c);
  ignore (Sim.run sim);
  check_bool "live waiter got the signal" true !second_woke

(* --- Mailbox --- *)

let test_mailbox_fifo () =
  let sim = Sim.create () in
  let mb = Mailbox.create sim in
  let got = ref [] in
  Sim.spawn sim (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Sim.spawn sim (fun () ->
      Sim.delay sim 5;
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Sim.delay sim 5;
      Mailbox.send mb 3);
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_timeout () =
  let sim = Sim.create () in
  let mb : int Mailbox.t = Mailbox.create sim in
  let got = ref (Some 0) in
  Sim.spawn sim (fun () -> got := Mailbox.recv_timeout mb 100);
  ignore (Sim.run sim);
  check_bool "timeout is None" true (!got = None)

let test_mailbox_timeout_delivery () =
  let sim = Sim.create () in
  let mb = Mailbox.create sim in
  let got = ref None in
  Sim.spawn sim (fun () -> got := Mailbox.recv_timeout mb 100);
  Sim.spawn sim (fun () ->
      Sim.delay sim 30;
      Mailbox.send mb 9);
  ignore (Sim.run sim);
  check_bool "delivered before deadline" true (!got = Some 9)

(* --- Resource --- *)

let test_resource_fifo_serialization () =
  let sim = Sim.create () in
  let r = Resource.create sim ~name:"cpu" in
  let finish = Array.make 3 0 in
  for i = 0 to 2 do
    Sim.spawn sim (fun () ->
        Resource.use r 100;
        finish.(i) <- Sim.now sim)
  done;
  ignore (Sim.run sim);
  Alcotest.(check (array int)) "back to back" [| 100; 200; 300 |] finish;
  check_int "busy" 300 (Resource.busy_time r);
  check_int "jobs" 3 (Resource.jobs r);
  check_int "queue delay" 300 (Resource.queue_delay_total r)

let test_resource_idle_gap () =
  let sim = Sim.create () in
  let r = Resource.create sim ~name:"cpu" in
  Sim.spawn sim (fun () ->
      Resource.use r 10;
      Sim.delay sim 100;
      Resource.use r 10);
  ignore (Sim.run sim);
  check_int "no queueing across idle gap" 0 (Resource.queue_delay_total r);
  check_int "finish time" 120 (Sim.now sim)

let prop_resource_fifo =
  QCheck.Test.make ~name:"resource completions are FIFO and disjoint" ~count:100
    QCheck.(list_of_size Gen.(1 -- 20) (int_range 1 1000))
    (fun durations ->
      let sim = Sim.create () in
      let r = Resource.create sim ~name:"x" in
      let finishes = ref [] in
      List.iter
        (fun d ->
          Sim.spawn sim (fun () ->
              Resource.use r d;
              finishes := Sim.now sim :: !finishes))
        durations;
      ignore (Sim.run sim);
      let f = List.rev !finishes in
      let total = List.fold_left ( + ) 0 durations in
      f = List.sort compare f && List.nth f (List.length f - 1) = total)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.int64 a = Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  check_bool "different" true (Rng.int64 a <> Rng.int64 b)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let prop_rng_float_unit =
  QCheck.Test.make ~name:"rng float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let r = Rng.create ~seed in
      let x = Rng.float r in
      x >= 0. && x < 1.)

(* --- Stats --- *)

let test_summary_basics () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4. (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.Summary.percentile s 0.5)

let test_summary_stddev () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check (float 1e-6)) "sample stddev" 2.13809 (Stats.Summary.stddev s)

let test_percentile_edges () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 0.)) "empty summary" 0. (Stats.Summary.percentile s 0.5);
  Stats.Summary.add s 42.;
  Alcotest.(check (float 0.)) "single sample p=0" 42. (Stats.Summary.percentile s 0.0);
  Alcotest.(check (float 0.)) "single sample p=1" 42. (Stats.Summary.percentile s 1.0);
  List.iter (Stats.Summary.add s) [ 7.; 99.; 13. ];
  Alcotest.(check (float 0.)) "p=0 is min" 7. (Stats.Summary.percentile s 0.0);
  Alcotest.(check (float 0.)) "p=1 is max" 99. (Stats.Summary.percentile s 1.0);
  (* adds after a percentile query must invalidate the sorted order *)
  Stats.Summary.add s 1.;
  Alcotest.(check (float 0.)) "re-sorts after add" 1. (Stats.Summary.percentile s 0.0);
  Stats.Summary.clear s;
  Alcotest.(check (float 0.)) "cleared summary" 0. (Stats.Summary.percentile s 1.0)

let test_counter_reset () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.add c 9;
  check_int "accumulated" 10 (Stats.Counter.value c);
  Stats.Counter.reset c;
  check_int "reset" 0 (Stats.Counter.value c);
  Stats.Counter.incr c;
  check_int "counts again after reset" 1 (Stats.Counter.value c)

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile lies within samples" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      let p = Stats.Summary.percentile s 0.9 in
      p >= Stats.Summary.min s && p <= Stats.Summary.max s)

(* --- Metrics --- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Metrics.add m "x" 4;
  Metrics.incr m ~node:1 "x";
  check_int "global counter" 5 (Metrics.counter_value m "x");
  check_int "per-node counter is distinct" 1 (Metrics.counter_value m ~node:1 "x");
  check_int "unknown counter reads 0" 0 (Metrics.counter_value m "y");
  Metrics.set_gauge m "g" 2.5;
  Alcotest.(check (float 0.)) "gauge" 2.5 (Metrics.gauge_value m "g")

let test_metrics_histogram_percentiles () =
  let m = Metrics.create () in
  for i = 1 to 100 do
    Metrics.observe m "lat" (float_of_int i)
  done;
  let h = Metrics.histogram m "lat" in
  check_int "count" 100 (Stats.Summary.count h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Stats.Summary.mean h);
  Alcotest.(check (float 1.0)) "p50" 50. (Stats.Summary.percentile h 0.5);
  Alcotest.(check (float 1.0)) "p95" 95. (Stats.Summary.percentile h 0.95);
  Alcotest.(check (float 0.)) "max" 100. (Stats.Summary.max h)

let test_metrics_reset () =
  let m = Metrics.create () in
  Metrics.add m ~node:0 "c" 7;
  Metrics.set_gauge m "g" 3.;
  Metrics.observe m "h" 1.;
  Metrics.reset m;
  check_int "counter zeroed" 0 (Metrics.counter_value m ~node:0 "c");
  Alcotest.(check (float 0.)) "gauge zeroed" 0. (Metrics.gauge_value m "g");
  check_int "histogram cleared" 0 (Stats.Summary.count (Metrics.histogram m "h"));
  Metrics.incr m ~node:0 "c";
  check_int "counts again after reset" 1 (Metrics.counter_value m ~node:0 "c")

let test_metrics_per_sim_registry () =
  let a = Sim.create () and b = Sim.create () in
  Metrics.incr (Metrics.for_sim a) "only-a";
  check_int "same sim, same registry" 1
    (Metrics.counter_value (Metrics.for_sim a) "only-a");
  check_int "other sim unaffected" 0
    (Metrics.counter_value (Metrics.for_sim b) "only-a")

(* --- typed Trace --- *)

let test_trace_event_ordering () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Trace.enable tr;
  Sim.spawn sim (fun () ->
      Trace.instant tr ~layer:Trace.App ~node:0 "first";
      Sim.delay sim 100;
      Trace.instant tr ~layer:Trace.Nic ~node:1 "second");
  ignore (Sim.run sim);
  match Trace.events tr with
  | [ a; b ] ->
    Alcotest.(check string) "names in time order" "first" a.Trace.ev_name;
    Alcotest.(check string) "second event" "second" b.Trace.ev_name;
    check_int "first timestamp" 0 a.Trace.ev_time;
    check_int "second timestamp" 100 b.Trace.ev_time;
    check_bool "layer recorded" true (b.Trace.ev_layer = Trace.Nic)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_trace_disabled_records_nothing () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Sim.spawn sim (fun () ->
      Trace.instant tr ~layer:Trace.App "dropped";
      let id = Trace.span_begin tr ~layer:Trace.App "dropped-span" in
      check_int "span id 0 while disabled" 0 id;
      Trace.span_end tr ~layer:Trace.App "dropped-span" id);
  ignore (Sim.run sim);
  check_int "nothing recorded" 0 (List.length (Trace.events tr))

let test_trace_span_totals () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Trace.enable tr;
  Sim.spawn sim (fun () ->
      for _ = 1 to 3 do
        Trace.span tr ~layer:Trace.Substrate "op" (fun () -> Sim.delay sim 50)
      done);
  ignore (Sim.run sim);
  match Trace.span_totals tr with
  | [ (layer, name, count, total_ns) ] ->
    check_bool "layer" true (layer = Trace.Substrate);
    Alcotest.(check string) "name" "op" name;
    check_int "count" 3 count;
    check_int "total" 150 total_ns
  | l -> Alcotest.failf "expected 1 aggregate, got %d" (List.length l)

let test_trace_chrome_json_shape () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Trace.enable tr;
  Sim.spawn sim (fun () ->
      Trace.span tr ~layer:Trace.Emp ~node:1 ~conn:3 "emp.send"
        ~args:[ ("len", "4") ]
        (fun () -> Sim.delay sim 1_000);
      Trace.instant tr ~layer:Trace.Nic ~node:0 "nic.rx \"quoted\"");
  ignore (Sim.run sim);
  let json = Trace.to_chrome_json tr in
  check_bool "array brackets" true
    (String.length json > 2 && json.[0] = '[');
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "begin phase" true (contains {|"ph":"b"|});
  check_bool "end phase" true (contains {|"ph":"e"|});
  check_bool "instant phase" true (contains {|"ph":"i"|});
  check_bool "category is layer" true (contains {|"cat":"emp"|});
  check_bool "args survive" true (contains {|"len":"4"|});
  check_bool "quotes escaped" true (contains {|\"quoted\"|})

let test_trace_overlapping_spans_by_id () =
  (* Two in-flight spans of the same name must keep distinct ids so a
     viewer can pair begin/end correctly. *)
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Trace.enable tr;
  Sim.spawn sim (fun () ->
      let a = Trace.span_begin tr ~layer:Trace.Emp "msg" in
      let b = Trace.span_begin tr ~layer:Trace.Emp "msg" in
      check_bool "distinct ids" true (a <> b);
      Sim.delay sim 10;
      Trace.span_end tr ~layer:Trace.Emp "msg" b;
      Sim.delay sim 10;
      Trace.span_end tr ~layer:Trace.Emp "msg" a);
  ignore (Sim.run sim);
  match Trace.span_totals tr with
  | [ (_, "msg", 2, total) ] -> check_int "total 10+20" 30 total
  | _ -> Alcotest.fail "expected one aggregate over 2 spans"

(* --- Time --- *)

let test_time_units () =
  check_int "us" 5_000 (Time.us 5);
  check_int "ms" 7_000_000 (Time.ms 7);
  check_int "us_f" 1_500 (Time.us_f 1.5);
  Alcotest.(check (float 1e-9)) "to_us" 2.5 (Time.to_us 2_500)

let test_time_mbps () =
  (* 1250 bytes in 10 us = 1000 Mb/s *)
  Alcotest.(check (float 1e-6)) "mbps" 1000.
    (Time.mbps ~bytes_transferred:1250 ~elapsed:10_000)

let qsuite = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "engine.vec",
      [
        Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
        Alcotest.test_case "bounds" `Quick test_vec_bounds;
        Alcotest.test_case "sort" `Quick test_vec_sort;
      ] );
    ( "engine.heap",
      Alcotest.test_case "ordering" `Quick test_heap_ordering
      :: qsuite [ prop_heap_sorts ] );
    ( "engine.sim",
      [
        Alcotest.test_case "delay ordering" `Quick test_sim_delay_ordering;
        Alcotest.test_case "same-time FIFO" `Quick test_sim_same_time_fifo;
        Alcotest.test_case "until" `Quick test_sim_until;
        Alcotest.test_case "stop" `Quick test_sim_stop;
        Alcotest.test_case "fiber failure" `Quick test_sim_fiber_failure;
        Alcotest.test_case "no past scheduling" `Quick
          test_sim_past_scheduling_rejected;
      ] );
    ( "engine.cond",
      [
        Alcotest.test_case "signal FIFO" `Quick test_cond_signal_fifo;
        Alcotest.test_case "timeout" `Quick test_cond_timeout;
        Alcotest.test_case "signal beats timeout" `Quick
          test_cond_signal_beats_timeout;
        Alcotest.test_case "timeout waiter not rewoken" `Quick
          test_cond_timeout_not_double_woken;
      ] );
    ( "engine.mailbox",
      [
        Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
        Alcotest.test_case "recv timeout empty" `Quick test_mailbox_timeout;
        Alcotest.test_case "recv timeout delivery" `Quick
          test_mailbox_timeout_delivery;
      ] );
    ( "engine.resource",
      Alcotest.test_case "fifo serialization" `Quick
        test_resource_fifo_serialization
      :: Alcotest.test_case "idle gap" `Quick test_resource_idle_gap
      :: qsuite [ prop_resource_fifo ] );
    ( "engine.rng",
      Alcotest.test_case "deterministic" `Quick test_rng_deterministic
      :: Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ
      :: qsuite [ prop_rng_int_bounds; prop_rng_float_unit ] );
    ( "engine.stats",
      Alcotest.test_case "summary basics" `Quick test_summary_basics
      :: Alcotest.test_case "stddev" `Quick test_summary_stddev
      :: Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges
      :: Alcotest.test_case "counter reset" `Quick test_counter_reset
      :: qsuite [ prop_percentile_bounded ] );
    ( "engine.metrics",
      [
        Alcotest.test_case "counters and gauges" `Quick test_metrics_counters;
        Alcotest.test_case "histogram percentiles" `Quick
          test_metrics_histogram_percentiles;
        Alcotest.test_case "reset" `Quick test_metrics_reset;
        Alcotest.test_case "per-sim registry" `Quick
          test_metrics_per_sim_registry;
      ] );
    ( "engine.trace-events",
      [
        Alcotest.test_case "event ordering" `Quick test_trace_event_ordering;
        Alcotest.test_case "disabled records nothing" `Quick
          test_trace_disabled_records_nothing;
        Alcotest.test_case "span totals" `Quick test_trace_span_totals;
        Alcotest.test_case "chrome json shape" `Quick
          test_trace_chrome_json_shape;
        Alcotest.test_case "overlapping span ids" `Quick
          test_trace_overlapping_spans_by_id;
      ] );
    ( "engine.time",
      [
        Alcotest.test_case "units" `Quick test_time_units;
        Alcotest.test_case "mbps" `Quick test_time_mbps;
      ] );
  ]
