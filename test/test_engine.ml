(* Unit + property tests for the discrete-event core. *)
open Uls_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Vec --- *)

let test_vec_push_pop () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 42 (Vec.get v 42);
  check_int "pop" 99 (Vec.pop v);
  check_int "length after pop" 99 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "oob get" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 1));
  ignore (Vec.pop v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop v))

let test_vec_sort () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 3; 1; 2 ];
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ]
    (Array.to_list (Vec.to_array v))

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* --- Wheel --- *)

(* Elements are (time, pri, seq) triples compared structurally — the
   exact shape of the sim's tie-break contract. *)
let wheel_create () =
  Wheel.create ~dummy:(max_int, 0, 0) ~time:(fun (t, _, _) -> t) ~cmp:compare ()

let wheel_drain w =
  let rec go acc =
    match Wheel.pop w with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let test_wheel_ordering () =
  let w = wheel_create () in
  List.iter (fun t -> Wheel.push w (t, 0, t)) [ 5; 1; 4; 3; 9; 2 ];
  check_int "length" 6 (Wheel.length w);
  Alcotest.(check (list int))
    "sorted drain" [ 1; 2; 3; 4; 5; 9 ]
    (List.map (fun (t, _, _) -> t) (wheel_drain w));
  check_bool "empty after drain" true (Wheel.is_empty w)

let test_wheel_overflow () =
  (* default grain_bits=8: four levels cover 2^40 ns; anything beyond
     sits in the overflow heap and must migrate back in order *)
  let times =
    [ 0; 300; (1 lsl 41) + 5; 1 lsl 50; 700; (1 lsl 40) - 1; 1 lsl 40 ]
  in
  let w = wheel_create () in
  List.iteri (fun i t -> Wheel.push w (t, 0, i)) times;
  Alcotest.(check (list int))
    "overflow timers drain in time order"
    (List.sort compare times)
    (List.map (fun (t, _, _) -> t) (wheel_drain w))

let test_wheel_late_insert_after_peek () =
  let w = wheel_create () in
  Wheel.push w (1_000_000, 0, 1);
  (match Wheel.peek w with
  | Some (1_000_000, _, _) -> ()
  | _ -> Alcotest.fail "peek");
  (* the peek advanced the internal cursor to the far slot; an insert
     below it (but at/after the last extraction, per the Sim contract)
     must still dispatch first *)
  Wheel.push w (10, 0, 2);
  Alcotest.(check (list int))
    "earlier late insert dispatches first" [ 10; 1_000_000 ]
    (List.map (fun (t, _, _) -> t) (wheel_drain w))

(* Regression: a window-exhausted crossing whose new base coincides with
   slot boundaries at several levels at once. The cursor enters a new
   level-2 slot exactly when a level-0 window ends at the 2^24 edge;
   cascading only the immediate parent left the level-2 slot's contents
   parked until the wheel wrapped (~seconds late), and a higher cascade
   feeding [cur] directly could end the advance before the wrapped,
   now-due level-0 cursor-slot entries were scanned. Observed as
   out-of-order dispatch in the serve smoke under [--sched wheel]. *)
let test_wheel_coincident_boundary () =
  let w = wheel_create () in
  let m = 1 lsl 24 in
  (* parked early in level-2 slot 1 *)
  Wheel.push w (m + 100, 0, 1);
  (* walk the cursor to the last level-0 window before the 2^24 edge *)
  Wheel.push w (m - 512, 0, 2);
  (match Wheel.pop w with
  | Some (t, _, _) when t = m - 512 -> ()
  | _ -> Alcotest.fail "setup pop 1");
  Wheel.push w (m - 256, 0, 3);
  (match Wheel.pop w with
  | Some (t, _, _) when t = m - 256 -> ()
  | _ -> Alcotest.fail "setup pop 2");
  (* a wrapped level-0 entry just past the edge, and a level-1 entry
     further out that would pull the cursor over the parked element *)
  Wheel.push w (m + 16, 0, 4);
  Wheel.push w (m + (5 * 65536), 0, 5);
  Alcotest.(check (list int))
    "crossing the 2^24 edge dispatches every level in order"
    [ m + 16; m + 100; m + (5 * 65536) ]
    (List.map (fun (t, _, _) -> t) (wheel_drain w))

(* Pinned-seed heap-vs-wheel parity: random schedule/cancel/advance ops
   must yield identical dispatch sequences on both structures, under
   FIFO (pri always 0) and shuffled (random pri) tie-breaks. Cancelled
   elements stay queued (the sim cancels by defusing the closure) and
   are filtered from the dispatch log on extraction. *)
let wheel_heap_parity ~shuffled seed =
  let rng = Rng.create ~seed in
  let h = Heap.create ~cmp:compare in
  let w = wheel_create () in
  let seqr = ref 0 in
  let nowr = ref 0 in
  let live = ref [] in
  let cancelled = Hashtbl.create 64 in
  let dispatched_h = ref [] in
  let dispatched_w = ref [] in
  let pop_both () =
    match (Heap.pop h, Wheel.pop w) with
    | None, None -> ()
    | Some a, Some b ->
      if a <> b then
        Alcotest.failf "seed %d: heap %s vs wheel %s" seed
          (let t, p, s = a in Printf.sprintf "(%d,%d,%d)" t p s)
          (let t, p, s = b in Printf.sprintf "(%d,%d,%d)" t p s);
      let t, _, s = a in
      nowr := t;
      live := List.filter (fun s' -> s' <> s) !live;
      if not (Hashtbl.mem cancelled s) then begin
        dispatched_h := a :: !dispatched_h;
        dispatched_w := b :: !dispatched_w
      end
    | _ -> Alcotest.failf "seed %d: one structure drained early" seed
  in
  for _ = 1 to 3000 do
    let op = Rng.int rng 100 in
    if op < 60 || Heap.length h = 0 then begin
      (* schedule at/after the last dispatch time (the Sim contract),
         spread from same-slot to overflow-level deltas *)
      let delta =
        match Rng.int rng 10 with
        | 0 -> 0
        | 1 | 2 | 3 -> Rng.int rng 1_000
        | 4 | 5 | 6 -> Rng.int rng 1_000_000
        | 7 | 8 -> Rng.int rng (1 lsl 30)
        | _ -> (1 lsl 40) + Rng.int rng (1 lsl 44)
      in
      incr seqr;
      let pri = if shuffled then Rng.int rng 0x4000_0000 else 0 in
      let e = (!nowr + delta, pri, !seqr) in
      Heap.push h e;
      Wheel.push w e;
      live := !seqr :: !live
    end
    else if op < 70 && !live <> [] then
      (* cancel a random outstanding element *)
      let victim = List.nth !live (Rng.int rng (List.length !live)) in
      Hashtbl.replace cancelled victim ()
    else if op < 75 then begin
      (* peek (advances the wheel cursor) without extracting *)
      match (Heap.peek h, Wheel.peek w) with
      | None, None -> ()
      | Some a, Some b when a = b -> ()
      | _ -> Alcotest.failf "seed %d: peek mismatch" seed
    end
    else pop_both ()
  done;
  while Heap.length h > 0 || not (Wheel.is_empty w) do
    pop_both ()
  done;
  check_bool "identical dispatch sequences" true
    (!dispatched_h = !dispatched_w);
  check_int "lengths agree" 0 (Wheel.length w)

let test_wheel_parity_fifo () =
  List.iter (wheel_heap_parity ~shuffled:false) [ 1; 2; 3; 4; 5 ]

let test_wheel_parity_shuffled () =
  List.iter (wheel_heap_parity ~shuffled:true) [ 11; 12; 13; 14; 15 ]

(* --- Retention regressions --- *)

let weak_of x =
  let w = Weak.create 1 in
  Weak.set w 0 (Some x);
  w

let test_vec_pop_retention () =
  let v = Vec.create () in
  (* pop-to-empty: the regression — the last element used to stay
     pinned by the backing array forever *)
  let w1 =
    let x = Bytes.create 32 in
    Vec.push v x;
    weak_of x
  in
  ignore (Sys.opaque_identity (Vec.pop v));
  Gc.full_major ();
  check_bool "pop-to-empty releases element" false (Weak.check w1 0);
  (* ordinary pop: the vacated slot must not retain either *)
  let w2 =
    let x = Bytes.create 32 in
    Vec.push v (Bytes.create 1);
    Vec.push v x;
    weak_of x
  in
  ignore (Sys.opaque_identity (Vec.pop v));
  Gc.full_major ();
  check_bool "pop releases vacated slot" false (Weak.check w2 0);
  (* keep the vec reachable across the GC, or the checks test nothing *)
  check_int "survivor count" 1 (Vec.length v)

let test_vec_truncate_retention () =
  let v = Vec.create () in
  let ws =
    Array.init 4 (fun _ ->
        let x = Bytes.create 8 in
        Vec.push v x;
        weak_of x)
  in
  Vec.truncate v 1;
  Gc.full_major ();
  check_bool "kept element survives" true (Weak.check ws.(0) 0);
  for i = 1 to 3 do
    check_bool "truncated tail released" false (Weak.check ws.(i) 0)
  done;
  (* keep the vec reachable across the GC, or the checks test nothing *)
  check_int "survivor count" 1 (Vec.length v)

let test_sim_task_release () =
  (* a dispatched task's closure (and its captures) must be collectable
     on both schedulers: the pooled cell defuses [run] on dispatch and
     heap/wheel storage overwrites vacated slots *)
  List.iter
    (fun sched ->
      let sim = Sim.create ~sched () in
      let w =
        let payload = Bytes.create 64 in
        Sim.at sim 5 (fun () -> ignore (Sys.opaque_identity payload));
        weak_of payload
      in
      ignore (Sim.run sim);
      Gc.full_major ();
      check_bool "dispatched closure released" false (Weak.check w 0))
    [ `Heap; `Wheel ]

(* --- Sim basics --- *)

let test_sim_delay_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim (fun () ->
      Sim.delay sim 100;
      log := ("a", Sim.now sim) :: !log);
  Sim.spawn sim (fun () ->
      Sim.delay sim 50;
      log := ("b", Sim.now sim) :: !log;
      Sim.delay sim 100;
      log := ("c", Sim.now sim) :: !log);
  ignore (Sim.run sim);
  Alcotest.(check (list (pair string int)))
    "event order"
    [ ("b", 50); ("a", 100); ("c", 150) ]
    (List.rev !log)

let test_sim_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.at sim 10 (fun () -> log := i :: !log)
  done;
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "fifo at same timestamp" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref false in
  Sim.at sim 1_000 (fun () -> fired := true);
  let r = Sim.run ~until:500 sim in
  check_bool "not yet" false !fired;
  check_int "clock at limit" 500 (Sim.now sim);
  (match r with
  | `Time_limit -> ()
  | _ -> Alcotest.fail "expected `Time_limit");
  ignore (Sim.run sim);
  check_bool "fires on resume" true !fired

let test_sim_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.spawn sim (fun () ->
      for _ = 1 to 100 do
        incr count;
        if !count = 10 then Sim.stop sim;
        Sim.delay sim 1
      done);
  (match Sim.run sim with
  | `Stopped -> ()
  | _ -> Alcotest.fail "expected `Stopped");
  check_int "stopped early" 10 !count

let test_sim_fiber_failure () =
  let sim = Sim.create () in
  Sim.spawn sim ~name:"boom" (fun () -> failwith "bang");
  (try
     ignore (Sim.run sim);
     Alcotest.fail "expected Fiber_failure"
   with Sim.Fiber_failure (name, Failure msg) ->
     Alcotest.(check string) "fiber name" "boom" name;
     Alcotest.(check string) "payload" "bang" msg)

let test_sim_past_scheduling_rejected () =
  let sim = Sim.create () in
  Sim.spawn sim (fun () -> Sim.delay sim 100);
  ignore (Sim.run sim);
  Alcotest.check_raises "past" (Invalid_argument "Sim: scheduling in the past")
    (fun () -> Sim.at sim 50 (fun () -> ()))

(* --- Cond --- *)

let test_cond_signal_fifo () =
  let sim = Sim.create () in
  let c = Cond.create sim in
  let log = ref [] in
  for i = 1 to 3 do
    Sim.spawn sim (fun () ->
        Cond.wait c;
        log := i :: !log)
  done;
  Sim.spawn sim (fun () ->
      Sim.delay sim 10;
      Cond.signal c;
      Sim.delay sim 10;
      Cond.broadcast c);
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "fifo wakeups" [ 1; 2; 3 ] (List.rev !log)

let test_cond_timeout () =
  let sim = Sim.create () in
  let c = Cond.create sim in
  let outcome = ref `Ok in
  Sim.spawn sim (fun () -> outcome := Cond.wait_timeout c 100);
  ignore (Sim.run sim);
  check_bool "timed out" true (!outcome = `Timeout);
  check_int "time advanced" 100 (Sim.now sim)

let test_cond_signal_beats_timeout () =
  let sim = Sim.create () in
  let c = Cond.create sim in
  let outcome = ref `Timeout in
  Sim.spawn sim (fun () -> outcome := Cond.wait_timeout c 100);
  Sim.spawn sim (fun () ->
      Sim.delay sim 50;
      Cond.signal c);
  ignore (Sim.run sim);
  check_bool "signalled" true (!outcome = `Ok)

let test_cond_timeout_not_double_woken () =
  (* A waiter cancelled by timeout must not steal a later signal. *)
  let sim = Sim.create () in
  let c = Cond.create sim in
  let second_woke = ref false in
  Sim.spawn sim (fun () -> ignore (Cond.wait_timeout c 10));
  Sim.spawn sim (fun () ->
      Cond.wait c;
      second_woke := true);
  Sim.spawn sim (fun () ->
      Sim.delay sim 50;
      Cond.signal c);
  ignore (Sim.run sim);
  check_bool "live waiter got the signal" true !second_woke

(* --- Mailbox --- *)

let test_mailbox_fifo () =
  let sim = Sim.create () in
  let mb = Mailbox.create sim in
  let got = ref [] in
  Sim.spawn sim (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Sim.spawn sim (fun () ->
      Sim.delay sim 5;
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Sim.delay sim 5;
      Mailbox.send mb 3);
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_timeout () =
  let sim = Sim.create () in
  let mb : int Mailbox.t = Mailbox.create sim in
  let got = ref (Some 0) in
  Sim.spawn sim (fun () -> got := Mailbox.recv_timeout mb 100);
  ignore (Sim.run sim);
  check_bool "timeout is None" true (!got = None)

let test_mailbox_timeout_delivery () =
  let sim = Sim.create () in
  let mb = Mailbox.create sim in
  let got = ref None in
  Sim.spawn sim (fun () -> got := Mailbox.recv_timeout mb 100);
  Sim.spawn sim (fun () ->
      Sim.delay sim 30;
      Mailbox.send mb 9);
  ignore (Sim.run sim);
  check_bool "delivered before deadline" true (!got = Some 9)

(* --- Resource --- *)

let test_resource_fifo_serialization () =
  let sim = Sim.create () in
  let r = Resource.create sim ~name:"cpu" in
  let finish = Array.make 3 0 in
  for i = 0 to 2 do
    Sim.spawn sim (fun () ->
        Resource.use r 100;
        finish.(i) <- Sim.now sim)
  done;
  ignore (Sim.run sim);
  Alcotest.(check (array int)) "back to back" [| 100; 200; 300 |] finish;
  check_int "busy" 300 (Resource.busy_time r);
  check_int "jobs" 3 (Resource.jobs r);
  check_int "queue delay" 300 (Resource.queue_delay_total r)

let test_resource_idle_gap () =
  let sim = Sim.create () in
  let r = Resource.create sim ~name:"cpu" in
  Sim.spawn sim (fun () ->
      Resource.use r 10;
      Sim.delay sim 100;
      Resource.use r 10);
  ignore (Sim.run sim);
  check_int "no queueing across idle gap" 0 (Resource.queue_delay_total r);
  check_int "finish time" 120 (Sim.now sim)

let prop_resource_fifo =
  QCheck.Test.make ~name:"resource completions are FIFO and disjoint" ~count:100
    QCheck.(list_of_size Gen.(1 -- 20) (int_range 1 1000))
    (fun durations ->
      let sim = Sim.create () in
      let r = Resource.create sim ~name:"x" in
      let finishes = ref [] in
      List.iter
        (fun d ->
          Sim.spawn sim (fun () ->
              Resource.use r d;
              finishes := Sim.now sim :: !finishes))
        durations;
      ignore (Sim.run sim);
      let f = List.rev !finishes in
      let total = List.fold_left ( + ) 0 durations in
      f = List.sort compare f && List.nth f (List.length f - 1) = total)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.int64 a = Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  check_bool "different" true (Rng.int64 a <> Rng.int64 b)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let prop_rng_float_unit =
  QCheck.Test.make ~name:"rng float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let r = Rng.create ~seed in
      let x = Rng.float r in
      x >= 0. && x < 1.)

(* --- Stats --- *)

let test_summary_basics () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4. (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.Summary.percentile s 0.5)

let test_summary_stddev () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check (float 1e-6)) "sample stddev" 2.13809 (Stats.Summary.stddev s)

let test_percentile_edges () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 0.)) "empty summary" 0. (Stats.Summary.percentile s 0.5);
  Stats.Summary.add s 42.;
  Alcotest.(check (float 0.)) "single sample p=0" 42. (Stats.Summary.percentile s 0.0);
  Alcotest.(check (float 0.)) "single sample p=1" 42. (Stats.Summary.percentile s 1.0);
  List.iter (Stats.Summary.add s) [ 7.; 99.; 13. ];
  Alcotest.(check (float 0.)) "p=0 is min" 7. (Stats.Summary.percentile s 0.0);
  Alcotest.(check (float 0.)) "p=1 is max" 99. (Stats.Summary.percentile s 1.0);
  (* adds after a percentile query must invalidate the sorted order *)
  Stats.Summary.add s 1.;
  Alcotest.(check (float 0.)) "re-sorts after add" 1. (Stats.Summary.percentile s 0.0);
  Stats.Summary.clear s;
  Alcotest.(check (float 0.)) "cleared summary" 0. (Stats.Summary.percentile s 1.0)

let test_counter_reset () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.add c 9;
  check_int "accumulated" 10 (Stats.Counter.value c);
  Stats.Counter.reset c;
  check_int "reset" 0 (Stats.Counter.value c);
  Stats.Counter.incr c;
  check_int "counts again after reset" 1 (Stats.Counter.value c)

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile lies within samples" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      let p = Stats.Summary.percentile s 0.9 in
      p >= Stats.Summary.min s && p <= Stats.Summary.max s)

(* --- Metrics --- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Metrics.add m "x" 4;
  Metrics.incr m ~node:1 "x";
  check_int "global counter" 5 (Metrics.counter_value m "x");
  check_int "per-node counter is distinct" 1 (Metrics.counter_value m ~node:1 "x");
  check_int "unknown counter reads 0" 0 (Metrics.counter_value m "y");
  Metrics.set_gauge m "g" 2.5;
  Alcotest.(check (float 0.)) "gauge" 2.5 (Metrics.gauge_value m "g")

let test_metrics_histogram_percentiles () =
  let m = Metrics.create () in
  for i = 1 to 100 do
    Metrics.observe m "lat" (float_of_int i)
  done;
  let h = Metrics.histogram m "lat" in
  check_int "count" 100 (Stats.Summary.count h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Stats.Summary.mean h);
  Alcotest.(check (float 1.0)) "p50" 50. (Stats.Summary.percentile h 0.5);
  Alcotest.(check (float 1.0)) "p95" 95. (Stats.Summary.percentile h 0.95);
  Alcotest.(check (float 0.)) "max" 100. (Stats.Summary.max h)

let test_metrics_reset () =
  let m = Metrics.create () in
  Metrics.add m ~node:0 "c" 7;
  Metrics.set_gauge m "g" 3.;
  Metrics.observe m "h" 1.;
  Metrics.reset m;
  check_int "counter zeroed" 0 (Metrics.counter_value m ~node:0 "c");
  Alcotest.(check (float 0.)) "gauge zeroed" 0. (Metrics.gauge_value m "g");
  check_int "histogram cleared" 0 (Stats.Summary.count (Metrics.histogram m "h"));
  Metrics.incr m ~node:0 "c";
  check_int "counts again after reset" 1 (Metrics.counter_value m ~node:0 "c")

let test_metrics_per_sim_registry () =
  let a = Sim.create () and b = Sim.create () in
  Metrics.incr (Metrics.for_sim a) "only-a";
  check_int "same sim, same registry" 1
    (Metrics.counter_value (Metrics.for_sim a) "only-a");
  check_int "other sim unaffected" 0
    (Metrics.counter_value (Metrics.for_sim b) "only-a")

(* --- typed Trace --- *)

let test_trace_event_ordering () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Trace.enable tr;
  Sim.spawn sim (fun () ->
      Trace.instant tr ~layer:Trace.App ~node:0 "first";
      Sim.delay sim 100;
      Trace.instant tr ~layer:Trace.Nic ~node:1 "second");
  ignore (Sim.run sim);
  match Trace.events tr with
  | [ a; b ] ->
    Alcotest.(check string) "names in time order" "first" a.Trace.ev_name;
    Alcotest.(check string) "second event" "second" b.Trace.ev_name;
    check_int "first timestamp" 0 a.Trace.ev_time;
    check_int "second timestamp" 100 b.Trace.ev_time;
    check_bool "layer recorded" true (b.Trace.ev_layer = Trace.Nic)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_trace_disabled_records_nothing () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Sim.spawn sim (fun () ->
      Trace.instant tr ~layer:Trace.App "dropped";
      let id = Trace.span_begin tr ~layer:Trace.App "dropped-span" in
      check_int "span id 0 while disabled" 0 id;
      Trace.span_end tr ~layer:Trace.App "dropped-span" id);
  ignore (Sim.run sim);
  check_int "nothing recorded" 0 (List.length (Trace.events tr))

let test_trace_span_totals () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Trace.enable tr;
  Sim.spawn sim (fun () ->
      for _ = 1 to 3 do
        Trace.span tr ~layer:Trace.Substrate "op" (fun () -> Sim.delay sim 50)
      done);
  ignore (Sim.run sim);
  match Trace.span_totals tr with
  | [ (layer, name, count, total_ns) ] ->
    check_bool "layer" true (layer = Trace.Substrate);
    Alcotest.(check string) "name" "op" name;
    check_int "count" 3 count;
    check_int "total" 150 total_ns
  | l -> Alcotest.failf "expected 1 aggregate, got %d" (List.length l)

let test_trace_chrome_json_shape () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Trace.enable tr;
  Sim.spawn sim (fun () ->
      Trace.span tr ~layer:Trace.Emp ~node:1 ~conn:3 "emp.send"
        ~args:[ ("len", "4") ]
        (fun () -> Sim.delay sim 1_000);
      Trace.instant tr ~layer:Trace.Nic ~node:0 "nic.rx \"quoted\"");
  ignore (Sim.run sim);
  let json = Trace.to_chrome_json tr in
  check_bool "array brackets" true
    (String.length json > 2 && json.[0] = '[');
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "begin phase" true (contains {|"ph":"b"|});
  check_bool "end phase" true (contains {|"ph":"e"|});
  check_bool "instant phase" true (contains {|"ph":"i"|});
  check_bool "category is layer" true (contains {|"cat":"emp"|});
  check_bool "args survive" true (contains {|"len":"4"|});
  check_bool "quotes escaped" true (contains {|\"quoted\"|})

let test_trace_overlapping_spans_by_id () =
  (* Two in-flight spans of the same name must keep distinct ids so a
     viewer can pair begin/end correctly. *)
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Trace.enable tr;
  Sim.spawn sim (fun () ->
      let a = Trace.span_begin tr ~layer:Trace.Emp "msg" in
      let b = Trace.span_begin tr ~layer:Trace.Emp "msg" in
      check_bool "distinct ids" true (a <> b);
      Sim.delay sim 10;
      Trace.span_end tr ~layer:Trace.Emp "msg" b;
      Sim.delay sim 10;
      Trace.span_end tr ~layer:Trace.Emp "msg" a);
  ignore (Sim.run sim);
  match Trace.span_totals tr with
  | [ (_, "msg", 2, total) ] -> check_int "total 10+20" 30 total
  | _ -> Alcotest.fail "expected one aggregate over 2 spans"

(* --- Time --- *)

let test_time_units () =
  check_int "us" 5_000 (Time.us 5);
  check_int "ms" 7_000_000 (Time.ms 7);
  check_int "us_f" 1_500 (Time.us_f 1.5);
  Alcotest.(check (float 1e-9)) "to_us" 2.5 (Time.to_us 2_500)

let test_time_mbps () =
  (* 1250 bytes in 10 us = 1000 Mb/s *)
  Alcotest.(check (float 1e-6)) "mbps" 1000.
    (Time.mbps ~bytes_transferred:1250 ~elapsed:10_000)

(* --- Per-sim registry eviction --- *)

(* In its own function so the sim is unreachable when it returns. *)
let make_dead_sim () =
  let sim = Sim.create () in
  Metrics.incr (Metrics.for_sim sim) "dead.counter";
  ignore (Trace.for_sim sim);
  ignore (Invariant.for_sim sim)

let test_registry_eviction () =
  Gc.full_major ();
  let bm = Metrics.registered_sims () in
  let bt = Trace.registered_sims () in
  let bi = Invariant.registered_sims () in
  for _ = 1 to 32 do
    make_dead_sim ()
  done;
  Gc.full_major ();
  Gc.full_major ();
  check_int "metrics entries evicted" bm (Metrics.registered_sims ());
  check_int "trace entries evicted" bt (Trace.registered_sims ());
  check_int "invariant entries evicted" bi (Invariant.registered_sims ());
  (* while a sim is live its registry must survive collection *)
  let sim = Sim.create () in
  Metrics.incr (Metrics.for_sim sim) "keep";
  Gc.full_major ();
  check_int "live sim keeps its registry" 1
    (Metrics.counter_value (Metrics.for_sim sim) "keep")

(* --- Sim heap-vs-wheel dispatch parity --- *)

(* A program with same-time collisions, fiber suspends, a time-limited
   run/resume, and a far-future timer (overflow level under `Wheel).
   The full dispatch log must be byte-identical across schedulers for
   both tie-break policies. *)
let sim_parity_run ~sched ~tiebreak =
  let sim = Sim.create ~sched () in
  Sim.set_tiebreak sim tiebreak;
  let log = Buffer.create 1024 in
  for i = 1 to 8 do
    Sim.spawn sim
      ~name:(Printf.sprintf "f%d" i)
      (fun () ->
        for j = 1 to 40 do
          Sim.delay sim (i * j mod 7);
          Buffer.add_string log (Printf.sprintf "%d.%d@%d;" i j (Sim.now sim))
        done)
  done;
  Sim.at sim 100 (fun () -> Buffer.add_string log "at100;");
  Sim.at sim (1 lsl 42) (fun () -> Buffer.add_string log "far;");
  (match Sim.run ~until:50 sim with
  | `Time_limit -> Buffer.add_string log "limit;"
  | _ -> Alcotest.fail "expected `Time_limit");
  (* schedule below the peeked-ahead horizon, then resume *)
  Sim.at sim (Sim.now sim + 1) (fun () -> Buffer.add_string log "mid;");
  (match Sim.run sim with
  | `Quiescent -> ()
  | _ -> Alcotest.fail "expected `Quiescent");
  (Buffer.contents log, Sim.events_executed sim)

let test_sim_sched_parity () =
  List.iter
    (fun tiebreak ->
      let lh, eh = sim_parity_run ~sched:`Heap ~tiebreak in
      let lw, ew = sim_parity_run ~sched:`Wheel ~tiebreak in
      Alcotest.(check string) "dispatch log identical" lh lw;
      check_int "events executed identical" eh ew)
    [ `Fifo; `Seeded_shuffle 42 ]

let qsuite = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "engine.vec",
      [
        Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
        Alcotest.test_case "bounds" `Quick test_vec_bounds;
        Alcotest.test_case "sort" `Quick test_vec_sort;
        Alcotest.test_case "pop retention" `Quick test_vec_pop_retention;
        Alcotest.test_case "truncate retention" `Quick
          test_vec_truncate_retention;
      ] );
    ( "engine.heap",
      Alcotest.test_case "ordering" `Quick test_heap_ordering
      :: qsuite [ prop_heap_sorts ] );
    ( "engine.wheel",
      [
        Alcotest.test_case "ordering" `Quick test_wheel_ordering;
        Alcotest.test_case "overflow far-future timers" `Quick
          test_wheel_overflow;
        Alcotest.test_case "late insert after peek" `Quick
          test_wheel_late_insert_after_peek;
        Alcotest.test_case "coincident multi-level boundary crossing" `Quick
          test_wheel_coincident_boundary;
        Alcotest.test_case "heap parity (fifo)" `Quick test_wheel_parity_fifo;
        Alcotest.test_case "heap parity (shuffled)" `Quick
          test_wheel_parity_shuffled;
      ] );
    ( "engine.sim",
      [
        Alcotest.test_case "delay ordering" `Quick test_sim_delay_ordering;
        Alcotest.test_case "same-time FIFO" `Quick test_sim_same_time_fifo;
        Alcotest.test_case "until" `Quick test_sim_until;
        Alcotest.test_case "stop" `Quick test_sim_stop;
        Alcotest.test_case "fiber failure" `Quick test_sim_fiber_failure;
        Alcotest.test_case "no past scheduling" `Quick
          test_sim_past_scheduling_rejected;
        Alcotest.test_case "heap/wheel dispatch parity" `Quick
          test_sim_sched_parity;
        Alcotest.test_case "task cells released" `Quick test_sim_task_release;
      ] );
    ( "engine.cond",
      [
        Alcotest.test_case "signal FIFO" `Quick test_cond_signal_fifo;
        Alcotest.test_case "timeout" `Quick test_cond_timeout;
        Alcotest.test_case "signal beats timeout" `Quick
          test_cond_signal_beats_timeout;
        Alcotest.test_case "timeout waiter not rewoken" `Quick
          test_cond_timeout_not_double_woken;
      ] );
    ( "engine.mailbox",
      [
        Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
        Alcotest.test_case "recv timeout empty" `Quick test_mailbox_timeout;
        Alcotest.test_case "recv timeout delivery" `Quick
          test_mailbox_timeout_delivery;
      ] );
    ( "engine.resource",
      Alcotest.test_case "fifo serialization" `Quick
        test_resource_fifo_serialization
      :: Alcotest.test_case "idle gap" `Quick test_resource_idle_gap
      :: qsuite [ prop_resource_fifo ] );
    ( "engine.rng",
      Alcotest.test_case "deterministic" `Quick test_rng_deterministic
      :: Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ
      :: qsuite [ prop_rng_int_bounds; prop_rng_float_unit ] );
    ( "engine.stats",
      Alcotest.test_case "summary basics" `Quick test_summary_basics
      :: Alcotest.test_case "stddev" `Quick test_summary_stddev
      :: Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges
      :: Alcotest.test_case "counter reset" `Quick test_counter_reset
      :: qsuite [ prop_percentile_bounded ] );
    ( "engine.metrics",
      [
        Alcotest.test_case "counters and gauges" `Quick test_metrics_counters;
        Alcotest.test_case "histogram percentiles" `Quick
          test_metrics_histogram_percentiles;
        Alcotest.test_case "reset" `Quick test_metrics_reset;
        Alcotest.test_case "per-sim registry" `Quick
          test_metrics_per_sim_registry;
        Alcotest.test_case "dead-sim registry eviction" `Quick
          test_registry_eviction;
      ] );
    ( "engine.trace-events",
      [
        Alcotest.test_case "event ordering" `Quick test_trace_event_ordering;
        Alcotest.test_case "disabled records nothing" `Quick
          test_trace_disabled_records_nothing;
        Alcotest.test_case "span totals" `Quick test_trace_span_totals;
        Alcotest.test_case "chrome json shape" `Quick
          test_trace_chrome_json_shape;
        Alcotest.test_case "overlapping span ids" `Quick
          test_trace_overlapping_spans_by_id;
      ] );
    ( "engine.time",
      [
        Alcotest.test_case "units" `Quick test_time_units;
        Alcotest.test_case "mbps" `Quick test_time_mbps;
      ] );
  ]
