(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (plus the ablations), then runs bechamel micro-benchmarks
   of the simulator's hot paths.

   Usage:
     main.exe                 run everything (full sizes)
     main.exe --quick         smaller sweeps
     main.exe fig14 fig15     run selected experiments
     main.exe --list          list experiment ids
     main.exe --no-bechamel   skip the bechamel section *)

let run_bechamel () =
  let open Bechamel in
  let heap_push_pop =
    Test.make ~name:"engine.heap push+pop x100"
      (Staged.stage (fun () ->
           let h = Uls_engine.Heap.create ~cmp:compare in
           for i = 0 to 99 do
             Uls_engine.Heap.push h (i * 7919 mod 100)
           done;
           while not (Uls_engine.Heap.is_empty h) do
             ignore (Uls_engine.Heap.pop h)
           done))
  in
  let tag_match =
    Test.make ~name:"nic.match_list post+take x64"
      (Staged.stage (fun () ->
           let ml = Uls_nic.Match_list.create () in
           for i = 0 to 63 do
             Uls_nic.Match_list.post ml ~src:1 ~tag:i i
           done;
           for i = 0 to 63 do
             ignore (Uls_nic.Match_list.take ml ~src:1 ~tag:i)
           done))
  in
  let sim_events =
    Test.make ~name:"engine.sim 1k timer events"
      (Staged.stage (fun () ->
           let sim = Uls_engine.Sim.create () in
           for i = 1 to 1_000 do
             Uls_engine.Sim.at sim i (fun () -> ())
           done;
           ignore (Uls_engine.Sim.run sim)))
  in
  let emp_pingpong =
    Test.make ~name:"sim: full EMP 4B ping-pong (10 iters)"
      (Staged.stage (fun () ->
           ignore
             (Uls_bench.Microbench.ping_pong ~iters:10 ~warmup:0
                ~kind:Uls_bench.Microbench.Emp_raw ~size:4 ())))
  in
  let tests =
    Test.make_grouped ~name:"simulator"
      [ heap_push_pop; tag_match; sim_events; emp_pingpong ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  print_endline "== bechamel: simulator hot paths (ns/run) ==";
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-45s %12.1f\n" name est
      | _ -> Printf.printf "  %-45s (no estimate)\n" name)
    results;
  print_newline ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let no_bechamel = List.mem "--no-bechamel" args in
  let selected =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  if List.mem "--list" args then begin
    List.iter (fun (id, _) -> print_endline id) Uls_bench.Experiments.by_id;
    exit 0
  end;
  let tables =
    match selected with
    | [] -> Uls_bench.Experiments.all ~quick ()
    | ids ->
      List.map
        (fun id ->
          match List.assoc_opt id Uls_bench.Experiments.by_id with
          | Some f -> f ~quick ()
          | None ->
            Printf.eprintf "unknown experiment %S (try --list)\n" id;
            exit 1)
        ids
  in
  List.iter (Uls_bench.Table.print Format.std_formatter) tables;
  if not no_bechamel then run_bechamel ()
