open Uls_engine

type t = {
  sim : Sim.t;
  xmit : Resource.t;
  bits_per_ns : float;
  propagation : Time.ns;
  mutable receiver : (Frame.t -> unit) option;
  mutable frames : int;
  mutable bytes : int;
}

let create sim ?(bits_per_ns = 1.0) ?(propagation = 500) ~name () =
  if bits_per_ns <= 0. then invalid_arg "Link.create: rate";
  {
    sim;
    xmit = Resource.create sim ~name;
    bits_per_ns;
    propagation;
    receiver = None;
    frames = 0;
    bytes = 0;
  }

let set_receiver t f = t.receiver <- Some f

let transmit_time t frame =
  let bits = float_of_int (Frame.wire_bytes frame * 8) in
  int_of_float (Float.round (bits /. t.bits_per_ns))

let send t frame =
  t.frames <- t.frames + 1;
  t.bytes <- t.bytes + Frame.wire_bytes frame;
  let finish = Resource.completion_after t.xmit (transmit_time t frame) in
  Sim.at t.sim (finish + t.propagation) (fun () ->
      match t.receiver with
      | Some deliver -> deliver frame
      | None -> ())

let frames_sent t = t.frames
let bytes_sent t = t.bytes
let busy_until t = Resource.free_at t.xmit
