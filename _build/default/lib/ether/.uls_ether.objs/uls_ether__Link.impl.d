lib/ether/link.ml: Float Frame Resource Sim Time Uls_engine
