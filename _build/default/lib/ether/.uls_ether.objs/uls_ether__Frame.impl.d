lib/ether/frame.ml: Format Printf
