lib/ether/network.ml: Array Frame Link Printf Sim Switch Uls_engine
