lib/ether/link.mli: Frame Uls_engine
