lib/ether/switch.ml: Array Frame Hashtbl Link Printf Sim Time Uls_engine
