lib/ether/frame.mli: Format
