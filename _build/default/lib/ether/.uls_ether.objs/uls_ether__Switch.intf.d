lib/ether/switch.mli: Frame Link Uls_engine
