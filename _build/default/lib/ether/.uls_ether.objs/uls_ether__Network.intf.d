lib/ether/network.mli: Frame Link Switch Uls_engine
