open Uls_engine

type port = {
  egress : Link.t;
  mutable queued_bytes : int;
}

type t = {
  sim : Sim.t;
  fwd_latency : Time.ns;
  queue_limit : int;
  ports : port array;
  mac_table : (int, int) Hashtbl.t; (* station id -> port *)
  mutable fault : Frame.t -> bool;
  mutable forwarded : int;
  mutable dropped : int;
}

let create sim ?(fwd_latency = 2_500) ?(queue_limit = 262_144) ~ports () =
  let make_port i =
    {
      egress = Link.create sim ~name:(Printf.sprintf "sw-egress-%d" i) ();
      queued_bytes = 0;
    }
  in
  {
    sim;
    fwd_latency;
    queue_limit;
    ports = Array.init ports make_port;
    mac_table = Hashtbl.create 16;
    fault = (fun _ -> false);
    forwarded = 0;
    dropped = 0;
  }

let egress t ~port = t.ports.(port).egress
let station_port t ~station = Hashtbl.find_opt t.mac_table station

let connect_station t ~port ~station handler =
  Hashtbl.replace t.mac_table station port;
  Link.set_receiver t.ports.(port).egress handler

let set_fault_filter t f = t.fault <- f
let frames_forwarded t = t.forwarded
let frames_dropped t = t.dropped

let forward t frame =
  match Hashtbl.find_opt t.mac_table frame.Frame.dst with
  | None -> t.dropped <- t.dropped + 1
  | Some out ->
    let p = t.ports.(out) in
    let wire = Frame.wire_bytes frame in
    if p.queued_bytes + wire > t.queue_limit then t.dropped <- t.dropped + 1
    else begin
      p.queued_bytes <- p.queued_bytes + wire;
      t.forwarded <- t.forwarded + 1;
      let finish = Link.busy_until p.egress + Link.transmit_time p.egress frame in
      Link.send p.egress frame;
      (* Reclaim queue space when the frame has left the port. *)
      Sim.at t.sim finish (fun () -> p.queued_bytes <- p.queued_bytes - wire)
    end

let ingress t ~port:_ frame =
  if t.fault frame then t.dropped <- t.dropped + 1
  else
    Sim.at t.sim (Sim.now t.sim + t.fwd_latency) (fun () -> forward t frame)
