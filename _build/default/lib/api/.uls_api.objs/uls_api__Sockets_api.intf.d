lib/api/sockets_api.mli: Format
