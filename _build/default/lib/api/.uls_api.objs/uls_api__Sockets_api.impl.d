lib/api/sockets_api.ml: Buffer Format String
