(** Per-node operating-system model: traps, interrupts, scheduler wake
    latency, and the page-pinning path with its translation cache (EMP
    §2: the first descriptor post for a memory area pays a system call to
    translate and pin; later posts hit the cache and bypass the OS). *)

type t

val create : Uls_engine.Sim.t -> Cost_model.t -> t

val syscall : t -> unit
(** Trap + return cost, charged to the calling fiber. *)

val interrupt : t -> unit
(** Interrupt entry/dispatch cost (rx path fibers pay this). *)

val context_switch : t -> unit

val wakeup_latency : t -> Uls_engine.Time.ns
(** Delay between an event completing and a process blocked on it
    actually running again. *)

val pin_region : t -> Memory.region -> off:int -> len:int -> unit
(** Translate-and-pin for a descriptor post. First use of a region pays
    the pin system call (per covered page); later uses hit the
    translation cache for free. *)

val prepin : t -> Memory.region -> unit
(** Setup-time registration: enter a region into the translation cache
    without charging the pin cost. Used for buffers registered during
    connection establishment, outside any timed path. *)

val translation_cache_hits : t -> int
val translation_cache_misses : t -> int
val flush_translation_cache : t -> unit
val syscalls_made : t -> int
