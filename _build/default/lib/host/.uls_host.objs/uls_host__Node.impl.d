lib/host/node.ml: Cost_model Memory Os Sim Time Uls_engine
