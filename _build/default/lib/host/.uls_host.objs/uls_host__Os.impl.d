lib/host/os.ml: Cost_model Hashtbl Memory Sim Uls_engine
