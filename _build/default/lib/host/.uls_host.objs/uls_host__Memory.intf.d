lib/host/memory.mli: Bytes Cost_model Uls_engine
