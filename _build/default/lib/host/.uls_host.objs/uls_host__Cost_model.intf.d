lib/host/cost_model.mli: Uls_engine
