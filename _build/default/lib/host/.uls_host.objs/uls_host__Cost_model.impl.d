lib/host/cost_model.ml: Float Uls_engine
