lib/host/memory.ml: Bytes Cost_model String Uls_engine
