lib/host/os.mli: Cost_model Memory Uls_engine
