lib/host/node.mli: Cost_model Memory Os Uls_engine
