open Uls_engine

type t = {
  id : int;
  sim : Sim.t;
  model : Cost_model.t;
  os : Os.t;
  mutable busy : Time.ns;
}

let create sim model ~id = { id; sim; model; os = Os.create sim model; busy = 0 }
let id t = t.id
let sim t = t.sim
let model t = t.model
let os t = t.os

let compute t d =
  t.busy <- t.busy + d;
  Sim.delay t.sim d

let copy t ~src ~src_off ~dst ~dst_off ~len =
  Memory.blit ~src ~src_off ~dst ~dst_off ~len;
  compute t (Cost_model.copy_cost t.model len)

let busy_time t = t.busy

let utilization t =
  let now = Sim.now t.sim in
  if now <= 0 then 0. else float_of_int t.busy /. float_of_int now
