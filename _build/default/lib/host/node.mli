(** A host machine: identity, OS instance, and CPU-time accounting.
    Application/protocol fibers on a node charge their compute time here
    so experiments can report host CPU utilisation. *)

type t

val create : Uls_engine.Sim.t -> Cost_model.t -> id:int -> t
val id : t -> int
val sim : t -> Uls_engine.Sim.t
val model : t -> Cost_model.t
val os : t -> Os.t

val compute : t -> Uls_engine.Time.ns -> unit
(** Spend CPU time: delays the calling fiber and accrues busy time. *)

val copy : t -> src:Memory.region -> src_off:int -> dst:Memory.region -> dst_off:int -> len:int -> unit
(** Costed memcpy charged as CPU time. *)

val busy_time : t -> Uls_engine.Time.ns
val utilization : t -> float
