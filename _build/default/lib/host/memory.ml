type region = {
  id : int;
  data : Bytes.t;
}

let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

let alloc n = { id = fresh_id (); data = Bytes.make n '\000' }
let of_string s = { id = fresh_id (); data = Bytes.of_string s }
let length r = Bytes.length r.data
let id r = r.id
let bytes r = r.data
let sub_string r ~off ~len = Bytes.sub_string r.data off len
let blit_from_string s r ~off = Bytes.blit_string s 0 r.data off (String.length s)

let blit ~src ~src_off ~dst ~dst_off ~len =
  Bytes.blit src.data src_off dst.data dst_off len

let copy sim model ~src ~src_off ~dst ~dst_off ~len =
  blit ~src ~src_off ~dst ~dst_off ~len;
  Uls_engine.Sim.delay sim (Cost_model.copy_cost model len)
