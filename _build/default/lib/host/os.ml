open Uls_engine

type t = {
  sim : Sim.t;
  model : Cost_model.t;
  pinned : (int, unit) Hashtbl.t; (* region id -> pinned *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable syscalls : int;
}

let create sim model =
  { sim; model; pinned = Hashtbl.create 64; cache_hits = 0; cache_misses = 0; syscalls = 0 }

let syscall t =
  t.syscalls <- t.syscalls + 1;
  Sim.delay t.sim t.model.Cost_model.syscall

let interrupt t = Sim.delay t.sim t.model.Cost_model.interrupt
let context_switch t = Sim.delay t.sim t.model.Cost_model.context_switch
let wakeup_latency t = t.model.Cost_model.sched_wakeup

let pin_region t region ~off:_ ~len =
  let key = Memory.id region in
  if Hashtbl.mem t.pinned key then t.cache_hits <- t.cache_hits + 1
  else begin
    t.cache_misses <- t.cache_misses + 1;
    t.syscalls <- t.syscalls + 1;
    Hashtbl.replace t.pinned key ();
    (* Pin the whole region: EMP pins the memory area once and reuses it. *)
    let bytes = max len (Memory.length region) in
    Sim.delay t.sim (Cost_model.pin_cost t.model ~bytes)
  end

let prepin t region = Hashtbl.replace t.pinned (Memory.id region) ()

let translation_cache_hits t = t.cache_hits
let translation_cache_misses t = t.cache_misses

let flush_translation_cache t =
  Hashtbl.reset t.pinned

let syscalls_made t = t.syscalls
