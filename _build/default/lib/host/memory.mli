(** Host memory regions. Regions carry real bytes end-to-end so tests can
    assert data integrity through every protocol layer, and each region
    has an identity used by the OS pin/translation cache. *)

type region

val alloc : int -> region
val of_string : string -> region
val length : region -> int
val id : region -> int
val bytes : region -> Bytes.t

val sub_string : region -> off:int -> len:int -> string
val blit_from_string : string -> region -> off:int -> unit

val blit : src:region -> src_off:int -> dst:region -> dst_off:int -> len:int -> unit
(** Pure data movement, no simulated cost. *)

val copy :
  Uls_engine.Sim.t ->
  Cost_model.t ->
  src:region ->
  src_off:int ->
  dst:region ->
  dst_off:int ->
  len:int ->
  unit
(** Costed host memcpy: blits and delays the calling fiber by the
    model's per-byte copy cost. *)
