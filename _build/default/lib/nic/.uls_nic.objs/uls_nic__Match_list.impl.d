lib/nic/match_list.ml: List Uls_engine Vec
