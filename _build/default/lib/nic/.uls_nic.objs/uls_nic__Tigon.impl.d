lib/nic/tigon.ml: Cost_model Printf Resource Sim Uls_engine Uls_ether Uls_host
