lib/nic/tigon.mli: Uls_engine Uls_ether Uls_host
