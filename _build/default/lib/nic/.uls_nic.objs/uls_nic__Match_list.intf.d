lib/nic/match_list.mli:
