open Uls_engine
open Uls_host

type t = {
  node_id : int;
  sim : Sim.t;
  model : Cost_model.t;
  net : Uls_ether.Network.t;
  tx_cpu : Resource.t;
  rx_cpu : Resource.t;
  dma_engine : Resource.t;
  mutable firmware_rx : Uls_ether.Frame.t -> unit;
  mutable rx_frames : int;
}

let create sim model net ~node =
  let name part = Printf.sprintf "nic%d-%s" node part in
  let t =
    {
      node_id = node;
      sim;
      model;
      net;
      tx_cpu = Resource.create sim ~name:(name "txcpu");
      rx_cpu = Resource.create sim ~name:(name "rxcpu");
      dma_engine = Resource.create sim ~name:(name "dma");
      firmware_rx = (fun _ -> ());
      rx_frames = 0;
    }
  in
  Uls_ether.Network.attach net ~station:node (fun frame ->
      t.rx_frames <- t.rx_frames + 1;
      t.firmware_rx frame);
  t

let node_id t = t.node_id
let sim t = t.sim
let model t = t.model
let set_firmware_rx t f = t.firmware_rx <- f

(* The MAC has a small transmit FIFO: when more than ~8 full frames are
   already queued on the wire, the transmitting firmware fiber stalls
   until the backlog drains. Without this, a burst of posted messages
   queues unbounded wire-time ahead of itself and reliability timers fire
   long before the frames were ever transmitted. *)
let tx_fifo_ns = 100_000

let transmit t frame =
  let uplink = Uls_ether.Network.uplink t.net ~station:t.node_id in
  let backlog = Uls_ether.Link.busy_until uplink - Sim.now t.sim in
  if backlog > tx_fifo_ns then Sim.delay t.sim (backlog - tx_fifo_ns);
  Uls_ether.Network.send t.net frame
let tx_work t d = Resource.use t.tx_cpu d
let rx_work t d = Resource.use t.rx_cpu d
let dma t ~bytes = Resource.use t.dma_engine (Cost_model.dma_cost t.model bytes)

let mailbox_ring t =
  ignore (Resource.completion_after t.tx_cpu t.model.Cost_model.nic_mailbox_fetch)

let tx_cpu t = t.tx_cpu
let rx_cpu t = t.rx_cpu
let dma_engine t = t.dma_engine
let frames_received t = t.rx_frames
