(** Alteon Tigon2 NIC model. The chip's two embedded MIPS cores are
    modelled as a send-side and a receive-side FIFO resource (the EMP
    firmware dedicates one core to each direction); the DMA engine /
    PCI bus is a third shared resource. Firmware behaviour (EMP or the
    standard Acenic-style driver interface) is layered on top by the
    protocol libraries via {!set_firmware_rx} and the work/DMA hooks. *)

type t

val create :
  Uls_engine.Sim.t -> Uls_host.Cost_model.t -> Uls_ether.Network.t -> node:int -> t

val node_id : t -> int
val sim : t -> Uls_engine.Sim.t
val model : t -> Uls_host.Cost_model.t

val set_firmware_rx : t -> (Uls_ether.Frame.t -> unit) -> unit
(** Install the handler invoked (in plain event context) for each frame
    the MAC delivers to this NIC. *)

val transmit : t -> Uls_ether.Frame.t -> unit
(** Hand a frame to the MAC for transmission on the station uplink. *)

val tx_work : t -> Uls_engine.Time.ns -> unit
(** Occupy the send core for the given processing time (fiber). *)

val rx_work : t -> Uls_engine.Time.ns -> unit

val dma : t -> bytes:int -> unit
(** One DMA transaction over the PCI bus (fiber): setup + per-byte. *)

val mailbox_ring : t -> unit
(** Host doorbell: charge the send core the mailbox-fetch cost
    asynchronously (does not block the caller). *)

val tx_cpu : t -> Uls_engine.Resource.t
val rx_cpu : t -> Uls_engine.Resource.t
val dma_engine : t -> Uls_engine.Resource.t
val frames_received : t -> int
