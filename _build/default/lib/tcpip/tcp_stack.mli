(** Assemble kernel TCP instances (one per node) into the stack-agnostic
    sockets API, so applications written against
    {!Uls_api.Sockets_api.stack} run unchanged over the kernel baseline. *)

type t

val create :
  ?config:Config.t ->
  nodes:Uls_host.Node.t array ->
  nics:Uls_nic.Tigon.t array ->
  unit ->
  t

val kernel : t -> int -> Kernel.t
val stream_of_conn : Tcp_conn.t -> Uls_api.Sockets_api.stream
val api : t -> Uls_api.Sockets_api.stack
