(** IP layer + Acenic-style driver model: fragmentation/reassembly,
    per-frame driver costs on the kernel CPU, and NIC receive interrupt
    coalescing (the Alteon firmware batches receive interrupts; this is
    what lets kernel TCP stream at hundreds of Mb/s while paying ~100 us
    small-message latency). *)

type t

val create :
  Uls_host.Node.t ->
  Uls_nic.Tigon.t ->
  cpu:Uls_engine.Resource.t ->
  config:Config.t ->
  t

val set_handler : t -> (src:int -> Segment.ip_payload -> unit) -> unit
(** Upper-protocol input, invoked from the interrupt dispatcher fiber
    after reassembly; it may (and does) charge further kernel CPU time. *)

val send : t -> dst:int -> Segment.ip_payload -> unit
(** Fragment and transmit a datagram. Charges per-fragment driver cost
    on the kernel CPU in the calling fiber; NIC-side DMA/transmit
    proceeds asynchronously in order. *)

val datagrams_delivered : t -> int
val datagrams_dropped : t -> int
(** Reassembly failures (fragment loss), counted lazily on eviction. *)

val interrupts_taken : t -> int
val frames_received : t -> int
