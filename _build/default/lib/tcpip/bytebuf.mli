(** Bounded byte ring used for TCP socket buffers. The send buffer keeps
    unacknowledged bytes at the front, so reads can {!peek} at an offset
    (retransmission) and {!drop} from the front (acknowledgment). *)

type t

val create : capacity:int -> t
val capacity : t -> int
val available : t -> int
(** Bytes currently stored. *)

val free_space : t -> int

val write : t -> string -> off:int -> len:int -> int
(** Append up to [len] bytes; returns how many were accepted. *)

val peek : t -> off:int -> len:int -> string
(** Copy out [len] bytes starting [off] bytes from the front, without
    consuming. @raise Invalid_argument if the range exceeds {!available}. *)

val read : t -> int -> string
(** Consume and return up to [n] bytes from the front. *)

val drop : t -> int -> unit
(** Discard [n] bytes from the front. @raise Invalid_argument if [n]
    exceeds {!available}. *)
