(** Wire types of the kernel stack: IP fragments carrying typed TCP/UDP
    payloads. Sizes are modelled byte-accurately ([bytes] functions);
    contents stay typed so no serialisation code is needed. *)

type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
}

let flag ?(syn = false) ?(ack = false) ?(fin = false) ?(rst = false) () =
  { syn; ack; fin; rst }

type tcp_segment = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack_no : int;
  flags : flags;
  wnd : int;  (** advertised receive window, bytes *)
  data : string;
}

type udp_datagram = {
  u_src_port : int;
  u_dst_port : int;
  u_data : string;
}

type ip_payload =
  | Tcp of tcp_segment
  | Udp of udp_datagram

let tcp_header_bytes = 20
let udp_header_bytes = 8
let ip_header_bytes = 20

let payload_bytes = function
  | Tcp s -> tcp_header_bytes + String.length s.data
  | Udp d -> udp_header_bytes + String.length d.u_data

(* IP fragments: the first fragment carries the typed payload; later
   fragments only account for bytes. Reassembly completes when all bytes
   of an (src, id) datagram have arrived — so the loss of any fragment
   drops the datagram, as real IP reassembly does. *)
type Uls_ether.Frame.payload +=
  | Ip_first of {
      ip_id : int;
      total_bytes : int;  (** L3 payload bytes of the whole datagram *)
      carried : int;  (** payload bytes in this fragment *)
      payload : ip_payload;
    }
  | Ip_cont of {
      ip_id : int;
      carried : int;
    }

let max_fragment_payload = Uls_ether.Frame.mtu - ip_header_bytes

(** TCP MSS: a full segment exactly fills one Ethernet frame. *)
let mss = Uls_ether.Frame.mtu - ip_header_bytes - tcp_header_bytes

let pp_flags fmt f =
  Format.fprintf fmt "%s%s%s%s"
    (if f.syn then "S" else "")
    (if f.ack then "A" else "")
    (if f.fin then "F" else "")
    (if f.rst then "R" else "")

let pp_tcp fmt s =
  Format.fprintf fmt "tcp %d->%d seq=%d ack=%d %a wnd=%d len=%d" s.src_port
    s.dst_port s.seq s.ack_no pp_flags s.flags s.wnd (String.length s.data)
