lib/tcpip/ip.ml: Cond Config Cost_model Hashtbl List Node Queue Resource Segment Sim Tigon Time Uls_engine Uls_ether Uls_host Uls_nic
