lib/tcpip/ip.mli: Config Segment Uls_engine Uls_host Uls_nic
