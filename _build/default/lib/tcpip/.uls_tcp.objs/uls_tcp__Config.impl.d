lib/tcpip/config.ml: Uls_engine
