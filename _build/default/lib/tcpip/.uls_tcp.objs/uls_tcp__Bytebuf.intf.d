lib/tcpip/bytebuf.mli:
