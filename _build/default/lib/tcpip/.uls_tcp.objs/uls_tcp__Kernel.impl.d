lib/tcpip/kernel.ml: Cond Config Cost_model Hashtbl Ip Node Os Printf Queue Resource Segment Sim String Tcp_conn Uls_api Uls_engine Uls_host
