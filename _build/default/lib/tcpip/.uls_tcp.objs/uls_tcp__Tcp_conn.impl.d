lib/tcpip/tcp_conn.ml: Bytebuf Cond Config Cost_model List Node Os Resource Segment Sim String Time Uls_api Uls_engine Uls_host
