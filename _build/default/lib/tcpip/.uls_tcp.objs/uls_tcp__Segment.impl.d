lib/tcpip/segment.ml: Format String Uls_ether
