lib/tcpip/kernel.mli: Config Ip Tcp_conn Uls_api Uls_engine Uls_host Uls_nic
