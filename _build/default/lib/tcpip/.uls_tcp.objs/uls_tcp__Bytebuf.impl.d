lib/tcpip/bytebuf.ml: Bytes
