lib/tcpip/tcp_stack.mli: Config Kernel Tcp_conn Uls_api Uls_host Uls_nic
