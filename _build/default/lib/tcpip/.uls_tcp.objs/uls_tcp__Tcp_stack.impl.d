lib/tcpip/tcp_stack.ml: Array Cond Config Kernel List Tcp_conn Uls_api Uls_engine
