type t = {
  data : Bytes.t;
  mutable head : int; (* index of first stored byte *)
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Bytebuf.create";
  { data = Bytes.make capacity '\000'; head = 0; len = 0 }

let capacity t = Bytes.length t.data
let available t = t.len
let free_space t = capacity t - t.len

let write t s ~off ~len =
  let n = min len (free_space t) in
  let cap = capacity t in
  let tail = (t.head + t.len) mod cap in
  let first = min n (cap - tail) in
  Bytes.blit_string s off t.data tail first;
  if n > first then Bytes.blit_string s (off + first) t.data 0 (n - first);
  t.len <- t.len + n;
  n

let peek t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then invalid_arg "Bytebuf.peek";
  let cap = capacity t in
  let start = (t.head + off) mod cap in
  let first = min len (cap - start) in
  if first = len then Bytes.sub_string t.data start len
  else begin
    let out = Bytes.create len in
    Bytes.blit t.data start out 0 first;
    Bytes.blit t.data 0 out first (len - first);
    Bytes.to_string out
  end

let drop t n =
  if n < 0 || n > t.len then invalid_arg "Bytebuf.drop";
  t.head <- (t.head + n) mod capacity t;
  t.len <- t.len - n

let read t n =
  let n = min n t.len in
  let s = peek t ~off:0 ~len:n in
  drop t n;
  s
