type msg_key = {
  src_node : int;
  msg_id : int;
}

type data = {
  key : msg_key;
  tag : int;
  frame_idx : int;
  nframes : int;
  total_len : int;
  chunk : string;
}

type Uls_ether.Frame.payload +=
  | Data of data
  | Ack of { key : msg_key; acked : int }
  | Nack of { key : msg_key; next_expected : int }

let header_bytes = 24
let max_data_per_frame = Uls_ether.Frame.mtu - header_bytes

let frames_for len =
  if len <= 0 then 1
  else (len + max_data_per_frame - 1) / max_data_per_frame

let data_frame ~src ~dst d =
  Uls_ether.Frame.make ~src ~dst
    ~payload_len:(header_bytes + String.length d.chunk)
    (Data d)

let ack_frame ~src ~dst ~key ~acked =
  Uls_ether.Frame.make ~src ~dst ~payload_len:header_bytes (Ack { key; acked })

let nack_frame ~src ~dst ~key ~next_expected =
  Uls_ether.Frame.make ~src ~dst ~payload_len:header_bytes
    (Nack { key; next_expected })

let pp_key fmt k = Format.fprintf fmt "%d#%d" k.src_node k.msg_id
