lib/emp/endpoint.mli: Uls_engine Uls_host Uls_nic
