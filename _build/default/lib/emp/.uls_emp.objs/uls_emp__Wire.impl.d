lib/emp/wire.ml: Format String Uls_ether
