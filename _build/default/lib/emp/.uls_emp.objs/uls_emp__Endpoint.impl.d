lib/emp/endpoint.ml: Array Cond Cost_model Hashtbl Mailbox Match_list Memory Node Os Resource Sim String Tigon Time Uls_engine Uls_ether Uls_host Uls_nic Vec Wire
