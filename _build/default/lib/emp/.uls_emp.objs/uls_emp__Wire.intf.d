lib/emp/wire.mli: Format Uls_ether
