(** EMP frame formats. A message is fragmented into MTU-sized data frames
    identified by (sender, message id, frame index); receivers return
    cumulative acknowledgment frames. These protocol acks are NIC-level
    (reliability) — distinct from the substrate's flow-control acks,
    which travel as ordinary tagged EMP {e messages}. *)

type msg_key = {
  src_node : int;
  msg_id : int;
}

type data = {
  key : msg_key;
  tag : int;  (** 16-bit user tag used for NIC matching *)
  frame_idx : int;
  nframes : int;
  total_len : int;
  chunk : string;  (** the payload bytes this frame carries *)
}

type Uls_ether.Frame.payload +=
  | Data of data
  | Ack of { key : msg_key; acked : int (** cumulative frames received *) }
  | Nack of { key : msg_key; next_expected : int }

val header_bytes : int
(** EMP header per frame (sequence/tag/length fields). *)

val max_data_per_frame : int
val frames_for : int -> int
(** Number of frames needed for a message of the given byte length
    (at least 1: zero-length messages still send a header frame). *)

val data_frame : src:int -> dst:int -> data -> Uls_ether.Frame.t
val ack_frame : src:int -> dst:int -> key:msg_key -> acked:int -> Uls_ether.Frame.t
val nack_frame : src:int -> dst:int -> key:msg_key -> next_expected:int -> Uls_ether.Frame.t

val pp_key : Format.formatter -> msg_key -> unit
