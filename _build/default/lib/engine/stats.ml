module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let reset t = t.v <- 0
end

module Summary = struct
  type t = {
    samples : float Vec.t;
    mutable sorted : bool;
  }

  let create () = { samples = Vec.create (); sorted = true }

  let add t x =
    Vec.push t.samples x;
    t.sorted <- false

  let count t = Vec.length t.samples
  let sum t = Vec.fold ( +. ) 0. t.samples

  let mean t =
    let n = count t in
    if n = 0 then 0. else sum t /. float_of_int n

  let min t = Vec.fold Float.min infinity t.samples
  let max t = Vec.fold Float.max neg_infinity t.samples

  let stddev t =
    let n = count t in
    if n < 2 then 0.
    else begin
      let m = mean t in
      let ss = Vec.fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. t.samples in
      sqrt (ss /. float_of_int (n - 1))
    end

  let percentile t p =
    let n = count t in
    if n = 0 then 0.
    else begin
      if not t.sorted then begin
        Vec.sort Float.compare t.samples;
        t.sorted <- true
      end;
      let rank = int_of_float (Float.round (p *. float_of_int (n - 1))) in
      let rank = Stdlib.min (n - 1) (Stdlib.max 0 rank) in
      Vec.get t.samples rank
    end

  let clear t =
    Vec.clear t.samples;
    t.sorted <- true
end

module Series = struct
  type t = {
    name : string;
    mutable pts : (float * float) list;
  }

  let create ~name = { name; pts = [] }
  let add t ~x ~y = t.pts <- (x, y) :: t.pts
  let name t = t.name
  let points t = List.rev t.pts
end
