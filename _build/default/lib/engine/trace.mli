(** Lightweight per-simulation debug tracing. Disabled by default; when
    enabled, lines carry the virtual timestamp and a subsystem tag. *)

type t

val create : Sim.t -> t
val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val emit : t -> tag:string -> string -> unit
val emitf : t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val lines : t -> string list
(** Everything emitted while enabled, oldest first. *)

val dump : t -> Format.formatter -> unit
