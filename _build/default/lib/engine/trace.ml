type t = {
  sim : Sim.t;
  mutable on : bool;
  buf : string Vec.t;
}

let create sim = { sim; on = false; buf = Vec.create () }
let enable t = t.on <- true
let disable t = t.on <- false
let enabled t = t.on

let emit t ~tag msg =
  if t.on then begin
    let line =
      Format.asprintf "[%a] %-12s %s" Time.pp (Sim.now t.sim) tag msg
    in
    Vec.push t.buf line
  end

let emitf t ~tag fmt =
  Format.kasprintf (fun s -> emit t ~tag s) fmt

let lines t = List.rev (Vec.fold (fun acc l -> l :: acc) [] t.buf)

let dump t fmt = List.iter (fun l -> Format.fprintf fmt "%s@." l) (lines t)
