(** Virtual time. All simulator timestamps and durations are integer
    nanoseconds, so a 1 Gb/s link transmits exactly one bit per tick. *)

type ns = int

val ns : int -> ns
val us : int -> ns
val ms : int -> ns
val s : int -> ns

val us_f : float -> ns
(** Fractional microseconds, rounded to the nearest nanosecond. *)

val to_us : ns -> float
val to_ms : ns -> float
val to_s : ns -> float

val pp : Format.formatter -> ns -> unit
(** Human-readable rendering with an adaptive unit (ns / us / ms / s). *)

val mbps : bytes_transferred:int -> elapsed:ns -> float
(** Throughput in megabits per second (decimal Mb: 1e6 bits). *)
