lib/engine/sim.ml: Effect Fun Heap Time
