lib/engine/cond.mli: Sim Time
