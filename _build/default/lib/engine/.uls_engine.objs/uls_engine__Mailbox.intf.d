lib/engine/mailbox.mli: Sim Time
