lib/engine/stats.ml: Float List Stdlib Vec
