lib/engine/cond.ml: Queue Sim
