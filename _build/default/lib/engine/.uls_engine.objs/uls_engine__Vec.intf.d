lib/engine/vec.mli:
