lib/engine/heap.ml: Vec
