lib/engine/stats.mli:
