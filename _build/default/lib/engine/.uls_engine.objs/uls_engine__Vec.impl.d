lib/engine/vec.ml: Array
