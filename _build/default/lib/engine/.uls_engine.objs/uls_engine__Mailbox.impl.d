lib/engine/mailbox.ml: Cond Queue Sim
