lib/engine/time.ml: Float Format
