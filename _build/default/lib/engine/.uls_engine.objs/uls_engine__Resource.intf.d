lib/engine/resource.mli: Sim Time
