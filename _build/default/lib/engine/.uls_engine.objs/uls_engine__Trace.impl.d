lib/engine/trace.ml: Format List Sim Time Vec
