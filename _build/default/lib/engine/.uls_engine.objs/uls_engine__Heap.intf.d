lib/engine/heap.mli:
