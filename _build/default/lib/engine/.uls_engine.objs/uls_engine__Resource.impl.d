lib/engine/resource.ml: Sim Time
