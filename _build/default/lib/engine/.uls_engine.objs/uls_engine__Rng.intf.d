lib/engine/rng.mli:
