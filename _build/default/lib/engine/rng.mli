(** Deterministic SplitMix64 PRNG — simulations must be reproducible
    regardless of the OCaml runtime's [Random] state. *)

type t

val create : seed:int -> t
val split : t -> t
(** An independent stream derived from [t]'s current state. *)

val int64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound > 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
val exponential : t -> mean:float -> float
val shuffle : t -> 'a array -> unit
