(** Array-based binary min-heap. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val peek : 'a t -> 'a option
val pop : 'a t -> 'a option
val clear : 'a t -> unit
