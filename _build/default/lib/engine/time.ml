type ns = int

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let s x = x * 1_000_000_000
let us_f x = int_of_float (Float.round (x *. 1_000.))
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_s t = float_of_int t /. 1_000_000_000.

let pp fmt t =
  let ft = float_of_int t in
  if t < 10_000 then Format.fprintf fmt "%d ns" t
  else if t < 10_000_000 then Format.fprintf fmt "%.2f us" (ft /. 1e3)
  else if t < 10_000_000_000 then Format.fprintf fmt "%.2f ms" (ft /. 1e6)
  else Format.fprintf fmt "%.3f s" (ft /. 1e9)

let mbps ~bytes_transferred ~elapsed =
  if elapsed <= 0 then 0.
  else
    let bits = float_of_int bytes_transferred *. 8. in
    bits /. (float_of_int elapsed /. 1e9) /. 1e6
