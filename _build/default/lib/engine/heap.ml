type 'a t = {
  cmp : 'a -> 'a -> int;
  v : 'a Vec.t;
}

let create ~cmp = { cmp; v = Vec.create () }
let length h = Vec.length h.v
let is_empty h = Vec.is_empty h.v

let swap h i j =
  let a = Vec.get h.v i and b = Vec.get h.v j in
  Vec.set h.v i b;
  Vec.set h.v j a

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp (Vec.get h.v i) (Vec.get h.v parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = Vec.length h.v in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && h.cmp (Vec.get h.v l) (Vec.get h.v !smallest) < 0 then
    smallest := l;
  if r < n && h.cmp (Vec.get h.v r) (Vec.get h.v !smallest) < 0 then
    smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  Vec.push h.v x;
  sift_up h (Vec.length h.v - 1)

let peek h = if is_empty h then None else Some (Vec.get h.v 0)

let pop h =
  if is_empty h then None
  else begin
    let top = Vec.get h.v 0 in
    let last = Vec.pop h.v in
    if not (Vec.is_empty h.v) then begin
      Vec.set h.v 0 last;
      sift_down h 0
    end;
    Some top
  end

let clear h = Vec.clear h.v
