(** Measurement collection for experiments. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Summary : sig
  (** Keeps every sample; supports mean, min/max, stddev, percentiles. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val stddev : t -> float

  val percentile : t -> float -> float
  (** [percentile t 0.5] is the median. Nearest-rank on sorted samples. *)

  val sum : t -> float
  val clear : t -> unit
end

module Series : sig
  (** (x, y) points accumulated by sweeps, printable as a table column. *)

  type t

  val create : name:string -> t
  val add : t -> x:float -> y:float -> unit
  val name : t -> string
  val points : t -> (float * float) list
end
