(** A FIFO-served exclusive resource (NIC CPU, DMA engine, link, switch
    port). Requests occupy the resource back-to-back in arrival order;
    the caller's fiber resumes when its occupancy ends. *)

type t

val create : Sim.t -> name:string -> t

val use : t -> Time.ns -> unit
(** [use r d] occupies [r] for [d] ns starting when all earlier requests
    have drained, and blocks the calling fiber until that occupancy ends. *)

val completion_after : t -> Time.ns -> Time.ns
(** [completion_after r d] reserves [d] ns of occupancy like {!use} but
    returns the absolute completion time instead of blocking; for
    event-style code that schedules its own continuation. *)

val free_at : t -> Time.ns
(** Absolute time at which all currently queued occupancy drains. *)

val name : t -> string
val busy_time : t -> Time.ns
val jobs : t -> int

val queue_delay_total : t -> Time.ns
(** Cumulative time requests spent waiting behind earlier requests. *)

val utilization : t -> now:Time.ns -> float
