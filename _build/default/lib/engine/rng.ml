type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let next_state t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

(* SplitMix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_state t)

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to OCaml's 63-bit non-negative range before reducing. *)
  let r = Int64.to_int (int64 t) land max_int in
  r mod bound

let float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits53 *. (1. /. 9007199254740992.)

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t in
  -.mean *. log (1. -. u)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
