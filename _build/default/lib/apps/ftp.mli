(** File transfer application (§7.3): a text control protocol with bulk
    data streamed over the same connection, running on RAM disks at both
    ends. Works unchanged over kernel TCP and both substrate modes. *)

val chunk_size : int
(** Bulk transfer unit (60 KB: one substrate credit buffer per chunk). *)

val server :
  Uls_engine.Sim.t ->
  Uls_api.Sockets_api.stack ->
  node:int ->
  port:int ->
  disk:Ramdisk.t ->
  unit ->
  unit
(** Run the ftp server fiber body: accepts connections forever, each
    served by its own fiber. Supported commands: [RETR f], [STOR f n],
    [SIZE f], [LIST], [QUIT]. Spawn this inside [Sim.spawn]. *)

type transfer = {
  bytes : int;
  elapsed : Uls_engine.Time.ns;
}

val fetch :
  Uls_engine.Sim.t ->
  Uls_api.Sockets_api.stack ->
  node:int ->
  server:Uls_api.Sockets_api.addr ->
  file:string ->
  disk:Ramdisk.t ->
  transfer
(** Download [file] into the local RAM disk; returns size and elapsed
    virtual time. @raise Not_found if the server lacks the file. *)

val store :
  Uls_engine.Sim.t ->
  Uls_api.Sockets_api.stack ->
  node:int ->
  server:Uls_api.Sockets_api.addr ->
  file:string ->
  disk:Ramdisk.t ->
  transfer
(** Upload [file] from the local RAM disk. *)

val remote_size :
  Uls_api.Sockets_api.stack ->
  node:int ->
  server:Uls_api.Sockets_api.addr ->
  file:string ->
  int option

val remote_list :
  Uls_api.Sockets_api.stack ->
  node:int ->
  server:Uls_api.Sockets_api.addr ->
  string list
