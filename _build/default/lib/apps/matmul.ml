open Uls_api.Sockets_api
module Sim = Uls_engine.Sim

type matrix = float array array

let random_matrix ~seed ~n =
  let rng = Uls_engine.Rng.create ~seed in
  Array.init n (fun _ -> Array.init n (fun _ -> Uls_engine.Rng.float rng -. 0.5))

let multiply_seq a b =
  let n = Array.length a in
  let m = Array.length b.(0) in
  let k = Array.length b in
  Array.init n (fun i ->
      Array.init m (fun j ->
          let sum = ref 0. in
          for l = 0 to k - 1 do
            sum := !sum +. (a.(i).(l) *. b.(l).(j))
          done;
          !sum))

let matrices_equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ra rb ->
         Array.length ra = Array.length rb
         && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) ra rb)
       a b

(* --- float (de)serialisation ---------------------------------------- *)

let encode_rows rows =
  let nrows = Array.length rows in
  let ncols = if nrows = 0 then 0 else Array.length rows.(0) in
  let b = Bytes.create (nrows * ncols * 8) in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          Bytes.set_int64_le b (((i * ncols) + j) * 8) (Int64.bits_of_float v))
        row)
    rows;
  Bytes.to_string b

let decode_rows s ~rows ~cols =
  let b = Bytes.of_string s in
  Array.init rows (fun i ->
      Array.init cols (fun j ->
          Int64.float_of_bits (Bytes.get_int64_le b (((i * cols) + j) * 8))))

let header_bytes = 64

(* Fixed-size headers keep the protocol working over datagram-mode
   sockets (one recv = one whole message). *)
let header ints =
  let line = String.concat " " (List.map string_of_int ints) in
  if String.length line >= header_bytes then invalid_arg "matmul: header too long";
  line ^ String.make (header_bytes - String.length line) ' '

let read_header s =
  let line = String.trim (recv_exact s header_bytes) in
  List.map int_of_string (String.split_on_char ' ' line)

(* --- worker ----------------------------------------------------------- *)

(* Naive triple loop on a ~700 MHz Pentium III: ~140 Mflop/s. *)
let default_ns_per_flop = 7.0

let worker ?(ns_per_flop = default_ns_per_flop) sim stack ~node ~master () =
  let s = stack.connect ~node master in
  (match read_header s with
  | [ row_start; rows; n ] ->
    let a_block =
      if rows = 0 then [||]
      else decode_rows (recv_exact s (rows * n * 8)) ~rows ~cols:n
    in
    let b = decode_rows (recv_exact s (n * n * 8)) ~rows:n ~cols:n in
    let product = if rows = 0 then [||] else multiply_seq a_block b in
    (* Charge the sequential compute time of the block. *)
    let flops = 2. *. float_of_int (rows * n * n) in
    Sim.delay sim (int_of_float (flops *. ns_per_flop));
    s.send (header [ row_start; rows ]);
    if rows > 0 then s.send (encode_rows product)
  | _ -> failwith "matmul worker: bad header");
  s.close ()

(* --- master ------------------------------------------------------------ *)

type result = {
  product : matrix;
  elapsed : Uls_engine.Time.ns;
}

let master sim stack ~node ~port ~workers ~a ~b =
  let n = Array.length a in
  let l = stack.listen ~node ~port ~backlog:workers in
  let streams = Array.init workers (fun _ -> fst (l.accept ())) in
  let t0 = Sim.now sim in
  (* Distribute row blocks and B. *)
  let base = n / workers and extra = n mod workers in
  let row_start = ref 0 in
  Array.iteri
    (fun w s ->
      let rows = base + (if w < extra then 1 else 0) in
      s.send (header [ !row_start; rows; n ]);
      if rows > 0 then s.send (encode_rows (Array.sub a !row_start rows));
      s.send (encode_rows b);
      row_start := !row_start + rows)
    streams;
  (* Collect with select() as workers finish. *)
  let product = Array.make n [||] in
  let pending = ref (Array.to_list streams) in
  let done_count = ref 0 in
  while !done_count < workers do
    let ready = stack.select ~node !pending in
    List.iter
      (fun s ->
        match read_header s with
        | [ row_start; rows ] ->
          if rows > 0 then begin
            let block = decode_rows (recv_exact s (rows * n * 8)) ~rows ~cols:n in
            Array.blit block 0 product row_start rows
          end;
          incr done_count;
          pending := List.filter (fun s' -> s' != s) !pending;
          s.close ()
        | _ -> failwith "matmul master: bad result header")
      ready
  done;
  l.close_listener ();
  { product; elapsed = Sim.now sim - t0 }
