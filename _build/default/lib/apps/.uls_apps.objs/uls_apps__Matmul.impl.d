lib/apps/matmul.ml: Array Bytes Float Int64 List String Uls_api Uls_engine
