lib/apps/fdio.ml: Buffer Hashtbl Ramdisk String Uls_api
