lib/apps/ftp.mli: Ramdisk Uls_api Uls_engine
