lib/apps/ramdisk.mli: Uls_engine Uls_host
