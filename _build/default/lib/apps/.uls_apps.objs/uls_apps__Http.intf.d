lib/apps/http.mli: Uls_api Uls_engine
