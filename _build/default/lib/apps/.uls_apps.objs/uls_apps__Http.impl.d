lib/apps/http.ml: List String Uls_api Uls_engine
