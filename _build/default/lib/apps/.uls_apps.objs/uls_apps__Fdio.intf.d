lib/apps/fdio.mli: Ramdisk Uls_api
