lib/apps/ftp.ml: Fdio Fun List Printf Ramdisk String Uls_api Uls_engine
