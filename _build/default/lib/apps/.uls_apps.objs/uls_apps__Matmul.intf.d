lib/apps/matmul.mli: Uls_api Uls_engine
