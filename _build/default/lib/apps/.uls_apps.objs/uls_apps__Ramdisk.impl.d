lib/apps/ramdisk.ml: Bytes Char Cost_model Hashtbl List Node Option String Uls_engine Uls_host
