(** Web-server workload of §7.4: clients send a 16-byte request (a file
    name); the server answers with an [S]-byte response. Under
    HTTP/1.0 the connection closes after one request; HTTP/1.1 allows up
    to 8 requests per connection. *)

val request_bytes : int
(** 16, per the paper. *)

val http10_requests_per_conn : int
val http11_requests_per_conn : int

val server :
  Uls_engine.Sim.t ->
  Uls_api.Sockets_api.stack ->
  node:int ->
  port:int ->
  response_size:int ->
  requests_per_conn:int ->
  unit ->
  unit
(** Accept loop; each connection is served by its own fiber. Runs
    forever; spawn as a fiber. *)

type client_result = {
  requests : int;
  mean_response_time : float;  (** ns, connection setup amortised in *)
  response_times : float list;  (** per-request, ns *)
}

val client :
  Uls_engine.Sim.t ->
  Uls_api.Sockets_api.stack ->
  node:int ->
  server:Uls_api.Sockets_api.addr ->
  response_size:int ->
  requests_per_conn:int ->
  connections:int ->
  client_result
(** Issue [connections * requests_per_conn] requests; response time of a
    request includes its share of connection setup (the first request of
    each connection carries the whole connect). *)
