open Uls_api.Sockets_api
module Sim = Uls_engine.Sim

let request_bytes = 16
let http10_requests_per_conn = 1
let http11_requests_per_conn = 8

let server sim stack ~node ~port ~response_size ~requests_per_conn () =
  let l = stack.listen ~node ~port ~backlog:16 in
  let response = String.make response_size 'r' in
  let serve s () =
    (try
       for _ = 1 to requests_per_conn do
         let req = recv_exact s request_bytes in
         ignore req;
         s.send response
       done
     with Connection_closed -> ());
    s.close ()
  in
  let rec accept_loop () =
    let s, _ = l.accept () in
    (* Concurrent clients (the paper uses three) get their own fiber. *)
    Sim.spawn sim ~name:"http-conn" (serve s);
    accept_loop ()
  in
  try accept_loop () with Connection_closed -> ()

type client_result = {
  requests : int;
  mean_response_time : float;
  response_times : float list;
}

let client sim stack ~node ~server ~response_size ~requests_per_conn
    ~connections =
  let times = ref [] in
  let request = String.make request_bytes 'q' in
  for _ = 1 to connections do
    let t_conn = Sim.now sim in
    let s = stack.connect ~node server in
    let conn_cost = Sim.now sim - t_conn in
    for r = 1 to requests_per_conn do
      let t0 = Sim.now sim in
      s.send request;
      ignore (recv_exact s response_size);
      let dt = Sim.now sim - t0 in
      (* Connection setup is charged to the first request of the
         connection, matching a response-time measurement taken from
         "want the object" to "have the object". *)
      let dt = if r = 1 then dt + conn_cost else dt in
      times := float_of_int dt :: !times
    done;
    s.close ()
  done;
  let times_l = List.rev !times in
  let n = List.length times_l in
  {
    requests = n;
    mean_response_time =
      (if n = 0 then 0. else List.fold_left ( +. ) 0. times_l /. float_of_int n);
    response_times = times_l;
  }
