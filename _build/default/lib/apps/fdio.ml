type fd = int

exception Bad_fd of fd

type file = {
  disk : Ramdisk.t;
  name : string;
  mutable pos : int;
  writable : bool;
  pending : Buffer.t; (* writes accumulated until close *)
}

type entry =
  | File of file
  | Socket of Uls_api.Sockets_api.stream

type t = {
  table : (fd, entry) Hashtbl.t;
  mutable next_fd : int;
}

let create () = { table = Hashtbl.create 16; next_fd = 3 (* after std fds *) }

let alloc t entry =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.table fd entry;
  fd

let lookup t fd =
  match Hashtbl.find_opt t.table fd with
  | Some e -> e
  | None -> raise (Bad_fd fd)

let open_file t disk ~name ~mode =
  let writable =
    match mode with
    | `Read ->
      if not (Ramdisk.exists disk name) then raise Not_found;
      false
    | `Create -> true
  in
  alloc t (File { disk; name; pos = 0; writable; pending = Buffer.create 64 })

let socket_fd t stream = alloc t (Socket stream)

let read t fd n =
  match lookup t fd with
  | Socket s -> s.Uls_api.Sockets_api.recv n
  | File f ->
    if f.writable then
      (* Reads of a file being created see what was written so far. *)
      let data = Buffer.contents f.pending in
      let avail = String.length data - f.pos in
      let m = max 0 (min n avail) in
      let s = String.sub data f.pos m in
      f.pos <- f.pos + m;
      s
    else begin
      let s = Ramdisk.read f.disk ~name:f.name ~off:f.pos ~len:n in
      f.pos <- f.pos + String.length s;
      s
    end

let write t fd data =
  match lookup t fd with
  | Socket s -> s.Uls_api.Sockets_api.send data
  | File f ->
    if not f.writable then invalid_arg "Fdio.write: read-only file";
    Buffer.add_string f.pending data

let close t fd =
  let e = lookup t fd in
  Hashtbl.remove t.table fd;
  match e with
  | Socket s -> s.Uls_api.Sockets_api.close ()
  | File f ->
    if f.writable then
      Ramdisk.write_file f.disk ~name:f.name (Buffer.contents f.pending)

let is_socket t fd =
  match lookup t fd with Socket _ -> true | File _ -> false

let descriptor_count t = Hashtbl.length t.table

let stream_of_fd t fd =
  match lookup t fd with
  | Socket s -> s
  | File _ -> raise (Bad_fd fd)
