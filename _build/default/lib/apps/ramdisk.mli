(** RAM-disk file system (§7.3: "to remove the effects of disk access
    and caching, we have RAM disks for this experiment"). Files live in
    memory; reads and writes still pay a per-call file-system overhead
    and a per-byte buffer-cache copy, which is why ftp cannot reach the
    raw socket bandwidth (the paper's "File System overhead"). *)

type t

val create : Uls_host.Node.t -> t

val write_file : t -> name:string -> string -> unit
(** Create or replace a file (charges FS costs). *)

val create_random : t -> name:string -> size:int -> seed:int -> unit
(** Populate a file with deterministic pseudo-random content, free of
    simulated cost (test fixture setup). *)

val exists : t -> string -> bool
val size : t -> string -> int option
val list : t -> string list
val delete : t -> string -> bool

val read : t -> name:string -> off:int -> len:int -> string
(** Read up to [len] bytes at [off]; shorter at end of file; [""] past
    the end. Charges the FS call overhead plus the per-byte copy.
    @raise Not_found if the file does not exist. *)

val file_read_overhead : Uls_engine.Time.ns
(** Fixed per-call cost (VFS + buffer cache lookup). *)
