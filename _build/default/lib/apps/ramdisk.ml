open Uls_host

type t = {
  node : Node.t;
  files : (string, string) Hashtbl.t;
}

let file_read_overhead = 9_000

let create node = { node; files = Hashtbl.create 16 }

let fs_cost t len =
  Node.compute t.node file_read_overhead;
  Node.compute t.node (Cost_model.copy_cost (Node.model t.node) len)

let write_file t ~name data =
  fs_cost t (String.length data);
  Hashtbl.replace t.files name data

let create_random t ~name ~size ~seed =
  let rng = Uls_engine.Rng.create ~seed in
  let b = Bytes.create size in
  for i = 0 to size - 1 do
    Bytes.set b i (Char.chr (32 + Uls_engine.Rng.int rng 95))
  done;
  Hashtbl.replace t.files name (Bytes.to_string b)

let exists t name = Hashtbl.mem t.files name
let size t name = Option.map String.length (Hashtbl.find_opt t.files name)
let list t = Hashtbl.fold (fun k _ acc -> k :: acc) t.files [] |> List.sort compare

let delete t name =
  let existed = Hashtbl.mem t.files name in
  Hashtbl.remove t.files name;
  existed

let read t ~name ~off ~len =
  match Hashtbl.find_opt t.files name with
  | None -> raise Not_found
  | Some data ->
    let total = String.length data in
    let n = if off >= total then 0 else min len (total - off) in
    fs_cost t n;
    if n = 0 then "" else String.sub data off n
