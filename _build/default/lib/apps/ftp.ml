open Uls_api.Sockets_api
module Sim = Uls_engine.Sim

let chunk_size = 61_440
let ctrl_bytes = 64

(* Control messages are fixed-size so the protocol works over both
   data-streaming (byte stream) and datagram (message-preserving)
   sockets: a datagram recv consumes exactly one whole message. *)
let send_ctrl s line =
  if String.length line >= ctrl_bytes then invalid_arg "ftp: control line too long";
  s.send (line ^ String.make (ctrl_bytes - String.length line) ' ')

let recv_ctrl s = String.trim (recv_exact s ctrl_bytes)

type transfer = {
  bytes : int;
  elapsed : Uls_engine.Time.ns;
}

(* --- server ---------------------------------------------------------- *)


(* Bulk paths run through the fd table: the same generic read/write is
   issued on a file descriptor and on a socket descriptor, which is the
   function name-space overloading the paper demonstrates with ftp
   (5.4, 7.3). *)
let serve_retr fdio disk s sock_fd name =
  match Ramdisk.size disk name with
  | None -> send_ctrl s "ERR no such file"
  | Some total ->
    send_ctrl s (Printf.sprintf "OK %d" total);
    let file_fd = Fdio.open_file fdio disk ~name ~mode:`Read in
    let rec stream () =
      let chunk = Fdio.read fdio file_fd chunk_size in
      if chunk <> "" then begin
        Fdio.write fdio sock_fd chunk;
        stream ()
      end
    in
    stream ();
    Fdio.close fdio file_fd

let serve_stor fdio disk s sock_fd name size =
  send_ctrl s "OK send";
  let file_fd = Fdio.open_file fdio disk ~name ~mode:`Create in
  let rec pull got =
    if got < size then begin
      let chunk = Fdio.read fdio sock_fd (min chunk_size (size - got)) in
      if chunk = "" then raise Connection_closed;
      Fdio.write fdio file_fd chunk;
      pull (got + String.length chunk)
    end
  in
  pull 0;
  Fdio.close fdio file_fd;
  send_ctrl s "OK stored"

let serve_conn disk s =
  let fdio = Fdio.create () in
  let sock_fd = Fdio.socket_fd fdio s in
  let rec loop () =
    let line = recv_ctrl s in
    match String.split_on_char ' ' line with
    | [ "RETR"; name ] ->
      serve_retr fdio disk s sock_fd name;
      loop ()
    | [ "STOR"; name; size ] ->
      serve_stor fdio disk s sock_fd name (int_of_string size);
      loop ()
    | [ "SIZE"; name ] ->
      (match Ramdisk.size disk name with
      | Some n -> send_ctrl s (Printf.sprintf "OK %d" n)
      | None -> send_ctrl s "ERR no such file");
      loop ()
    | [ "LIST" ] ->
      let files = Ramdisk.list disk in
      send_ctrl s (Printf.sprintf "OK %d" (List.length files));
      List.iter (fun f -> send_ctrl s f) files;
      loop ()
    | [ "QUIT" ] -> send_ctrl s "OK bye"
    | _ ->
      send_ctrl s "ERR bad command";
      loop ()
  in
  (try loop () with Connection_closed -> ());
  Fdio.close fdio sock_fd

let server sim stack ~node ~port ~disk () =
  let l = stack.listen ~node ~port ~backlog:8 in
  let rec accept_loop () =
    let s, _peer = l.accept () in
    (* Each connection is served by its own fiber. *)
    Sim.spawn sim ~name:"ftp-conn" (fun () -> serve_conn disk s);
    accept_loop ()
  in
  try accept_loop () with Connection_closed -> ()

(* --- client ---------------------------------------------------------- *)

let expect_ok s =
  let line = recv_ctrl s in
  match String.split_on_char ' ' line with
  | "OK" :: rest -> rest
  | _ -> raise Not_found

let with_conn stack ~node ~server f =
  let s = stack.connect ~node server in
  Fun.protect ~finally:(fun () -> s.close ()) (fun () -> f s)

let fetch sim stack ~node ~server ~file ~disk =
  with_conn stack ~node ~server (fun s ->
      let t0 = Sim.now sim in
      send_ctrl s (Printf.sprintf "RETR %s" file);
      match expect_ok s with
      | [ size ] ->
        let total = int_of_string size in
        let fdio = Fdio.create () in
        let sock_fd = Fdio.socket_fd fdio s in
        let file_fd = Fdio.open_file fdio disk ~name:file ~mode:`Create in
        let rec pull got =
          if got < total then begin
            let chunk = Fdio.read fdio sock_fd chunk_size in
            if chunk = "" then raise Connection_closed;
            Fdio.write fdio file_fd chunk;
            pull (got + String.length chunk)
          end
        in
        pull 0;
        Fdio.close fdio file_fd;
        { bytes = total; elapsed = Sim.now sim - t0 }
      | _ -> raise Not_found)

let store sim stack ~node ~server ~file ~disk =
  match Ramdisk.size disk file with
  | None -> raise Not_found
  | Some total ->
    with_conn stack ~node ~server (fun s ->
        let t0 = Sim.now sim in
        send_ctrl s (Printf.sprintf "STOR %s %d" file total);
        ignore (expect_ok s);
        let fdio = Fdio.create () in
        let sock_fd = Fdio.socket_fd fdio s in
        let file_fd = Fdio.open_file fdio disk ~name:file ~mode:`Read in
        let rec push () =
          let chunk = Fdio.read fdio file_fd chunk_size in
          if chunk <> "" then begin
            Fdio.write fdio sock_fd chunk;
            push ()
          end
        in
        push ();
        Fdio.close fdio file_fd;
        ignore (expect_ok s);
        { bytes = total; elapsed = Sim.now sim - t0 })

let remote_size stack ~node ~server ~file =
  with_conn stack ~node ~server (fun s ->
      send_ctrl s (Printf.sprintf "SIZE %s" file);
      match (try expect_ok s with Not_found -> []) with
      | [ n ] -> int_of_string_opt n
      | _ -> None)

let remote_list stack ~node ~server =
  with_conn stack ~node ~server (fun s ->
      send_ctrl s "LIST";
      match expect_ok s with
      | [ n ] -> List.init (int_of_string n) (fun _ -> recv_ctrl s)
      | _ -> [])
