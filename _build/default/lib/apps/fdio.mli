(** Function name-space overloading (§5.4). UNIX applications call the
    same [read]/[write]/[close] on files and sockets; the substrate
    cannot simply override them because the generic calls have multiple
    interpretations. The paper's solution — adopted here — is
    {e file-descriptor tracking}: a table, maintained by interposing on
    every call that creates or destroys a descriptor, that routes each
    generic call either to the EMP substrate or to the ordinary file
    system.

    One [t] models one process's descriptor table. File descriptors wrap
    RAM-disk files with a seek position; socket descriptors wrap any
    {!Uls_api.Sockets_api.stream} (substrate or kernel TCP alike, which
    is the point). *)

type t
type fd = int

exception Bad_fd of fd

val create : unit -> t

val open_file : t -> Ramdisk.t -> name:string -> mode:[ `Read | `Create ] -> fd
(** [`Read] requires the file to exist (@raise Not_found otherwise);
    [`Create] starts an empty file written back on {!close}. *)

val socket_fd : t -> Uls_api.Sockets_api.stream -> fd
(** Register a connected socket (the interposed [socket]/[accept] path). *)

val read : t -> fd -> int -> string
(** The overloaded generic call: file reads advance the seek position
    and return [""] at end of file; socket reads are stream receives. *)

val write : t -> fd -> string -> unit
val close : t -> fd -> unit
(** Files opened [`Create] are flushed to the RAM disk; sockets are
    closed through the substrate (descriptor reclamation, §5.3).
    @raise Bad_fd on double close. *)

val is_socket : t -> fd -> bool
val descriptor_count : t -> int
val stream_of_fd : t -> fd -> Uls_api.Sockets_api.stream
(** The underlying stream of a socket fd (for [select]).
    @raise Bad_fd if [fd] is not an open socket. *)
