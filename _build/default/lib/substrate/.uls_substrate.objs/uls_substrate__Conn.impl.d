lib/substrate/conn.ml: Array Codec Cond Cost_model Mailbox Memory Node Options Os Queue Sendpool Sim String Tags Time Uls_api Uls_emp Uls_engine Uls_host
