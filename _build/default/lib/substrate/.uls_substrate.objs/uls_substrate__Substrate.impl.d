lib/substrate/substrate.ml: Array Codec Cond Conn Hashtbl List Mailbox Memory Node Options Os Sendpool Sim Tags Uls_api Uls_emp Uls_engine Uls_host
