lib/substrate/codec.ml: Bytes Int64 List String Uls_host
