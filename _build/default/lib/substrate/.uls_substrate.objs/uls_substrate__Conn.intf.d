lib/substrate/conn.mli: Options Sendpool Uls_api Uls_emp Uls_host
