lib/substrate/options.ml: Uls_engine
