lib/substrate/sendpool.ml: Array Memory Node Os String Uls_emp Uls_host
