lib/substrate/tags.ml:
