lib/substrate/substrate.mli: Conn Options Uls_api Uls_emp Uls_engine Uls_host
