lib/bench/experiments.ml: Array Cluster List Microbench Printf Queue Sim String Table Time Uls_api Uls_apps Uls_emp Uls_engine Uls_host Uls_substrate Uls_tcp
