lib/bench/microbench.mli: Uls_substrate Uls_tcp
