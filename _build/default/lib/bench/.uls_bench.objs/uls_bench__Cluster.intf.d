lib/bench/cluster.mli: Uls_api Uls_emp Uls_engine Uls_ether Uls_host Uls_nic Uls_substrate Uls_tcp
