lib/bench/table.mli: Format
