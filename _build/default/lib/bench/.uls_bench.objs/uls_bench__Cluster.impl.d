lib/bench/cluster.ml: Array Cost_model Node Sim Uls_emp Uls_engine Uls_ether Uls_host Uls_nic Uls_substrate Uls_tcp
