lib/bench/table.ml: Array Format List Printf String
