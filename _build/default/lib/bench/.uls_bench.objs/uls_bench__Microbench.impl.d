lib/bench/microbench.ml: Cluster List Memory Queue Sim String Time Uls_api Uls_emp Uls_engine Uls_host Uls_substrate Uls_tcp
