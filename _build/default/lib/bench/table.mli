(** Result tables printed by the benchmark harness, one per paper
    table/figure. *)

type t = {
  id : string;  (** e.g. "fig11" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;  (** paper-reference commentary *)
}

val cell_f : float -> string
(** One decimal place. *)

val cell_f2 : float -> string
(** Two decimal places. *)

val cell_i : int -> string
val print : Format.formatter -> t -> unit
