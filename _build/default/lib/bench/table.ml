(** Result tables printed by the benchmark harness, one per paper
    table/figure. *)

type t = {
  id : string;  (** e.g. "fig11" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;  (** paper-reference commentary *)
}

let cell_f v = Printf.sprintf "%.1f" v
let cell_f2 v = Printf.sprintf "%.2f" v
let cell_i v = string_of_int v

let widths t =
  let all = t.header :: t.rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let w = Array.make cols 0 in
  List.iter
    (List.iteri (fun i c -> if i < cols then w.(i) <- max w.(i) (String.length c)))
    all;
  w

let print fmt t =
  let w = widths t in
  let pad i s =
    let extra = w.(i) - String.length s in
    if i = 0 then s ^ String.make extra ' ' else String.make extra ' ' ^ s
  in
  let line cells =
    Format.fprintf fmt "  %s@."
      (String.concat "  " (List.mapi pad cells))
  in
  Format.fprintf fmt "== %s: %s ==@." t.id t.title;
  line t.header;
  line (List.mapi (fun i _ -> String.make w.(i) '-') t.header);
  List.iter line t.rows;
  List.iter (fun n -> Format.fprintf fmt "  note: %s@." n) t.notes;
  Format.fprintf fmt "@."
