(* Tests for the application layer: RAM disk, ftp, web server, matmul —
   each exercised over both the substrate and kernel TCP. *)
open Uls_engine
module Opt = Uls_substrate.Options

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- Ramdisk --- *)

let in_sim f =
  let sim = Sim.create () in
  Sim.spawn sim (fun () -> f sim);
  ignore (Sim.run sim)

let mk_disk sim =
  Uls_apps.Ramdisk.create
    (Uls_host.Node.create sim Uls_host.Cost_model.paper_testbed ~id:0)

let test_ramdisk_write_read () =
  in_sim (fun sim ->
      let d = mk_disk sim in
      Uls_apps.Ramdisk.write_file d ~name:"f" "hello disk";
      check_bool "exists" true (Uls_apps.Ramdisk.exists d "f");
      Alcotest.(check (option int)) "size" (Some 10) (Uls_apps.Ramdisk.size d "f");
      check_str "full read" "hello disk" (Uls_apps.Ramdisk.read d ~name:"f" ~off:0 ~len:100);
      check_str "offset read" "disk" (Uls_apps.Ramdisk.read d ~name:"f" ~off:6 ~len:4);
      check_str "past end" "" (Uls_apps.Ramdisk.read d ~name:"f" ~off:50 ~len:4))

let test_ramdisk_missing () =
  in_sim (fun sim ->
      let d = mk_disk sim in
      check_bool "missing" false (Uls_apps.Ramdisk.exists d "nope");
      try
        ignore (Uls_apps.Ramdisk.read d ~name:"nope" ~off:0 ~len:1);
        Alcotest.fail "expected Not_found"
      with Not_found -> ())

let test_ramdisk_costs_time () =
  let sim = Sim.create () in
  Sim.spawn sim (fun () ->
      let d = mk_disk sim in
      Uls_apps.Ramdisk.create_random d ~name:"big" ~size:100_000 ~seed:1;
      let t0 = Sim.now sim in
      ignore (Uls_apps.Ramdisk.read d ~name:"big" ~off:0 ~len:100_000);
      check_bool "file read costs virtual time" true (Sim.now sim - t0 > 0));
  ignore (Sim.run sim)

let test_ramdisk_delete_list () =
  in_sim (fun sim ->
      let d = mk_disk sim in
      Uls_apps.Ramdisk.write_file d ~name:"b" "2";
      Uls_apps.Ramdisk.write_file d ~name:"a" "1";
      Alcotest.(check (list string)) "sorted list" [ "a"; "b" ]
        (Uls_apps.Ramdisk.list d);
      check_bool "delete" true (Uls_apps.Ramdisk.delete d "a");
      check_bool "second delete" false (Uls_apps.Ramdisk.delete d "a"))

(* --- ftp over each stack --- *)

let stacks =
  [
    ("ds", fun c -> Uls_bench.Cluster.substrate_api ~opts:Opt.data_streaming_enhanced c);
    ("dg", fun c -> Uls_bench.Cluster.substrate_api ~opts:Opt.datagram c);
    ("tcp", fun c -> Uls_bench.Cluster.tcp_api c);
  ]

let ftp_roundtrip make_api () =
  let c = Uls_bench.Cluster.create ~n:2 () in
  let api = make_api c in
  let sim = Uls_bench.Cluster.sim c in
  let server_disk = Uls_apps.Ramdisk.create (Uls_bench.Cluster.node c 1) in
  let client_disk = Uls_apps.Ramdisk.create (Uls_bench.Cluster.node c 0) in
  Uls_apps.Ramdisk.create_random server_disk ~name:"data" ~size:300_000 ~seed:3;
  Uls_apps.Ramdisk.create_random client_disk ~name:"up" ~size:123_457 ~seed:4;
  let ok = ref false in
  Sim.spawn sim ~name:"ftp-server"
    (Uls_apps.Ftp.server sim api ~node:1 ~port:21 ~disk:server_disk);
  Sim.spawn sim ~name:"ftp-client" (fun () ->
      Sim.delay sim (Time.us 100);
      let server = { Uls_api.Sockets_api.node = 1; port = 21 } in
      (* download *)
      let tr = Uls_apps.Ftp.fetch sim api ~node:0 ~server ~file:"data" ~disk:client_disk in
      check_int "downloaded size" 300_000 tr.Uls_apps.Ftp.bytes;
      check_bool "elapsed positive" true (tr.Uls_apps.Ftp.elapsed > 0);
      check_str "content identical"
        (Uls_apps.Ramdisk.read server_disk ~name:"data" ~off:0 ~len:300_000)
        (Uls_apps.Ramdisk.read client_disk ~name:"data" ~off:0 ~len:300_000);
      (* upload *)
      let tr = Uls_apps.Ftp.store sim api ~node:0 ~server ~file:"up" ~disk:client_disk in
      check_int "uploaded size" 123_457 tr.Uls_apps.Ftp.bytes;
      check_str "upload content identical"
        (Uls_apps.Ramdisk.read client_disk ~name:"up" ~off:0 ~len:123_457)
        (Uls_apps.Ramdisk.read server_disk ~name:"up" ~off:0 ~len:123_457);
      (* metadata *)
      Alcotest.(check (option int)) "remote size" (Some 300_000)
        (Uls_apps.Ftp.remote_size api ~node:0 ~server ~file:"data");
      Alcotest.(check (list string)) "remote list" [ "data"; "up" ]
        (Uls_apps.Ftp.remote_list api ~node:0 ~server);
      ok := true;
      Sim.stop sim);
  ignore (Uls_bench.Cluster.run c);
  check_bool "client finished" true !ok

(* --- web server --- *)

let web_roundtrip make_api () =
  let c = Uls_bench.Cluster.create ~n:4 () in
  let api = make_api c in
  let sim = Uls_bench.Cluster.sim c in
  Sim.spawn sim ~name:"server"
    (Uls_apps.Http.server sim api ~node:0 ~port:80 ~response_size:512
       ~requests_per_conn:8);
  let results = ref [] in
  let finished = ref 0 in
  for client = 1 to 3 do
    Sim.spawn sim ~name:"client" (fun () ->
        Sim.delay sim (Time.us (50 * client));
        let r =
          Uls_apps.Http.client sim api ~node:client
            ~server:{ node = 0; port = 80 } ~response_size:512
            ~requests_per_conn:8 ~connections:3
        in
        results := r :: !results;
        incr finished;
        if !finished = 3 then Sim.stop sim)
  done;
  ignore (Uls_bench.Cluster.run c);
  check_int "all clients reported" 3 (List.length !results);
  List.iter
    (fun r ->
      check_int "24 requests per client" 24 r.Uls_apps.Http.requests;
      check_bool "positive mean" true (r.Uls_apps.Http.mean_response_time > 0.);
      check_int "every request timed" 24 (List.length r.Uls_apps.Http.response_times))
    !results

(* --- matmul --- *)

let test_matmul_seq_reference () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let expected = [| [| 19.; 22. |]; [| 43.; 50. |] |] in
  check_bool "2x2 known product" true
    (Uls_apps.Matmul.matrices_equal expected (Uls_apps.Matmul.multiply_seq a b))

let matmul_distributed make_api () =
  let n = 48 in
  let c = Uls_bench.Cluster.create ~n:4 () in
  let api = make_api c in
  let sim = Uls_bench.Cluster.sim c in
  let a = Uls_apps.Matmul.random_matrix ~seed:21 ~n in
  let b = Uls_apps.Matmul.random_matrix ~seed:22 ~n in
  for w = 1 to 3 do
    Sim.spawn sim (fun () ->
        Sim.delay sim (Time.us (10 * w));
        Uls_apps.Matmul.worker sim api ~node:w ~master:{ node = 0; port = 90 } ())
  done;
  let ok = ref false in
  Sim.spawn sim (fun () ->
      let r = Uls_apps.Matmul.master sim api ~node:0 ~port:90 ~workers:3 ~a ~b in
      ok :=
        Uls_apps.Matmul.matrices_equal ~eps:1e-6
          (Uls_apps.Matmul.multiply_seq a b)
          r.Uls_apps.Matmul.product;
      Sim.stop sim);
  ignore (Uls_bench.Cluster.run c);
  check_bool "distributed = sequential" true !ok

let test_matmul_uneven_partition () =
  (* n not divisible by worker count: 7 rows over 3 workers. *)
  let n = 7 in
  let c = Uls_bench.Cluster.create ~n:4 () in
  let api = Uls_bench.Cluster.tcp_api c in
  let sim = Uls_bench.Cluster.sim c in
  let a = Uls_apps.Matmul.random_matrix ~seed:31 ~n in
  let b = Uls_apps.Matmul.random_matrix ~seed:32 ~n in
  for w = 1 to 3 do
    Sim.spawn sim (fun () ->
        Sim.delay sim (Time.us (10 * w));
        Uls_apps.Matmul.worker sim api ~node:w ~master:{ node = 0; port = 90 } ())
  done;
  let ok = ref false in
  Sim.spawn sim (fun () ->
      let r = Uls_apps.Matmul.master sim api ~node:0 ~port:90 ~workers:3 ~a ~b in
      ok :=
        Uls_apps.Matmul.matrices_equal ~eps:1e-6
          (Uls_apps.Matmul.multiply_seq a b)
          r.Uls_apps.Matmul.product;
      Sim.stop sim);
  ignore (Uls_bench.Cluster.run c);
  check_bool "uneven rows verified" true !ok

let prop_matrix_codec_roundtrip =
  QCheck.Test.make ~name:"matmul float rows survive encode/decode" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (rows, cols) ->
      let rng = Rng.create ~seed:(rows + (cols * 31)) in
      let m =
        Array.init rows (fun _ -> Array.init cols (fun _ -> Rng.float rng -. 0.5))
      in
      let encoded = Uls_apps.Matmul.encode_rows m in
      let decoded = Uls_apps.Matmul.decode_rows encoded ~rows ~cols in
      Uls_apps.Matmul.matrices_equal ~eps:0. m decoded)

let per_stack name f =
  List.map
    (fun (sname, make_api) ->
      Alcotest.test_case (Printf.sprintf "%s over %s" name sname) `Quick
        (f make_api))
    stacks

let suites =
  [
    ( "apps.ramdisk",
      [
        Alcotest.test_case "write/read" `Quick test_ramdisk_write_read;
        Alcotest.test_case "missing file" `Quick test_ramdisk_missing;
        Alcotest.test_case "costs time" `Quick test_ramdisk_costs_time;
        Alcotest.test_case "delete/list" `Quick test_ramdisk_delete_list;
      ] );
    ("apps.ftp", per_stack "roundtrip" ftp_roundtrip);
    ("apps.web", per_stack "3 clients x 8 reqs" web_roundtrip);
    ( "apps.matmul",
      Alcotest.test_case "sequential reference" `Quick test_matmul_seq_reference
      :: Alcotest.test_case "uneven partition" `Quick test_matmul_uneven_partition
      :: per_stack "distributed" matmul_distributed
      @ List.map QCheck_alcotest.to_alcotest [ prop_matrix_codec_roundtrip ] );
  ]
