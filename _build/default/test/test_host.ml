(* Tests for the host model: cost arithmetic, memory regions, the OS
   pin/translation cache, node accounting. *)
open Uls_engine
open Uls_host

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let model = Cost_model.paper_testbed

let test_copy_cost () =
  check_int "zero" 0 (Cost_model.copy_cost model 0);
  check_int "1000 bytes at 1.8ns/B" 1_800 (Cost_model.copy_cost model 1_000)

let test_dma_cost () =
  check_int "setup only" model.Cost_model.dma_setup (Cost_model.dma_cost model 0);
  check_int "1000 bytes"
    (model.Cost_model.dma_setup + 1_900)
    (Cost_model.dma_cost model 1_000)

let test_pin_cost_pages () =
  let one_page = Cost_model.pin_cost model ~bytes:100 in
  let two_pages = Cost_model.pin_cost model ~bytes:4_097 in
  check_int "one page" (15_000 + 2_000) one_page;
  check_int "two pages" (15_000 + 4_000) two_pages;
  check_int "zero bytes still pins a page" one_page
    (Cost_model.pin_cost model ~bytes:0)

let test_memory_roundtrip () =
  let r = Memory.of_string "hello world" in
  Alcotest.(check string) "sub" "world" (Memory.sub_string r ~off:6 ~len:5);
  Memory.blit_from_string "HELLO" r ~off:0;
  Alcotest.(check string) "after blit" "HELLO world"
    (Memory.sub_string r ~off:0 ~len:11)

let test_memory_ids_unique () =
  let a = Memory.alloc 10 and b = Memory.alloc 10 in
  check_bool "distinct ids" true (Memory.id a <> Memory.id b)

let test_memory_blit_between_regions () =
  let src = Memory.of_string "abcdef" in
  let dst = Memory.alloc 6 in
  Memory.blit ~src ~src_off:2 ~dst ~dst_off:0 ~len:3;
  Alcotest.(check string) "blit" "cde" (Memory.sub_string dst ~off:0 ~len:3)

let test_translation_cache () =
  let sim = Sim.create () in
  let os = Os.create sim model in
  let region = Memory.alloc 8_192 in
  let t_first = ref 0 and t_second = ref 0 in
  Sim.spawn sim (fun () ->
      let t0 = Sim.now sim in
      Os.pin_region os region ~off:0 ~len:8_192;
      t_first := Sim.now sim - t0;
      let t1 = Sim.now sim in
      Os.pin_region os region ~off:0 ~len:8_192;
      t_second := Sim.now sim - t1);
  ignore (Sim.run sim);
  check_int "first pays pin syscall" (15_000 + 4_000) !t_first;
  check_int "second is free" 0 !t_second;
  check_int "hits" 1 (Os.translation_cache_hits os);
  check_int "misses" 1 (Os.translation_cache_misses os)

let test_translation_cache_flush () =
  let sim = Sim.create () in
  let os = Os.create sim model in
  let region = Memory.alloc 100 in
  Sim.spawn sim (fun () ->
      Os.pin_region os region ~off:0 ~len:100;
      Os.flush_translation_cache os;
      Os.pin_region os region ~off:0 ~len:100);
  ignore (Sim.run sim);
  check_int "two misses after flush" 2 (Os.translation_cache_misses os)

let test_prepin () =
  let sim = Sim.create () in
  let os = Os.create sim model in
  let region = Memory.alloc 100 in
  Os.prepin os region;
  Sim.spawn sim (fun () -> Os.pin_region os region ~off:0 ~len:100);
  ignore (Sim.run sim);
  check_int "prepin makes the first use a hit" 1 (Os.translation_cache_hits os);
  check_int "no time passed" 0 (Sim.now sim)

let test_node_accounting () =
  let sim = Sim.create () in
  let node = Node.create sim model ~id:3 in
  Sim.spawn sim (fun () ->
      Node.compute node 500;
      Sim.delay sim 500;
      Node.compute node 250);
  ignore (Sim.run sim);
  check_int "id" 3 (Node.id node);
  check_int "busy" 750 (Node.busy_time node);
  Alcotest.(check (float 0.001)) "utilization" 0.6 (Node.utilization node)

let test_node_copy_charges () =
  let sim = Sim.create () in
  let node = Node.create sim model ~id:0 in
  let src = Memory.of_string (String.make 1_000 'z') in
  let dst = Memory.alloc 1_000 in
  Sim.spawn sim (fun () ->
      Node.copy node ~src ~src_off:0 ~dst ~dst_off:0 ~len:1_000);
  ignore (Sim.run sim);
  check_int "copy charged" (Cost_model.copy_cost model 1_000) (Node.busy_time node);
  Alcotest.(check string) "data moved" "zzz" (Memory.sub_string dst ~off:0 ~len:3)

let prop_pin_cost_monotone =
  QCheck.Test.make ~name:"pin cost monotone in size" ~count:100
    QCheck.(pair (int_range 0 100_000) (int_range 0 100_000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Cost_model.pin_cost model ~bytes:lo <= Cost_model.pin_cost model ~bytes:hi)

let suites =
  [
    ( "host.cost_model",
      Alcotest.test_case "copy cost" `Quick test_copy_cost
      :: Alcotest.test_case "dma cost" `Quick test_dma_cost
      :: Alcotest.test_case "pin cost pages" `Quick test_pin_cost_pages
      :: List.map QCheck_alcotest.to_alcotest [ prop_pin_cost_monotone ] );
    ( "host.memory",
      [
        Alcotest.test_case "roundtrip" `Quick test_memory_roundtrip;
        Alcotest.test_case "unique ids" `Quick test_memory_ids_unique;
        Alcotest.test_case "blit between regions" `Quick
          test_memory_blit_between_regions;
      ] );
    ( "host.os",
      [
        Alcotest.test_case "translation cache" `Quick test_translation_cache;
        Alcotest.test_case "cache flush" `Quick test_translation_cache_flush;
        Alcotest.test_case "prepin" `Quick test_prepin;
      ] );
    ( "host.node",
      [
        Alcotest.test_case "accounting" `Quick test_node_accounting;
        Alcotest.test_case "costed copy" `Quick test_node_copy_charges;
      ] );
  ]
