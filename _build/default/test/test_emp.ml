(* Tests for the EMP protocol: tag-matched delivery, reliability under
   frame loss, the unexpected queue, resource reclamation, and the
   translation cache. *)
open Uls_engine
open Uls_host
module E = Uls_emp.Endpoint

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let two_nodes () =
  let c = Uls_bench.Cluster.create ~n:2 () in
  (c, Uls_bench.Cluster.emp c 0, Uls_bench.Cluster.emp c 1)

let run c = ignore (Uls_bench.Cluster.run c)

let send_string e ~dst ~tag s =
  let region = Memory.of_string s in
  E.post_send e ~dst ~tag region ~off:0 ~len:(String.length s)

let test_basic_delivery () =
  let c, e0, e1 = two_nodes () in
  let sim = Uls_bench.Cluster.sim c in
  let got = ref "" in
  Sim.spawn sim (fun () ->
      let buf = Memory.alloc 64 in
      let r = E.post_recv e1 ~src:0 ~tag:3 buf ~off:0 ~len:64 in
      let len, src, tag = E.wait_recv e1 r in
      got := Memory.sub_string buf ~off:0 ~len;
      check_int "src" 0 src;
      check_int "tag" 3 tag);
  Sim.spawn sim (fun () ->
      let s = send_string e0 ~dst:1 ~tag:3 "hello EMP" in
      E.wait_send e0 s);
  run c;
  check_str "payload" "hello EMP" !got

let test_tag_separation () =
  let c, e0, e1 = two_nodes () in
  let sim = Uls_bench.Cluster.sim c in
  let order = ref [] in
  Sim.spawn sim (fun () ->
      let b1 = Memory.alloc 16 and b2 = Memory.alloc 16 in
      let r_b = E.post_recv e1 ~src:0 ~tag:2 b1 ~off:0 ~len:16 in
      let r_a = E.post_recv e1 ~src:0 ~tag:1 b2 ~off:0 ~len:16 in
      (* Wait on tag 1 first even though its descriptor was posted second:
         tag matching must route each message to its own descriptor. *)
      let len, _, _ = E.wait_recv e1 r_a in
      order := Memory.sub_string b2 ~off:0 ~len :: !order;
      let len, _, _ = E.wait_recv e1 r_b in
      order := Memory.sub_string b1 ~off:0 ~len :: !order);
  Sim.spawn sim (fun () ->
      ignore (send_string e0 ~dst:1 ~tag:2 "tag-two");
      ignore (send_string e0 ~dst:1 ~tag:1 "tag-one"));
  run c;
  Alcotest.(check (list string)) "routed by tag" [ "tag-two"; "tag-one" ] !order

let test_multi_frame_integrity () =
  let c, e0, e1 = two_nodes () in
  let sim = Uls_bench.Cluster.sim c in
  let size = 10_000 in
  let payload = String.init size (fun i -> Char.chr (i mod 251)) in
  let got = ref "" in
  Sim.spawn sim (fun () ->
      let buf = Memory.alloc size in
      let r = E.post_recv e1 ~src:0 ~tag:7 buf ~off:0 ~len:size in
      let len, _, _ = E.wait_recv e1 r in
      got := Memory.sub_string buf ~off:0 ~len);
  Sim.spawn sim (fun () -> E.wait_send e0 (send_string e0 ~dst:1 ~tag:7 payload));
  run c;
  check_bool "multi-frame payload intact" true (String.equal payload !got);
  check_bool "several frames" true ((E.stats e0).E.frames_sent > 6)

let test_zero_length_message () =
  let c, e0, e1 = two_nodes () in
  let sim = Uls_bench.Cluster.sim c in
  let len_got = ref (-42) in
  Sim.spawn sim (fun () ->
      let buf = Memory.alloc 8 in
      let r = E.post_recv e1 ~src:0 ~tag:1 buf ~off:0 ~len:0 in
      let len, _, _ = E.wait_recv e1 r in
      len_got := len);
  Sim.spawn sim (fun () ->
      let region = Memory.alloc 8 in
      E.wait_send e0 (E.post_send e0 ~dst:1 ~tag:1 region ~off:0 ~len:0));
  run c;
  check_int "zero-length delivered" 0 !len_got

let test_wildcard_src () =
  let c = Uls_bench.Cluster.create ~n:3 () in
  let e0 = Uls_bench.Cluster.emp c 0
  and e1 = Uls_bench.Cluster.emp c 1
  and e2 = Uls_bench.Cluster.emp c 2 in
  let sim = Uls_bench.Cluster.sim c in
  let sources = ref [] in
  Sim.spawn sim (fun () ->
      let buf = Memory.alloc 16 in
      for _ = 1 to 2 do
        let r = E.post_recv e0 ~src:(-1) ~tag:5 buf ~off:0 ~len:16 in
        let _, src, _ = E.wait_recv e0 r in
        sources := src :: !sources
      done);
  Sim.spawn sim (fun () -> ignore (send_string e1 ~dst:0 ~tag:5 "a"));
  Sim.spawn sim (fun () ->
      Sim.delay sim (Time.us 100);
      ignore (send_string e2 ~dst:0 ~tag:5 "b"));
  run c;
  Alcotest.(check (list int)) "both sources matched" [ 2; 1 ] !sources

let test_drop_and_retransmit () =
  let c, e0, e1 = two_nodes () in
  let sim = Uls_bench.Cluster.sim c in
  (* Drop every 5th frame at the switch. *)
  let n = ref 0 in
  Uls_ether.Network.set_fault_filter (Uls_bench.Cluster.network c) (fun _ ->
      incr n;
      !n mod 5 = 0);
  let size = 50_000 in
  let payload = String.init size (fun i -> Char.chr (i mod 256)) in
  let got = ref "" in
  Sim.spawn sim (fun () ->
      let buf = Memory.alloc size in
      let r = E.post_recv e1 ~src:0 ~tag:9 buf ~off:0 ~len:size in
      let len, _, _ = E.wait_recv e1 r in
      got := Memory.sub_string buf ~off:0 ~len);
  Sim.spawn sim (fun () -> E.wait_send e0 (send_string e0 ~dst:1 ~tag:9 payload));
  run c;
  check_bool "payload intact despite drops" true (String.equal payload !got);
  check_bool "retransmissions happened" true ((E.stats e0).E.frames_retransmitted > 0)

let test_ack_loss_recovery () =
  let c, e0, e1 = two_nodes () in
  let sim = Uls_bench.Cluster.sim c in
  (* Drop the first two protocol-ack frames. *)
  let dropped = ref 0 in
  Uls_ether.Network.set_fault_filter (Uls_bench.Cluster.network c)
    (fun frame ->
      match frame.Uls_ether.Frame.payload with
      | Uls_emp.Wire.Ack _ when !dropped < 2 ->
        incr dropped;
        true
      | _ -> false);
  let done_ = ref false in
  Sim.spawn sim (fun () ->
      let buf = Memory.alloc 64 in
      let r = E.post_recv e1 ~src:0 ~tag:4 buf ~off:0 ~len:64 in
      ignore (E.wait_recv e1 r));
  Sim.spawn sim (fun () ->
      E.wait_send e0 (send_string e0 ~dst:1 ~tag:4 "needs acks");
      done_ := true);
  run c;
  check_bool "send completed despite ack loss" true !done_;
  check_int "two acks dropped" 2 !dropped

let test_send_failure_no_receiver () =
  let config = { E.default_config with max_retries = 3; rto = Time.us 100 } in
  let c = Uls_bench.Cluster.create ~n:2 () in
  let e0 = Uls_bench.Cluster.emp ~config c 0 in
  ignore (Uls_bench.Cluster.emp c 1);
  let sim = Uls_bench.Cluster.sim c in
  let failed = ref false in
  Sim.spawn sim (fun () ->
      let s = send_string e0 ~dst:1 ~tag:1 "nobody listens" in
      try E.wait_send e0 s
      with E.Send_failed { retries; _ } ->
        failed := true;
        check_bool "gave up after retries" true (retries >= 3));
  run c;
  check_bool "Send_failed raised" true !failed;
  check_bool "receiver dropped frames" true
    ((E.stats (Uls_bench.Cluster.emp c 1)).E.frames_dropped_no_descriptor > 0)

let test_unexpected_queue_hit () =
  let c, e0, e1 = two_nodes () in
  let sim = Uls_bench.Cluster.sim c in
  E.provision_unexpected e1 ~slots:4 ~size:128;
  let got = ref "" in
  Sim.spawn sim (fun () ->
      (* Send with no descriptor posted: must land in the UQ. *)
      E.wait_send e0 (send_string e0 ~dst:1 ~tag:6 "early bird"));
  Sim.spawn sim (fun () ->
      Sim.delay sim (Time.ms 1);
      let buf = Memory.alloc 128 in
      let r = E.post_recv e1 ~src:0 ~tag:6 buf ~off:0 ~len:128 in
      let len, src, _ = E.wait_recv e1 r in
      check_int "src" 0 src;
      got := Memory.sub_string buf ~off:0 ~len);
  run c;
  check_str "uq contents copied out" "early bird" !got;
  check_int "uq hit counted" 1 (E.stats e1).E.unexpected_queue_hits;
  check_int "nothing dropped" 0 (E.stats e1).E.frames_dropped_no_descriptor

let test_unexpected_queue_size_limit () =
  let c, e0, e1 = two_nodes () in
  let sim = Uls_bench.Cluster.sim c in
  E.provision_unexpected e1 ~slots:2 ~size:16;
  Sim.spawn sim (fun () ->
      (* Too big for any UQ slot: dropped, sender eventually fails. *)
      let s = send_string e0 ~dst:1 ~tag:6 (String.make 64 'x') in
      try E.wait_send e0 s with E.Send_failed _ -> ());
  ignore (Sim.run ~until:(Time.ms 400) (Uls_bench.Cluster.sim c));
  ignore sim;
  check_int "no uq hit for oversized message" 0 (E.stats e1).E.unexpected_queue_hits;
  check_bool "frames dropped" true ((E.stats e1).E.frames_dropped_no_descriptor > 0)

let test_uq_evicts_stale_arrivals () =
  (* Two slots, three unexpected messages spaced beyond the staleness
     horizon: the third must evict the oldest arrival instead of being
     dropped (otherwise unclaimed arrivals pin the queue forever — the
     failure mode behind credit-ack starvation on connection churn). *)
  let c, e0, e1 = two_nodes () in
  let sim = Uls_bench.Cluster.sim c in
  E.provision_unexpected e1 ~slots:2 ~size:64;
  Sim.spawn sim (fun () ->
      for tag = 1 to 3 do
        E.wait_send e0 (send_string e0 ~dst:1 ~tag (Printf.sprintf "msg%d" tag));
        Sim.delay sim (Time.ms 10)
      done);
  run c;
  check_bool "oldest arrival evicted" true
    (not (E.uq_has_match e1 ~src:0 ~tag:1));
  check_bool "newest arrivals kept" true
    (E.uq_has_match e1 ~src:0 ~tag:2 && E.uq_has_match e1 ~src:0 ~tag:3);
  check_int "third message was not dropped" 0
    (E.stats e1).E.frames_dropped_no_descriptor

let test_unpost_recv () =
  let c, _e0, e1 = two_nodes () in
  let sim = Uls_bench.Cluster.sim c in
  let cancelled_len = ref 0 in
  Sim.spawn sim (fun () ->
      let buf = Memory.alloc 16 in
      let r = E.post_recv e1 ~src:0 ~tag:1 buf ~off:0 ~len:16 in
      check_int "posted" 1 (E.posted_descriptors e1);
      Sim.spawn sim (fun () ->
          let len, _, _ = E.wait_recv e1 r in
          cancelled_len := len);
      Sim.delay sim (Time.us 10);
      check_bool "unposted" true (E.unpost_recv e1 r);
      check_int "descriptor reclaimed" 0 (E.posted_descriptors e1));
  run c;
  check_int "waiter unblocked with sentinel" (-1) !cancelled_len

let test_reset_clears_descriptors () =
  let c, _e0, e1 = two_nodes () in
  let sim = Uls_bench.Cluster.sim c in
  Sim.spawn sim (fun () ->
      let buf = Memory.alloc 16 in
      for tag = 1 to 5 do
        ignore (E.post_recv e1 ~src:0 ~tag buf ~off:0 ~len:16)
      done;
      check_int "five posted" 5 (E.posted_descriptors e1);
      E.reset e1;
      check_int "reset reclaims all" 0 (E.posted_descriptors e1));
  run c

let test_translation_cache_reuse () =
  let c, e0, e1 = two_nodes () in
  let sim = Uls_bench.Cluster.sim c in
  let region = Memory.of_string (String.make 256 'a') in
  Sim.spawn sim (fun () ->
      let buf = Memory.alloc 256 in
      for _ = 1 to 3 do
        let r = E.post_recv e1 ~src:0 ~tag:2 buf ~off:0 ~len:256 in
        ignore (E.wait_recv e1 r)
      done);
  Sim.spawn sim (fun () ->
      for _ = 1 to 3 do
        E.wait_send e0 (E.post_send e0 ~dst:1 ~tag:2 region ~off:0 ~len:256)
      done);
  run c;
  let os = Node.os (Uls_bench.Cluster.node c 0) in
  check_int "one miss for the reused buffer" 1 (Os.translation_cache_misses os);
  check_int "two hits" 2 (Os.translation_cache_hits os)

let test_protocol_ack_window () =
  let c, e0, e1 = two_nodes () in
  let sim = Uls_bench.Cluster.sim c in
  let size = 30 * Uls_emp.Wire.max_data_per_frame in
  Sim.spawn sim (fun () ->
      let buf = Memory.alloc size in
      let r = E.post_recv e1 ~src:0 ~tag:2 buf ~off:0 ~len:size in
      ignore (E.wait_recv e1 r));
  Sim.spawn sim (fun () ->
      E.wait_send e0 (send_string e0 ~dst:1 ~tag:2 (String.make size 'q')));
  run c;
  (* 30 frames, ack window 4: acks at 4,8,...,28 and at completion. *)
  check_int "acks per window" 8 (E.stats e1).E.protocol_acks_sent

let nack_recovery_time ~use_nacks =
  let config = { E.default_config with use_nacks } in
  let c = Uls_bench.Cluster.create ~n:2 () in
  let e0 = Uls_bench.Cluster.emp ~config c 0 in
  let e1 = Uls_bench.Cluster.emp ~config c 1 in
  let sim = Uls_bench.Cluster.sim c in
  (* Drop exactly one mid-message data frame. *)
  let dropped = ref false in
  Uls_ether.Network.set_fault_filter (Uls_bench.Cluster.network c)
    (fun frame ->
      match frame.Uls_ether.Frame.payload with
      | Uls_emp.Wire.Data d when d.Uls_emp.Wire.frame_idx = 5 && not !dropped ->
        dropped := true;
        true
      | _ -> false);
  let size = 20 * Uls_emp.Wire.max_data_per_frame in
  let finished = ref 0 in
  Sim.spawn sim (fun () ->
      let buf = Memory.alloc size in
      let r = E.post_recv e1 ~src:0 ~tag:2 buf ~off:0 ~len:size in
      ignore (E.wait_recv e1 r);
      finished := Sim.now sim);
  Sim.spawn sim (fun () ->
      E.wait_send e0 (send_string e0 ~dst:1 ~tag:2 (String.make size 'n')));
  run c;
  (!finished, (E.stats e1).E.nacks_sent)

let test_nack_fast_recovery () =
  let with_nacks, nacks = nack_recovery_time ~use_nacks:true in
  let without, no_nacks = nack_recovery_time ~use_nacks:false in
  check_bool "nack was sent" true (nacks >= 1);
  check_int "no nacks when disabled" 0 no_nacks;
  (* RTO is 2 ms; NACK recovery should complete well before that. *)
  check_bool "nack recovers before the RTO horizon" true
    (with_nacks < Time.ms 2);
  check_bool "without nacks the RTO pays the bill" true (without > with_nacks)

let test_bidirectional_concurrent () =
  let c, e0, e1 = two_nodes () in
  let sim = Uls_bench.Cluster.sim c in
  let ok = ref 0 in
  let pair (a, b) tag =
    Sim.spawn sim (fun () ->
        let buf = Memory.alloc 5_000 in
        let r = E.post_recv a ~src:(E.node_id b) ~tag buf ~off:0 ~len:5_000 in
        E.wait_send a (send_string a ~dst:(E.node_id b) ~tag (String.make 5_000 'm'));
        let len, _, _ = E.wait_recv a r in
        if len = 5_000 then incr ok)
  in
  pair (e0, e1) 11;
  pair (e1, e0) 11;
  run c;
  check_int "both directions complete" 2 !ok

let prop_random_sizes_intact =
  QCheck.Test.make ~name:"emp delivers random-size payloads intact" ~count:25
    QCheck.(int_range 1 20_000)
    (fun size ->
      let c, e0, e1 = two_nodes () in
      let sim = Uls_bench.Cluster.sim c in
      let payload = String.init size (fun i -> Char.chr ((i * 31) mod 256)) in
      let ok = ref false in
      Sim.spawn sim (fun () ->
          let buf = Memory.alloc size in
          let r = E.post_recv e1 ~src:0 ~tag:1 buf ~off:0 ~len:size in
          let len, _, _ = E.wait_recv e1 r in
          ok := String.equal (Memory.sub_string buf ~off:0 ~len) payload);
      Sim.spawn sim (fun () -> E.wait_send e0 (send_string e0 ~dst:1 ~tag:1 payload));
      run c;
      !ok)

let suites =
  [
    ( "emp.delivery",
      Alcotest.test_case "basic" `Quick test_basic_delivery
      :: Alcotest.test_case "tag separation" `Quick test_tag_separation
      :: Alcotest.test_case "multi-frame integrity" `Quick
           test_multi_frame_integrity
      :: Alcotest.test_case "zero length" `Quick test_zero_length_message
      :: Alcotest.test_case "wildcard src" `Quick test_wildcard_src
      :: Alcotest.test_case "bidirectional" `Quick test_bidirectional_concurrent
      :: List.map QCheck_alcotest.to_alcotest [ prop_random_sizes_intact ] );
    ( "emp.reliability",
      [
        Alcotest.test_case "drop+retransmit" `Quick test_drop_and_retransmit;
        Alcotest.test_case "ack loss" `Quick test_ack_loss_recovery;
        Alcotest.test_case "send failure" `Quick test_send_failure_no_receiver;
        Alcotest.test_case "ack window" `Quick test_protocol_ack_window;
        Alcotest.test_case "nack fast recovery" `Quick test_nack_fast_recovery;
      ] );
    ( "emp.unexpected_queue",
      [
        Alcotest.test_case "uq hit" `Quick test_unexpected_queue_hit;
        Alcotest.test_case "uq size limit" `Quick test_unexpected_queue_size_limit;
        Alcotest.test_case "uq evicts stale" `Quick test_uq_evicts_stale_arrivals;
      ] );
    ( "emp.resources",
      [
        Alcotest.test_case "unpost" `Quick test_unpost_recv;
        Alcotest.test_case "reset" `Quick test_reset_clears_descriptors;
        Alcotest.test_case "translation cache" `Quick test_translation_cache_reuse;
      ] );
  ]
