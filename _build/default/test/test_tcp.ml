(* Tests for the kernel TCP/IP stack: byte-stream semantics, handshake,
   flow control, retransmission, teardown, UDP, IP fragmentation. *)
open Uls_engine
open Uls_api.Sockets_api
module Bytebuf = Uls_tcp.Bytebuf

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- Bytebuf --- *)

let test_bytebuf_basics () =
  let b = Bytebuf.create ~capacity:8 in
  check_int "accepts up to capacity" 8 (Bytebuf.write b "0123456789" ~off:0 ~len:10);
  check_int "full" 0 (Bytebuf.free_space b);
  check_str "peek" "234" (Bytebuf.peek b ~off:2 ~len:3);
  check_str "read" "0123" (Bytebuf.read b 4);
  check_int "free after read" 4 (Bytebuf.free_space b);
  (* wrap-around *)
  check_int "wraps" 4 (Bytebuf.write b "abcd" ~off:0 ~len:4);
  check_str "wrapped contents" "4567abcd" (Bytebuf.peek b ~off:0 ~len:8)

let test_bytebuf_drop_bounds () =
  let b = Bytebuf.create ~capacity:4 in
  ignore (Bytebuf.write b "ab" ~off:0 ~len:2);
  Alcotest.check_raises "drop too much" (Invalid_argument "Bytebuf.drop")
    (fun () -> Bytebuf.drop b 3);
  Bytebuf.drop b 2;
  check_int "empty" 0 (Bytebuf.available b)

let prop_bytebuf_model =
  (* Random writes/reads against a reference string-queue model. *)
  QCheck.Test.make ~name:"bytebuf behaves as a byte FIFO" ~count:200
    QCheck.(list (pair bool (int_range 1 30)))
    (fun ops ->
      let b = Bytebuf.create ~capacity:64 in
      let model = Buffer.create 64 in
      let seq = ref 0 in
      let consumed = ref 0 in
      List.for_all
        (fun (is_write, n) ->
          if is_write then begin
            let s = String.init n (fun i -> Char.chr ((!seq + i) mod 256)) in
            let accepted = Bytebuf.write b s ~off:0 ~len:n in
            Buffer.add_string model (String.sub s 0 accepted);
            seq := !seq + accepted;
            true
          end
          else begin
            let got = Bytebuf.read b n in
            let expect_len =
              min n (Buffer.length model - !consumed)
            in
            let expected = Buffer.sub model !consumed expect_len in
            consumed := !consumed + expect_len;
            String.equal got expected
          end)
        ops)

(* --- stack-level helpers --- *)

let with_cluster ?config ~n f =
  let c = Uls_bench.Cluster.create ~n () in
  let api = Uls_bench.Cluster.tcp_api ?config c in
  f c api (Uls_bench.Cluster.sim c)

let test_connect_and_exchange () =
  with_cluster ~n:2 (fun c api sim ->
      let got = ref "" in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:4 in
          let s, peer = l.accept () in
          check_int "peer node" 0 peer.node;
          got := recv_exact s 5;
          s.send "world";
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send "hello";
          check_str "reply" "world" (recv_exact s 5);
          check_str "eof after close" "" (s.recv 10);
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_str "request" "hello" !got)

let test_connection_refused () =
  with_cluster ~n:2 (fun c api sim ->
      let refused = ref false in
      Sim.spawn sim (fun () ->
          try ignore (api.connect ~node:0 { node = 1; port = 81 })
          with Connection_refused _ -> refused := true);
      ignore (Uls_bench.Cluster.run c);
      check_bool "refused" true !refused)

let test_stream_integrity_random_chunks () =
  with_cluster ~n:2 (fun c api sim ->
      let total = 200_000 in
      let payload = String.init total (fun i -> Char.chr ((i * 7) mod 256)) in
      let received = Buffer.create total in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          let rng = Rng.create ~seed:5 in
          let rec pull () =
            let chunk = s.recv (1 + Rng.int rng 9_000) in
            if chunk <> "" then begin
              Buffer.add_string received chunk;
              pull ()
            end
          in
          pull ();
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          let rng = Rng.create ~seed:6 in
          let rec push off =
            if off < total then begin
              let n = min (1 + Rng.int rng 20_000) (total - off) in
              s.send (String.sub payload off n);
              push (off + n)
            end
          in
          push 0;
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_bool "byte stream preserved" true
        (String.equal payload (Buffer.contents received)))

let test_flow_control_blocks_writer () =
  with_cluster ~n:2 (fun c api sim ->
      (* 16 KB buffers, 200 KB write, receiver sleeps 5 ms first: the
         writer cannot complete before the reader drains. *)
      let writer_done = ref 0 in
      let reader_started = ref 0 in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          Sim.delay sim (Time.ms 5);
          reader_started := Sim.now sim;
          let rec drain got =
            if got < 200_000 then drain (got + String.length (s.recv 65_536))
          in
          drain 0;
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send (String.make 200_000 'x');
          writer_done := Sim.now sim;
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_bool "writer blocked until reader drained" true
        (!writer_done > !reader_started))

let test_retransmission_under_loss () =
  with_cluster ~n:2 (fun c api sim ->
      (* Aperiodic (seeded) loss: a fixed-period drop pattern can phase-
         lock with the congestion-recovery cycle and starve one segment
         forever. *)
      let rng = Rng.create ~seed:97 in
      Uls_ether.Network.set_fault_filter (Uls_bench.Cluster.network c) (fun _ ->
          Rng.int rng 13 = 0);
      let total = 300_000 in
      let payload = String.init total (fun i -> Char.chr ((i * 11) mod 256)) in
      let received = Buffer.create total in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          let rec pull () =
            let chunk = s.recv 32_768 in
            if chunk <> "" then begin
              Buffer.add_string received chunk;
              pull ()
            end
          in
          pull ();
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send payload;
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      check_bool "stream intact under 8% loss" true
        (String.equal payload (Buffer.contents received)))

let test_backlog_overflow_retries () =
  with_cluster ~n:4 (fun c api sim ->
      (* backlog 1, three concurrent clients: SYNs beyond the backlog are
         dropped and recovered by SYN retransmission. *)
      let served = ref 0 in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:0 ~port:80 ~backlog:1 in
          for _ = 1 to 3 do
            let s, _ = l.accept () in
            ignore (recv_exact s 2);
            s.send "ok";
            s.close ()
          done);
      for client = 1 to 3 do
        Sim.spawn sim (fun () ->
            Sim.delay sim (Time.us 10);
            let s = api.connect ~node:client { node = 0; port = 80 } in
            s.send "hi";
            ignore (recv_exact s 2);
            incr served;
            s.close ())
      done;
      ignore (Uls_bench.Cluster.run c);
      check_int "all clients served" 3 !served)

let transfer_time ~congestion_control ~bytes =
  let config = { Uls_tcp.Config.default with congestion_control } in
  let c = Uls_bench.Cluster.create ~n:2 () in
  let api = Uls_bench.Cluster.tcp_api ~config c in
  let sim = Uls_bench.Cluster.sim c in
  let finished = ref 0 in
  Sim.spawn sim (fun () ->
      let l = api.listen ~node:1 ~port:80 ~backlog:1 in
      let s, _ = l.accept () in
      let rec drain got =
        if got < bytes then drain (got + String.length (s.recv 65_536))
      in
      drain 0;
      finished := Sim.now sim;
      s.close ());
  Sim.spawn sim (fun () ->
      Sim.delay sim (Time.us 10);
      let s = api.connect ~node:0 { node = 1; port = 80 } in
      s.send (String.make bytes 's');
      s.close ());
  ignore (Uls_bench.Cluster.run c);
  !finished

let test_slow_start_penalises_short_transfers () =
  (* 8 KB needs ~6 segments; with initial cwnd = 2 the sender spends
     extra round trips growing the window. *)
  let with_cc = transfer_time ~congestion_control:true ~bytes:8_192 in
  let without = transfer_time ~congestion_control:false ~bytes:8_192 in
  check_bool "slow start costs round trips" true (with_cc > without)

let test_congestion_window_opens_up () =
  (* On a long transfer the window grows past slow start and the
     overhead becomes marginal (< 15%). *)
  let with_cc = transfer_time ~congestion_control:true ~bytes:1_000_000 in
  let without = transfer_time ~congestion_control:false ~bytes:1_000_000 in
  check_bool "long transfers converge" true
    (float_of_int with_cc < 1.15 *. float_of_int without)

let test_simultaneous_close () =
  with_cluster ~n:2 (fun c api sim ->
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          ignore (recv_exact s 1);
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.send "x";
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      (* Both kernels should have forgotten the connection (TIME_WAIT
         expired during the run-to-quiescence). *)
      check_bool "quiescent" true (Sim.events_executed sim > 0))

let test_send_after_close_raises () =
  with_cluster ~n:2 (fun c api sim ->
      let raised = ref false in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:1 ~port:80 ~backlog:1 in
          let s, _ = l.accept () in
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:0 { node = 1; port = 80 } in
          s.close ();
          try s.send "nope" with Connection_closed -> raised := true);
      ignore (Uls_bench.Cluster.run c);
      check_bool "send after close" true !raised)

let test_select_tcp () =
  with_cluster ~n:3 (fun c api sim ->
      let woke_on = ref [] in
      Sim.spawn sim (fun () ->
          let l = api.listen ~node:0 ~port:80 ~backlog:2 in
          let s1, _ = l.accept () in
          let s2, _ = l.accept () in
          (* Wait for whichever becomes readable first. *)
          for _ = 1 to 2 do
            let ready = api.select ~node:0 [ s1; s2 ] in
            List.iter
              (fun s ->
                let msg = s.recv 16 in
                if msg <> "" then woke_on := msg :: !woke_on)
              ready
          done);
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 10);
          let s = api.connect ~node:1 { node = 0; port = 80 } in
          Sim.delay sim (Time.ms 2);
          s.send "one";
          Sim.delay sim (Time.ms 5);
          s.close ());
      Sim.spawn sim (fun () ->
          Sim.delay sim (Time.us 20);
          let s = api.connect ~node:2 { node = 0; port = 80 } in
          Sim.delay sim (Time.ms 4);
          s.send "two";
          Sim.delay sim (Time.ms 5);
          s.close ());
      ignore (Uls_bench.Cluster.run c);
      Alcotest.(check (list string)) "select order" [ "two"; "one" ] !woke_on)

(* --- UDP --- *)

let test_udp_roundtrip () =
  let c = Uls_bench.Cluster.create ~n:2 () in
  let stack = Uls_bench.Cluster.tcp c in
  let sim = Uls_bench.Cluster.sim c in
  let k0 = Uls_tcp.Tcp_stack.kernel stack 0
  and k1 = Uls_tcp.Tcp_stack.kernel stack 1 in
  let got = ref [] in
  Sim.spawn sim (fun () ->
      let sock = Uls_tcp.Kernel.udp_bind k1 ~port:53 in
      for _ = 1 to 2 do
        let from, data = Uls_tcp.Kernel.udp_recvfrom k1 sock in
        got := (from.node, data) :: !got
      done;
      Uls_tcp.Kernel.udp_close k1 sock);
  Sim.spawn sim (fun () ->
      let sock = Uls_tcp.Kernel.udp_bind k0 ~port:1000 in
      Uls_tcp.Kernel.udp_sendto k0 sock ~dst:{ node = 1; port = 53 } "ping";
      Uls_tcp.Kernel.udp_sendto k0 sock ~dst:{ node = 1; port = 53 } "pong";
      Uls_tcp.Kernel.udp_close k0 sock);
  ignore (Uls_bench.Cluster.run c);
  Alcotest.(check (list (pair int string)))
    "datagrams in order" [ (0, "ping"); (0, "pong") ] (List.rev !got)

let test_udp_fragmentation () =
  let c = Uls_bench.Cluster.create ~n:2 () in
  let stack = Uls_bench.Cluster.tcp c in
  let sim = Uls_bench.Cluster.sim c in
  let k0 = Uls_tcp.Tcp_stack.kernel stack 0
  and k1 = Uls_tcp.Tcp_stack.kernel stack 1 in
  let big = String.init 9_000 (fun i -> Char.chr (i mod 256)) in
  let got = ref "" in
  Sim.spawn sim (fun () ->
      let sock = Uls_tcp.Kernel.udp_bind k1 ~port:53 in
      let _, data = Uls_tcp.Kernel.udp_recvfrom k1 sock in
      got := data;
      Uls_tcp.Kernel.udp_close k1 sock);
  Sim.spawn sim (fun () ->
      let sock = Uls_tcp.Kernel.udp_bind k0 ~port:1000 in
      Uls_tcp.Kernel.udp_sendto k0 sock ~dst:{ node = 1; port = 53 } big;
      Uls_tcp.Kernel.udp_close k0 sock);
  ignore (Uls_bench.Cluster.run c);
  check_bool "9KB datagram reassembled" true (String.equal big !got)

let test_udp_fragment_loss_drops_datagram () =
  let c = Uls_bench.Cluster.create ~n:2 () in
  let stack = Uls_bench.Cluster.tcp c in
  let sim = Uls_bench.Cluster.sim c in
  let k0 = Uls_tcp.Tcp_stack.kernel stack 0
  and k1 = Uls_tcp.Tcp_stack.kernel stack 1 in
  (* Drop exactly one frame: the 2nd fragment of the first datagram. *)
  let n = ref 0 in
  Uls_ether.Network.set_fault_filter (Uls_bench.Cluster.network c) (fun _ ->
      incr n;
      !n = 2);
  let got = ref [] in
  Sim.spawn sim (fun () ->
      let sock = Uls_tcp.Kernel.udp_bind k1 ~port:53 in
      let _, data = Uls_tcp.Kernel.udp_recvfrom k1 sock in
      got := data :: !got;
      Uls_tcp.Kernel.udp_close k1 sock);
  Sim.spawn sim (fun () ->
      let sock = Uls_tcp.Kernel.udp_bind k0 ~port:1000 in
      Uls_tcp.Kernel.udp_sendto k0 sock ~dst:{ node = 1; port = 53 }
        (String.make 4_000 'L');
      Sim.delay sim (Time.ms 1);
      Uls_tcp.Kernel.udp_sendto k0 sock ~dst:{ node = 1; port = 53 } "survivor";
      Uls_tcp.Kernel.udp_close k0 sock);
  ignore (Uls_bench.Cluster.run c);
  Alcotest.(check (list string))
    "lossy datagram gone, next one delivered" [ "survivor" ] !got

let suites =
  [
    ( "tcp.bytebuf",
      Alcotest.test_case "basics" `Quick test_bytebuf_basics
      :: Alcotest.test_case "drop bounds" `Quick test_bytebuf_drop_bounds
      :: List.map QCheck_alcotest.to_alcotest [ prop_bytebuf_model ] );
    ( "tcp.stream",
      [
        Alcotest.test_case "connect+exchange" `Quick test_connect_and_exchange;
        Alcotest.test_case "refused" `Quick test_connection_refused;
        Alcotest.test_case "random chunk integrity" `Quick
          test_stream_integrity_random_chunks;
        Alcotest.test_case "flow control blocks writer" `Quick
          test_flow_control_blocks_writer;
        Alcotest.test_case "retransmission under loss" `Quick
          test_retransmission_under_loss;
        Alcotest.test_case "backlog overflow" `Quick test_backlog_overflow_retries;
        Alcotest.test_case "slow start penalty" `Quick
          test_slow_start_penalises_short_transfers;
        Alcotest.test_case "cwnd opens up" `Quick test_congestion_window_opens_up;
        Alcotest.test_case "simultaneous close" `Quick test_simultaneous_close;
        Alcotest.test_case "send after close" `Quick test_send_after_close_raises;
        Alcotest.test_case "select" `Quick test_select_tcp;
      ] );
    ( "tcp.udp",
      [
        Alcotest.test_case "roundtrip" `Quick test_udp_roundtrip;
        Alcotest.test_case "fragmentation" `Quick test_udp_fragmentation;
        Alcotest.test_case "fragment loss" `Quick
          test_udp_fragment_loss_drops_datagram;
      ] );
  ]
