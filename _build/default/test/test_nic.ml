(* Tests for the NIC model: tag matching list semantics and walk
   accounting, Tigon resources and transmit backpressure. *)
open Uls_engine
open Uls_nic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Match_list --- *)

let test_match_basic () =
  let ml = Match_list.create () in
  Match_list.post ml ~src:1 ~tag:10 "a";
  Match_list.post ml ~src:1 ~tag:11 "b";
  (match Match_list.take ml ~src:1 ~tag:11 with
  | Some ("b", walked) -> check_int "walked past a" 2 walked
  | _ -> Alcotest.fail "expected b");
  check_int "one left" 1 (Match_list.length ml);
  (match Match_list.take ml ~src:1 ~tag:10 with
  | Some ("a", walked) -> check_int "head match walks 1" 1 walked
  | _ -> Alcotest.fail "expected a")

let test_match_fifo_same_tag () =
  let ml = Match_list.create () in
  Match_list.post ml ~src:1 ~tag:5 "first";
  Match_list.post ml ~src:1 ~tag:5 "second";
  (match Match_list.take ml ~src:1 ~tag:5 with
  | Some ("first", 1) -> ()
  | _ -> Alcotest.fail "FIFO violated");
  match Match_list.take ml ~src:1 ~tag:5 with
  | Some ("second", 1) -> ()
  | _ -> Alcotest.fail "second not found at head"

let test_match_src_filter () =
  let ml = Match_list.create () in
  Match_list.post ml ~src:1 ~tag:5 "from1";
  Match_list.post ml ~src:2 ~tag:5 "from2";
  (match Match_list.take ml ~src:2 ~tag:5 with
  | Some ("from2", 2) -> ()
  | _ -> Alcotest.fail "src filter failed");
  check_int "from1 remains" 1 (Match_list.length ml)

let test_match_wildcards () =
  let ml = Match_list.create () in
  Match_list.post ml ~src:(-1) ~tag:9 "anysrc";
  (match Match_list.take ml ~src:42 ~tag:9 with
  | Some ("anysrc", _) -> ()
  | _ -> Alcotest.fail "wildcard src should match");
  Match_list.post ml ~src:3 ~tag:(-1) "anytag";
  match Match_list.take ml ~src:3 ~tag:12345 with
  | Some ("anytag", _) -> ()
  | _ -> Alcotest.fail "wildcard tag should match"

let test_match_miss_walks_all () =
  let ml = Match_list.create () in
  for i = 0 to 9 do
    Match_list.post ml ~src:1 ~tag:i i
  done;
  check_bool "no match" true (Match_list.take ml ~src:1 ~tag:99 = None);
  check_int "all still posted" 10 (Match_list.length ml)

let test_unpost () =
  let ml = Match_list.create () in
  for i = 0 to 4 do
    Match_list.post ml ~src:1 ~tag:i i
  done;
  let removed = Match_list.unpost_matching ml (fun v -> v mod 2 = 0) in
  Alcotest.(check (list int)) "evens removed" [ 0; 2; 4 ] removed;
  check_int "two left" 2 (Match_list.length ml);
  let rest = Match_list.unpost_all ml in
  Alcotest.(check (list int)) "rest in order" [ 1; 3 ] rest;
  check_int "empty" 0 (Match_list.length ml)

let test_removed_not_counted_in_walk () =
  let ml = Match_list.create () in
  for i = 0 to 9 do
    Match_list.post ml ~src:1 ~tag:i i
  done;
  ignore (Match_list.unpost_matching ml (fun v -> v < 9));
  match Match_list.take ml ~src:1 ~tag:9 with
  | Some (9, walked) -> check_int "tombstones are free to skip" 1 walked
  | _ -> Alcotest.fail "expected 9"

let test_compaction_preserves_order () =
  let ml = Match_list.create () in
  for i = 0 to 99 do
    Match_list.post ml ~src:1 ~tag:i i
  done;
  (* Remove most entries to trigger compaction, then check the rest. *)
  ignore (Match_list.unpost_matching ml (fun v -> v mod 10 <> 0));
  let rest = ref [] in
  Match_list.iter ml (fun v -> rest := v :: !rest);
  Alcotest.(check (list int)) "order kept"
    [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90 ]
    (List.rev !rest)

let prop_match_list_vs_model =
  (* Compare against a naive list model under random post/take. *)
  QCheck.Test.make ~name:"match_list equals naive model" ~count:200
    QCheck.(list (pair bool (pair (int_range 0 3) (int_range 0 3))))
    (fun ops ->
      let ml = Match_list.create () in
      let model = ref [] in
      let counter = ref 0 in
      List.for_all
        (fun (is_post, (src, tag)) ->
          if is_post then begin
            incr counter;
            Match_list.post ml ~src ~tag !counter;
            model := !model @ [ (src, tag, !counter) ];
            true
          end
          else begin
            let expected =
              let rec find = function
                | [] -> None
                | (s, g, v) :: rest ->
                  if (s = -1 || s = src) && (g = -1 || g = tag) then begin
                    model := List.filter (fun (_, _, v') -> v' <> v) !model;
                    Some v
                  end
                  else
                    (match find rest with
                    | some -> some)
              in
              find !model
            in
            match (Match_list.take ml ~src ~tag, expected) with
            | Some (v, _), Some v' -> v = v'
            | None, None -> true
            | _ -> false
          end)
        ops)

(* --- Tigon --- *)

let mk_nic () =
  let sim = Sim.create () in
  let model = Uls_host.Cost_model.paper_testbed in
  let net = Uls_ether.Network.create sim ~stations:2 () in
  (sim, Tigon.create sim model net ~node:0, net)

let test_tigon_resources_serialize () =
  let sim, nic, _ = mk_nic () in
  let done_at = Array.make 2 0 in
  for i = 0 to 1 do
    Sim.spawn sim (fun () ->
        Tigon.tx_work nic 1_000;
        done_at.(i) <- Sim.now sim)
  done;
  ignore (Sim.run sim);
  Alcotest.(check (array int)) "tx core FIFO" [| 1_000; 2_000 |] done_at

let test_tigon_dma_cost () =
  let sim, nic, _ = mk_nic () in
  Sim.spawn sim (fun () -> Tigon.dma nic ~bytes:1_000);
  ignore (Sim.run sim);
  check_int "dma setup + per byte" (1_800 + 1_900) (Sim.now sim)

let test_tigon_backpressure () =
  let sim, nic, _net = mk_nic () in
  (* Blast 20 full frames; the MAC FIFO (~100 us) must throttle the
     transmitting fiber rather than queue 20 frames' wire time. *)
  let sent_all_at = ref 0 in
  Sim.spawn sim (fun () ->
      for _ = 1 to 20 do
        Tigon.transmit nic
          (Uls_ether.Frame.make ~src:0 ~dst:1 ~payload_len:1500 Uls_ether.Frame.Raw)
      done;
      sent_all_at := Sim.now sim);
  ignore (Sim.run sim);
  (* 20 frames x 12.3 us of wire time is ~246 us; with a 100 us FIFO the
     sender must have been stalled until roughly total - fifo. *)
  check_bool "sender throttled" true (!sent_all_at > 100_000);
  check_bool "but not serialized to the last frame" true (!sent_all_at < 246_080)

let test_tigon_rx_dispatch () =
  let sim, nic, net = mk_nic () in
  let nic1 = Tigon.create sim Uls_host.Cost_model.paper_testbed net ~node:1 in
  let got = ref 0 in
  Tigon.set_firmware_rx nic1 (fun _ -> incr got);
  Sim.spawn sim (fun () ->
      Tigon.transmit nic
        (Uls_ether.Frame.make ~src:0 ~dst:1 ~payload_len:64 Uls_ether.Frame.Raw));
  ignore (Sim.run sim);
  check_int "firmware handler ran" 1 !got;
  check_int "counter" 1 (Tigon.frames_received nic1)

let suites =
  [
    ( "nic.match_list",
      Alcotest.test_case "basic" `Quick test_match_basic
      :: Alcotest.test_case "FIFO same tag" `Quick test_match_fifo_same_tag
      :: Alcotest.test_case "src filter" `Quick test_match_src_filter
      :: Alcotest.test_case "wildcards" `Quick test_match_wildcards
      :: Alcotest.test_case "miss walks all" `Quick test_match_miss_walks_all
      :: Alcotest.test_case "unpost" `Quick test_unpost
      :: Alcotest.test_case "tombstones free" `Quick
           test_removed_not_counted_in_walk
      :: Alcotest.test_case "compaction order" `Quick
           test_compaction_preserves_order
      :: List.map QCheck_alcotest.to_alcotest [ prop_match_list_vs_model ] );
    ( "nic.tigon",
      [
        Alcotest.test_case "resource FIFO" `Quick test_tigon_resources_serialize;
        Alcotest.test_case "dma cost" `Quick test_tigon_dma_cost;
        Alcotest.test_case "tx backpressure" `Quick test_tigon_backpressure;
        Alcotest.test_case "rx dispatch" `Quick test_tigon_rx_dispatch;
      ] );
  ]
