(* Unit tests for the small pure modules: substrate tags/codec/options,
   send pools, TCP segment arithmetic, engine trace. *)
open Uls_engine
module Opt = Uls_substrate.Options
module Tags = Uls_substrate.Tags
module Codec = Uls_substrate.Codec
module Seg = Uls_tcp.Segment

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Tags --- *)

let test_tags_distinct_kinds () =
  let kinds =
    [
      Tags.Conn_request;
      Tags.Conn_reply;
      Tags.Data;
      Tags.Credit_ack;
      Tags.Rdvz_request;
      Tags.Rdvz_grant;
      Tags.Rdvz_data;
      Tags.Close;
    ]
  in
  let tags = List.map (fun k -> Tags.make k 7) kinds in
  let uniq = List.sort_uniq compare tags in
  check_int "all kinds distinct for same id" (List.length kinds)
    (List.length uniq)

let test_tags_16bit () =
  List.iter
    (fun k ->
      let t = Tags.make k Tags.max_id in
      check_bool "fits 16 bits" true (t >= 0 && t < 65_536))
    [ Tags.Conn_request; Tags.Close ]

let test_tags_range_checked () =
  Alcotest.check_raises "id too large"
    (Invalid_argument "Tags.make: id out of range") (fun () ->
      ignore (Tags.make Tags.Data 4096));
  Alcotest.check_raises "negative id"
    (Invalid_argument "Tags.make: id out of range") (fun () ->
      ignore (Tags.make Tags.Data (-1)))

let prop_tags_injective =
  QCheck.Test.make ~name:"tag encoding is injective" ~count:300
    QCheck.(pair (pair (int_range 0 7) (int_range 0 4095))
              (pair (int_range 0 7) (int_range 0 4095)))
    (fun ((k1, i1), (k2, i2)) ->
      let kind = function
        | 0 -> Tags.Conn_request
        | 1 -> Tags.Conn_reply
        | 2 -> Tags.Data
        | 3 -> Tags.Credit_ack
        | 4 -> Tags.Rdvz_request
        | 5 -> Tags.Rdvz_grant
        | 6 -> Tags.Rdvz_data
        | _ -> Tags.Close
      in
      let t1 = Tags.make (kind k1) i1 and t2 = Tags.make (kind k2) i2 in
      (t1 = t2) = (k1 = k2 && i1 = i2))

(* --- Codec --- *)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec int list roundtrip" ~count:200
    QCheck.(list_of_size Gen.(0 -- 8) int)
    (fun ints -> Codec.decode (Codec.encode ints) = ints)

let test_codec_region () =
  let s = Codec.encode [ 42; -7; max_int ] in
  let region = Uls_host.Memory.of_string s in
  Alcotest.(check (list int)) "decode_region" [ 42; -7; max_int ]
    (Codec.decode_region region ~off:0 ~count:3)

let test_codec_partial_decode () =
  let s = Codec.encode [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "count limits" [ 1; 2 ] (Codec.decode ~count:2 s)

(* --- Options --- *)

let test_ack_threshold () =
  check_int "no DA: every message" 1 (Opt.ack_threshold Opt.data_streaming);
  check_int "DA: half the credits" 16
    (Opt.ack_threshold { Opt.data_streaming with delayed_acks = true });
  check_int "DA with 1 credit still acks" 1
    (Opt.ack_threshold { Opt.data_streaming with delayed_acks = true; credits = 1 });
  check_int "blocking send forces per-message acks" 1
    (Opt.ack_threshold
       { Opt.data_streaming with delayed_acks = true; block_send = true })

let test_chunk_capacity () =
  check_int "buffer minus header"
    (65_536 - Opt.header_bytes)
    (Opt.chunk_capacity Opt.data_streaming)

let test_mode_names () =
  Alcotest.(check string) "DS" "DS" (Opt.mode_name Opt.data_streaming);
  Alcotest.(check string) "DG" "DG" (Opt.mode_name Opt.datagram)

(* --- Sendpool --- *)

let test_sendpool_reuses_slots () =
  let c = Uls_bench.Cluster.create ~n:2 () in
  let e0 = Uls_bench.Cluster.emp c 0 and e1 = Uls_bench.Cluster.emp c 1 in
  let sim = Uls_bench.Cluster.sim c in
  let pool =
    Uls_substrate.Sendpool.create (Uls_bench.Cluster.node c 0) e0 ~slots:2 ~size:64
  in
  let received = ref [] in
  Sim.spawn sim (fun () ->
      let buf = Uls_host.Memory.alloc 64 in
      for _ = 1 to 6 do
        let r = Uls_emp.Endpoint.post_recv e1 ~src:0 ~tag:5 buf ~off:0 ~len:64 in
        let len, _, _ = Uls_emp.Endpoint.wait_recv e1 r in
        received := Uls_host.Memory.sub_string buf ~off:0 ~len :: !received
      done);
  Sim.spawn sim (fun () ->
      for i = 1 to 6 do
        ignore
          (Uls_substrate.Sendpool.send pool ~dst:1 ~tag:5 (Printf.sprintf "m%d" i))
      done);
  ignore (Uls_bench.Cluster.run c);
  Alcotest.(check (list string))
    "all messages delivered in order despite 2 slots"
    [ "m1"; "m2"; "m3"; "m4"; "m5"; "m6" ]
    (List.rev !received);
  (* Ring slots are pre-registered: no pin misses during sends. *)
  check_int "no pin misses"
    0
    (Uls_host.Os.translation_cache_misses
       (Uls_host.Node.os (Uls_bench.Cluster.node c 0)))

let test_sendpool_size_limit () =
  let c = Uls_bench.Cluster.create ~n:2 () in
  let e0 = Uls_bench.Cluster.emp c 0 in
  let pool =
    Uls_substrate.Sendpool.create (Uls_bench.Cluster.node c 0) e0 ~slots:2 ~size:8
  in
  let sim = Uls_bench.Cluster.sim c in
  let got = ref "" in
  Sim.spawn sim (fun () ->
      try ignore (Uls_substrate.Sendpool.send pool ~dst:1 ~tag:1 "123456789")
      with Invalid_argument msg -> got := msg);
  ignore (Uls_bench.Cluster.run c);
  Alcotest.(check string) "oversized message rejected"
    "Sendpool.send: message too large" !got

(* --- TCP segment arithmetic --- *)

let test_segment_sizes () =
  check_int "mss fills a frame" 1_460 Seg.mss;
  check_int "tcp payload bytes"
    (20 + 5)
    (Seg.payload_bytes
       (Seg.Tcp
          {
            src_port = 1;
            dst_port = 2;
            seq = 0;
            ack_no = 0;
            flags = Seg.flag ();
            wnd = 0;
            data = "hello";
          }));
  check_int "udp payload bytes" (8 + 3)
    (Seg.payload_bytes
       (Seg.Udp { u_src_port = 1; u_dst_port = 2; u_data = "abc" }))

let test_flags_printer () =
  Alcotest.(check string) "flags" "SA"
    (Format.asprintf "%a" Seg.pp_flags (Seg.flag ~syn:true ~ack:true ()))

(* --- Trace --- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  nn = 0 || scan 0

let test_trace_capture () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Trace.emit tr ~tag:"x" "dropped while disabled";
  Trace.enable tr;
  Sim.spawn sim (fun () ->
      Sim.delay sim 1_500;
      Trace.emitf tr ~tag:"emp" "frame %d" 7);
  ignore (Sim.run sim);
  match Trace.lines tr with
  | [ line ] ->
    check_bool "has tag" true (contains line "emp");
    check_bool "has message" true (contains line "frame 7")
  | l -> Alcotest.failf "expected 1 line, got %d" (List.length l)

let qsuite = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "substrate.tags",
      Alcotest.test_case "kinds distinct" `Quick test_tags_distinct_kinds
      :: Alcotest.test_case "16 bit" `Quick test_tags_16bit
      :: Alcotest.test_case "range checked" `Quick test_tags_range_checked
      :: qsuite [ prop_tags_injective ] );
    ( "substrate.codec",
      Alcotest.test_case "decode_region" `Quick test_codec_region
      :: Alcotest.test_case "partial decode" `Quick test_codec_partial_decode
      :: qsuite [ prop_codec_roundtrip ] );
    ( "substrate.options",
      [
        Alcotest.test_case "ack threshold" `Quick test_ack_threshold;
        Alcotest.test_case "chunk capacity" `Quick test_chunk_capacity;
        Alcotest.test_case "mode names" `Quick test_mode_names;
      ] );
    ( "substrate.sendpool",
      [
        Alcotest.test_case "slot reuse" `Quick test_sendpool_reuses_slots;
        Alcotest.test_case "size limit" `Quick test_sendpool_size_limit;
      ] );
    ( "tcp.segment",
      [
        Alcotest.test_case "sizes" `Quick test_segment_sizes;
        Alcotest.test_case "flags printer" `Quick test_flags_printer;
      ] );
    ( "engine.trace",
      [ Alcotest.test_case "capture" `Quick test_trace_capture ] );
  ]
