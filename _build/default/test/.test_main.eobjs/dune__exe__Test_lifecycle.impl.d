test/test_lifecycle.ml: Alcotest Sim String Time Uls_api Uls_bench Uls_emp Uls_engine Uls_ether Uls_tcp
