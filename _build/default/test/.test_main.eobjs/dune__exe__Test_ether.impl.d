test/test_ether.ml: Alcotest Array Frame Gen Link List Network QCheck QCheck_alcotest Sim Switch Uls_engine Uls_ether
