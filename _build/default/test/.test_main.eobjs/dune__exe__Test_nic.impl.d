test/test_nic.ml: Alcotest Array List Match_list QCheck QCheck_alcotest Sim Tigon Uls_engine Uls_ether Uls_host Uls_nic
