test/test_tcp.ml: Alcotest Buffer Char List QCheck QCheck_alcotest Rng Sim String Time Uls_api Uls_bench Uls_engine Uls_ether Uls_tcp
