test/test_host.ml: Alcotest Cost_model List Memory Node Os QCheck QCheck_alcotest Sim String Uls_engine Uls_host
