test/test_api.ml: Alcotest Buffer Format String Uls_api
