test/test_units.ml: Alcotest Format Gen List Printf QCheck QCheck_alcotest Sim String Trace Uls_bench Uls_emp Uls_engine Uls_host Uls_substrate Uls_tcp
