test/test_main.ml: Alcotest Printexc Printf Test_api Test_apps Test_emp Test_engine Test_ether Test_fdio Test_host Test_lifecycle Test_nic Test_shape Test_substrate Test_tcp Test_units Uls_engine
