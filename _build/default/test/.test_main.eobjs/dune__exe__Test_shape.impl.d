test/test_shape.ml: Alcotest Uls_bench Uls_substrate Uls_tcp
