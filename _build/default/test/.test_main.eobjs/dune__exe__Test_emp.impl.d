test/test_emp.ml: Alcotest Char List Memory Node Os Printf QCheck QCheck_alcotest Sim String Time Uls_bench Uls_emp Uls_engine Uls_ether Uls_host
