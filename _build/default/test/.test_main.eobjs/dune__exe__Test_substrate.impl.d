test/test_substrate.ml: Alcotest Array Buffer Char Gen List Printf QCheck QCheck_alcotest Rng Sim String Time Uls_api Uls_bench Uls_emp Uls_engine Uls_ether Uls_substrate
