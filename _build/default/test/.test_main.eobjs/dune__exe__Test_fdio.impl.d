test/test_fdio.ml: Alcotest Buffer Sim Uls_api Uls_apps Uls_engine Uls_host
