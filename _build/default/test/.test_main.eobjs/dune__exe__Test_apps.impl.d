test/test_apps.ml: Alcotest Array List Printf QCheck QCheck_alcotest Rng Sim Time Uls_api Uls_apps Uls_bench Uls_engine Uls_host Uls_substrate
