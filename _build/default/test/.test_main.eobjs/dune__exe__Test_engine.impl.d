test/test_engine.ml: Alcotest Array Cond Gen Heap List Mailbox QCheck QCheck_alcotest Resource Rng Sim Stats Time Uls_engine Vec
