(* Lifecycle and bookkeeping paths: listener close on both stacks, RST
   accounting, IP reassembly eviction, engine counters. *)
open Uls_engine
open Uls_api.Sockets_api

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_engine_counters () =
  let sim = Sim.create () in
  check_int "no fibers yet" 0 (Sim.live_fibers sim);
  Sim.spawn_at sim ~name:"late" 500 (fun () -> Sim.delay sim 10);
  Sim.spawn sim (fun () -> ());
  check_int "two spawned" 2 (Sim.live_fibers sim);
  ignore (Sim.run sim);
  check_int "all finished" 0 (Sim.live_fibers sim);
  check_int "clock at last event" 510 (Sim.now sim);
  check_bool "events counted" true (Sim.events_executed sim >= 3)

let test_tcp_listener_close_refuses () =
  let c = Uls_bench.Cluster.create ~n:2 () in
  let api = Uls_bench.Cluster.tcp_api c in
  let sim = Uls_bench.Cluster.sim c in
  let refused = ref false in
  Sim.spawn sim (fun () ->
      let l = api.listen ~node:1 ~port:80 ~backlog:2 in
      Sim.delay sim (Time.us 100);
      l.close_listener ();
      (* Port is free again: rebinding must succeed. *)
      let l2 = api.listen ~node:1 ~port:80 ~backlog:2 in
      Sim.delay sim (Time.ms 50);
      l2.close_listener ());
  Sim.spawn sim (fun () ->
      Sim.delay sim (Time.ms 30);
      (* The second listener exists but nobody accepts; connection still
         completes the handshake and queues. Now target a dead port. *)
      try ignore (api.connect ~node:0 { node = 1; port = 99 })
      with Connection_refused _ -> refused := true);
  ignore (Uls_bench.Cluster.run c);
  check_bool "dead port refused" true !refused;
  check_bool "RSTs were sent" true
    (Uls_tcp.Kernel.rsts_sent (Uls_tcp.Tcp_stack.kernel (Uls_bench.Cluster.tcp c) 1)
    > 0)

let test_substrate_listener_close_reclaims () =
  let c = Uls_bench.Cluster.create ~n:2 () in
  let api = Uls_bench.Cluster.substrate_api c in
  let sim = Uls_bench.Cluster.sim c in
  let emp1 = Uls_bench.Cluster.emp c 1 in
  let before = ref 0 and after = ref 0 in
  Sim.spawn sim (fun () ->
      before := Uls_emp.Endpoint.posted_descriptors emp1;
      let l = api.listen ~node:1 ~port:80 ~backlog:5 in
      check_int "backlog descriptors posted" (!before + 5)
        (Uls_emp.Endpoint.posted_descriptors emp1);
      l.close_listener ();
      after := Uls_emp.Endpoint.posted_descriptors emp1);
  ignore (Uls_bench.Cluster.run c);
  check_int "backlog descriptors reclaimed" !before !after

let test_ip_reassembly_eviction () =
  (* Lose the head fragment of many datagrams: the partial entries must
     be evicted (counted as drops) instead of accumulating forever. *)
  let c = Uls_bench.Cluster.create ~n:2 () in
  let stack = Uls_bench.Cluster.tcp c in
  let sim = Uls_bench.Cluster.sim c in
  let k0 = Uls_tcp.Tcp_stack.kernel stack 0
  and k1 = Uls_tcp.Tcp_stack.kernel stack 1 in
  (* Drop every first fragment (Ip_first) of large datagrams. *)
  Uls_ether.Network.set_fault_filter (Uls_bench.Cluster.network c)
    (fun frame ->
      match frame.Uls_ether.Frame.payload with
      | Uls_tcp.Segment.Ip_first { total_bytes; _ } -> total_bytes > 2_000
      | _ -> false);
  Sim.spawn sim (fun () ->
      let sock = Uls_tcp.Kernel.udp_bind k0 ~port:1000 in
      for _ = 1 to 80 do
        Uls_tcp.Kernel.udp_sendto k0 sock ~dst:{ node = 1; port = 53 }
          (String.make 4_000 'e');
        Sim.delay sim (Time.ms 3)
      done;
      Uls_tcp.Kernel.udp_close k0 sock);
  Sim.spawn sim (fun () ->
      let sock = Uls_tcp.Kernel.udp_bind k1 ~port:53 in
      Sim.delay sim (Time.ms 400);
      Uls_tcp.Kernel.udp_close k1 sock);
  ignore (Uls_bench.Cluster.run c);
  let ip1 = Uls_tcp.Kernel.ip k1 in
  check_int "nothing delivered" 0 (Uls_tcp.Ip.datagrams_delivered ip1);
  check_bool "stale partials evicted" true (Uls_tcp.Ip.datagrams_dropped ip1 > 0)

let test_switch_counters_after_traffic () =
  let c = Uls_bench.Cluster.create ~n:2 () in
  let api = Uls_bench.Cluster.substrate_api c in
  let sim = Uls_bench.Cluster.sim c in
  Sim.spawn sim (fun () ->
      let l = api.listen ~node:1 ~port:80 ~backlog:1 in
      let s, _ = l.accept () in
      ignore (recv_exact s 10_000);
      s.close ());
  Sim.spawn sim (fun () ->
      Sim.delay sim (Time.us 10);
      let s = api.connect ~node:0 { node = 1; port = 80 } in
      s.send (String.make 10_000 'w');
      s.close ());
  ignore (Uls_bench.Cluster.run c);
  let sw = Uls_ether.Network.switch (Uls_bench.Cluster.network c) in
  check_bool "frames forwarded" true (Uls_ether.Switch.frames_forwarded sw > 10);
  check_int "no drops on a clean run" 0 (Uls_ether.Switch.frames_dropped sw)

let suites =
  [
    ( "lifecycle",
      [
        Alcotest.test_case "engine counters" `Quick test_engine_counters;
        Alcotest.test_case "tcp listener close + RST" `Quick
          test_tcp_listener_close_refuses;
        Alcotest.test_case "substrate listener reclaim" `Quick
          test_substrate_listener_close_reclaims;
        Alcotest.test_case "ip reassembly eviction" `Quick
          test_ip_reassembly_eviction;
        Alcotest.test_case "switch counters" `Quick
          test_switch_counters_after_traffic;
      ] );
  ]
