(* Tests for the wire model: frames, links, switch, topology. *)
open Uls_engine
open Uls_ether

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Frame --- *)

let test_frame_wire_bytes () =
  (* Minimum-size frame: 64 bytes + 20 preamble/IFG. *)
  let f = Frame.make ~src:0 ~dst:1 ~payload_len:4 Frame.Raw in
  check_int "min frame" 84 (Frame.wire_bytes f);
  (* Full MTU: 1500 + 18 + 20. *)
  let f = Frame.make ~src:0 ~dst:1 ~payload_len:1500 Frame.Raw in
  check_int "max frame" 1538 (Frame.wire_bytes f)

let test_frame_padding_boundary () =
  let f = Frame.make ~src:0 ~dst:1 ~payload_len:46 Frame.Raw in
  check_int "exactly min, no padding" 84 (Frame.wire_bytes f);
  let f = Frame.make ~src:0 ~dst:1 ~payload_len:47 Frame.Raw in
  check_int "one past min" 85 (Frame.wire_bytes f)

let test_frame_mtu_enforced () =
  Alcotest.check_raises "mtu" (Invalid_argument "Frame.make: payload_len 1501")
    (fun () -> ignore (Frame.make ~src:0 ~dst:1 ~payload_len:1501 Frame.Raw))

let prop_frame_wire_bytes_monotone =
  QCheck.Test.make ~name:"wire bytes monotone in payload" ~count:200
    QCheck.(pair (int_range 0 1499) (int_range 1 1))
    (fun (len, step) ->
      let f1 = Frame.make ~src:0 ~dst:1 ~payload_len:len Frame.Raw in
      let f2 = Frame.make ~src:0 ~dst:1 ~payload_len:(len + step) Frame.Raw in
      Frame.wire_bytes f2 >= Frame.wire_bytes f1)

(* --- Link --- *)

let test_link_transmit_time () =
  let sim = Sim.create () in
  let l = Link.create sim ~name:"l" () in
  let f = Frame.make ~src:0 ~dst:1 ~payload_len:1500 Frame.Raw in
  (* 1538 bytes at 1 bit/ns = 12304 ns *)
  check_int "gigabit frame time" 12_304 (Link.transmit_time l f)

let test_link_delivery_and_serialization () =
  let sim = Sim.create () in
  let l = Link.create sim ~propagation:500 ~name:"l" () in
  let arrivals = ref [] in
  Link.set_receiver l (fun f -> arrivals := (f.Frame.payload_len, Sim.now sim) :: !arrivals);
  let f = Frame.make ~src:0 ~dst:1 ~payload_len:1500 Frame.Raw in
  Link.send l f;
  Link.send l f;
  ignore (Sim.run sim);
  (* First frame: 12304 + 500; second queues behind: 24608 + 500. *)
  Alcotest.(check (list (pair int int)))
    "store-and-forward arrivals"
    [ (1500, 12_804); (1500, 25_108) ]
    (List.sort compare !arrivals)

let test_link_half_rate () =
  let sim = Sim.create () in
  let l = Link.create sim ~bits_per_ns:0.5 ~propagation:0 ~name:"l" () in
  let f = Frame.make ~src:0 ~dst:1 ~payload_len:46 Frame.Raw in
  check_int "100 Mb/s-ish scaling" 1_344 (Link.transmit_time l f)

let test_link_counters () =
  let sim = Sim.create () in
  let l = Link.create sim ~name:"l" () in
  Link.set_receiver l (fun _ -> ());
  let f = Frame.make ~src:0 ~dst:1 ~payload_len:100 Frame.Raw in
  Link.send l f;
  ignore (Sim.run sim);
  check_int "frames" 1 (Link.frames_sent l);
  check_int "bytes" (Frame.wire_bytes f) (Link.bytes_sent l)

(* --- Switch / Network --- *)

let mk_net ?(stations = 4) () =
  let sim = Sim.create () in
  let net = Network.create sim ~stations () in
  (sim, net)

let test_network_routing () =
  let sim, net = mk_net () in
  let got = Array.make 4 0 in
  for i = 0 to 3 do
    Network.attach net ~station:i (fun _ -> got.(i) <- got.(i) + 1)
  done;
  Network.send net (Frame.make ~src:0 ~dst:2 ~payload_len:64 Frame.Raw);
  Network.send net (Frame.make ~src:1 ~dst:3 ~payload_len:64 Frame.Raw);
  Network.send net (Frame.make ~src:3 ~dst:0 ~payload_len:64 Frame.Raw);
  ignore (Sim.run sim);
  Alcotest.(check (array int)) "each delivered" [| 1; 0; 1; 1 |] got;
  check_int "forwarded" 3 (Switch.frames_forwarded (Network.switch net))

let test_network_latency_breakdown () =
  (* End-to-end one-way frame time: uplink tx + prop + switch fwd +
     egress tx + prop. For 84 wire bytes: 672 + 500 + 2500 + 672 + 500. *)
  let sim, net = mk_net () in
  let arrival = ref 0 in
  Network.attach net ~station:1 (fun _ -> arrival := Sim.now sim);
  Network.send net (Frame.make ~src:0 ~dst:1 ~payload_len:4 Frame.Raw);
  ignore (Sim.run sim);
  check_int "one-way wire latency" 4_844 !arrival

let test_switch_unknown_station_dropped () =
  let sim, net = mk_net () in
  Network.send net (Frame.make ~src:0 ~dst:9 ~payload_len:64 Frame.Raw);
  ignore (Sim.run sim);
  check_int "dropped" 1 (Switch.frames_dropped (Network.switch net))

let test_switch_fault_filter () =
  let sim, net = mk_net () in
  let got = ref 0 in
  Network.attach net ~station:1 (fun _ -> incr got);
  let count = ref 0 in
  Network.set_fault_filter net (fun _ ->
      incr count;
      !count mod 2 = 0);
  for _ = 1 to 6 do
    Network.send net (Frame.make ~src:0 ~dst:1 ~payload_len:64 Frame.Raw)
  done;
  ignore (Sim.run sim);
  check_int "half dropped" 3 !got;
  check_int "drop count" 3 (Switch.frames_dropped (Network.switch net))

let test_switch_queue_overflow () =
  let sim = Sim.create () in
  let net = Network.create sim ~queue_limit:4_000 ~stations:3 () in
  let got = ref 0 in
  Network.attach net ~station:2 (fun _ -> incr got);
  (* Two stations blast the same egress port; its 4 KB queue overflows. *)
  for _ = 1 to 10 do
    Network.send net (Frame.make ~src:0 ~dst:2 ~payload_len:1500 Frame.Raw);
    Network.send net (Frame.make ~src:1 ~dst:2 ~payload_len:1500 Frame.Raw)
  done;
  ignore (Sim.run sim);
  check_bool "some dropped" true (Switch.frames_dropped (Network.switch net) > 0);
  check_bool "some delivered" true (!got > 0);
  check_int "conservation" 20
    (!got + Switch.frames_dropped (Network.switch net))

let test_switch_fifo_per_port () =
  let sim, net = mk_net () in
  let seen = ref [] in
  Network.attach net ~station:1 (fun f -> seen := f.Frame.payload_len :: !seen);
  for len = 100 to 109 do
    Network.send net (Frame.make ~src:0 ~dst:1 ~payload_len:len Frame.Raw)
  done;
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "in order"
    [ 100; 101; 102; 103; 104; 105; 106; 107; 108; 109 ]
    (List.rev !seen)

let prop_network_conservation =
  QCheck.Test.make ~name:"frames delivered + dropped = sent" ~count:50
    QCheck.(list_of_size Gen.(1 -- 40) (pair (int_range 0 3) (int_range 0 3)))
    (fun pairs ->
      let sim, net = mk_net () in
      let delivered = ref 0 in
      for i = 0 to 3 do
        Network.attach net ~station:i (fun _ -> incr delivered)
      done;
      let sent = ref 0 in
      List.iter
        (fun (src, dst) ->
          if src <> dst then begin
            incr sent;
            Network.send net (Frame.make ~src ~dst ~payload_len:200 Frame.Raw)
          end)
        pairs;
      ignore (Sim.run sim);
      !delivered + Switch.frames_dropped (Network.switch net) = !sent)

let qsuite = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "ether.frame",
      Alcotest.test_case "wire bytes" `Quick test_frame_wire_bytes
      :: Alcotest.test_case "padding boundary" `Quick test_frame_padding_boundary
      :: Alcotest.test_case "mtu enforced" `Quick test_frame_mtu_enforced
      :: qsuite [ prop_frame_wire_bytes_monotone ] );
    ( "ether.link",
      [
        Alcotest.test_case "transmit time" `Quick test_link_transmit_time;
        Alcotest.test_case "delivery+serialization" `Quick
          test_link_delivery_and_serialization;
        Alcotest.test_case "half rate" `Quick test_link_half_rate;
        Alcotest.test_case "counters" `Quick test_link_counters;
      ] );
    ( "ether.switch",
      Alcotest.test_case "routing" `Quick test_network_routing
      :: Alcotest.test_case "latency breakdown" `Quick
           test_network_latency_breakdown
      :: Alcotest.test_case "unknown station" `Quick
           test_switch_unknown_station_dropped
      :: Alcotest.test_case "fault filter" `Quick test_switch_fault_filter
      :: Alcotest.test_case "queue overflow" `Quick test_switch_queue_overflow
      :: Alcotest.test_case "per-port FIFO" `Quick test_switch_fifo_per_port
      :: qsuite [ prop_network_conservation ] );
  ]
