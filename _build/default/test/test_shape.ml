(* "Shape" tests: the qualitative results of the paper's evaluation,
   asserted as orderings so calibration drift cannot silently invert a
   conclusion. Small iteration counts keep these fast. *)
module Mb = Uls_bench.Microbench
module Opt = Uls_substrate.Options

let check_bool = Alcotest.(check bool)

let lat kind = Mb.ping_pong ~iters:8 ~warmup:3 ~kind ~size:4 ()
let bw kind = Mb.bandwidth ~total:(2 * 1024 * 1024) ~kind ~msg:65536 ()

let tcp = Mb.Tcp Uls_tcp.Config.default
let tcp_tuned = Mb.Tcp Uls_tcp.Config.(with_buffers default 262_144)
let ds_full = Mb.Sub Opt.data_streaming_enhanced
let ds_base = Mb.Sub Opt.data_streaming
let dg = Mb.Sub Opt.datagram

let test_latency_ordering () =
  let emp = lat Mb.Emp_raw in
  let dg_l = lat dg in
  let ds_l = lat ds_full in
  let ds_base_l = lat ds_base in
  let tcp_l = lat tcp in
  check_bool "EMP fastest" true (emp < dg_l);
  check_bool "DG < DS (datagram avoids streaming costs)" true (dg_l < ds_l);
  check_bool "enhancements help DS" true (ds_l < ds_base_l);
  check_bool "substrate beats TCP by >2x" true (tcp_l > 2. *. ds_l);
  check_bool "datagram within a few us of EMP" true (dg_l -. emp < 10.)

let test_latency_enhancement_chain () =
  (* DS > DS_DA > DS_DA_UQ, the Figure 11 ordering. The UQ gap is widest
     at moderate credit counts (more ack descriptors in the walk). *)
  let at opts = Mb.ping_pong ~iters:12 ~warmup:4 ~kind:(Mb.Sub opts) ~size:4 () in
  let ds = at { Opt.data_streaming with credits = 8 } in
  let ds_da = at { Opt.data_streaming with credits = 8; delayed_acks = true } in
  let ds_da_uq =
    at { Opt.data_streaming_enhanced with credits = 8 }
  in
  check_bool "delayed acks help" true (ds_da < ds);
  check_bool "unexpected queue helps further" true (ds_da_uq < ds_da)

let test_fig12_credits_trend () =
  let at credits =
    Mb.ping_pong ~iters:8 ~warmup:3
      ~kind:(Mb.Sub { Opt.data_streaming with delayed_acks = true; credits })
      ~size:4 ()
  in
  check_bool "more credits, lower DS_DA latency" true (at 32 < at 2)

let test_bandwidth_ordering () =
  let tcp_16k = bw tcp in
  let tcp_big = bw tcp_tuned in
  let sub = bw ds_full in
  check_bool "tuned TCP beats default buffers" true (tcp_big > tcp_16k);
  check_bool "substrate beats tuned TCP" true (sub > tcp_big);
  check_bool "substrate above 700 Mb/s" true (sub > 700.)

let test_connect_ordering () =
  let sub =
    Mb.connect_time ~kind:(Mb.Sub { Opt.data_streaming_enhanced with credits = 4 }) ()
  in
  let tcp_c = Mb.connect_time ~kind:tcp () in
  check_bool "substrate connects faster than TCP" true (sub < tcp_c)

let test_determinism () =
  (* Identical experiments on fresh simulators produce identical virtual
     results — the whole stack is deterministic. *)
  let a = Mb.ping_pong ~iters:5 ~warmup:2 ~kind:ds_full ~size:256 () in
  let b = Mb.ping_pong ~iters:5 ~warmup:2 ~kind:ds_full ~size:256 () in
  Alcotest.(check (float 0.)) "bit-identical latencies" a b;
  let x = bw tcp in
  let y = bw tcp in
  Alcotest.(check (float 0.)) "bit-identical bandwidth" x y

let suites =
  [
    ( "shape.paper",
      [
        Alcotest.test_case "latency ordering" `Quick test_latency_ordering;
        Alcotest.test_case "enhancement chain" `Quick
          test_latency_enhancement_chain;
        Alcotest.test_case "fig12 credits trend" `Quick test_fig12_credits_trend;
        Alcotest.test_case "bandwidth ordering" `Quick test_bandwidth_ordering;
        Alcotest.test_case "connect ordering" `Quick test_connect_ordering;
        Alcotest.test_case "determinism" `Quick test_determinism;
      ] );
  ]
