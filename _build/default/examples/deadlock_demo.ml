(* Figure 7 of the paper, reproduced: under the pure rendezvous scheme,
   two nodes that both write() before read() deadlock — each sender
   blocks waiting for an acknowledgment that only the peer's read()
   would produce. The eager scheme with credit-based flow control
   tolerates such exchanges (up to N outstanding writes).

   The simulator makes the deadlock observable: the event queue drains
   while fibers remain suspended.

   Run with: dune exec examples/deadlock_demo.exe *)

open Uls_engine

let crossing_writes name opts =
  let cluster = Uls_bench.Cluster.create ~n:2 () in
  let api = Uls_bench.Cluster.substrate_api ~opts cluster in
  let sim = Uls_bench.Cluster.sim cluster in
  let payload = String.make 4096 'x' in
  let completed = ref 0 in
  Sim.spawn sim ~name:"node1" (fun () ->
      let l = api.listen ~node:1 ~port:5 ~backlog:1 in
      let s, _ = l.accept () in
      (* write first, then read — same order as the peer *)
      s.send payload;
      ignore (Uls_api.Sockets_api.recv_exact s 4096);
      incr completed);
  Sim.spawn sim ~name:"node0" (fun () ->
      Sim.delay sim (Time.us 100);
      let s = api.connect ~node:0 { node = 1; port = 5 } in
      s.send payload;
      ignore (Uls_api.Sockets_api.recv_exact s 4096);
      incr completed);
  (* Bound the run: a deadlocked pair would otherwise sit forever. *)
  ignore (Uls_bench.Cluster.run ~until:(Time.ms 500) cluster);
  ignore (Uls_bench.Cluster.run cluster);
  if !completed = 2 then
    Format.printf "%-34s crossing writes COMPLETED at %a@." name Time.pp
      (Sim.now sim)
  else
    Format.printf
      "%-34s DEADLOCK: %d fiber(s) suspended forever, event queue idle@." name
      (Sim.blocked_fibers sim)

let () =
  Format.printf "Both nodes call write() before read() (Figure 7):@.@.";
  crossing_writes "eager + credit flow control"
    Uls_substrate.Options.data_streaming_enhanced;
  crossing_writes "pure rendezvous scheme"
    {
      Uls_substrate.Options.data_streaming_enhanced with
      scheme = Uls_substrate.Options.Rendezvous;
    };
  Format.printf
    "@.The paper adopts eager+credits exactly because rendezvous puts the@.";
  Format.printf "deadlock-avoidance burden on the application (s5.2, s6.1).@."
