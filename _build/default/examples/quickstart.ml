(* Quickstart: a two-node simulated cluster running the sockets-over-EMP
   substrate. A server echoes messages; the client measures round trips,
   then the same application code runs over kernel TCP for comparison —
   no application changes, which is the paper's point.

   Run with: dune exec examples/quickstart.exe *)

open Uls_engine
open Uls_api.Sockets_api

let echo_server api () =
  let listener = api.listen ~node:1 ~port:7 ~backlog:4 in
  let conn, peer = listener.accept () in
  Format.printf "server: connection from %a@." pp_addr peer;
  let rec serve () =
    let msg = conn.recv 65536 in
    if msg <> "" then begin
      conn.send msg;
      serve ()
    end
  in
  serve ();
  conn.close ();
  listener.close_listener ()

let echo_client sim api () =
  Sim.delay sim (Time.us 100);
  let conn = api.connect ~node:0 { node = 1; port = 7 } in
  List.iter
    (fun size ->
      let payload = String.make size 'a' in
      (* one warm-up, then a timed round trip *)
      conn.send payload;
      ignore (recv_exact conn size);
      let t0 = Sim.now sim in
      conn.send payload;
      ignore (recv_exact conn size);
      Format.printf "client: %6d bytes echoed in %a (round trip)@." size
        Time.pp (Sim.now sim - t0))
    [ 4; 256; 4096; 65536 ];
  conn.close ()

let run_stack name make_api =
  Format.printf "--- %s ---@." name;
  let cluster = Uls_bench.Cluster.create ~n:2 () in
  let api = make_api cluster in
  let sim = Uls_bench.Cluster.sim cluster in
  Sim.spawn sim ~name:"server" (echo_server api);
  Sim.spawn sim ~name:"client" (echo_client sim api);
  ignore (Uls_bench.Cluster.run cluster);
  Format.printf "done at virtual time %a@.@." Time.pp (Sim.now sim)

let () =
  run_stack "sockets-over-EMP (data streaming, all enhancements)"
    (Uls_bench.Cluster.substrate_api
       ~opts:Uls_substrate.Options.data_streaming_enhanced);
  run_stack "sockets-over-EMP (datagram)"
    (Uls_bench.Cluster.substrate_api ~opts:Uls_substrate.Options.datagram);
  run_stack "kernel TCP (unchanged application)" (fun c ->
      Uls_bench.Cluster.tcp_api c)
