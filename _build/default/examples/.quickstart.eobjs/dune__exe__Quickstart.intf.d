examples/quickstart.mli:
