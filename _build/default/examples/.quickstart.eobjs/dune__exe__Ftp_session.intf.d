examples/ftp_session.mli:
