examples/web_cluster.mli:
