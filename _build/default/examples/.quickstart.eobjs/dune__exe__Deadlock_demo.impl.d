examples/deadlock_demo.ml: Format Sim String Time Uls_api Uls_bench Uls_engine Uls_substrate
