examples/quickstart.ml: Format List Sim String Time Uls_api Uls_bench Uls_engine Uls_substrate
