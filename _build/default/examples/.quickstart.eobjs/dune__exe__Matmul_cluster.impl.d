examples/matmul_cluster.ml: Format List Printf Sim Time Uls_apps Uls_bench Uls_engine Uls_substrate
