examples/loss_injection.mli:
