examples/ftp_session.ml: Format List Sim String Time Uls_api Uls_apps Uls_bench Uls_engine Uls_substrate
