examples/loss_injection.ml: Buffer Char Format Printf Rng Sim String Time Uls_api Uls_bench Uls_emp Uls_engine Uls_ether Uls_substrate
