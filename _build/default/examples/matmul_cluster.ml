(* The paper's §7.5 application: distributed matrix multiplication on a
   4-node cluster. The master distributes row blocks with the sockets
   API and collects results with select(); the distributed product is
   verified against a sequential reference.

   Run with: dune exec examples/matmul_cluster.exe *)

open Uls_engine

let run name make_api ~n =
  let cluster = Uls_bench.Cluster.create ~n:4 () in
  let api = make_api cluster in
  let sim = Uls_bench.Cluster.sim cluster in
  let a = Uls_apps.Matmul.random_matrix ~seed:11 ~n in
  let b = Uls_apps.Matmul.random_matrix ~seed:12 ~n in
  for w = 1 to 3 do
    Sim.spawn sim ~name:(Printf.sprintf "worker-%d" w) (fun () ->
        Sim.delay sim (Time.us (50 * w));
        Uls_apps.Matmul.worker sim api ~node:w ~master:{ node = 0; port = 90 } ())
  done;
  let outcome = ref None in
  Sim.spawn sim ~name:"master" (fun () ->
      let r = Uls_apps.Matmul.master sim api ~node:0 ~port:90 ~workers:3 ~a ~b in
      outcome := Some r;
      Sim.stop sim);
  ignore (Uls_bench.Cluster.run cluster);
  match !outcome with
  | None -> Format.printf "%-24s N=%3d: FAILED (no result)@." name n
  | Some r ->
    let reference = Uls_apps.Matmul.multiply_seq a b in
    let ok =
      Uls_apps.Matmul.matrices_equal ~eps:1e-6 reference r.Uls_apps.Matmul.product
    in
    Format.printf "%-24s N=%3d: %a (%s)@." name n Time.pp
      r.Uls_apps.Matmul.elapsed
      (if ok then "verified against sequential reference" else "WRONG RESULT")

let () =
  List.iter
    (fun n ->
      run "sockets-over-EMP (DS)"
        (Uls_bench.Cluster.substrate_api
           ~opts:Uls_substrate.Options.data_streaming_enhanced)
        ~n;
      run "sockets-over-EMP (DG)"
        (Uls_bench.Cluster.substrate_api ~opts:Uls_substrate.Options.datagram)
        ~n;
      run "kernel TCP" (fun c -> Uls_bench.Cluster.tcp_api c) ~n)
    [ 64; 192 ]
