(* FTP over RAM disks (the paper's §7.3 application): list, fetch and
   store files between two nodes, over the substrate and over TCP.

   Run with: dune exec examples/ftp_session.exe *)

open Uls_engine

let session name make_api =
  Format.printf "--- ftp over %s ---@." name;
  let cluster = Uls_bench.Cluster.create ~n:2 () in
  let api = make_api cluster in
  let sim = Uls_bench.Cluster.sim cluster in
  let server_disk = Uls_apps.Ramdisk.create (Uls_bench.Cluster.node cluster 1) in
  let client_disk = Uls_apps.Ramdisk.create (Uls_bench.Cluster.node cluster 0) in
  Uls_apps.Ramdisk.create_random server_disk ~name:"kernel.tar" ~size:1_048_576
    ~seed:7;
  Uls_apps.Ramdisk.create_random server_disk ~name:"paper.ps" ~size:262_144
    ~seed:8;
  Uls_apps.Ramdisk.create_random client_disk ~name:"results.dat" ~size:524_288
    ~seed:9;
  Sim.spawn sim ~name:"ftp-server"
    (Uls_apps.Ftp.server sim api ~node:1 ~port:21 ~disk:server_disk);
  Sim.spawn sim ~name:"ftp-client" (fun () ->
      Sim.delay sim (Time.us 100);
      let server = { Uls_api.Sockets_api.node = 1; port = 21 } in
      let files = Uls_apps.Ftp.remote_list api ~node:0 ~server in
      Format.printf "remote files: %s@." (String.concat ", " files);
      List.iter
        (fun file ->
          let tr = Uls_apps.Ftp.fetch sim api ~node:0 ~server ~file ~disk:client_disk in
          Format.printf "RETR %-12s %8d bytes in %a (%.1f Mb/s)@." file
            tr.Uls_apps.Ftp.bytes Time.pp tr.Uls_apps.Ftp.elapsed
            (Time.mbps ~bytes_transferred:tr.Uls_apps.Ftp.bytes
               ~elapsed:tr.Uls_apps.Ftp.elapsed))
        files;
      let tr =
        Uls_apps.Ftp.store sim api ~node:0 ~server ~file:"results.dat"
          ~disk:client_disk
      in
      Format.printf "STOR %-12s %8d bytes in %a (%.1f Mb/s)@." "results.dat"
        tr.Uls_apps.Ftp.bytes Time.pp tr.Uls_apps.Ftp.elapsed
        (Time.mbps ~bytes_transferred:tr.Uls_apps.Ftp.bytes
           ~elapsed:tr.Uls_apps.Ftp.elapsed);
      (* Data integrity check across the whole protocol stack. *)
      assert (
        Uls_apps.Ramdisk.size client_disk "kernel.tar"
        = Uls_apps.Ramdisk.size server_disk "kernel.tar");
      assert (
        Uls_apps.Ramdisk.read client_disk ~name:"kernel.tar" ~off:0 ~len:64
        = Uls_apps.Ramdisk.read server_disk ~name:"kernel.tar" ~off:0 ~len:64);
      Format.printf "integrity checks passed@.@.";
      Sim.stop sim);
  ignore (Uls_bench.Cluster.run cluster)

let () =
  session "sockets-over-EMP (DS)"
    (Uls_bench.Cluster.substrate_api
       ~opts:Uls_substrate.Options.data_streaming_enhanced);
  session "sockets-over-EMP (DG)"
    (Uls_bench.Cluster.substrate_api ~opts:Uls_substrate.Options.datagram);
  session "kernel TCP" (fun c -> Uls_bench.Cluster.tcp_api c)
