(* The paper's §7.4 web-server workload: one server, three clients on a
   four-node cluster; 16-byte requests, fixed-size responses, HTTP/1.0
   (connection per request) vs HTTP/1.1 (8 requests per connection).

   Run with: dune exec examples/web_cluster.exe *)

open Uls_engine

let run name make_api ~requests_per_conn =
  let cluster = Uls_bench.Cluster.create ~n:4 () in
  let api = make_api cluster in
  let sim = Uls_bench.Cluster.sim cluster in
  let response_size = 1024 in
  Sim.spawn sim ~name:"web-server"
    (Uls_apps.Http.server sim api ~node:0 ~port:80 ~response_size
       ~requests_per_conn);
  let finished = ref 0 in
  let total_mean = ref 0. in
  for client = 1 to 3 do
    Sim.spawn sim ~name:(Printf.sprintf "client-%d" client) (fun () ->
        Sim.delay sim (Time.us (100 * client));
        let r =
          Uls_apps.Http.client sim api ~node:client
            ~server:{ node = 0; port = 80 } ~response_size ~requests_per_conn
            ~connections:25
        in
        total_mean := !total_mean +. r.Uls_apps.Http.mean_response_time;
        incr finished;
        if !finished = 3 then Sim.stop sim)
  done;
  ignore (Uls_bench.Cluster.run cluster);
  Format.printf "%-28s %d req/conn: mean response %.1f us@." name
    requests_per_conn
    (!total_mean /. 3. /. 1_000.)

let () =
  let stacks =
    [
      ( "sockets-over-EMP (DS)",
        Uls_bench.Cluster.substrate_api
          ~opts:
            { Uls_substrate.Options.data_streaming_enhanced with credits = 4 } );
      ( "sockets-over-EMP (DG)",
        Uls_bench.Cluster.substrate_api
          ~opts:{ Uls_substrate.Options.datagram with credits = 4 } );
      ("kernel TCP", fun c -> Uls_bench.Cluster.tcp_api c);
    ]
  in
  Format.printf "HTTP/1.0 (one request per connection):@.";
  List.iter
    (fun (n, m) ->
      run n m ~requests_per_conn:Uls_apps.Http.http10_requests_per_conn)
    stacks;
  Format.printf "@.HTTP/1.1 (8 requests per connection):@.";
  List.iter
    (fun (n, m) ->
      run n m ~requests_per_conn:Uls_apps.Http.http11_requests_per_conn)
    stacks
