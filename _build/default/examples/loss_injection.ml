(* Reliability under frame loss: the switch drops ~5% of all frames
   while a 1 MB stream crosses it, over the substrate (EMP NIC-level
   reliability with NACK fast recovery) and over kernel TCP (RTO + fast
   retransmit). Both deliver the stream intact; the interesting part is
   what recovery costs each stack.

   Run with: dune exec examples/loss_injection.exe *)

open Uls_engine

let total = 1_048_576

let stream name make_api ~stats =
  let cluster = Uls_bench.Cluster.create ~n:2 () in
  let api = make_api cluster in
  let sim = Uls_bench.Cluster.sim cluster in
  let rng = Rng.create ~seed:4242 in
  let dropped = ref 0 in
  Uls_ether.Network.set_fault_filter
    (Uls_bench.Cluster.network cluster)
    (fun _ ->
      let drop = Rng.int rng 20 = 0 in
      if drop then incr dropped;
      drop);
  let payload = String.init total (fun i -> Char.chr ((i * 131) mod 256)) in
  let received = Buffer.create total in
  let started = ref 0 in
  let elapsed = ref 0 in
  Sim.spawn sim ~name:"sink" (fun () ->
      let l = api.Uls_api.Sockets_api.listen ~node:1 ~port:9 ~backlog:1 in
      let s, _ = l.accept () in
      let rec pull () =
        let chunk = s.recv 65536 in
        if chunk <> "" then begin
          Buffer.add_string received chunk;
          if Buffer.length received >= total then
            elapsed := Sim.now sim - !started
          else pull ()
        end
      in
      pull ();
      s.close ());
  Sim.spawn sim ~name:"source" (fun () ->
      Sim.delay sim (Time.us 50);
      let s = api.Uls_api.Sockets_api.connect ~node:0 { node = 1; port = 9 } in
      started := Sim.now sim;
      s.send payload;
      s.close ());
  ignore (Uls_bench.Cluster.run cluster);
  let intact = String.equal payload (Buffer.contents received) in
  Format.printf "%-14s dropped %3d frames: stream %s, %.1f Mb/s%s@." name
    !dropped
    (if intact then "INTACT" else "CORRUPTED")
    (Time.mbps ~bytes_transferred:total ~elapsed:!elapsed)
    (stats cluster)

let () =
  Format.printf
    "Streaming 1 MB through a switch that drops ~5%% of frames:@.@.";
  stream "substrate DS"
    (Uls_bench.Cluster.substrate_api
       ~opts:Uls_substrate.Options.data_streaming_enhanced)
    ~stats:(fun cluster ->
      let tx = Uls_emp.Endpoint.stats (Uls_bench.Cluster.emp cluster 0) in
      let rx = Uls_emp.Endpoint.stats (Uls_bench.Cluster.emp cluster 1) in
      Printf.sprintf " (EMP retransmitted %d frames, receiver sent %d NACKs)"
        tx.Uls_emp.Endpoint.frames_retransmitted
        rx.Uls_emp.Endpoint.nacks_sent);
  stream "kernel TCP" (fun c -> Uls_bench.Cluster.tcp_api c)
    ~stats:(fun _ -> " (TCP RTO + fast retransmit)");
  Format.printf
    "@.Loss is invisible to the application on both stacks; EMP recovers@.";
  Format.printf "at NIC level without host involvement (2 of the paper).@."
