(* Collective communication over EMP endpoints: an 8-node cluster
   allreduces a vector of doubles under each algorithm, and the
   NIC-forwarded barrier is raced against its host-side equivalents.
   Every rank's result is verified against the closed-form sum.

   Run with: dune exec examples/allreduce_cluster.exe *)

open Uls_engine
module Group = Uls_collective.Group
module Emp_group = Uls_collective.Emp_group

let nodes = 8
let lanes = 1024 (* doubles per rank *)

let pack fs =
  let b = Bytes.create (8 * Array.length fs) in
  Array.iteri (fun i f -> Bytes.set_int64_le b (i * 8) (Int64.bits_of_float f)) fs;
  Bytes.to_string b

let unpack s =
  Array.init (String.length s / 8) (fun i ->
      Int64.float_of_bits (String.get_int64_le s (i * 8)))

(* Rank r contributes lane values (r+1)*(lane+1); the reduced lane is
   therefore (lane+1) * nodes(nodes+1)/2, exactly representable so any
   combine order gives bit-identical results. *)
let contribution rank =
  Array.init lanes (fun lane -> float_of_int ((rank + 1) * (lane + 1)))

let expected lane = float_of_int ((lane + 1) * (nodes * (nodes + 1) / 2))

let allreduce_once ~alg =
  let c = Uls_bench.Cluster.create ~n:nodes () in
  let eps = Array.init nodes (fun i -> Uls_bench.Cluster.emp c i) in
  let sim = Uls_bench.Cluster.sim c in
  let ok = ref true in
  let rounds = ref 0 in
  let start = Array.make nodes max_int and finish = Array.make nodes 0 in
  for r = 0 to nodes - 1 do
    Sim.spawn sim ~name:(Printf.sprintf "rank%d" r) (fun () ->
        let g = Emp_group.create eps ~rank:r in
        Group.barrier g;
        start.(r) <- Sim.now sim;
        let reduced =
          Group.allreduce ~alg g ~op:Group.float_sum ~max:(lanes * 8)
            (pack (contribution r))
        in
        finish.(r) <- Sim.now sim;
        if r = 0 then rounds := Group.last_rounds g;
        Array.iteri
          (fun lane v -> if v <> expected lane then ok := false)
          (unpack reduced))
  done;
  (match Uls_bench.Cluster.run c with
  | `Quiescent -> ()
  | _ -> failwith "cluster did not quiesce");
  let span =
    Array.fold_left max 0 finish - Array.fold_left min max_int start
  in
  Format.printf "%-10s allreduce of %d doubles x %d ranks: %a, %d rounds (%s)@."
    (Group.algorithm_name alg) lanes nodes Time.pp span !rounds
    (if !ok then "verified" else "WRONG RESULT")

let barrier_once ~alg =
  let us = Uls_bench.Microbench.barrier_latency ~iters:10 ~alg ~nodes () in
  Format.printf "%-10s barrier, %d ranks: %.2f us@."
    (Group.algorithm_name alg) nodes us

let () =
  List.iter
    (fun alg -> allreduce_once ~alg)
    [ Group.Linear; Group.Binomial_tree; Group.Recursive_doubling ];
  Format.printf "@.";
  List.iter
    (fun alg -> barrier_once ~alg)
    [ Group.Linear; Group.Binomial_tree; Group.Nic_forward ]
