type addr = {
  node : int;
  port : int;
}

exception Connection_refused of addr
exception Connection_timeout of addr
exception Connection_closed
exception Connection_reset
exception Bind_in_use of addr

type stream = {
  send : string -> unit;
  recv : int -> string;
  close : unit -> unit;
  readable : unit -> bool;
  watch : (unit -> unit) -> unit;
  peer : unit -> addr;
  local : unit -> addr;
}

type listener = {
  accept : unit -> stream * addr;
  try_accept : unit -> (stream * addr) option;
  acceptable : unit -> bool;
  watch_accept : (unit -> unit) -> unit;
  pending : unit -> int;
  close_listener : unit -> unit;
}

type stack = {
  stack_name : string;
  listen : node:int -> port:int -> backlog:int -> listener;
  connect : node:int -> addr -> stream;
  select : node:int -> stream list -> stream list;
}

let pp_addr fmt a = Format.fprintf fmt "%d:%d" a.node a.port

let recv_exact s n =
  let buf = Buffer.create n in
  let rec loop remaining =
    if remaining = 0 then Buffer.contents buf
    else begin
      let chunk = s.recv remaining in
      if chunk = "" then raise Connection_closed;
      Buffer.add_string buf chunk;
      loop (remaining - String.length chunk)
    end
  in
  loop n

let send_string s data = s.send data

let recv_line s =
  let buf = Buffer.create 64 in
  let rec loop () =
    let c = s.recv 1 in
    if c = "" then raise Connection_closed
    else if c = "\n" then Buffer.contents buf
    else begin
      Buffer.add_string buf c;
      loop ()
    end
  in
  loop ()
