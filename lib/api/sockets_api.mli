(** The stack-agnostic sockets interface.

    Applications (ftp, web server, matrix multiplication, the examples)
    are written once against {!stack} and run unchanged over the kernel
    TCP implementation or over the EMP substrate — the OCaml rendering of
    the paper's claim that existing sockets applications need no changes.

    Semantics follow BSD sockets: [connect]/[accept] yield a full-duplex
    connection; [send] blocks for flow control and delivers every byte;
    [recv] blocks for at least one byte and returns [""] at end of
    stream. Stacks in {e data-streaming} mode give TCP byte-stream
    semantics (reads may split/merge message boundaries); stacks in
    {e datagram} mode (paper §6.2) preserve message boundaries: each
    [recv] returns exactly one message, truncated to the requested
    length. *)

type addr = {
  node : int;
  port : int;
}

exception Connection_refused of addr
(** The remote end answered and explicitly declined (no listener on the
    port). Not retryable. *)

exception Connection_timeout of addr
(** No reply within the configured attempts — the request or its reply
    may have been lost. Retryable. *)

exception Connection_closed

exception Connection_reset
(** The transport gave up delivering to the peer (every retransmission
    round exhausted): the connection is dead, in-flight data is lost. *)

exception Bind_in_use of addr

type stream = {
  send : string -> unit;  (** blocking; delivers the whole string *)
  recv : int -> string;  (** blocking; 1..n bytes, [""] = end of stream *)
  close : unit -> unit;
  readable : unit -> bool;  (** data available: [recv] would not block *)
  peer : unit -> addr;
  local : unit -> addr;
}

type listener = {
  accept : unit -> stream * addr;  (** blocking *)
  acceptable : unit -> bool;  (** a connection is waiting *)
  close_listener : unit -> unit;
}

type stack = {
  stack_name : string;
  listen : node:int -> port:int -> backlog:int -> listener;
  connect : node:int -> addr -> stream;  (** blocking until established *)
  select : node:int -> stream list -> stream list;
  (** Block until at least one stream of the set is readable or closed;
      returns the ready subset (the paper's matmul server uses this). *)
}

val pp_addr : Format.formatter -> addr -> unit

val recv_exact : stream -> int -> string
(** Loop [recv] until exactly [n] bytes arrive.
    @raise Connection_closed on premature end of stream. *)

val send_string : stream -> string -> unit
(** Alias of [stream.send], for symmetry. *)

val recv_line : stream -> string
(** Read up to and excluding a ['\n'] (for the text protocols: ftp
    control channel, HTTP). Note: byte-at-a-time; control channel only.
    @raise Connection_closed on end of stream before a newline. *)
