(** The stack-agnostic sockets interface.

    Applications (ftp, web server, matrix multiplication, the examples)
    are written once against {!stack} and run unchanged over the kernel
    TCP implementation or over the EMP substrate — the OCaml rendering of
    the paper's claim that existing sockets applications need no changes.

    Semantics follow BSD sockets: [connect]/[accept] yield a full-duplex
    connection; [send] blocks for flow control and delivers every byte;
    [recv] blocks for at least one byte and returns [""] at end of
    stream. Stacks in {e data-streaming} mode give TCP byte-stream
    semantics (reads may split/merge message boundaries); stacks in
    {e datagram} mode (paper §6.2) preserve message boundaries: each
    [recv] returns exactly one message, truncated to the requested
    length. *)

type addr = {
  node : int;
  port : int;
}

exception Connection_refused of addr
(** The remote end answered and explicitly declined (no listener on the
    port). Not retryable. *)

exception Connection_timeout of addr
(** No reply within the configured attempts — the request or its reply
    may have been lost. Retryable. *)

exception Connection_closed

exception Connection_reset
(** The transport gave up delivering to the peer (every retransmission
    round exhausted): the connection is dead, in-flight data is lost. *)

exception Bind_in_use of addr

type stream = {
  send : string -> unit;  (** blocking; delivers the whole string *)
  recv : int -> string;  (** blocking; 1..n bytes, [""] = end of stream *)
  close : unit -> unit;
  readable : unit -> bool;  (** data available: [recv] would not block *)
  watch : (unit -> unit) -> unit;
      (** Register a readiness watcher: the callback fires (from the
          stack's internal fibers) every time the stream {e may} have
          become readable — data arrival, end of stream, reset. Spurious
          invocations are allowed; watchers persist for the life of the
          stream and cannot be unregistered (wrap the callback if it must
          be disarmed). This is the per-connection notification path the
          event engine ({!Uls_server.Evq}) builds its O(ready) wakeups
          on, in contrast to the O(registered) scan of {!stack.select}. *)
  peer : unit -> addr;
  local : unit -> addr;
}

type listener = {
  accept : unit -> stream * addr;  (** blocking *)
  try_accept : unit -> (stream * addr) option;
      (** Non-blocking accept: [None] when nothing fresh is queued.
          Stacks resolve protocol-level duplicates (e.g. a retried
          connect whose reply was lost) internally, so — unlike guarding
          a blocking [accept] with [acceptable] — this never blocks. An
          event-driven accept loop must drain with this. *)
  acceptable : unit -> bool;  (** a connection is waiting *)
  watch_accept : (unit -> unit) -> unit;
      (** Readiness watcher for the accept queue: fires whenever a new
          connection is queued (and when the listener closes), with the
          same spurious-call contract as {!stream.watch}. This makes
          listener readiness reachable from the portable API, so a
          server can multiplex accept with stream I/O in one event
          engine instead of dedicating a fiber to [accept]. *)
  pending : unit -> int;
      (** Connections queued and waiting to be accepted (the backlog
          occupancy a server's accept-path gauge reports). *)
  close_listener : unit -> unit;
}

type stack = {
  stack_name : string;
  listen : node:int -> port:int -> backlog:int -> listener;
  connect : node:int -> addr -> stream;  (** blocking until established *)
  select : node:int -> stream list -> stream list;
  (** Block until at least one stream of the set is readable or closed;
      returns the ready subset (the paper's matmul server uses this). *)
}

val pp_addr : Format.formatter -> addr -> unit

val recv_exact : stream -> int -> string
(** Loop [recv] until exactly [n] bytes arrive.
    @raise Connection_closed on premature end of stream. *)

val send_string : stream -> string -> unit
(** Alias of [stream.send], for symmetry. *)

val recv_line : stream -> string
(** Read up to and excluding a ['\n'] (for the text protocols: ftp
    control channel, HTTP). Note: byte-at-a-time; control channel only.
    @raise Connection_closed on end of stream before a newline. *)
