open Uls_engine
open Uls_host

type mode = Wakeup | Busy_poll
type backpressure = Block | Drop

type stats = {
  mutable doorbells : int;
  mutable fetch_batches : int;
  mutable fetched : int;
  mutable submitted : int;
  mutable sq_drops : int;
  mutable cq_overflows : int;
  mutable completed : int;
  mutable reaped : int;
  mutable cq_flushes : int;
}

type ('s, 'c) t = {
  sim : Sim.t;
  model : Cost_model.t;
  nic_cpu : Resource.t;
  mode : mode;
  backpressure : backpressure;
  sq : 's Cursor_ring.t;
  cq : 'c Cursor_ring.t;
  consume : 's -> unit;
  not_full : Cond.t;
  nic_work : Cond.t;
  cq_ready : Cond.t;
  on_doorbell : unit -> unit;
  on_fetch : int -> unit;
  on_cq_flush : (int -> unit) option;
  stats : stats;
  mutable armed : bool;
  mutable cq_unflushed : int;
  cq_flush_work : Cond.t;
}

let stats t = t.stats
let mode t = t.mode
let sq_length t = Cursor_ring.length t.sq
let cq_length t = Cursor_ring.length t.cq
let sq_space t = Cursor_ring.capacity t.sq - Cursor_ring.length t.sq

(* NIC-side fetch fiber. In [Wakeup] mode it services one doorbell at a
   time: everything visible in the SQ when the doorbell is honoured is
   fetched under a single [nic_doorbell_batch] mailbox-word charge plus
   one [nic_ring_slot_fetch] per descriptor. Entries submitted after the
   snapshot wait for the next doorbell. In [Busy_poll] mode there is no
   mailbox at all: the poller discovers the ring tail after a [poll_gap]
   delay and pays only the per-slot fetches. *)
let fetch_loop t () =
  let m = t.model in
  let rec loop () =
    Cond.wait_until t.nic_work (fun () ->
        (not (Cursor_ring.is_empty t.sq))
        && (t.mode = Busy_poll || t.armed));
    (match t.mode with
    | Wakeup ->
        t.armed <- false;
        let n = Cursor_ring.length t.sq in
        Resource.use t.nic_cpu
          (m.Cost_model.nic_doorbell_batch
          + (n * m.Cost_model.nic_ring_slot_fetch));
        t.on_fetch n;
        t.stats.fetch_batches <- t.stats.fetch_batches + 1;
        t.stats.fetched <- t.stats.fetched + n;
        let ds = Cursor_ring.pop_up_to t.sq ~max:n in
        Cond.broadcast t.not_full;
        List.iter t.consume ds
    | Busy_poll ->
        Sim.delay t.sim m.Cost_model.poll_gap;
        let n = Cursor_ring.length t.sq in
        if n > 0 then begin
          Resource.use t.nic_cpu (n * m.Cost_model.nic_ring_slot_fetch);
          t.stats.fetch_batches <- t.stats.fetch_batches + 1;
          t.stats.fetched <- t.stats.fetched + n;
          let ds = Cursor_ring.pop_up_to t.sq ~max:n in
          Cond.broadcast t.not_full;
          List.iter t.consume ds
        end);
    loop ()
  in
  loop ()

(* Completion-write coalescing (CQ moderation): instead of one
   8-byte completion DMA per finished descriptor, a flush fiber writes
   every completion accumulated since its last burst in a single DMA.
   The flush is self-clocking — while one burst's DMA occupies the
   engine, further completions pile up and ride the next burst — so the
   per-completion setup cost amortizes exactly when completion rate is
   high, which is when it matters. *)
let cq_flush_loop t flush () =
  let rec loop () =
    Cond.wait_until t.cq_flush_work (fun () -> t.cq_unflushed > 0);
    let k = t.cq_unflushed in
    t.cq_unflushed <- 0;
    t.stats.cq_flushes <- t.stats.cq_flushes + 1;
    flush k;
    loop ()
  in
  loop ()

let create ?(mode = Wakeup) ?(backpressure = Block) ?(sq_capacity = 1024)
    ?(cq_capacity = 1024) ?(label = "ring") ?(on_doorbell = fun () -> ())
    ?(on_fetch = fun (_ : int) -> ()) ?on_cq_flush sim ~model ~nic_cpu
    ~dummy_sub ~dummy_comp ~consume () =
  let t =
    {
      sim;
      model;
      nic_cpu;
      mode;
      backpressure;
      sq = Cursor_ring.create ~capacity:sq_capacity ~dummy:dummy_sub ();
      cq = Cursor_ring.create ~capacity:cq_capacity ~dummy:dummy_comp ();
      consume;
      not_full = Cond.create ~label:(label ^ " sq-space") sim;
      nic_work = Cond.create ~label:(label ^ " nic-work") sim;
      cq_ready = Cond.create ~label:(label ^ " cq-ready") sim;
      on_doorbell;
      on_fetch;
      on_cq_flush;
      stats =
        {
          doorbells = 0;
          fetch_batches = 0;
          fetched = 0;
          submitted = 0;
          sq_drops = 0;
          cq_overflows = 0;
          completed = 0;
          reaped = 0;
          cq_flushes = 0;
        };
      armed = false;
      cq_unflushed = 0;
      cq_flush_work = Cond.create ~label:(label ^ " cq-flush") sim;
    }
  in
  Sim.spawn sim ~name:(label ^ ".fetch") ~daemon:true (fetch_loop t);
  (match on_cq_flush with
  | Some flush ->
    Sim.spawn sim ~name:(label ^ ".cqflush") ~daemon:true (cq_flush_loop t flush)
  | None -> ());
  t

let ring_doorbell t =
  match t.mode with
  | Busy_poll ->
      (* Wakeup-free: the poller discovers work on its own; a doorbell
         call is a no-op (no MMIO charged, no counter bumped). *)
      Cond.signal t.nic_work
  | Wakeup ->
      if not (Cursor_ring.is_empty t.sq) then begin
        Sim.delay t.sim t.model.Cost_model.pio_write;
        t.stats.doorbells <- t.stats.doorbells + 1;
        t.on_doorbell ();
        t.armed <- true;
        Cond.signal t.nic_work
      end

let submit t x =
  Sim.delay t.sim t.model.Cost_model.ring_slot_post;
  if Cursor_ring.is_full t.sq then
    match t.backpressure with
    | Drop ->
        t.stats.sq_drops <- t.stats.sq_drops + 1;
        false
    | Block ->
        (* A full ring with an unrung doorbell would deadlock the
           producer in wakeup mode: flush first, then wait for space. *)
        ring_doorbell t;
        Cond.wait_until t.not_full (fun () ->
            not (Cursor_ring.is_full t.sq));
        Cursor_ring.push_exn t.sq x;
        t.stats.submitted <- t.stats.submitted + 1;
        if t.mode = Busy_poll then Cond.signal t.nic_work;
        true
  else begin
    Cursor_ring.push_exn t.sq x;
    t.stats.submitted <- t.stats.submitted + 1;
    if t.mode = Busy_poll then Cond.signal t.nic_work;
    true
  end

let complete t c =
  if Cursor_ring.is_full t.cq then begin
    ignore (Cursor_ring.drop_oldest t.cq);
    t.stats.cq_overflows <- t.stats.cq_overflows + 1
  end;
  Cursor_ring.push_exn t.cq c;
  t.stats.completed <- t.stats.completed + 1;
  (match t.on_cq_flush with
  | Some _ ->
    t.cq_unflushed <- t.cq_unflushed + 1;
    Cond.signal t.cq_flush_work
  | None -> ());
  Cond.broadcast t.cq_ready

let reap t ~max =
  let xs = Cursor_ring.pop_up_to t.cq ~max in
  (match xs with
  | [] -> ()
  | _ :: rest ->
      let k = 1 + List.length rest in
      t.stats.reaped <- t.stats.reaped + k;
      Sim.delay t.sim
        (t.model.Cost_model.emp_host_reap
        + ((k - 1) * t.model.Cost_model.ring_reap_slot)));
  xs

let reap_wait t ~max =
  Cond.wait_until t.cq_ready (fun () -> not (Cursor_ring.is_empty t.cq));
  reap t ~max
