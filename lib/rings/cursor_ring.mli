(** Fixed-size power-of-two ring with free-running producer/consumer
    cursors — the slot array shared between host and NIC in the batched
    I/O path. Cursors only ever increase; the slot index is
    [cursor land (capacity - 1)], so wrap-around (including integer
    overflow past 2^62) needs no special casing: distances are computed
    with two's-complement subtraction. Single producer, single consumer
    (one fiber each side in the simulator). *)

type 'a t

val create : ?start:int -> capacity:int -> dummy:'a -> unit -> 'a t
(** [capacity] must be a power of two. [dummy] fills unused slots (the
    descriptor arrays stay unboxed: no option wrapping per slot).
    [start] sets both cursors' initial value — used by the overflow
    tests to place them near [max_int]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val prod_cursor : 'a t -> int
val cons_cursor : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** False iff the ring is full. *)

val push_exn : 'a t -> 'a -> unit

val try_pop : 'a t -> 'a option

val pop_up_to : 'a t -> max:int -> 'a list
(** Pop at most [max] entries, oldest first. *)

val drop_oldest : 'a t -> bool
(** Advance the consumer cursor past the oldest entry without reading
    it (completion-ring overflow policy). False if empty. *)
