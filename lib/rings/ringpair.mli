(** A submission/completion ring pair shared between a host fiber and a
    NIC core — the AF_XDP/io_uring-shaped batched alternative to the
    per-operation mailbox.

    Host side: [submit] stages descriptors ([ring_slot_post] each, a
    cached write — no MMIO), then one [ring_doorbell] covers the whole
    batch (one [pio_write] plus one [nic_doorbell_batch] mailbox-word
    fetch on the NIC, instead of one [nic_mailbox_fetch] per
    descriptor). Completions come back through the CQ and are reaped in
    bulk: [emp_host_reap] for the first plus [ring_reap_slot] for each
    further completion in the same reap.

    [Busy_poll] mode is wakeup-free: doorbells are no-ops (nothing
    charged, nothing counted) and the NIC poller discovers the ring tail
    itself after a [poll_gap] delay — trading notification cost for
    discovery latency. The poller parks on a condition when idle, so it
    never blocks simulation quiescence. *)

type mode = Wakeup | Busy_poll
type backpressure = Block | Drop

type stats = {
  mutable doorbells : int;
  mutable fetch_batches : int;
  mutable fetched : int;
  mutable submitted : int;
  mutable sq_drops : int;
  mutable cq_overflows : int;
  mutable completed : int;
  mutable reaped : int;
  mutable cq_flushes : int;
      (** coalesced completion-write bursts (see [on_cq_flush]) *)
}

type ('s, 'c) t
(** ['s] submission descriptor, ['c] completion record. *)

val create :
  ?mode:mode ->
  ?backpressure:backpressure ->
  ?sq_capacity:int ->
  ?cq_capacity:int ->
  ?label:string ->
  ?on_doorbell:(unit -> unit) ->
  ?on_fetch:(int -> unit) ->
  ?on_cq_flush:(int -> unit) ->
  Uls_engine.Sim.t ->
  model:Uls_host.Cost_model.t ->
  nic_cpu:Uls_engine.Resource.t ->
  dummy_sub:'s ->
  dummy_comp:'c ->
  consume:('s -> unit) ->
  unit ->
  ('s, 'c) t
(** [consume] runs on the NIC fetch fiber once per descriptor, after the
    batch fetch charge; it must not block — spawn a fiber for blocking
    work. [on_doorbell] fires when the host rings (wakeup mode only);
    [on_fetch n] fires when the NIC services a wakeup-mode doorbell
    covering [n] descriptors. [on_cq_flush k] enables completion-write
    coalescing (CQ moderation): a dedicated flush fiber calls it with
    the number of completions accumulated since its last call, instead
    of one completion write per entry — the callback should charge the
    single coalesced DMA burst. Capacities must be powers of two. *)

val submit : ('s, 'c) t -> 's -> bool
(** Stage one descriptor. On a full SQ: [Block] flushes (rings the
    doorbell) and waits for space, always returning [true]; [Drop]
    returns [false] and counts the drop. *)

val ring_doorbell : ('s, 'c) t -> unit
(** Notify the NIC of everything staged since the last doorbell. No-op
    when the SQ is empty or in [Busy_poll] mode. *)

val complete : ('s, 'c) t -> 'c -> unit
(** NIC side: push a completion. A full CQ drops its oldest entry
    (counted in [cq_overflows]) rather than blocking firmware. *)

val reap : ('s, 'c) t -> max:int -> 'c list
(** Host side, non-blocking: pop up to [max] completions (oldest first),
    charging [emp_host_reap] + (k-1)·[ring_reap_slot] when k > 0. *)

val reap_wait : ('s, 'c) t -> max:int -> 'c list
(** Like {!reap} but parks until at least one completion is present. *)

val stats : ('s, 'c) t -> stats
val mode : ('s, 'c) t -> mode
val sq_length : ('s, 'c) t -> int
val cq_length : ('s, 'c) t -> int
val sq_space : ('s, 'c) t -> int
