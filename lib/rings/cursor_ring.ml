type 'a t = {
  mask : int;
  slots : 'a array;
  mutable prod : int;
  mutable cons : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(start = 0) ~capacity ~dummy () =
  if not (is_power_of_two capacity) then
    invalid_arg "Cursor_ring.create: capacity must be a power of two";
  { mask = capacity - 1; slots = Array.make capacity dummy; prod = start;
    cons = start }

let capacity t = t.mask + 1

(* Cursors are free-running and may overflow past max_int; two's
   complement subtraction keeps the distance exact as long as fewer than
   2^62 slots are in flight, which the capacity bound guarantees. *)
let length t = t.prod - t.cons

let is_empty t = t.prod = t.cons
let is_full t = length t = capacity t
let prod_cursor t = t.prod
let cons_cursor t = t.cons

let try_push t x =
  if is_full t then false
  else begin
    t.slots.(t.prod land t.mask) <- x;
    t.prod <- t.prod + 1;
    true
  end

let push_exn t x =
  if not (try_push t x) then failwith "Cursor_ring.push_exn: ring full"

let try_pop t =
  if is_empty t then None
  else begin
    let x = t.slots.(t.cons land t.mask) in
    t.cons <- t.cons + 1;
    Some x
  end

let pop_up_to t ~max =
  let n = min max (length t) in
  let rec go k acc =
    if k = 0 then List.rev acc
    else
      match try_pop t with
      | None -> List.rev acc
      | Some x -> go (k - 1) (x :: acc)
  in
  go n []

let drop_oldest t =
  if is_empty t then false
  else begin
    t.cons <- t.cons + 1;
    true
  end
