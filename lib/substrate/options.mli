(** Substrate configuration: every design alternative and performance
    enhancement of §5–6 is a knob here, so the evaluation can ablate
    them exactly as the paper does (DS, DS_DA, DS_DA_UQ, DG, rendezvous
    vs eager, piggy-backed acks, credit size). *)

type mode =
  | Data_streaming  (** TCP semantics: reads may split message boundaries *)
  | Datagram  (** §6.2: boundaries preserved; zero-copy large messages *)

type scheme =
  | Eager  (** eager with credit-based flow control (§5.2, §6.1) *)
  | Rendezvous  (** request/grant synchronisation for every message *)
  | Comm_thread
      (** §5.2's first (rejected) alternative: a separate communication
          thread reposts descriptors as messages arrive. No credits or
          acks, but each message pays the ~20 us thread-synchronisation
          cost the paper measured, and an unresponsive reader exhausts
          the spare buffers (recovered by EMP retransmission). *)

type t = {
  mode : mode;
  scheme : scheme;
  credits : int;  (** N: outstanding unconsumed messages allowed *)
  buffer_size : int;  (** per-credit temporary buffer (paper: 64 KB) *)
  delayed_acks : bool;  (** §6.3: ack after N/2 consumed, not every one *)
  unexpected_queue : bool;  (** §6.4: ack buffers live in the EMP UQ *)
  piggyback : bool;  (** §6.1: fold credit returns into reverse data *)
  block_send : bool;
      (** §6.1's (rejected) "blocking the send" alternative: every write
          waits for the receiver's acknowledgment, costing a round trip
          per send but never deadlocking. *)
  comm_thread_sync : Uls_engine.Time.ns;
      (** per-message polling-thread synchronisation cost (paper: ~20 us) *)
  eager_max : int;  (** Datagram mode: larger writes use rendezvous *)
  write_overhead : Uls_engine.Time.ns;  (** substrate bookkeeping per write *)
  read_overhead : Uls_engine.Time.ns;
  connect_timeout : Uls_engine.Time.ns;
  connect_attempts : int;
      (** connection requests resent before giving up: the request (or
          its reply) can be lost on the wire, and connection setup has
          no EMP descriptor waiting on the server until [listen] ran.
          Each attempt doubles the previous wait (exponential backoff). *)
  backlog_request_bytes : int;
  rx_ring : bool;
      (** Batched descriptor reposting: [readv] returns consumed data
          slots through the endpoint's fill ring
          ([Endpoint.post_recv_batch]) instead of one [post_recv] per
          message. Off by default (byte-identical per-call path). *)
}

val header_bytes : int
(** Eager data-message header: [seq; piggybacked credits]. *)

val data_streaming : t
(** The paper's baseline DS configuration. *)

val data_streaming_enhanced : t
(** DS with all enhancements on: the paper's DS_DA_UQ configuration. *)

val server : t
(** DS_DA_UQ provisioned for thousands of concurrent connections: small
    credit counts and buffers keep the per-connection descriptor and
    memory footprint low (2N+3 descriptors each, §5.3), and piggy-backed
    acks ride on request/response traffic. *)

val datagram : t
(** The paper's DG configuration (§6.2). *)

val chunk_capacity : t -> int
(** Payload bytes per eager message: [buffer_size - header_bytes]. *)

val ack_threshold : t -> int
(** Consumed messages before a credit ack is due (1, or N/2 with
    delayed acks). *)

val mode_name : t -> string
