(** Fixed-width little-endian integer framing for the substrate's
    control messages and eager-data headers. *)

val int_bytes : int
(** Bytes per encoded integer (8). *)

exception Protocol_error of string
(** A peer sent a control message the substrate cannot decode (wrong
    size or shape). Raised instead of asserting so the failure names the
    connection and message kind. *)

val protocol_error : ('a, unit, string, 'b) format4 -> 'a
(** [protocol_error fmt ...] formats a message and raises
    {!Protocol_error}. *)

val encode : int list -> string

val decode : ?count:int -> string -> int list
(** Decode up to [count] integers (all that fit when omitted). *)

val decode_region : Uls_host.Memory.region -> off:int -> count:int -> int list
(** Decode [count] integers straight out of a receive buffer. *)
