(** Per-node substrate instance: the user-level library that maps the
    sockets interface onto EMP (Figure 5). Connection management is the
    data-message-exchange scheme of §5.1: [listen] pre-posts [backlog]
    request descriptors on the port's tag; [connect] sends an explicit
    request message carrying the client's identity and waits for the
    reply. An active-socket table tracks every open connection so close
    reclaims all NIC descriptors (§5.3). *)

open Uls_engine
open Uls_host
module E = Uls_emp.Endpoint

type request = {
  rq_node : int;
  rq_conn : int;
  rq_port : int;
}

type listener = {
  l_port : int;
  l_requests : request Mailbox.t;
  l_slots : Conn.slot array;
  l_handles : (Conn.slot * E.recv) Mailbox.t;
  mutable l_watchers : (unit -> unit) list;
      (** accept-readiness watchers: fired when a request is queued and
          when the listener closes (the event engine's accept path) *)
  mutable l_closed : bool;
}

(* Control-path metric handles, resolved once at create. *)
type handles = {
  h_refusals_sent : Stats.Counter.t;
  h_accept_dups : Stats.Counter.t;
  h_accepts : Stats.Counter.t;
  h_connect_retries : Stats.Counter.t;
  h_connects : Stats.Counter.t;
}

type t = {
  node : Node.t;
  emp : E.t;
  mh : handles;
  opts : Options.t;
  ctrl_pool : Sendpool.t;
  conns : (int, Conn.t) Hashtbl.t;
  listeners : (int, listener) Hashtbl.t;
  accepted : (int * int, int) Hashtbl.t;
      (** (client node, client conn id) -> server conn id, for every live
          accepted connection: a client that never heard our reply resends
          its request, which must re-answer — not build a second
          connection *)
  activity : Cond.t;
  mutable next_id : int;
  mutable next_eport : int;
}

let node_id t = Node.id t.node
let sim t = Node.sim t.node
let activity t = t.activity
let options t = t.opts
let emp t = t.emp
let active_connections t = Hashtbl.length t.conns

let conn_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.conns [] |> List.sort compare

let conns t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []
  |> List.sort (fun a b -> compare (Conn.id a) (Conn.id b))

(* A send that exhausted every retransmission round names a dead
   connection: route the failed message's tag back to the connection that
   owns it (our conn whose peer is [(dst, id)]) and reset it, so blocked
   readers and writers surface [Connection_reset] instead of hanging.
   Connection-setup tags are excluded — [connect] has its own
   timeout-and-retry and no connection to reset yet. *)
let on_send_failure t ~dst ~tag ~retries:_ =
  match Tags.split tag with
  | (Tags.Conn_request | Tags.Conn_reply), _ -> ()
  | _, peer_id ->
    let victims =
      Hashtbl.fold
        (fun _ c acc ->
          if Conn.peer_node c = dst && Conn.peer_conn c = peer_id then c :: acc
          else acc)
        t.conns []
    in
    List.iter Conn.mark_reset victims

(* With the unexpected queue on, a connection request aimed at a port
   nobody listens on completes into the UQ instead of being dropped —
   scan for those and answer with an explicit refusal ([-1] in the reply)
   so the client fails fast instead of burning its retry budget. *)
let refusal_fiber t () =
  let orphan ~src:_ ~tag =
    match Tags.split tag with
    | Tags.Conn_request, port -> not (Hashtbl.mem t.listeners port)
    | _ -> false
  in
  let rec loop () =
    (match E.uq_take t.emp ~pred:orphan with
    | Some (data, _, _) when String.length data >= 3 * Codec.int_bytes -> (
      match Codec.decode ~count:3 data with
      | [ rq_node; rq_conn; _rq_port ] when rq_conn >= 0 && rq_conn <= Tags.max_id
        ->
        Stats.Counter.incr t.mh.h_refusals_sent;
        Trace.instant (Trace.for_sim (sim t)) ~layer:Trace.Substrate
          ~node:(node_id t) "sub.refuse"
          ~args:[ ("peer", string_of_int rq_node) ];
        ignore
          (Sendpool.send t.ctrl_pool ~dst:rq_node
             ~tag:(Tags.make Tags.Conn_reply rq_conn)
             (Codec.encode [ -1 ]))
      | _ -> ())
    | Some _ -> ()
    | None -> Cond.wait (E.uq_arrival_cond t.emp));
    loop ()
  in
  loop ()

let create ?(opts = Options.data_streaming_enhanced) node emp =
  if opts.Options.unexpected_queue then
    E.provision_unexpected emp ~slots:((4 * opts.Options.credits) + 32) ~size:64;
  let metrics = Metrics.for_sim (Node.sim node) in
  let counter name = Metrics.counter metrics ~node:(Node.id node) name in
  let t =
    {
      node;
      emp;
      mh =
        {
          h_refusals_sent = counter "sub.refusals_sent";
          h_accept_dups = counter "sub.accept_dups";
          h_accepts = counter "sub.accepts";
          h_connect_retries = counter "sub.connect_retries";
          h_connects = counter "sub.connects";
        };
      opts;
      ctrl_pool = Sendpool.create node emp ~slots:64 ~size:256;
      conns = Hashtbl.create 32;
      listeners = Hashtbl.create 8;
      accepted = Hashtbl.create 32;
      activity = Cond.create ~label:"sub:activity" (Node.sim node);
      next_id = 0;
      next_eport = 40_000;
    }
  in
  E.set_send_failure_handler emp (on_send_failure t);
  if opts.Options.unexpected_queue then
    Sim.spawn (Node.sim node) ~name:"sub-refuse" ~daemon:true (refusal_fiber t);
  t

let alloc_id t =
  let rec search tries =
    if tries > Tags.max_id then failwith "substrate: connection ids exhausted";
    t.next_id <- (t.next_id + 1) land Tags.max_id;
    if Hashtbl.mem t.conns t.next_id then search (tries + 1) else t.next_id
  in
  search 0

let conn_env t =
  {
    Conn.node = t.node;
    emp = t.emp;
    opts = t.opts;
    ctrl_pool = t.ctrl_pool;
    notify = (fun () -> Cond.broadcast t.activity);
    release_id =
      (fun id ->
        Hashtbl.remove t.conns id;
        (* Drop the accept-dedup binding too, or a recycled conn id
           would answer a stranger's retried request. *)
        let stale =
          Hashtbl.fold
            (fun k v acc -> if v = id then k :: acc else acc)
            t.accepted []
        in
        List.iter (Hashtbl.remove t.accepted) stale);
  }

(* --- listen / accept -------------------------------------------------- *)

let listener_fiber t l () =
  let rec loop () =
    let slot, recv = Mailbox.recv l.l_handles in
    let len, _, _ = E.wait_recv t.emp recv in
    if len >= 0 && not l.l_closed then begin
      if len < 3 * Codec.int_bytes then
        Codec.protocol_error
          "listener port %d: connection request too short (%d B < %d B)"
          l.l_port len (3 * Codec.int_bytes);
      (match Codec.decode_region slot.Conn.sl_region ~off:0 ~count:3 with
      | [ rq_node; rq_conn; rq_port ] ->
        (* Repost the backlog descriptor, then queue the request. *)
        let r =
          E.post_recv t.emp ~src:(-1)
            ~tag:(Tags.make Tags.Conn_request l.l_port)
            slot.Conn.sl_region ~off:0
            ~len:(Memory.length slot.Conn.sl_region)
        in
        slot.Conn.sl_current <- Some r;
        Mailbox.send l.l_handles (slot, r);
        Mailbox.send l.l_requests { rq_node; rq_conn; rq_port };
        Cond.broadcast t.activity;
        List.iter (fun f -> f ()) l.l_watchers
      | _ ->
        Codec.protocol_error
          "listener port %d: undecodable connection request" l.l_port);
      loop ()
    end
  in
  loop ()

let listen t ~port ~backlog =
  if port < 0 || port > Tags.max_id then invalid_arg "substrate: port > 4095";
  if Hashtbl.mem t.listeners port then
    raise (Uls_api.Sockets_api.Bind_in_use { node = node_id t; port });
  let backlog = max 1 backlog in
  let l =
    {
      l_port = port;
      l_requests =
        Mailbox.create ~label:(Printf.sprintf "listen:%d requests" port) (sim t);
      l_slots =
        Array.init backlog (fun _ ->
            let region = Memory.alloc t.opts.Options.backlog_request_bytes in
            Os.prepin (Node.os t.node) region;
            { Conn.sl_region = region; sl_current = None });
      l_handles =
        Mailbox.create ~label:(Printf.sprintf "listen:%d handles" port) (sim t);
      l_watchers = [];
      l_closed = false;
    }
  in
  Array.iter
    (fun slot ->
      let r =
        E.post_recv t.emp ~src:(-1)
          ~tag:(Tags.make Tags.Conn_request port)
          slot.Conn.sl_region ~off:0
          ~len:(Memory.length slot.Conn.sl_region)
      in
      slot.Conn.sl_current <- Some r;
      Mailbox.send l.l_handles (slot, r))
    l.l_slots;
  Hashtbl.replace t.listeners port l;
  Sim.spawn (sim t) ~name:"sub-listen" ~daemon:true (listener_fiber t l);
  l

(* Non-blocking: drains duplicate requests (a retried connect whose
   reply was lost — resolved by resending the reply) until a fresh one
   or an empty queue. Event-driven accept loops must use this: a
   duplicate makes the queue non-empty without making a blocking
   [accept] safe to call. *)
let rec try_accept t l =
  if l.l_closed then raise Uls_api.Sockets_api.Connection_closed;
  match Mailbox.try_recv l.l_requests with
  | None -> None
  | Some rq ->
  match Hashtbl.find_opt t.accepted (rq.rq_node, rq.rq_conn) with
  | Some id when Hashtbl.mem t.conns id ->
    (* The client retried because our reply was lost: resend it for the
       connection already built, and look for the next fresh request. *)
    Stats.Counter.incr t.mh.h_accept_dups;
    Trace.instant (Trace.for_sim (sim t)) ~layer:Trace.Substrate
      ~node:(node_id t) ~conn:id "sub.accept_dup"
      ~args:[ ("peer", string_of_int rq.rq_node) ];
    ignore
      (Sendpool.send t.ctrl_pool ~dst:rq.rq_node
         ~tag:(Tags.make Tags.Conn_reply rq.rq_conn)
         (Codec.encode [ id ]));
    try_accept t l
  | _ ->
  let id = alloc_id t in
  let peer_addr = { Uls_api.Sockets_api.node = rq.rq_node; port = rq.rq_port } in
  let conn =
    Conn.create (conn_env t) ~id ~peer_node:rq.rq_node ~peer_conn:rq.rq_conn
      ~local_addr:{ Uls_api.Sockets_api.node = node_id t; port = l.l_port }
      ~peer_addr
  in
  Hashtbl.replace t.conns id conn;
  Hashtbl.replace t.accepted (rq.rq_node, rq.rq_conn) id;
  Stats.Counter.incr t.mh.h_accepts;
  Trace.instant (Trace.for_sim (sim t)) ~layer:Trace.Substrate
    ~node:(node_id t) ~conn:id "sub.accept"
    ~args:[ ("peer", string_of_int rq.rq_node) ];
  (* Reply carries the server-side connection id. *)
  ignore
    (Sendpool.send t.ctrl_pool ~dst:rq.rq_node
       ~tag:(Tags.make Tags.Conn_reply rq.rq_conn)
       (Codec.encode [ id ]));
  Some (conn, peer_addr)

let rec accept t l =
  match try_accept t l with
  | Some r -> r
  | None ->
    (* Park on the substrate's activity condition so close_listener can
       wake us (a plain Mailbox.recv would sleep through it forever). *)
    Cond.wait t.activity;
    accept t l

let acceptable l = not (Mailbox.is_empty l.l_requests)
let listener_pending l = Mailbox.length l.l_requests
let add_accept_watcher l f = l.l_watchers <- f :: l.l_watchers

let close_listener t l =
  if not l.l_closed then begin
    l.l_closed <- true;
    Hashtbl.remove t.listeners l.l_port;
    Array.iter
      (fun slot ->
        match slot.Conn.sl_current with
        | Some r ->
          ignore (E.unpost_recv t.emp r);
          slot.Conn.sl_current <- None
        | None -> ())
      l.l_slots;
    (* Wake fibers parked in accept so they observe l_closed. *)
    Cond.broadcast t.activity;
    List.iter (fun f -> f ()) l.l_watchers
  end

(* --- connect ----------------------------------------------------------- *)

exception Refused = Uls_api.Sockets_api.Connection_refused
exception Timed_out = Uls_api.Sockets_api.Connection_timeout

let connect_blocking t (server : Uls_api.Sockets_api.addr) =
  let id = alloc_id t in
  t.next_eport <- t.next_eport + 1;
  let local = { Uls_api.Sockets_api.node = node_id t; port = t.next_eport } in
  let conn =
    Conn.create (conn_env t) ~id ~peer_node:server.node ~peer_conn:(-1)
      ~local_addr:local ~peer_addr:server
  in
  Hashtbl.replace t.conns id conn;
  (* Pre-post the reply descriptor; it stays posted across retries. *)
  let reply_region = Memory.alloc 16 in
  Os.prepin (Node.os t.node) reply_region;
  let reply =
    E.post_recv t.emp ~src:server.node
      ~tag:(Tags.make Tags.Conn_reply id)
      reply_region ~off:0 ~len:16
  in
  (* Failure must not leak: the reply descriptor is unposted and the
     half-built connection torn down (removing it from the active-socket
     table) before the exception escapes. *)
  let give_up exn =
    ignore (E.unpost_recv t.emp reply);
    Conn.close conn;
    raise exn
  in
  let attempts = max 1 t.opts.Options.connect_attempts in
  (* The request (or its reply) can be lost: resend with exponential
     backoff. A reply of [-1] is an explicit refusal — final, no retry;
     exhausting the attempts without any reply is a timeout — the caller
     may retry later (the server may simply not have listened yet). *)
  let rec attempt n timeout =
    if n > 1 then begin
      Stats.Counter.incr t.mh.h_connect_retries;
      Trace.instant (Trace.for_sim (sim t)) ~layer:Trace.Substrate
        ~node:(node_id t) ~conn:id "sub.connect_retry"
        ~args:[ ("attempt", string_of_int n) ]
    end;
    ignore
      (Sendpool.send t.ctrl_pool ~dst:server.node
         ~tag:(Tags.make Tags.Conn_request server.port)
         (Codec.encode [ node_id t; id; local.port ]));
    match E.wait_recv_timeout t.emp reply timeout with
    | Some (len, _, _) when len >= Codec.int_bytes ->
      (match Codec.decode_region reply_region ~off:0 ~count:1 with
      | [ server_conn ] when server_conn >= 0 ->
        Conn.set_peer conn ~conn:server_conn ~addr:server;
        conn
      | [ _refused ] -> give_up (Refused server)
      | _ ->
        Codec.protocol_error
          "connect to node %d port %d: undecodable accept reply"
          server.Uls_api.Sockets_api.node server.Uls_api.Sockets_api.port)
    | Some _ ->
      Codec.protocol_error "connect to node %d port %d: truncated accept reply"
        server.Uls_api.Sockets_api.node server.Uls_api.Sockets_api.port
    | None ->
      if n < attempts then attempt (n + 1) (2 * timeout)
      else give_up (Timed_out server)
  in
  attempt 1 t.opts.Options.connect_timeout

let connect t (server : Uls_api.Sockets_api.addr) =
  if server.port < 0 || server.port > Tags.max_id then
    invalid_arg "substrate: port > 4095";
  Stats.Counter.incr t.mh.h_connects;
  Trace.span (Trace.for_sim (sim t)) ~layer:Trace.Substrate ~node:(node_id t)
    "sub.connect" (fun () -> connect_blocking t server)

(* --- cross-connection batched send ------------------------------------ *)

(* Gathered send across a connection group sharing this substrate: every
   batchable message is staged on its own connection's send pool, then
   the whole group goes through the endpoint's tx ring under a single
   doorbell. Per-connection staging is capped at the pool size (slot
   reuse would corrupt a staged, unposted message), and staging flushes
   before blocking on any connection's flow control. *)
let sendv t pairs =
  match pairs with
  | [] -> ()
  | [ (c, data) ] -> Conn.write c data
  | _ ->
    let staged = ref [] and count = ref 0 in
    let per_conn : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let flush () =
      if !count > 0 then begin
        let l = List.rev !staged in
        staged := [];
        count := 0;
        Hashtbl.reset per_conn;
        let sends = E.post_sendv t.emp (List.map snd l) in
        Sendpool.commit (List.map fst l) sends;
        ignore (E.reap_sent t.emp)
      end
    in
    List.iter
      (fun (c, data) ->
        let cid = Conn.id c in
        let n = Option.value ~default:0 (Hashtbl.find_opt per_conn cid) in
        if n >= Conn.data_pool_slots c then flush ();
        match Conn.stage_for_batch c data ~flush with
        | `Skip -> ()
        | `Staged sl ->
          staged := sl :: !staged;
          incr count;
          Hashtbl.replace per_conn cid
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_conn cid))
        | `Fallback ->
          flush ();
          Conn.write c data)
      pairs;
    flush ()

(* --- stack-agnostic API ------------------------------------------------ *)

let stream_of_conn (c : Conn.t) : Uls_api.Sockets_api.stream =
  {
    send = (fun data -> Conn.write c data);
    recv = (fun n -> Conn.read c n);
    close = (fun () -> Conn.close c);
    readable = (fun () -> Conn.readable c);
    watch = (fun f -> Conn.add_watcher c f);
    peer = (fun () -> Conn.peer_addr c);
    local = (fun () -> Conn.local_addr c);
  }

let api (subs : t array) : Uls_api.Sockets_api.stack =
  let name =
    if Array.length subs = 0 then "emp-substrate"
    else "emp-" ^ Options.mode_name subs.(0).opts
  in
  let listen ~node ~port ~backlog =
    let s = subs.(node) in
    let l = listen s ~port ~backlog in
    {
      Uls_api.Sockets_api.accept =
        (fun () ->
          let c, peer = accept s l in
          (stream_of_conn c, peer));
      try_accept =
        (fun () ->
          match try_accept s l with
          | Some (c, peer) -> Some (stream_of_conn c, peer)
          | None -> None);
      acceptable = (fun () -> acceptable l);
      watch_accept = (fun f -> add_accept_watcher l f);
      pending = (fun () -> listener_pending l);
      close_listener = (fun () -> close_listener s l);
    }
  in
  let connect ~node addr = stream_of_conn (connect subs.(node) addr) in
  let select ~node streams =
    let s = subs.(node) in
    let m = Metrics.for_sim (sim s) in
    let h_scans = Metrics.counter m ~node "api.select_scans" in
    let h_scanned = Metrics.counter m ~node "api.select_streams_scanned" in
    let ready () =
      (* The O(registered) scan the event engine exists to avoid; the
         counters let experiments compare it against evq wakeups. *)
      Stats.Counter.incr h_scans;
      Stats.Counter.add h_scanned (List.length streams);
      List.filter (fun (st : Uls_api.Sockets_api.stream) -> st.readable ()) streams
    in
    let rec wait () =
      match ready () with
      | _ :: _ as r -> r
      | [] ->
        Cond.wait s.activity;
        wait ()
    in
    wait ()
  in
  { Uls_api.Sockets_api.stack_name = name; listen; connect; select }
