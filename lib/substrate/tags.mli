(** 16-bit EMP tag layout used by the substrate: a 4-bit message kind and
    a 12-bit connection id (or listening port for connection requests).
    NIC-level tag matching thus separates connection management from
    data, and connection from connection — §5.1's "data message
    exchange" scheme. *)

type kind =
  | Conn_request  (** low bits: listening port *)
  | Conn_reply  (** low bits: client connection id *)
  | Data
  | Credit_ack
  | Rdvz_request
  | Rdvz_grant
  | Rdvz_data
  | Close

val kind_code : kind -> int

val kind_of_code : int -> kind
(** @raise Invalid_argument outside [0..7]. *)

val kind_name : kind -> string

val max_id : int
(** Largest connection id / port a tag can carry (0xFFF). *)

val make : kind -> int -> int
(** [make kind id] packs a tag. @raise Invalid_argument when [id] is out
    of range. *)

val split : int -> kind * int
