(** One substrate connection: N pre-posted data descriptors over credit
    buffers (eager scheme, §5.2), ack descriptors or unexpected-queue
    ack consumption (§6.4), rendezvous request/grant/data descriptors,
    and the "closed" control descriptor (§5.3). Send side implements
    credit-based flow control with delayed and piggy-backed
    acknowledgments (§6.1–6.3), plus the paper's rejected alternatives
    (pure rendezvous, separate communication thread, blocking send) for
    the ablation studies. *)

type env = {
  node : Uls_host.Node.t;
  emp : Uls_emp.Endpoint.t;
  opts : Options.t;
  ctrl_pool : Sendpool.t;  (** registered ring for small control messages *)
  notify : unit -> unit;  (** substrate activity hook for select() *)
  release_id : int -> unit;  (** drop from the active-socket table *)
}

type slot = {
  sl_region : Uls_host.Memory.region;
  mutable sl_current : Uls_emp.Endpoint.recv option;
}
(** A receive buffer with its currently posted descriptor (also used by
    the listener's backlog descriptors). *)

type t

val create :
  env ->
  id:int ->
  peer_node:int ->
  peer_conn:int ->
  local_addr:Uls_api.Sockets_api.addr ->
  peer_addr:Uls_api.Sockets_api.addr ->
  t
(** Builds the connection and posts all of its descriptors (the 2N+3
    provisioning of §6.1); spawns its receive/control fibers.
    [peer_conn] may be [-1] until {!set_peer} (client side). *)

val id : t -> int
val local_addr : t -> Uls_api.Sockets_api.addr
val peer_addr : t -> Uls_api.Sockets_api.addr
val peer_node : t -> int
val peer_conn : t -> int
(** Peer-side connection id; [-1] until {!set_peer}. The substrate's
    send-failure handler uses [(peer_node, peer_conn)] to route a failed
    send's tag back to its connection. *)

val set_peer : t -> conn:int -> addr:Uls_api.Sockets_api.addr -> unit

val write : t -> string -> unit
(** Blocking send honouring the configured scheme (eager+credits,
    rendezvous, or comm-thread). @raise Uls_api.Sockets_api.Connection_closed *)

val read : t -> int -> string
(** Blocking receive: byte-stream semantics in data-streaming mode,
    whole-message semantics in datagram mode; [""] at end of stream. *)

val writev : t -> string list -> unit
(** Gathered write: stages up to a send-pool's worth of single-chunk
    eager messages and posts them through the endpoint's tx ring under
    one doorbell ({!Uls_emp.Endpoint.post_sendv}); substrate
    bookkeeping ([write_overhead]) is paid once per call. Messages that
    cannot ride a batch (rendezvous-sized, blocking-send or comm-thread
    schemes) flush what is staged — preserving FIFO order — and take the
    per-call path. [writev t [m]] is byte-identical to [write t m]. *)

val readv : t -> max:int -> string list
(** Batched read: blocks for the first available item, then drains every
    consecutive ready message (up to [max]) without further blocking.
    Each element is one whole message (datagram) or the remaining bytes
    of the next message (streaming). With [Options.rx_ring] set, all
    consumed data slots are reposted through the fill ring in one batch
    ({!Uls_emp.Endpoint.post_recv_batch}); otherwise reposting is
    per-message, exactly as {!read}. [[]] means end of stream. *)

val stage_for_batch :
  t ->
  string ->
  flush:(unit -> unit) ->
  [ `Skip
  | `Fallback
  | `Staged of
    Sendpool.slot * (int * int * Uls_host.Memory.region * int * int) ]
(** Building block for cross-connection batches ([Substrate.sendv]):
    claim a send-pool slot for one eager message and return it with its
    [post_sendv] spec. [`Skip] for empty payloads, [`Fallback] when the
    message cannot ride a batch (caller must flush staged specs first,
    then {!write}). [flush] is invoked before blocking on flow control
    so staged-but-unposted messages get onto the wire and can earn their
    credits back. *)

val data_pool_slots : t -> int
(** Send-pool capacity: a batch must flush before staging more than this
    many messages on one connection (slot reuse would corrupt a staged,
    unposted message). *)

val readable : t -> bool

val add_watcher : t -> (unit -> unit) -> unit
(** Register a readiness watcher: invoked on every event that may make
    {!read} non-blocking (data or rendezvous-request arrival, peer
    close, reset). Spurious invocations allowed; watchers persist for
    the connection's lifetime. The event engine's O(ready) wakeup path
    (vs the node-wide [select] activity broadcast). *)

val close : t -> unit
(** Sends the "closed" control message (sequence-numbered so it cannot
    overtake in-flight data) and unposts every descriptor. The message is
    retransmitted with backoff if EMP exhausts its retries — a peer that
    never hears it would keep its descriptors posted forever. Idempotent. *)

val mark_reset : t -> unit
(** The transport gave up on a message of this connection (peer
    unreachable): unposts every descriptor, wakes all blocked fibers, and
    makes subsequent {!read}/{!write} raise
    [Uls_api.Sockets_api.Connection_reset]. Idempotent; no-op after
    {!close}. *)

val is_reset : t -> bool
val is_closed : t -> bool

val leaked_slots : t -> int
(** Receive slots whose descriptor is still posted. Meaningful after
    {!close}/{!mark_reset}, where any non-zero count is a descriptor
    leak — the analysis layer's leak sanitizer checks this. *)

val add_credits : t -> int -> unit
(** Restore send credits (the receive path's grant entry: piggy-backed
    header fields and credit-ack messages land here). The credit-range
    monitor ([sub.credit_range]) fires when a grant pushes credits past
    the provisioned window — a double-granted ack. Exposed so the
    sanitizer tests can inject exactly that known-bad grant. *)

val debug_leak_slot : t -> unit
(** Test fixture: re-post one receive slot as if {!close} had missed it,
    so the leak sanitizer has a real leaked descriptor to find. Must be
    called from a fiber. *)
