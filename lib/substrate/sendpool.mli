(** Ring of reusable, registered send buffers. The real substrate
    transmits from user/library buffers that are pinned once and hit the
    EMP translation cache afterwards (§2); modelling each message as a
    fresh region would charge a pin system call per send. A slot is
    reused once its previous send has been fully acknowledged. *)

type t

val create :
  Uls_host.Node.t -> Uls_emp.Endpoint.t -> slots:int -> size:int -> t
(** Allocate and register [slots] ring buffers of [size] bytes each. *)

val slot_size : t -> int

val slots : t -> int
(** Number of ring slots (batch staging must flush before wrapping). *)

val send : t -> dst:int -> tag:int -> string -> Uls_emp.Endpoint.send
(** Copy the payload into the next ring slot and post the send. Blocks
    only when the ring wraps onto a send that is still in flight. The
    blit is free of simulated cost: it models the application reusing
    its own (already pinned) buffer, not an extra protocol copy. *)

type slot

val stage :
  t ->
  dst:int ->
  tag:int ->
  string ->
  slot * (int * int * Uls_host.Memory.region * int * int)
(** Claim the next ring slot and copy the payload in without posting,
    returning the slot and the [(dst, tag, region, off, len)] spec for
    {!Uls_emp.Endpoint.post_sendv}. Blocks like {!send} when the ring
    wraps onto an in-flight send. Pair with {!commit} once the batch is
    posted. *)

val commit : slot list -> Uls_emp.Endpoint.send list -> unit
(** Record the posted sends against their staged slots (same order), so
    later slot reuse waits for them. *)

val in_flight : t -> int
(** Slots whose send is neither acknowledged nor failed. At quiescence a
    non-zero count means acknowledgments can no longer arrive — the
    memory-region leak sanitizer flags it. *)

val pools_for_sim : Uls_engine.Sim.t -> t list
(** Every pool created under this simulation (for the leak scan). *)
