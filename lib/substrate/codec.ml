(** Fixed-width little-endian integer framing for the substrate's
    control messages and eager-data headers. *)

let int_bytes = 8

exception Protocol_error of string
(** A peer sent a control message the substrate cannot decode (wrong
    size or shape). Raised instead of asserting so the failure names the
    connection and message kind. *)

let protocol_error fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let encode ints =
  let b = Bytes.create (int_bytes * List.length ints) in
  List.iteri (fun i v -> Bytes.set_int64_le b (i * int_bytes) (Int64.of_int v)) ints;
  Bytes.to_string b

let decode ?(count = -1) s =
  let n = String.length s / int_bytes in
  let n = if count >= 0 then min count n else n in
  List.init n (fun i ->
      Int64.to_int (Bytes.get_int64_le (Bytes.of_string s) (i * int_bytes)))

let decode_region region ~off ~count =
  List.init count (fun i ->
      Int64.to_int
        (Bytes.get_int64_le (Uls_host.Memory.bytes region) (off + (i * int_bytes))))
