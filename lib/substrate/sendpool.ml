(** Ring of reusable, registered send buffers. The real substrate
    transmits from user/library buffers that are pinned once and hit the
    EMP translation cache afterwards (§2); modelling each message as a
    fresh region would charge a pin system call per send. A slot is
    reused once its previous send has been fully acknowledged. *)

open Uls_host
module E = Uls_emp.Endpoint

type slot = {
  region : Memory.region;
  mutable pending : E.send option;
}

type t = {
  emp : E.t;
  slots : slot array;
  mutable next : int;
}

(* Every pool of a simulation, for the analysis layer's leak scan (keyed
   by Sim uid, like Metrics). *)
let registry : (int, t list ref) Hashtbl.t = Hashtbl.create 8

let pools_for_sim sim =
  match Hashtbl.find_opt registry (Uls_engine.Sim.uid sim) with
  | Some l -> !l
  | None -> []

let create node emp ~slots ~size =
  let mk _ =
    let region = Memory.alloc size in
    (* Ring buffers are registered at pool-creation (connection setup)
       time, so steady-state sends always hit the translation cache. *)
    Os.prepin (Node.os node) region;
    { region; pending = None }
  in
  let t = { emp; slots = Array.init slots mk; next = 0 } in
  let key = Uls_engine.Sim.uid (Node.sim node) in
  (match Hashtbl.find_opt registry key with
  | Some l -> l := t :: !l
  | None -> Hashtbl.replace registry key (ref [ t ]));
  t

let in_flight t =
  Array.fold_left
    (fun acc slot ->
      match slot.pending with
      | Some s when (not (E.send_done s)) && not (E.send_failed s) -> acc + 1
      | _ -> acc)
    0 t.slots

let slot_size t = Memory.length t.slots.(0).region
let slots t = Array.length t.slots

(** Copy [data] into the next ring slot and post the send. Blocks only
    when the ring wraps onto a send that is still in flight. The blit is
    free of simulated cost: it models the application reusing its own
    (already pinned) buffer, not an extra protocol copy. *)
let claim_slot t =
  let slot = t.slots.(t.next) in
  t.next <- (t.next + 1) mod Array.length t.slots;
  (match slot.pending with
  | Some s when not (E.send_done s) -> (
    (* A failed earlier send (peer closed mid-retransmission) still
       frees the slot. *)
    try E.wait_send t.emp s with E.Send_failed _ -> ())
  | _ -> ());
  slot.pending <- None;
  slot

let send t ~dst ~tag data =
  let len = String.length data in
  if len > slot_size t then invalid_arg "Sendpool.send: message too large";
  let slot = claim_slot t in
  Memory.blit_from_string data slot.region ~off:0;
  let s = E.post_send t.emp ~dst ~tag slot.region ~off:0 ~len in
  slot.pending <- Some s;
  s

(** Claim a slot and fill it without posting: the batched path stages
    several messages, then submits them all through the endpoint's tx
    ring under one doorbell ([Endpoint.post_sendv]); [commit] records
    the resulting sends so slot reuse still waits on them. *)
let stage t ~dst ~tag data =
  let len = String.length data in
  if len > slot_size t then invalid_arg "Sendpool.stage: message too large";
  let slot = claim_slot t in
  Memory.blit_from_string data slot.region ~off:0;
  (slot, (dst, tag, slot.region, 0, len))

let commit slots sends = List.iter2 (fun slot s -> slot.pending <- Some s) slots sends
