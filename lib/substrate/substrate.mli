(** The EMP substrate (the paper's contribution): a per-node user-level
    library mapping the sockets interface onto EMP (Figure 5).

    Connection management uses the data-message-exchange scheme of §5.1:
    [listen] pre-posts [backlog] connection-request descriptors on the
    port's tag, [connect] sends an explicit request message carrying the
    client's identity and waits for the reply; NIC-level tag matching
    separates connection traffic from data. An active-socket table tracks
    every open connection so close reclaims all NIC descriptors (§5.3).

    Most users go through {!api}, which packages substrate instances as a
    stack-agnostic {!Uls_api.Sockets_api.stack}. *)

type t
type listener
type request

val create : ?opts:Options.t -> Uls_host.Node.t -> Uls_emp.Endpoint.t -> t
(** One substrate instance per node. With the unexpected-queue option on,
    this provisions EMP UQ slots for credit-ack traffic (§6.4). *)

val node_id : t -> int
val options : t -> Options.t
val emp : t -> Uls_emp.Endpoint.t
val activity : t -> Uls_engine.Cond.t
(** Broadcast whenever any socket of this node becomes ready; the
    [select] implementation blocks on it. *)

val active_connections : t -> int
(** Size of the active-socket table (§5.3). *)

val conn_ids : t -> int list
(** Ids of every open connection, sorted — the race detector hashes this
    connection table into its final-state fingerprint. *)

val conns : t -> Conn.t list
(** The open connections themselves, sorted by id (the leak sanitizer
    walks them). *)

val listen : t -> port:int -> backlog:int -> listener
(** Pre-posts [backlog] connection-request descriptors. Ports are 12-bit
    (tag-encoded). @raise Uls_api.Sockets_api.Bind_in_use *)

val accept : t -> listener -> Conn.t * Uls_api.Sockets_api.addr
(** Block for the next queued request, build the connection (posting its
    2N+3 descriptors), reply to the client. *)

val try_accept : t -> listener -> (Conn.t * Uls_api.Sockets_api.addr) option
(** Non-blocking accept. Resolves duplicate connection requests (a
    retried connect whose reply was lost) by resending the reply, so
    [None] really means "nothing fresh" — unlike [acceptable], which a
    queued duplicate makes true without a blocking [accept] being safe. *)

val acceptable : listener -> bool

val listener_pending : listener -> int
(** Connection requests queued and not yet accepted (backlog occupancy). *)

val add_accept_watcher : listener -> (unit -> unit) -> unit
(** Register an accept-readiness watcher: fired when a connection
    request is queued and when the listener closes. *)

val close_listener : t -> listener -> unit

val connect : t -> Uls_api.Sockets_api.addr -> Conn.t
(** Send the connection request and wait for the server's reply,
    resending with exponential backoff up to
    [Options.connect_attempts] times (the request or its reply can be
    lost on the wire). The server deduplicates retried requests against
    its accepted table, so a lost reply never yields two connections.
    @raise Uls_api.Sockets_api.Connection_refused when the server
    explicitly declines (no listener on the port — detected by the
    server's unexpected-queue refusal scanner when the UQ option is on).
    @raise Uls_api.Sockets_api.Connection_timeout when every attempt
    went unanswered; on either failure the half-built connection is torn
    down and removed from the active-socket table. *)

val sendv : t -> (Conn.t * string) list -> unit
(** Gathered send across a connection group on this substrate: stages
    every batchable message on its connection's registered send pool and
    posts the whole group through the endpoint's tx ring under a single
    doorbell ({!Uls_emp.Endpoint.post_sendv}). Messages that cannot ride
    a batch (rendezvous-sized, blocking-send/comm-thread schemes) flush
    what is staged — preserving per-connection FIFO order — and fall
    back to {!Conn.write}. A singleton degenerates to {!Conn.write}
    exactly; the batched receive counterpart is {!Conn.readv}. *)

val stream_of_conn : Conn.t -> Uls_api.Sockets_api.stream

val api : t array -> Uls_api.Sockets_api.stack
(** Package one substrate per node as a sockets stack (the array index is
    the node id). *)
