(** 16-bit EMP tag layout used by the substrate: a 4-bit message kind and
    a 12-bit connection id (or listening port for connection requests).
    NIC-level tag matching thus separates connection management from
    data, and connection from connection — §5.1's "data message
    exchange" scheme. *)

type kind =
  | Conn_request  (** low bits: listening port *)
  | Conn_reply  (** low bits: client connection id *)
  | Data
  | Credit_ack
  | Rdvz_request
  | Rdvz_grant
  | Rdvz_data
  | Close

let kind_code = function
  | Conn_request -> 0
  | Conn_reply -> 1
  | Data -> 2
  | Credit_ack -> 3
  | Rdvz_request -> 4
  | Rdvz_grant -> 5
  | Rdvz_data -> 6
  | Close -> 7

let kind_of_code = function
  | 0 -> Conn_request
  | 1 -> Conn_reply
  | 2 -> Data
  | 3 -> Credit_ack
  | 4 -> Rdvz_request
  | 5 -> Rdvz_grant
  | 6 -> Rdvz_data
  | 7 -> Close
  | c -> invalid_arg (Printf.sprintf "Tags.kind_of_code: %d" c)

let kind_name = function
  | Conn_request -> "conn_request"
  | Conn_reply -> "conn_reply"
  | Data -> "data"
  | Credit_ack -> "credit_ack"
  | Rdvz_request -> "rdvz_request"
  | Rdvz_grant -> "rdvz_grant"
  | Rdvz_data -> "rdvz_data"
  | Close -> "close"

let max_id = 0xFFF

let make kind id =
  if id < 0 || id > max_id then invalid_arg "Tags.make: id out of range";
  (kind_code kind lsl 12) lor id

let split tag = (kind_of_code ((tag lsr 12) land 0xF), tag land max_id)
