(** Substrate configuration: every design alternative and performance
    enhancement of §5–6 is a knob here, so the evaluation can ablate
    them exactly as the paper does (DS, DS_DA, DS_DA_UQ, DG, rendezvous
    vs eager, piggy-backed acks, credit size). *)

type mode =
  | Data_streaming  (** TCP semantics: reads may split message boundaries *)
  | Datagram  (** §6.2: boundaries preserved; zero-copy large messages *)

type scheme =
  | Eager  (** eager with credit-based flow control (§5.2, §6.1) *)
  | Rendezvous  (** request/grant synchronisation for every message *)
  | Comm_thread
      (** §5.2's first (rejected) alternative: a separate communication
          thread reposts descriptors as messages arrive. No credits or
          acks, but each message pays the ~20 us thread-synchronisation
          cost the paper measured, and an unresponsive reader exhausts
          the spare buffers (recovered by EMP retransmission). *)

type t = {
  mode : mode;
  scheme : scheme;
  credits : int;  (** N: outstanding unconsumed messages allowed *)
  buffer_size : int;  (** per-credit temporary buffer (paper: 64 KB) *)
  delayed_acks : bool;  (** §6.3: ack after N/2 consumed, not every one *)
  unexpected_queue : bool;  (** §6.4: ack buffers live in the EMP UQ *)
  piggyback : bool;  (** §6.1: fold credit returns into reverse data *)
  block_send : bool;
      (** §6.1's (rejected) "blocking the send" alternative: every write
          waits for the receiver's acknowledgment, costing a round trip
          per send but never deadlocking. *)
  comm_thread_sync : Uls_engine.Time.ns;
      (** per-message polling-thread synchronisation cost (paper: ~20 us) *)
  eager_max : int;  (** Datagram mode: larger writes use rendezvous *)
  write_overhead : Uls_engine.Time.ns;  (** substrate bookkeeping per write *)
  read_overhead : Uls_engine.Time.ns;
  connect_timeout : Uls_engine.Time.ns;
  connect_attempts : int;
      (** connection requests resent before giving up: the request (or
          its reply) can be lost on the wire, and connection setup has
          no EMP descriptor waiting on the server until [listen] ran.
          Each attempt doubles the previous wait (exponential backoff). *)
  backlog_request_bytes : int;
  rx_ring : bool;
      (** Batched descriptor reposting: [readv] returns consumed data
          slots to the NIC through the endpoint's fill ring
          ([Endpoint.post_recv_batch] — one doorbell and one descriptor
          fetch batch per drain) instead of one [post_recv] per message.
          Off by default so the per-call path is byte-identical to the
          pre-ring substrate. *)
}

let header_bytes = 16
(** Eager data-message header: [seq; piggybacked credits]. *)

let data_streaming =
  {
    mode = Data_streaming;
    scheme = Eager;
    credits = 32;
    buffer_size = 65_536;
    delayed_acks = false;
    unexpected_queue = false;
    piggyback = false;
    block_send = false;
    comm_thread_sync = 20_000;
    eager_max = max_int;
    write_overhead = 1_500;
    read_overhead = 1_800;
    connect_timeout = Uls_engine.Time.ms 50;
    connect_attempts = 4;
    backlog_request_bytes = 64;
    rx_ring = false;
  }

(** DS with all enhancements on: the paper's DS_DA_UQ configuration. *)
let data_streaming_enhanced =
  { data_streaming with delayed_acks = true; unexpected_queue = true }

(** Serving configuration: DS with every enhancement on, but provisioned
    for thousands of concurrent connections rather than two bulk
    streams. Small credit counts and buffers keep the per-connection
    descriptor and memory footprint low (2N+3 descriptors each, §5.3),
    and piggy-backed acks matter more than ever: request/response
    traffic always has a reverse write to carry credits, so explicit
    ack messages (and their unexpected-queue walks) mostly vanish. *)
let server =
  {
    data_streaming_enhanced with
    credits = 4;
    buffer_size = 2_048;
    piggyback = true;
  }

let datagram =
  {
    data_streaming with
    mode = Datagram;
    delayed_acks = true;
    unexpected_queue = true;
    eager_max = 16_384;
    write_overhead = 300;
    read_overhead = 400;
  }

let chunk_capacity t = t.buffer_size - header_bytes

let ack_threshold t =
  (* Blocking sends need an ack per message to make progress. *)
  if t.block_send then 1
  else if t.delayed_acks then max 1 (t.credits / 2)
  else 1

let mode_name t =
  match t.mode with Data_streaming -> "DS" | Datagram -> "DG"
