(** One substrate connection.

    Receive side: N pre-posted data descriptors pointing at temporary
    credit buffers (eager scheme, §5.2), plus either N pre-posted ack
    descriptors or unexpected-queue ack consumption (§6.4), plus one
    descriptor each for rendezvous requests, rendezvous grants and the
    "closed" control message (§5.3). Send side: credit-based flow
    control with delayed and piggy-backed acknowledgments (§6.1–6.3).
    Messages carry a per-connection sequence number so eager and
    rendezvous traffic interleave in FIFO order at the reader. *)

open Uls_engine
open Uls_host
module E = Uls_emp.Endpoint

type env = {
  node : Node.t;
  emp : E.t;
  opts : Options.t;
  ctrl_pool : Sendpool.t;  (* registered ring for small control messages *)
  notify : unit -> unit;
  release_id : int -> unit;
}

type slot = {
  sl_region : Memory.region;
  mutable sl_current : E.recv option;
}

type ready = {
  rd_seq : int;
  rd_slot : slot;
  rd_len : int; (* payload bytes *)
  mutable rd_off : int; (* consumed payload bytes (streaming reads) *)
}

type rdvz_req = {
  rq_seq : int;
  rq_id : int;
  rq_size : int;
}

(* Metric handles resolved once at create: stream reads/writes bump a
   counter cell directly instead of a per-call registry lookup. *)
type handles = {
  h_credit_acks_sent : Stats.Counter.t;
  h_credit_wait_us : Stats.Summary.t;
  h_rdvz_grant_wait_us : Stats.Summary.t;
  h_writes : Stats.Counter.t;
  h_bytes_written : Stats.Counter.t;
  h_ack_holdoffs_armed : Stats.Counter.t;
  h_reads : Stats.Counter.t;
  h_bytes_read : Stats.Counter.t;
  h_close_retries : Stats.Counter.t;
  h_resets : Stats.Counter.t;
}

type t = {
  env : env;
  id : int;
  peer_node : int;
  mutable peer_conn : int;
  local_addr : Uls_api.Sockets_api.addr;
  mutable peer_addr : Uls_api.Sockets_api.addr;
  (* send side *)
  mutable credits : int;
  credits_c : Cond.t;
  mutable next_seq : int;
  mutable next_rdvz : int;
  data_pool : Sendpool.t;
  mutable rdvz_tx : Memory.region;  (* grow-on-demand registered buffer *)
  mutable rdvz_tx_pending : E.send option;
  mutable rdvz_rx : Memory.region;
  granted : (int, unit) Hashtbl.t;
  (** rendezvous grants received but not yet claimed, keyed by rid:
      concurrent writers must each pick up their own grant *)
  grant_c : Cond.t;
  mutable rdvz_leftover : string;
  (** Data_streaming only: tail of a rendezvous message the reader
      asked too few bytes for — served by subsequent reads *)
  (* receive side *)
  data_slots : slot array;
  spare_slots : slot Queue.t;  (* Comm_thread scheme: repost pool *)
  ack_slots : slot array;
  req_slot : slot;
  grant_slot : slot;
  close_slot : slot;
  rx_handles : (slot * E.recv) Mailbox.t;
  rx_ready : (int, ready) Hashtbl.t;
      (** keyed by sequence number: under loss, EMP messages complete out
          of order (a retransmitted message finishes after its
          successors), so the reader must look up the sequence it needs —
          a FIFO head-peek would deadlock on the first reordering *)
  req_q : (int, rdvz_req) Hashtbl.t;  (** same, for rendezvous requests *)
  mutable expected_seq : int;
  mutable consumed_since_ack : int;
  mutable ack_holdoff_armed : bool;
  readable_c : Cond.t;
  mutable peer_closed : bool;
  mutable close_seq : int;
  (** sequence number carried by the peer's "closed" message: messages
      below it are still due and must be delivered before EOF (a short
      close message can physically overtake a long data message) *)
  mutable closed : bool;
  mutable reset : bool;
  (** the transport exhausted its retransmissions on a message of this
      connection: the peer is unreachable, nothing further will be
      delivered in either direction *)
  mutable watchers : (unit -> unit) list;
  (** per-connection readiness watchers (the event engine's O(ready)
      notification path); fired on data arrival, EOF and reset *)
  metrics : Metrics.t;
  mh : handles;
  trace : Trace.t;
  inv : Invariant.t;
}

exception Closed = Uls_api.Sockets_api.Connection_closed
exception Reset = Uls_api.Sockets_api.Connection_reset

let opts t = t.env.opts
let sim t = Node.sim t.env.node
let node_id t = Node.id t.env.node
let id t = t.id
let local_addr t = t.local_addr
let peer_addr t = t.peer_addr
let peer_node t = t.peer_node
let peer_conn t = t.peer_conn
let set_peer t ~conn ~addr =
  t.peer_conn <- conn;
  t.peer_addr <- addr

let add_watcher t f = t.watchers <- f :: t.watchers
let fire_watchers t = List.iter (fun f -> f ()) t.watchers

(* Readability changed (message arrival, EOF): wake blocked readers, the
   node-wide select scan, and the per-connection watchers. *)
let notify_ready t =
  Cond.broadcast t.readable_c;
  t.env.notify ();
  fire_watchers t

let wake_all t =
  Cond.broadcast t.readable_c;
  Cond.broadcast t.credits_c;
  (* Unblock every writer waiting for a rendezvous grant (Figure 7: the
     grant will never come once either side is closed). *)
  Cond.broadcast t.grant_c;
  t.env.notify ();
  fire_watchers t

(* --- outgoing messages ---------------------------------------------- *)

let post_ctrl t ~tag data =
  ignore (Sendpool.send t.env.ctrl_pool ~dst:t.peer_node ~tag data)

let post_data t ~tag data =
  ignore (Sendpool.send t.data_pool ~dst:t.peer_node ~tag data)

let send_credit_ack t =
  if t.consumed_since_ack > 0 && t.peer_conn >= 0 && not t.peer_closed then begin
    let count = t.consumed_since_ack in
    t.consumed_since_ack <- 0;
    Stats.Counter.incr t.mh.h_credit_acks_sent;
    Trace.instant t.trace ~layer:Trace.Substrate ~node:(node_id t) ~conn:t.id
      "sub.credit_ack"
      ~args:[ ("credits", string_of_int count) ];
    post_ctrl t ~tag:(Tags.make Tags.Credit_ack t.peer_conn) (Codec.encode [ count ])
  end

let piggyback_credits t =
  if (opts t).Options.piggyback && t.consumed_since_ack > 0 then begin
    let c = t.consumed_since_ack in
    t.consumed_since_ack <- 0;
    c
  end
  else 0

let take_credit t =
  let rec wait () =
    if t.reset then raise Reset;
    if t.closed || t.peer_closed then raise Closed;
    if t.credits = 0 then begin
      Cond.wait t.credits_c;
      wait ()
    end
    else begin
      t.credits <- t.credits - 1;
      Invariant.check t.inv ~name:"sub.credit_range" (t.credits >= 0)
        (fun () ->
          Printf.sprintf "conn %d: credits went negative (%d)" t.id t.credits)
    end
  in
  if t.credits = 0 && not (t.closed || t.peer_closed || t.reset) then begin
    (* Writer stalled on flow control: account how long (§6.1). *)
    let t0 = Sim.now (sim t) in
    let id =
      Trace.span_begin t.trace ~layer:Trace.Substrate ~node:(node_id t)
        ~conn:t.id "sub.credit_wait"
    in
    Fun.protect
      ~finally:(fun () ->
        Trace.span_end t.trace ~layer:Trace.Substrate ~node:(node_id t)
          ~conn:t.id "sub.credit_wait" id;
        Stats.Summary.add t.mh.h_credit_wait_us
          (float_of_int (Sim.now (sim t) - t0) /. 1_000.))
      wait
  end
  else wait ()

let add_credits t n =
  if n > 0 then begin
    t.credits <- t.credits + n;
    (* Conservation (§6.1): the receiver acks exactly what it consumed,
       so restored credits can never exceed the provisioned window — a
       double-granted ack shows up here. *)
    Invariant.check t.inv ~name:"sub.credit_range"
      (t.credits <= (opts t).Options.credits)
      (fun () ->
        Printf.sprintf "conn %d: credits %d exceed window %d (double grant?)"
          t.id t.credits (opts t).Options.credits);
    Cond.broadcast t.credits_c
  end

(* --- descriptor posting ---------------------------------------------- *)

let post_slot t slot ~tag =
  let r =
    E.post_recv t.env.emp ~src:t.peer_node ~tag slot.sl_region ~off:0
      ~len:(Memory.length slot.sl_region)
  in
  slot.sl_current <- Some r;
  r

let repost_data_slot t slot =
  let r = post_slot t slot ~tag:(Tags.make Tags.Data t.id) in
  Mailbox.send t.rx_handles (slot, r)

(* --- receive fibers --------------------------------------------------- *)

let rx_fiber t () =
  let rec loop () =
    let slot, recv = Mailbox.recv t.rx_handles in
    let len, _, _ = E.wait_recv t.env.emp recv in
    if len >= 0 && not t.closed then begin
      slot.sl_current <- None;
      if len < Options.header_bytes then
        Codec.protocol_error
          "conn %d: data message from node %d too short for its header (%d B < %d B)"
          t.id t.peer_node len Options.header_bytes;
      match Codec.decode_region slot.sl_region ~off:0 ~count:2 with
      | [ seq; piggy ] ->
        add_credits t piggy;
        if (opts t).Options.scheme = Options.Comm_thread then begin
          (* The communication thread notices the used descriptor and
             reposts a spare at once — paying the polling-thread
             synchronisation cost the paper measured (§5.2). *)
          Node.compute t.env.node (opts t).Options.comm_thread_sync;
          match Queue.take_opt t.spare_slots with
          | Some spare -> repost_data_slot t spare
          | None -> ()
        end;
        Hashtbl.replace t.rx_ready seq
          { rd_seq = seq; rd_slot = slot;
            rd_len = len - Options.header_bytes; rd_off = 0 };
        notify_ready t;
        loop ()
      | _ ->
        Codec.protocol_error "conn %d: undecodable data header from node %d"
          t.id t.peer_node
    end
  in
  loop ()

let ack_fiber t slot () =
  let rec loop () =
    match slot.sl_current with
    | None -> ()
    | Some recv ->
      let len, _, _ = E.wait_recv t.env.emp recv in
      if len >= 0 && not t.closed then begin
        if len < Codec.int_bytes then
          Codec.protocol_error
            "conn %d: credit ack from node %d too short (%d B < %d B)" t.id
            t.peer_node len Codec.int_bytes;
        (match Codec.decode_region slot.sl_region ~off:0 ~count:1 with
        | [ count ] -> add_credits t count
        | _ ->
          Codec.protocol_error "conn %d: undecodable credit ack from node %d"
            t.id t.peer_node);
        ignore (post_slot t slot ~tag:(Tags.make Tags.Credit_ack t.id));
        loop ()
      end
  in
  loop ()

(* §6.4: with the unexpected-queue option, ack messages carry no
   pre-posted descriptor at all — they land in the EMP unexpected queue
   (walked last), keeping the data-descriptor match walk short. *)
let uq_ack_fiber t () =
  let tag = Tags.make Tags.Credit_ack t.id in
  let region = Memory.alloc 16 in
  Os.prepin (Node.os t.env.node) region;
  let rec loop () =
    if t.closed || t.reset then ()
    else if E.uq_has_match t.env.emp ~src:t.peer_node ~tag then begin
      let r = E.post_recv t.env.emp ~src:t.peer_node ~tag region ~off:0 ~len:16 in
      let len, _, _ = E.wait_recv t.env.emp r in
      if len >= 0 then begin
        if len < Codec.int_bytes then
          Codec.protocol_error
            "conn %d: unexpected-queue credit ack from node %d too short (%d B)"
            t.id t.peer_node len;
        (match Codec.decode_region region ~off:0 ~count:1 with
        | [ count ] -> add_credits t count
        | _ ->
          Codec.protocol_error
            "conn %d: undecodable unexpected-queue credit ack from node %d"
            t.id t.peer_node);
        loop ()
      end
    end
    else begin
      (* Event-driven: the endpoint broadcasts on UQ arrivals, and close
         broadcasts too so this fiber can exit. *)
      Cond.wait (E.uq_arrival_cond t.env.emp);
      loop ()
    end
  in
  loop ()

let req_fiber t () =
  let rec loop () =
    match t.req_slot.sl_current with
    | None -> ()
    | Some recv ->
      let len, _, _ = E.wait_recv t.env.emp recv in
      if len >= 0 && not t.closed then begin
        if len < 3 * Codec.int_bytes then
          Codec.protocol_error
            "conn %d: rendezvous request from node %d too short (%d B < %d B)"
            t.id t.peer_node len (3 * Codec.int_bytes);
        (match Codec.decode_region t.req_slot.sl_region ~off:0 ~count:3 with
        | [ seq; rid; size ] ->
          ignore (post_slot t t.req_slot ~tag:(Tags.make Tags.Rdvz_request t.id));
          Hashtbl.replace t.req_q seq { rq_seq = seq; rq_id = rid; rq_size = size };
          notify_ready t
        | _ ->
          Codec.protocol_error
            "conn %d: undecodable rendezvous request from node %d" t.id
            t.peer_node);
        loop ()
      end
  in
  loop ()

let grant_fiber t () =
  let rec loop () =
    match t.grant_slot.sl_current with
    | None -> ()
    | Some recv ->
      let len, _, _ = E.wait_recv t.env.emp recv in
      if len >= 0 && not t.closed then begin
        if len < Codec.int_bytes then
          Codec.protocol_error
            "conn %d: rendezvous grant from node %d too short (%d B)" t.id
            t.peer_node len;
        (match Codec.decode_region t.grant_slot.sl_region ~off:0 ~count:1 with
        | [ rid ] ->
          ignore (post_slot t t.grant_slot ~tag:(Tags.make Tags.Rdvz_grant t.id));
          Hashtbl.replace t.granted rid ();
          Cond.broadcast t.grant_c
        | _ ->
          Codec.protocol_error
            "conn %d: undecodable rendezvous grant from node %d" t.id
            t.peer_node);
        loop ()
      end
  in
  loop ()

let close_watch_fiber t () =
  match t.close_slot.sl_current with
  | None -> ()
  | Some recv ->
    let len, _, _ = E.wait_recv t.env.emp recv in
    if len >= 0 then begin
      if len < Codec.int_bytes then
        Codec.protocol_error
          "conn %d: close message from node %d too short (%d B < %d B)" t.id
          t.peer_node len Codec.int_bytes;
      (match Codec.decode_region t.close_slot.sl_region ~off:0 ~count:1 with
      | [ seq ] -> t.close_seq <- seq
      | _ ->
        (* Treating this as "close at seq 0" would discard in-flight
           data still due to the reader. *)
        Codec.protocol_error "conn %d: undecodable close message from node %d"
          t.id t.peer_node);
      t.peer_closed <- true;
      wake_all t
    end

(* --- write ------------------------------------------------------------ *)

(* The rendezvous transmit buffer stands in for the application's own
   (reused, hence pin-cached) large buffer; it grows when a bigger write
   appears, paying the pin for the new region — as a real first-time
   registration would. *)
let rdvz_tx_region t len =
  (match t.rdvz_tx_pending with
  | Some s when not (E.send_done s) -> (
    try E.wait_send t.env.emp s with E.Send_failed _ -> ())
  | _ -> ());
  t.rdvz_tx_pending <- None;
  if Memory.length t.rdvz_tx < len then t.rdvz_tx <- Memory.alloc len;
  t.rdvz_tx

let rendezvous_write t data =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.next_rdvz <- t.next_rdvz + 1;
  let rid = t.next_rdvz in
  Trace.instant t.trace ~layer:Trace.Substrate ~node:(node_id t) ~conn:t.id
    ~seq "sub.rdvz_request"
    ~args:[ ("rid", string_of_int rid); ("len", string_of_int (String.length data)) ];
  post_ctrl t
    ~tag:(Tags.make Tags.Rdvz_request t.peer_conn)
    (Codec.encode [ seq; rid; String.length data ]);
  (* Block until the receiver has synchronised (Figure 6). Grants are
     routed by rid so concurrent writers each claim their own. *)
  let grant_wait =
    Trace.span_begin t.trace ~layer:Trace.Substrate ~node:(node_id t)
      ~conn:t.id ~seq "sub.rdvz_grant_wait"
  in
  let t0 = Sim.now (sim t) in
  Cond.wait_until t.grant_c (fun () ->
      t.closed || t.peer_closed || t.reset || Hashtbl.mem t.granted rid);
  Trace.span_end t.trace ~layer:Trace.Substrate ~node:(node_id t) ~conn:t.id
    ~seq "sub.rdvz_grant_wait" grant_wait;
  Stats.Summary.add t.mh.h_rdvz_grant_wait_us
    (float_of_int (Sim.now (sim t) - t0) /. 1_000.);
  if t.reset then raise Reset;
  if not (Hashtbl.mem t.granted rid) then raise Closed;
  Hashtbl.remove t.granted rid;
  if t.closed || t.peer_closed then raise Closed;
  let region = rdvz_tx_region t (String.length data) in
  Memory.blit_from_string data region ~off:0;
  let s =
    E.post_send t.env.emp ~dst:t.peer_node
      ~tag:(Tags.make Tags.Rdvz_data t.peer_conn)
      region ~off:0 ~len:(String.length data)
  in
  t.rdvz_tx_pending <- Some s

let eager_write t data =
  let o = opts t in
  let cap = Options.chunk_capacity o in
  let len = String.length data in
  let uses_credits = o.Options.scheme <> Options.Comm_thread in
  let rec chunks off =
    if off < len then begin
      let n = min cap (len - off) in
      if uses_credits then take_credit t;
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      let hdr = Codec.encode [ seq; piggyback_credits t ] in
      post_data t
        ~tag:(Tags.make Tags.Data t.peer_conn)
        (hdr ^ String.sub data off n);
      if uses_credits && o.Options.block_send then begin
        (* §6.1 "blocking the send": wait until the receiver has
           acknowledged (credits fully restored) — a round trip per
           message. *)
        Cond.wait_until t.credits_c (fun () ->
            t.closed || t.peer_closed || t.reset
            || t.credits = o.Options.credits);
        if t.reset then raise Reset;
        if t.closed || t.peer_closed then raise Closed
      end;
      chunks (off + n)
    end
  in
  chunks 0

let uses_rendezvous t len =
  match (opts t).Options.scheme with
  | Options.Rendezvous -> true
  | Options.Comm_thread -> false
  | Options.Eager -> (
    match (opts t).Options.mode with
    | Options.Datagram ->
      len > (opts t).Options.eager_max || len > Options.chunk_capacity (opts t)
    | Options.Data_streaming -> false)

let write t data =
  if t.reset then raise Reset;
  if t.closed || t.peer_closed then raise Closed;
  if t.peer_conn < 0 then raise Closed;
  if String.length data > 0 then begin
    Stats.Counter.incr t.mh.h_writes;
    Stats.Counter.add t.mh.h_bytes_written (String.length data);
    Trace.span t.trace ~layer:Trace.Substrate ~node:(node_id t) ~conn:t.id
      "sub.write"
      ~args:[ ("len", string_of_int (String.length data)) ]
      (fun () ->
        Node.compute t.env.node (opts t).Options.write_overhead;
        if uses_rendezvous t (String.length data) then rendezvous_write t data
        else eager_write t data)
  end

(* --- batched write (tx ring) ------------------------------------------ *)

(* Stage one message of a batch: claim a send-pool slot and build the
   descriptor spec without posting. Only single-chunk eager messages
   without per-message blocking can ride a batch; anything else makes
   the caller flush what is staged (preserving FIFO seq order) and take
   the per-call path. [flush] is invoked before blocking on flow
   control, so credits the staged-but-unposted messages would earn back
   can actually arrive. *)
let stage_for_batch t data ~flush =
  if t.reset then raise Reset;
  if t.closed || t.peer_closed then raise Closed;
  if t.peer_conn < 0 then raise Closed;
  let o = opts t in
  let len = String.length data in
  if len = 0 then `Skip
  else if
    o.Options.scheme <> Options.Eager
    || o.Options.block_send
    || len > Options.chunk_capacity o
    || uses_rendezvous t len
  then `Fallback
  else begin
    Stats.Counter.incr t.mh.h_writes;
    Stats.Counter.add t.mh.h_bytes_written len;
    if t.credits = 0 then flush ();
    take_credit t;
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let hdr = Codec.encode [ seq; piggyback_credits t ] in
    `Staged
      (Sendpool.stage t.data_pool ~dst:t.peer_node
         ~tag:(Tags.make Tags.Data t.peer_conn)
         (hdr ^ data))
  end

let data_pool_slots t = Sendpool.slots t.data_pool

(* Gathered write: stage up to a send-pool's worth of eager messages,
   then post them all through the endpoint's tx ring under a single
   doorbell ([Endpoint.post_sendv]). The substrate bookkeeping
   ([write_overhead]) is paid once per batch — that amortization, plus
   the doorbell batching underneath, is the point. A singleton
   degenerates to {!write} exactly. *)
let writev t datas =
  match datas with
  | [] -> ()
  | [ data ] -> write t data
  | _ ->
    if t.reset then raise Reset;
    if t.closed || t.peer_closed then raise Closed;
    if t.peer_conn < 0 then raise Closed;
    Trace.span t.trace ~layer:Trace.Substrate ~node:(node_id t) ~conn:t.id
      "sub.writev"
      ~args:[ ("msgs", string_of_int (List.length datas)) ]
      (fun () ->
        Node.compute t.env.node (opts t).Options.write_overhead;
        let staged = ref [] and count = ref 0 in
        let pool_cap = data_pool_slots t in
        let flush () =
          if !count > 0 then begin
            let l = List.rev !staged in
            staged := [];
            count := 0;
            let sends = E.post_sendv t.env.emp (List.map snd l) in
            Sendpool.commit (List.map fst l) sends;
            (* Opportunistically retire already-acknowledged ring sends
               so pool-slot reuse doesn't block on them later. *)
            ignore (E.reap_sent t.env.emp)
          end
        in
        List.iter
          (fun data ->
            (* Staging past the pool size would wrap onto a slot staged
               earlier in this very batch. *)
            if !count >= pool_cap then flush ();
            match stage_for_batch t data ~flush with
            | `Skip -> ()
            | `Staged sl ->
              staged := sl :: !staged;
              incr count
            | `Fallback ->
              flush ();
              Stats.Counter.incr t.mh.h_writes;
              Stats.Counter.add t.mh.h_bytes_written (String.length data);
              if uses_rendezvous t (String.length data) then
                rendezvous_write t data
              else eager_write t data)
          datas;
        flush ())

(* --- read -------------------------------------------------------------- *)

type next_item =
  | Nothing
  | Eof
  | Eager_msg of ready
  | Rdvz of rdvz_req

let next_item t =
  match Hashtbl.find_opt t.rx_ready t.expected_seq with
  | Some r -> Eager_msg r
  | None -> (
    match Hashtbl.find_opt t.req_q t.expected_seq with
    | Some q -> Rdvz q
    | None ->
      if
        Hashtbl.length t.rx_ready = 0
        && Hashtbl.length t.req_q = 0
        && t.peer_closed
        && t.expected_seq >= t.close_seq
      then Eof
      else Nothing)

(* With piggy-backing on, hold the explicit ack briefly: a reverse-
   direction write inside the holdoff carries the credits for free
   (§6.1); otherwise the timer sends the explicit ack. *)
let piggyback_holdoff = Time.us 15

let ack_due t =
  if (opts t).Options.piggyback then begin
    if not t.ack_holdoff_armed then begin
      t.ack_holdoff_armed <- true;
      Stats.Counter.incr t.mh.h_ack_holdoffs_armed;
      Trace.instant t.trace ~layer:Trace.Substrate ~node:(node_id t)
        ~conn:t.id "sub.ack_holdoff";
      Sim.at (sim t)
        (Sim.now (sim t) + piggyback_holdoff)
        (fun () ->
          t.ack_holdoff_armed <- false;
          if
            t.consumed_since_ack >= Options.ack_threshold (opts t)
            && not t.closed
          then Sim.spawn (sim t) ~name:"sub-ack-timer" (fun () -> send_credit_ack t))
    end
  end
  else send_credit_ack t

let message_consumed t r =
  let slot = r.rd_slot in
  Hashtbl.remove t.rx_ready r.rd_seq;
  t.expected_seq <- t.expected_seq + 1;
  if (opts t).Options.scheme = Options.Comm_thread then
    (* No credits/acks: the comm thread reposts the freed buffer so a
       previously overloaded connection can make progress again. *)
    repost_data_slot t slot
  else begin
    repost_data_slot t slot;
    t.consumed_since_ack <- t.consumed_since_ack + 1;
    if t.consumed_since_ack >= Options.ack_threshold (opts t) then ack_due t
  end

let copy_out t region ~off ~len =
  let s = Memory.sub_string region ~off ~len in
  (* The receiver-side copy the eager scheme pays (§5.2). *)
  Node.compute t.env.node (Cost_model.copy_cost (Node.model t.env.node) len);
  s

let read_eager t r n =
  match (opts t).Options.mode with
  | Options.Data_streaming ->
    let m = min n (r.rd_len - r.rd_off) in
    let s =
      copy_out t r.rd_slot.sl_region ~off:(Options.header_bytes + r.rd_off) ~len:m
    in
    r.rd_off <- r.rd_off + m;
    if r.rd_off = r.rd_len then message_consumed t r;
    s
  | Options.Datagram ->
    let m = min n r.rd_len in
    let s = copy_out t r.rd_slot.sl_region ~off:Options.header_bytes ~len:m in
    message_consumed t r;
    s

(* Rendezvous receive: post the user buffer directly (zero-copy: the NIC
   DMAs into it), grant, and wait for the data. The reusable rdvz_rx
   region models the application's own receive buffer. *)
let read_rdvz t (q : rdvz_req) n =
  Hashtbl.remove t.req_q q.rq_seq;
  let streaming = (opts t).Options.mode = Options.Data_streaming in
  (* Datagram semantics truncate to the reader's buffer; streaming must
     not lose bytes, so receive the whole message and keep the tail for
     later reads. *)
  let cap = if streaming then max 1 q.rq_size else max 1 (min n q.rq_size) in
  if Memory.length t.rdvz_rx < cap then t.rdvz_rx <- Memory.alloc cap;
  let region = t.rdvz_rx in
  let r =
    E.post_recv t.env.emp ~src:t.peer_node
      ~tag:(Tags.make Tags.Rdvz_data t.id)
      region ~off:0 ~len:cap
  in
  Trace.instant t.trace ~layer:Trace.Substrate ~node:(node_id t) ~conn:t.id
    ~seq:q.rq_seq "sub.rdvz_grant"
    ~args:[ ("rid", string_of_int q.rq_id) ];
  post_ctrl t
    ~tag:(Tags.make Tags.Rdvz_grant t.peer_conn)
    (Codec.encode [ q.rq_id ]);
  let len, _, _ = E.wait_recv t.env.emp r in
  Trace.instant t.trace ~layer:Trace.Substrate ~node:(node_id t) ~conn:t.id
    ~seq:q.rq_seq "sub.rdvz_data"
    ~args:[ ("len", string_of_int (max 0 len)) ];
  t.expected_seq <- t.expected_seq + 1;
  if len < 0 then ""
  else begin
    let got = min len cap in
    let m = min n got in
    if streaming && m < got then
      t.rdvz_leftover <- Memory.sub_string region ~off:m ~len:(got - m);
    Memory.sub_string region ~off:0 ~len:m
  end

let read_leftover t n =
  let m = min n (String.length t.rdvz_leftover) in
  let s = String.sub t.rdvz_leftover 0 m in
  t.rdvz_leftover <-
    String.sub t.rdvz_leftover m (String.length t.rdvz_leftover - m);
  (* The receiver-side copy out of the retained tail. *)
  Node.compute t.env.node (Cost_model.copy_cost (Node.model t.env.node) m);
  s

let read t n =
  if t.closed then raise Closed;
  if n <= 0 then ""
  else
    Trace.span t.trace ~layer:Trace.Substrate ~node:(node_id t) ~conn:t.id
      "sub.read" (fun () ->
        Node.compute t.env.node (opts t).Options.read_overhead;
        let rec wait () =
          if t.reset then raise Reset;
          if t.closed then raise Closed;
          if t.rdvz_leftover <> "" then read_leftover t n
          else
          match next_item t with
          | Eager_msg r -> read_eager t r n
          | Rdvz q -> read_rdvz t q n
          | Eof -> ""
          | Nothing ->
            Cond.wait t.readable_c;
            wait ()
        in
        let s = wait () in
        Stats.Counter.incr t.mh.h_reads;
        Stats.Counter.add t.mh.h_bytes_read (String.length s);
        s)

(* --- batched read (fill ring) ----------------------------------------- *)

(* Deferred variant of [message_consumed]: the slot is collected instead
   of reposted, so a whole drain's worth of descriptors can go back to
   the NIC in one fill-ring batch. Credit accounting is settled by
   [flush_reposts]. *)
let message_consumed_deferred t r freed =
  Hashtbl.remove t.rx_ready r.rd_seq;
  t.expected_seq <- t.expected_seq + 1;
  freed := r.rd_slot :: !freed

let flush_reposts t freed_rev =
  let slots = List.rev freed_rev in
  (match slots with
  | [] -> ()
  | [ slot ] -> repost_data_slot t slot
  | _ ->
    let specs =
      List.map
        (fun slot ->
          ( t.peer_node,
            Tags.make Tags.Data t.id,
            slot.sl_region,
            0,
            Memory.length slot.sl_region ))
        slots
    in
    let rs = E.post_recv_batch t.env.emp specs in
    List.iter2
      (fun slot r ->
        slot.sl_current <- Some r;
        Mailbox.send t.rx_handles (slot, r))
      slots rs);
  let k = List.length slots in
  if k > 0 && (opts t).Options.scheme <> Options.Comm_thread then begin
    t.consumed_since_ack <- t.consumed_since_ack + k;
    if t.consumed_since_ack >= Options.ack_threshold (opts t) then ack_due t
  end

(* Batched read: block for the first item, then drain every consecutive
   ready message (up to [max]) without further blocking. Each returned
   string is one whole message (datagram) or the remaining bytes of the
   next message (streaming). With [Options.rx_ring] the consumed data
   slots are returned to the NIC through the fill ring in one batch;
   otherwise each is reposted per-call, exactly as {!read} would.
   Returns [[]] on EOF. *)
let readv t ~max:maxn =
  if t.closed then raise Closed;
  if maxn <= 0 then []
  else
    Trace.span t.trace ~layer:Trace.Substrate ~node:(node_id t) ~conn:t.id
      "sub.readv" (fun () ->
        Node.compute t.env.node (opts t).Options.read_overhead;
        let use_ring = (opts t).Options.rx_ring in
        let acc = ref [] and freed = ref [] and got = ref 0 in
        let take s =
          Stats.Counter.incr t.mh.h_reads;
          Stats.Counter.add t.mh.h_bytes_read (String.length s);
          acc := s :: !acc;
          incr got
        in
        let take_eager r =
          let len = r.rd_len - r.rd_off in
          let s =
            copy_out t r.rd_slot.sl_region
              ~off:(Options.header_bytes + r.rd_off)
              ~len
          in
          if use_ring then message_consumed_deferred t r freed
          else message_consumed t r;
          take s
        in
        let rec first () =
          if t.reset then raise Reset;
          if t.closed then raise Closed;
          if t.rdvz_leftover <> "" then
            take (read_leftover t max_int)
          else
            match next_item t with
            | Eager_msg r -> take_eager r
            | Rdvz q -> take (read_rdvz t q max_int)
            | Eof -> ()
            | Nothing ->
              Cond.wait t.readable_c;
              first ()
        in
        first ();
        (* Non-blocking drain of whatever else is already in order. *)
        let continue = ref (!got > 0) in
        while !continue && !got < maxn do
          match next_item t with
          | Eager_msg r -> take_eager r
          | Rdvz _ | Eof | Nothing -> continue := false
        done;
        if use_ring then flush_reposts t !freed;
        List.rev !acc)

let readable t =
  t.closed || t.peer_closed || t.reset || t.rdvz_leftover <> ""
  || (match next_item t with Nothing -> false | _ -> true)

(* --- lifecycle ---------------------------------------------------------- *)

let unpost_everything t =
  let unpost slot =
    match slot.sl_current with
    | Some r ->
      ignore (E.unpost_recv t.env.emp r);
      slot.sl_current <- None
    | None -> ()
  in
  Array.iter unpost t.data_slots;
  Array.iter unpost t.ack_slots;
  unpost t.req_slot;
  unpost t.grant_slot;
  unpost t.close_slot;
  (* Descriptors whose completion is already queued for the rx fiber. *)
  let rec drain () =
    match Mailbox.try_recv t.rx_handles with
    | Some (slot, r) ->
      ignore (E.unpost_recv t.env.emp r);
      ignore slot;
      drain ()
    | None -> ()
  in
  drain ()

(* The "closed" message is load-bearing: if the peer never hears it, the
   peer's 2N+3 descriptors stay posted forever (§5.3's leak). EMP already
   retransmits each attempt up to its own retry budget; this fiber
   re-issues the whole send a few more times with backoff in case an
   attempt exhausts it under heavy loss. *)
let close_notify_attempts = 5

let close_notify_fiber t seq () =
  let tag = Tags.make Tags.Close t.peer_conn in
  let rec attempt n backoff =
    if (not t.peer_closed) && n <= close_notify_attempts then begin
      let s = Sendpool.send t.env.ctrl_pool ~dst:t.peer_node ~tag
          (Codec.encode [ seq ])
      in
      match E.wait_send t.env.emp s with
      | () -> ()
      | exception E.Send_failed _ ->
        Stats.Counter.incr t.mh.h_close_retries;
        Trace.instant t.trace ~layer:Trace.Substrate ~node:(node_id t)
          ~conn:t.id "sub.close_retry"
          ~args:[ ("attempt", string_of_int n) ];
        Sim.delay (sim t) backoff;
        attempt (n + 1) (2 * backoff)
    end
  in
  attempt 1 (Time.ms 1)

let close t =
  if not t.closed then begin
    t.closed <- true;
    Trace.instant t.trace ~layer:Trace.Substrate ~node:(node_id t) ~conn:t.id
      "sub.close";
    if t.peer_conn >= 0 && not t.peer_closed && not t.reset then
      Sim.spawn (sim t) ~name:"sub-close-notify"
        (close_notify_fiber t t.next_seq);
    unpost_everything t;
    wake_all t;
    (* Wake the UQ ack fiber so it observes [closed] and exits. *)
    Cond.broadcast (E.uq_arrival_cond t.env.emp);
    t.env.release_id t.id
  end

let mark_reset t =
  if not (t.closed || t.reset) then begin
    t.reset <- true;
    Stats.Counter.incr t.mh.h_resets;
    Trace.instant t.trace ~layer:Trace.Substrate ~node:(node_id t) ~conn:t.id
      "sub.reset";
    unpost_everything t;
    wake_all t;
    Cond.broadcast (E.uq_arrival_cond t.env.emp);
    t.env.release_id t.id
  end

let is_reset t = t.reset
let is_closed t = t.closed

(* Test fixture: re-post one receive slot as if close had missed it —
   the seeded known-bad input for the sanitizer's leak scan. *)
let debug_leak_slot t =
  ignore (post_slot t t.data_slots.(0) ~tag:(Tags.make Tags.Data t.id))

(* Receive-slot leak scan (sanitizer): after [close]/[mark_reset] every
   slot's descriptor must have been unposted or consumed. *)
let leaked_slots t =
  let count = ref 0 in
  let chk slot = if slot.sl_current <> None then incr count in
  Array.iter chk t.data_slots;
  Queue.iter chk t.spare_slots;
  Array.iter chk t.ack_slots;
  chk t.req_slot;
  chk t.grant_slot;
  chk t.close_slot;
  !count

let create env ~id ~peer_node ~peer_conn ~local_addr ~peer_addr =
  let opts = env.opts in
  let metrics = Metrics.for_sim (Node.sim env.node) in
  let node_id = Node.id env.node in
  let counter name = Metrics.counter metrics ~node:node_id name in
  let histogram name = Metrics.histogram metrics ~node:node_id name in
  let mk_slot size =
    let region = Memory.alloc size in
    (* Credit buffers come from the library's registered pool: pinned
       once at allocation, so per-connection descriptor posting pays
       only the post itself (the overhead §7.4 discusses), not a pin
       system call per buffer. *)
    Os.prepin (Node.os env.node) region;
    { sl_region = region; sl_current = None }
  in
  let n = opts.Options.credits in
  let t =
    {
      env;
      id;
      peer_node;
      peer_conn;
      local_addr;
      peer_addr;
      credits = n;
      credits_c =
        Cond.create
          ~label:(Printf.sprintf "conn:%d credits" id)
          (Node.sim env.node);
      next_seq = 0;
      next_rdvz = 0;
      data_pool =
        Sendpool.create env.node env.emp ~slots:(max 2 n)
          ~size:opts.Options.buffer_size;
      rdvz_tx = Memory.alloc 16;
      rdvz_tx_pending = None;
      rdvz_rx = Memory.alloc 16;
      granted = Hashtbl.create 4;
      grant_c =
        Cond.create
          ~label:(Printf.sprintf "conn:%d grant" id)
          (Node.sim env.node);
      rdvz_leftover = "";
      data_slots = Array.init n (fun _ -> mk_slot opts.Options.buffer_size);
      spare_slots =
        (let q = Queue.create () in
         if opts.Options.scheme = Options.Comm_thread then
           for _ = 1 to n do
             Queue.push (mk_slot opts.Options.buffer_size) q
           done;
         q);
      ack_slots =
        (if opts.Options.unexpected_queue || opts.Options.scheme = Options.Comm_thread
         then [||]
         else Array.init n (fun _ -> mk_slot 16));
      req_slot = mk_slot 64;
      grant_slot = mk_slot 64;
      close_slot = mk_slot 16;
      rx_handles =
        Mailbox.create
          ~label:(Printf.sprintf "conn:%d rx-handles" id)
          (Node.sim env.node);
      rx_ready = Hashtbl.create 64;
      req_q = Hashtbl.create 16;
      expected_seq = 0;
      consumed_since_ack = 0;
      ack_holdoff_armed = false;
      readable_c =
        Cond.create
          ~label:(Printf.sprintf "conn:%d readable" id)
          (Node.sim env.node);
      watchers = [];
      peer_closed = false;
      close_seq = max_int;
      closed = false;
      reset = false;
      metrics;
      mh =
        {
          h_credit_acks_sent = counter "sub.credit_acks_sent";
          h_credit_wait_us = histogram "sub.credit_wait_us";
          h_rdvz_grant_wait_us = histogram "sub.rdvz_grant_wait_us";
          h_writes = counter "sub.writes";
          h_bytes_written = counter "sub.bytes_written";
          h_ack_holdoffs_armed = counter "sub.ack_holdoffs_armed";
          h_reads = counter "sub.reads";
          h_bytes_read = counter "sub.bytes_read";
          h_close_retries = counter "sub.close_retries";
          h_resets = counter "sub.resets";
        };
      trace = Trace.for_sim (Node.sim env.node);
      inv = Invariant.for_sim (Node.sim env.node);
    }
  in
  (* Post the connection's descriptors: N data (+ N ack unless UQ) plus
     the three control descriptors — the 2N provisioning of §6.1. *)
  Array.iter (fun slot -> repost_data_slot t slot) t.data_slots;
  Array.iter
    (fun slot ->
      ignore (post_slot t slot ~tag:(Tags.make Tags.Credit_ack t.id));
      Sim.spawn (sim t) ~name:"sub-ack" ~daemon:true (ack_fiber t slot))
    t.ack_slots;
  ignore (post_slot t t.req_slot ~tag:(Tags.make Tags.Rdvz_request t.id));
  ignore (post_slot t t.grant_slot ~tag:(Tags.make Tags.Rdvz_grant t.id));
  ignore (post_slot t t.close_slot ~tag:(Tags.make Tags.Close t.id));
  (* Service fibers park forever once the connection quiesces, so they
     are daemons: only application fibers count for deadlock detection. *)
  Sim.spawn (sim t) ~name:"sub-rx" ~daemon:true (rx_fiber t);
  if opts.Options.unexpected_queue then
    Sim.spawn (sim t) ~name:"sub-uq-ack" ~daemon:true (uq_ack_fiber t);
  Sim.spawn (sim t) ~name:"sub-req" ~daemon:true (req_fiber t);
  Sim.spawn (sim t) ~name:"sub-grant" ~daemon:true (grant_fiber t);
  Sim.spawn (sim t) ~name:"sub-close" ~daemon:true (close_watch_fiber t);
  t
