(** Wire format shared by every collective transport.

    Two layers live here:

    - a dedicated {!Uls_ether.Frame.payload} constructor for NIC-forwarded
      collective frames ([Coll]), small enough that the firmware can
      re-emit one from a forward-on-match descriptor without host help;
    - the host-side 16-byte [(tag, length)] framing used both to delimit
      collective messages on a byte stream and to pack per-rank entries
      into gather/scatter bundles. *)

type Uls_ether.Frame.payload +=
  | Coll of { tag : int; body : string }
        (** A NIC-forwarded collective frame. [tag] disambiguates
            operation instances; [body] is the (possibly empty) payload
            carried down the tree. *)

val header_bytes : int
(** Size of the [(tag, length)] header: 16 bytes. *)

val max_body : int
(** Largest body a single [Coll] frame can carry (MTU minus header).
    NIC-forwarded broadcast falls back to a host algorithm above this. *)

val frame :
  src:int -> dst:int -> tag:int -> string -> Uls_ether.Frame.t
(** Build a [Coll] frame. @raise Invalid_argument if the body exceeds
    {!max_body}. *)

val classify : Uls_ether.Frame.t -> (int * int) option
(** [(src, tag)] for [Coll] frames, [None] for everything else — exactly
    the shape {!Uls_nic.Tigon.set_coll_classifier} expects. *)

val body : Uls_ether.Frame.t -> string
(** Payload of a [Coll] frame. *)

(** {1 Host-side framing} *)

val encode_header : tag:int -> len:int -> string
val decode_header : string -> int * int
val decode_header_at : string -> int -> int * int

val pack : (int * string) list -> string
(** Pack [(rank, data)] entries into one bundle string. *)

val unpack : string -> (int * string) list
(** Inverse of {!pack}. @raise Invalid_argument on a malformed bundle. *)
