open Uls_ether

type Frame.payload += Coll of { tag : int; body : string }

let header_bytes = 16
let max_body = Frame.mtu - header_bytes

let frame ~src ~dst ~tag body =
  if String.length body > max_body then
    invalid_arg
      (Printf.sprintf "Coll_wire.frame: body %d > %d" (String.length body)
         max_body);
  Frame.make ~src ~dst ~payload_len:(header_bytes + String.length body)
    (Coll { tag; body })

let classify frame =
  match frame.Frame.payload with
  | Coll c -> Some (frame.Frame.src, c.tag)
  | _ -> None

let body frame =
  match frame.Frame.payload with
  | Coll c -> c.body
  | _ -> invalid_arg "Coll_wire.body: not a collective frame"

let encode_header ~tag ~len =
  let b = Bytes.create header_bytes in
  Bytes.set_int64_le b 0 (Int64.of_int tag);
  Bytes.set_int64_le b 8 (Int64.of_int len);
  Bytes.to_string b

let decode_header_at s off =
  if String.length s < off + header_bytes then
    invalid_arg "Coll_wire.decode_header: truncated";
  ( Int64.to_int (String.get_int64_le s off),
    Int64.to_int (String.get_int64_le s (off + 8)) )

let decode_header s = decode_header_at s 0

let pack entries =
  String.concat ""
    (List.map
       (fun (rank, data) ->
         encode_header ~tag:rank ~len:(String.length data) ^ data)
       entries)

let unpack s =
  let n = String.length s in
  let rec loop off acc =
    if off >= n then List.rev acc
    else begin
      let rank, len = decode_header_at s off in
      let off = off + header_bytes in
      if len < 0 || off + len > n then
        invalid_arg "Coll_wire.unpack: malformed bundle";
      loop (off + len) ((rank, String.sub s off len) :: acc)
    end
  in
  loop 0 []
