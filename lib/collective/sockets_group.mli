(** A {!Group} over any {!Uls_api.Sockets_api.stack} (kernel TCP or the
    user-level substrate, in any of its option configurations).

    Each rank's fiber calls {!connect_mesh} with the same [nodes] array
    (node id of rank [i] at index [i]) and ports [base_port ..
    base_port + size - 1]; the call blocks until the full mesh of
    streams is established. Messages are framed with a 16-byte
    [(tag, length)] header; receives are pumped by per-post reader
    fibers so a posted receive drains the stream even while the posting
    fiber is blocked elsewhere (required under the rendezvous scheme,
    where a writer cannot complete until the reader reads). *)

val connect_mesh :
  Uls_engine.Sim.t ->
  Uls_api.Sockets_api.stack ->
  nodes:int array ->
  rank:int ->
  base_port:int ->
  Group.t
