open Uls_engine
open Uls_emp

type t = {
  sim : Sim.t;
  eps : Endpoint.t array;
  rank : int;
  os : Uls_host.Os.t;
  pool : (int, Uls_host.Memory.region Queue.t) Hashtbl.t;
}

(* Prepinned staging buffers in power-of-two buckets (same idea as the
   substrate's send pool): collectives reuse a handful of regions, so
   after warm-up every post hits the translation cache and no pin
   syscall lands on the timed path. *)
let bucket len =
  let len = max 64 len in
  let b = ref 64 in
  while !b < len do b := !b * 2 done;
  !b

let take t len =
  let b = bucket len in
  match Hashtbl.find_opt t.pool b with
  | Some q when not (Queue.is_empty q) -> Queue.pop q
  | _ ->
    let r = Uls_host.Memory.alloc b in
    Uls_host.Os.prepin t.os r;
    r

let give t r =
  let b = Uls_host.Memory.length r in
  let q =
    match Hashtbl.find_opt t.pool b with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add t.pool b q;
      q
  in
  Queue.push r q

let send t ~dst ~tag data =
  let len = String.length data in
  let r = take t len in
  Uls_host.Memory.blit_from_string data r ~off:0;
  let ep = t.eps.(t.rank) in
  let s =
    Endpoint.post_send ep ~dst:(Endpoint.node_id t.eps.(dst)) ~tag r ~off:0 ~len
  in
  Endpoint.wait_send ep s;
  give t r

let irecv t ~src ~tag ~max =
  let r = take t max in
  let ep = t.eps.(t.rank) in
  let rv =
    Endpoint.post_recv ep
      ~src:(Endpoint.node_id t.eps.(src))
      ~tag r ~off:0 ~len:(Uls_host.Memory.length r)
  in
  fun () ->
    let len, _, _ = Endpoint.wait_recv ep rv in
    let s = Uls_host.Memory.sub_string r ~off:0 ~len in
    give t r;
    s

(* NIC-offloaded barrier/bcast tags live in their own space (no 0x8000
   bit needed: they never traverse EMP tag matching, only the NIC's
   forward-on-match list). Phase 0 = arrive, 1 = release, 2 = bcast. *)
let nic_tag ~seq ~phase = ((seq land 0x3FFF) * 4) + phase

let make_nic_ops t =
  let size = Array.length t.eps in
  let rank = t.rank in
  let nic = Endpoint.nic t.eps.(rank) in
  Uls_nic.Tigon.set_coll_classifier nic Coll_wire.classify;
  let node r = Endpoint.node_id t.eps.(r) in
  let my_node = node rank in
  let nic_barrier ~seq =
    if size > 1 then begin
      let atag = nic_tag ~seq ~phase:0 and rtag = nic_tag ~seq ~phase:1 in
      let kids = Group.Tree.children ~root:0 ~size rank in
      let finished = ref false in
      let cond =
        Cond.create ~label:(Printf.sprintf "coll:r%d barrier" rank) t.sim
      in
      let release_frames _ =
        List.map
          (fun c -> Coll_wire.frame ~src:my_node ~dst:(node c) ~tag:rtag "")
          kids
      in
      (match Group.Tree.parent ~root:0 ~size rank with
      | None ->
        (* Root: when every child subtree (plus this host) has arrived,
           the firmware releases the children directly and DMAs the
           completion up — the host fiber sleeps through the fan-in. *)
        Uls_nic.Tigon.post_forward nic ~src:(-1) ~tag:atag
          ~need:(List.length kids + 1)
          ~deliver:(fun _ ->
            finished := true;
            Cond.broadcast cond)
          ~emit:release_frames ()
      | Some p ->
        (* Combine-and-forward: collect children + local doorbell, then
           emit one arrive frame towards the parent. *)
        Uls_nic.Tigon.post_forward nic ~src:(-1) ~tag:atag
          ~need:(List.length kids + 1)
          ~emit:(fun _ ->
            [ Coll_wire.frame ~src:my_node ~dst:(node p) ~tag:atag "" ])
          ();
        (* Release: one frame from the parent fans out to the children
           and wakes the host. *)
        Uls_nic.Tigon.post_forward nic ~src:(node p) ~tag:rtag ~need:1
          ~deliver:(fun _ ->
            finished := true;
            Cond.broadcast cond)
          ~emit:release_frames ());
      Uls_nic.Tigon.coll_signal nic ~tag:atag;
      Cond.wait_until cond (fun () -> !finished)
    end
  in
  let nic_bcast ~seq ~root ~max data =
    (* Single-frame payloads only; [max] is uniform across ranks, so
       every rank falls back together when it does not fit. *)
    if max > Coll_wire.max_body then None
    else if size = 1 then Some data
    else begin
      let btag = nic_tag ~seq ~phase:2 in
      let kids = Group.Tree.children ~root ~size rank in
      let frames_for body =
        List.map
          (fun c -> Coll_wire.frame ~src:my_node ~dst:(node c) ~tag:btag body)
          kids
      in
      if rank = root then begin
        List.iter (Uls_nic.Tigon.coll_inject nic) (frames_for data);
        Some data
      end
      else begin
        let p = Option.get (Group.Tree.parent ~root ~size rank) in
        let result = ref None in
        let cond =
          Cond.create ~label:(Printf.sprintf "coll:r%d bcast" rank) t.sim
        in
        Uls_nic.Tigon.post_forward nic ~src:(node p) ~tag:btag ~need:1
          ~deliver:(fun fr ->
            let body = match fr with Some f -> Coll_wire.body f | None -> "" in
            result := Some body;
            Cond.broadcast cond)
          ~emit:(fun fr ->
            match fr with Some f -> frames_for (Coll_wire.body f) | None -> [])
          ();
        Cond.wait_until cond (fun () -> !result <> None);
        !result
      end
    end
  in
  { Group.nic_barrier; nic_bcast }

let create ?(uq_slots = 16) ?(uq_size = 4096) ?(nic = true) eps ~rank =
  if Array.length eps = 0 then invalid_arg "Emp_group.create: no endpoints";
  if rank < 0 || rank >= Array.length eps then
    invalid_arg "Emp_group.create: rank";
  let ep = eps.(rank) in
  let t =
    {
      sim = Endpoint.sim ep;
      eps;
      rank;
      os = Uls_host.Node.os (Endpoint.node ep);
      pool = Hashtbl.create 8;
    }
  in
  if uq_slots > 0 then Endpoint.provision_unexpected ep ~slots:uq_slots ~size:uq_size;
  let tr =
    {
      Group.rank;
      size = Array.length eps;
      send = (fun ~dst ~tag data -> send t ~dst ~tag data);
      irecv = (fun ~src ~tag ~max -> irecv t ~src ~tag ~max);
    }
  in
  let nic_ops = if nic then Some (make_nic_ops t) else None in
  Group.create ?nic:nic_ops ~sim:t.sim tr
