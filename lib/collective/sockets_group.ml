open Uls_engine
open Uls_api

type peer = {
  stream : Sockets_api.stream;
  mutable rbuf : string;  (* bytes read but not yet parsed into messages *)
  mutable stash : (int * string) list;  (* arrived but unclaimed (tag, body) *)
  mutable reading : bool;  (* a pump fiber currently owns the stream *)
  cond : Cond.t;
}

(* Read one framed message. Each [recv] asks for a whole message's worth
   of bytes: under the rendezvous scheme a read consumes (and truncates
   to the request) exactly one writer message, so asking for less than
   [header + max] would silently drop the tail. Eager byte streams may
   split or merge writes instead; the reassembly buffer covers that. *)
let read_message p ~cap =
  let fill k =
    while String.length p.rbuf < k do
      let chunk = p.stream.Sockets_api.recv cap in
      if chunk = "" then
        failwith "Sockets_group: stream closed mid-collective";
      p.rbuf <- p.rbuf ^ chunk
    done
  in
  fill Coll_wire.header_bytes;
  let tg, len = Coll_wire.decode_header p.rbuf in
  fill (Coll_wire.header_bytes + len);
  let body = String.sub p.rbuf Coll_wire.header_bytes len in
  let consumed = Coll_wire.header_bytes + len in
  p.rbuf <- String.sub p.rbuf consumed (String.length p.rbuf - consumed);
  (tg, body)

(* Fully connected mesh: rank r listens on base_port + r, actively
   connects to every lower rank, and accepts from every higher rank. An
   accepted connection is identified by a 16-byte rank handshake. *)
let connect_mesh sim stack ~nodes ~rank ~base_port =
  let size = Array.length nodes in
  if rank < 0 || rank >= size then invalid_arg "Sockets_group.connect_mesh";
  let peers = Array.make size None in
  let mk stream =
    {
      stream;
      rbuf = "";
      stash = [];
      reading = false;
      cond = Cond.create ~label:(Printf.sprintf "sockets-group:r%d peer" rank) sim;
    }
  in
  if size > 1 then begin
    let listener =
      stack.Sockets_api.listen ~node:nodes.(rank) ~port:(base_port + rank)
        ~backlog:size
    in
    for i = 0 to rank - 1 do
      (* The lower rank may not have reached its listen yet. *)
      let rec attempt tries =
        try
          stack.Sockets_api.connect ~node:nodes.(rank)
            { Sockets_api.node = nodes.(i); port = base_port + i }
        with Sockets_api.Connection_refused _ when tries < 200 ->
          Sim.delay sim 50_000;
          attempt (tries + 1)
      in
      let s = attempt 0 in
      s.Sockets_api.send (Coll_wire.encode_header ~tag:rank ~len:0);
      peers.(i) <- Some (mk s)
    done;
    for _ = rank + 1 to size - 1 do
      let s, _ = listener.Sockets_api.accept () in
      let r, _ =
        Coll_wire.decode_header (Sockets_api.recv_exact s Coll_wire.header_bytes)
      in
      if r < 0 || r >= size || peers.(r) <> None then
        failwith "Sockets_group: bad mesh handshake";
      peers.(r) <- Some (mk s)
    done;
    listener.Sockets_api.close_listener ()
  end;
  let get i =
    match peers.(i) with
    | Some p -> p
    | None -> invalid_arg "Sockets_group: no such peer"
  in
  let send ~dst ~tag data =
    (get dst).stream.Sockets_api.send
      (Coll_wire.encode_header ~tag ~len:(String.length data) ^ data)
  in
  let irecv ~src ~tag ~max =
    let p = get src in
    let cap = Coll_wire.header_bytes + max in
    let result = ref None in
    let claim () =
      let rec pick acc = function
        | [] -> None
        | (t, body) :: rest when t = tag ->
          p.stash <- List.rev_append acc rest;
          Some body
        | e :: rest -> pick (e :: acc) rest
      in
      pick [] p.stash
    in
    (* The receive must make progress from the moment it is posted: under
       the rendezvous substrate scheme a blocked writer only unblocks when
       the reader actually reads, so symmetric exchanges deadlock if both
       sides defer reading until they wait. One pump fiber at a time owns
       the stream; messages for other tags are stashed for their posters. *)
    let rec pump () =
      if !result = None then begin
        match claim () with
        | Some body ->
          result := Some body;
          Cond.broadcast p.cond
        | None ->
          if p.reading then begin
            Cond.wait p.cond;
            pump ()
          end
          else begin
            p.reading <- true;
            let tg, body = read_message p ~cap in
            p.reading <- false;
            p.stash <- p.stash @ [ (tg, body) ];
            Cond.broadcast p.cond;
            pump ()
          end
      end
    in
    Sim.spawn sim ~name:(Printf.sprintf "coll-rx-%d<%d" rank src) pump;
    fun () ->
      Cond.wait_until p.cond (fun () -> !result <> None);
      Option.get !result
  in
  Group.create ~sim { Group.rank; size; send; irecv }
