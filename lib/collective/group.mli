(** Collective communication over a group of simulated processes.

    A {!t} is one member's view of a communicator: [size] ranks that all
    call the same collectives in the same order (SPMD). The group sits on
    a {!transport} — blocking sends and posted receives — so the same
    algorithms run over EMP endpoints ({!Emp_group}) or the user-level
    sockets stacks ({!Sockets_group}).

    Three host algorithm families are provided ([Linear],
    [Binomial_tree], [Recursive_doubling]) plus [Nic_forward], which
    offloads barrier and broadcast to the NIC's forward-on-match
    descriptors ({!Uls_nic.Tigon.post_forward}) when the transport
    provides {!nic_ops} — the Quadrics/Myrinet-style scheme where the
    firmware propagates collective frames down the tree without waking
    the host between hops.

    Within one collective, every rank posts all of its receives before
    its first send, so a matching message can never find its descriptor
    unposted on a correctly ordered transport. *)

type algorithm =
  | Linear  (** root exchanges with every rank directly: O(N) rounds *)
  | Binomial_tree  (** fan-in/fan-out tree: O(log N) rounds *)
  | Recursive_doubling
      (** pairwise exchange (dissemination for barrier, MPICH fold-in
          for allreduce); falls back to [Binomial_tree] where no
          doubling formulation exists *)
  | Nic_forward
      (** NIC-offloaded barrier/bcast via forward-on-match descriptors;
          other operations (and oversized broadcasts) fall back to
          [Binomial_tree] *)

val algorithm_name : algorithm -> string

(** A reduction operator. [combine] must be associative and is applied
    in a deterministic but algorithm-dependent order, so use operators
    that tolerate reassociation (or exact values). *)
type op = { op_name : string; combine : string -> string -> string }

val float_sum : op
(** Elementwise sum of packed little-endian doubles. *)

type handle = unit -> string
(** A posted receive: the thunk blocks until the message arrives and
    returns its payload. *)

type transport = {
  rank : int;
  size : int;
  send : dst:int -> tag:int -> string -> unit;  (** blocking *)
  irecv : src:int -> tag:int -> max:int -> handle;
      (** posts the receive immediately; [max] bounds the payload *)
}

(** NIC-offload hooks. [nic_bcast] returns [None] when the payload
    cannot take the NIC path (e.g. larger than one frame); the decision
    must depend only on arguments every rank shares, because all ranks
    must fall back together. *)
type nic_ops = {
  nic_barrier : seq:int -> unit;
  nic_bcast : seq:int -> root:int -> max:int -> string -> string option;
}

type t

val create : ?nic:nic_ops -> ?sim:Uls_engine.Sim.t -> transport -> t
(** All members of one group must be created consistently: same size,
    distinct ranks, and either all or none with [?nic]. Passing [?sim]
    wires the group into that simulation's observability: each
    collective records a [Collective]-layer span plus per-rank op and
    round counts ({!Uls_engine.Metrics}, {!Uls_engine.Trace}). *)

val rank : t -> int
val size : t -> int

val last_rounds : t -> int
(** Sequential communication steps (blocking sends + completed receive
    waits) this rank executed in its most recent collective. A linear
    barrier costs the root [2(N-1)]; a binomial barrier costs every rank
    at most [2 ceil(log2 N)]. *)

(** {1 Collectives}

    Every rank of the group must call the same operation with the same
    [alg], [root], [max] and (where applicable) [op]. [max] is the upper
    bound on any single rank's contribution, uniform across ranks. *)

val barrier : ?alg:algorithm -> t -> unit

val bcast : ?alg:algorithm -> t -> root:int -> max:int -> string -> string
(** Returns the root's [data] on every rank (the argument is ignored on
    non-roots). *)

val scatter :
  ?alg:algorithm -> t -> root:int -> max:int -> string array -> string
(** The root supplies one part per rank; each rank returns its own part
    (the array is ignored on non-roots). *)

val gather :
  ?alg:algorithm -> t -> root:int -> max:int -> string -> string array option
(** [Some parts] (indexed by rank) at the root, [None] elsewhere. *)

val allgather : ?alg:algorithm -> t -> max:int -> string -> string array

val reduce :
  ?alg:algorithm -> t -> op:op -> root:int -> max:int -> string ->
  string option
(** [Some result] at the root, [None] elsewhere. Contributions must all
    have the same length. *)

val allreduce : ?alg:algorithm -> t -> op:op -> max:int -> string -> string

(** {1 Tree shape}

    The binomial tree used by [Binomial_tree] and the NIC offload,
    exposed for transports and tests. Ranks are relative to [root]. *)
module Tree : sig
  val parent : root:int -> size:int -> int -> int option
  val children : root:int -> size:int -> int -> int list
  val subtree_ranks : root:int -> size:int -> int -> int list
  (** The ranks in a node's subtree, itself included. *)
end
