(** A {!Group} over an array of EMP endpoints, one per rank.

    Every rank calls {!create} with the {e same} endpoint array (rank
    [i]'s endpoint at index [i]) and its own [rank]. Message staging uses
    a pool of prepinned power-of-two regions, so steady-state collectives
    pay no pin system calls; the endpoint's unexpected queue is
    provisioned to absorb cross-rank races at operation entry.

    With [~nic:true] (the default) the group registers the collective
    frame classifier on this rank's NIC and offers NIC-offloaded barrier
    and broadcast ({!Group.algorithm.Nic_forward}): the host posts
    forward-on-match descriptors, rings one doorbell, and sleeps until
    the NIC DMAs the completion up. *)

val create :
  ?uq_slots:int ->
  ?uq_size:int ->
  ?nic:bool ->
  Uls_emp.Endpoint.t array ->
  rank:int ->
  Group.t
(** [uq_slots]/[uq_size] (default 16 x 4096 B) provision this rank's
    unexpected queue. [nic:false] builds a host-only group (Nic_forward
    then falls back to the binomial tree). *)
