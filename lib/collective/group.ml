open Uls_engine

type algorithm = Linear | Binomial_tree | Recursive_doubling | Nic_forward

let algorithm_name = function
  | Linear -> "linear"
  | Binomial_tree -> "binomial"
  | Recursive_doubling -> "recdbl"
  | Nic_forward -> "nic"

type op = { op_name : string; combine : string -> string -> string }

let float_sum =
  {
    op_name = "float-sum";
    combine =
      (fun a b ->
        if String.length a <> String.length b then
          invalid_arg "Group.float_sum: operand lengths differ";
        if String.length a mod 8 <> 0 then
          invalid_arg "Group.float_sum: not a packed double vector";
        let out = Bytes.create (String.length a) in
        for i = 0 to (String.length a / 8) - 1 do
          let x = Int64.float_of_bits (String.get_int64_le a (i * 8)) in
          let y = Int64.float_of_bits (String.get_int64_le b (i * 8)) in
          Bytes.set_int64_le out (i * 8) (Int64.bits_of_float (x +. y))
        done;
        Bytes.to_string out);
  }

type handle = unit -> string

type transport = {
  rank : int;
  size : int;
  send : dst:int -> tag:int -> string -> unit;
  irecv : src:int -> tag:int -> max:int -> handle;
}

type nic_ops = {
  nic_barrier : seq:int -> unit;
  nic_bcast : seq:int -> root:int -> max:int -> string -> string option;
}

(* Metric handles resolved once at construction — collectives sit on
   the hot path, so per-call name lookups are banned (ulslint
   metrics-name-lookup). *)
type counters = {
  hc_barrier : Stats.Counter.t;
  hc_bcast : Stats.Counter.t;
  hc_scatter : Stats.Counter.t;
  hc_gather : Stats.Counter.t;
  hc_allgather : Stats.Counter.t;
  hc_reduce : Stats.Counter.t;
  hc_allreduce : Stats.Counter.t;
  hh_rounds : Stats.Summary.t;
}

type t = {
  tr : transport;
  nic : nic_ops option;
  mutable seq : int;
  mutable last_rounds : int;
  hot : counters option;
  trace : Trace.t option;
}

let create ?nic ?sim tr =
  if tr.size <= 0 then invalid_arg "Group.create: size must be positive";
  if tr.rank < 0 || tr.rank >= tr.size then invalid_arg "Group.create: rank";
  {
    tr;
    nic;
    seq = 0;
    last_rounds = 0;
    hot =
      Option.map
        (fun sim ->
          let metrics = Metrics.for_sim sim in
          let counter name = Metrics.counter metrics ~node:tr.rank name in
          {
            hc_barrier = counter "coll.barrier";
            hc_bcast = counter "coll.bcast";
            hc_scatter = counter "coll.scatter";
            hc_gather = counter "coll.gather";
            hc_allgather = counter "coll.allgather";
            hc_reduce = counter "coll.reduce";
            hc_allreduce = counter "coll.allreduce";
            hh_rounds = Metrics.histogram metrics ~node:tr.rank "coll.rounds";
          })
        sim;
    trace = Option.map Trace.for_sim sim;
  }

let rank t = t.tr.rank
let size t = t.tr.size
let last_rounds t = t.last_rounds

(* Wrap one collective in a Collective-layer span (when the transport
   wired a simulation in) and record the per-op round count — the
   quantity the algorithm families trade against each other. *)
let observed t name alg sel f =
  let r =
    match t.trace with
    | None -> f ()
    | Some trace ->
      Trace.span trace ~layer:Trace.Collective ~node:t.tr.rank ~seq:t.seq name
        ~args:[ ("alg", algorithm_name alg) ]
        f
  in
  (match t.hot with
  | None -> ()
  | Some h ->
    Stats.Counter.incr (sel h);
    Stats.Summary.add h.hh_rounds (float_of_int t.last_rounds));
  r

(* Every collective consumes one sequence number; ranks stay in lockstep
   because collectives must be called in the same order on every member.
   The high bit keeps collective tags out of the application tag space. *)
let tag_of ~seq ~round = 0x8000 lor ((seq land 0x1FF) lsl 5) lor (round land 0x1F)

let next_seq t =
  let s = t.seq in
  t.seq <- t.seq + 1;
  t.last_rounds <- 0;
  s

let send t ~dst ~tag data =
  t.tr.send ~dst ~tag data;
  t.last_rounds <- t.last_rounds + 1

let irecv t ~src ~tag ~max = t.tr.irecv ~src ~tag ~max

let await t h =
  let r = h () in
  t.last_rounds <- t.last_rounds + 1;
  r

(* --- binomial tree shape ---------------------------------------------- *)

module Tree = struct
  let rel ~root ~size r = (r - root + size) mod size
  let unrel ~root ~size rr = (rr + root) mod size

  let parent ~root ~size r =
    let rr = rel ~root ~size r in
    if rr = 0 then None else Some (unrel ~root ~size (rr land (rr - 1)))

  let children ~root ~size r =
    let rr = rel ~root ~size r in
    let lowbit = if rr = 0 then size else rr land -rr in
    let rec collect j acc =
      let step = 1 lsl j in
      if step >= lowbit || rr + step >= size then List.rev acc
      else collect (j + 1) (unrel ~root ~size (rr + step) :: acc)
    in
    collect 0 []

  let span ~size rr =
    let lowbit = if rr = 0 then size else rr land -rr in
    min lowbit (size - rr)

  let subtree_ranks ~root ~size r =
    let rr = rel ~root ~size r in
    List.init (span ~size rr) (fun x -> unrel ~root ~size (rr + x))
end

let is_pow2 n = n > 0 && n land (n - 1) = 0

let floor_pow2 n =
  let p = ref 1 in
  while !p * 2 <= n do p := !p * 2 done;
  !p

let check_root t root =
  if root < 0 || root >= t.tr.size then invalid_arg "Group: root out of range"

let entry_max max = Coll_wire.header_bytes + max

(* --- barrier ----------------------------------------------------------- *)

let barrier_linear t ~seq =
  let { rank; size; _ } = t.tr in
  let atag = tag_of ~seq ~round:0 and rtag = tag_of ~seq ~round:1 in
  if rank = 0 then begin
    let hs = List.init (size - 1) (fun i -> irecv t ~src:(i + 1) ~tag:atag ~max:0) in
    List.iter (fun h -> ignore (await t h)) hs;
    for i = 1 to size - 1 do
      send t ~dst:i ~tag:rtag ""
    done
  end
  else begin
    (* Post the release descriptor before announcing arrival, so the
       root's release can never race an unposted receive. *)
    let release = irecv t ~src:0 ~tag:rtag ~max:0 in
    send t ~dst:0 ~tag:atag "";
    ignore (await t release)
  end

let barrier_binomial t ~seq =
  let { rank; size; _ } = t.tr in
  let atag = tag_of ~seq ~round:0 and rtag = tag_of ~seq ~round:1 in
  let kids = Tree.children ~root:0 ~size rank in
  let par = Tree.parent ~root:0 ~size rank in
  let kid_hs = List.map (fun c -> irecv t ~src:c ~tag:atag ~max:0) kids in
  let release = Option.map (fun p -> irecv t ~src:p ~tag:rtag ~max:0) par in
  List.iter (fun h -> ignore (await t h)) kid_hs;
  (match par with Some p -> send t ~dst:p ~tag:atag "" | None -> ());
  (match release with Some h -> ignore (await t h) | None -> ());
  List.iter (fun c -> send t ~dst:c ~tag:rtag "") kids

(* Dissemination barrier: works for any [size], ceil(log2 size) rounds,
   no release phase. *)
let barrier_dissemination t ~seq =
  let { rank; size; _ } = t.tr in
  let rounds =
    let r = ref 0 in
    while 1 lsl !r < size do incr r done;
    !r
  in
  let hs =
    Array.init rounds (fun r ->
        irecv t
          ~src:((rank - (1 lsl r) + size) mod size)
          ~tag:(tag_of ~seq ~round:r) ~max:0)
  in
  for r = 0 to rounds - 1 do
    send t ~dst:((rank + (1 lsl r)) mod size) ~tag:(tag_of ~seq ~round:r) "";
    ignore (await t hs.(r))
  done

let barrier ?(alg = Binomial_tree) t =
  observed t "barrier" alg (fun h -> h.hc_barrier) @@ fun () ->
  let seq = next_seq t in
  if t.tr.size = 1 then ()
  else
    match alg with
    | Linear -> barrier_linear t ~seq
    | Binomial_tree -> barrier_binomial t ~seq
    | Recursive_doubling -> barrier_dissemination t ~seq
    | Nic_forward -> (
        match t.nic with
        | Some n ->
            n.nic_barrier ~seq;
            t.last_rounds <- 2
        | None -> barrier_binomial t ~seq)

(* --- broadcast --------------------------------------------------------- *)

let bcast_linear t ~seq ~round ~root ~max data =
  let { rank; size; _ } = t.tr in
  let tag = tag_of ~seq ~round in
  if rank = root then begin
    for i = 0 to size - 1 do
      if i <> root then send t ~dst:i ~tag data
    done;
    data
  end
  else await t (irecv t ~src:root ~tag ~max)

let bcast_binomial t ~seq ~round ~root ~max data =
  let { rank; size; _ } = t.tr in
  let tag = tag_of ~seq ~round in
  let kids = Tree.children ~root ~size rank in
  let data =
    match Tree.parent ~root ~size rank with
    | None -> data
    | Some p -> await t (irecv t ~src:p ~tag ~max)
  in
  List.iter (fun c -> send t ~dst:c ~tag data) kids;
  data

let bcast ?(alg = Binomial_tree) t ~root ~max data =
  check_root t root;
  if t.tr.rank = root && String.length data > max then
    invalid_arg "Group.bcast: data longer than max";
  observed t "bcast" alg (fun h -> h.hc_bcast) @@ fun () ->
  let seq = next_seq t in
  if t.tr.size = 1 then data
  else
    match alg with
    | Linear -> bcast_linear t ~seq ~round:0 ~root ~max data
    | Binomial_tree | Recursive_doubling ->
        bcast_binomial t ~seq ~round:0 ~root ~max data
    | Nic_forward -> (
        match t.nic with
        | None -> bcast_binomial t ~seq ~round:0 ~root ~max data
        | Some n -> (
            (* The NIC path only handles single-frame payloads; the
               fallback decision depends only on [max], which every rank
               knows, so all ranks take the same branch. *)
            match n.nic_bcast ~seq ~root ~max data with
            | Some s ->
                t.last_rounds <- 2;
                s
            | None -> bcast_binomial t ~seq ~round:0 ~root ~max data))

(* --- scatter ----------------------------------------------------------- *)

let scatter_linear t ~seq ~root ~max parts =
  let { rank; size; _ } = t.tr in
  let tag = tag_of ~seq ~round:0 in
  if rank = root then begin
    for i = 0 to size - 1 do
      if i <> root then send t ~dst:i ~tag parts.(i)
    done;
    parts.(rank)
  end
  else await t (irecv t ~src:root ~tag ~max)

let scatter_binomial t ~seq ~root ~max parts =
  let { rank; size; _ } = t.tr in
  let tag = tag_of ~seq ~round:0 in
  let kids = Tree.children ~root ~size rank in
  let entries =
    match Tree.parent ~root ~size rank with
    | None -> List.init size (fun r -> (r, parts.(r)))
    | Some p ->
        let span = Tree.span ~size (Tree.rel ~root ~size rank) in
        let h = irecv t ~src:p ~tag ~max:(span * entry_max max) in
        Coll_wire.unpack (await t h)
  in
  List.iter
    (fun c ->
      let subset = Tree.subtree_ranks ~root ~size c in
      let bundle =
        Coll_wire.pack (List.filter (fun (r, _) -> List.mem r subset) entries)
      in
      send t ~dst:c ~tag bundle)
    kids;
  List.assoc rank entries

let scatter ?(alg = Binomial_tree) t ~root ~max parts =
  check_root t root;
  if t.tr.rank = root then begin
    if Array.length parts <> t.tr.size then
      invalid_arg "Group.scatter: need one part per rank";
    Array.iter
      (fun p ->
        if String.length p > max then
          invalid_arg "Group.scatter: part longer than max")
      parts
  end;
  observed t "scatter" alg (fun h -> h.hc_scatter) @@ fun () ->
  let seq = next_seq t in
  if t.tr.size = 1 then parts.(0)
  else
    match alg with
    | Linear -> scatter_linear t ~seq ~root ~max parts
    | Binomial_tree | Recursive_doubling | Nic_forward ->
        scatter_binomial t ~seq ~root ~max parts

(* --- gather ------------------------------------------------------------ *)

let gather_linear t ~seq ~round ~root ~max data =
  let { rank; size; _ } = t.tr in
  let tag = tag_of ~seq ~round in
  if rank = root then begin
    let hs =
      Array.init size (fun i ->
          if i = root then None else Some (irecv t ~src:i ~tag ~max))
    in
    let out = Array.make size "" in
    out.(root) <- data;
    Array.iteri
      (fun i h -> match h with None -> () | Some h -> out.(i) <- await t h)
      hs;
    Some out
  end
  else begin
    send t ~dst:root ~tag data;
    None
  end

let gather_binomial t ~seq ~round ~root ~max data =
  let { rank; size; _ } = t.tr in
  let tag = tag_of ~seq ~round in
  let kids = Tree.children ~root ~size rank in
  let kid_hs =
    List.map
      (fun c ->
        let span = Tree.span ~size (Tree.rel ~root ~size c) in
        irecv t ~src:c ~tag ~max:(span * entry_max max))
      kids
  in
  let entries =
    (rank, data)
    :: List.concat_map (fun h -> Coll_wire.unpack (await t h)) kid_hs
  in
  match Tree.parent ~root ~size rank with
  | Some p ->
      send t ~dst:p ~tag (Coll_wire.pack entries);
      None
  | None ->
      let out = Array.make size "" in
      List.iter (fun (r, s) -> out.(r) <- s) entries;
      Some out

let gather ?(alg = Binomial_tree) t ~root ~max data =
  check_root t root;
  if String.length data > max then
    invalid_arg "Group.gather: data longer than max";
  observed t "gather" alg (fun h -> h.hc_gather) @@ fun () ->
  let seq = next_seq t in
  if t.tr.size = 1 then Some [| data |]
  else
    match alg with
    | Linear -> gather_linear t ~seq ~round:0 ~root ~max data
    | Binomial_tree | Recursive_doubling | Nic_forward ->
        gather_binomial t ~seq ~round:0 ~root ~max data

(* --- allgather --------------------------------------------------------- *)

let allgather_rd t ~seq ~max data =
  let { rank; size; _ } = t.tr in
  let rounds =
    let r = ref 0 in
    while 1 lsl !r < size do incr r done;
    !r
  in
  let hs =
    Array.init rounds (fun r ->
        irecv t
          ~src:(rank lxor (1 lsl r))
          ~tag:(tag_of ~seq ~round:r)
          ~max:((1 lsl r) * entry_max max))
  in
  let bundle = ref [ (rank, data) ] in
  for r = 0 to rounds - 1 do
    let partner = rank lxor (1 lsl r) in
    send t ~dst:partner ~tag:(tag_of ~seq ~round:r) (Coll_wire.pack !bundle);
    bundle := !bundle @ Coll_wire.unpack (await t hs.(r))
  done;
  let out = Array.make size "" in
  List.iter (fun (r, s) -> out.(r) <- s) !bundle;
  out

let allgather_gather_bcast t ~seq ~gather_alg ~bcast_alg ~max data =
  let size = t.tr.size in
  let packed =
    match gather_alg t ~seq ~round:0 ~root:0 ~max data with
    | Some out ->
        Coll_wire.pack (Array.to_list (Array.mapi (fun r s -> (r, s)) out))
    | None -> ""
  in
  let bundle =
    bcast_alg t ~seq ~round:16 ~root:0 ~max:(size * entry_max max) packed
  in
  let out = Array.make size "" in
  List.iter (fun (r, s) -> out.(r) <- s) (Coll_wire.unpack bundle);
  out

let allgather ?(alg = Binomial_tree) t ~max data =
  if String.length data > max then
    invalid_arg "Group.allgather: data longer than max";
  observed t "allgather" alg (fun h -> h.hc_allgather) @@ fun () ->
  let seq = next_seq t in
  if t.tr.size = 1 then [| data |]
  else
    match alg with
    | Linear ->
        allgather_gather_bcast t ~seq ~gather_alg:gather_linear
          ~bcast_alg:bcast_linear ~max data
    | Recursive_doubling when is_pow2 t.tr.size -> allgather_rd t ~seq ~max data
    | Binomial_tree | Recursive_doubling | Nic_forward ->
        allgather_gather_bcast t ~seq ~gather_alg:gather_binomial
          ~bcast_alg:bcast_binomial ~max data

(* --- reduce ------------------------------------------------------------ *)

let reduce_linear t ~seq ~round ~op ~root ~max data =
  let { rank; size; _ } = t.tr in
  let tag = tag_of ~seq ~round in
  if rank = root then begin
    let hs =
      Array.init size (fun i ->
          if i = root then None else Some (irecv t ~src:i ~tag ~max))
    in
    let acc = ref None in
    Array.iter
      (fun h ->
        let contrib = match h with None -> data | Some h -> await t h in
        acc :=
          Some
            (match !acc with
            | None -> contrib
            | Some a -> op.combine a contrib))
      hs;
    Some (Option.get !acc)
  end
  else begin
    send t ~dst:root ~tag data;
    None
  end

let reduce_binomial t ~seq ~round ~op ~root ~max data =
  let { rank; size; _ } = t.tr in
  let tag = tag_of ~seq ~round in
  let kids = Tree.children ~root ~size rank in
  let kid_hs = List.map (fun c -> irecv t ~src:c ~tag ~max) kids in
  let acc =
    List.fold_left (fun a h -> op.combine a (await t h)) data kid_hs
  in
  match Tree.parent ~root ~size rank with
  | Some p ->
      send t ~dst:p ~tag acc;
      None
  | None -> Some acc

let reduce ?(alg = Binomial_tree) t ~op ~root ~max data =
  check_root t root;
  if String.length data > max then
    invalid_arg "Group.reduce: data longer than max";
  observed t "reduce" alg (fun h -> h.hc_reduce) @@ fun () ->
  let seq = next_seq t in
  if t.tr.size = 1 then Some data
  else
    match alg with
    | Linear -> reduce_linear t ~seq ~round:0 ~op ~root ~max data
    | Binomial_tree | Recursive_doubling | Nic_forward ->
        reduce_binomial t ~seq ~round:0 ~op ~root ~max data

(* --- allreduce --------------------------------------------------------- *)

(* MPICH-style recursive doubling with non-power-of-two fold-in: the
   [rem = size - pof2] extra ranks first fold into a power-of-two core,
   the core runs log2(pof2) exchange rounds, and the folded-out ranks get
   the result back at the end. Round tags: 0 = fold-in, 1..k = exchange,
   30 = return. *)
let allreduce_rd t ~seq ~op ~max data =
  let { rank; size; _ } = t.tr in
  let pof2 = floor_pow2 size in
  let rem = size - pof2 in
  let tag r = tag_of ~seq ~round:r in
  let fold_h =
    if rank < 2 * rem && rank land 1 = 1 then
      Some (irecv t ~src:(rank - 1) ~tag:(tag 0) ~max)
    else None
  in
  let newrank =
    if rank < 2 * rem then if rank land 1 = 0 then -1 else rank / 2
    else rank - rem
  in
  let actual nr = if nr < rem then (2 * nr) + 1 else nr + rem in
  let rd_hs =
    if newrank < 0 then []
    else begin
      let rec loop mask r acc =
        if mask >= pof2 then List.rev acc
        else
          loop (mask lsl 1) (r + 1)
            (irecv t ~src:(actual (newrank lxor mask)) ~tag:(tag r) ~max :: acc)
      in
      loop 1 1 []
    end
  in
  let ret_h =
    if rank < 2 * rem && rank land 1 = 0 then
      Some (irecv t ~src:(rank + 1) ~tag:(tag 30) ~max)
    else None
  in
  let acc = ref data in
  if rank < 2 * rem then begin
    if rank land 1 = 0 then send t ~dst:(rank + 1) ~tag:(tag 0) data
    else acc := op.combine !acc (await t (Option.get fold_h))
  end;
  if newrank >= 0 then begin
    let mask = ref 1 and r = ref 1 and hs = ref rd_hs in
    while !mask < pof2 do
      send t ~dst:(actual (newrank lxor !mask)) ~tag:(tag !r) !acc;
      (match !hs with
      | h :: rest ->
          acc := op.combine !acc (await t h);
          hs := rest
      | [] ->
        (* [rd_hs] pre-posted one receive per doubling round, so running
           out before [mask] reaches [pof2] is a protocol bug, not an
           input error. *)
        failwith
          (Printf.sprintf
             "Group.allreduce_rd: rank %d exhausted its pre-posted round \
              receives at round %d (invariant: one per doubling round)"
             rank !r));
      mask := !mask lsl 1;
      incr r
    done
  end;
  if rank < 2 * rem then begin
    if rank land 1 = 1 then send t ~dst:(rank - 1) ~tag:(tag 30) !acc
    else acc := await t (Option.get ret_h)
  end;
  !acc

let allreduce ?(alg = Binomial_tree) t ~op ~max data =
  if String.length data > max then
    invalid_arg "Group.allreduce: data longer than max";
  observed t "allreduce" alg (fun h -> h.hc_allreduce) @@ fun () ->
  let seq = next_seq t in
  if t.tr.size = 1 then data
  else
    match alg with
    | Recursive_doubling -> allreduce_rd t ~seq ~op ~max data
    | Linear ->
        let r = reduce_linear t ~seq ~round:0 ~op ~root:0 ~max data in
        bcast_linear t ~seq ~round:16 ~root:0 ~max
          (Option.value r ~default:"")
    | Binomial_tree | Nic_forward ->
        let r = reduce_binomial t ~seq ~round:0 ~op ~root:0 ~max data in
        bcast_binomial t ~seq ~round:16 ~root:0 ~max
          (Option.value r ~default:"")
