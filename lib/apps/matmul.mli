(** Distributed matrix multiplication on a 4-node cluster (§7.5):
    a master partitions A by row blocks, broadcasts B, and collects
    partial results from the workers as they become ready using
    [select()] — the call whose substrate implementation the paper
    highlights. *)

type matrix = float array array

val random_matrix : seed:int -> n:int -> matrix
val multiply_seq : matrix -> matrix -> matrix
(** Sequential reference implementation. *)

val matrices_equal : ?eps:float -> matrix -> matrix -> bool

val encode_rows : matrix -> string
(** Wire encoding of a row block (8-byte little-endian IEEE doubles). *)

val decode_rows : string -> rows:int -> cols:int -> matrix

type result = {
  product : matrix;
  elapsed : Uls_engine.Time.ns;  (** distribute + compute + collect *)
}

val default_ns_per_flop : float
(** Naive triple-loop on the testbed's 700 MHz Pentium III. *)

val worker :
  ?ns_per_flop:float ->
  Uls_engine.Sim.t ->
  Uls_api.Sockets_api.stack ->
  node:int ->
  master:Uls_api.Sockets_api.addr ->
  unit ->
  unit
(** Worker fiber body: connect to the master, receive a row block and B,
    compute (charging virtual compute time), return the product rows. *)

val master :
  ?use_collectives:bool ->
  ?coll_base_port:int ->
  Uls_engine.Sim.t ->
  Uls_api.Sockets_api.stack ->
  node:int ->
  port:int ->
  workers:int ->
  a:matrix ->
  b:matrix ->
  result
(** Run the master (in the calling fiber): accept [workers] connections,
    distribute, select() over result sockets, assemble the product.

    With [~use_collectives:true] the master instead forms a
    {!Uls_collective.Group} spanning itself (rank 0) and the workers in
    accept order: B is broadcast down a binomial tree and the product
    rows return through one gather, replacing the per-worker B sends and
    the select() collect loop. Workers detect the mode from the protocol
    prelude, so the same {!worker} serves both. [coll_base_port]
    (default [port + 100]) is the first of [workers + 1] ports the mesh
    claims. *)
