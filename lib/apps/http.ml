open Uls_api.Sockets_api
module Sim = Uls_engine.Sim

exception Bad_request of string

type request = {
  meth : string;
  path : string;
  version : string;
  req_headers : (string * string) list;
  req_body : string;
}

type response = {
  status : int;
  reason : string;
  resp_version : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let header hdrs name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name hdrs

let keep_alive r =
  match (r.version, header r.req_headers "connection") with
  | _, Some c when String.lowercase_ascii c = "close" -> false
  | "HTTP/1.0", Some c -> String.lowercase_ascii c = "keep-alive"
  | "HTTP/1.0", None -> false
  | _ -> true

(* --- serialisation --------------------------------------------------- *)

let format_headers buf hdrs body =
  List.iter
    (fun (n, v) ->
      if String.lowercase_ascii n <> "content-length" then begin
        Buffer.add_string buf n;
        Buffer.add_string buf ": ";
        Buffer.add_string buf v;
        Buffer.add_string buf "\r\n"
      end)
    hdrs;
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n\r\n" (String.length body));
  Buffer.add_string buf body

let format_request r =
  let buf = Buffer.create (64 + String.length r.req_body) in
  Buffer.add_string buf
    (Printf.sprintf "%s %s %s\r\n" r.meth r.path r.version);
  format_headers buf r.req_headers r.req_body;
  Buffer.contents buf

let format_response r =
  let buf = Buffer.create (64 + String.length r.resp_body) in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %s\r\n" r.resp_version r.status r.reason);
  format_headers buf r.resp_headers r.resp_body;
  Buffer.contents buf

(* Printable, position- and size-dependent: a truncated, duplicated or
   shifted body never verifies. *)
let body_for ~size =
  String.init size (fun i -> Char.chr (0x21 + ((i * 7) + size) mod 94))

(* --- incremental framing machine ------------------------------------- *)

(* Shared by the request and response parsers: accumulate fragments,
   cut the header block at the first blank line, then collect the
   Content-Length-framed body. ['s] is the parsed start line. *)
module Framer = struct
  type 's t = {
    parse_start : string -> 's;
    max_header_bytes : int;
    mutable pending : string;
    mutable in_body : ('s * (string * string) list * int) option;
        (* start line, headers, body bytes still owed *)
  }

  let create ~parse_start ~max_header_bytes =
    { parse_start; max_header_bytes; pending = ""; in_body = None }

  let buffered t = String.length t.pending

  let find_crlfcrlf s =
    let n = String.length s in
    let rec go i =
      if i + 3 >= n then None
      else if
        s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
        && s.[i + 3] = '\n'
      then Some i
      else go (i + 1)
    in
    go 0

  let parse_header_line line =
    match String.index_opt line ':' with
    | None -> raise (Bad_request ("header without colon: " ^ line))
    | Some i ->
      let name = String.lowercase_ascii (String.sub line 0 i) in
      let v = String.sub line (i + 1) (String.length line - i - 1) in
      (name, String.trim v)

  let split_lines block =
    String.split_on_char '\n' block
    |> List.map (fun l ->
           let n = String.length l in
           if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
    |> List.filter (fun l -> l <> "")

  let content_length hdrs =
    match List.assoc_opt "content-length" hdrs with
    | None -> 0
    | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 0 -> n
      | _ -> raise (Bad_request ("bad content-length: " ^ v)))

  let feed t data =
    if data <> "" then t.pending <- t.pending ^ data;
    let out = ref [] in
    let progress = ref true in
    while !progress do
      progress := false;
      match t.in_body with
      | Some (start, hdrs, need) ->
        if String.length t.pending >= need then begin
          let body = String.sub t.pending 0 need in
          t.pending <-
            String.sub t.pending need (String.length t.pending - need);
          t.in_body <- None;
          out := (start, hdrs, body) :: !out;
          progress := true
        end
      | None -> (
        match find_crlfcrlf t.pending with
        | Some i ->
          let block = String.sub t.pending 0 i in
          t.pending <-
            String.sub t.pending (i + 4) (String.length t.pending - i - 4);
          (match split_lines block with
          | [] -> raise (Bad_request "empty header block")
          | start_line :: hdr_lines ->
            let hdrs = List.map parse_header_line hdr_lines in
            t.in_body <-
              Some (t.parse_start start_line, hdrs, content_length hdrs));
          progress := true
        | None ->
          if String.length t.pending > t.max_header_bytes then
            raise (Bad_request "header block too large"))
    done;
    List.rev !out
end

let default_max_header = 8_192

module Parser = struct
  type t = (string * string * string) Framer.t

  let parse_start line =
    match String.split_on_char ' ' line with
    | [ meth; path; version ] -> (meth, path, version)
    | _ -> raise (Bad_request ("bad request line: " ^ line))

  let create ?(max_header_bytes = default_max_header) () =
    Framer.create ~parse_start ~max_header_bytes

  let feed t data =
    Framer.feed t data
    |> List.map (fun ((meth, path, version), hdrs, body) ->
           { meth; path; version; req_headers = hdrs; req_body = body })

  let buffered = Framer.buffered
end

module Response_parser = struct
  type t = (string * int * string) Framer.t

  let parse_start line =
    match String.split_on_char ' ' line with
    | version :: code :: rest -> (
      match int_of_string_opt code with
      | Some status -> (version, status, String.concat " " rest)
      | None -> raise (Bad_request ("bad status line: " ^ line)))
    | _ -> raise (Bad_request ("bad status line: " ^ line))

  let create ?(max_header_bytes = default_max_header) () =
    Framer.create ~parse_start ~max_header_bytes

  let feed t data =
    Framer.feed t data
    |> List.map (fun ((version, status, reason), hdrs, body) ->
           {
             status;
             reason;
             resp_version = version;
             resp_headers = hdrs;
             resp_body = body;
           })

  let buffered = Framer.buffered
end

(* --- the §7.4 workload ------------------------------------------------ *)

let request_bytes = 16
let http10_requests_per_conn = 1
let http11_requests_per_conn = 8
let chunk = 65_536

let server sim stack ~node ~port ~response_size ~requests_per_conn () =
  let l = stack.listen ~node ~port ~backlog:16 in
  let body = body_for ~size:response_size in
  let serve s () =
    let p = Parser.create () in
    let served = ref 0 in
    let closing = ref false in
    (try
       while not !closing do
         let data = s.recv chunk in
         if data = "" then closing := true
         else
           List.iter
             (fun req ->
               if not !closing then begin
                 incr served;
                 let last =
                   (not (keep_alive req)) || !served >= requests_per_conn
                 in
                 s.send
                   (format_response
                      {
                        status = 200;
                        reason = "OK";
                        resp_version = "HTTP/1.1";
                        resp_headers =
                          [ ("connection", if last then "close" else "keep-alive") ];
                        resp_body = body;
                      });
                 if last then closing := true
               end)
             (Parser.feed p data)
       done
     with Connection_closed | Connection_reset | Bad_request _ -> ());
    s.close ()
  in
  let rec accept_loop () =
    let s, _ = l.accept () in
    (* Concurrent clients (the paper uses three) get their own fiber. *)
    Sim.spawn sim ~name:"http-conn" (serve s);
    accept_loop ()
  in
  try accept_loop () with Connection_closed -> ()

type client_result = {
  requests : int;
  mean_response_time : float;
  response_times : float list;
}

let client sim stack ~node ~server ~response_size ~requests_per_conn
    ~connections =
  let times = ref [] in
  let expected = body_for ~size:response_size in
  for _ = 1 to connections do
    let t_conn = Sim.now sim in
    let s = stack.connect ~node server in
    let conn_cost = Sim.now sim - t_conn in
    let rp = Response_parser.create () in
    let backlog = ref [] in
    (* Read until at least one complete response is out of the parser. *)
    let next_response () =
      let rec go () =
        match !backlog with
        | r :: rest ->
          backlog := rest;
          r
        | [] ->
          let data = s.recv chunk in
          if data = "" then raise Connection_closed;
          backlog := Response_parser.feed rp data;
          go ()
      in
      go ()
    in
    for r = 1 to requests_per_conn do
      let t0 = Sim.now sim in
      s.send
        (format_request
           {
             meth = "GET";
             path = "/object";
             version = "HTTP/1.1";
             req_headers =
               [ ("connection",
                  if r = requests_per_conn then "close" else "keep-alive") ];
             req_body = "";
           });
      let resp = next_response () in
      if resp.resp_body <> expected then
        failwith "http client: response body mismatch";
      let dt = Sim.now sim - t0 in
      (* Connection setup is charged to the first request of the
         connection, matching a response-time measurement taken from
         "want the object" to "have the object". *)
      let dt = if r = 1 then dt + conn_cost else dt in
      times := float_of_int dt :: !times
    done;
    s.close ()
  done;
  let times_l = List.rev !times in
  let n = List.length times_l in
  {
    requests = n;
    mean_response_time =
      (if n = 0 then 0. else List.fold_left ( +. ) 0. times_l /. float_of_int n);
    response_times = times_l;
  }
