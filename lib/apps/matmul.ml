open Uls_api.Sockets_api
module Sim = Uls_engine.Sim

type matrix = float array array

let random_matrix ~seed ~n =
  let rng = Uls_engine.Rng.create ~seed in
  Array.init n (fun _ -> Array.init n (fun _ -> Uls_engine.Rng.float rng -. 0.5))

let multiply_seq a b =
  let n = Array.length a in
  let m = Array.length b.(0) in
  let k = Array.length b in
  Array.init n (fun i ->
      Array.init m (fun j ->
          let sum = ref 0. in
          for l = 0 to k - 1 do
            sum := !sum +. (a.(i).(l) *. b.(l).(j))
          done;
          !sum))

let matrices_equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ra rb ->
         Array.length ra = Array.length rb
         && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) ra rb)
       a b

(* --- float (de)serialisation ---------------------------------------- *)

let encode_rows rows =
  let nrows = Array.length rows in
  let ncols = if nrows = 0 then 0 else Array.length rows.(0) in
  let b = Bytes.create (nrows * ncols * 8) in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          Bytes.set_int64_le b (((i * ncols) + j) * 8) (Int64.bits_of_float v))
        row)
    rows;
  Bytes.to_string b

let decode_rows s ~rows ~cols =
  let b = Bytes.of_string s in
  Array.init rows (fun i ->
      Array.init cols (fun j ->
          Int64.float_of_bits (Bytes.get_int64_le b (((i * cols) + j) * 8))))

let header_bytes = 64

(* Fixed-size headers keep the protocol working over datagram-mode
   sockets (one recv = one whole message). *)
let header ints =
  let line = String.concat " " (List.map string_of_int ints) in
  if String.length line >= header_bytes then invalid_arg "matmul: header too long";
  line ^ String.make (header_bytes - String.length line) ' '

let read_header s =
  let line = String.trim (recv_exact s header_bytes) in
  List.map int_of_string (String.split_on_char ' ' line)

(* --- collective-mode plumbing ----------------------------------------- *)

module Group = Uls_collective.Group
module Sockets_group = Uls_collective.Sockets_group

(* First header in collective mode: [magic; rank; nranks; base_port],
   followed by the packed node-id list. Legacy masters send the worker's
   row-block header first instead, and row_start is never negative, so
   the magic also versions the protocol. *)
let coll_magic = -7

let encode_nodes nodes =
  let b = Bytes.create (8 * Array.length nodes) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (i * 8) (Int64.of_int v)) nodes;
  Bytes.to_string b

let decode_nodes s ~count =
  Array.init count (fun i ->
      Int64.to_int (String.get_int64_le s (i * 8)))

(* Upper bound on any gather contribution, computable by every rank. *)
let gather_max ~n ~workers = (n + workers - 1) / workers * n * 8

(* --- worker ----------------------------------------------------------- *)

(* Naive triple loop on a ~700 MHz Pentium III: ~140 Mflop/s. *)
let default_ns_per_flop = 7.0

let compute_block sim ~ns_per_flop ~rows ~n a_block b =
  let product = if rows = 0 then [||] else multiply_seq a_block b in
  (* Charge the sequential compute time of the block. *)
  let flops = 2. *. float_of_int (rows * n * n) in
  Sim.delay sim (int_of_float (flops *. ns_per_flop));
  product

(* Collective-mode worker: B arrives by group broadcast and the product
   rows leave by group gather; only the prelude and the A block use the
   master's stream. *)
let worker_collective ~ns_per_flop sim stack s ~rank ~nranks ~base_port =
  let nodes = decode_nodes (recv_exact s (nranks * 8)) ~count:nranks in
  let g = Sockets_group.connect_mesh sim stack ~nodes ~rank ~base_port in
  (match read_header s with
  | [ _row_start; rows; n ] ->
    let a_block =
      if rows = 0 then [||]
      else decode_rows (recv_exact s (rows * n * 8)) ~rows ~cols:n
    in
    let b =
      decode_rows (Group.bcast g ~root:0 ~max:(n * n * 8) "") ~rows:n ~cols:n
    in
    let product = compute_block sim ~ns_per_flop ~rows ~n a_block b in
    (* Linear gather: every worker returns its block straight to the
       master, like the select() loop it replaces — a tree would add a
       store-and-forward hop to half the blocks. *)
    ignore
      (Group.gather ~alg:Group.Linear g ~root:0
         ~max:(gather_max ~n ~workers:(nranks - 1))
         (encode_rows product))
  | _ -> failwith "matmul worker: bad collective header")

let worker ?(ns_per_flop = default_ns_per_flop) sim stack ~node ~master () =
  let s = stack.connect ~node master in
  (match read_header s with
  | [ magic; rank; nranks; base_port ] when magic = coll_magic ->
    worker_collective ~ns_per_flop sim stack s ~rank ~nranks ~base_port
  | [ row_start; rows; n ] ->
    let a_block =
      if rows = 0 then [||]
      else decode_rows (recv_exact s (rows * n * 8)) ~rows ~cols:n
    in
    let b = decode_rows (recv_exact s (n * n * 8)) ~rows:n ~cols:n in
    let product = compute_block sim ~ns_per_flop ~rows ~n a_block b in
    s.send (header [ row_start; rows ]);
    if rows > 0 then s.send (encode_rows product)
  | _ -> failwith "matmul worker: bad header");
  s.close ()

(* --- master ------------------------------------------------------------ *)

type result = {
  product : matrix;
  elapsed : Uls_engine.Time.ns;
}

(* Collective-mode master: rank 0 of a mesh spanning itself and the
   workers (in accept order). Row-block headers and A blocks stay
   point-to-point on the accept streams; B goes out as one binomial
   broadcast and results come back as one binomial gather. *)
let master_collective sim stack ~node ~base_port ~streams ~peers ~a ~b =
  let n = Array.length a in
  let workers = Array.length streams in
  let nranks = workers + 1 in
  let nodes = Array.append [| node |] peers in
  Array.iteri
    (fun w s ->
      s.send (header [ coll_magic; w + 1; nranks; base_port ]);
      s.send (encode_nodes nodes))
    streams;
  let g = Sockets_group.connect_mesh sim stack ~nodes ~rank:0 ~base_port in
  (* Mesh establishment is connection setup, like accept(): the timed
     phase is distribute + compute + collect. *)
  let t0 = Sim.now sim in
  let base = n / workers and extra = n mod workers in
  let row_start = ref 0 in
  let blocks =
    Array.mapi
      (fun w s ->
        let rows = base + (if w < extra then 1 else 0) in
        let start = !row_start in
        s.send (header [ start; rows; n ]);
        if rows > 0 then s.send (encode_rows (Array.sub a start rows));
        row_start := start + rows;
        (start, rows))
      streams
  in
  ignore (Group.bcast g ~root:0 ~max:(n * n * 8) (encode_rows b));
  let parts =
    match Group.gather ~alg:Group.Linear g ~root:0 ~max:(gather_max ~n ~workers) "" with
    | Some parts -> parts
    | None ->
      failwith
        "Matmul.master: gather returned no parts at rank 0, the gather root \
         (Group.gather must return Some at the root)"
  in
  let product = Array.make n [||] in
  Array.iteri
    (fun w (start, rows) ->
      if rows > 0 then
        Array.blit (decode_rows parts.(w + 1) ~rows ~cols:n) 0 product start rows)
    blocks;
  let elapsed = Sim.now sim - t0 in
  Array.iter (fun s -> s.close ()) streams;
  { product; elapsed }

let master ?(use_collectives = false) ?coll_base_port sim stack ~node ~port
    ~workers ~a ~b =
  let n = Array.length a in
  let l = stack.listen ~node ~port ~backlog:workers in
  let accepted = Array.init workers (fun _ -> l.accept ()) in
  let streams = Array.map fst accepted in
  if use_collectives then begin
    let base_port = Option.value coll_base_port ~default:(port + 100) in
    let peers = Array.map (fun (_, addr) -> addr.node) accepted in
    let result = master_collective sim stack ~node ~base_port ~streams ~peers ~a ~b in
    l.close_listener ();
    result
  end
  else begin
  let t0 = Sim.now sim in
  (* Distribute row blocks and B. *)
  let base = n / workers and extra = n mod workers in
  let row_start = ref 0 in
  Array.iteri
    (fun w s ->
      let rows = base + (if w < extra then 1 else 0) in
      s.send (header [ !row_start; rows; n ]);
      if rows > 0 then s.send (encode_rows (Array.sub a !row_start rows));
      s.send (encode_rows b);
      row_start := !row_start + rows)
    streams;
  (* Collect with select() as workers finish. *)
  let product = Array.make n [||] in
  let pending = ref (Array.to_list streams) in
  let done_count = ref 0 in
  while !done_count < workers do
    let ready = stack.select ~node !pending in
    List.iter
      (fun s ->
        match read_header s with
        | [ row_start; rows ] ->
          if rows > 0 then begin
            let block = decode_rows (recv_exact s (rows * n * 8)) ~rows ~cols:n in
            Array.blit block 0 product row_start rows
          end;
          incr done_count;
          pending := List.filter (fun s' -> s' != s) !pending;
          s.close ()
        | _ -> failwith "matmul master: bad result header")
      ready
  done;
  l.close_listener ();
  { product; elapsed = Sim.now sim - t0 }
  end
