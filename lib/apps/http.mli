(** HTTP/1.x for the web-server workload of §7.4 and the event-driven
    server runtime ({!Uls_server}).

    Real wire framing, parsed incrementally: requests and responses are
    header blocks terminated by a blank line, with [Content-Length]-framed
    bodies, arriving split across arbitrary stream-read boundaries (the
    substrate's data-streaming mode, like TCP, fragments and coalesces
    freely). Persistent connections follow HTTP/1.1 rules: keep-alive by
    default, [Connection: close] (or HTTP/1.0 without
    [Connection: keep-alive]) ends the connection after the response.

    {!server}/{!client} below keep the paper's §7.4 workload shape —
    fixed-size responses, [N] requests per connection — now carried over
    this real framing. *)

exception Bad_request of string
(** Malformed framing: bad start line, bad [Content-Length], or a header
    block exceeding the size cap. *)

type request = {
  meth : string;
  path : string;
  version : string;  (** ["HTTP/1.1"] *)
  req_headers : (string * string) list;  (** names lowercased *)
  req_body : string;
}

type response = {
  status : int;
  reason : string;
  resp_version : string;
  resp_headers : (string * string) list;  (** names lowercased *)
  resp_body : string;
}

val header : (string * string) list -> string -> string option
(** Case-insensitive header lookup. *)

val keep_alive : request -> bool
(** HTTP/1.1 defaults to keep-alive unless [Connection: close];
    HTTP/1.0 defaults to close unless [Connection: keep-alive]. *)

val format_request : request -> string
(** Serialise with [Content-Length] derived from the body (any
    caller-supplied [content-length] header is dropped). *)

val format_response : response -> string

val body_for : size:int -> string
(** Deterministic printable body pattern, a function of [size] alone —
    both ends can regenerate it, so responses verify byte-exactly
    without shipping expectations out of band. *)

(** Incremental request parser: feed stream fragments, collect complete
    requests as they materialise. One instance per connection. *)
module Parser : sig
  type t

  val create : ?max_header_bytes:int -> unit -> t
  (** [max_header_bytes] (default 8192) caps the start-line + header
      block; exceeding it raises {!Bad_request}. *)

  val feed : t -> string -> request list
  (** Append a fragment; return every request completed by it (zero or
      more — a short read may complete nothing, one read may complete
      several pipelined requests). @raise Bad_request on bad framing. *)

  val buffered : t -> int
  (** Bytes held for an incomplete message. *)
end

(** Same machine for the client side. *)
module Response_parser : sig
  type t

  val create : ?max_header_bytes:int -> unit -> t
  val feed : t -> string -> response list
  val buffered : t -> int
end

(** {1 The §7.4 workload} *)

val request_bytes : int
(** 16 — the paper's nominal request size (kept for reference; the real
    request line is a few bytes longer). *)

val http10_requests_per_conn : int
val http11_requests_per_conn : int

val server :
  Uls_engine.Sim.t ->
  Uls_api.Sockets_api.stack ->
  node:int ->
  port:int ->
  response_size:int ->
  requests_per_conn:int ->
  unit ->
  unit
(** Accept loop; each connection served by its own fiber with an
    incremental {!Parser}. Responds with [body_for ~size:response_size];
    closes after [requests_per_conn] requests (or earlier if the client
    sends [Connection: close]). Runs forever; spawn as a fiber. *)

type client_result = {
  requests : int;
  mean_response_time : float;  (** ns, connection setup amortised in *)
  response_times : float list;  (** per-request, ns *)
}

val client :
  Uls_engine.Sim.t ->
  Uls_api.Sockets_api.stack ->
  node:int ->
  server:Uls_api.Sockets_api.addr ->
  response_size:int ->
  requests_per_conn:int ->
  connections:int ->
  client_result
(** Issue [connections * requests_per_conn] requests, verifying each
    response body against [body_for]; response time of a request
    includes its share of connection setup (the first request of each
    connection carries the whole connect).
    @raise Failure on a body mismatch. *)
