type t = {
  link_bits_per_ns : float;
  link_propagation : Uls_engine.Time.ns;
  switch_fwd_latency : Uls_engine.Time.ns;
  host_copy_ns_per_byte : float;
  syscall : Uls_engine.Time.ns;
  interrupt : Uls_engine.Time.ns;
  context_switch : Uls_engine.Time.ns;
  sched_wakeup : Uls_engine.Time.ns;
  page_pin_syscall : Uls_engine.Time.ns;
  page_pin_per_page : Uls_engine.Time.ns;
  page_size : int;
  pio_write : Uls_engine.Time.ns;
  poll_gap : Uls_engine.Time.ns;
  nic_mailbox_fetch : Uls_engine.Time.ns;
  nic_tx_per_msg : Uls_engine.Time.ns;
  nic_tx_per_frame : Uls_engine.Time.ns;
  nic_rx_classify : Uls_engine.Time.ns;
  nic_rx_per_frame : Uls_engine.Time.ns;
  nic_tag_match_per_desc : Uls_engine.Time.ns;
  nic_hash_lookup : Uls_engine.Time.ns;
  nic_ack_gen : Uls_engine.Time.ns;
  nic_coll_forward : Uls_engine.Time.ns;
      (** per-frame firmware cost to re-emit a matched collective frame
          (forward-on-match: the descriptor is prebuilt, so this is
          cheaper than a full host-initiated transmit) *)
  dma_setup : Uls_engine.Time.ns;
  dma_ns_per_byte : float;
  tcp_tx_per_segment : Uls_engine.Time.ns;
  tcp_rx_per_segment : Uls_engine.Time.ns;
  driver_tx_per_frame : Uls_engine.Time.ns;
  driver_rx_per_frame : Uls_engine.Time.ns;
  tcp_connect_kernel : Uls_engine.Time.ns;
  emp_host_post : Uls_engine.Time.ns;
  emp_host_reap : Uls_engine.Time.ns;
  nic_doorbell_batch : Uls_engine.Time.ns;
  nic_ring_slot_fetch : Uls_engine.Time.ns;
  ring_slot_post : Uls_engine.Time.ns;
  ring_reap_slot : Uls_engine.Time.ns;
}

let paper_testbed =
  {
    link_bits_per_ns = 1.0;
    link_propagation = 500;
    switch_fwd_latency = 2_500;
    host_copy_ns_per_byte = 1.8;
    syscall = 2_500;
    interrupt = 5_000;
    context_switch = 4_000;
    sched_wakeup = 18_000;
    page_pin_syscall = 15_000;
    page_pin_per_page = 2_000;
    page_size = 4_096;
    pio_write = 700;
    poll_gap = 200;
    nic_mailbox_fetch = 2_000;
    nic_tx_per_msg = 5_000;
    nic_tx_per_frame = 2_000;
    nic_rx_classify = 4_000;
    nic_rx_per_frame = 2_000;
    nic_tag_match_per_desc = 550;
    nic_hash_lookup = 700;
    nic_ack_gen = 1_500;
    nic_coll_forward = 1_200;
    dma_setup = 1_800;
    dma_ns_per_byte = 1.9;
    tcp_tx_per_segment = 10_000;
    tcp_rx_per_segment = 6_500;
    driver_tx_per_frame = 4_000;
    driver_rx_per_frame = 3_000;
    tcp_connect_kernel = 40_000;
    emp_host_post = 800;
    emp_host_reap = 1_200;
    nic_doorbell_batch = 2_000;
    nic_ring_slot_fetch = 600;
    ring_slot_post = 150;
    ring_reap_slot = 100;
  }

let round_ns f = int_of_float (Float.round f)

let copy_cost t n = round_ns (t.host_copy_ns_per_byte *. float_of_int n)

let dma_cost t n = t.dma_setup + round_ns (t.dma_ns_per_byte *. float_of_int n)
let dma_stream_cost t n = round_ns (t.dma_ns_per_byte *. float_of_int n)

let pin_cost t ~bytes =
  let pages = (bytes + t.page_size - 1) / t.page_size in
  let pages = max 1 pages in
  t.page_pin_syscall + (pages * t.page_pin_per_page)
