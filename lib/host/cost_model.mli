(** Every latency/occupancy constant of the simulated testbed, in one
    record. The [paper_testbed] preset is calibrated so the reproduced
    micro-benchmarks land near the paper's headline numbers (EMP ~28 us,
    substrate datagram ~28.5 us, data streaming ~37 us, TCP ~120 us for
    4-byte messages; TCP ~340 Mb/s at 16 KB buffers, ~550 Mb/s tuned;
    substrate >840 Mb/s). Experiments vary fields explicitly rather than
    editing the preset. *)

type t = {
  (* Wire and switch *)
  link_bits_per_ns : float;
  link_propagation : Uls_engine.Time.ns;
  switch_fwd_latency : Uls_engine.Time.ns;
  (* Host CPU (Pentium III 700 MHz) *)
  host_copy_ns_per_byte : float;
  syscall : Uls_engine.Time.ns;
  interrupt : Uls_engine.Time.ns;
  context_switch : Uls_engine.Time.ns;
  sched_wakeup : Uls_engine.Time.ns;  (** blocked process: event -> running *)
  page_pin_syscall : Uls_engine.Time.ns;
  page_pin_per_page : Uls_engine.Time.ns;
  page_size : int;
  pio_write : Uls_engine.Time.ns;  (** MMIO doorbell over PCI *)
  poll_gap : Uls_engine.Time.ns;  (** host polling loop iteration *)
  (* Tigon2 NIC (two 88 MHz MIPS cores) *)
  nic_mailbox_fetch : Uls_engine.Time.ns;
  nic_tx_per_msg : Uls_engine.Time.ns;
  nic_tx_per_frame : Uls_engine.Time.ns;
  nic_rx_classify : Uls_engine.Time.ns;
  nic_rx_per_frame : Uls_engine.Time.ns;
  nic_tag_match_per_desc : Uls_engine.Time.ns;  (** 550 ns: paper §6.3 *)
  nic_hash_lookup : Uls_engine.Time.ns;
      (** one hash-table probe of the firmware match index (hashed
          engine); a concrete lookup makes at most four *)
  nic_ack_gen : Uls_engine.Time.ns;
  nic_coll_forward : Uls_engine.Time.ns;
      (** per-frame firmware cost to re-emit a matched collective frame
          (forward-on-match descriptors are prebuilt, so this is cheaper
          than the host-initiated transmit path) *)
  dma_setup : Uls_engine.Time.ns;
  dma_ns_per_byte : float;  (** PCI 64/66: ~528 MB/s *)
  (* Kernel TCP/IP stack + Acenic-style driver *)
  tcp_tx_per_segment : Uls_engine.Time.ns;
  tcp_rx_per_segment : Uls_engine.Time.ns;
  driver_tx_per_frame : Uls_engine.Time.ns;
  driver_rx_per_frame : Uls_engine.Time.ns;
  tcp_connect_kernel : Uls_engine.Time.ns;  (** per-end handshake bookkeeping *)
  (* EMP host library *)
  emp_host_post : Uls_engine.Time.ns;  (** descriptor build, user space *)
  emp_host_reap : Uls_engine.Time.ns;  (** completion processing *)
  (* Submission/completion rings (AF_XDP / io_uring style batched path) *)
  nic_doorbell_batch : Uls_engine.Time.ns;
      (** firmware cost to service one doorbell: fetch the mailbox word
          and locate the submission ring tail — paid once per doorbell,
          however many descriptors the batch covers *)
  nic_ring_slot_fetch : Uls_engine.Time.ns;
      (** DMA-fetch and parse one fixed-format ring descriptor; cheaper
          than [nic_mailbox_fetch] + [nic_tx_per_msg] because the slot
          layout is fixed and prefetched in bulk *)
  ring_slot_post : Uls_engine.Time.ns;
      (** host cost to write one descriptor into a ring slot — a cached
          memory write, no MMIO *)
  ring_reap_slot : Uls_engine.Time.ns;
      (** host cost per additional completion reaped from a completion
          ring after the first ([emp_host_reap] covers the first) *)
}

val paper_testbed : t

val copy_cost : t -> int -> Uls_engine.Time.ns
(** Host memcpy cost for [n] bytes. *)

val dma_cost : t -> int -> Uls_engine.Time.ns
(** One DMA transaction moving [n] bytes across the PCI bus. *)

val dma_stream_cost : t -> int -> Uls_engine.Time.ns
(** Byte time alone for [n] bytes on an already-armed DMA engine — what
    a transfer pays when it rides a burst pipeline back-to-back behind
    another, skipping the per-transaction [dma_setup]. *)

val pin_cost : t -> bytes:int -> Uls_engine.Time.ns
(** Pin-and-translate system call covering [bytes] (page granularity). *)
