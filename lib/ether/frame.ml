type payload = ..
type payload += Raw

type t = {
  src : int;
  dst : int;
  payload_len : int;
  payload : payload;
  corrupted : bool;
}

let mtu = 1500
let min_payload = 46
let header_bytes = 14 + 4
let overhead_bytes = 8 + 12
let min_frame = 64 (* header + payload + FCS, before preamble/IFG *)

let make ~src ~dst ~payload_len payload =
  if payload_len < 0 || payload_len > mtu then
    invalid_arg (Printf.sprintf "Frame.make: payload_len %d" payload_len);
  { src; dst; payload_len; payload; corrupted = false }

let corrupt t = { t with corrupted = true }
let corrupted t = t.corrupted

let wire_bytes t =
  let framed = max min_frame (t.payload_len + header_bytes) in
  framed + overhead_bytes

let pp fmt t =
  Format.fprintf fmt "frame %d->%d (%dB)" t.src t.dst t.payload_len
