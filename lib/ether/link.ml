open Uls_engine

type t = {
  sim : Sim.t;
  name : string;
  xmit : Resource.t;
  bits_per_ns : float;
  propagation : Time.ns;
  mutable receiver : (Frame.t -> unit) option;
  mutable fault : Fault.t option;
  mutable frames : int;
  mutable bytes : int;
}

let create sim ?(bits_per_ns = 1.0) ?(propagation = 500) ~name () =
  if bits_per_ns <= 0. then invalid_arg "Link.create: rate";
  {
    sim;
    name;
    xmit = Resource.create sim ~name;
    bits_per_ns;
    propagation;
    receiver = None;
    fault = None;
    frames = 0;
    bytes = 0;
  }

let name t = t.name
let set_receiver t f = t.receiver <- Some f
let set_fault t fault = t.fault <- Some fault

let transmit_time t frame =
  let bits = float_of_int (Frame.wire_bytes frame * 8) in
  int_of_float (Float.round (bits /. t.bits_per_ns))

let deliver_at t when_ frame =
  Sim.at t.sim when_ (fun () ->
      match t.receiver with
      | Some deliver -> deliver frame
      | None -> ())

let send t frame =
  t.frames <- t.frames + 1;
  t.bytes <- t.bytes + Frame.wire_bytes frame;
  (* The sender always pays the transmit time: a frame lost or damaged
     on the wire still occupied the wire. *)
  let finish = Resource.completion_after t.xmit (transmit_time t frame) in
  let arrival = finish + t.propagation in
  let verdict =
    match t.fault with
    | None -> Fault.Deliver
    | Some fault ->
      Fault.decide fault ~link:t.name ~src:frame.Frame.src ~dst:frame.Frame.dst
  in
  match verdict with
  | Fault.Deliver -> deliver_at t arrival frame
  | Fault.Drop _ -> ()
  | Fault.Corrupt -> deliver_at t arrival (Frame.corrupt frame)
  | Fault.Duplicate ->
    deliver_at t arrival frame;
    (* The copy arrives back to back, one frame time later. *)
    deliver_at t (arrival + transmit_time t frame) frame
  | Fault.Delay extra -> deliver_at t (arrival + extra) frame

let frames_sent t = t.frames
let bytes_sent t = t.bytes
let busy_until t = Resource.free_at t.xmit
