(** Star topology: [n] stations, one switch, full-duplex gigabit links —
    the testbed of the paper (4 machines on a Packet Engines switch). *)

type t

val create :
  Uls_engine.Sim.t ->
  ?bits_per_ns:float ->
  ?propagation:Uls_engine.Time.ns ->
  ?fwd_latency:Uls_engine.Time.ns ->
  ?queue_limit:int ->
  stations:int ->
  unit ->
  t

val stations : t -> int
val sim : t -> Uls_engine.Sim.t

val attach : t -> station:int -> (Frame.t -> unit) -> unit
(** Set the station's receive handler (its NIC rx entry point). *)

val uplink : t -> station:int -> Link.t
(** The station-to-switch link; the station's NIC transmits on this. *)

val send : t -> Frame.t -> unit
(** Transmit on the frame's [src] station uplink. *)

val switch : t -> Switch.t

val set_fault : t -> Uls_engine.Fault.t -> unit
(** Install a fault engine on every hop: station uplinks
    (["uplink-<i>"]), switch ingress (["sw-in-<port>"]) and switch
    egress links (["sw-egress-<i>"]). *)

val set_fault_filter : t -> (Frame.t -> bool) -> unit
(** Legacy boolean drop filter at switch ingress only. *)
