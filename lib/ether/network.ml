open Uls_engine

type t = {
  sim : Sim.t;
  n : int;
  uplinks : Link.t array;
  sw : Switch.t;
}

let create sim ?bits_per_ns ?propagation ?fwd_latency ?queue_limit ~stations () =
  if stations <= 0 then invalid_arg "Network.create: stations";
  let sw = Switch.create sim ?fwd_latency ?queue_limit ~ports:stations () in
  let make_uplink i =
    let link =
      Link.create sim ?bits_per_ns ?propagation
        ~name:(Printf.sprintf "uplink-%d" i)
        ()
    in
    Link.set_receiver link (fun frame -> Switch.ingress sw ~port:i frame);
    link
  in
  { sim; n = stations; uplinks = Array.init stations make_uplink; sw }

let stations t = t.n
let sim t = t.sim

let attach t ~station handler =
  Switch.connect_station t.sw ~port:station ~station handler

let uplink t ~station = t.uplinks.(station)
let send t frame = Link.send t.uplinks.(frame.Frame.src) frame
let switch t = t.sw
let set_fault_filter t f = Switch.set_fault_filter t.sw f

let set_fault t fault =
  (* Faults can strike on any hop: station uplinks ("uplink-<i>"), the
     switch fabric ("sw-in-<port>") and the switch-to-station egress
     links ("sw-egress-<i>"). Per-link plans key on those names. *)
  Array.iter (fun link -> Link.set_fault link fault) t.uplinks;
  Switch.set_fault t.sw fault;
  for i = 0 to t.n - 1 do
    Link.set_fault (Switch.egress t.sw ~port:i) fault
  done
