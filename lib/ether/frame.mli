(** Ethernet frames. The payload is an extensible variant so that upper
    layers (EMP, IP) can ride the same wire model without this library
    depending on them. Sizes are modelled, not serialised: [payload_len]
    is the number of payload bytes the frame occupies on the wire. *)

type payload = ..
type payload += Raw

type t = {
  src : int;  (** source station (node id; the switch learns these) *)
  dst : int;  (** destination station *)
  payload_len : int;  (** bytes of L2 payload (includes upper headers) *)
  payload : payload;
  corrupted : bool;
      (** payload bytes were damaged in flight; the receiving NIC's FCS
          check will discard the frame (fault injection only) *)
}

val mtu : int
(** Maximum L2 payload: 1500 bytes. *)

val min_payload : int
(** Minimum L2 payload: 46 bytes (frames are padded up to this). *)

val header_bytes : int
(** MAC header (14) + FCS (4). *)

val overhead_bytes : int
(** Preamble + SFD (8) and inter-frame gap (12): occupies wire time but
    is not part of the frame proper. *)

val make : src:int -> dst:int -> payload_len:int -> payload -> t
(** @raise Invalid_argument if [payload_len] exceeds {!mtu}. Frames are
    born uncorrupted. *)

val corrupt : t -> t
(** The same frame with damaged payload bytes (a bad FCS on arrival). *)

val corrupted : t -> bool

val wire_bytes : t -> int
(** Total wire occupancy in bytes, including padding to the 64-byte
    minimum frame, header, FCS, preamble and IFG. *)

val pp : Format.formatter -> t -> unit
