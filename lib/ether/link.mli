(** A unidirectional point-to-point link. Frames serialise onto the wire
    in FIFO order at the link rate and are delivered (whole-frame, i.e.
    store-and-forward at the receiver) after transmission plus
    propagation. *)

type t

val create :
  Uls_engine.Sim.t ->
  ?bits_per_ns:float ->
  ?propagation:Uls_engine.Time.ns ->
  name:string ->
  unit ->
  t
(** Default rate is 1.0 bit/ns (Gigabit Ethernet); default propagation is
    500 ns (cable + PHY + serdes). *)

val name : t -> string
val set_receiver : t -> (Frame.t -> unit) -> unit

val set_fault : t -> Uls_engine.Fault.t -> unit
(** Consult the fault engine (keyed by this link's name) for every frame
    sent; lost and damaged frames still occupy their wire time. *)

val send : t -> Frame.t -> unit
(** Enqueue a frame; does not block the caller. Delivery is dropped
    silently if no receiver is attached. *)

val transmit_time : t -> Frame.t -> Uls_engine.Time.ns
val frames_sent : t -> int
val bytes_sent : t -> int
(** Wire bytes, including overheads. *)

val busy_until : t -> Uls_engine.Time.ns
