open Uls_engine

type port = {
  egress : Link.t;
  mutable queued_bytes : int;
}

type t = {
  sim : Sim.t;
  metrics : Metrics.t;
  drop_counters : (string, Stats.Counter.t) Hashtbl.t;
      (* cause -> handle, memoised so the hot drop path skips the
         registry's name lookup *)
  trace : Trace.t;
  fwd_latency : Time.ns;
  queue_limit : int;
  ports : port array;
  mac_table : (int, int) Hashtbl.t; (* station id -> port *)
  mutable verdict : port:int -> Frame.t -> Fault.decision;
  mutable forwarded : int;
  mutable dropped : int;
}

let create sim ?(fwd_latency = 2_500) ?(queue_limit = 262_144) ~ports () =
  let make_port i =
    {
      egress = Link.create sim ~name:(Printf.sprintf "sw-egress-%d" i) ();
      queued_bytes = 0;
    }
  in
  {
    sim;
    metrics = Metrics.for_sim sim;
    drop_counters = Hashtbl.create 4;
    trace = Trace.for_sim sim;
    fwd_latency;
    queue_limit;
    ports = Array.init ports make_port;
    mac_table = Hashtbl.create 16;
    verdict = (fun ~port:_ _ -> Fault.Deliver);
    forwarded = 0;
    dropped = 0;
  }

let egress t ~port = t.ports.(port).egress
let station_port t ~station = Hashtbl.find_opt t.mac_table station

let connect_station t ~port ~station handler =
  Hashtbl.replace t.mac_table station port;
  Link.set_receiver t.ports.(port).egress handler

(* Legacy boolean filter: a [true] verdict is a plain drop, attributed
   to the ["filter"] cause. *)
let set_fault_filter t f =
  t.verdict <-
    (fun ~port:_ frame -> if f frame then Fault.Drop "filter" else Fault.Deliver)

let set_fault t fault =
  t.verdict <-
    (fun ~port frame ->
      Fault.decide fault
        ~link:(Printf.sprintf "sw-in-%d" port)
        ~src:frame.Frame.src ~dst:frame.Frame.dst)

let frames_forwarded t = t.forwarded
let frames_dropped t = t.dropped

(* Every frame the switch loses is attributed to a cause, so a chaos run
   can account for each missing frame: [switch.drop.unknown_dst] (MAC
   table miss), [switch.drop.queue_full] (egress overflow) and
   [switch.drop.fault] (injected). *)
let drop t frame ~cause =
  t.dropped <- t.dropped + 1;
  let c =
    match Hashtbl.find_opt t.drop_counters cause with
    | Some c -> c
    | None ->
      let c = Metrics.counter t.metrics ("switch.drop." ^ cause) in
      Hashtbl.add t.drop_counters cause c;
      c
  in
  Stats.Counter.incr c;
  Trace.instant t.trace ~layer:Trace.Net "switch.drop"
    ~args:
      [
        ("cause", cause);
        ("src", string_of_int frame.Frame.src);
        ("dst", string_of_int frame.Frame.dst);
      ]

let forward t frame =
  match Hashtbl.find_opt t.mac_table frame.Frame.dst with
  | None -> drop t frame ~cause:"unknown_dst"
  | Some out ->
    let p = t.ports.(out) in
    let wire = Frame.wire_bytes frame in
    if p.queued_bytes + wire > t.queue_limit then
      drop t frame ~cause:"queue_full"
    else begin
      p.queued_bytes <- p.queued_bytes + wire;
      t.forwarded <- t.forwarded + 1;
      let finish = Link.busy_until p.egress + Link.transmit_time p.egress frame in
      Link.send p.egress frame;
      (* Reclaim queue space when the frame has left the port. *)
      Sim.at t.sim finish (fun () -> p.queued_bytes <- p.queued_bytes - wire)
    end

let ingress t ~port frame =
  let forward_after extra frame =
    Sim.at t.sim (Sim.now t.sim + t.fwd_latency + extra) (fun () -> forward t frame)
  in
  match t.verdict ~port frame with
  | Fault.Deliver -> forward_after 0 frame
  | Fault.Drop cause ->
    (* Injected drops all count as "fault"; the legacy boolean filter
       keeps its own cause so old tests can tell them apart. *)
    drop t frame ~cause:(if cause = "filter" then "filter" else "fault")
  | Fault.Corrupt -> forward_after 0 (Frame.corrupt frame)
  | Fault.Duplicate ->
    forward_after 0 frame;
    forward_after 0 frame
  | Fault.Delay extra -> forward_after extra frame
