(** Store-and-forward Ethernet switch (the testbed's Packet Engines
    switch). Each port owns an egress link; a received frame incurs a
    fixed forwarding latency, then queues on the destination port. Output
    queues have a byte limit; overflowing frames are dropped (counted). *)

type t

val create :
  Uls_engine.Sim.t ->
  ?fwd_latency:Uls_engine.Time.ns ->
  ?queue_limit:int ->
  ports:int ->
  unit ->
  t
(** Defaults: 2.5 us forwarding latency, 262144-byte output queues. *)

val egress : t -> port:int -> Link.t
(** The switch-to-station link of a port; attach the station's receive
    handler to it. *)

val station_port : t -> station:int -> int option

val connect_station : t -> port:int -> station:int -> (Frame.t -> unit) -> unit
(** Bind [station] (a node id used in frame src/dst) to [port] and set
    its receive handler on the egress link. *)

val ingress : t -> port:int -> Frame.t -> unit
(** Deliver a frame arriving from the station side of [port] (normally
    wired as the receiver of the station's uplink). Frames to unknown
    stations or overflowing queues are dropped. *)

val set_fault : t -> Uls_engine.Fault.t -> unit
(** Consult the fault engine at ingress (links keyed ["sw-in-<port>"])
    and apply its verdict: drop, corrupt, duplicate or delay the frame
    before forwarding. *)

val set_fault_filter : t -> (Frame.t -> bool) -> unit
(** Legacy boolean filter applied at ingress; returning [true] drops the
    frame (verdict [Drop "filter"]). Replaces any installed fault
    engine verdict, and vice versa. *)

val frames_forwarded : t -> int

val frames_dropped : t -> int
(** All causes. Per-cause counts are in the simulation's {!Metrics}
    registry under ["switch.drop.{unknown_dst,queue_full,fault,filter}"]. *)
