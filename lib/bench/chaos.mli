(** Loss-sweep chaos driver: streams a checksummed payload through a
    sockets stack under seeded fault injection and reports goodput and
    recovery work per loss rate. Deterministic for a given seed. *)

type row = {
  loss_pct : float;
  goodput_mbps : float;  (** 0 when the run hung or never started *)
  elapsed_ms : float;  (** virtual time of the data phase *)
  faults_injected : int;  (** non-deliver verdicts from the fault engine *)
  retransmits : int;  (** EMP frames or TCP go-back-N rewinds, both nodes *)
  nacks : int;  (** EMP only; 0 for TCP *)
  intact : bool;  (** receiver saw the byte-exact payload *)
  completed : bool;  (** quiesced within the virtual-time liveness bound *)
}

type kind =
  | Sub of Uls_substrate.Options.t
  | Tcp of Uls_tcp.Config.t

val kind_name : kind -> string

val stream_run :
  kind:kind -> seed:int -> loss:float -> total:int -> msg:int -> row
(** One streaming run: [total] patterned bytes in [msg]-byte writes under
    uniform per-frame loss probability [loss], verified byte-for-byte at
    the receiver. *)

val default_rates : float list
(** [0; 0.005; 0.02; 0.05] — the sweep of the loss experiments. *)

val sweep :
  ?seed:int ->
  ?rates:float list ->
  ?total:int ->
  ?msg:int ->
  kind:kind ->
  unit ->
  row list

val print_table : Format.formatter -> kind:kind -> row list -> unit
