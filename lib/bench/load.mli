(** Load generator for the event-driven server runtime ({!Uls_server}):
    client fleets of hundreds to thousands of connections against one
    server node, echo or HTTP, over either stack.

    Two driving disciplines:

    - {e Closed loop}: each connection issues [requests_per_conn]
      requests back-to-back, each after the previous response (plus an
      optional exponential think time). Offered load tracks service
      capacity — the classic benchmark loop.
    - {e Open loop} ([Open rate]): request arrivals are a Poisson
      process at [rate] requests/s, independent of completions, served
      by the fleet's connections; latency is measured from {e arrival}
      (not send), so queueing delay under overload is visible.

    Connections ramp up with seeded jitter (thundering-herd connects
    would exhaust any finite listener backlog and the client nodes'
    CPUs), spread round-robin across [client_nodes] client hosts, and
    requests start only after the whole fleet is connected — handshakes
    never compete with request traffic, and [peak_open] proves how many
    connections were simultaneously alive. Every response is verified
    byte-exactly (patterned echo payloads, {!Uls_apps.Http.body_for}
    bodies). Runs are deterministic for a given seed and compose with
    the fault engine via [loss]. *)

type workload = Echo | Http

type loop_mode =
  | Closed
  | Open of float  (** arrival rate, requests per second fleet-wide *)

type config = {
  kind : Chaos.kind;  (** which stack, and its options *)
  workload : workload;
  loop : loop_mode;
  conns : int;
  requests_per_conn : int;
      (** per connection (closed); fleet total is [conns * requests_per_conn]
          in both modes *)
  size : int;  (** echo payload / HTTP response-body bytes *)
  think : float;  (** mean think time ns between a conn's requests, 0 = none *)
  seed : int;
  loss : float;  (** uniform frame-loss probability, 0 = clean *)
  client_nodes : int;  (** fleet spread over this many client hosts *)
  backlog : int;  (** server listen backlog *)
  sched : Uls_server.Sched.config option;  (** server scheduler override *)
  match_engine : Uls_nic.Match_list.engine;
      (** NIC tag-match firmware on every node; [Linear] is the ablation
          reproducing the paper's O(descriptors) walk *)
  event_sched : [ `Heap | `Wheel ];
      (** simulator event-queue implementation; dispatch order is
          identical either way (see {!Uls_engine.Sim.create}) *)
}

val default : config
(** Closed-loop substrate echo: 64 conns x 8 requests of 512 B over
    [Options.server], 2 client nodes, seed 42, no loss, hashed matching. *)

type report = {
  sent : int;
  completed : int;
  errors : int;  (** failed after first completion, or hard failures *)
  shed : int;
      (** shed by server admission control (503 / close-on-accept) — the
          server declining work it was offered, distinct from both
          [refused] and [errors] *)
  refused : int;
      (** connect-level refusals and timeouts: no connection was ever
          established, so no request was offered *)
  mismatches : int;  (** responses that failed byte verification *)
  peak_open : int;  (** most connections simultaneously open *)
  elapsed_ms : float;  (** first send to last completion, virtual *)
  rps : float;  (** completed / elapsed *)
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  p999_us : float;
  intact : bool;
      (** no mismatches, no errors, and every sent request accounted for
          (completed or explicitly shed) *)
  completed_run : bool;  (** quiesced within the liveness bound *)
  server_requests : int;  (** served according to the server *)
  evq_wakeups : int;
  evq_spurious : int;
  select_streams_scanned : int;  (** the O(n) baseline's counter, for contrast *)
}

val echo_payload : conn:int -> seq:int -> size:int -> string
(** Patterned payload, a pure function of (connection, sequence, size):
    a response delivered to the wrong request — or truncated, shifted
    or duplicated — never verifies. Shared with the fabric fleet driver
    ({!Fleet}) so both report byte-exact verification. *)

val liveness_bound : conns:int -> Uls_engine.Time.ns
(** Virtual-time hang bound, scaled with fleet size (the EMP match walk
    is O(posted descriptors), so big fleets are legitimately slow). *)

val run : ?on_metrics:(Uls_engine.Metrics.t -> unit) -> config -> report
(** Build a cluster, start the server on node 0 port 80, drive the
    fleet, quiesce, and report. [on_metrics] sees the simulation's
    metrics registry after the run (e.g. to dump it). *)

val print_report : Format.formatter -> config -> report -> unit
