(** Loss-sweep chaos driver: stream a checksummed payload through a
    sockets stack while the fault engine drops (or damages, duplicates,
    delays) frames at a configured rate, and report goodput plus recovery
    work per rate. Fault sequences are seeded, so a sweep is exactly
    reproducible — the property the chaos CI job relies on. *)

open Uls_engine

type row = {
  loss_pct : float;
  goodput_mbps : float;
  elapsed_ms : float;
  faults_injected : int;
  retransmits : int;
  nacks : int;
  intact : bool;
  completed : bool;
}

(* Deterministic pseudo-random payload: loss, reordering or truncation
   anywhere in the stream shows up as a byte mismatch, which a constant
   fill would hide. *)
let pattern ~seed len =
  let rng = Rng.create ~seed in
  String.init len (fun _ -> Char.chr (Rng.int rng 256))

let liveness_bound = Time.s 60
(* Virtual time. A stuck retransmission loop or a lost wakeup turns into
   [`Time_limit] (reported as [completed = false]) instead of a test
   harness that never returns. *)

type kind =
  | Sub of Uls_substrate.Options.t
  | Tcp of Uls_tcp.Config.t

let kind_name = function
  | Sub o -> "EMP-" ^ Uls_substrate.Options.mode_name o
  | Tcp _ -> "TCP"

let make_api kind c =
  match kind with
  | Tcp config -> Cluster.tcp_api ~config c
  | Sub opts -> Cluster.substrate_api ~opts c

let retransmit_metric = function
  | Sub _ -> "emp.frames_retransmitted"
  | Tcp _ -> "tcp.retransmits"

(* One streaming run at one loss rate: client sends [total] patterned
   bytes in [msg]-byte writes, server verifies every byte and answers
   with one confirmation byte. *)
let stream_run ~kind ~seed ~loss ~total ~msg =
  let c = Cluster.create ~n:2 () in
  let api = make_api kind c in
  let sim = Cluster.sim c in
  let fault = Fault.create ~seed sim in
  if loss > 0. then begin
    Fault.set_default_plan fault (Fault.uniform_loss loss);
    Uls_ether.Network.set_fault (Cluster.network c) fault
  end;
  let payload = pattern ~seed:(seed lxor 0x5ca1ab1e) total in
  let intact = ref false in
  let t_start = ref 0 and t_end = ref 0 in
  Sim.spawn sim ~name:"chaos-sink" (fun () ->
      let l = api.Uls_api.Sockets_api.listen ~node:1 ~port:80 ~backlog:4 in
      let s, _ = l.accept () in
      let got = Uls_api.Sockets_api.recv_exact s total in
      intact := String.equal got payload;
      t_end := Sim.now sim;
      s.send (if !intact then "k" else "x");
      s.close ();
      l.close_listener ());
  Sim.spawn sim ~name:"chaos-src" (fun () ->
      Sim.delay sim (Time.us 50);
      let s = api.Uls_api.Sockets_api.connect ~node:0 { node = 1; port = 80 } in
      t_start := Sim.now sim;
      let rec push off =
        if off < total then begin
          let n = min msg (total - off) in
          s.send (String.sub payload off n);
          push (off + n)
        end
      in
      push 0;
      ignore (s.recv 1);
      s.close ());
  let outcome = Cluster.run ~until:liveness_bound c in
  let metrics = Metrics.for_sim sim in
  let per_node name =
    Metrics.counter_value metrics ~node:0 name
    + Metrics.counter_value metrics ~node:1 name
  in
  let elapsed = max 1 (!t_end - !t_start) in
  {
    loss_pct = loss *. 100.;
    goodput_mbps =
      (if outcome = `Quiescent && !t_end > 0 then
         Time.mbps ~bytes_transferred:total ~elapsed
       else 0.);
    elapsed_ms = float_of_int elapsed /. 1_000_000.;
    faults_injected = Fault.faults_injected fault;
    retransmits = per_node (retransmit_metric kind);
    nacks = (match kind with Sub _ -> per_node "emp.nacks_sent" | Tcp _ -> 0);
    intact = !intact;
    completed = outcome = `Quiescent;
  }

let default_rates = [ 0.0; 0.005; 0.02; 0.05 ]

let sweep ?(seed = 42) ?(rates = default_rates) ?(total = 4 * 1024 * 1024)
    ?(msg = 16_384) ~kind () =
  List.map (fun loss -> stream_run ~kind ~seed ~loss ~total ~msg) rates

let print_table fmt ~kind rows =
  Format.fprintf fmt "%s, %s:@." (kind_name kind)
    "goodput under uniform frame loss";
  Format.fprintf fmt "  %8s %12s %12s %8s %12s %8s %6s@." "loss%" "Mbit/s"
    "elapsed ms" "faults" "retransmits" "nacks" "ok";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %8.2f %12.1f %12.2f %8d %12d %8d %6s@."
        r.loss_pct r.goodput_mbps r.elapsed_ms r.faults_injected
        r.retransmits r.nacks
        (if r.completed && r.intact then "yes"
         else if not r.completed then "HUNG"
         else "CORRUPT"))
    rows
