(** Small-message datagram firehose over the ring-based batched I/O
    subsystem: one source sprays patterned datagrams at [sinks] sink
    nodes, sweeping message size x submission batch depth. [batch = 1]
    is the per-call ablation (byte-identical legacy write/read path);
    [batch > 1] runs gathered writes through the endpoint tx ring (one
    doorbell per batch) and batched receive-descriptor reposting through
    the fill ring. Deterministic per config; with [loss] set it doubles
    as the rings chaos leg. *)

type config = {
  sinks : int;  (** sink nodes (the source is node 0) *)
  count : int;  (** messages per sink *)
  size : int;  (** payload bytes per message *)
  batch : int;  (** submission batch depth; 1 = per-call ablation *)
  busy_poll : bool;  (** tx ring in wakeup-free busy-poll mode *)
  seed : int;
  loss : float;  (** uniform frame-loss probability (chaos leg) *)
  match_engine : Uls_nic.Match_list.engine;
  event_sched : [ `Heap | `Wheel ];
}

val default : config
(** 4 sinks x 2000 messages x 64 B, batch 32, wakeup mode, seed 42. *)

type report = {
  messages : int;  (** sinks x count *)
  delivered : int;
  mismatches : int;  (** messages whose bytes differed from expected *)
  bytes : int;
  elapsed_ms : float;
  pps : float;  (** delivered messages per second of virtual time *)
  mbps : float;
  doorbells : int;  (** source-node [nic.doorbells] *)
  mailbox_fetches : int;  (** source-node [nic.mailbox_fetches] *)
  ring_submitted : int;  (** descriptors through the source tx ring *)
  ring_doorbells : int;  (** doorbells the tx ring issued *)
  faults_injected : int;
  retransmits : int;  (** EMP frame retransmissions, all nodes *)
  intact : bool;  (** every message delivered byte-exact, in order *)
  completed_run : bool;
}

val run : ?on_metrics:(Uls_engine.Metrics.t -> unit) -> config -> report
(** One firehose run on a fresh cluster. Deterministic: same config,
    byte-identical report. *)

val print_report : Format.formatter -> config -> report -> unit
