(** Event-core throughput benchmark: events/sec through {!Uls_engine.Sim}
    on synthetic timer workloads shaped like the real benchmarks
    (pingpong, serve-512, fabric at 4096 and 65536 connections), run on
    both event-queue implementations.

    Each shape is a pure-engine workload — no protocol stack — so the
    measurement isolates queue cost: every connection runs a fixed number
    of request cycles, each cycle arming a stale retransmission timer
    the way a real stack does, so the standing timer population scales
    with connection count (the regime where the binary heap pays
    O(log n) per operation and the timing wheel does not). Fabric shapes
    additionally arm far-future idle/lease timers that land in the
    wheel's top levels and overflow heap.

    The event structure is a pure function of the shape, so [events] is
    deterministic and identical across schedulers (dispatch parity);
    only [elapsed_s] and [events_per_sec] depend on the machine. *)

type sched = [ `Heap | `Wheel ]

type shape = {
  sh_name : string;
  sh_conns : int;
  sh_cycles : int;  (** request cycles per connection *)
  sh_timeout : Uls_engine.Time.ns;
      (** stale-timer horizon per cycle; with the cycle period this sets
          the standing queue population *)
  sh_far : bool;  (** arm far-future idle/lease timers (top wheel levels) *)
}

val shapes : shape list
(** pingpong, serve-512, fabric-4096, fabric-65536. *)

val find_shape : string -> shape option

type row = {
  scenario : string;
  conns : int;
  sched : sched;
  events : int;  (** {!Uls_engine.Sim.events_executed} — deterministic *)
  elapsed_s : float;  (** process CPU seconds *)
  events_per_sec : float;
  minor_words_per_event : float;
      (** [Gc.minor_words] gained across the run divided by events
          dispatched. The steady-state cost is the per-cycle closures the
          workload itself arms; the dispatch loop contributes nothing, so
          a rise here means the engine hot path started allocating (the
          allocation-sanitizer gate in [engine --check] enforces a
          ceiling). *)
}

val sched_name : sched -> string

val run_shape : sched:sched -> shape -> row
(** Build a fresh sim with the given scheduler, install the workload,
    run to quiescence, and time it. *)

val run_all : unit -> row list
(** Every shape under both schedulers, heap first. *)
