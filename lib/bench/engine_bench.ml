(* Event-core throughput shapes. See the .mli for what each models. *)

open Uls_engine

type sched = [ `Heap | `Wheel ]

type shape = {
  sh_name : string;
  sh_conns : int;
  sh_cycles : int;
  sh_timeout : Time.ns;
  sh_far : bool;
}

(* Cycle counts are sized so every run executes a few hundred thousand
   to a million events — long enough that Sys.time's resolution is
   noise, short enough that the whole matrix runs in seconds. *)
let shapes =
  [
    { sh_name = "pingpong"; sh_conns = 1; sh_cycles = 200_000;
      sh_timeout = Time.us 100; sh_far = false };
    { sh_name = "serve-512"; sh_conns = 512; sh_cycles = 400;
      sh_timeout = Time.ms 50; sh_far = false };
    { sh_name = "fabric-4096"; sh_conns = 4_096; sh_cycles = 64;
      sh_timeout = Time.ms 50; sh_far = true };
    { sh_name = "fabric-65536"; sh_conns = 65_536; sh_cycles = 8;
      sh_timeout = Time.ms 50; sh_far = true };
  ]

let find_shape name = List.find_opt (fun s -> s.sh_name = name) shapes

type row = {
  scenario : string;
  conns : int;
  sched : sched;
  events : int;
  elapsed_s : float;
  events_per_sec : float;
  minor_words_per_event : float;
}

let sched_name = function `Heap -> "heap" | `Wheel -> "wheel"

(* Per-connection request loop, callbacks only (no fibers, so the
   measurement is queue cost plus dispatch, nothing else). Each cycle
   dispatches one activity event, arms one stale retransmission timer
   (fires as a no-op [sh_timeout] later — the cancelled-timer pattern
   every stack generates), and schedules the next cycle one jittered
   period ahead. All connections run concurrently, so the standing
   population peaks near conns x cycles stale timers. *)
let install sim sh =
  let nop () = () in
  for i = 0 to sh.sh_conns - 1 do
    (* deterministic per-conn jitter decorrelates same-slot bursts *)
    let period = Time.us 20 + ((i * 37) land 0xfff) in
    let rec cycle k t =
      Sim.at sim t (fun () ->
          Sim.at sim (t + sh.sh_timeout) nop;
          if k + 1 < sh.sh_cycles then cycle (k + 1) (t + period))
    in
    cycle 0 (Time.us 1 + i);
    if sh.sh_far then begin
      (* idle-close horizon: seconds out, top wheel levels *)
      Sim.at sim (Time.s 2 + (i * 977)) nop;
      (* sparse lease timers past the wheel's top range: overflow heap *)
      if i land 1023 = 0 then Sim.at sim ((1 lsl 41) + i) nop
    end
  done

let run_shape ~sched sh =
  let sim = Sim.create ~sched () in
  install sim sh;
  let t0 = Sys.time () in
  let g0 = Gc.minor_words () in
  (match Sim.run sim with
  | `Quiescent -> ()
  | `Time_limit | `Stopped -> failwith "Engine_bench: run did not quiesce");
  let gained = Gc.minor_words () -. g0 in
  let elapsed = Sys.time () -. t0 in
  let events = Sim.events_executed sim in
  {
    scenario = sh.sh_name;
    conns = sh.sh_conns;
    sched;
    events;
    elapsed_s = elapsed;
    events_per_sec =
      (if elapsed > 0. then float_of_int events /. elapsed else 0.);
    minor_words_per_event =
      (if events > 0 then gained /. float_of_int events else 0.);
  }

let run_all () =
  List.concat_map
    (fun sh -> [ run_shape ~sched:`Heap sh; run_shape ~sched:`Wheel sh ])
    shapes
