(** Load generator: open- and closed-loop client fleets against the
    {!Uls_server} runtime. See the .mli for the driving disciplines. *)

open Uls_engine
module Api = Uls_api.Sockets_api
module Http = Uls_apps.Http
module Server = Uls_server.Server
module Sched = Uls_server.Sched

type workload = Echo | Http

type loop_mode = Closed | Open of float

type config = {
  kind : Chaos.kind;
  workload : workload;
  loop : loop_mode;
  conns : int;
  requests_per_conn : int;
  size : int;
  think : float;
  seed : int;
  loss : float;
  client_nodes : int;
  backlog : int;
  sched : Sched.config option;
  match_engine : Uls_nic.Match_list.engine;
  event_sched : [ `Heap | `Wheel ];
}

let default =
  {
    kind = Chaos.Sub Uls_substrate.Options.server;
    workload = Echo;
    loop = Closed;
    conns = 64;
    requests_per_conn = 8;
    size = 512;
    think = 0.;
    seed = 42;
    loss = 0.;
    client_nodes = 2;
    backlog = 256;
    sched = None;
    match_engine = Uls_nic.Match_list.Hashed;
    event_sched = `Heap;
  }

type report = {
  sent : int;
  completed : int;
  errors : int;
  shed : int;  (* admission-control rejects: explicit 503 or a close
                  before the first response — the server declining
                  work, not failing it *)
  refused : int;  (* connect-level refusals/timeouts: no connection
                     was ever established *)
  mismatches : int;
  peak_open : int;
  elapsed_ms : float;
  rps : float;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  p999_us : float;
  intact : bool;
  completed_run : bool;
  server_requests : int;
  evq_wakeups : int;
  evq_spurious : int;
  select_streams_scanned : int;
}

(* Patterned echo payload, a function of (connection, sequence, size):
   a response delivered to the wrong request — or truncated, shifted or
   duplicated — never verifies. *)
let echo_payload ~conn ~seq ~size =
  String.init size (fun i ->
      Char.chr (0x21 + ((i * 7) + (conn * 31) + (seq * 131) + size) mod 94))

(* Virtual-time liveness bound, scaled with fleet size: the EMP match
   walk is O(posted descriptors), so big fleets are legitimately slow
   in virtual time; only a hang should trip the bound. *)
let liveness_bound ~conns = Time.s 60 + (conns * Time.ms 250)

(* A shed echo connection is closed before its first response; an HTTP
   one gets an explicit 503. Either way: shed, not an error. *)
exception Refused_by_server

(* LOAD_DEBUG=1 prints every swallowed client-side exception — the
   difference between "TCP ran out of retries" and a real bug. *)
let debug_errors = Sys.getenv_opt "LOAD_DEBUG" <> None

let note_error e =
  if debug_errors then
    prerr_endline ("load: client error: " ^ Printexc.to_string e)

let run ?on_metrics cfg =
  let c =
    Cluster.create ~match_engine:cfg.match_engine ~sched:cfg.event_sched
      ~n:(1 + cfg.client_nodes) ()
  in
  let sim = Cluster.sim c in
  let api =
    match cfg.kind with
    | Chaos.Tcp config -> Cluster.tcp_api ~config c
    | Chaos.Sub opts -> Cluster.substrate_api ~opts c
  in
  if cfg.loss > 0. then begin
    let fault = Fault.create ~seed:cfg.seed sim in
    Fault.set_default_plan fault (Fault.uniform_loss cfg.loss);
    Uls_ether.Network.set_fault (Cluster.network c) fault
  end;
  let rngs =
    let root = Rng.create ~seed:cfg.seed in
    Array.init (max 1 cfg.conns) (fun _ -> Rng.split root)
  in
  let lat = Stats.Summary.create () in
  let sent = ref 0 and completed = ref 0 in
  let errors = ref 0 and shed = ref 0 and refused = ref 0 in
  let mismatches = ref 0 in
  let open_now = ref 0 and peak_open = ref 0 in
  let t_first = ref max_int and t_last = ref 0 in
  let srv = ref None in
  Sim.spawn sim ~name:"load-server" (fun () ->
      let workload =
        match cfg.workload with
        | Echo -> Server.Echo
        | Http -> Server.Http cfg.size
      in
      srv :=
        Some
          (Server.start sim api ~node:0 ~port:80 ~backlog:cfg.backlog
             ?config:cfg.sched workload));
  (* Fleet-wide synchronisation: [arrived] counts finished connect
     attempts (success or failure); closed-loop connections hold until
     everyone arrived, so [peak_open] proves simultaneous liveness. *)
  let arrived = ref 0 and finished = ref 0 in
  let arrived_c = Cond.create ~label:"load:arrived" sim
  and finished_c = Cond.create ~label:"load:finished" sim in
  let record_latency t0 =
    let now = Sim.now sim in
    Stats.Summary.add lat (float_of_int (now - t0));
    t_last := max !t_last now;
    incr completed
  in
  let send_mark s data =
    t_first := min !t_first (Sim.now sim);
    incr sent;
    s.Api.send data
  in
  (* One exchange, latency accounted from [t0] (send time in closed
     loop, arrival time in open loop). Raises on failure. *)
  let echo_exchange ~conn ~done_here ~t0 s seq =
    let payload = echo_payload ~conn ~seq ~size:cfg.size in
    send_mark s payload;
    let got =
      try Api.recv_exact s cfg.size
      with Api.Connection_closed when !done_here = 0 -> raise Refused_by_server
    in
    if got <> payload then incr mismatches;
    record_latency t0;
    incr done_here
  in
  let http_exchange ~done_here ~t0 s parser resp_backlog ~last =
    send_mark s
      (Http.format_request
         {
           Http.meth = "GET";
           path = Printf.sprintf "/b/%d" cfg.size;
           version = "HTTP/1.1";
           req_headers =
             [ ("connection", if last then "close" else "keep-alive") ];
           req_body = "";
         });
    let rec next () =
      match !resp_backlog with
      | r :: rest ->
        resp_backlog := rest;
        r
      | [] ->
        let data = s.Api.recv 65_536 in
        if data = "" then
          if !done_here = 0 then raise Refused_by_server
          else raise Api.Connection_closed
        else begin
          resp_backlog := Http.Response_parser.feed parser data;
          next ()
        end
    in
    let resp = next () in
    if resp.Http.status = 503 then raise Refused_by_server;
    if resp.Http.resp_body <> Http.body_for ~size:cfg.size then incr mismatches;
    record_latency t0;
    incr done_here
  in
  let exchange ~conn ~done_here ~t0 s parser resp_backlog ~seq ~last =
    match cfg.workload with
    | Echo -> echo_exchange ~conn ~done_here ~t0 s seq
    | Http -> http_exchange ~done_here ~t0 s parser resp_backlog ~last
  in
  let client_node conn = 1 + (conn mod cfg.client_nodes) in
  (* Seeded connect ramp, ~150 us between connects fleet-wide: the
     server node's kernel CPU spends ~55 us per TCP handshake (SYN
     processing plus accept), so faster global ramps overrun it, delay
     SYN-ACKs past the connect retry horizon, and collapse the fleet. *)
  let connect_delay conn rng =
    Time.ms 1 + (conn * Time.us 150) + Rng.int rng (Time.us 100)
  in
  let fleet_connected () = !arrived >= cfg.conns in
  let arrive () =
    incr arrived;
    if !arrived >= cfg.conns then Cond.broadcast arrived_c
  in
  let finish () =
    incr finished;
    Cond.broadcast finished_c
  in
  let connect_tracked conn rng =
    Sim.delay sim (connect_delay conn rng);
    match api.Api.connect ~node:(client_node conn) { node = 0; port = 80 } with
    | s ->
      arrive ();
      incr open_now;
      if !open_now > !peak_open then peak_open := !open_now;
      Some s
    | exception ((Api.Connection_refused _ | Api.Connection_timeout _) as e) ->
      (* connect-level: the server (or its node) never took the flow *)
      note_error e;
      arrive ();
      incr refused;
      None
    | exception e ->
      note_error e;
      arrive ();
      incr errors;
      None
  in
  let close_tracked s =
    (try s.Api.close () with _ -> ());
    decr open_now
  in
  (match cfg.loop with
  | Closed ->
    for conn = 0 to cfg.conns - 1 do
      let rng = rngs.(conn) in
      Sim.spawn sim ~name:(Printf.sprintf "load-conn-%d" conn) (fun () ->
          (match connect_tracked conn rng with
          | None -> ()
          | Some s ->
            (* Connect-then-measure barrier: requests start only once
               the whole fleet is up, so handshakes never compete with
               request traffic for client CPU — and peak_open witnesses
               every connection simultaneously alive. *)
            Cond.wait_until arrived_c fleet_connected;
            (* Desynchronise the first send: a single-instant burst of
               [conns] requests is a worst-case incast that no backoff
               policy should be forced to absorb from a cold start. *)
            Sim.delay sim (Rng.int rng (Time.us (20 * cfg.conns)));
            let done_here = ref 0 in
            let parser = Http.Response_parser.create () in
            let resp_backlog = ref [] in
            (try
               for seq = 0 to cfg.requests_per_conn - 1 do
                 exchange ~conn ~done_here ~t0:(Sim.now sim) s parser
                   resp_backlog ~seq
                   ~last:(seq = cfg.requests_per_conn - 1);
                 if cfg.think > 0. then
                   Sim.delay sim
                     (int_of_float (Rng.exponential rng ~mean:cfg.think))
               done
             with
            | Refused_by_server -> incr shed
            | e ->
              note_error e;
              incr errors);
            close_tracked s);
          finish ())
    done
  | Open rate ->
    let total = cfg.conns * cfg.requests_per_conn in
    let jobs : Time.ns option Mailbox.t =
      Mailbox.create ~label:"load:open-arrivals" sim
    in
    let arrival_rng = Rng.create ~seed:(cfg.seed lxor 0x0a51f00d) in
    Sim.spawn sim ~name:"load-arrivals" (fun () ->
        (* arrivals start once the pool actually exists *)
        Cond.wait_until arrived_c fleet_connected;
        let mean_gap = 1e9 /. rate in
        for _ = 1 to total do
          Sim.delay sim
            (int_of_float (Rng.exponential arrival_rng ~mean:mean_gap));
          Mailbox.send jobs (Some (Sim.now sim))
        done;
        for _ = 1 to cfg.conns do
          Mailbox.send jobs None
        done);
    for conn = 0 to cfg.conns - 1 do
      let rng = rngs.(conn) in
      Sim.spawn sim ~name:(Printf.sprintf "load-conn-%d" conn) (fun () ->
          (match connect_tracked conn rng with
          | None -> ()
          | Some s ->
            Cond.wait_until arrived_c fleet_connected;
            let done_here = ref 0 in
            let parser = Http.Response_parser.create () in
            let resp_backlog = ref [] in
            let rec serve () =
              match Mailbox.recv jobs with
              | None -> ()
              | Some t_arrival ->
                let ok =
                  try
                    exchange ~conn ~done_here ~t0:t_arrival s parser
                      resp_backlog ~seq:!done_here ~last:false;
                    true
                  with
                  | Refused_by_server ->
                    incr shed;
                    false
                  | e ->
                    note_error e;
                    incr errors;
                    false
                in
                if ok then serve ()
            in
            serve ();
            close_tracked s);
          finish ())
    done);
  (* Janitor: once every client fiber is done, stop the server so the
     run ends with nothing registered and the listener closed. *)
  Sim.spawn sim ~name:"load-janitor" (fun () ->
      Cond.wait_until finished_c (fun () -> !finished >= cfg.conns);
      match !srv with Some server -> Server.stop server | None -> ());
  let outcome = Cluster.run ~until:(liveness_bound ~conns:cfg.conns) c in
  let m = Metrics.for_sim sim in
  (match on_metrics with Some f -> f m | None -> ());
  let elapsed = if !t_last > !t_first then !t_last - !t_first else 0 in
  let pct p =
    if Stats.Summary.count lat = 0 then 0.
    else Stats.Summary.percentile lat p /. 1e3
  in
  {
    sent = !sent;
    completed = !completed;
    errors = !errors;
    shed = !shed;
    refused = !refused;
    mismatches = !mismatches;
    peak_open = !peak_open;
    elapsed_ms = float_of_int elapsed /. 1e6;
    rps =
      (if elapsed > 0 then
         float_of_int !completed /. (float_of_int elapsed /. 1e9)
       else 0.);
    mean_us =
      (if Stats.Summary.count lat = 0 then 0.
       else Stats.Summary.mean lat /. 1e3);
    p50_us = pct 0.5;
    p95_us = pct 0.95;
    p99_us = pct 0.99;
    p999_us = pct 0.999;
    intact = !mismatches = 0 && !errors = 0 && !completed + !shed >= !sent;
    completed_run = outcome = `Quiescent;
    server_requests = (match !srv with Some s -> Server.requests s | None -> 0);
    evq_wakeups = Metrics.counter_value m ~node:0 "server.evq.wakeups";
    evq_spurious = Metrics.counter_value m ~node:0 "server.evq.spurious";
    select_streams_scanned =
      Metrics.counter_value m ~node:0 "api.select_streams_scanned";
  }

let workload_name = function Echo -> "echo" | Http -> "http"

let loop_name = function
  | Closed -> "closed"
  | Open r -> Printf.sprintf "open@%.0f/s" r

let print_report fmt cfg r =
  Format.fprintf fmt "%s %s %s: conns=%d size=%dB requests=%d@."
    (Chaos.kind_name cfg.kind) (workload_name cfg.workload)
    (loop_name cfg.loop) cfg.conns cfg.size
    (cfg.conns * cfg.requests_per_conn);
  Format.fprintf fmt
    "  sent %d  completed %d  shed %d  refused %d  errors %d  mismatches %d  \
     peak-open %d@."
    r.sent r.completed r.shed r.refused r.errors r.mismatches r.peak_open;
  Format.fprintf fmt "  elapsed %.2f ms  throughput %.0f req/s@." r.elapsed_ms
    r.rps;
  Format.fprintf fmt
    "  latency us: mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f  p99.9 %.1f@."
    r.mean_us r.p50_us r.p95_us r.p99_us r.p999_us;
  Format.fprintf fmt "  evq wakeups %d  spurious %d  select-scanned %d@."
    r.evq_wakeups r.evq_spurious r.select_streams_scanned;
  Format.fprintf fmt "  verdict: %s@."
    (if not r.completed_run then "HUNG"
     else if not r.intact then "CORRUPT"
     else "ok")
