(** Small-message datagram firehose: one source node sprays patterned
    datagrams at [sinks] sink nodes over substrate connections, sweeping
    message size x submission batch depth. [batch = 1] takes exactly the
    legacy per-call path (write/read, one doorbell per operation);
    [batch > 1] drives the ring-based batched I/O subsystem end to end —
    [Conn.writev] staging through the endpoint's tx ring under one
    doorbell per batch, and [Conn.readv] reposting consumed receive
    descriptors through the fill ring ([Options.rx_ring]). Deterministic
    for a given config; the optional fault engine makes it the rings
    chaos leg. *)

open Uls_engine
module Sub = Uls_substrate.Substrate
module Conn = Uls_substrate.Conn
module Options = Uls_substrate.Options
module E = Uls_emp.Endpoint

type config = {
  sinks : int;  (** sink nodes (the source is node 0) *)
  count : int;  (** messages per sink *)
  size : int;  (** payload bytes per message *)
  batch : int;  (** submission batch depth; 1 = per-call ablation *)
  busy_poll : bool;  (** tx ring in wakeup-free busy-poll mode *)
  seed : int;
  loss : float;  (** uniform frame-loss probability (chaos leg) *)
  match_engine : Uls_nic.Match_list.engine;
  event_sched : [ `Heap | `Wheel ];
}

let default =
  {
    sinks = 4;
    count = 2_000;
    size = 64;
    batch = 32;
    busy_poll = false;
    seed = 42;
    loss = 0.;
    match_engine = Uls_nic.Match_list.Hashed;
    event_sched = `Wheel;
  }

type report = {
  messages : int;  (** sinks x count *)
  delivered : int;
  mismatches : int;
  bytes : int;
  elapsed_ms : float;
  pps : float;  (** delivered messages per second of virtual time *)
  mbps : float;
  doorbells : int;  (** source-node [nic.doorbells] *)
  mailbox_fetches : int;  (** source-node [nic.mailbox_fetches] *)
  ring_submitted : int;  (** descriptors through the source tx ring *)
  ring_doorbells : int;  (** doorbells the tx ring issued *)
  faults_injected : int;
  retransmits : int;
  intact : bool;
  completed_run : bool;
}

let liveness_bound = Time.s 60

(* Deterministic per-message payload: distinct across sink, index and
   byte offset, so a lost, duplicated or reordered message shows up as a
   mismatch at the receiver. *)
let message cfg ~sink ~index =
  String.init cfg.size (fun b ->
      Char.chr ((cfg.seed + (sink * 131) + (index * 7919) + (b * 13)) land 0xff))

let run ?on_metrics cfg =
  if cfg.sinks < 1 then invalid_arg "Firehose.run: sinks < 1";
  if cfg.batch < 1 then invalid_arg "Firehose.run: batch < 1";
  let c =
    Cluster.create ~match_engine:cfg.match_engine ~sched:cfg.event_sched
      ~n:(cfg.sinks + 1) ()
  in
  let sim = Cluster.sim c in
  let fault = Fault.create ~seed:cfg.seed sim in
  if cfg.loss > 0. then begin
    Fault.set_default_plan fault (Fault.uniform_loss cfg.loss);
    Uls_ether.Network.set_fault (Cluster.network c) fault
  end;
  (* The fill-ring repost path is a property of the receive side, but
     options are per-node and uniform here: the source never reads data
     messages, so setting [rx_ring] everywhere only changes sinks.
     Credits must cover several submission batches or the source
     ping-pongs on the ack round trip in window-sized lockstep — the
     same sizing rule as hardware SQ depth vs completion latency. The
     window is identical across batch depths so the batch=1 ablation
     differs only in submission path, not flow control. *)
  let opts =
    {
      Options.datagram with
      Options.rx_ring = cfg.batch > 1;
      credits = max 32 (2 * cfg.batch);
    }
  in
  let sub = Array.init (cfg.sinks + 1) (fun i -> Cluster.substrate ~opts c i) in
  if cfg.busy_poll then
    ignore
      (E.get_tx_ring ~mode:Uls_rings.Ringpair.Busy_poll (Sub.emp sub.(0)));
  let starts = Array.make cfg.sinks max_int in
  let ends = Array.make cfg.sinks 0 in
  let delivered = ref 0 and mismatches = ref 0 in
  (* Sinks: accept one connection, consume [count] messages (batched
     drain when batch > 1), confirm, then drain to EOF. *)
  for k = 0 to cfg.sinks - 1 do
    Sim.spawn sim
      ~name:(Printf.sprintf "fire-sink-%d" k)
      (fun () ->
        let s = sub.(k + 1) in
        let l = Sub.listen s ~port:80 ~backlog:4 in
        let conn, _ = Sub.accept s l in
        let got = ref 0 in
        let eof = ref false in
        let consume msg =
          if not (String.equal msg (message cfg ~sink:k ~index:!got)) then
            incr mismatches;
          incr got;
          incr delivered
        in
        while !got < cfg.count && not !eof do
          if cfg.batch > 1 then
            match Conn.readv conn ~max:cfg.batch with
            | [] -> eof := true
            | msgs -> List.iter consume msgs
          else begin
            let msg = Conn.read conn cfg.size in
            if msg = "" then eof := true else consume msg
          end
        done;
        ends.(k) <- Sim.now sim;
        if not !eof then begin
          Conn.write conn "k";
          while Conn.read conn 1 <> "" do
            ()
          done
        end;
        Conn.close conn;
        Sub.close_listener s l)
  done;
  (* Source: one fiber per sink, spraying [count] messages in [batch]-
     deep gathered writes. *)
  for k = 0 to cfg.sinks - 1 do
    Sim.spawn sim
      ~name:(Printf.sprintf "fire-src-%d" k)
      (fun () ->
        Sim.delay sim (Time.us 50);
        let conn =
          Sub.connect sub.(0) { Uls_api.Sockets_api.node = k + 1; port = 80 }
        in
        starts.(k) <- Sim.now sim;
        let j = ref 0 in
        while !j < cfg.count do
          if cfg.batch > 1 then begin
            let n = min cfg.batch (cfg.count - !j) in
            Conn.writev conn
              (List.init n (fun i -> message cfg ~sink:k ~index:(!j + i)));
            j := !j + n
          end
          else begin
            Conn.write conn (message cfg ~sink:k ~index:!j);
            incr j
          end
        done;
        ignore (Conn.read conn 1);
        Conn.close conn)
  done;
  let outcome = Cluster.run ~until:liveness_bound c in
  let metrics = Metrics.for_sim sim in
  (match on_metrics with Some f -> f metrics | None -> ());
  let messages = cfg.sinks * cfg.count in
  let t0 = Array.fold_left min max_int starts in
  let t1 = Array.fold_left max 0 ends in
  let elapsed = if t1 > t0 then t1 - t0 else 1 in
  let src_counter name = Metrics.counter_value metrics ~node:0 name in
  let retransmits = ref 0 in
  for i = 0 to cfg.sinks do
    retransmits :=
      !retransmits + Metrics.counter_value metrics ~node:i "emp.frames_retransmitted"
  done;
  let ring_submitted, ring_doorbells =
    match E.tx_ring_stats (Sub.emp sub.(0)) with
    | Some st ->
      (st.Uls_rings.Ringpair.submitted, st.Uls_rings.Ringpair.doorbells)
    | None -> (0, 0)
  in
  let completed_run = outcome = `Quiescent && !delivered = messages in
  {
    messages;
    delivered = !delivered;
    mismatches = !mismatches;
    bytes = !delivered * cfg.size;
    elapsed_ms = float_of_int elapsed /. 1e6;
    pps =
      (if completed_run then float_of_int !delivered /. (float_of_int elapsed /. 1e9)
       else 0.);
    mbps =
      (if completed_run then
         Time.mbps ~bytes_transferred:(!delivered * cfg.size) ~elapsed
       else 0.);
    doorbells = src_counter "nic.doorbells";
    mailbox_fetches = src_counter "nic.mailbox_fetches";
    ring_submitted;
    ring_doorbells;
    faults_injected = Fault.faults_injected fault;
    retransmits = !retransmits;
    intact = !mismatches = 0 && !delivered = messages;
    completed_run;
  }

let print_report fmt cfg (r : report) =
  Format.fprintf fmt
    "firehose: %d sinks x %d msgs x %d B, batch %d%s%s@." cfg.sinks cfg.count
    cfg.size cfg.batch
    (if cfg.busy_poll then ", busy-poll" else "")
    (if cfg.loss > 0. then Printf.sprintf ", loss %.1f%%" (cfg.loss *. 100.)
     else "");
  Format.fprintf fmt
    "  delivered %d/%d in %.3f ms -> %.0f msg/s (%.1f Mb/s)@." r.delivered
    r.messages r.elapsed_ms r.pps r.mbps;
  Format.fprintf fmt
    "  source NIC: %d doorbells, %d mailbox fetches; tx ring: %d submitted, \
     %d doorbells@."
    r.doorbells r.mailbox_fetches r.ring_submitted r.ring_doorbells;
  if r.faults_injected > 0 || r.retransmits > 0 then
    Format.fprintf fmt "  chaos: %d faults injected, %d frames retransmitted@."
      r.faults_injected r.retransmits;
  Format.fprintf fmt "  %s@."
    (if r.completed_run && r.intact then "ok"
     else if not r.completed_run then "INCOMPLETE"
     else "CORRUPT")
