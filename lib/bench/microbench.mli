(** Micro-benchmark drivers (§7.1–7.2): ping-pong latency and
    unidirectional stream bandwidth over raw EMP, kernel TCP, or the
    substrate. Every run builds a fresh two-node cluster, so experiments
    are independent and bit-deterministic. *)

type stack_kind =
  | Emp_raw  (** raw EMP descriptors, no sockets layer *)
  | Tcp of Uls_tcp.Config.t
  | Sub of Uls_substrate.Options.t

val kind_name : stack_kind -> string

val ping_pong :
  ?iters:int -> ?warmup:int -> kind:stack_kind -> size:int -> unit -> float
(** One-way latency in microseconds (half the mean round trip over
    [iters] timed iterations after [warmup] discarded ones). *)

val bandwidth : ?total:int -> kind:stack_kind -> msg:int -> unit -> float
(** Stream [total] bytes (default 16 MB) in [msg]-byte messages; returns
    megabits per second of goodput. *)

(** {1 Observed runs}

    Same benchmarks, with the cluster simulation's shared
    {!Uls_engine.Trace} enabled before any traffic and the timed
    application loops wrapped in [App]-layer spans. The returned trace
    holds span/instant events from every instrumented layer (nic, emp,
    substrate or tcpip, app); the metrics registry holds the per-node
    counters and histograms. Both remain valid after the run. *)

val ping_pong_observed :
  ?iters:int ->
  ?warmup:int ->
  kind:stack_kind ->
  size:int ->
  unit ->
  float * Uls_engine.Trace.t * Uls_engine.Metrics.t

val bandwidth_observed :
  ?total:int ->
  kind:stack_kind ->
  msg:int ->
  unit ->
  float * Uls_engine.Trace.t * Uls_engine.Metrics.t

val barrier_latency_observed :
  ?iters:int ->
  alg:Uls_collective.Group.algorithm ->
  nodes:int ->
  unit ->
  float * Uls_engine.Trace.t * Uls_engine.Metrics.t

val coll_bandwidth_observed :
  ?iters:int ->
  op:[ `Bcast | `Allreduce ] ->
  alg:Uls_collective.Group.algorithm ->
  nodes:int ->
  size:int ->
  unit ->
  float * Uls_engine.Trace.t * Uls_engine.Metrics.t

val connect_time : kind:stack_kind -> unit -> float
(** Mean time of [connect()] alone, in microseconds (meaningless for
    [Emp_raw], which is connectionless). *)

val barrier_latency :
  ?iters:int -> alg:Uls_collective.Group.algorithm -> nodes:int -> unit -> float
(** Mean per-barrier latency in microseconds over an [nodes]-rank EMP
    group: one warm-up barrier, then [iters] (default 10) timed barriers;
    the span between the earliest rank start and the latest rank finish
    is divided by [iters], amortising warm-up exit skew. *)

val coll_bandwidth :
  ?iters:int ->
  op:[ `Bcast | `Allreduce ] ->
  alg:Uls_collective.Group.algorithm ->
  nodes:int ->
  size:int ->
  unit ->
  float
(** Effective collective bandwidth in megabits per second: [iters]
    (default 5) [size]-byte broadcasts or allreduces over an
    [nodes]-rank EMP group after one warm-up, measured as root payload
    bytes over the batch span. Allreduce sizes round up to a multiple
    of 8 for {!Uls_collective.Group.float_sum}. *)
