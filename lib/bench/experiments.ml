(** One driver per table/figure of the paper's evaluation (§7), plus the
    ablation studies called out in DESIGN.md. Every driver returns a
    {!Table.t}; [all] runs the full evaluation. *)

open Uls_engine
module Opt = Uls_substrate.Options

let ds_base = Opt.data_streaming
let ds_da = { Opt.data_streaming with delayed_acks = true }
let ds_full = Opt.data_streaming_enhanced
let dg = Opt.datagram

let latency_sizes = [ 4; 16; 64; 256; 1024; 4096 ]

(* ---------------------------------------------------------------------- *)
(* Figure 11: substrate latency vs raw EMP, per enhancement              *)
(* ---------------------------------------------------------------------- *)

let fig11 ?(quick = false) () =
  let iters = if quick then 10 else 30 in
  let sizes = if quick then [ 4; 256; 4096 ] else latency_sizes in
  let kinds =
    [
      ("EMP", Microbench.Emp_raw);
      ("DG", Microbench.Sub dg);
      ("DS", Microbench.Sub ds_base);
      ("DS_DA", Microbench.Sub ds_da);
      ("DS_DA_UQ", Microbench.Sub ds_full);
    ]
  in
  let rows =
    List.map
      (fun size ->
        Table.cell_i size
        :: List.map
             (fun (_, kind) ->
               Table.cell_f2 (Microbench.ping_pong ~iters ~kind ~size ()))
             kinds)
      sizes
  in
  {
    Table.id = "fig11";
    title = "Micro-benchmark latency (us, one-way) vs message size";
    header = "size(B)" :: List.map fst kinds;
    rows;
    notes =
      [
        "paper: EMP ~28us, DG ~28.5us, DS_DA_UQ ~37us at 4 bytes";
        "DS > DS_DA > DS_DA_UQ ordering comes from ack-descriptor tag-match walks";
      ];
  }

(* ---------------------------------------------------------------------- *)
(* Figure 12: latency vs credit size under delayed acks                   *)
(* ---------------------------------------------------------------------- *)

let fig12 ?(quick = false) () =
  let iters = if quick then 10 else 30 in
  let credit_sizes = if quick then [ 1; 8; 32 ] else [ 1; 2; 4; 8; 16; 32 ] in
  let rows =
    List.map
      (fun credits ->
        let without =
          Microbench.ping_pong ~iters
            ~kind:(Microbench.Sub { ds_base with Opt.credits })
            ~size:4 ()
        in
        let with_da =
          Microbench.ping_pong ~iters
            ~kind:(Microbench.Sub { ds_da with Opt.credits })
            ~size:4 ()
        in
        [ Table.cell_i credits; Table.cell_f2 without; Table.cell_f2 with_da ])
      credit_sizes
  in
  {
    Table.id = "fig12";
    title = "4-byte DS latency (us) vs credit size, delayed acks on/off";
    header = [ "credits"; "DS"; "DS_DA" ];
    rows;
    notes =
      [
        "paper: latency drops with credit size because acks (and their ~550ns";
        "per-descriptor tag-match walks) amortise over N/2 messages";
      ];
  }

(* ---------------------------------------------------------------------- *)
(* Figure 13: latency + bandwidth vs kernel TCP                           *)
(* ---------------------------------------------------------------------- *)

let tcp_default = Uls_tcp.Config.default
let tcp_tuned = Uls_tcp.Config.(with_buffers default 262_144)

let fig13 ?(quick = false) () =
  let iters = if quick then 10 else 30 in
  let sizes = if quick then [ 4; 1024 ] else latency_sizes in
  let lat_rows =
    List.map
      (fun size ->
        let tcp = Microbench.ping_pong ~iters ~kind:(Microbench.Tcp tcp_default) ~size () in
        let ds = Microbench.ping_pong ~iters ~kind:(Microbench.Sub ds_full) ~size () in
        let dgl = Microbench.ping_pong ~iters ~kind:(Microbench.Sub dg) ~size () in
        [
          "lat " ^ Table.cell_i size;
          Table.cell_f2 tcp;
          Table.cell_f2 ds;
          Table.cell_f2 dgl;
          Table.cell_f2 (tcp /. ds);
        ])
      sizes
  in
  let total = if quick then 4 * 1024 * 1024 else 16 * 1024 * 1024 in
  let bw_kinds =
    [
      ("bw TCP-16K", Microbench.Tcp tcp_default);
      ("bw TCP-tuned", Microbench.Tcp tcp_tuned);
      ("bw DS_DA_UQ", Microbench.Sub ds_full);
      ("bw DG", Microbench.Sub dg);
      ("bw EMP", Microbench.Emp_raw);
    ]
  in
  let bw_rows =
    List.map
      (fun (name, kind) ->
        [ name; Table.cell_f (Microbench.bandwidth ~total ~kind ~msg:65536 ()); "-"; "-"; "-" ])
      bw_kinds
  in
  {
    Table.id = "fig13";
    title =
      "Latency (us) TCP vs substrate, and peak bandwidth (Mb/s, 64KB messages)";
    header = [ "metric"; "TCP"; "DS_DA_UQ"; "DG"; "TCP/DS" ];
    rows = lat_rows @ bw_rows;
    notes =
      [
        "paper: TCP 120us vs 37us (4.2x) / 28.5us (3.4x stated for DS) at 4B";
        "paper: TCP 340 Mb/s at default 16KB buffers, ~550 tuned; substrate >840";
      ];
  }

(* ---------------------------------------------------------------------- *)
(* Figure 14: ftp bandwidth                                               *)
(* ---------------------------------------------------------------------- *)

type app_stack = {
  as_name : string;
  as_make : Cluster.t -> Uls_api.Sockets_api.stack;
}

let app_stacks =
  [
    { as_name = "TCP"; as_make = (fun c -> Cluster.tcp_api ~config:tcp_default c) };
    { as_name = "DS"; as_make = (fun c -> Cluster.substrate_api ~opts:ds_full c) };
    { as_name = "DG"; as_make = (fun c -> Cluster.substrate_api ~opts:dg c) };
  ]

let ftp_run stack_maker ~file_size =
  let c = Cluster.create ~n:2 () in
  let api = stack_maker c in
  let sim = Cluster.sim c in
  let server_disk = Uls_apps.Ramdisk.create (Cluster.node c 1) in
  let client_disk = Uls_apps.Ramdisk.create (Cluster.node c 0) in
  Uls_apps.Ramdisk.create_random server_disk ~name:"data" ~size:file_size ~seed:42;
  let result = ref 0. in
  Sim.spawn sim ~name:"ftp-server"
    (Uls_apps.Ftp.server sim api ~node:1 ~port:21 ~disk:server_disk);
  Sim.spawn sim ~name:"ftp-client" (fun () ->
      Sim.delay sim (Time.us 100);
      let tr =
        Uls_apps.Ftp.fetch sim api ~node:0 ~server:{ node = 1; port = 21 }
          ~file:"data" ~disk:client_disk
      in
      result :=
        Time.mbps ~bytes_transferred:tr.Uls_apps.Ftp.bytes
          ~elapsed:tr.Uls_apps.Ftp.elapsed;
      Sim.stop sim);
  ignore (Cluster.run c);
  !result

let fig14 ?(quick = false) () =
  let sizes =
    if quick then [ 262_144; 4_194_304 ]
    else [ 65_536; 262_144; 1_048_576; 4_194_304; 16_777_216 ]
  in
  let rows =
    List.map
      (fun size ->
        Table.cell_i size
        :: List.map
             (fun st -> Table.cell_f (ftp_run st.as_make ~file_size:size))
             app_stacks)
      sizes
  in
  {
    Table.id = "fig14";
    title = "FTP transfer bandwidth (Mb/s) vs file size (RAM disks)";
    header = "file(B)" :: List.map (fun s -> s.as_name) app_stacks;
    rows;
    notes =
      [
        "paper: substrate roughly 2x TCP; file-system overhead keeps both";
        "below the raw socket bandwidth";
      ];
  }

(* ---------------------------------------------------------------------- *)
(* Figures 15/16: web server response time, HTTP/1.0 and HTTP/1.1        *)
(* ---------------------------------------------------------------------- *)

let web_stacks =
  (* Paper §7.4 uses credit size 4 for the web server workload. *)
  [
    { as_name = "TCP"; as_make = (fun c -> Cluster.tcp_api ~config:tcp_default c) };
    {
      as_name = "DS";
      as_make = (fun c -> Cluster.substrate_api ~opts:{ ds_full with Opt.credits = 4 } c);
    };
    {
      as_name = "DG";
      as_make = (fun c -> Cluster.substrate_api ~opts:{ dg with Opt.credits = 4 } c);
    };
  ]

let web_run stack_maker ~response_size ~requests_per_conn ~connections =
  let c = Cluster.create ~n:4 () in
  let api = stack_maker c in
  let sim = Cluster.sim c in
  Sim.spawn sim ~name:"web-server"
    (Uls_apps.Http.server sim api ~node:0 ~port:80 ~response_size
       ~requests_per_conn);
  let means = Array.make 3 0. in
  let finished = ref 0 in
  for client = 1 to 3 do
    Sim.spawn sim ~name:(Printf.sprintf "web-client-%d" client) (fun () ->
        Sim.delay sim (Time.us (100 * client));
        let r =
          Uls_apps.Http.client sim api ~node:client
            ~server:{ node = 0; port = 80 } ~response_size ~requests_per_conn
            ~connections
        in
        means.(client - 1) <- r.Uls_apps.Http.mean_response_time;
        incr finished;
        if !finished = 3 then Sim.stop sim)
  done;
  ignore (Cluster.run c);
  Array.fold_left ( +. ) 0. means /. 3. /. 1_000.

let web_table ~id ~requests_per_conn ?(quick = false) () =
  let sizes = if quick then [ 4; 1024 ] else [ 4; 64; 256; 1024; 4096; 8192 ] in
  let connections = if quick then 10 else 40 in
  let rows =
    List.map
      (fun response_size ->
        Table.cell_i response_size
        :: List.map
             (fun st ->
               Table.cell_f
                 (web_run st.as_make ~response_size ~requests_per_conn
                    ~connections))
             web_stacks)
      sizes
  in
  {
    Table.id;
    title =
      Printf.sprintf
        "Web server mean response time (us), %d request(s) per connection, 3 clients"
        requests_per_conn;
    header = "resp(B)" :: List.map (fun s -> s.as_name) web_stacks;
    rows;
    notes =
      [
        "paper: up to 6x improvement under HTTP/1.0 (connection setup";
        "dominates TCP); HTTP/1.1 (8 req/conn) narrows but keeps the win";
      ];
  }

let fig15 ?quick () =
  web_table ~id:"fig15"
    ~requests_per_conn:Uls_apps.Http.http10_requests_per_conn ?quick ()

let fig16 ?quick () =
  web_table ~id:"fig16"
    ~requests_per_conn:Uls_apps.Http.http11_requests_per_conn ?quick ()

(* ---------------------------------------------------------------------- *)
(* Figure 17: matrix multiplication                                       *)
(* ---------------------------------------------------------------------- *)

let matmul_run stack_maker ~n =
  let c = Cluster.create ~n:4 () in
  let api = stack_maker c in
  let sim = Cluster.sim c in
  let a = Uls_apps.Matmul.random_matrix ~seed:1 ~n in
  let b = Uls_apps.Matmul.random_matrix ~seed:2 ~n in
  let result = ref None in
  for w = 1 to 3 do
    Sim.spawn sim ~name:(Printf.sprintf "mm-worker-%d" w) (fun () ->
        Sim.delay sim (Time.us (50 * w));
        Uls_apps.Matmul.worker sim api ~node:w ~master:{ node = 0; port = 90 } ())
  done;
  Sim.spawn sim ~name:"mm-master" (fun () ->
      let r = Uls_apps.Matmul.master sim api ~node:0 ~port:90 ~workers:3 ~a ~b in
      result := Some r;
      Sim.stop sim);
  ignore (Cluster.run c);
  match !result with
  | Some r ->
    let reference = Uls_apps.Matmul.multiply_seq a b in
    if not (Uls_apps.Matmul.matrices_equal ~eps:1e-6 reference r.Uls_apps.Matmul.product)
    then failwith "matmul: distributed result mismatch";
    Time.to_ms r.Uls_apps.Matmul.elapsed
  | None -> failwith "matmul: no result"

let fig17 ?(quick = false) () =
  let ns = if quick then [ 64; 128 ] else [ 64; 128; 256 ] in
  let rows =
    List.map
      (fun n ->
        Table.cell_i n
        :: List.map (fun st -> Table.cell_f2 (matmul_run st.as_make ~n)) app_stacks)
      ns
  in
  {
    Table.id = "fig17";
    title = "Matrix multiplication time (ms), 4 nodes (select()-based master)";
    header = "N" :: List.map (fun s -> s.as_name) app_stacks;
    rows;
    notes =
      [ "results verified against the sequential reference multiply" ];
  }

(* ---------------------------------------------------------------------- *)
(* Text results of §7.2: connection time                                  *)
(* ---------------------------------------------------------------------- *)

let connect_table ?quick:_ () =
  let kinds =
    [
      ("TCP", Microbench.Tcp tcp_default);
      ("substrate DS", Microbench.Sub ds_full);
      ("substrate DG", Microbench.Sub dg);
    ]
  in
  let rows =
    List.map
      (fun (name, kind) ->
        [ name; Table.cell_f2 (Microbench.connect_time ~kind ()) ])
      kinds
  in
  {
    Table.id = "connect";
    title = "connect() time (us)";
    header = [ "stack"; "us" ];
    rows;
    notes = [ "paper: TCP connection setup is typically 200-250us (7.4)" ];
  }

(* ---------------------------------------------------------------------- *)
(* Ablations (design choices of 5-6)                                      *)
(* ---------------------------------------------------------------------- *)

let ablation_unexpected ?(quick = false) () =
  let iters = if quick then 10 else 30 in
  let rows =
    List.map
      (fun size ->
        let eager =
          Microbench.ping_pong ~iters ~kind:(Microbench.Sub ds_full) ~size ()
        in
        let rdvz =
          Microbench.ping_pong ~iters
            ~kind:(Microbench.Sub { ds_full with Opt.scheme = Opt.Rendezvous })
            ~size ()
        in
        [ Table.cell_i size; Table.cell_f2 eager; Table.cell_f2 rdvz ])
      [ 4; 1024; 4096 ]
  in
  {
    Table.id = "abl-unexpected";
    title = "Unexpected-message scheme: eager+credits vs rendezvous (us)";
    header = [ "size(B)"; "eager"; "rendezvous" ];
    rows;
    notes = [ "5.2: rendezvous adds a request/grant synchronisation to every send" ];
  }

(* Stream [total] bytes over an already-built cluster/api (used by the
   CPU-utilisation ablation, which inspects busy counters afterwards). *)
let run_stream c api sim ~total =
  let msg = 65_536 in
  let count = max 1 (total / msg) in
  Sim.spawn sim ~name:"sink" (fun () ->
      let l = api.Uls_api.Sockets_api.listen ~node:1 ~port:99 ~backlog:2 in
      let s, _ = l.accept () in
      let goal = msg * count in
      let rec drain got =
        if got < goal then begin
          let chunk = s.recv 65_536 in
          if chunk <> "" then drain (got + String.length chunk)
        end
      in
      drain 0;
      s.send "k";
      s.close ());
  Sim.spawn sim ~name:"src" (fun () ->
      Sim.delay sim (Uls_engine.Time.us 50);
      let s = api.Uls_api.Sockets_api.connect ~node:0 { node = 1; port = 99 } in
      let payload = String.make msg 'y' in
      for _ = 1 to count do
        s.send payload
      done;
      ignore (s.recv 1);
      s.close ();
      Sim.stop sim);
  ignore (Cluster.run c)

let ablation_comm_thread ?(quick = false) () =
  let iters = if quick then 10 else 30 in
  let rows =
    List.map
      (fun size ->
        let eager =
          Microbench.ping_pong ~iters ~kind:(Microbench.Sub ds_full) ~size ()
        in
        let thread =
          Microbench.ping_pong ~iters
            ~kind:(Microbench.Sub { ds_full with Opt.scheme = Opt.Comm_thread })
            ~size ()
        in
        [ Table.cell_i size; Table.cell_f2 eager; Table.cell_f2 thread ])
      [ 4; 1024; 4096 ]
  in
  {
    Table.id = "abl-commthread";
    title = "Separate communication thread vs eager+credits (us)";
    header = [ "size(B)"; "eager"; "comm thread" ];
    rows;
    notes =
      [
        "5.2: the polling-thread synchronisation costs ~20us per message,";
        "which is why the paper rejected this alternative";
      ];
  }

let ablation_block_send ?(quick = false) () =
  let iters = if quick then 10 else 30 in
  let rows =
    List.map
      (fun size ->
        let normal =
          Microbench.ping_pong ~iters ~kind:(Microbench.Sub ds_full) ~size ()
        in
        let blocking =
          Microbench.ping_pong ~iters
            ~kind:(Microbench.Sub { ds_full with Opt.block_send = true })
            ~size ()
        in
        [ Table.cell_i size; Table.cell_f2 normal; Table.cell_f2 blocking ])
      [ 4; 1024 ]
  in
  {
    Table.id = "abl-blocksend";
    title = "Credit return policy: post-2N vs blocking send (us)";
    header = [ "size(B)"; "post 2N"; "block send" ];
    rows;
    notes =
      [ "6.1: blocking every write on its ack costs a round trip per send" ];
  }

let ablation_cpu_util ?(quick = false) () =
  (* Host CPU time consumed while streaming (the NIC-driven design's
     selling point: the host does almost nothing). *)
  let total = if quick then 4 * 1024 * 1024 else 16 * 1024 * 1024 in
  let stream_tcp () =
    let c = Cluster.create ~n:2 () in
    let api = Cluster.tcp_api ~config:tcp_tuned c in
    let stack = Cluster.tcp c in
    let sim = Cluster.sim c in
    run_stream c api sim ~total;
    let kernel_busy i =
      Uls_engine.Resource.busy_time (Uls_tcp.Kernel.cpu (Uls_tcp.Tcp_stack.kernel stack i))
    in
    let app_busy i = Uls_host.Node.busy_time (Cluster.node c i) in
    (kernel_busy 0 + app_busy 0, kernel_busy 1 + app_busy 1, Sim.now sim)
  and stream_sub () =
    let c = Cluster.create ~n:2 () in
    let api = Cluster.substrate_api ~opts:ds_full c in
    let sim = Cluster.sim c in
    run_stream c api sim ~total;
    let app_busy i = Uls_host.Node.busy_time (Cluster.node c i) in
    (app_busy 0, app_busy 1, Sim.now sim)
  in
  let row name (tx, rx, elapsed) =
    [
      name;
      Table.cell_f (Uls_engine.Time.to_ms tx);
      Table.cell_f (Uls_engine.Time.to_ms rx);
      Table.cell_f
        (100. *. float_of_int (tx + rx) /. (2. *. float_of_int elapsed));
    ]
  in
  {
    Table.id = "abl-cpu";
    title =
      Printf.sprintf "Host CPU time streaming %d MB (ms busy; %% of 2 cpus)"
        (total / 1024 / 1024);
    header = [ "stack"; "sender ms"; "receiver ms"; "cpu %" ];
    rows = [ row "TCP (tuned)" (stream_tcp ()); row "substrate DS" (stream_sub ()) ];
    notes =
      [
        "EMP is NIC-driven: the host only posts descriptors and copies";
        "out of credit buffers, while kernel TCP burns CPU on interrupts,";
        "checksums-era processing and copies (2)";
      ];
  }

let ablation_udp ?(quick = false) () =
  let iters = if quick then 10 else 30 in
  (* Kernel UDP ping-pong vs the substrate's datagram sockets. *)
  let udp_latency size =
    let c = Cluster.create ~n:2 () in
    let stack = Cluster.tcp c in
    let sim = Cluster.sim c in
    let k0 = Uls_tcp.Tcp_stack.kernel stack 0
    and k1 = Uls_tcp.Tcp_stack.kernel stack 1 in
    let payload = String.make size 'u' in
    let latency = ref 0. in
    Sim.spawn sim ~name:"udp-pong" (fun () ->
        let sock = Uls_tcp.Kernel.udp_bind k1 ~port:53 in
        for _ = 1 to iters + 3 do
          let from, data = Uls_tcp.Kernel.udp_recvfrom k1 sock in
          Uls_tcp.Kernel.udp_sendto k1 sock ~dst:from data
        done);
    Sim.spawn sim ~name:"udp-ping" (fun () ->
        let sock = Uls_tcp.Kernel.udp_bind k0 ~port:1000 in
        let sum = ref 0 in
        for i = 1 to iters + 3 do
          let t0 = Sim.now sim in
          Uls_tcp.Kernel.udp_sendto k0 sock ~dst:{ node = 1; port = 53 } payload;
          ignore (Uls_tcp.Kernel.udp_recvfrom k0 sock);
          if i > 3 then sum := !sum + (Sim.now sim - t0)
        done;
        latency := float_of_int !sum /. float_of_int iters /. 2.);
    ignore (Cluster.run c);
    !latency /. 1_000.
  in
  let rows =
    List.map
      (fun size ->
        let udp = udp_latency size in
        let dgl = Microbench.ping_pong ~iters ~kind:(Microbench.Sub dg) ~size () in
        [ Table.cell_i size; Table.cell_f2 udp; Table.cell_f2 dgl ])
      [ 4; 1024 ]
  in
  {
    Table.id = "abl-udp";
    title = "Kernel UDP vs substrate datagram sockets (us, one-way)";
    header = [ "size(B)"; "kernel UDP"; "substrate DG" ];
    rows;
    notes =
      [ "even without TCP's connection machinery, the kernel datagram path";
        "keeps the syscall/interrupt/copy costs the substrate avoids" ];
  }

let ablation_piggyback ?(quick = false) () =
  let iters = if quick then 10 else 30 in
  let mk piggyback =
    Microbench.ping_pong ~iters
      ~kind:(Microbench.Sub { ds_base with Opt.piggyback = piggyback })
      ~size:4 ()
  in
  {
    Table.id = "abl-piggyback";
    title = "Piggy-backed credit acks, 4B DS ping-pong (us)";
    header = [ "piggyback"; "us" ];
    rows = [ [ "off"; Table.cell_f2 (mk false) ]; [ "on"; Table.cell_f2 (mk true) ] ];
    notes = [ "6.1: reverse-direction data carries the credit return for free" ];
  }

let ablation_uq ?(quick = false) () =
  let iters = if quick then 10 else 30 in
  let credit_sizes = if quick then [ 4; 32 ] else [ 4; 8; 16; 32 ] in
  let rows =
    List.map
      (fun credits ->
        let off =
          Microbench.ping_pong ~iters
            ~kind:(Microbench.Sub { ds_da with Opt.credits }) ~size:4 ()
        in
        let on =
          Microbench.ping_pong ~iters
            ~kind:
              (Microbench.Sub { ds_da with Opt.credits; unexpected_queue = true })
            ~size:4 ()
        in
        [ Table.cell_i credits; Table.cell_f2 off; Table.cell_f2 on ])
      credit_sizes
  in
  {
    Table.id = "abl-uq";
    title = "EMP unexpected queue for ack buffers: 4B DS_DA latency (us)";
    header = [ "credits"; "UQ off"; "UQ on" ];
    rows;
    notes = [ "6.4: ack descriptors out of the match list shorten data walks" ];
  }

let ablation_pincache ?quick:_ () =
  (* First message pays translate-and-pin; steady state hits the cache. *)
  let run () =
    let c = Cluster.create ~n:2 () in
    let e0 = Cluster.emp c 0 and e1 = Cluster.emp c 1 in
    let sim = Cluster.sim c in
    let first = ref 0. and steady = ref 0. in
    Sim.spawn sim ~name:"pong" (fun () ->
        for _ = 1 to 20 do
          let buf = Uls_host.Memory.alloc 4096 in
          let r = Uls_emp.Endpoint.post_recv e1 ~src:0 ~tag:7 buf ~off:0 ~len:4096 in
          ignore (Uls_emp.Endpoint.wait_recv e1 r)
        done);
    Sim.spawn sim ~name:"ping" (fun () ->
        let reused = Uls_host.Memory.alloc 4096 in
        for i = 1 to 20 do
          let t0 = Sim.now sim in
          let region =
            if i = 1 then Uls_host.Memory.alloc 4096 else reused
          in
          let s = Uls_emp.Endpoint.post_send e0 ~dst:1 ~tag:7 region ~off:0 ~len:4096 in
          Uls_emp.Endpoint.wait_send e0 s;
          let dt = float_of_int (Sim.now sim - t0) /. 1_000. in
          if i = 2 then first := dt (* the reused buffer's first (miss) *)
          else if i > 2 then steady := dt
        done);
    ignore (Cluster.run c);
    (!first, !steady)
  in
  let miss, hit = run () in
  {
    Table.id = "abl-pincache";
    title = "Translation cache: 4KB send completion time (us)";
    header = [ "case"; "us" ];
    rows = [ [ "first use (pin)"; Table.cell_f2 miss ]; [ "cached"; Table.cell_f2 hit ] ];
    notes = [ "2: descriptor posts bypass the OS once the area is pinned" ];
  }

let ablation_ackwindow ?(quick = false) () =
  let total = if quick then 4 * 1024 * 1024 else 16 * 1024 * 1024 in
  let rows =
    List.map
      (fun ack_window ->
        let config = { Uls_emp.Endpoint.default_config with ack_window } in
        let c = Cluster.create ~n:2 () in
        let e0 = Cluster.emp ~config c 0 and e1 = Cluster.emp ~config c 1 in
        let sim = Cluster.sim c in
        let msg = 65536 in
        let count = total / msg in
        let buf0 = Uls_host.Memory.alloc msg and buf1 = Uls_host.Memory.alloc msg in
        let result = ref 0. in
        Sim.spawn sim ~name:"sink" (fun () ->
            let recvs =
              List.init count (fun _ ->
                  Uls_emp.Endpoint.post_recv e1 ~src:0 ~tag:7 buf1 ~off:0 ~len:msg)
            in
            List.iter (fun r -> ignore (Uls_emp.Endpoint.wait_recv e1 r)) recvs);
        Sim.spawn sim ~name:"src" (fun () ->
            let t0 = Sim.now sim in
            let pending = Queue.create () in
            for _ = 1 to count do
              if Queue.length pending >= 8 then
                Uls_emp.Endpoint.wait_send e0 (Queue.pop pending);
              Queue.push
                (Uls_emp.Endpoint.post_send e0 ~dst:1 ~tag:7 buf0 ~off:0 ~len:msg)
                pending
            done;
            Queue.iter (Uls_emp.Endpoint.wait_send e0) pending;
            result :=
              Time.mbps ~bytes_transferred:(msg * count) ~elapsed:(Sim.now sim - t0));
        ignore (Cluster.run c);
        [ Table.cell_i ack_window; Table.cell_f !result ])
      (if quick then [ 1; 4 ] else [ 1; 2; 4; 8; 16 ])
  in
  {
    Table.id = "abl-ackwindow";
    title = "EMP reliability ack window vs bandwidth (Mb/s)";
    header = [ "ack window"; "Mb/s" ];
    rows;
    notes = [ "2: EMP acks every 4 frames; smaller windows cost NIC ack work" ];
  }

(* ---------------------------------------------------------------------- *)
(* Per-layer latency breakdown from the structured trace                  *)
(* ---------------------------------------------------------------------- *)

let breakdown ?(quick = false) () =
  let iters = if quick then 10 else 30 in
  let kinds =
    [
      ("EMP", Microbench.Emp_raw);
      ("DS_DA_UQ", Microbench.Sub ds_full);
      ("TCP", Microbench.Tcp tcp_default);
    ]
  in
  let rows =
    List.concat_map
      (fun (name, kind) ->
        let lat, tr, _ = Microbench.ping_pong_observed ~iters ~kind ~size:4 () in
        let totals =
          Trace.span_totals tr
          |> List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a)
        in
        List.filteri (fun i _ -> i < 5) totals
        |> List.mapi (fun i (layer, sname, count, total_ns) ->
               let total_us = float_of_int total_ns /. 1_000. in
               [
                 (if i = 0 then Printf.sprintf "%s (%s us)" name (Table.cell_f2 lat)
                  else "");
                 Trace.layer_name layer ^ "/" ^ sname;
                 Table.cell_i count;
                 Table.cell_f2 total_us;
                 Table.cell_f2 (total_us /. float_of_int iters);
               ]))
      kinds
  in
  {
    Table.id = "breakdown";
    title = "Per-layer latency breakdown, 4B ping-pong (top trace spans)";
    header = [ "stack (one-way us)"; "layer/span"; "count"; "total(us)"; "us/iter" ];
    rows;
    notes =
      [
        "span totals include time spent blocked inside the span (e.g. a";
        "sub.read span covers the wait for the reply), so they bound, not";
        "partition, the round trip; counts cover warmup iterations too";
      ];
  }

(* ---------------------------------------------------------------------- *)
(* Collectives: barrier latency vs node count, bcast/allreduce bandwidth  *)
(* ---------------------------------------------------------------------- *)

module Coll = Uls_collective.Group

let coll_algs =
  [
    Coll.Linear; Coll.Binomial_tree; Coll.Recursive_doubling; Coll.Nic_forward;
  ]

let coll_barrier ?(quick = false) () =
  let iters = if quick then 4 else 10 in
  let node_counts = if quick then [ 2; 8 ] else [ 2; 4; 8; 16 ] in
  let rows =
    List.map
      (fun nodes ->
        Table.cell_i nodes
        :: List.map
             (fun alg ->
               Table.cell_f2 (Microbench.barrier_latency ~iters ~alg ~nodes ()))
             coll_algs)
      node_counts
  in
  {
    Table.id = "coll-barrier";
    title = "Barrier latency (us) vs node count, per algorithm";
    header = "nodes" :: List.map Coll.algorithm_name coll_algs;
    rows;
    notes =
      [
        "linear grows O(N); binomial and recursive-doubling grow O(log N)";
        "nic-forward combines arrivals on the Tigon, skipping 2(N-1) host wakeups";
      ];
  }

let coll_bw ?(quick = false) () =
  let iters = if quick then 3 else 5 in
  let nodes = 8 in
  let sizes =
    if quick then [ 8192; 65_536 ] else [ 1024; 8192; 65_536; 524_288 ]
  in
  let cell ~op ~alg size =
    Table.cell_f (Microbench.coll_bandwidth ~iters ~op ~alg ~nodes ~size ())
  in
  let rows =
    List.map
      (fun size ->
        [
          Table.cell_i size;
          cell ~op:`Bcast ~alg:Coll.Linear size;
          cell ~op:`Bcast ~alg:Coll.Binomial_tree size;
          cell ~op:`Bcast ~alg:Coll.Nic_forward size;
          cell ~op:`Allreduce ~alg:Coll.Linear size;
          cell ~op:`Allreduce ~alg:Coll.Recursive_doubling size;
        ])
      sizes
  in
  {
    Table.id = "coll-bw";
    title =
      Printf.sprintf
        "Collective bandwidth (Mb/s, %d nodes) vs message size" nodes;
    header =
      [
        "size(B)"; "bcast-lin"; "bcast-bin"; "bcast-nic"; "allred-lin";
        "allred-rd";
      ];
    rows;
    notes =
      [
        "bcast-nic re-frames on the NIC for single-frame payloads, else falls back to binomial";
        "allred-rd is the MPICH recursive-doubling exchange (reduce-scatter flavoured)";
      ];
  }

(* ---------------------------------------------------------------------- *)

let all ?quick () =
  [
    fig11 ?quick ();
    fig12 ?quick ();
    fig13 ?quick ();
    fig14 ?quick ();
    fig15 ?quick ();
    fig16 ?quick ();
    fig17 ?quick ();
    connect_table ?quick ();
    ablation_unexpected ?quick ();
    ablation_comm_thread ?quick ();
    ablation_block_send ?quick ();
    ablation_piggyback ?quick ();
    ablation_uq ?quick ();
    ablation_pincache ?quick ();
    ablation_ackwindow ?quick ();
    ablation_cpu_util ?quick ();
    ablation_udp ?quick ();
    breakdown ?quick ();
    coll_barrier ?quick ();
    coll_bw ?quick ();
  ]

let by_id =
  [
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("fig17", fig17);
    ("connect", connect_table);
    ("abl-unexpected", ablation_unexpected);
    ("abl-commthread", ablation_comm_thread);
    ("abl-blocksend", ablation_block_send);
    ("abl-piggyback", ablation_piggyback);
    ("abl-uq", ablation_uq);
    ("abl-pincache", ablation_pincache);
    ("abl-ackwindow", ablation_ackwindow);
    ("abl-cpu", ablation_cpu_util);
    ("abl-udp", ablation_udp);
    ("breakdown", breakdown);
    ("coll-barrier", coll_barrier);
    ("coll-bw", coll_bw);
  ]
