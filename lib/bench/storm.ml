(** Connection storm: ZMap-style scanners fire windowed connection
    probes at substrate targets at connect-attempt rates limited only by
    the submission path. Each scanner is a raw-EMP probe engine — a
    window of probe slots, each carrying a pre-pinned request buffer, a
    pre-posted connection-reply descriptor and a standing close-message
    descriptor (the target's accept-and-close drainer sends a close
    notification per probe, which must be absorbed or it retransmits).
    [batch] probes are submitted per doorbell through the endpoint tx
    ring ([post_sendv]) with their reply descriptors posted through the
    fill ring ([post_recv_batch]); [batch = 1] is the per-call ablation.
    Deterministic per config. *)

open Uls_engine
open Uls_host
module Sub = Uls_substrate.Substrate
module Conn = Uls_substrate.Conn
module Options = Uls_substrate.Options
module Tags = Uls_substrate.Tags
module Codec = Uls_substrate.Codec
module E = Uls_emp.Endpoint

type config = {
  scanners : int;
  targets : int;
  window : int;  (** probe slots (concurrent probes) per scanner *)
  probes : int;  (** probes per scanner *)
  batch : int;  (** probes submitted per doorbell; 1 = per-call *)
  backlog : int;  (** per-target listen backlog *)
  busy_poll : bool;
  seed : int;
  match_engine : Uls_nic.Match_list.engine;
  event_sched : [ `Heap | `Wheel ];
}

let default =
  {
    scanners = 2;
    targets = 2;
    window = 64;
    probes = 2_000;
    batch = 32;
    backlog = 64;
    busy_poll = false;
    seed = 42;
    match_engine = Uls_nic.Match_list.Hashed;
    event_sched = `Wheel;
  }

type report = {
  attempts : int;  (** scanners x probes *)
  accepted : int;  (** replies carrying a server connection id *)
  refused : int;  (** explicit refusals (none expected here) *)
  server_accepts : int;  (** connections the targets actually built *)
  elapsed_ms : float;
  attempts_per_sec : float;
  mpps : float;  (** attempts_per_sec / 1e6 *)
  doorbells : int;  (** scanner-node [nic.doorbells], summed *)
  mailbox_fetches : int;  (** scanner-node [nic.mailbox_fetches], summed *)
  intact : bool;  (** every probe answered *)
  completed_run : bool;
}

let liveness_bound = Time.s 60

type probe_slot = {
  ps_id : int;  (** probe id = reply tag id; also the fake client conn id *)
  ps_req : Memory.region;
  ps_reply : Memory.region;
  mutable ps_pending : E.send option;
}

let run cfg =
  if cfg.scanners < 1 || cfg.targets < 1 then
    invalid_arg "Storm.run: scanners/targets < 1";
  if cfg.window < 1 || cfg.batch < 1 then
    invalid_arg "Storm.run: window/batch < 1";
  if cfg.window > Tags.max_id then invalid_arg "Storm.run: window > 4095";
  let n = cfg.scanners + cfg.targets in
  let c =
    Cluster.create ~match_engine:cfg.match_engine ~sched:cfg.event_sched ~n ()
  in
  let sim = Cluster.sim c in
  let accepted = ref 0 and refused = ref 0 and server_accepts = ref 0 in
  let starts = Array.make cfg.scanners max_int in
  let ends = Array.make cfg.scanners 0 in
  (* Targets: substrate listeners with an accept-and-close drainer. *)
  for i = 0 to cfg.targets - 1 do
    let node = cfg.scanners + i in
    let s = Cluster.substrate ~opts:Options.server c node in
    Sim.spawn sim
      ~name:(Printf.sprintf "storm-target-%d" node)
      ~daemon:true
      (fun () ->
        (* listen posts control descriptors, so it must run as a fiber *)
        let l = Sub.listen s ~port:80 ~backlog:cfg.backlog in
        while true do
          let conn, _ = Sub.accept s l in
          incr server_accepts;
          Conn.close conn
        done)
  done;
  (* Scanners: raw-EMP windowed probe engines. *)
  for sidx = 0 to cfg.scanners - 1 do
    let emp = Cluster.emp c sidx in
    let node = Cluster.node c sidx in
    if cfg.busy_poll then
      ignore (E.get_tx_ring ~mode:Uls_rings.Ringpair.Busy_poll emp);
    let mk_region size =
      let r = Memory.alloc size in
      Os.prepin (Node.os node) r;
      r
    in
    let slots =
      Array.init cfg.window (fun i ->
          {
            ps_id = i;
            ps_req = mk_region 32;
            ps_reply = mk_region 16;
            ps_pending = None;
          })
    in
    (* Standing close-descriptor per probe slot: the target's close
       notification (tag Close/<probe id>) lands here instead of being
       dropped and retransmitted against a descriptor-less endpoint. *)
    Array.iter
      (fun slot ->
        let region = mk_region 16 in
        Sim.spawn sim
          ~name:(Printf.sprintf "storm-close-drain-%d.%d" sidx slot.ps_id)
          ~daemon:true
          (fun () ->
            while true do
              let r =
                E.post_recv emp ~src:(-1)
                  ~tag:(Tags.make Tags.Close slot.ps_id)
                  region ~off:0 ~len:16
              in
              ignore (E.wait_recv emp r)
            done))
      slots;
    let free = Queue.create () in
    Array.iter (fun slot -> Queue.push slot free) slots;
    let free_c =
      Cond.create ~label:(Printf.sprintf "storm:%d free-slots" sidx) sim
    in
    let replies =
      Mailbox.create ~label:(Printf.sprintf "storm:%d replies" sidx) sim
    in
    let probe_counter = ref 0 in
    (* Submission fiber: take up to [batch] free slots, post their reply
       descriptors through the fill ring, fire the requests through the
       tx ring under one doorbell. *)
    Sim.spawn sim
      ~name:(Printf.sprintf "storm-submit-%d" sidx)
      (fun () ->
        Sim.delay sim (Time.us 50);
        starts.(sidx) <- Sim.now sim;
        let sent = ref 0 in
        while !sent < cfg.probes do
          Cond.wait_until free_c (fun () -> not (Queue.is_empty free));
          let take = ref [] in
          while
            (not (Queue.is_empty free))
            && List.length !take < cfg.batch
            && !sent + List.length !take < cfg.probes
          do
            take := Queue.pop free :: !take
          done;
          let batch_slots = List.rev !take in
          let targets_of =
            List.map
              (fun slot ->
                let tgt = cfg.scanners + (!probe_counter mod cfg.targets) in
                incr probe_counter;
                (* A reused slot's request region must not be rewritten
                   while its previous send is still retransmitting. *)
                (match slot.ps_pending with
                | Some s when not (E.send_done s) -> (
                  try E.wait_send emp s with E.Send_failed _ -> ())
                | _ -> ());
                slot.ps_pending <- None;
                Memory.blit_from_string
                  (Codec.encode [ sidx; slot.ps_id; 99 ])
                  slot.ps_req ~off:0;
                (slot, tgt))
              batch_slots
          in
          (* Reply descriptors first (the reply must find one posted). *)
          let reply_specs =
            List.map
              (fun (slot, tgt) ->
                (tgt, Tags.make Tags.Conn_reply slot.ps_id, slot.ps_reply, 0, 16))
              targets_of
          in
          let reply_recvs =
            match reply_specs with
            | [ (src, tag, region, off, len) ] ->
              [ E.post_recv emp ~src ~tag region ~off ~len ]
            | specs -> E.post_recv_batch emp specs
          in
          let req_specs =
            List.map
              (fun (slot, tgt) ->
                (tgt, Tags.make Tags.Conn_request 80, slot.ps_req, 0, 24))
              targets_of
          in
          let sends =
            match req_specs with
            | [ (dst, tag, region, off, len) ] ->
              [ E.post_send emp ~dst ~tag region ~off ~len ]
            | specs -> E.post_sendv emp specs
          in
          List.iter2
            (fun ((slot, _), send) reply ->
              slot.ps_pending <- Some send;
              Mailbox.send replies (slot, reply))
            (List.combine targets_of sends)
            reply_recvs;
          sent := !sent + List.length batch_slots
        done);
    (* Reaper fiber: wait each reply, recycle the slot, retire completed
       ring sends in bulk. *)
    Sim.spawn sim
      ~name:(Printf.sprintf "storm-reap-%d" sidx)
      (fun () ->
        for _ = 1 to cfg.probes do
          let slot, reply = Mailbox.recv replies in
          let len, _, _ = E.wait_recv emp reply in
          (if len >= Codec.int_bytes then
             match Codec.decode_region slot.ps_reply ~off:0 ~count:1 with
             | [ id ] when id >= 0 -> incr accepted
             | _ -> incr refused);
          Queue.push slot free;
          Cond.broadcast free_c;
          ignore (E.reap_sent emp)
        done;
        ends.(sidx) <- Sim.now sim)
  done;
  let outcome = Cluster.run ~until:liveness_bound c in
  let metrics = Metrics.for_sim sim in
  let attempts = cfg.scanners * cfg.probes in
  let t0 = Array.fold_left min max_int starts in
  let t1 = Array.fold_left max 0 ends in
  let elapsed = if t1 > t0 then t1 - t0 else 1 in
  let scanner_counter name =
    let sum = ref 0 in
    for i = 0 to cfg.scanners - 1 do
      sum := !sum + Metrics.counter_value metrics ~node:i name
    done;
    !sum
  in
  let completed_run = outcome = `Quiescent && !accepted + !refused = attempts in
  {
    attempts;
    accepted = !accepted;
    refused = !refused;
    server_accepts = !server_accepts;
    elapsed_ms = float_of_int elapsed /. 1e6;
    attempts_per_sec =
      (if completed_run then
         float_of_int attempts /. (float_of_int elapsed /. 1e9)
       else 0.);
    mpps =
      (if completed_run then
         float_of_int attempts /. (float_of_int elapsed /. 1e9) /. 1e6
       else 0.);
    doorbells = scanner_counter "nic.doorbells";
    mailbox_fetches = scanner_counter "nic.mailbox_fetches";
    intact = !accepted + !refused = attempts && !refused = 0;
    completed_run;
  }

let print_report fmt cfg (r : report) =
  Format.fprintf fmt
    "storm: %d scanners x %d probes (window %d, batch %d) -> %d targets%s@."
    cfg.scanners cfg.probes cfg.window cfg.batch cfg.targets
    (if cfg.busy_poll then ", busy-poll" else "");
  Format.fprintf fmt
    "  %d attempts in %.3f ms -> %.0f attempts/s (%.3f Mpps)@." r.attempts
    r.elapsed_ms r.attempts_per_sec r.mpps;
  Format.fprintf fmt
    "  accepted %d, refused %d, server accepts %d; scanner NICs: %d \
     doorbells, %d mailbox fetches@."
    r.accepted r.refused r.server_accepts r.doorbells r.mailbox_fetches;
  Format.fprintf fmt "  %s@."
    (if r.completed_run && r.intact then "ok"
     else if not r.completed_run then "INCOMPLETE"
     else "REFUSALS")
