(** Fleet-scale load driver for the sharded serving fabric: open-loop
    connection arrivals across many client nodes against K balanced
    cells, with optional mid-load kill or drain. See the .mli. *)

open Uls_engine
module Api = Uls_api.Sockets_api
module Server = Uls_server.Server
module Fabric = Uls_fabric.Fabric
module Ring = Uls_fabric.Ring

type config = {
  kind : Chaos.kind;
  cells : int;
  shards : int;
  conns : int;
  requests_per_conn : int;
  size : int;
  rate : float;
  think : float;
  client_nodes : int;
  seed : int;
  loss : float;
  max_inflight : int;
  backlog : int;
  vnodes : int;
  probe_period : Time.ns;
  fail_threshold : int;
  connect_retries : int;
  kill : (int * Time.ns) option;
  drain : (int * Time.ns) option;
  tiebreak : Uls_engine.Sim.tiebreak_spec option;
  time_limit : Time.ns option;
  match_engine : Uls_nic.Match_list.engine;
  event_sched : [ `Heap | `Wheel ];
}

let default =
  {
    kind = Chaos.Sub Uls_substrate.Options.server;
    cells = 4;
    shards = 4;
    conns = 512;
    requests_per_conn = 2;
    size = 256;
    rate = 4_000.;
    think = 0.;
    client_nodes = 8;
    seed = 42;
    loss = 0.;
    max_inflight = 0;
    (* Modest on purpose: every posted backlog descriptor sits in the
       cell NIC's linear match list, so each RX frame pays
       O(backlog + open conns) walk cost — a 1024-deep backlog costs
       ~0.5 ms of NIC CPU per received frame before any conn data. *)
    backlog = 128;
    vnodes = 128;
    probe_period = Time.ms 5;
    fail_threshold = 2;
    connect_retries = 6;
    kill = None;
    drain = None;
    tiebreak = None;
    time_limit = None;
    match_engine = Uls_nic.Match_list.Hashed;
    event_sched = `Heap;
  }

type cell_report = {
  c_state : string;
  c_connects : int;
  c_completed : int;
  c_shed : int;
  c_refused : int;
  c_resets : int;
  c_errors : int;
  c_mismatches : int;
  c_server_requests : int;
  c_accepted : int;
  c_server_shed : int;
  c_peak_inflight : int;
}

type report = {
  cells : int;
  arrivals : int;
  established : int;
  completed : int;
  shed : int;
  refused : int;
  resets : int;
  errors : int;
  mismatches : int;
  no_route : int;
  remapped : int;
  retried_ok : int;
  peak_open : int;
  peak_cell_open : int;
  healed_at_ms : float;
  drained_at_ms : float;
  drain_open : int;
  elapsed_ms : float;
  rps : float;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  p999_us : float;
  per_cell : cell_report array;
  transitions : (float * int * string * string) list;
  intact : bool;
  completed_run : bool;
}

(* Scaled like {!Load.liveness_bound} but with headroom for failover
   runs: a kill adds bounded-retransmission stalls (connect timeouts,
   RTO budgets) to every connection that was talking to the dead cell. *)
let liveness_bound ~conns = Time.s 120 + (conns * Time.ms 250)

let debug_errors = Sys.getenv_opt "LOAD_DEBUG" <> None

let note_error e =
  if debug_errors then
    prerr_endline ("fleet: client error: " ^ Printexc.to_string e)

exception Shed_by_server

let run ?on_metrics (cfg : config) =
  if cfg.cells < 1 then invalid_arg "Fleet.run: cells < 1";
  if cfg.client_nodes < 1 then invalid_arg "Fleet.run: client_nodes < 1";
  (* Node layout: cells 0..K-1, prober K, clients K+1..K+client_nodes. *)
  let n_nodes = cfg.cells + 1 + cfg.client_nodes in
  let c =
    match cfg.tiebreak with
    | Some tiebreak ->
      Cluster.create ~tiebreak ~match_engine:cfg.match_engine
        ~sched:cfg.event_sched ~n:n_nodes ()
    | None ->
      Cluster.create ~match_engine:cfg.match_engine ~sched:cfg.event_sched
        ~n:n_nodes ()
  in
  let sim = Cluster.sim c in
  let api =
    match cfg.kind with
    | Chaos.Tcp config -> Cluster.tcp_api ~config c
    | Chaos.Sub opts -> Cluster.substrate_api ~opts c
  in
  let bound =
    match cfg.time_limit with
    | Some t -> t
    | None -> liveness_bound ~conns:cfg.conns
  in
  let fault =
    if cfg.loss > 0. || cfg.kill <> None then begin
      let fault = Fault.create ~seed:cfg.seed sim in
      if cfg.loss > 0. then
        Fault.set_default_plan fault (Fault.uniform_loss cfg.loss);
      Uls_ether.Network.set_fault (Cluster.network c) fault;
      Some fault
    end
    else None
  in
  let sched =
    if cfg.max_inflight = 0 then None
    else
      Some
        {
          Uls_server.Sched.default_config with
          max_inflight = cfg.max_inflight;
        }
  in
  let fab_ref = ref None in
  (* Pristine full ring: the routing the run would have used had no cell
     ever left — [remapped] counts flows served away from home. *)
  let home_ring = Ring.create ~vnodes:cfg.vnodes ~seed:cfg.seed () in
  for id = 0 to cfg.cells - 1 do
    Ring.add home_ring id
  done;
  let port = Fabric.default_config.Fabric.port in
  (* Per-cell client-side accounting. *)
  let connects = Array.make cfg.cells 0 in
  let completed_c = Array.make cfg.cells 0 in
  let shed_c = Array.make cfg.cells 0 in
  let refused_c = Array.make cfg.cells 0 in
  let resets_c = Array.make cfg.cells 0 in
  let errors_c = Array.make cfg.cells 0 in
  let mismatches_c = Array.make cfg.cells 0 in
  let no_route = ref 0 and remapped = ref 0 and retried_ok = ref 0 in
  let open_now = ref 0 and peak_open = ref 0 in
  (* Read deadline (SO_RCVTIMEO stand-in): a client whose request was
     delivered just before a kill waits for a reply that was dropped,
     and the server's failed send resets only the server-side half — no
     frame can cross the partition to wake the reader. A reaper fiber
     closes streams idle past [idle_limit]; close wakes the blocked
     reader, which records the conn as reset. *)
  let live = Hashtbl.create 64 in (* conn -> (stream, last-activity ref) *)
  let reaped = Hashtbl.create 8 in
  let lat = Stats.Summary.create () in
  let t_first = ref max_int and t_last = ref 0 in
  let finished = ref 0 in
  let finished_c = Cond.create ~label:"fleet:finished" sim in
  let rngs =
    let root = Rng.create ~seed:cfg.seed in
    Array.init (max 1 cfg.conns) (fun _ -> Rng.split root)
  in
  (* One connection's life: route, connect (with re-route retries over
     membership changes), echo [requests_per_conn] verified exchanges
     with optional think gaps, close. *)
  let client fab conn () =
    let rng = rngs.(conn) in
    let client_node = cfg.cells + 1 + (conn mod cfg.client_nodes) in
    let key = Fabric.flow_key ~client_node ~flow:conn ~port in
    (* Back off past the health checker's detection horizon so a later
       attempt routes on the healed (or rejoined) ring. An empty ring is
       retried the same way: with auto-rejoin an overloaded fleet comes
       back, and only exhausting every retry counts as [no_route].

       The jitter is wide on purpose: every flow that arrived during a
       cell's blackout fails its connect at arrival + the same substrate
       timeout, so narrow jitter re-synchronises them into a thundering
       herd that pushes the survivors over the EMP match-walk cliff
       (~60 open conns x ~2N+3 descriptors each makes every RX frame
       pay a >1 ms walk). Spreading each retry over its own backoff
       width keeps the herd's arrival rate under the cliff. *)
    let backoff tries =
      Sim.delay sim
        (Time.ms 250 * (tries + 1) + Rng.int rng (Time.ms 500 * (tries + 1)))
    in
    let rec attempt tries =
      match Fabric.route fab ~key with
      | exception Fabric.No_live_cells ->
        if tries + 1 < cfg.connect_retries then begin
          backoff tries;
          attempt (tries + 1)
        end
        else begin
          incr no_route;
          None
        end
      | id -> (
        match Fabric.connect fab ~client_node ~key with
        | s, cell ->
          if tries > 0 then incr retried_ok;
          Some (s, cell)
        | exception Fabric.No_live_cells ->
          if tries + 1 < cfg.connect_retries then begin
            backoff tries;
            attempt (tries + 1)
          end
          else begin
            incr no_route;
            None
          end
        | exception e ->
          note_error e;
          if tries + 1 < cfg.connect_retries then begin
            backoff tries;
            attempt (tries + 1)
          end
          else begin
            refused_c.(id) <- refused_c.(id) + 1;
            None
          end)
    in
    (match attempt 0 with
    | None -> ()
    | Some (s, cell) ->
      connects.(cell) <- connects.(cell) + 1;
      if Ring.lookup home_ring ~key <> Some cell then incr remapped;
      incr open_now;
      if !open_now > !peak_open then peak_open := !open_now;
      let last_activity = ref (Sim.now sim) in
      let phase = ref "idle" in
      Hashtbl.replace live conn (s, last_activity, cell, phase);
      (try
         for seq = 0 to cfg.requests_per_conn - 1 do
           let t0 = Sim.now sim in
           t_first := min !t_first t0;
           let payload = Load.echo_payload ~conn ~seq ~size:cfg.size in
           phase := Printf.sprintf "send#%d" seq;
           s.Api.send payload;
           phase := Printf.sprintf "recv#%d" seq;
           let got =
             try Api.recv_exact s cfg.size
             with Api.Connection_closed when seq = 0 -> raise Shed_by_server
           in
           if got <> payload then
             mismatches_c.(cell) <- mismatches_c.(cell) + 1;
           let now = Sim.now sim in
           Stats.Summary.add lat (float_of_int (now - t0));
           t_last := max !t_last now;
           last_activity := now;
           completed_c.(cell) <- completed_c.(cell) + 1;
           if cfg.think > 0. && seq < cfg.requests_per_conn - 1 then
             Sim.delay sim (int_of_float (Rng.exponential rng ~mean:cfg.think))
         done
       with
      | _ when Hashtbl.mem reaped conn ->
        (* Idle-reaped: the read deadline fired with the peer
           unreachable — morally a reset, whatever exception the close
           surfaced as. *)
        resets_c.(cell) <- resets_c.(cell) + 1
      | Shed_by_server -> shed_c.(cell) <- shed_c.(cell) + 1
      | Api.Connection_reset -> resets_c.(cell) <- resets_c.(cell) + 1
      | e ->
        note_error e;
        errors_c.(cell) <- errors_c.(cell) + 1);
      Hashtbl.remove live conn;
      (try s.Api.close () with _ -> ());
      decr open_now);
    incr finished;
    if debug_errors then
      Printf.eprintf "fleet: conn %d finished (%d/%d) at %.2fms\n%!" conn
        !finished cfg.conns
        (float_of_int (Sim.now sim) /. 1e6);
    Cond.broadcast finished_c
  in
  (* Scheduled chaos: kill pauses the cell's node (frames dropped both
     ways) past the end of the run. Cell ids are node ids by layout. *)
  (match (cfg.kill, fault) with
  | Some (cell, at), Some fault ->
    Fault.pause_node fault ~node:cell ~from:at ~until:(bound * 2)
  | _ -> ());
  (* Fabric creation binds listeners (simulator effects), so the whole
     setup runs inside a fiber. *)
  Sim.spawn sim ~name:"fleet-setup" (fun () ->
      let fab =
        Fabric.create sim api
          ~nodes:(List.init cfg.cells (fun i -> i))
          {
            Fabric.default_config with
            backlog = cfg.backlog;
            shards = cfg.shards;
            sched;
            vnodes = cfg.vnodes;
            ring_seed = cfg.seed;
            probe_node = Some cfg.cells;
            probe_period = cfg.probe_period;
            fail_threshold = cfg.fail_threshold;
          }
      in
      fab_ref := Some fab;
      (* Open-loop arrivals: exponential gaps at [rate] fleet-wide, each
         spawning an independent connection fiber — offered load does
         not slow down when the fabric does. *)
      Sim.spawn sim ~name:"fleet-arrivals" (fun () ->
          let arrival_rng = Rng.create ~seed:(cfg.seed lxor 0x0a51f00d) in
          let mean_gap = 1e9 /. cfg.rate in
          for conn = 0 to cfg.conns - 1 do
            Sim.delay sim
              (int_of_float (Rng.exponential arrival_rng ~mean:mean_gap));
            Sim.spawn sim ~name:(Printf.sprintf "fleet-conn-%d" conn)
              (client fab conn)
          done);
      (match cfg.drain with
      | Some (cell, at) ->
        Sim.spawn sim ~name:"fleet-drain" (fun () ->
            Sim.delay sim at;
            Fabric.drain fab cell)
      | None -> ());
      (* Reaper: enforce the read deadline. Generous enough to sit past
         the health-detection horizon, a failover herd's transient queue
         delay, and any configured think time, so only a truly
         partitioned peer trips it. *)
      let idle_limit = Time.s 5 + int_of_float (10. *. cfg.think) in
      Sim.spawn sim ~name:"fleet-reaper" (fun () ->
          while !finished < cfg.conns do
            Sim.delay sim (Time.ms 500);
            let now = Sim.now sim in
            let victims =
              Hashtbl.fold
                (fun conn (s, last, cell, phase) acc ->
                  if now - !last > idle_limit then (conn, s, cell, phase) :: acc
                  else acc)
                live []
            in
            List.iter
              (fun (conn, (s : Api.stream), cell, phase) ->
                if debug_errors then
                  Printf.eprintf
                    "fleet: reap conn %d cell %d stuck in %s at %.2fms\n%!"
                    conn cell !phase
                    (float_of_int now /. 1e6);
                Hashtbl.replace reaped conn ();
                Hashtbl.remove live conn;
                try s.Api.close () with _ -> ())
              victims
          done);
      Sim.spawn sim ~name:"fleet-janitor" (fun () ->
          Cond.wait_until finished_c (fun () -> !finished >= cfg.conns);
          if debug_errors then
            Printf.eprintf "fleet: janitor stopping fabric at %.2fms\n%!"
              (float_of_int (Sim.now sim) /. 1e6);
          Fabric.stop fab));
  let outcome = Cluster.run ~until:bound c in
  let fab =
    match !fab_ref with
    | Some fab -> fab
    | None -> failwith "Fleet.run: fabric never started"
  in
  (match on_metrics with
  | Some f -> f (Metrics.for_sim sim)
  | None -> ());
  let per_cell =
    Array.init cfg.cells (fun id ->
        let srv = Fabric.server fab id in
        {
          c_state = Fabric.state_name (Fabric.cell_state fab id);
          c_connects = connects.(id);
          c_completed = completed_c.(id);
          c_shed = shed_c.(id);
          c_refused = refused_c.(id);
          c_resets = resets_c.(id);
          c_errors = errors_c.(id);
          c_mismatches = mismatches_c.(id);
          c_server_requests = Server.requests srv;
          c_accepted = Server.accepted srv;
          c_server_shed = Server.shed srv;
          c_peak_inflight = Server.peak_inflight srv;
        })
  in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 per_cell in
  let established = sum (fun r -> r.c_connects) in
  let completed = sum (fun r -> r.c_completed) in
  let shed = sum (fun r -> r.c_shed) in
  let refused = sum (fun r -> r.c_refused) in
  let resets = sum (fun r -> r.c_resets) in
  let errors = sum (fun r -> r.c_errors) in
  let mismatches = sum (fun r -> r.c_mismatches) in
  let transitions =
    List.map
      (fun (e : Fabric.event) ->
        ( float_of_int e.Fabric.at /. 1e6,
          e.Fabric.cell,
          Fabric.state_name e.Fabric.to_state,
          e.Fabric.cause ))
      (Fabric.events fab)
  in
  let first_ms state =
    match
      List.find_opt (fun (_, _, s, _) -> s = state) transitions
    with
    | Some (ms, _, _, _) -> ms
    | None -> -1.
  in
  let elapsed = if !t_last > !t_first then !t_last - !t_first else 0 in
  let pct p =
    if Stats.Summary.count lat = 0 then 0.
    else Stats.Summary.percentile lat p /. 1e3
  in
  (* Failure budget: resets and terminal connect failures are legitimate
     only on a killed cell; everything else must be clean, and every
     established connection must account for all its requests. *)
  let chaos_ok =
    Array.for_all
      (fun id ->
        let r = per_cell.(id) in
        let killed = match cfg.kill with
          | Some (k, _) -> k = id
          | None -> false
        in
        killed || (r.c_resets = 0 && r.c_refused = 0 && r.c_errors = 0))
      (Array.init cfg.cells (fun i -> i))
  in
  let offered = established * cfg.requests_per_conn in
  let cut = resets + errors in
  {
    cells = cfg.cells;
    arrivals = cfg.conns;
    established;
    completed;
    shed;
    refused;
    resets;
    errors;
    mismatches;
    no_route = !no_route;
    remapped = !remapped;
    retried_ok = !retried_ok;
    peak_open = !peak_open;
    peak_cell_open =
      Array.fold_left (fun acc r -> max acc r.c_peak_inflight) 0 per_cell;
    healed_at_ms = first_ms "down";
    drained_at_ms = first_ms "drained";
    drain_open =
      (match cfg.drain with
      | Some (cell, _) -> Fabric.drain_open fab cell
      | None -> 0);
    elapsed_ms = float_of_int elapsed /. 1e6;
    rps =
      (if elapsed > 0 then
         float_of_int completed /. (float_of_int elapsed /. 1e9)
       else 0.);
    mean_us =
      (if Stats.Summary.count lat = 0 then 0.
       else Stats.Summary.mean lat /. 1e3);
    p50_us = pct 0.5;
    p95_us = pct 0.95;
    p99_us = pct 0.99;
    p999_us = pct 0.999;
    per_cell;
    transitions;
    intact =
      mismatches = 0 && !no_route = 0 && chaos_ok
      && completed + ((shed + cut) * cfg.requests_per_conn) >= offered;
    completed_run = outcome = `Quiescent;
  }

let print_report fmt (cfg : config) (r : report) =
  Format.fprintf fmt
    "%s fabric: cells=%d shards=%d conns=%d rate=%.0f/s requests=%d \
     size=%dB@."
    (Chaos.kind_name cfg.kind) cfg.cells cfg.shards cfg.conns cfg.rate
    cfg.requests_per_conn cfg.size;
  Format.fprintf fmt
    "  arrivals %d  established %d  completed %d  shed %d  refused %d  \
     resets %d  errors %d  mismatches %d@."
    r.arrivals r.established r.completed r.shed r.refused r.resets r.errors
    r.mismatches;
  Format.fprintf fmt
    "  no-route %d  remapped %d  retried-ok %d  peak-open %d  \
     peak-cell-open %d@."
    r.no_route r.remapped r.retried_ok r.peak_open r.peak_cell_open;
  if r.healed_at_ms >= 0. then
    Format.fprintf fmt "  ring healed at %.2f ms@." r.healed_at_ms;
  if r.drained_at_ms >= 0. then
    Format.fprintf fmt "  drain completed at %.2f ms (%d conns drained)@."
      r.drained_at_ms r.drain_open;
  Format.fprintf fmt "  elapsed %.2f ms  throughput %.0f req/s@." r.elapsed_ms
    r.rps;
  Format.fprintf fmt
    "  latency us: mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f  p99.9 %.1f@."
    r.mean_us r.p50_us r.p95_us r.p99_us r.p999_us;
  Array.iteri
    (fun id c ->
      Format.fprintf fmt
        "  cell %d [%s]: conns %d  done %d  shed %d/%d  refused %d  \
         resets %d  errors %d  served %d  peak %d@."
        id c.c_state c.c_connects c.c_completed c.c_shed c.c_server_shed
        c.c_refused c.c_resets c.c_errors c.c_server_requests
        c.c_peak_inflight)
    r.per_cell;
  List.iter
    (fun (ms, cell, state, cause) ->
      Format.fprintf fmt "  t=%.2fms cell %d -> %s (%s)@." ms cell state cause)
    r.transitions;
  Format.fprintf fmt "  verdict: %s@."
    (if not r.completed_run then "HUNG"
     else if not r.intact then "CORRUPT"
     else "ok")
