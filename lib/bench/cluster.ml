open Uls_engine
open Uls_host

type t = {
  sim : Sim.t;
  model : Cost_model.t;
  net : Uls_ether.Network.t;
  nodes : Node.t array;
  nics : Uls_nic.Tigon.t array;
  emps : Uls_emp.Endpoint.t option array;
  subs : Uls_substrate.Substrate.t option array;
  mutable tcp : Uls_tcp.Tcp_stack.t option;
}

let create ?(model = Cost_model.paper_testbed) ?tiebreak
    ?(match_engine = Uls_nic.Match_list.Linear) ?sched ~n () =
  let sim = Sim.create ?sched () in
  (* Must precede any spawn: NIC/node setup tasks scheduled below should
     already draw shuffled priorities under a perturbed schedule. *)
  (match tiebreak with Some tb -> Sim.set_tiebreak sim tb | None -> ());
  let net =
    Uls_ether.Network.create sim ~bits_per_ns:model.Cost_model.link_bits_per_ns
      ~propagation:model.Cost_model.link_propagation
      ~fwd_latency:model.Cost_model.switch_fwd_latency ~stations:n ()
  in
  let nodes = Array.init n (fun id -> Node.create sim model ~id) in
  let nics =
    Array.init n (fun id ->
        Uls_nic.Tigon.create ~match_engine sim model net ~node:id)
  in
  {
    sim;
    model;
    net;
    nodes;
    nics;
    emps = Array.make n None;
    subs = Array.make n None;
    tcp = None;
  }

let sim t = t.sim
let model t = t.model
let network t = t.net
let size t = Array.length t.nodes
let node t i = t.nodes.(i)
let nic t i = t.nics.(i)

let emp ?config t i =
  match t.emps.(i) with
  | Some e -> e
  | None ->
    let e = Uls_emp.Endpoint.create ?config t.nodes.(i) t.nics.(i) in
    t.emps.(i) <- Some e;
    e

let substrate ?opts t i =
  match t.subs.(i) with
  | Some s -> s
  | None ->
    let s = Uls_substrate.Substrate.create ?opts t.nodes.(i) (emp t i) in
    t.subs.(i) <- Some s;
    s

let substrate_api ?opts t =
  Uls_substrate.Substrate.api
    (Array.init (size t) (fun i -> substrate ?opts t i))

let tcp ?config t =
  match t.tcp with
  | Some stack -> stack
  | None ->
    let stack = Uls_tcp.Tcp_stack.create ?config ~nodes:t.nodes ~nics:t.nics () in
    t.tcp <- Some stack;
    stack

let tcp_api ?config t = Uls_tcp.Tcp_stack.api (tcp ?config t)

let instantiated arr =
  Array.to_list arr
  |> List.mapi (fun i o -> Option.map (fun v -> (i, v)) o)
  |> List.filter_map Fun.id

let endpoints t = instantiated t.emps
let substrates t = instantiated t.subs

let run ?until t = Sim.run ?until t.sim
