(** Micro-benchmark drivers (§7.1–7.2): ping-pong latency and
    unidirectional stream bandwidth over raw EMP, kernel TCP, or the
    substrate. Every run builds a fresh two-node cluster, so experiments
    are independent and deterministic. *)

open Uls_engine
open Uls_host

type stack_kind =
  | Emp_raw
  | Tcp of Uls_tcp.Config.t
  | Sub of Uls_substrate.Options.t

let kind_name = function
  | Emp_raw -> "EMP"
  | Tcp _ -> "TCP"
  | Sub o -> "sub-" ^ Uls_substrate.Options.mode_name o

(* Benchmarks double as the observability demo: with [observe] set they
   enable the cluster simulation's shared trace before any traffic and
   wrap the timed application loops in App-layer spans, so an exported
   trace shows the full stack from app call down to NIC work. *)
let observed_trace sim observe =
  let tr = Trace.for_sim sim in
  if observe then Trace.enable tr;
  tr

(* --- raw EMP --------------------------------------------------------- *)

let emp_ping_pong ~observe ~size ~iters ~warmup =
  let c = Cluster.create ~n:2 () in
  let e0 = Cluster.emp c 0 and e1 = Cluster.emp c 1 in
  let sim = Cluster.sim c in
  let tr = observed_trace sim observe in
  let len = max 1 size in
  let buf0 = Memory.alloc len and buf1 = Memory.alloc len in
  let latency = ref 0. in
  Sim.spawn sim ~name:"pong" (fun () ->
      for _ = 1 to iters + warmup do
        let r = Uls_emp.Endpoint.post_recv e1 ~src:0 ~tag:7 buf1 ~off:0 ~len:size in
        ignore (Uls_emp.Endpoint.wait_recv e1 r);
        let s = Uls_emp.Endpoint.post_send e1 ~dst:0 ~tag:8 buf1 ~off:0 ~len:size in
        Uls_emp.Endpoint.wait_send e1 s
      done);
  Sim.spawn sim ~name:"ping" (fun () ->
      let sum = ref 0 in
      for i = 1 to iters + warmup do
        let t0 = Sim.now sim in
        Trace.span tr ~layer:Trace.App ~node:0 ~seq:i "app.rtt" (fun () ->
            let r =
              Uls_emp.Endpoint.post_recv e0 ~src:1 ~tag:8 buf0 ~off:0 ~len:size
            in
            let s =
              Uls_emp.Endpoint.post_send e0 ~dst:1 ~tag:7 buf0 ~off:0 ~len:size
            in
            Uls_emp.Endpoint.wait_send e0 s;
            ignore (Uls_emp.Endpoint.wait_recv e0 r));
        if i > warmup then sum := !sum + (Sim.now sim - t0)
      done;
      latency := float_of_int !sum /. float_of_int iters /. 2.);
  ignore (Cluster.run c);
  (!latency /. 1_000., sim)

let emp_bandwidth ~observe ~msg ~total =
  let c = Cluster.create ~n:2 () in
  let e0 = Cluster.emp c 0 and e1 = Cluster.emp c 1 in
  let sim = Cluster.sim c in
  let tr = observed_trace sim observe in
  let count = max 1 (total / msg) in
  let buf0 = Memory.alloc msg and buf1 = Memory.alloc msg in
  let result = ref 0. in
  Sim.spawn sim ~name:"sink" (fun () ->
      let recvs =
        List.init count (fun _ ->
            Uls_emp.Endpoint.post_recv e1 ~src:0 ~tag:7 buf1 ~off:0 ~len:msg)
      in
      List.iter (fun r -> ignore (Uls_emp.Endpoint.wait_recv e1 r)) recvs);
  Sim.spawn sim ~name:"src" (fun () ->
      let t0 = Sim.now sim in
      Trace.span tr ~layer:Trace.App ~node:0 "app.stream"
        ~args:[ ("bytes", string_of_int (msg * count)) ]
        (fun () ->
          let window = 16 in
          let pending = Queue.create () in
          for _ = 1 to count do
            if Queue.length pending >= window then
              Uls_emp.Endpoint.wait_send e0 (Queue.pop pending);
            Queue.push
              (Uls_emp.Endpoint.post_send e0 ~dst:1 ~tag:7 buf0 ~off:0 ~len:msg)
              pending
          done;
          Queue.iter (Uls_emp.Endpoint.wait_send e0) pending);
      result := Time.mbps ~bytes_transferred:(msg * count) ~elapsed:(Sim.now sim - t0));
  ignore (Cluster.run c);
  (!result, sim)

(* --- stack-level ------------------------------------------------------ *)

let make_api kind c =
  match kind with
  | Emp_raw -> invalid_arg "make_api: raw EMP has no sockets API"
  | Tcp config -> Cluster.tcp_api ~config c
  | Sub opts -> Cluster.substrate_api ~opts c

let api_ping_pong ~observe ~kind ~size ~iters ~warmup =
  let c = Cluster.create ~n:2 () in
  let api = make_api kind c in
  let sim = Cluster.sim c in
  let tr = observed_trace sim observe in
  let latency = ref 0. in
  Sim.spawn sim ~name:"server" (fun () ->
      let l = api.Uls_api.Sockets_api.listen ~node:1 ~port:99 ~backlog:4 in
      let s, _ = l.accept () in
      (try
         for _ = 1 to iters + warmup do
           s.send (Uls_api.Sockets_api.recv_exact s size)
         done
       with Uls_api.Sockets_api.Connection_closed -> ());
      s.close ());
  Sim.spawn sim ~name:"client" (fun () ->
      Sim.delay sim (Time.us 50);
      let s = api.Uls_api.Sockets_api.connect ~node:0 { node = 1; port = 99 } in
      let payload = String.make size 'x' in
      let sum = ref 0 in
      for i = 1 to iters + warmup do
        let t0 = Sim.now sim in
        Trace.span tr ~layer:Trace.App ~node:0 ~seq:i "app.rtt" (fun () ->
            s.send payload;
            ignore (Uls_api.Sockets_api.recv_exact s size));
        if i > warmup then sum := !sum + (Sim.now sim - t0)
      done;
      latency := float_of_int !sum /. float_of_int iters /. 2.;
      s.close ());
  ignore (Cluster.run c);
  (!latency /. 1_000., sim)

let api_bandwidth ~observe ~kind ~msg ~total =
  let c = Cluster.create ~n:2 () in
  let api = make_api kind c in
  let sim = Cluster.sim c in
  let tr = observed_trace sim observe in
  let count = max 1 (total / msg) in
  let result = ref 0. in
  Sim.spawn sim ~name:"sink" (fun () ->
      let l = api.Uls_api.Sockets_api.listen ~node:1 ~port:99 ~backlog:4 in
      let s, _ = l.accept () in
      let goal = msg * count in
      let rec drain got =
        if got < goal then begin
          let chunk = s.recv 65536 in
          if chunk = "" then () else drain (got + String.length chunk)
        end
      in
      drain 0;
      s.send "k";
      s.close ());
  Sim.spawn sim ~name:"src" (fun () ->
      Sim.delay sim (Time.us 50);
      let s = api.Uls_api.Sockets_api.connect ~node:0 { node = 1; port = 99 } in
      let payload = String.make msg 'y' in
      let t0 = Sim.now sim in
      Trace.span tr ~layer:Trace.App ~node:0 "app.stream"
        ~args:[ ("bytes", string_of_int (msg * count)) ]
        (fun () ->
          for _ = 1 to count do
            s.send payload
          done;
          ignore (s.recv 1));
      result := Time.mbps ~bytes_transferred:(msg * count) ~elapsed:(Sim.now sim - t0);
      s.close ());
  ignore (Cluster.run c);
  (!result, sim)

(* --- entry points ----------------------------------------------------- *)

let ping_pong_run ~observe ~iters ~warmup ~kind ~size =
  match kind with
  | Emp_raw -> emp_ping_pong ~observe ~size ~iters ~warmup
  | Tcp _ | Sub _ -> api_ping_pong ~observe ~kind ~size ~iters ~warmup

let bandwidth_run ~observe ~total ~kind ~msg =
  match kind with
  | Emp_raw -> emp_bandwidth ~observe ~msg ~total
  | Tcp _ | Sub _ -> api_bandwidth ~observe ~kind ~msg ~total

let ping_pong ?(iters = 30) ?(warmup = 5) ~kind ~size () =
  fst (ping_pong_run ~observe:false ~iters ~warmup ~kind ~size)

let bandwidth ?(total = 16 * 1024 * 1024) ~kind ~msg () =
  fst (bandwidth_run ~observe:false ~total ~kind ~msg)

let instruments sim = (Trace.for_sim sim, Metrics.for_sim sim)

let ping_pong_observed ?(iters = 30) ?(warmup = 5) ~kind ~size () =
  let v, sim = ping_pong_run ~observe:true ~iters ~warmup ~kind ~size in
  let tr, m = instruments sim in
  (v, tr, m)

let bandwidth_observed ?(total = 16 * 1024 * 1024) ~kind ~msg () =
  let v, sim = bandwidth_run ~observe:true ~total ~kind ~msg in
  let tr, m = instruments sim in
  (v, tr, m)

(* --- collectives ------------------------------------------------------ *)

module Coll = Uls_collective.Group

(* Run one EMP group fiber per rank; [f] performs a single collective.
   A warm-up call absorbs group-formation skew, then [iters] calls are
   timed between per-rank timestamps: (max finish - min start) is the
   wall-clock span of the whole batch. *)
let coll_span ?(observe = false) ~nodes ~iters f =
  let c = Cluster.create ~n:nodes () in
  let eps = Array.init nodes (fun i -> Cluster.emp c i) in
  let sim = Cluster.sim c in
  ignore (observed_trace sim observe);
  let start = Array.make nodes max_int in
  let finish = Array.make nodes 0 in
  for r = 0 to nodes - 1 do
    Sim.spawn sim
      ~name:(Printf.sprintf "rank%d" r)
      (fun () ->
        let g = Uls_collective.Emp_group.create eps ~rank:r in
        f g ~rank:r;
        start.(r) <- Sim.now sim;
        for _ = 1 to iters do
          f g ~rank:r
        done;
        finish.(r) <- Sim.now sim)
  done;
  (match Cluster.run c with
  | `Quiescent -> ()
  | _ -> failwith "collective benchmark: cluster did not quiesce");
  (Array.fold_left max 0 finish - Array.fold_left min max_int start, sim)

let barrier_latency ?(iters = 10) ~alg ~nodes () =
  let span, _ = coll_span ~nodes ~iters (fun g ~rank:_ -> Coll.barrier ~alg g) in
  float_of_int span /. float_of_int iters /. 1_000.

let barrier_latency_observed ?(iters = 10) ~alg ~nodes () =
  let span, sim =
    coll_span ~observe:true ~nodes ~iters (fun g ~rank:_ -> Coll.barrier ~alg g)
  in
  let tr, m = instruments sim in
  (float_of_int span /. float_of_int iters /. 1_000., tr, m)

let coll_bandwidth_run ~observe ~iters ~op ~alg ~nodes ~size =
  (* float_sum combines 8-byte lanes, so keep allreduce payloads aligned. *)
  let size =
    match op with
    | `Allreduce -> max 8 ((size + 7) / 8 * 8)
    | `Bcast -> max 1 size
  in
  let payload = String.make size '\000' in
  let f g ~rank =
    match op with
    | `Bcast ->
      ignore (Coll.bcast ~alg g ~root:0 ~max:size (if rank = 0 then payload else ""))
    | `Allreduce ->
      ignore (Coll.allreduce ~alg g ~op:Coll.float_sum ~max:size payload)
  in
  let span, sim = coll_span ~observe ~nodes ~iters f in
  (Time.mbps ~bytes_transferred:(size * iters) ~elapsed:span, sim)

let coll_bandwidth ?(iters = 5) ~op ~alg ~nodes ~size () =
  fst (coll_bandwidth_run ~observe:false ~iters ~op ~alg ~nodes ~size)

let coll_bandwidth_observed ?(iters = 5) ~op ~alg ~nodes ~size () =
  let v, sim = coll_bandwidth_run ~observe:true ~iters ~op ~alg ~nodes ~size in
  let tr, m = instruments sim in
  (v, tr, m)

let connect_time ~kind () =
  (* Mean time for connect() alone, over a fresh cluster. *)
  let c = Cluster.create ~n:2 () in
  let api = make_api kind c in
  let sim = Cluster.sim c in
  let result = ref 0. in
  let iters = 10 in
  Sim.spawn sim ~name:"server" (fun () ->
      let l = api.Uls_api.Sockets_api.listen ~node:1 ~port:99 ~backlog:8 in
      for _ = 1 to iters do
        let s, _ = l.accept () in
        s.close ()
      done);
  Sim.spawn sim ~name:"client" (fun () ->
      Sim.delay sim (Time.us 50);
      let sum = ref 0 in
      for _ = 1 to iters do
        let t0 = Sim.now sim in
        let s = api.Uls_api.Sockets_api.connect ~node:0 { node = 1; port = 99 } in
        sum := !sum + (Sim.now sim - t0);
        s.close ();
        Sim.delay sim (Time.us 200)
      done;
      result := float_of_int !sum /. float_of_int iters);
  ignore (Cluster.run c);
  !result /. 1_000.
