(** Connection storm: ZMap-style scanners fire windowed connection
    probes at substrate targets, measuring connect-attempt rate. Each
    scanner is a raw-EMP probe engine with [window] slots; [batch]
    probes are submitted per doorbell through the endpoint tx ring, with
    reply descriptors posted through the fill ring. [batch = 1] is the
    per-call ablation. Targets run real substrate listeners with an
    accept-and-close drainer. Deterministic per config. *)

type config = {
  scanners : int;
  targets : int;
  window : int;  (** probe slots (concurrent probes) per scanner *)
  probes : int;  (** probes per scanner *)
  batch : int;  (** probes submitted per doorbell; 1 = per-call *)
  backlog : int;  (** per-target listen backlog *)
  busy_poll : bool;
  seed : int;
  match_engine : Uls_nic.Match_list.engine;
  event_sched : [ `Heap | `Wheel ];
}

val default : config
(** 2 scanners x 2000 probes (window 64, batch 32) against 2 targets. *)

type report = {
  attempts : int;  (** scanners x probes *)
  accepted : int;  (** replies carrying a server connection id *)
  refused : int;  (** explicit refusals (none expected here) *)
  server_accepts : int;  (** connections the targets actually built *)
  elapsed_ms : float;
  attempts_per_sec : float;
  mpps : float;  (** attempts_per_sec / 1e6 *)
  doorbells : int;  (** scanner-node [nic.doorbells], summed *)
  mailbox_fetches : int;  (** scanner-node [nic.mailbox_fetches], summed *)
  intact : bool;  (** every probe answered, none refused *)
  completed_run : bool;
}

val run : config -> report
(** One storm run on a fresh cluster. Deterministic: same config,
    byte-identical report. *)

val print_report : Format.formatter -> config -> report -> unit
