(** Fleet-scale load driver for the sharded serving fabric
    ({!Uls_fabric.Fabric}): 10^4–10^5 client connections arriving
    open-loop across many client hosts, balanced over K server cells,
    with optional mid-load cell kill or drain.

    Where {!Load} drives one server with a fixed fleet, [Fleet] drives
    the whole fabric with a {e Poisson connection-arrival process} at
    [rate] connections/s: each arrival routes its flow key on the
    consistent-hash ring, connects to the owning cell, performs
    [requests_per_conn] byte-verified echo exchanges (optional
    exponential think between them), and closes. Concurrency is
    emergent — [rate] x connection lifetime — which is how the run
    sustains 10^5 total connections while every cell's peak open stays
    far below the EMP match-walk collapse (EXPERIMENTS.md).

    Connect failures re-route and retry with backoff spanning the
    health checker's detection horizon, so flows arriving during a
    cell's blackout land on survivors once the ring heals. The report
    separates, per cell and fleet-wide:

    - [completed] verified exchanges vs [mismatches];
    - [shed] (server admission control), [refused] (terminal
      connect-level failure), [resets] (typed mid-stream
      {!Uls_api.Sockets_api.Connection_reset}), [errors] (anything
      else);
    - [remapped] — connections served away from their pristine-ring
      home cell, the minimal-disruption witness (~1/K after one kill);
    - ring-heal and drain-completion timestamps from the fabric's
      transition log.

    [intact] holds when bytes verified, routing never emptied, every
    established connection's requests are accounted for, and failures
    (resets / terminal refusals) appear only on a killed cell. Runs are
    deterministic for a given seed over both stacks. *)

type config = {
  kind : Chaos.kind;  (** which stack, and its options *)
  cells : int;  (** server cells (nodes 0..cells-1) *)
  shards : int;  (** SO_REUSEPORT shards per cell *)
  conns : int;  (** total connection arrivals over the run *)
  requests_per_conn : int;
  size : int;  (** echo payload bytes *)
  rate : float;  (** connection arrivals per second, fleet-wide *)
  think : float;  (** mean think ns between a conn's requests *)
  client_nodes : int;  (** arrivals spread over this many client hosts *)
  seed : int;
  loss : float;  (** uniform frame-loss probability *)
  max_inflight : int;  (** per-shard admission limit; 0 = unlimited *)
  backlog : int;
      (** per-cell listen backlog. Keep it modest: posted backlog
          descriptors sit in the NIC match list, so every RX frame pays
          O(backlog) walk cost on top of O(open conns) *)
  vnodes : int;  (** ring virtual nodes per cell *)
  probe_period : Uls_engine.Time.ns;
  fail_threshold : int;
  connect_retries : int;  (** re-route attempts per arrival *)
  kill : (int * Uls_engine.Time.ns) option;
      (** pause this cell's node (frames dropped both ways) from this
          virtual time until past the end of the run *)
  drain : (int * Uls_engine.Time.ns) option;
      (** gracefully drain this cell at this virtual time *)
  tiebreak : Uls_engine.Sim.tiebreak_spec option;
      (** simulator dispatch tie-break (race-detector hook) *)
  time_limit : Uls_engine.Time.ns option;
      (** virtual-time hang bound; default {!liveness_bound} *)
  match_engine : Uls_nic.Match_list.engine;
      (** NIC tag-match firmware on every node; [Linear] is the ablation
          reproducing the paper's O(descriptors) walk *)
  event_sched : [ `Heap | `Wheel ];
      (** simulator event-queue implementation; dispatch order is
          identical either way (see {!Uls_engine.Sim.create}) *)
}

val default : config
(** Substrate echo: 4 cells x 4 shards, 512 arrivals at 4000/s,
    2 x 256 B requests each, 8 client nodes, seed 42, no chaos. *)

type cell_report = {
  c_state : string;  (** "up" / "draining" / "drained" / "down" *)
  c_connects : int;  (** connections established to this cell *)
  c_completed : int;  (** verified exchanges *)
  c_shed : int;  (** closed by admission control before first response *)
  c_refused : int;  (** terminal connect failures attributed here *)
  c_resets : int;  (** typed mid-stream resets *)
  c_errors : int;  (** anything else *)
  c_mismatches : int;
  c_server_requests : int;  (** chunks echoed, server-side *)
  c_accepted : int;
  c_server_shed : int;  (** sheds counted by the cell's schedulers *)
  c_peak_inflight : int;  (** server-side peak open (shard-sum bound) *)
}

type report = {
  cells : int;
  arrivals : int;  (** connection arrivals attempted *)
  established : int;
  completed : int;
  shed : int;
  refused : int;
  resets : int;
  errors : int;
  mismatches : int;
  no_route : int;  (** arrivals that still found an empty ring after
                       exhausting every re-route retry *)
  remapped : int;  (** served away from the pristine-ring home cell *)
  retried_ok : int;  (** connects that succeeded after >= 1 failure *)
  peak_open : int;  (** fleet-wide client-side concurrent peak *)
  peak_cell_open : int;  (** max server-side cell peak — the < 4096 witness *)
  healed_at_ms : float;  (** first cell Down transition; -1 if none *)
  drained_at_ms : float;  (** drain completion; -1 if none *)
  drain_open : int;  (** connections open when draining began *)
  elapsed_ms : float;
  rps : float;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  p999_us : float;
  per_cell : cell_report array;
  transitions : (float * int * string * string) list;
      (** (ms, cell, state, cause), oldest first *)
  intact : bool;
  completed_run : bool;
}

val liveness_bound : conns:int -> Uls_engine.Time.ns
(** Default virtual-time hang bound, scaled with fleet size plus
    failover headroom. *)

val run : ?on_metrics:(Uls_engine.Metrics.t -> unit) -> config -> report
(** Build the cluster (cells, one probe node, client hosts), start the
    fabric, drive the arrival process, quiesce, and report. *)

val print_report : Format.formatter -> config -> report -> unit
