(** Wiring helper: the experimental testbed of §7 — [n] hosts with
    Tigon2 NICs on one gigabit switch, ready for protocol endpoints. *)

type t

val create :
  ?model:Uls_host.Cost_model.t ->
  ?tiebreak:Uls_engine.Sim.tiebreak_spec ->
  ?match_engine:Uls_nic.Match_list.engine ->
  ?sched:[ `Heap | `Wheel ] ->
  n:int ->
  unit ->
  t
(** [create ?model ?tiebreak ~n ()] builds the cluster. [tiebreak] sets
    the simulator's same-timestamp dispatch policy (see
    {!Uls_engine.Sim.set_tiebreak}) before any task is scheduled — the
    race detector's schedule-perturbation hook. Default FIFO.
    [match_engine] selects the NIC tag-match firmware on every node
    (default [Linear], the paper's measured generation). [sched] selects
    the event-queue implementation ({!Uls_engine.Sim.create}); dispatch
    order is identical either way, only queue cost differs. *)

val sim : t -> Uls_engine.Sim.t
val model : t -> Uls_host.Cost_model.t
val network : t -> Uls_ether.Network.t
val size : t -> int
val node : t -> int -> Uls_host.Node.t
val nic : t -> int -> Uls_nic.Tigon.t

val emp : ?config:Uls_emp.Endpoint.config -> t -> int -> Uls_emp.Endpoint.t
(** Create (and cache) the EMP endpoint of node [i]. The optional config
    applies only to the first call for that node. *)

val tcp : ?config:Uls_tcp.Config.t -> t -> Uls_tcp.Tcp_stack.t
(** Create (and cache) kernel TCP stacks on every node of the cluster.
    Mutually exclusive with {!emp} on the same node: both claim the
    NIC's receive path. The optional config applies to the first call. *)

val tcp_api : ?config:Uls_tcp.Config.t -> t -> Uls_api.Sockets_api.stack

val substrate : ?opts:Uls_substrate.Options.t -> t -> int -> Uls_substrate.Substrate.t
(** Create (and cache) the substrate instance of node [i] (implies its
    EMP endpoint). The optional opts apply to the first call per node. *)

val substrate_api : ?opts:Uls_substrate.Options.t -> t -> Uls_api.Sockets_api.stack
(** Substrate instances on every node, as a sockets stack. *)

val run : ?until:Uls_engine.Time.ns -> t -> [ `Quiescent | `Time_limit | `Stopped ]

val endpoints : t -> (int * Uls_emp.Endpoint.t) list
(** Already-instantiated EMP endpoints, as [(node, endpoint)] pairs in
    node order (the sanitizers walk them at end of run). *)

val substrates : t -> (int * Uls_substrate.Substrate.t) list
(** Already-instantiated substrate instances, in node order. *)
