(** One driver per table/figure of the paper's evaluation (§7), plus the
    ablation studies called out in DESIGN.md. Every driver returns a
    {!Table.t}; [all] runs the full evaluation. *)

val all : ?quick:bool -> unit -> Table.t list
(** Run the full evaluation. [quick] shrinks iteration counts and
    message-size sweeps for smoke runs. *)

val by_id : (string * (?quick:bool -> unit -> Table.t)) list
(** Individual drivers by their figure/ablation id (["fig11"],
    ["abl-uq"], ...). *)
