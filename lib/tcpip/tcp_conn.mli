(** One TCP connection: state machine, socket buffers, sender fiber with
    go-back-N retransmission, delayed acks, window updates, persist
    probes, and the blocking app-side operations with their syscall /
    copy / scheduler-wakeup costs. *)

type state =
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed_st

val state_name : state -> string

type t

type env = {
  node : Uls_host.Node.t;
  cpu : Uls_engine.Resource.t;
  config : Config.t;
  ip_send : dst:int -> Segment.tcp_segment -> unit;
  unregister : t -> unit;  (** drop from the kernel's connection table *)
  notify : unit -> unit;  (** select() activity hook *)
  h_retransmits : Uls_engine.Stats.Counter.t;
      (** node-wide metric handles, resolved once by the kernel *)
  h_aborts : Uls_engine.Stats.Counter.t;
  h_syscalls : Uls_engine.Stats.Counter.t;
}

val connect : env -> local:Uls_api.Sockets_api.addr -> remote:Uls_api.Sockets_api.addr -> t
(** Client side: create in SYN_SENT and transmit the SYN. *)

val accept_syn :
  env ->
  local:Uls_api.Sockets_api.addr ->
  remote:Uls_api.Sockets_api.addr ->
  Segment.tcp_segment ->
  t
(** Server side: triggered by an incoming SYN; replies SYN|ACK. *)

val resend_syn : t -> unit
(** No-op outside SYN_SENT (the connect() caller drives SYN
    retransmission). *)

val local : t -> Uls_api.Sockets_api.addr
val remote : t -> Uls_api.Sockets_api.addr
val state : t -> state
val alive : t -> bool
val retransmit_count : t -> int

val state_cond : t -> Uls_engine.Cond.t
(** Broadcast on every state change (connect's handshake wait parks on
    it). *)

val set_on_established : t -> (t -> unit) -> unit
(** One-shot callback fired when the connection reaches ESTABLISHED (the
    kernel's accept path queues the connection from it). *)

val input : t -> Segment.tcp_segment -> unit
(** Process an incoming segment (runs in the interrupt dispatcher
    fiber). *)

val add_watcher : t -> (unit -> unit) -> unit
(** Per-connection readiness watcher (the event engine's O(ready)
    notification path, vs the node-wide activity broadcast). *)

(** {2 Blocking app-side operations} *)

val app_send : t -> string -> unit
val app_recv : t -> int -> string
val app_readable : t -> bool
val app_close : t -> unit
val wait_established : t -> unit
