(** Tunables of the kernel stack. [default] models the stock Linux
    2.4.18 setup of the paper (16 KB socket buffers); §7.2 tunes the
    buffers upward, which experiments do via [with_buffers]. *)

type t = {
  sndbuf : int;
  rcvbuf : int;
  min_rto : Uls_engine.Time.ns;
  delack_timeout : Uls_engine.Time.ns;
  ack_every : int;  (** ack after this many full segments *)
  persist_interval : Uls_engine.Time.ns;  (** zero-window probe period *)
  time_wait : Uls_engine.Time.ns;
  congestion_control : bool;  (** slow start + congestion avoidance *)
  initial_cwnd_segments : int;  (** Linux 2.4: 2 *)
  rx_coalesce : Uls_engine.Time.ns;  (** NIC interrupt coalescing delay *)
  rx_coalesce_frames : int;  (** ... or after this many frames *)
  accept_backlog_default : int;
  dead_rto_abort : Uls_engine.Time.ns;
      (** unbroken retransmission silence with zero cumulative-ack
          progress before the connection aborts with a typed reset (the
          tcp_retries2 analogue; 0 = retransmit forever) *)
  synack_retries : int;
      (** SYN|ACK retransmissions (exponential backoff) before dropping a
          half-open connection (tcp_synack_retries) *)
}

let default =
  {
    sndbuf = 16_384;
    rcvbuf = 16_384;
    min_rto = Uls_engine.Time.ms 1;
    delack_timeout = Uls_engine.Time.us 200;
    ack_every = 2;
    persist_interval = Uls_engine.Time.ms 5;
    time_wait = Uls_engine.Time.ms 1;
    congestion_control = true;
    initial_cwnd_segments = 2;
    rx_coalesce = Uls_engine.Time.us 60;
    rx_coalesce_frames = 8;
    accept_backlog_default = 8;
    (* 2 s of unbroken silence is ~10 cap-level RTOs — far past the
       queueing delay a saturated-but-alive peer produces, but finite,
       so a dead peer yields Connection_reset, not a hung run. The
       SYN|ACK budget backs off 1 ms -> 200 ms, ~1 s total. *)
    dead_rto_abort = Uls_engine.Time.s 2;
    synack_retries = 12;
  }

let with_buffers t bytes = { t with sndbuf = bytes; rcvbuf = bytes }
