(** Per-node kernel of the baseline stack: TCP/UDP demultiplexing,
    listener backlog queues, ephemeral ports, RST generation, and the
    blocking socket system calls. One instance per simulated host;
    everything it does is charged to the node's kernel-CPU resource. *)

type t
type listener
type udp_sock

val create : Uls_host.Node.t -> Uls_nic.Tigon.t -> config:Config.t -> t

val node_id : t -> int
val config : t -> Config.t

val cpu : t -> Uls_engine.Resource.t
(** The kernel execution resource: interrupts, protocol processing and
    copies all serialise here (its busy time is the host-CPU cost the
    paper's NIC-driven design avoids). *)

val ip : t -> Ip.t
val metrics : t -> Uls_engine.Metrics.t
val activity : t -> Uls_engine.Cond.t
(** Broadcast on any socket readiness change; select() blocks on it. *)

val rsts_sent : t -> int

(** {1 TCP socket calls} (blocking; call from fibers) *)

val listen : t -> port:int -> backlog:int -> listener
(** @raise Uls_api.Sockets_api.Bind_in_use *)

val accept : t -> listener -> Tcp_conn.t
val acceptable : listener -> bool

val listener_pending : listener -> int
(** Established connections queued for [accept] (backlog occupancy). *)

val add_accept_watcher : listener -> (unit -> unit) -> unit
(** Register an accept-readiness watcher: fired when a connection
    reaches the accept queue and when the listener closes. *)

val close_listener : t -> listener -> unit

val connect : t -> Uls_api.Sockets_api.addr -> Tcp_conn.t
(** Three-way handshake with SYN retransmission.
    @raise Uls_api.Sockets_api.Connection_refused *)

(** {1 UDP socket calls} *)

val udp_bind : t -> port:int -> udp_sock
val udp_sendto : t -> udp_sock -> dst:Uls_api.Sockets_api.addr -> string -> unit
val udp_recvfrom : t -> udp_sock -> Uls_api.Sockets_api.addr * string
(** Blocking; datagram boundaries preserved. *)

val udp_readable : udp_sock -> bool
val udp_close : t -> udp_sock -> unit
val udp_drops : udp_sock -> int
(** Datagrams dropped for receive-queue overflow. *)
