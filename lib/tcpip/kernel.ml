(** Per-node kernel: TCP/UDP demultiplexing, listener backlog queues,
    ephemeral ports, RST generation, UDP sockets, and the blocking
    socket system calls used by the {!Tcp_stack} API. *)

open Uls_engine
open Uls_host

type addr = Uls_api.Sockets_api.addr

type listener = {
  l_port : int;
  l_backlog : int;
  accept_q : Tcp_conn.t Queue.t;
  mutable l_pending : int; (* embryonic (SYN_RCVD) connections *)
  accept_c : Cond.t;
  mutable l_watchers : (unit -> unit) list;
      (* accept-readiness watchers: fired when a connection reaches the
         accept queue and when the listener closes (event-engine path) *)
  mutable l_closed : bool;
}

type udp_sock = {
  u_port : int;
  u_queue : (addr * string) Queue.t;
  mutable u_queued_bytes : int;
  u_capacity : int;
  u_cond : Cond.t;
  mutable u_closed : bool;
  mutable u_drops : int;
}

type handles = {
  h_syscalls : Stats.Counter.t;
  h_tx_segments : Stats.Counter.t;
  h_rsts_sent : Stats.Counter.t;
  h_syn_backlog_drops : Stats.Counter.t;
  h_rx_segments : Stats.Counter.t;
  h_udp_rx_datagrams : Stats.Counter.t;
  h_tcp_retransmits : Stats.Counter.t;
  h_tcp_aborts : Stats.Counter.t;
}

type t = {
  node : Node.t;
  cpu : Resource.t;
  config : Config.t;
  ip : Ip.t;
  metrics : Metrics.t;
  mh : handles;
  trace : Trace.t;
  conns : (int * int * int, Tcp_conn.t) Hashtbl.t;
  listeners : (int, listener) Hashtbl.t;
  udp_socks : (int, udp_sock) Hashtbl.t;
  activity : Cond.t;
  mutable next_port : int;
  mutable rsts_sent : int;
}

let sim t = Node.sim t.node
let model t = Node.model t.node
let node_id t = Node.id t.node
let activity t = t.activity
let config t = t.config
let rsts_sent t = t.rsts_sent
let cpu t = t.cpu
let ip t = t.ip
let metrics t = t.metrics

let conn_key ~local_port ~remote:(r : addr) = (local_port, r.node, r.port)

(* Every blocking socket call crosses into the kernel; count the
   crossings per node — the per-byte contrast with the user-level
   substrate is the paper's central claim. *)
let syscall t name =
  Stats.Counter.incr t.mh.h_syscalls;
  Trace.instant t.trace ~layer:Trace.Tcpip ~node:(node_id t) "os.syscall"
    ~args:[ ("call", name) ];
  Os.syscall (Node.os t.node)

let env_of t =
  {
    Tcp_conn.node = t.node;
    cpu = t.cpu;
    config = t.config;
    ip_send =
      (fun ~dst seg ->
        Stats.Counter.incr t.mh.h_tx_segments;
        Ip.send t.ip ~dst (Segment.Tcp seg));
    unregister =
      (fun c ->
        let key =
          conn_key ~local_port:(Tcp_conn.local c).port ~remote:(Tcp_conn.remote c)
        in
        (match Hashtbl.find_opt t.conns key with
        | Some c' when c' == c -> Hashtbl.remove t.conns key
        | _ -> ()));
    notify = (fun () -> Cond.broadcast t.activity);
    h_retransmits = t.mh.h_tcp_retransmits;
    h_aborts = t.mh.h_tcp_aborts;
    h_syscalls = t.mh.h_syscalls;
  }

let send_rst t ~dst (seg : Segment.tcp_segment) =
  t.rsts_sent <- t.rsts_sent + 1;
  Stats.Counter.incr t.mh.h_rsts_sent;
  let rst =
    {
      Segment.src_port = seg.Segment.dst_port;
      dst_port = seg.Segment.src_port;
      seq = seg.Segment.ack_no;
      ack_no = seg.Segment.seq + 1;
      flags = Segment.flag ~rst:true ~ack:true ();
      wnd = 0;
      data = "";
    }
  in
  Ip.send t.ip ~dst (Segment.Tcp rst)

let handle_syn t ~src (seg : Segment.tcp_segment) =
  match Hashtbl.find_opt t.listeners seg.Segment.dst_port with
  | Some l
    when (not l.l_closed) && Queue.length l.accept_q + l.l_pending < l.l_backlog
    ->
    let local = { Uls_api.Sockets_api.node = node_id t; port = seg.Segment.dst_port } in
    let remote = { Uls_api.Sockets_api.node = src; port = seg.Segment.src_port } in
    let c = Tcp_conn.accept_syn (env_of t) ~local ~remote seg in
    l.l_pending <- l.l_pending + 1;
    Tcp_conn.set_on_established c (fun c ->
        l.l_pending <- l.l_pending - 1;
        if l.l_closed then Tcp_conn.app_close c
        else begin
          Queue.push c l.accept_q;
          Cond.signal l.accept_c;
          Cond.broadcast t.activity;
          List.iter (fun f -> f ()) l.l_watchers
        end);
    Hashtbl.replace t.conns
      (conn_key ~local_port:seg.Segment.dst_port ~remote)
      c
  | Some _ ->
    (* Backlog full: drop the SYN; the client retries. The counter is
       the accept-path pressure signal the --metrics dump surfaces. *)
    Stats.Counter.incr t.mh.h_syn_backlog_drops
  | None -> send_rst t ~dst:src seg

let tcp_input t ~src (seg : Segment.tcp_segment) =
  Stats.Counter.incr t.mh.h_rx_segments;
  Trace.instant t.trace ~layer:Trace.Tcpip ~node:(node_id t)
    ~seq:seg.Segment.seq "tcp.rx_segment"
    ~args:[ ("src", string_of_int src);
            ("bytes", string_of_int (String.length seg.Segment.data)) ];
  Resource.use t.cpu (model t).Cost_model.tcp_rx_per_segment;
  let key = (seg.Segment.dst_port, src, seg.Segment.src_port) in
  match Hashtbl.find_opt t.conns key with
  | Some c -> Tcp_conn.input c seg
  | None ->
    if seg.Segment.flags.Segment.syn && not seg.Segment.flags.Segment.ack then
      handle_syn t ~src seg
    else if not seg.Segment.flags.Segment.rst then send_rst t ~dst:src seg

let udp_input t ~src (d : Segment.udp_datagram) =
  Stats.Counter.incr t.mh.h_udp_rx_datagrams;
  Resource.use t.cpu (model t).Cost_model.tcp_rx_per_segment;
  match Hashtbl.find_opt t.udp_socks d.Segment.u_dst_port with
  | None -> () (* no ICMP in this model *)
  | Some s ->
    let len = String.length d.Segment.u_data in
    if s.u_closed || s.u_queued_bytes + len > s.u_capacity then
      s.u_drops <- s.u_drops + 1
    else begin
      let from = { Uls_api.Sockets_api.node = src; port = d.Segment.u_src_port } in
      Queue.push (from, d.Segment.u_data) s.u_queue;
      s.u_queued_bytes <- s.u_queued_bytes + len;
      Cond.signal s.u_cond;
      Cond.broadcast t.activity
    end

let create node nic ~config =
  let cpu = Resource.create (Node.sim node) ~name:(Printf.sprintf "kcpu-%d" (Node.id node)) in
  let metrics = Metrics.for_sim (Node.sim node) in
  let counter name = Metrics.counter metrics ~node:(Node.id node) name in
  let ip = Ip.create node nic ~cpu ~config in
  let t =
    {
      node;
      cpu;
      config;
      ip;
      metrics;
      mh =
        {
          h_syscalls = counter "os.syscalls";
          h_tx_segments = counter "tcp.tx_segments";
          h_rsts_sent = counter "tcp.rsts_sent";
          h_syn_backlog_drops = counter "tcp.syn_backlog_drops";
          h_rx_segments = counter "tcp.rx_segments";
          h_udp_rx_datagrams = counter "udp.rx_datagrams";
          h_tcp_retransmits = counter "tcp.retransmits";
          h_tcp_aborts = counter "tcp.aborts";
        };
      trace = Trace.for_sim (Node.sim node);
      conns = Hashtbl.create 64;
      listeners = Hashtbl.create 16;
      udp_socks = Hashtbl.create 16;
      activity =
        Cond.create
          ~label:(Printf.sprintf "tcp:%d activity" (Node.id node))
          (Node.sim node);
      next_port = 32_768;
      rsts_sent = 0;
    }
  in
  Ip.set_handler ip (fun ~src payload ->
      match payload with
      | Segment.Tcp seg -> tcp_input t ~src seg
      | Segment.Udp d -> udp_input t ~src d);
  t

let alloc_port t =
  t.next_port <- t.next_port + 1;
  t.next_port

(* --- TCP socket calls ------------------------------------------------ *)

exception Refused = Uls_api.Sockets_api.Connection_refused

let listen t ~port ~backlog =
  syscall t "listen";
  if Hashtbl.mem t.listeners port then
    raise (Uls_api.Sockets_api.Bind_in_use { node = node_id t; port });
  let l =
    {
      l_port = port;
      l_backlog = max 1 backlog;
      accept_q = Queue.create ();
      l_pending = 0;
      accept_c =
        Cond.create
          ~label:(Printf.sprintf "tcp:%d accept:%d" (node_id t) port)
          (sim t);
      l_watchers = [];
      l_closed = false;
    }
  in
  Hashtbl.replace t.listeners port l;
  l

let accept t l =
  syscall t "accept";
  let rec wait () =
    match Queue.take_opt l.accept_q with
    | Some c -> c
    | None ->
      if l.l_closed then raise Uls_api.Sockets_api.Connection_closed;
      Cond.wait l.accept_c;
      Sim.delay (sim t) (model t).Cost_model.sched_wakeup;
      wait ()
  in
  let c = wait () in
  Resource.use t.cpu (model t).Cost_model.tcp_connect_kernel;
  c

let acceptable l = not (Queue.is_empty l.accept_q)
let listener_pending l = Queue.length l.accept_q
let add_accept_watcher l f = l.l_watchers <- f :: l.l_watchers

let close_listener t l =
  if not l.l_closed then begin
    l.l_closed <- true;
    Hashtbl.remove t.listeners l.l_port;
    Cond.broadcast l.accept_c;
    (* Anything already accepted-but-unclaimed gets closed. *)
    Queue.iter Tcp_conn.app_close l.accept_q;
    Queue.clear l.accept_q;
    List.iter (fun f -> f ()) l.l_watchers
  end

let connect t (remote : addr) =
  syscall t "connect";
  Resource.use t.cpu (model t).Cost_model.tcp_connect_kernel;
  let local = { Uls_api.Sockets_api.node = node_id t; port = alloc_port t } in
  let c = Tcp_conn.connect (env_of t) ~local ~remote in
  Hashtbl.replace t.conns (conn_key ~local_port:local.port ~remote) c;
  let rec await tries =
    match Tcp_conn.state c with
    | Tcp_conn.Established | Tcp_conn.Close_wait -> ()
    | Tcp_conn.Closed_st -> raise (Refused remote)
    | _ ->
      if tries > 6 then raise (Refused remote);
      (match Cond.wait_timeout (Tcp_conn.state_cond c) t.config.Config.min_rto with
      | `Ok -> ()
      | `Timeout -> Tcp_conn.resend_syn c);
      await (tries + 1)
  in
  await 0;
  Sim.delay (sim t) (model t).Cost_model.sched_wakeup;
  c

(* --- UDP socket calls ------------------------------------------------ *)

let udp_bind t ~port =
  syscall t "bind";
  if Hashtbl.mem t.udp_socks port then
    raise (Uls_api.Sockets_api.Bind_in_use { node = node_id t; port });
  let s =
    {
      u_port = port;
      u_queue = Queue.create ();
      u_queued_bytes = 0;
      u_capacity = t.config.Config.rcvbuf;
      u_cond =
        Cond.create
          ~label:(Printf.sprintf "udp:%d port:%d" (node_id t) port)
          (sim t);
      u_closed = false;
      u_drops = 0;
    }
  in
  Hashtbl.replace t.udp_socks port s;
  s

let udp_sendto t s ~(dst : addr) data =
  syscall t "sendto";
  let m = model t in
  Resource.use t.cpu (Cost_model.copy_cost m (String.length data));
  Resource.use t.cpu m.Cost_model.tcp_tx_per_segment;
  Ip.send t.ip ~dst:dst.node
    (Segment.Udp
       { u_src_port = s.u_port; u_dst_port = dst.port; u_data = data })

let udp_recvfrom t s =
  syscall t "recvfrom";
  let m = model t in
  let rec wait () =
    match Queue.take_opt s.u_queue with
    | Some (from, data) ->
      s.u_queued_bytes <- s.u_queued_bytes - String.length data;
      Resource.use t.cpu (Cost_model.copy_cost m (String.length data));
      (from, data)
    | None ->
      if s.u_closed then raise Uls_api.Sockets_api.Connection_closed;
      Cond.wait s.u_cond;
      Sim.delay (sim t) m.Cost_model.sched_wakeup;
      wait ()
  in
  wait ()

let udp_readable s = not (Queue.is_empty s.u_queue)

let udp_close t s =
  if not s.u_closed then begin
    s.u_closed <- true;
    Hashtbl.remove t.udp_socks s.u_port;
    Cond.broadcast s.u_cond
  end

let udp_drops s = s.u_drops
