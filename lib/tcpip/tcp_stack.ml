(** Assemble the kernel TCP implementation of the stack-agnostic sockets
    API ({!Uls_api.Sockets_api.stack}) over one kernel per node. *)

open Uls_engine

type t = {
  kernels : Kernel.t array;
}

let create ?(config = Config.default) ~nodes ~nics () =
  if Array.length nodes <> Array.length nics then
    invalid_arg "Tcp_stack.create: nodes/nics mismatch";
  let kernels =
    Array.map2 (fun node nic -> Kernel.create node nic ~config) nodes nics
  in
  { kernels }

let kernel t i = t.kernels.(i)

let stream_of_conn (c : Tcp_conn.t) : Uls_api.Sockets_api.stream =
  {
    send = (fun data -> Tcp_conn.app_send c data);
    recv = (fun n -> Tcp_conn.app_recv c n);
    close = (fun () -> Tcp_conn.app_close c);
    readable = (fun () -> Tcp_conn.app_readable c);
    watch = (fun f -> Tcp_conn.add_watcher c f);
    peer = (fun () -> Tcp_conn.remote c);
    local = (fun () -> Tcp_conn.local c);
  }

let api t : Uls_api.Sockets_api.stack =
  let kernel i = t.kernels.(i) in
  let listen ~node ~port ~backlog =
    let k = kernel node in
    let l = Kernel.listen k ~port ~backlog in
    {
      Uls_api.Sockets_api.accept =
        (fun () ->
          let c = Kernel.accept k l in
          (stream_of_conn c, Tcp_conn.remote c));
      try_accept =
        (fun () ->
          (* The kernel queues only fully established connections, so a
             non-empty queue makes the blocking accept immediate. *)
          if Kernel.acceptable l then
            let c = Kernel.accept k l in
            Some (stream_of_conn c, Tcp_conn.remote c)
          else None);
      acceptable = (fun () -> Kernel.acceptable l);
      watch_accept = (fun f -> Kernel.add_accept_watcher l f);
      pending = (fun () -> Kernel.listener_pending l);
      close_listener = (fun () -> Kernel.close_listener k l);
    }
  in
  let connect ~node addr = stream_of_conn (Kernel.connect (kernel node) addr) in
  let select ~node streams =
    let k = kernel node in
    let m = Kernel.metrics k in
    let h_scans = Metrics.counter m ~node "api.select_scans" in
    let h_scanned = Metrics.counter m ~node "api.select_streams_scanned" in
    let ready () =
      (* Same O(registered) scan counters as the substrate select, so
         evq-vs-select comparisons work on either stack. *)
      Stats.Counter.incr h_scans;
      Stats.Counter.add h_scanned (List.length streams);
      List.filter (fun (s : Uls_api.Sockets_api.stream) -> s.readable ()) streams
    in
    let rec wait () =
      match ready () with
      | _ :: _ as r -> r
      | [] ->
        Cond.wait (Kernel.activity k);
        wait ()
    in
    wait ()
  in
  { Uls_api.Sockets_api.stack_name = "kernel-tcp"; listen; connect; select }
