(** Tunables of the kernel stack. [default] models the stock Linux
    2.4.18 setup of the paper (16 KB socket buffers); §7.2 tunes the
    buffers upward, which experiments do via [with_buffers]. *)

type t = {
  sndbuf : int;
  rcvbuf : int;
  min_rto : Uls_engine.Time.ns;
  delack_timeout : Uls_engine.Time.ns;
  ack_every : int;  (** ack after this many full segments *)
  persist_interval : Uls_engine.Time.ns;  (** zero-window probe period *)
  time_wait : Uls_engine.Time.ns;
  congestion_control : bool;  (** slow start + congestion avoidance *)
  initial_cwnd_segments : int;  (** Linux 2.4: 2 *)
  rx_coalesce : Uls_engine.Time.ns;  (** NIC interrupt coalescing delay *)
  rx_coalesce_frames : int;  (** ... or after this many frames *)
  accept_backlog_default : int;
  dead_rto_abort : Uls_engine.Time.ns;
      (** unbroken retransmission silence — zero cumulative-ack progress —
          tolerated before the connection aborts with a typed reset (the
          tcp_retries2 analogue; 0 = retransmit forever). A duration, not
          a rewind count: with exponential RTO growing from [min_rto], a
          count would make the budget collapse to a few milliseconds and
          abort connections that are merely queued behind a busy peer. *)
  synack_retries : int;
      (** SYN|ACK retransmissions (with exponential backoff) before a
          half-open connection is quietly dropped (tcp_synack_retries) *)
}

val default : t

val with_buffers : t -> int -> t
(** Same configuration with [sndbuf] and [rcvbuf] set to the given size. *)
