open Uls_engine
open Uls_host
open Uls_nic

type partial = {
  mutable total : int;
  mutable got : int;
  mutable payload : Segment.ip_payload option;
  born : Time.ns;
}

type handles = {
  h_tx_datagrams : Stats.Counter.t;
  h_tx_frames : Stats.Counter.t;
  h_rx_datagrams : Stats.Counter.t;
  h_interrupts : Stats.Counter.t;
  h_frames_per_interrupt : Stats.Summary.t;
}

type t = {
  node : Node.t;
  nic : Tigon.t;
  cpu : Resource.t;
  config : Config.t;
  metrics : Metrics.t;
  mh : handles;
  trace : Trace.t;
  mutable handler : src:int -> Segment.ip_payload -> unit;
  pending : Uls_ether.Frame.t Queue.t;
  arrival : Cond.t;
  reasm : (int * int, partial) Hashtbl.t;
  mutable next_ip_id : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable interrupts : int;
  mutable rx_frames : int;
}

let model t = Node.model t.node
let sim t = Node.sim t.node

let set_handler t h = t.handler <- h
let datagrams_delivered t = t.delivered
let datagrams_dropped t = t.dropped
let interrupts_taken t = t.interrupts
let frames_received t = t.rx_frames

(* --- transmit ------------------------------------------------------- *)

let nic_tx t frame =
  let m = model t in
  Sim.spawn (sim t) ~name:"nic-tx" (fun () ->
      Tigon.dma t.nic ~bytes:frame.Uls_ether.Frame.payload_len;
      Tigon.tx_work t.nic m.Cost_model.nic_tx_per_frame;
      Tigon.transmit t.nic frame)

let send t ~dst payload =
  let m = model t in
  let me = Node.id t.node in
  let total = Segment.payload_bytes payload in
  t.next_ip_id <- t.next_ip_id + 1;
  let id = t.next_ip_id in
  let per = Segment.max_fragment_payload in
  Stats.Counter.incr t.mh.h_tx_datagrams;
  Trace.instant t.trace ~layer:Trace.Tcpip ~node:me ~seq:id "ip.tx"
    ~args:[ ("bytes", string_of_int total); ("dst", string_of_int dst) ];
  let rec emit off first =
    let remaining = total - off in
    if remaining > 0 || first then begin
      let carried = min per remaining in
      Stats.Counter.incr t.mh.h_tx_frames;
      Resource.use t.cpu m.Cost_model.driver_tx_per_frame;
      Resource.use t.cpu m.Cost_model.pio_write;
      let fp : Uls_ether.Frame.payload =
        if first then Segment.Ip_first { ip_id = id; total_bytes = total; carried; payload }
        else Segment.Ip_cont { ip_id = id; carried }
      in
      let frame =
        Uls_ether.Frame.make ~src:me ~dst
          ~payload_len:(Segment.ip_header_bytes + carried)
          fp
      in
      nic_tx t frame;
      emit (off + carried) false
    end
  in
  emit 0 true

(* --- receive -------------------------------------------------------- *)

let evict_stale t =
  (* Bound reassembly state: drop partials older than 100 ms. *)
  if Hashtbl.length t.reasm > 64 then begin
    let now = Sim.now (sim t) in
    let stale =
      Hashtbl.fold
        (fun k p acc -> if now - p.born > Time.ms 100 then k :: acc else acc)
        t.reasm []
    in
    List.iter
      (fun k ->
        Hashtbl.remove t.reasm k;
        t.dropped <- t.dropped + 1)
      stale
  end

let deliver t ~src payload =
  t.delivered <- t.delivered + 1;
  Stats.Counter.incr t.mh.h_rx_datagrams;
  Trace.instant t.trace ~layer:Trace.Tcpip ~node:(Node.id t.node) "ip.rx"
    ~args:[ ("src", string_of_int src) ];
  t.handler ~src payload

let ip_input t (frame : Uls_ether.Frame.t) =
  let src = frame.Uls_ether.Frame.src in
  let feed ~ip_id ~carried ~total ~payload =
    let key = (src, ip_id) in
    let p =
      match Hashtbl.find_opt t.reasm key with
      | Some p -> p
      | None ->
        let p = { total; got = 0; payload = None; born = Sim.now (sim t) } in
        Hashtbl.replace t.reasm key p;
        evict_stale t;
        p
    in
    p.got <- p.got + carried;
    if total < p.total then p.total <- total;
    (match payload with Some pl -> p.payload <- Some pl | None -> ());
    if p.got >= p.total then begin
      Hashtbl.remove t.reasm key;
      match p.payload with
      | Some pl -> deliver t ~src pl
      | None -> t.dropped <- t.dropped + 1
    end
  in
  match frame.Uls_ether.Frame.payload with
  | Segment.Ip_first { ip_id; total_bytes; carried; payload } ->
    if carried >= total_bytes then deliver t ~src payload
    else feed ~ip_id ~carried ~total:total_bytes ~payload:(Some payload)
  | Segment.Ip_cont { ip_id; carried } ->
    feed ~ip_id ~carried ~total:max_int ~payload:None
  | _ -> ()

(* One interrupt serves every frame accumulated during the coalescing
   window; upper-layer processing runs in this fiber, serialising all
   kernel receive work on the node's CPU. *)
let dispatcher t () =
  let m = model t in
  let rec loop () =
    if Queue.is_empty t.pending then begin
      Cond.wait t.arrival;
      loop ()
    end
    else begin
      let deadline = Sim.now (sim t) + t.config.Config.rx_coalesce in
      let rec coalesce () =
        let remaining = deadline - Sim.now (sim t) in
        if
          Queue.length t.pending < t.config.Config.rx_coalesce_frames
          && remaining > 0
        then
          match Cond.wait_timeout t.arrival remaining with
          | `Ok -> coalesce ()
          | `Timeout -> ()
      in
      coalesce ();
      t.interrupts <- t.interrupts + 1;
      Stats.Counter.incr t.mh.h_interrupts;
      Stats.Summary.add t.mh.h_frames_per_interrupt
        (float_of_int (Queue.length t.pending));
      Resource.use t.cpu m.Cost_model.interrupt;
      let sp =
        Trace.span_begin t.trace ~layer:Trace.Tcpip ~node:(Node.id t.node)
          "ip.rx_batch"
          ~args:[ ("frames", string_of_int (Queue.length t.pending)) ]
      in
      let rec drain () =
        match Queue.take_opt t.pending with
        | None -> ()
        | Some frame ->
          Resource.use t.cpu m.Cost_model.driver_rx_per_frame;
          ip_input t frame;
          drain ()
      in
      drain ();
      Trace.span_end t.trace ~layer:Trace.Tcpip ~node:(Node.id t.node)
        "ip.rx_batch" sp;
      loop ()
    end
  in
  loop ()

let create node nic ~cpu ~config =
  let metrics = Metrics.for_sim (Node.sim node) in
  let counter name = Metrics.counter metrics ~node:(Node.id node) name in
  let histogram name = Metrics.histogram metrics ~node:(Node.id node) name in
  let t =
    {
      node;
      nic;
      cpu;
      config;
      metrics;
      mh =
        {
          h_tx_datagrams = counter "ip.tx_datagrams";
          h_tx_frames = counter "ip.tx_frames";
          h_rx_datagrams = counter "ip.rx_datagrams";
          h_interrupts = counter "ip.interrupts";
          h_frames_per_interrupt = histogram "ip.frames_per_interrupt";
        };
      trace = Trace.for_sim (Node.sim node);
      handler = (fun ~src:_ _ -> ());
      pending = Queue.create ();
      arrival =
        Cond.create
          ~label:(Printf.sprintf "ip:%d arrival" (Node.id node))
          (Node.sim node);
      reasm = Hashtbl.create 16;
      next_ip_id = 0;
      delivered = 0;
      dropped = 0;
      interrupts = 0;
      rx_frames = 0;
    }
  in
  let m = Node.model node in
  Tigon.set_firmware_rx nic (fun frame ->
      Sim.spawn (Node.sim node) ~name:"nic-rx" (fun () ->
          Tigon.rx_work nic m.Cost_model.nic_rx_per_frame;
          Tigon.dma nic ~bytes:frame.Uls_ether.Frame.payload_len;
          t.rx_frames <- t.rx_frames + 1;
          Queue.push frame t.pending;
          Cond.signal t.arrival));
  Sim.spawn (Node.sim node) ~name:"ip-dispatch" ~daemon:true (dispatcher t);
  t
