(** Wire types of the kernel stack: IP fragments carrying typed TCP/UDP
    payloads. Sizes are modelled byte-accurately ([bytes] functions);
    contents stay typed so no serialisation code is needed. *)

type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
}

val flag : ?syn:bool -> ?ack:bool -> ?fin:bool -> ?rst:bool -> unit -> flags

type tcp_segment = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack_no : int;
  flags : flags;
  wnd : int;  (** advertised receive window, bytes *)
  data : string;
}

type udp_datagram = {
  u_src_port : int;
  u_dst_port : int;
  u_data : string;
}

type ip_payload =
  | Tcp of tcp_segment
  | Udp of udp_datagram

val tcp_header_bytes : int
val udp_header_bytes : int
val ip_header_bytes : int

val payload_bytes : ip_payload -> int
(** L3 payload size including the L4 header. *)

(** IP fragments: the first fragment carries the typed payload; later
    fragments only account for bytes. Reassembly completes when all
    bytes of an (src, id) datagram have arrived — so the loss of any
    fragment drops the datagram, as real IP reassembly does. *)
type Uls_ether.Frame.payload +=
  | Ip_first of {
      ip_id : int;
      total_bytes : int;  (** L3 payload bytes of the whole datagram *)
      carried : int;  (** payload bytes in this fragment *)
      payload : ip_payload;
    }
  | Ip_cont of {
      ip_id : int;
      carried : int;
    }

val max_fragment_payload : int

val mss : int
(** TCP MSS: a full segment exactly fills one Ethernet frame. *)

val pp_flags : Format.formatter -> flags -> unit
val pp_tcp : Format.formatter -> tcp_segment -> unit
