(** One TCP connection: state machine, socket buffers, sender fiber with
    go-back-N retransmission, delayed acks, window updates, persist
    probes, and the blocking app-side operations with their syscall /
    copy / scheduler-wakeup costs. *)

open Uls_engine
open Uls_host

type state =
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed_st

let state_name = function
  | Syn_sent -> "SYN_SENT"
  | Syn_rcvd -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Closing -> "CLOSING"
  | Last_ack -> "LAST_ACK"
  | Time_wait -> "TIME_WAIT"
  | Closed_st -> "CLOSED"

type t = {
  env : env;
  local : Uls_api.Sockets_api.addr;
  remote : Uls_api.Sockets_api.addr;
  mutable state : state;
  (* send side; stream byte k has sequence number k+1 (SYN = seq 0) *)
  snd_buf : Bytebuf.t;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_max : int;  (* highest sequence ever sent (go-back-N rewinds
                             move snd_nxt below it; acks up to snd_max
                             remain valid) *)
  mutable snd_wnd : int;
  mutable fin_pending : bool;
  mutable fin_sent : bool;
  mutable dup_acks : int;
  mutable cwnd : int;  (* congestion window, bytes *)
  mutable ssthresh : int;
  mutable rto : Time.ns;
  mutable retransmits : int;
  mutable dead_since : Time.ns;
      (* start of the current run of silent RTOs with no cumulative-ack
         progress (-1 = none); config.dead_rto_abort of unbroken silence
         aborts the connection *)
  mutable synack_tries : int;
  mutable aborted : bool;
      (* retransmission gave up (the ETIMEDOUT analogue): app-side ops
         raise Connection_reset instead of reporting a clean close *)
  (* receive side *)
  rcv_buf : Bytebuf.t;
  mutable rcv_nxt : int;
  mutable ooo : (int * string) list; (* seq-sorted out-of-order data *)
  mutable fin_rcvd : bool;
  mutable rst_rcvd : bool;
  mutable pending_ack : int;
  mutable delack_armed : bool;
  mutable last_advertised : int;
  (* app *)
  mutable app_closed : bool;
  mutable on_established : (t -> unit) option;
  mutable watchers : (unit -> unit) list;
  (* per-connection readiness watchers (the event engine's O(ready)
     notification path, vs the node-wide activity broadcast) *)
  readable_c : Cond.t;
  writable_c : Cond.t;
  state_c : Cond.t;
  send_c : Cond.t;
}

and env = {
  node : Node.t;
  cpu : Resource.t;
  config : Config.t;
  ip_send : dst:int -> Segment.tcp_segment -> unit;
  unregister : t -> unit;
  notify : unit -> unit;  (* select() activity hook *)
  (* node-wide metric handles, resolved once by the kernel *)
  h_retransmits : Stats.Counter.t;
  h_aborts : Stats.Counter.t;
  h_syscalls : Stats.Counter.t;
}

let sim t = Node.sim t.env.node
let model t = Node.model t.env.node
let local t = t.local
let remote t = t.remote
let state t = t.state

let alive t = t.state <> Closed_st && not t.rst_rcvd
let in_flight t = t.snd_nxt - t.snd_una
let unsent_bytes t = Bytebuf.available t.snd_buf - in_flight t

(* Effective send window: peer's advertised window clamped by the
   congestion window (slow start / congestion avoidance). *)
let send_window t =
  if t.env.config.Config.congestion_control then min t.snd_wnd t.cwnd
  else t.snd_wnd

let on_ack_progress t ~data_bytes =
  if t.env.config.Config.congestion_control && data_bytes > 0 then begin
    if t.cwnd < t.ssthresh then
      (* slow start: exponential per-ack growth *)
      t.cwnd <- t.cwnd + min data_bytes Segment.mss
    else
      (* congestion avoidance: ~one MSS per window *)
      t.cwnd <- t.cwnd + max 1 (Segment.mss * Segment.mss / t.cwnd)
  end

let on_loss t =
  if t.env.config.Config.congestion_control then begin
    t.ssthresh <- max (2 * Segment.mss) (in_flight t / 2);
    t.cwnd <- max (2 * Segment.mss) t.ssthresh
  end

let add_watcher t f = t.watchers <- f :: t.watchers
let fire_watchers t = List.iter (fun f -> f ()) t.watchers

let wake_all t =
  Cond.broadcast t.readable_c;
  Cond.broadcast t.writable_c;
  Cond.broadcast t.state_c;
  Cond.broadcast t.send_c;
  fire_watchers t

let set_state t s =
  if t.state <> s then begin
    t.state <- s;
    if s = Closed_st then t.env.unregister t;
    Cond.broadcast t.state_c;
    Cond.broadcast t.send_c;
    if s = Closed_st then wake_all t;
    if s = Established then begin
      match t.on_established with
      | Some f ->
        t.on_established <- None;
        f t
      | None -> ()
    end;
    t.env.notify ()
  end

let enter_time_wait t =
  set_state t Time_wait;
  Sim.at (sim t)
    (Sim.now (sim t) + t.env.config.Config.time_wait)
    (fun () -> if t.state = Time_wait then set_state t Closed_st)

(* --- segment emission ----------------------------------------------- *)

(* Linux 2.4 reserves part of the receive buffer for sk_buff overhead
   (tcp_adv_win_scale); the advertised window is 3/4 of free space. This
   is a first-order term in why small socket buffers cap bandwidth. *)
let advertised_window t = Bytebuf.free_space t.rcv_buf * 3 / 4

let emit t ?(data = "") ~flags ~seq () =
  let m = model t in
  let tx_cost =
    (* Pure acks are far cheaper than data-bearing output processing. *)
    if data = "" && not (flags.Segment.syn || flags.Segment.fin) then
      m.Cost_model.tcp_tx_per_segment / 2
    else m.Cost_model.tcp_tx_per_segment
  in
  Resource.use t.env.cpu tx_cost;
  let wnd = advertised_window t in
  t.last_advertised <- wnd;
  t.pending_ack <- 0;
  let seg =
    {
      Segment.src_port = t.local.port;
      dst_port = t.remote.port;
      seq;
      ack_no = t.rcv_nxt;
      flags;
      wnd;
      data;
    }
  in
  t.env.ip_send ~dst:t.remote.node seg

let send_pure_ack t = emit t ~flags:(Segment.flag ~ack:true ()) ~seq:t.snd_nxt ()

let maybe_arm_delack t =
  if not t.delack_armed then begin
    t.delack_armed <- true;
    Sim.at (sim t)
      (Sim.now (sim t) + t.env.config.Config.delack_timeout)
      (fun () ->
        t.delack_armed <- false;
        if t.pending_ack > 0 && alive t then
          Sim.spawn (sim t) ~name:"tcp-delack" (fun () -> send_pure_ack t))
  end

(* --- sender fiber ---------------------------------------------------- *)

let seg_flags_for_data t =
  (* FIN is carried separately; data segments always ack. *)
  ignore t;
  Segment.flag ~ack:true ()

let send_data_segment t ~probe =
  let cfg = t.env.config in
  let offset = in_flight t in
  let window_room = max 0 (send_window t - offset) in
  let len =
    if probe then min 1 (unsent_bytes t)
    else min (min Segment.mss (unsent_bytes t)) window_room
  in
  if len > 0 then begin
    let data = Bytebuf.peek t.snd_buf ~off:offset ~len in
    let seq = t.snd_nxt in
    t.snd_nxt <- t.snd_nxt + len;
    t.snd_max <- max t.snd_max t.snd_nxt;
    emit t ~data ~flags:(seg_flags_for_data t) ~seq ();
    ignore cfg;
    true
  end
  else false

let send_fin_segment t =
  let seq = t.snd_nxt in
  t.snd_nxt <- t.snd_nxt + 1;
  t.snd_max <- max t.snd_max t.snd_nxt;
  t.fin_sent <- true;
  (match t.state with
  | Established -> set_state t Fin_wait_1
  | Close_wait -> set_state t Last_ack
  | _ -> ());
  emit t ~flags:(Segment.flag ~ack:true ~fin:true ()) ~seq ()

let can_send_data t =
  (match t.state with
  | Established | Close_wait | Fin_wait_1 | Closing | Last_ack -> true
  | Syn_sent | Syn_rcvd | Fin_wait_2 | Time_wait | Closed_st -> false)
  && unsent_bytes t > 0
  && in_flight t < send_window t

let can_send_fin t =
  t.fin_pending && not t.fin_sent && unsent_bytes t = 0
  && match t.state with Established | Close_wait -> true | _ -> false

let rewind t =
  if in_flight t > 0 then begin
    t.retransmits <- t.retransmits + 1;
    Stats.Counter.incr t.env.h_retransmits;
    on_loss t;
    (* Go-back-N: resend from the cumulative ack point. FIN, if it was
       sent, will be re-emitted after the data. *)
    if t.fin_sent && t.snd_nxt = t.snd_una + Bytebuf.available t.snd_buf + 1
    then t.fin_sent <- false;
    t.snd_nxt <- t.snd_una;
    t.rto <- min (2 * t.rto) (Time.ms 200)
  end

(* Retransmission gave up: drop all state and surface a typed reset to
   the application. Real TCP sends nothing here (the path is presumed
   dead); peers discover via their own timers. *)
let abort t =
  if not t.aborted then begin
    t.aborted <- true;
    Stats.Counter.incr t.env.h_aborts;
    set_state t Closed_st;
    wake_all t
  end

let sender_fiber t () =
  let cfg = t.env.config in
  let rec loop () =
    if t.state = Closed_st || t.rst_rcvd then ()
    else if t.state = Syn_sent then begin
      (* SYN retransmission is driven by the connect() caller. *)
      Cond.wait t.send_c;
      loop ()
    end
    else if t.state = Syn_rcvd then begin
      (* Retransmit SYN|ACK until the handshake completes — or the
         tcp_synack_retries budget runs out and the half-open connection
         is quietly dropped (the peer may be long gone). *)
      (match Cond.wait_timeout t.send_c t.rto with
      | `Ok -> ()
      | `Timeout ->
        if t.state = Syn_rcvd then begin
          t.synack_tries <- t.synack_tries + 1;
          if cfg.Config.synack_retries > 0
             && t.synack_tries > cfg.Config.synack_retries
          then set_state t Closed_st
          else begin
            (* Back off like the data path: at a flat min_rto the whole
               budget is a few ms, and a handshake ACK queued behind a
               request burst is enough to orphan the client. *)
            t.rto <- min (2 * t.rto) (Time.ms 200);
            emit t ~flags:(Segment.flag ~syn:true ~ack:true ()) ~seq:0 ()
          end
        end);
      loop ()
    end
    else if can_send_data t then begin
      ignore (send_data_segment t ~probe:false);
      loop ()
    end
    else if can_send_fin t then begin
      send_fin_segment t;
      loop ()
    end
    else if in_flight t > 0 then begin
      (* Await ack progress; on a silent RTO, go-back-N. *)
      let una = t.snd_una in
      (match Cond.wait_timeout t.send_c t.rto with
      | `Ok -> ()
      | `Timeout ->
        if t.snd_una = una && in_flight t > 0 then begin
          let now = Sim.now (sim t) in
          if t.dead_since < 0 then t.dead_since <- now;
          if cfg.Config.dead_rto_abort > 0
             && now - t.dead_since >= cfg.Config.dead_rto_abort
          then abort t
          else rewind t
        end);
      loop ()
    end
    else if unsent_bytes t > 0 && t.snd_wnd = 0 then begin
      (* Zero-window persist probe. *)
      match Cond.wait_timeout t.send_c cfg.Config.persist_interval with
      | `Ok -> loop ()
      | `Timeout ->
        if t.snd_wnd = 0 && unsent_bytes t > 0 then
          ignore (send_data_segment t ~probe:true);
        loop ()
    end
    else begin
      Cond.wait t.send_c;
      loop ()
    end
  in
  loop ()

(* --- input processing (runs in the interrupt dispatcher fiber) ------- *)

let ooo_insert t seq data =
  if List.length t.ooo < 64 then begin
    let entry = (seq, data) in
    t.ooo <-
      List.sort (fun (a, _) (b, _) -> compare a b) (entry :: t.ooo)
  end

let rec drain_ooo t =
  match t.ooo with
  | (seq, data) :: rest when seq <= t.rcv_nxt ->
    t.ooo <- rest;
    let skip = t.rcv_nxt - seq in
    if skip < String.length data then begin
      let fresh = String.sub data skip (String.length data - skip) in
      let accepted = Bytebuf.write t.rcv_buf fresh ~off:0 ~len:(String.length fresh) in
      t.rcv_nxt <- t.rcv_nxt + accepted
    end;
    drain_ooo t
  | _ -> ()

let process_ack t (seg : Segment.tcp_segment) =
  if seg.flags.Segment.ack then begin
    let new_una = seg.ack_no in
    if new_una > t.snd_una && new_una <= t.snd_max then begin
      let delta = new_una - t.snd_una in
      let data_bytes = min delta (Bytebuf.available t.snd_buf) in
      Bytebuf.drop t.snd_buf data_bytes;
      t.snd_una <- new_una;
      (* An ack can cover data sent before a rewind: skip retransmitting
         what the receiver already has. *)
      if t.snd_nxt < new_una then t.snd_nxt <- new_una;
      t.dup_acks <- 0;
      t.dead_since <- -1;
      t.rto <- t.env.config.Config.min_rto;
      on_ack_progress t ~data_bytes;
      Cond.broadcast t.writable_c;
      Cond.broadcast t.send_c;
      (* FIN acknowledged? *)
      if t.fin_sent && t.snd_una = t.snd_nxt then begin
        match t.state with
        | Fin_wait_1 -> set_state t Fin_wait_2
        | Closing -> enter_time_wait t
        | Last_ack -> set_state t Closed_st
        | _ -> ()
      end
    end
    else if
      new_una = t.snd_una && in_flight t > 0 && String.length seg.data = 0
    then begin
      t.dup_acks <- t.dup_acks + 1;
      if t.dup_acks = 3 then begin
        (* Fast retransmit. *)
        t.dup_acks <- 0;
        rewind t;
        t.rto <- t.env.config.Config.min_rto;
        Cond.broadcast t.send_c
      end
    end;
    (* Window update (also on pure acks). *)
    if seg.wnd <> t.snd_wnd then begin
      t.snd_wnd <- seg.wnd;
      Cond.broadcast t.send_c
    end
  end

let process_data t (seg : Segment.tcp_segment) =
  let len = String.length seg.data in
  if len > 0 then begin
    if seg.seq = t.rcv_nxt then begin
      let accepted = Bytebuf.write t.rcv_buf seg.data ~off:0 ~len in
      t.rcv_nxt <- t.rcv_nxt + accepted;
      drain_ooo t;
      t.pending_ack <- t.pending_ack + 1;
      Cond.broadcast t.readable_c;
      t.env.notify ();
      fire_watchers t;
      if t.pending_ack >= t.env.config.Config.ack_every then send_pure_ack t
      else maybe_arm_delack t
    end
    else if seg.seq > t.rcv_nxt then begin
      ooo_insert t seg.seq seg.data;
      (* Duplicate ack to trigger fast retransmit. *)
      send_pure_ack t
    end
    else
      (* Entirely old segment: re-ack. *)
      send_pure_ack t
  end

let process_fin t (seg : Segment.tcp_segment) =
  if seg.flags.Segment.fin then begin
    let fin_seq = seg.seq + String.length seg.data in
    if fin_seq = t.rcv_nxt then begin
      t.rcv_nxt <- t.rcv_nxt + 1;
      t.fin_rcvd <- true;
      Cond.broadcast t.readable_c;
      t.env.notify ();
      fire_watchers t;
      (match t.state with
      | Established -> set_state t Close_wait
      | Fin_wait_1 ->
        if t.fin_sent && t.snd_una = t.snd_nxt then enter_time_wait t
        else set_state t Closing
      | Fin_wait_2 -> enter_time_wait t
      | _ -> ());
      send_pure_ack t
    end
    else if fin_seq < t.rcv_nxt then send_pure_ack t
  end

let input t (seg : Segment.tcp_segment) =
  if seg.flags.Segment.rst then begin
    t.rst_rcvd <- true;
    set_state t Closed_st;
    wake_all t
  end
  else begin
    (match t.state with
    | Syn_sent ->
      if seg.flags.Segment.syn && seg.flags.Segment.ack && seg.ack_no = 1
      then begin
        t.rcv_nxt <- seg.seq + 1;
        t.snd_una <- 1;
        set_state t Established;
        send_pure_ack t
      end
    | Syn_rcvd ->
      if seg.flags.Segment.syn then
        (* Retransmitted SYN: our SYN|ACK was lost; resend. *)
        emit t ~flags:(Segment.flag ~syn:true ~ack:true ()) ~seq:0 ()
      else if seg.flags.Segment.ack && seg.ack_no >= 1 then begin
        t.snd_una <- max t.snd_una 1;
        set_state t Established;
        process_ack t seg;
        process_data t seg;
        process_fin t seg
      end
    | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack
      ->
      if seg.flags.Segment.syn then ()
      else begin
        process_ack t seg;
        process_data t seg;
        process_fin t seg
      end
    | Time_wait ->
      (* Peer retransmitted its FIN: re-ack it. *)
      if seg.flags.Segment.fin then send_pure_ack t
    | Closed_st -> ());
    ()
  end

(* --- app-side operations -------------------------------------------- *)

exception App_closed = Uls_api.Sockets_api.Connection_closed

let syscall t =
  Stats.Counter.incr t.env.h_syscalls;
  Os.syscall (Node.os t.env.node)

let charge_wakeup t = Sim.delay (sim t) (model t).Cost_model.sched_wakeup

let wait_established t =
  Cond.wait_until t.state_c (fun () ->
      match t.state with
      | Established | Close_wait | Fin_wait_1 | Fin_wait_2 | Closing
      | Last_ack | Time_wait | Closed_st ->
        true
      | Syn_sent | Syn_rcvd -> false)

let app_send t data =
  syscall t;
  if t.app_closed then raise App_closed;
  let len = String.length data in
  let m = model t in
  let rec push off =
    if off < len then begin
      if t.aborted then raise Uls_api.Sockets_api.Connection_reset;
      if t.rst_rcvd || t.state = Closed_st || t.app_closed then raise App_closed;
      let space = Bytebuf.free_space t.snd_buf in
      if space = 0 then begin
        Cond.wait t.writable_c;
        charge_wakeup t;
        push off
      end
      else begin
        let n = Bytebuf.write t.snd_buf data ~off ~len:(len - off) in
        (* user -> kernel copy *)
        Resource.use t.env.cpu (Cost_model.copy_cost m n);
        Cond.broadcast t.send_c;
        push (off + n)
      end
    end
  in
  Trace.span
    (Trace.for_sim (sim t))
    ~layer:Trace.Tcpip ~node:(Node.id t.env.node) "tcp.send"
    ~args:[ ("len", string_of_int len) ]
    (fun () -> push 0)

let maybe_window_update t =
  let wnd = advertised_window t in
  let opened = wnd - t.last_advertised in
  if
    opened >= 2 * Segment.mss
    || (opened > 0 && wnd >= Bytebuf.capacity t.rcv_buf / 2 && t.last_advertised < 2 * Segment.mss)
  then send_pure_ack t

let app_recv t n =
  syscall t;
  let m = model t in
  let rec pull () =
    let avail = Bytebuf.available t.rcv_buf in
    if avail > 0 then begin
      let s = Bytebuf.read t.rcv_buf (min n avail) in
      (* kernel -> user copy *)
      Resource.use t.env.cpu (Cost_model.copy_cost m (String.length s));
      maybe_window_update t;
      s
    end
    else if t.aborted then raise Uls_api.Sockets_api.Connection_reset
    else if t.fin_rcvd || t.rst_rcvd || t.state = Closed_st then ""
    else begin
      Cond.wait t.readable_c;
      charge_wakeup t;
      pull ()
    end
  in
  if n <= 0 then ""
  else
    Trace.span
      (Trace.for_sim (sim t))
      ~layer:Trace.Tcpip ~node:(Node.id t.env.node) "tcp.recv" pull

let app_readable t =
  Bytebuf.available t.rcv_buf > 0 || t.fin_rcvd || t.rst_rcvd
  || t.state = Closed_st

let app_close t =
  if not t.app_closed then begin
    t.app_closed <- true;
    syscall t;
    match t.state with
    | Syn_sent | Syn_rcvd ->
      set_state t Closed_st
    | Established | Close_wait ->
      t.fin_pending <- true;
      Cond.broadcast t.send_c
    | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait | Closed_st ->
      ()
  end

(* --- construction ---------------------------------------------------- *)

let make env ~local ~remote ~state =
  let cfg = env.config in
  let t =
    {
      env;
      local;
      remote;
      state;
      snd_buf = Bytebuf.create ~capacity:cfg.Config.sndbuf;
      snd_una = 0;
      snd_nxt = 1;
      snd_max = 1;
      snd_wnd = cfg.Config.rcvbuf;
      fin_pending = false;
      fin_sent = false;
      dup_acks = 0;
      cwnd = cfg.Config.initial_cwnd_segments * Segment.mss;
      ssthresh = max_int / 4;
      rto = cfg.Config.min_rto;
      retransmits = 0;
      dead_since = -1;
      synack_tries = 0;
      aborted = false;
      rcv_buf = Bytebuf.create ~capacity:cfg.Config.rcvbuf;
      rcv_nxt = 0;
      ooo = [];
      fin_rcvd = false;
      rst_rcvd = false;
      pending_ack = 0;
      delack_armed = false;
      last_advertised = cfg.Config.rcvbuf;
      app_closed = false;
      on_established = None;
      watchers = [];
      readable_c = Cond.create ~label:"tcp:readable" (Node.sim env.node);
      writable_c = Cond.create ~label:"tcp:writable" (Node.sim env.node);
      state_c = Cond.create ~label:"tcp:state" (Node.sim env.node);
      send_c = Cond.create ~label:"tcp:send" (Node.sim env.node);
    }
  in
  Sim.spawn (Node.sim env.node) ~name:"tcp-sender" ~daemon:true (sender_fiber t);
  t

(* Client side: create in SYN_SENT and transmit the SYN. *)
let connect env ~local ~remote =
  let t = make env ~local ~remote ~state:Syn_sent in
  emit t ~flags:(Segment.flag ~syn:true ()) ~seq:0 ();
  t

(* Server side: triggered by an incoming SYN. *)
let accept_syn env ~local ~remote (syn : Segment.tcp_segment) =
  let t = make env ~local ~remote ~state:Syn_rcvd in
  t.rcv_nxt <- syn.Segment.seq + 1;
  t.snd_wnd <- syn.Segment.wnd;
  emit t ~flags:(Segment.flag ~syn:true ~ack:true ()) ~seq:0 ();
  t

let resend_syn t =
  if t.state = Syn_sent then emit t ~flags:(Segment.flag ~syn:true ()) ~seq:0 ()

let retransmit_count t = t.retransmits
let set_on_established t f = t.on_established <- Some f
let state_cond t = t.state_c
