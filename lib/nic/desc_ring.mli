(** Per-connection descriptor ring: a growable circular FIFO holding the
    posted descriptors of one match key, so the hashed match engine pays
    O(1) per lookup instead of walking every connection's descriptors.
    Descriptors removed through the global match list are tombstoned
    ([dead] answers true) and reaped lazily when they reach the head, so
    unposting never needs to find this ring. *)

type 'a t

val create : dead:('a -> bool) -> unit -> 'a t
val length : 'a t -> int
(** Raw occupancy, dead entries not yet reaped included. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the tail (post order = FIFO match order). *)

val peek : 'a t -> 'a option
(** The oldest live entry, reaping dead heads first. *)

val pop : 'a t -> 'a option
(** Remove and return the oldest live entry. *)

val clear : 'a t -> unit
