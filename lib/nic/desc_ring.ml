type 'a t = {
  mutable buf : 'a array;
  mutable head : int;
  mutable len : int;
  dead : 'a -> bool;
}

let create ~dead () = { buf = [||]; head = 0; len = 0; dead }

let length r = r.len
let is_empty r = r.len = 0

let cap r = Array.length r.buf

let grow r x =
  let old_cap = cap r in
  let new_cap = if old_cap = 0 then 8 else 2 * old_cap in
  let buf' = Array.make new_cap x in
  for i = 0 to r.len - 1 do
    buf'.(i) <- r.buf.((r.head + i) mod old_cap)
  done;
  r.buf <- buf';
  r.head <- 0

let push r x =
  if r.len = cap r then grow r x;
  r.buf.((r.head + r.len) mod cap r) <- x;
  r.len <- r.len + 1

(* Dead entries (descriptors unposted through the global list) are
   reaped lazily when they surface at the head; the slot is overwritten
   with the next element (or itself at the tail) so the ring never
   retains a reaped descriptor. *)
let reap r =
  while r.len > 0 && r.dead r.buf.(r.head) do
    let next = (r.head + 1) mod cap r in
    r.buf.(r.head) <- r.buf.(if r.len = 1 then r.head else next);
    r.head <- next;
    r.len <- r.len - 1
  done

let peek r =
  reap r;
  if r.len = 0 then None else Some r.buf.(r.head)

let pop r =
  reap r;
  if r.len = 0 then None
  else begin
    let x = r.buf.(r.head) in
    let next = (r.head + 1) mod cap r in
    r.buf.(r.head) <- r.buf.(if r.len = 1 then r.head else next);
    r.head <- next;
    r.len <- r.len - 1;
    Some x
  end

let clear r =
  r.buf <- [||];
  r.head <- 0;
  r.len <- 0
