(** Alteon Tigon2 NIC model. The chip's two embedded MIPS cores are
    modelled as a send-side and a receive-side FIFO resource (the EMP
    firmware dedicates one core to each direction); the DMA engine /
    PCI bus is a third shared resource. Firmware behaviour (EMP or the
    standard Acenic-style driver interface) is layered on top by the
    protocol libraries via {!set_firmware_rx} and the work/DMA hooks. *)

type t

val create :
  ?match_engine:Match_list.engine ->
  Uls_engine.Sim.t ->
  Uls_host.Cost_model.t ->
  Uls_ether.Network.t ->
  node:int ->
  t
(** [match_engine] selects the firmware tag-match generation (default
    [Linear], the measured original). [Hashed] also enables the second
    embedded receive core: frames are RSS-steered across two receive
    queues via {!steer}. *)

val node_id : t -> int
val match_engine : t -> Match_list.engine

val rx_queues : t -> int
(** Number of receive queues (1 linear, 2 hashed). *)

val steer : t -> flow:int -> int
(** RSS steering: which receive queue handles flows hashing from [flow]
    (callers use the peer node id). Always 0 with a single queue. *)

val match_cost : t -> Match_list.probe -> Uls_engine.Time.ns
(** Firmware time for one descriptor lookup: walked descriptors at
    [nic_tag_match_per_desc] plus hash probes at [nic_hash_lookup]. *)

val observe_match : t -> Match_list.probe -> unit
(** Record [nic.match_walk_descs] (every lookup, both engines) and
    [nic.match_hash_lookups] (hashed probes only). *)

val sim : t -> Uls_engine.Sim.t
val model : t -> Uls_host.Cost_model.t

val set_firmware_rx : t -> (Uls_ether.Frame.t -> unit) -> unit
(** Install the handler invoked (in plain event context) for each frame
    the MAC delivers to this NIC. *)

val transmit : t -> Uls_ether.Frame.t -> unit
(** Hand a frame to the MAC for transmission on the station uplink. *)

val tx_work : t -> Uls_engine.Time.ns -> unit
(** Occupy the send core for the given processing time (fiber). *)

val rx_work : ?queue:int -> t -> Uls_engine.Time.ns -> unit
(** Occupy a receive core (default queue 0) for the given time (fiber). *)

val dma : ?pipelined:bool -> t -> bytes:int -> unit
(** One DMA transaction over the PCI bus (fiber): setup + per-byte.
    With [~pipelined:true] (ring-fed gather-DMA), a transfer that finds
    the engine already busy skips [dma_setup] and pays byte time only —
    it rides the in-progress burst. An idle engine always charges the
    full setup, so sparse traffic is unchanged. *)

val doorbell : t -> unit
(** Host doorbell: one [pio_write] charged to the caller (fiber) and one
    [nic.doorbells] count. The firmware pickup charges its own
    [nic_mailbox_fetch] (and bumps [nic.mailbox_fetches]) when it
    services the mailbox — never here, so a same-tick pickup is charged
    exactly once. The audit invariant is
    [nic.doorbells = nic.mailbox_fetches] once a run drains. *)

val count_doorbell : t -> unit
(** Bump [nic.doorbells] without charging — for the ring path, where
    {!Uls_rings.Ringpair} charges the PIO itself. *)

val count_mailbox_fetch : t -> unit
(** Bump [nic.mailbox_fetches] — callers that charge
    [nic_mailbox_fetch] (or the ring path's [nic_doorbell_batch])
    directly on a NIC core pair it with this count. *)

val tx_cpu : t -> Uls_engine.Resource.t
val rx_cpu : ?queue:int -> t -> Uls_engine.Resource.t
val dma_engine : t -> Uls_engine.Resource.t
val frames_received : t -> int

(** {1 Forward-on-match (NIC-assisted collectives)}

    The NIC-based collective message-passing protocol of Yu et al.
    (Quadrics/Myrinet): the host posts {e forward descriptors} that the
    firmware matches against incoming collective frames. A descriptor
    counts [need] arrivals (frames from children plus, via
    {!coll_signal}, the local process's own arrival); on the last one
    the firmware emits follow-on frames (to the parent, or down to the
    children) and optionally DMAs a completion up to the host — all in
    NIC context, never waking the host mid-tree. *)

val set_coll_classifier : t -> (Uls_ether.Frame.t -> (int * int) option) -> unit
(** Install the firmware-side classifier: [Some (src, tag)] routes the
    frame to the forward-on-match engine instead of {!set_firmware_rx}'s
    handler. The collective library supplies this since the frame payload
    type is its own extension. *)

val post_forward :
  t ->
  src:int ->
  tag:int ->
  need:int ->
  ?deliver:(Uls_ether.Frame.t option -> unit) ->
  emit:(Uls_ether.Frame.t option -> Uls_ether.Frame.t list) ->
  unit ->
  unit
(** Post a forward descriptor ([src = -1] is a wildcard). After [need]
    matching arrivals the firmware unposts it, transmits [emit frame]
    (called with the completing frame, [None] if it was a host signal)
    and, if [deliver] is given, DMAs the completion to the host and
    calls it (plain event context). Caller must be a fiber (one PIO
    write is charged). Frames arriving before the descriptor wait in a
    bounded NIC-side pending queue. *)

val coll_signal : t -> tag:int -> unit
(** Host doorbell counting as a local arrival for the matching forward
    descriptor (source = own node). Caller must be a fiber. *)

val coll_inject : t -> Uls_ether.Frame.t -> unit
(** Hand one collective frame to the firmware for transmission (root of
    a NIC-forwarded broadcast). Charges the PIO write to the caller and
    the descriptor fetch / payload DMA / transmit to the NIC
    asynchronously. Caller must be a fiber. *)

val coll_matched : t -> int
val coll_forwarded : t -> int
(** Frames transmitted by the forward engine ({!post_forward} emissions
    plus {!coll_inject}). *)

val coll_delivered : t -> int
val forward_descriptors : t -> int
