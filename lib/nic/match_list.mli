(** NIC-side descriptor list with tag matching (EMP §2, R4). An incoming
    frame is matched against posted descriptors by walking the list in
    post order; the walk length is returned so the NIC model can charge
    the per-descriptor match cost the paper measured (~550 ns). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int

val post : 'a t -> src:int -> tag:int -> 'a -> unit
(** Append a descriptor matching sender [src] and 16-bit [tag].
    [src = -1] or [tag = -1] act as wildcards. *)

val take : 'a t -> src:int -> tag:int -> ('a * int) option
(** Find, remove and return the first descriptor matching an incoming
    frame from [src] with [tag], together with the number of descriptors
    walked (matched one included). [None] means no match — the walk then
    covered the whole list. *)

val find : 'a t -> src:int -> tag:int -> ('a * int) option
(** Like {!take} but without removing the matched descriptor — used by
    forward-on-match descriptors that persist across several frames
    (collective combine descriptors count arrivals down to zero before
    being unposted with {!remove_first}). *)

val remove_first : 'a t -> ('a -> bool) -> 'a option
(** Remove and return the first live descriptor satisfying the
    predicate, preserving the order of the others. *)

val unpost_all : 'a t -> 'a list
(** Remove every descriptor (socket close / EMP state reset). *)

val unpost_matching : 'a t -> ('a -> bool) -> 'a list
val iter : 'a t -> ('a -> unit) -> unit
