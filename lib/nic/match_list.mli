(** NIC-side descriptor list with tag matching (EMP §2, R4). An incoming
    frame is matched against posted descriptors in post order. Two
    engines model the two firmware generations:

    - [Linear] — the original walk: every posted descriptor is examined
      until one matches, so the per-frame cost is O(total posted
      descriptors) at the paper's ~550 ns each. Faithful to the measured
      Tigon firmware and kept as the ablation baseline.
    - [Hashed] — a hash index keyed on (src, tag) with per-key
      descriptor rings. A concrete frame can match at most four keys
      ((src,tag), (-1,tag), (src,-1), (-1,-1)), so a lookup costs a few
      hash probes instead of a walk, independent of how many other
      connections have descriptors posted.

    Every lookup reports a {!probe} so the NIC model can charge walk and
    hash costs explicitly. *)

type engine = Linear | Hashed

type probe = { walked : int; lookups : int }
(** [walked]: descriptors examined (linear walk or ring heads compared);
    [lookups]: hash-table probes (0 for the linear engine). *)

val no_probe : probe

type 'a t

val create : ?engine:engine -> unit -> 'a t
(** Default [Linear] — the measured firmware behaviour. *)

val engine : 'a t -> engine
val engine_name : engine -> string
val engine_of_string : string -> engine option
val length : 'a t -> int

val post : 'a t -> src:int -> tag:int -> 'a -> unit
(** Append a descriptor matching sender [src] and 16-bit [tag].
    [src = -1] or [tag = -1] act as wildcards. *)

val take : 'a t -> src:int -> tag:int -> 'a option * probe
(** Find, remove and return the first descriptor matching an incoming
    frame from [src] with [tag], with the match cost actually incurred.
    [None] means no match — the probe then covers the whole search. Both
    engines return the same descriptor in the same order (hashed falls
    back to the linear walk when the query itself carries a wildcard,
    where cross-key FIFO order matters). *)

val find : 'a t -> src:int -> tag:int -> 'a option * probe
(** Like {!take} but without removing the matched descriptor — used by
    forward-on-match descriptors that persist across several frames
    (collective combine descriptors count arrivals down to zero before
    being unposted with {!remove_first}). *)

val remove_first : 'a t -> ('a -> bool) -> 'a option
(** Remove and return the first live descriptor satisfying the
    predicate, preserving the order of the others. *)

val unpost_all : 'a t -> 'a list
(** Remove every descriptor (socket close / EMP state reset). *)

val unpost_matching : 'a t -> ('a -> bool) -> 'a list
val iter : 'a t -> ('a -> unit) -> unit
