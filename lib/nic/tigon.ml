open Uls_engine
open Uls_host

type fwd = {
  fwd_src : int;
  fwd_tag : int;
  mutable fwd_need : int;
  fwd_emit : Uls_ether.Frame.t option -> Uls_ether.Frame.t list;
  fwd_deliver : (Uls_ether.Frame.t option -> unit) option;
}

type fwd_event =
  | Fwd_post of fwd
  | Fwd_arrive of int * int * Uls_ether.Frame.t option
      (** [(src, tag, frame)]; [frame = None] is a host doorbell
          ({!coll_signal}) counting as a local arrival. *)

(* Metric handles resolved once at create so per-frame accounting is a
   cell bump, not a registry lookup. *)
type handles = {
  h_match_walk_descs : Stats.Summary.t;
  h_match_hash_lookups : Stats.Summary.t;
  h_coll_forwarded : Stats.Counter.t;
  h_coll_delivered : Stats.Counter.t;
  h_coll_matched : Stats.Counter.t;
  h_fwd_walk_descs : Stats.Summary.t;
  h_rx_crc_drop : Stats.Counter.t;
  h_rx_frames : Stats.Counter.t;
  h_tx_frames : Stats.Counter.t;
  h_doorbells : Stats.Counter.t;
  h_mailbox_fetches : Stats.Counter.t;
}

type t = {
  node_id : int;
  sim : Sim.t;
  model : Cost_model.t;
  metrics : Metrics.t;
  mh : handles;
  trace : Trace.t;
  net : Uls_ether.Network.t;
  tx_cpu : Resource.t;
  rx_cpus : Resource.t array;
  dma_engine : Resource.t;
  mutable firmware_rx : Uls_ether.Frame.t -> unit;
  mutable rx_frames : int;
  (* Forward-on-match engine (NIC-assisted collectives): descriptors the
     host posts so the firmware can combine and propagate collective
     frames down a tree without host involvement. *)
  mutable coll_classify : Uls_ether.Frame.t -> (int * int) option;
  fwd_list : fwd Match_list.t;
  fwd_pending : (int * int * Uls_ether.Frame.t option) Vec.t;
  fwd_queue : fwd_event Mailbox.t;
  mutable coll_matched : int;
  mutable coll_forwarded : int;
  mutable coll_delivered : int;
}

(* Collective frames that arrive before the host posted the matching
   forward descriptor wait in NIC memory; the firmware bounds the queue
   by dropping the oldest entry (recovered, if at all, by higher-level
   retry — the collective protocols post before signalling precisely so
   this stays a cold path). *)
let fwd_pending_limit = 128

let match_engine t = Match_list.engine t.fwd_list
let rx_queues t = Array.length t.rx_cpus

(* RSS: shard flows across the Tigon's receive cores with a multiplicative
   hash (Fibonacci constant), so one queue's match load never serializes
   behind another's. With a single core (linear firmware) everything lands
   on queue 0. *)
let steer t ~flow =
  let n = Array.length t.rx_cpus in
  if n = 1 then 0
  else begin
    let h = flow * 0x9E3779B1 in
    let h = h lxor (h lsr 15) in
    h land (n - 1)
  end

let match_cost t (p : Match_list.probe) =
  (p.walked * t.model.Cost_model.nic_tag_match_per_desc)
  + (p.lookups * t.model.Cost_model.nic_hash_lookup)

let observe_match t (p : Match_list.probe) =
  Stats.Summary.add t.mh.h_match_walk_descs (float_of_int p.walked);
  if p.lookups > 0 then
    Stats.Summary.add t.mh.h_match_hash_lookups (float_of_int p.lookups)

let fwd_complete t fwd completing =
  (match Match_list.remove_first t.fwd_list (fun f -> f == fwd) with
  | Some _ -> ()
  | None -> ());
  let frames = fwd.fwd_emit completing in
  List.iter
    (fun frame ->
      Resource.use t.tx_cpu t.model.Cost_model.nic_coll_forward;
      t.coll_forwarded <- t.coll_forwarded + 1;
      Stats.Counter.incr t.mh.h_coll_forwarded;
      Trace.instant t.trace ~layer:Trace.Nic ~node:t.node_id "nic.fwd_forward";
      Uls_ether.Network.send t.net frame)
    frames;
  match fwd.fwd_deliver with
  | None -> ()
  | Some deliver ->
    (* Completion (and any payload) is DMA'd up to the host. *)
    let bytes =
      match completing with
      | Some f -> Stdlib.max 8 f.Uls_ether.Frame.payload_len
      | None -> 8
    in
    Resource.use t.dma_engine (Cost_model.dma_cost t.model bytes);
    t.coll_delivered <- t.coll_delivered + 1;
    Stats.Counter.incr t.mh.h_coll_delivered;
    deliver completing

let fwd_match t ~src ~tag frame =
  match Match_list.find t.fwd_list ~src ~tag with
  | None, _ ->
    if Vec.length t.fwd_pending >= fwd_pending_limit then begin
      (* Shift out the oldest entry. *)
      let keep = ref [] in
      Vec.iter (fun e -> keep := e :: !keep) t.fwd_pending;
      Vec.clear t.fwd_pending;
      List.iter (Vec.push t.fwd_pending) (List.tl (List.rev !keep))
    end;
    Vec.push t.fwd_pending (src, tag, frame)
  | Some fwd, probe ->
    Resource.use t.rx_cpus.(0) (match_cost t probe);
    t.coll_matched <- t.coll_matched + 1;
    Stats.Counter.incr t.mh.h_coll_matched;
    Stats.Summary.add t.mh.h_fwd_walk_descs (float_of_int probe.walked);
    observe_match t probe;
    Trace.instant t.trace ~layer:Trace.Nic ~node:t.node_id "nic.fwd_match"
      ~args:[ ("walked", string_of_int probe.walked) ];
    fwd.fwd_need <- fwd.fwd_need - 1;
    if fwd.fwd_need <= 0 then fwd_complete t fwd frame

let fwd_fiber t () =
  let m = t.model in
  let rec loop () =
    (match Mailbox.recv t.fwd_queue with
    | Fwd_arrive (src, tag, frame) ->
      (match frame with
      | Some _ -> Resource.use t.rx_cpus.(0) m.Cost_model.nic_rx_classify
      | None ->
        (* Host doorbell: the firmware fetches the mailbox word. *)
        Stats.Counter.incr t.mh.h_mailbox_fetches;
        Resource.use t.rx_cpus.(0) m.Cost_model.nic_mailbox_fetch);
      fwd_match t ~src ~tag frame
    | Fwd_post fwd ->
      Stats.Counter.incr t.mh.h_mailbox_fetches;
      Resource.use t.rx_cpus.(0) m.Cost_model.nic_mailbox_fetch;
      Match_list.post t.fwd_list ~src:fwd.fwd_src ~tag:fwd.fwd_tag fwd;
      (* Drain collective frames that raced ahead of the descriptor. *)
      let rec drain () =
        if fwd.fwd_need > 0 then begin
          let matched = ref None in
          let i = ref 0 in
          while !matched = None && !i < Vec.length t.fwd_pending do
            let (src, tag, _) as e = Vec.get t.fwd_pending !i in
            if
              (fwd.fwd_src = -1 || fwd.fwd_src = src)
              && (fwd.fwd_tag = -1 || fwd.fwd_tag = tag)
            then matched := Some (!i, e)
            else incr i
          done;
          match !matched with
          | None -> ()
          | Some (idx, (src, tag, frame)) ->
            (* Preserve arrival order of the remaining entries. *)
            let keep = ref [] in
            Vec.iter (fun e -> keep := e :: !keep) t.fwd_pending;
            Vec.clear t.fwd_pending;
            List.iteri
              (fun j e -> if j <> idx then Vec.push t.fwd_pending e)
              (List.rev !keep);
            (* No classify charge here: each pending entry already paid
               its arrival cost (classify or mailbox fetch) when it was
               queued — re-charging it at drain time double-billed
               same-tick arrivals. *)
            fwd_match t ~src ~tag frame;
            drain ()
        end
      in
      drain ());
    loop ()
  in
  loop ()

let create ?(match_engine = Match_list.Linear) sim model net ~node =
  let name part = Printf.sprintf "nic%d-%s" node part in
  (* The Tigon2 carries two embedded MIPS cores beyond the dedicated send
     core; the hashed firmware runs a receive queue on each, the original
     linear firmware dedicates a single core to receive. *)
  let n_rx = match match_engine with Match_list.Linear -> 1 | Hashed -> 2 in
  let metrics = Metrics.for_sim sim in
  let counter name = Metrics.counter metrics ~node name in
  let histogram name = Metrics.histogram metrics ~node name in
  let t =
    {
      node_id = node;
      sim;
      model;
      metrics;
      mh =
        {
          h_match_walk_descs = histogram "nic.match_walk_descs";
          h_match_hash_lookups = histogram "nic.match_hash_lookups";
          h_coll_forwarded = counter "nic.coll_forwarded";
          h_coll_delivered = counter "nic.coll_delivered";
          h_coll_matched = counter "nic.coll_matched";
          h_fwd_walk_descs = histogram "nic.fwd_walk_descs";
          h_rx_crc_drop = counter "nic.rx_crc_drop";
          h_rx_frames = counter "nic.rx_frames";
          h_tx_frames = counter "nic.tx_frames";
          h_doorbells = counter "nic.doorbells";
          h_mailbox_fetches = counter "nic.mailbox_fetches";
        };
      trace = Trace.for_sim sim;
      net;
      tx_cpu = Resource.create sim ~name:(name "txcpu");
      rx_cpus =
        Array.init n_rx (fun i ->
            let part = if i = 0 then "rxcpu" else Printf.sprintf "rxcpu%d" i in
            Resource.create sim ~name:(name part));
      dma_engine = Resource.create sim ~name:(name "dma");
      firmware_rx = (fun _ -> ());
      rx_frames = 0;
      coll_classify = (fun _ -> None);
      fwd_list = Match_list.create ~engine:match_engine ();
      fwd_pending = Vec.create ();
      fwd_queue = Mailbox.create ~label:(name "fwd-queue") sim;
      coll_matched = 0;
      coll_forwarded = 0;
      coll_delivered = 0;
    }
  in
  Uls_ether.Network.attach net ~station:node (fun frame ->
      if Uls_ether.Frame.corrupted frame then begin
        (* The MAC's FCS check fails on a damaged frame: it is discarded
           in hardware, never reaching the firmware — but it did occupy
           the wire, and the Rx MAC spends classify-equivalent time
           before the checksum verdict. *)
        Stats.Counter.incr t.mh.h_rx_crc_drop;
        Trace.instant t.trace ~layer:Trace.Nic ~node "nic.rx_crc_drop";
        let q = steer t ~flow:frame.Uls_ether.Frame.src in
        ignore
          (Resource.completion_after t.rx_cpus.(q)
             model.Cost_model.nic_rx_classify)
      end
      else begin
        t.rx_frames <- t.rx_frames + 1;
        Stats.Counter.incr t.mh.h_rx_frames;
        match t.coll_classify frame with
        | Some (src, tag) ->
          Mailbox.send t.fwd_queue (Fwd_arrive (src, tag, Some frame))
        | None -> t.firmware_rx frame
      end);
  Sim.spawn sim ~name:(name "fwd") ~daemon:true (fwd_fiber t);
  t

let node_id t = t.node_id
let sim t = t.sim
let model t = t.model
let set_firmware_rx t f = t.firmware_rx <- f

(* The MAC has a small transmit FIFO: when more than ~8 full frames are
   already queued on the wire, the transmitting firmware fiber stalls
   until the backlog drains. Without this, a burst of posted messages
   queues unbounded wire-time ahead of itself and reliability timers fire
   long before the frames were ever transmitted. *)
let tx_fifo_ns = 100_000

let transmit t frame =
  let uplink = Uls_ether.Network.uplink t.net ~station:t.node_id in
  let backlog = Uls_ether.Link.busy_until uplink - Sim.now t.sim in
  if backlog > tx_fifo_ns then Sim.delay t.sim (backlog - tx_fifo_ns);
  Stats.Counter.incr t.mh.h_tx_frames;
  Uls_ether.Network.send t.net frame

let tx_work t d =
  Trace.span t.trace ~layer:Trace.Nic ~node:t.node_id "nic.tx_work" (fun () ->
      Resource.use t.tx_cpu d)

let rx_work ?(queue = 0) t d =
  Trace.span t.trace ~layer:Trace.Nic ~node:t.node_id "nic.rx_work" (fun () ->
      Resource.use t.rx_cpus.(queue) d)
(* [pipelined] models the gather-DMA behaviour of a descriptor-ring
   engine: transfers queued while the engine is already busy ride the
   running burst and skip the per-transaction setup. A transfer that
   finds the engine idle always pays full [dma_cost], so sparse traffic
   (and every non-ring path) is charged exactly as before. *)
let dma ?(pipelined = false) t ~bytes =
  let cost =
    if pipelined && Resource.free_at t.dma_engine > Sim.now t.sim then
      Cost_model.dma_stream_cost t.model bytes
    else Cost_model.dma_cost t.model bytes
  in
  Resource.use t.dma_engine cost

(* Host-side doorbell: one MMIO write over PCI, counted so the
   doorbells/mailbox-fetches audit can prove each doorbell is fetched
   exactly once. The firmware pickup charges [nic_mailbox_fetch] itself
   (see the callers' pickup fibers) — charging the fetch here as well,
   as the old [mailbox_ring] helper did, double-billed same-tick
   submissions. *)
let doorbell t =
  Sim.delay t.sim t.model.Cost_model.pio_write;
  Stats.Counter.incr t.mh.h_doorbells

let count_doorbell t = Stats.Counter.incr t.mh.h_doorbells
let count_mailbox_fetch t = Stats.Counter.incr t.mh.h_mailbox_fetches

let tx_cpu t = t.tx_cpu
let rx_cpu ?(queue = 0) t = t.rx_cpus.(queue)
let dma_engine t = t.dma_engine
let frames_received t = t.rx_frames

(* --- forward-on-match host interface --------------------------------- *)

let set_coll_classifier t f = t.coll_classify <- f

let post_forward t ~src ~tag ~need ?deliver ~emit () =
  if need <= 0 then invalid_arg "Tigon.post_forward: need must be positive";
  (* Host side: build the descriptor and ring the doorbell (a PIO write);
     the firmware picks it up from the mailbox in its own time. *)
  doorbell t;
  Mailbox.send t.fwd_queue
    (Fwd_post { fwd_src = src; fwd_tag = tag; fwd_need = need;
                fwd_emit = emit; fwd_deliver = deliver })

let coll_signal t ~tag =
  (* Host-side arrival (e.g. "this process entered the barrier"): one PIO
     write; counts as a match of the local combine descriptor. *)
  doorbell t;
  Mailbox.send t.fwd_queue (Fwd_arrive (t.node_id, tag, None))

let coll_inject t frame =
  (* Root of a NIC-forwarded broadcast: hand a collective frame to the
     firmware for transmission (descriptor write + payload DMA), without
     blocking the caller on the NIC's transmit serialization. *)
  doorbell t;
  Sim.spawn t.sim ~name:"nic-coll-inject" (fun () ->
      Stats.Counter.incr t.mh.h_mailbox_fetches;
      Resource.use t.tx_cpu t.model.Cost_model.nic_mailbox_fetch;
      Resource.use t.dma_engine
        (Cost_model.dma_cost t.model frame.Uls_ether.Frame.payload_len);
      Resource.use t.tx_cpu t.model.Cost_model.nic_tx_per_frame;
      t.coll_forwarded <- t.coll_forwarded + 1;
      Uls_ether.Network.send t.net frame)

let coll_matched t = t.coll_matched
let coll_forwarded t = t.coll_forwarded
let coll_delivered t = t.coll_delivered
let forward_descriptors t = Match_list.length t.fwd_list
