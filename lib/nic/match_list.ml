open Uls_engine

type 'a entry = {
  src : int;
  tag : int;
  value : 'a;
  mutable removed : bool;
}

type 'a t = {
  entries : 'a entry Vec.t;
  mutable live : int;
}

let create () = { entries = Vec.create (); live = 0 }
let length t = t.live

let compact t =
  (* Drop removed entries once they dominate, preserving order. *)
  if Vec.length t.entries > 32 && t.live * 2 < Vec.length t.entries then begin
    let keep = Vec.fold (fun acc e -> if e.removed then acc else e :: acc) [] t.entries in
    Vec.clear t.entries;
    List.iter (Vec.push t.entries) (List.rev keep)
  end

let post t ~src ~tag value =
  Vec.push t.entries { src; tag; value; removed = false };
  t.live <- t.live + 1

let matches e ~src ~tag =
  (e.src = -1 || src = -1 || e.src = src) && (e.tag = -1 || tag = -1 || e.tag = tag)

let take t ~src ~tag =
  let n = Vec.length t.entries in
  let rec walk i walked =
    if i >= n then None
    else begin
      let e = Vec.get t.entries i in
      if e.removed then walk (i + 1) walked
      else if matches e ~src ~tag then begin
        e.removed <- true;
        t.live <- t.live - 1;
        compact t;
        Some (e.value, walked + 1)
      end
      else walk (i + 1) (walked + 1)
    end
  in
  walk 0 0

let find t ~src ~tag =
  let n = Vec.length t.entries in
  let rec walk i walked =
    if i >= n then None
    else begin
      let e = Vec.get t.entries i in
      if e.removed then walk (i + 1) walked
      else if matches e ~src ~tag then Some (e.value, walked + 1)
      else walk (i + 1) (walked + 1)
    end
  in
  walk 0 0

let remove_first t pred =
  let n = Vec.length t.entries in
  let rec walk i =
    if i >= n then None
    else begin
      let e = Vec.get t.entries i in
      if (not e.removed) && pred e.value then begin
        e.removed <- true;
        t.live <- t.live - 1;
        compact t;
        Some e.value
      end
      else walk (i + 1)
    end
  in
  walk 0

let unpost_all t =
  let vs =
    Vec.fold (fun acc e -> if e.removed then acc else e.value :: acc) [] t.entries
  in
  Vec.clear t.entries;
  t.live <- 0;
  List.rev vs

let unpost_matching t pred =
  let removed = ref [] in
  Vec.iter
    (fun e ->
      if (not e.removed) && pred e.value then begin
        e.removed <- true;
        t.live <- t.live - 1;
        removed := e.value :: !removed
      end)
    t.entries;
  compact t;
  List.rev !removed

let iter t f =
  Vec.iter (fun e -> if not e.removed then f e.value) t.entries
