open Uls_engine

type engine = Linear | Hashed

type probe = { walked : int; lookups : int }

let no_probe = { walked = 0; lookups = 0 }

type 'a entry = {
  src : int;
  tag : int;
  seq : int;
  value : 'a;
  mutable removed : bool;
}

(* The hashed engine keeps the same entries as the linear one (the
   global post-order vector stays authoritative for wildcard queries,
   iteration and unposting) plus an index: one descriptor ring per match
   key, bucketed by wildcard class. A concrete (src, tag) frame can only
   match four keys — (src, tag), (-1, tag), (src, -1), (-1, -1) — so a
   lookup probes at most four ring heads and picks the lowest sequence
   number, which is exactly the entry a full linear walk would return
   first. *)
type 'a index = {
  exact : (int * int, 'a entry Desc_ring.t) Hashtbl.t;
  any_src : (int, 'a entry Desc_ring.t) Hashtbl.t;  (* posted src = -1 *)
  any_tag : (int, 'a entry Desc_ring.t) Hashtbl.t;  (* posted tag = -1 *)
  all_wild : 'a entry Desc_ring.t;  (* posted src = tag = -1 *)
}

type 'a t = {
  engine : engine;
  entries : 'a entry Vec.t;
  mutable live : int;
  mutable seq : int;
  index : 'a index option;
}

let entry_dead e = e.removed

let create ?(engine = Linear) () =
  {
    engine;
    entries = Vec.create ();
    live = 0;
    seq = 0;
    index =
      (match engine with
      | Linear -> None
      | Hashed ->
        Some
          {
            exact = Hashtbl.create 64;
            any_src = Hashtbl.create 8;
            any_tag = Hashtbl.create 8;
            all_wild = Desc_ring.create ~dead:entry_dead ();
          });
  }

let engine t = t.engine
let length t = t.live

let engine_name = function Linear -> "linear" | Hashed -> "hashed"

let engine_of_string = function
  | "linear" -> Some Linear
  | "hashed" -> Some Hashed
  | _ -> None

let compact t =
  (* Drop removed entries once they dominate: two-finger in-place sweep,
     preserving order without any intermediate list (sustained post/take
     churn stays O(n), not O(n^2)). Ring references move with the entry
     records, so the index needs no repair. *)
  if Vec.length t.entries > 32 && t.live * 2 < Vec.length t.entries then begin
    let n = Vec.length t.entries in
    let w = ref 0 in
    for r = 0 to n - 1 do
      let e = Vec.get t.entries r in
      if not e.removed then begin
        Vec.set t.entries !w e;
        incr w
      end
    done;
    Vec.truncate t.entries !w
  end

let ring_of tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = Desc_ring.create ~dead:entry_dead () in
    Hashtbl.replace tbl key r;
    r

let index_post idx e =
  if e.src = -1 && e.tag = -1 then Desc_ring.push idx.all_wild e
  else if e.src = -1 then Desc_ring.push (ring_of idx.any_src e.tag) e
  else if e.tag = -1 then Desc_ring.push (ring_of idx.any_tag e.src) e
  else Desc_ring.push (ring_of idx.exact (e.src, e.tag)) e

let post t ~src ~tag value =
  t.seq <- t.seq + 1;
  let e = { src; tag; seq = t.seq; value; removed = false } in
  Vec.push t.entries e;
  t.live <- t.live + 1;
  match t.index with None -> () | Some idx -> index_post idx e

let matches e ~src ~tag =
  (e.src = -1 || src = -1 || e.src = src) && (e.tag = -1 || tag = -1 || e.tag = tag)

(* Linear walk, the Tigon firmware's original O(posted descriptors)
   engine — also the fallback for query-side wildcards in hashed mode
   (FIFO order across keys is not recoverable from per-key rings). *)
let walk t ~src ~tag =
  let n = Vec.length t.entries in
  let rec go i walked =
    if i >= n then (None, { walked; lookups = 0 })
    else begin
      let e = Vec.get t.entries i in
      if e.removed then go (i + 1) walked
      else if matches e ~src ~tag then (Some e, { walked = walked + 1; lookups = 0 })
      else go (i + 1) (walked + 1)
    end
  in
  go 0 0

(* Hashed lookup for a concrete (src, tag): probe the (at most) four
   candidate rings and take the earliest-posted head. [lookups] counts
   the hash-table probes actually made; [walked] the ring heads
   compared. *)
let index_lookup idx ~src ~tag =
  let candidates = ref [] in
  let lookups = ref 1 in
  (match Hashtbl.find_opt idx.exact (src, tag) with
  | Some r -> (match Desc_ring.peek r with Some e -> candidates := (e, r) :: !candidates | None -> ())
  | None -> ());
  if Hashtbl.length idx.any_src > 0 then begin
    incr lookups;
    match Hashtbl.find_opt idx.any_src tag with
    | Some r -> (match Desc_ring.peek r with Some e -> candidates := (e, r) :: !candidates | None -> ())
    | None -> ()
  end;
  if Hashtbl.length idx.any_tag > 0 then begin
    incr lookups;
    match Hashtbl.find_opt idx.any_tag src with
    | Some r -> (match Desc_ring.peek r with Some e -> candidates := (e, r) :: !candidates | None -> ())
    | None -> ()
  end;
  if not (Desc_ring.is_empty idx.all_wild) then begin
    incr lookups;
    match Desc_ring.peek idx.all_wild with
    | Some e -> candidates := (e, idx.all_wild) :: !candidates
    | None -> ()
  end;
  let best =
    List.fold_left
      (fun acc ((e : _ entry), r) ->
        match acc with
        | Some ((e' : _ entry), _) when e'.seq <= e.seq -> acc
        | _ -> Some (e, r))
      None !candidates
  in
  (best, { walked = List.length !candidates; lookups = !lookups })

let lookup t ~src ~tag =
  match t.index with
  | Some idx when src <> -1 && tag <> -1 ->
    let best, probe = index_lookup idx ~src ~tag in
    (Option.map fst best, Option.map snd best, probe)
  | _ ->
    let e, probe = walk t ~src ~tag in
    (e, None, probe)

let remove t e ring =
  (* The winning ring's head is this entry: pop it eagerly (before
     tombstoning, or the reap would swallow the next live head too) so
     ring occupancy tracks live descriptors. Entries removed through
     global scans stay tombstoned until they surface at their ring's
     head. *)
  (match ring with
  | Some r -> ignore (Desc_ring.pop r)
  | None -> ());
  e.removed <- true;
  t.live <- t.live - 1;
  compact t

let take t ~src ~tag =
  match lookup t ~src ~tag with
  | Some e, ring, probe ->
    remove t e ring;
    (Some e.value, probe)
  | None, _, probe -> (None, probe)

let find t ~src ~tag =
  let e, _, probe = lookup t ~src ~tag in
  (Option.map (fun e -> e.value) e, probe)

let remove_first t pred =
  let n = Vec.length t.entries in
  let rec go i =
    if i >= n then None
    else begin
      let e = Vec.get t.entries i in
      if (not e.removed) && pred e.value then begin
        remove t e None;
        Some e.value
      end
      else go (i + 1)
    end
  in
  go 0

let unpost_all t =
  let vs =
    Vec.fold (fun acc e -> if e.removed then acc else e.value :: acc) [] t.entries
  in
  Vec.iter (fun e -> e.removed <- true) t.entries;
  Vec.clear t.entries;
  t.live <- 0;
  (match t.index with
  | None -> ()
  | Some idx ->
    Hashtbl.reset idx.exact;
    Hashtbl.reset idx.any_src;
    Hashtbl.reset idx.any_tag;
    Desc_ring.clear idx.all_wild);
  List.rev vs

let unpost_matching t pred =
  let removed = ref [] in
  Vec.iter
    (fun e ->
      if (not e.removed) && pred e.value then begin
        e.removed <- true;
        t.live <- t.live - 1;
        removed := e.value :: !removed
      end)
    t.entries;
  compact t;
  List.rev !removed

let iter t f =
  Vec.iter (fun e -> if not e.removed then f e.value) t.entries
