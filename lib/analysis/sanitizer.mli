(** End-of-run resource sanitizers. Run after the simulation reaches
    quiescence; each scan checks a conservation law that only a finished
    run can witness:

    - {b descriptor conservation} — every EMP receive descriptor ever
      posted is completed or still live ([posted = completed + live]);
    - {b closed-connection descriptor leak} — a closed or reset
      substrate connection has zero still-posted receive slots;
    - {b send-pool occupancy} — no registered send-ring slot is still
      awaiting an acknowledgment that can no longer arrive.

    Findings are returned and also recorded into the simulation's
    {!Uls_engine.Invariant} monitor (so they reach the race detector's
    fingerprint). *)

type finding = {
  f_check : string;  (** invariant name, e.g. ["emp.desc_conservation"] *)
  f_node : int;  (** node id, [-1] when not attributable to one node *)
  f_detail : string;
}

val scan :
  ?conns:(int * Uls_substrate.Conn.t) list ->
  Uls_bench.Cluster.t ->
  finding list
(** [scan ~conns cluster] after a quiescent run. [conns] are the
    [(node, connection)] pairs the scenario tracked — closed connections
    leave the substrate's table, so the caller must hand them over for
    the leak check. *)

val render : finding list -> string
