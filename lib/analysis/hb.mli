(** Vector-clock happens-before tracking over the engine's sync
    primitives.

    Attached to a sim via {!Uls_engine.Sim.set_hooks}, the tracker
    maintains one vector clock per fiber (indexed by the sim's dense
    deterministic fiber ids) and one per sync object. Release
    operations ([Cond.signal]/[broadcast], [Mailbox.send], spawn)
    publish the acting fiber's clock into the object; acquire
    operations (a [Cond] wake-up, [Mailbox.recv]) join the object's
    clock into the fiber; [Resource] use is a serialization point and
    does both. Two operations are {e concurrent} iff neither clock is
    componentwise [<=] the other.

    Its product is the {e racing pair}: two conflicting operations —
    take/take or send/send on one mailbox, signal/signal on one
    condition — by different fibers with no happens-before edge, i.e.
    the two labeled operations whose dispatch order the divergent
    outcome actually hinged on. Benign concurrent pairs exist in
    correct code, so callers attach pairs to flagged findings rather
    than treating any pair as a failure.

    Tracking costs nothing when detached: the engine's hook sites are a
    field read and branch each (see {!Uls_engine.Sim.note_op}). *)

type t

val attach : Uls_engine.Sim.t -> t
(** Install tracking hooks on [sim]. Call before the workload spawns
    (the analysis drivers use {!Uls_engine.Sim.set_create_hook} to
    attach at sim creation). *)

val detach : t -> unit
(** Remove the hooks; the sim returns to zero-overhead operation. *)

type pair = {
  p_label : string;  (** sync-object label, e.g. ["shared-grant-queue"] *)
  p_a_fiber : string;
  p_a_op : string;  (** operation name, e.g. ["Mailbox.recv"] *)
  p_b_fiber : string;
  p_b_op : string;
  mutable p_count : int;  (** distinct occurrences observed *)
}

val pairs : t -> pair list
(** Racing pairs observed this run. Competing consumers (recv/recv)
    rank first — when a divergence is flagged they are almost always
    the cause — then signal/signal, then send/send; most frequent first
    within a rank. *)

val render_pair : pair -> string

val dispatch_count : t -> int
(** Number of tasks dispatched so far — the explorer reads this at each
    decision point to position the decision in the dispatch log. *)

val dispatch_log : t -> (int * int list) array
(** One entry per dispatched task in dispatch order: the task's
    schedule sequence number and the sync-object uids it touched (its
    footprint — empty for tasks that performed no tracked operation).
    The explorer's independence pruning compares footprints to decide
    when two schedules are equivalent. *)
