(* Schedule-perturbation race detector driver. One baseline run under
   FIFO dispatch, then K runs under seeded-shuffled same-timestamp
   ordering. Every run of a correct scenario must reach the same
   semantic end state (Fingerprint), record no invariant violations,
   and leave no fiber deadlocked; any seed that differs is reported and
   can be replayed deterministically. *)

type run = {
  r_seed : int option;  (* None = FIFO baseline *)
  r_outcome : Scenarios.outcome;
}

type verdict = {
  v_scenario : Scenarios.t;
  v_baseline : run;
  v_perturbed : run list;
  v_divergent : (int * string) list;  (* seed, first differing line *)
  v_violating : (int * string) list;  (* seed (-1 = baseline), first violation *)
  v_deadlocked : int list;  (* seeds (-1 = baseline) with stuck fibers *)
}

let seed_of r = match r.r_seed with None -> -1 | Some s -> s

let verdict_of sc baseline perturbed =
  let divergent =
    List.filter_map
      (fun r ->
        match
          Fingerprint.first_difference baseline.r_outcome.Scenarios.fingerprint
            r.r_outcome.Scenarios.fingerprint
        with
        | None -> None
        | Some diff -> Some (seed_of r, diff))
      perturbed
  in
  let violating =
    List.filter_map
      (fun r ->
        match r.r_outcome.Scenarios.violations with
        | [] -> None
        | v :: _ -> Some (seed_of r, Uls_engine.Invariant.string_of_violation v))
      (baseline :: perturbed)
  in
  let deadlocked =
    List.filter_map
      (fun r ->
        match r.r_outcome.Scenarios.deadlock with
        | None -> None
        | Some _ -> Some (seed_of r))
      (baseline :: perturbed)
  in
  {
    v_scenario = sc;
    v_baseline = baseline;
    v_perturbed = perturbed;
    v_divergent = divergent;
    v_violating = violating;
    v_deadlocked = deadlocked;
  }

let clean v = v.v_divergent = [] && v.v_violating = [] && v.v_deadlocked = []

let flagged v = not (clean v)

let baseline_run ?sched sc =
  { r_seed = None; r_outcome = sc.Scenarios.sc_run ?sched `Fifo }

let run_scenario ?(seeds = 16) ?sched sc =
  let baseline = baseline_run ?sched sc in
  let perturbed =
    List.init seeds (fun s ->
        {
          r_seed = Some s;
          r_outcome = sc.Scenarios.sc_run ?sched (`Seeded_shuffle s);
        })
  in
  verdict_of sc baseline perturbed

let run_until_flagged ?(max_seeds = 16) ?sched sc =
  (* Grow the perturbed set one seed at a time and stop at the first
     flagged verdict: a buggy fixture only needs one catching seed, and
     in smoke mode CI shouldn't pay for the other fifteen. *)
  let baseline = baseline_run ?sched sc in
  let rec go acc s =
    if s >= max_seeds then verdict_of sc baseline (List.rev acc)
    else begin
      let r =
        {
          r_seed = Some s;
          r_outcome = sc.Scenarios.sc_run ?sched (`Seeded_shuffle s);
        }
      in
      let acc = r :: acc in
      let v = verdict_of sc baseline (List.rev acc) in
      if flagged v then v else go acc (s + 1)
    end
  in
  go [] 0

let replay ?sched sc ~seed = sc.Scenarios.sc_run ?sched (`Seeded_shuffle seed)

let seed_name s = if s < 0 then "baseline" else Printf.sprintf "seed %d" s

let render ?(verbose = false) v =
  let b = Buffer.create 256 in
  let sc = v.v_scenario in
  let runs = 1 + List.length v.v_perturbed in
  Buffer.add_string b
    (Printf.sprintf "%-20s %-7s %d runs: " sc.Scenarios.sc_name
       (if sc.Scenarios.sc_buggy then "[buggy]" else "[clean]")
       runs);
  if clean v then Buffer.add_string b "no divergence, no violations, no deadlock"
  else begin
    Buffer.add_string b
      (Printf.sprintf "%d divergent, %d violating, %d deadlocked"
         (List.length v.v_divergent)
         (List.length v.v_violating)
         (List.length v.v_deadlocked));
    let shown = if verbose then max_int else 3 in
    let take n l = List.filteri (fun i _ -> i < n) l in
    List.iter
      (fun (s, diff) ->
        Buffer.add_string b
          (Printf.sprintf "\n  divergence at %s: %s" (seed_name s) diff))
      (take shown v.v_divergent);
    List.iter
      (fun (s, viol) ->
        Buffer.add_string b
          (Printf.sprintf "\n  violation at %s: %s" (seed_name s) viol))
      (take shown v.v_violating);
    List.iter
      (fun s ->
        Buffer.add_string b (Printf.sprintf "\n  deadlock at %s" (seed_name s));
        if verbose then
          let r =
            if s < 0 then v.v_baseline
            else List.nth v.v_perturbed s
          in
          match r.r_outcome.Scenarios.deadlock with
          | Some rep -> Buffer.add_string b ("\n" ^ Deadlock.render rep)
          | None -> ())
      (take shown v.v_deadlocked);
    match (v.v_divergent, v.v_violating) with
    | (s, _) :: _, _ | [], (s, _) :: _ when s >= 0 ->
      Buffer.add_string b
        (Printf.sprintf
           "\n  replay deterministically with: ulsbench races --scenario %s --replay %d"
           sc.Scenarios.sc_name s)
    | _ -> ()
  end;
  Buffer.contents b
