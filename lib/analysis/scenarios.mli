(** The invariant suite: closed workloads the race detector perturbs.

    Each scenario builds its own cluster with a chosen same-timestamp
    tie-break policy, enables the invariant monitors, drives a workload
    to quiescence, runs the end-of-run sanitizers, and captures the
    final-state fingerprint. A {e clean} scenario must produce the same
    fingerprint, zero violations, and no deadlock under every tie-break;
    a {e buggy} fixture encodes a known bug class (re-introduced
    deliberately) that the detector must keep catching. *)

type tiebreak = Uls_engine.Sim.tiebreak_spec
(** [`Fifo], [`Seeded_shuffle seed] (the sampling detector), or
    [`Controlled choose] (the systematic explorer's instrument — see
    {!Uls_engine.Sim.set_tiebreak}). *)

type outcome = {
  fingerprint : Fingerprint.t;
  violations : Uls_engine.Invariant.violation list;
      (** everything the in-line monitors and sanitizers recorded *)
  deadlock : Deadlock.report option;
  leaks : Sanitizer.finding list;
  stop : [ `Quiescent | `Time_limit | `Stopped ];
}

type bound = {
  b_runs : int;  (** explorer schedule budget *)
  b_preemptions : int;
      (** max deviations from FIFO per schedule; [max_int] lets the
          explorer drain the whole tree and claim exhaustiveness *)
  b_run : (?sched:[ `Heap | `Wheel ] -> tiebreak -> outcome) option;
      (** reduced-size variant of the workload for exploration (each of
          hundreds of schedules re-runs the scenario); [None] explores
          [sc_run] itself *)
}
(** A scenario's opt-in to systematic exploration ({!Explore}). *)

type t = {
  sc_name : string;
  sc_descr : string;
  sc_buggy : bool;
      (** fixtures the detector must flag (CI fails if it stops catching
          them) *)
  sc_run : ?sched:[ `Heap | `Wheel ] -> tiebreak -> outcome;
      (** [sched] selects the simulator event-queue implementation
          (default binary heap); dispatch order is identical either
          way, so fingerprints must not depend on it *)
  sc_bound : bound option;
      (** [None]: the scenario is not explorable (e.g. fabric-churn,
          whose fleet driver owns its own sim) and [races --explore]
          skips it *)
}

val clean_suite : t list
(** Scenarios that must stay schedule-independent: streaming echo under
    credit flow control, datagram rendezvous from concurrent clients,
    connection churn, the raw-EMP grant protocol with per-request
    routing, and fleet arrivals over the sharded serving fabric (ring
    placement + completion counts fingerprinted from the fleet
    report). *)

val buggy_suite : t list
(** Seeded regressions: the PR 2 shared-grant-queue bug re-introduced in
    a raw-EMP fixture, and a lost-wakeup fixture whose deadlock exists
    on exactly one of two schedules (the explorer's exhaustive-proof
    demo). *)

val all : t list

val find : string -> t option
