(** The invariant suite: closed workloads the race detector perturbs.

    Each scenario builds its own cluster with a chosen same-timestamp
    tie-break policy, enables the invariant monitors, drives a workload
    to quiescence, runs the end-of-run sanitizers, and captures the
    final-state fingerprint. A {e clean} scenario must produce the same
    fingerprint, zero violations, and no deadlock under every tie-break;
    a {e buggy} fixture encodes a known bug class (re-introduced
    deliberately) that the detector must keep catching. *)

type tiebreak = [ `Fifo | `Seeded_shuffle of int ]

type outcome = {
  fingerprint : Fingerprint.t;
  violations : Uls_engine.Invariant.violation list;
      (** everything the in-line monitors and sanitizers recorded *)
  deadlock : Deadlock.report option;
  leaks : Sanitizer.finding list;
  stop : [ `Quiescent | `Time_limit | `Stopped ];
}

type t = {
  sc_name : string;
  sc_descr : string;
  sc_buggy : bool;
      (** fixtures the detector must flag (CI fails if it stops catching
          them) *)
  sc_run : ?sched:[ `Heap | `Wheel ] -> tiebreak -> outcome;
      (** [sched] selects the simulator event-queue implementation
          (default binary heap); dispatch order is identical either
          way, so fingerprints must not depend on it *)
}

val clean_suite : t list
(** Scenarios that must stay schedule-independent: streaming echo under
    credit flow control, datagram rendezvous from concurrent clients,
    connection churn, the raw-EMP grant protocol with per-request
    routing, and fleet arrivals over the sharded serving fabric (ring
    placement + completion counts fingerprinted from the fleet
    report). *)

val buggy_suite : t list
(** Seeded regressions: currently the PR 2 shared-grant-queue bug,
    re-introduced in a raw-EMP fixture. *)

val all : t list

val find : string -> t option
