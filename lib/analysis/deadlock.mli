(** Deadlock diagnosis. When {!Uls_engine.Sim.run} returns [`Quiescent]
    with fibers still parked, those fibers can never resume (the event
    queue is empty — nothing will call their resume). Daemon service
    fibers park forever by design; any {e non-daemon} parked fiber is a
    deadlocked piece of application work. The report names each stuck
    fiber and the condition/mailbox label it suspended on — the wait-for
    information a hung real system hides. *)

type report = {
  rep_at : Uls_engine.Time.ns;  (** virtual time of quiescence *)
  rep_stuck : Uls_engine.Sim.parked list;  (** non-daemon parked fibers *)
}

val check : Uls_engine.Sim.t -> report option
(** Call after a [`Quiescent] run. [None] means no deadlock. *)

val render : report -> string
(** Multi-line wait-for report: one [fiber … waiting on … since …] line
    per stuck fiber. *)
