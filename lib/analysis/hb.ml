(* Vector-clock happens-before tracking over the engine's sync
   primitives.

   Every fiber carries a vector clock (an int array indexed by the
   sim's dense deterministic fiber ids). Release operations
   (Cond.signal/broadcast, Mailbox.send, spawn) publish the acting
   fiber's clock into the sync object's clock; acquire operations
   (Cond wake-up, Mailbox.recv) join the object's clock into the
   fiber's; Resource.completion_after is a serialization point and does
   both. Two operations are concurrent iff neither clock snapshot is
   componentwise <= the other.

   The racing-pair report is the diagnostic this buys: when two
   *conflicting* operations — two takes from the same mailbox, two
   sends into it, or two signals of the same condition — by different
   fibers have no happens-before edge, their outcome depends on
   dispatch order, and we record the pair (object label, both fiber
   names, both operation names). Benign concurrent pairs exist in
   correct code (two producers feeding one consumer commute), so pairs
   are reported only attached to a flagged finding, as the explanation
   of *what* raced — the fingerprint/invariant divergence remains the
   ground truth for *whether* the race matters.

   Joins are deliberately over-approximate in the standard condition-
   variable way (an object clock accumulates every past releaser, so a
   waiter appears ordered after all of them): extra edges can only
   suppress pair reports, never fabricate them.

   The tracker also records, per dispatched task, the set of sync-object
   uids it touched — the footprint the explorer's independence pruning
   is built on. *)

open Uls_engine

let kind_name : Sim.op_kind -> string = function
  | Op_spawn -> "spawn"
  | Op_cond_wait -> "Cond.wait"
  | Op_cond_wake -> "Cond.wake"
  | Op_cond_signal -> "Cond.signal"
  | Op_cond_broadcast -> "Cond.broadcast"
  | Op_mailbox_send -> "Mailbox.send"
  | Op_mailbox_recv -> "Mailbox.recv"
  | Op_resource_use -> "Resource.use"

(* Conflict classes: operations whose relative order changes the
   outcome when concurrent. Resource uses and cond waits/wakes are
   tracked for happens-before edges but excluded here — concurrent
   resource uses merely reorder a FIFO queue's timing, and wait/wake
   pairs are the synchronisation itself. *)
let conflict_class : Sim.op_kind -> int = function
  | Op_mailbox_send -> 1
  | Op_mailbox_recv -> 2
  | Op_cond_signal | Op_cond_broadcast -> 3
  | Op_spawn | Op_cond_wait | Op_cond_wake | Op_resource_use -> 0

type hist_entry = {
  h_fiber : int;
  h_fiber_name : string;
  h_kind : Sim.op_kind;
  h_clock : int array;  (* acting fiber's clock just after the op *)
}

type obj_state = {
  ob_label : string;
  mutable ob_clock : int array;
  mutable ob_hist : hist_entry list;  (* newest first, capped *)
  mutable ob_hist_len : int;
}

type pair = {
  p_label : string;  (* sync-object label *)
  p_a_fiber : string;
  p_a_op : string;
  p_b_fiber : string;
  p_b_op : string;
  mutable p_count : int;
}

(* Footprint of one dispatched task: the sync-object uids it touched. *)
type slice = {
  s_seq : int;
  mutable s_uids : int list;
}

type t = {
  sim : Sim.t;
  mutable fclocks : int array array;  (* fiber id -> vector clock *)
  mutable fnames : string array;
  objects : (int, obj_state) Hashtbl.t;
  pairs : (string, pair) Hashtbl.t;
  mutable log : slice list;  (* newest first *)
  mutable dispatches : int;
}

let hist_cap = 16
let pairs_cap = 64

(* --- vector clocks ------------------------------------------------------ *)

(* Missing components are 0: clocks only grow as high-id fibers act. *)

let leq a b =
  let lb = Array.length b in
  let ok = ref true in
  Array.iteri (fun i x -> if x > (if i < lb then b.(i) else 0) then ok := false) a;
  !ok

let join dst src =
  let ld = Array.length dst and ls = Array.length src in
  if ls <= ld then begin
    for i = 0 to ls - 1 do
      if src.(i) > dst.(i) then dst.(i) <- src.(i)
    done;
    dst
  end
  else begin
    let a = Array.make ls 0 in
    Array.blit dst 0 a 0 ld;
    for i = 0 to ls - 1 do
      if src.(i) > a.(i) then a.(i) <- src.(i)
    done;
    a
  end

let ensure_fiber t f =
  let n = Array.length t.fclocks in
  if f >= n then begin
    let n' = max (f + 1) (2 * n) in
    let c = Array.make n' [||] in
    Array.blit t.fclocks 0 c 0 n;
    t.fclocks <- c;
    let m = Array.make n' "fiber" in
    Array.blit t.fnames 0 m 0 n;
    t.fnames <- m
  end

let tick t f =
  let c = t.fclocks.(f) in
  if f < Array.length c then c.(f) <- c.(f) + 1
  else begin
    let a = Array.make (f + 1) 0 in
    Array.blit c 0 a 0 (Array.length c);
    a.(f) <- 1;
    t.fclocks.(f) <- a
  end

(* --- handlers ----------------------------------------------------------- *)

let record_pair t ~label a_name a_op b_name b_op =
  let a_name, a_op, b_name, b_op =
    if (a_name, a_op) <= (b_name, b_op) then (a_name, a_op, b_name, b_op)
    else (b_name, b_op, a_name, a_op)
  in
  let key = String.concat "|" [ label; a_name; a_op; b_name; b_op ] in
  match Hashtbl.find_opt t.pairs key with
  | Some p -> p.p_count <- p.p_count + 1
  | None ->
    (* bounded: a pathological run can't grow the table without limit *)
    if Hashtbl.length t.pairs < pairs_cap then
      Hashtbl.add t.pairs key
        {
          p_label = label;
          p_a_fiber = a_name;
          p_a_op = a_op;
          p_b_fiber = b_name;
          p_b_op = b_op;
          p_count = 1;
        }

let on_op t kind uid label =
  let f = Sim.current_fiber_id t.sim in
  ensure_fiber t f;
  let ob =
    match Hashtbl.find_opt t.objects uid with
    | Some ob -> ob
    | None ->
      let ob =
        { ob_label = label; ob_clock = [||]; ob_hist = []; ob_hist_len = 0 }
      in
      Hashtbl.add t.objects uid ob;
      ob
  in
  (match t.log with
  | s :: _ -> s.s_uids <- uid :: s.s_uids
  | [] -> ()  (* op from main, outside the run loop: no footprint slice *));
  let cls = conflict_class kind in
  (* racing-pair check against recent conflicting ops, before this op's
     own joins create any new edges *)
  if cls <> 0 then begin
    let fc = t.fclocks.(f) in
    List.iter
      (fun h ->
        if
          h.h_fiber <> f
          && conflict_class h.h_kind = cls
          && not (leq h.h_clock fc)
        then
          record_pair t ~label h.h_fiber_name (kind_name h.h_kind) t.fnames.(f)
            (kind_name kind))
      ob.ob_hist
  end;
  (* tick before publishing so the release edge carries this op itself *)
  tick t f;
  (match kind with
  | Op_cond_signal | Op_cond_broadcast | Op_mailbox_send ->
    ob.ob_clock <- join ob.ob_clock t.fclocks.(f)
  | Op_cond_wake | Op_mailbox_recv ->
    t.fclocks.(f) <- join t.fclocks.(f) ob.ob_clock
  | Op_resource_use ->
    t.fclocks.(f) <- join t.fclocks.(f) ob.ob_clock;
    ob.ob_clock <- join ob.ob_clock t.fclocks.(f)
  | Op_spawn | Op_cond_wait -> ());
  if cls <> 0 then begin
    let entry =
      {
        h_fiber = f;
        h_fiber_name = t.fnames.(f);
        h_kind = kind;
        h_clock = Array.copy t.fclocks.(f);
      }
    in
    if ob.ob_hist_len >= hist_cap then begin
      (* drop the oldest: history is a recency window, races between
         far-apart ops still surface as fingerprint divergence *)
      ob.ob_hist <- entry :: List.filteri (fun i _ -> i < hist_cap - 1) ob.ob_hist
    end
    else begin
      ob.ob_hist <- entry :: ob.ob_hist;
      ob.ob_hist_len <- ob.ob_hist_len + 1
    end
  end

let on_spawn t ~parent ~child ~name =
  ensure_fiber t parent;
  ensure_fiber t child;
  t.fnames.(child) <- name;
  tick t parent;
  (* child begins with everything the parent had done at spawn time *)
  t.fclocks.(child) <- join (Array.copy t.fclocks.(parent)) [||];
  tick t child

let on_dispatch t ~seq ~time:_ =
  t.dispatches <- t.dispatches + 1;
  t.log <- { s_seq = seq; s_uids = [] } :: t.log

(* --- lifecycle ---------------------------------------------------------- *)

let attach sim =
  let t =
    {
      sim;
      fclocks = Array.make 16 [||];
      fnames = Array.make 16 "fiber";
      objects = Hashtbl.create 64;
      pairs = Hashtbl.create 16;
      log = [];
      dispatches = 0;
    }
  in
  t.fnames.(0) <- "main";
  Sim.set_hooks sim
    (Some
       {
         Sim.on_op = (fun kind uid label -> on_op t kind uid label);
         on_spawn = (fun ~parent ~child ~name -> on_spawn t ~parent ~child ~name);
         on_dispatch = (fun ~seq ~time -> on_dispatch t ~seq ~time);
       });
  t

let detach t = Sim.set_hooks t.sim None

(* --- reports ------------------------------------------------------------ *)

(* Competing consumers (recv/recv) are almost always the bug when a
   divergence is flagged; concurrent producers and signallers into one
   object are routine infrastructure, so they rank below. *)
let pair_rank p =
  match p.p_a_op with
  | "Mailbox.recv" -> 0
  | "Cond.signal" | "Cond.broadcast" -> 1
  | _ -> 2

let pairs t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.pairs []
  |> List.sort (fun a b ->
         let c = compare (pair_rank a) (pair_rank b) in
         if c <> 0 then c
         else
           let c = compare b.p_count a.p_count in
           if c <> 0 then c
           else
             compare
               (a.p_label, a.p_a_fiber, a.p_a_op)
               (b.p_label, b.p_b_fiber, b.p_b_op))

let render_pair p =
  Printf.sprintf
    "racing pair on '%s': %s %s  <->  %s %s  (no happens-before edge, %d occurrence%s)"
    p.p_label p.p_a_fiber p.p_a_op p.p_b_fiber p.p_b_op p.p_count
    (if p.p_count = 1 then "" else "s")

let dispatch_count t = t.dispatches

let dispatch_log t =
  let n = t.dispatches in
  let a = Array.make n (0, []) in
  List.iteri (fun i s -> a.(n - 1 - i) <- (s.s_seq, s.s_uids)) t.log;
  a
