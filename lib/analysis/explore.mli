(** DPOR-style systematic schedule exploration.

    Where {!Race} samples seeded shuffles, this module enumerates: the
    scenario runs under the engine's [`Controlled] tie-break, every
    same-timestamp tie becomes an explicit decision point, and a
    stateless depth-first search executes every schedule in the bounded
    space exactly once — skipping alternatives it can prove equivalent
    by footprint independence (sleep-set-flavoured pruning over the
    happens-before tracker's per-task sync footprints) and deduplicating
    end states by fingerprint.

    A schedule is named by its decision prefix in sparse form
    ("29:1,38:2": at decision points 29 and 38 take alternatives 1 and
    2, FIFO — index 0 — everywhere else; "fifo" is the empty prefix),
    so every finding replays deterministically. Scenarios opt in via
    {!Scenarios.bound}: micro fixtures use an unbounded preemption cap
    and get a genuine exhaustiveness proof ("all N schedules"); protocol
    scenarios bound preemptions (every schedule within P deviations of
    FIFO — the CHESS regime) and the verdict reports that coverage
    honestly, never claiming more than was run. *)

type finding =
  | Divergent of string  (** first differing fingerprint line *)
  | Violating of string  (** first invariant violation, rendered *)
  | Deadlocked of Deadlock.report

type flagged = {
  fl_schedule : string;
      (** schedule id — feed to [--replay-schedule] / {!replay} *)
  fl_finding : finding;
  fl_preemptions : int;
}

type stats = {
  st_runs : int;
  st_decision_points : int;
  st_max_depth : int;
  st_pruned : int;  (** alternatives proven schedule-equivalent, skipped *)
  st_capped : int;  (** alternatives beyond the preemption cap *)
  st_truncated : int;  (** frontier abandoned at run-budget exhaustion *)
  st_distinct_states : int;  (** distinct end-state fingerprints *)
  st_exhaustive : bool;
      (** the full tree was enumerated (nothing capped or truncated) *)
}

type verdict = {
  e_scenario : Scenarios.t;
  e_baseline : Scenarios.outcome;  (** the all-defaults (FIFO) schedule *)
  e_flagged : flagged list;
  e_pairs : Hb.pair list;
      (** racing pairs from the first flagged schedule — the two
          conflicting operations the divergence hinged on *)
  e_stats : stats;
}

val explore :
  ?sched:[ `Heap | `Wheel ] ->
  ?max_runs:int ->
  ?max_preemptions:int ->
  Scenarios.t ->
  verdict
(** Systematically explore one scenario. Defaults come from the
    scenario's {!Scenarios.bound}; raises [Invalid_argument] if the
    scenario has none ([sc_bound = None]). Uses the global sim creation
    hook, so explorations must not nest. *)

val clean : verdict -> bool
val flagged : verdict -> bool

val replay :
  ?sched:[ `Heap | `Wheel ] ->
  Scenarios.t ->
  schedule:string ->
  Scenarios.outcome * Hb.pair list
(** Re-run exactly one schedule by id (deterministic reproduction of an
    explorer finding), returning its outcome and the racing pairs
    observed along it. *)

val schedule_id : int array -> string
val parse_schedule_id : string -> int array option

val render : ?verbose:bool -> verdict -> string
(** Coverage line (exhaustive vs bounded, schedule and state counts)
    plus flagged schedules, racing pairs, and the replay hint. *)
