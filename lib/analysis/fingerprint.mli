(** Final-state fingerprint: the semantic end state of a run, reduced to
    a digest the race detector can compare across schedule
    perturbations. Only schedule-independent observables participate —
    application-level operation counts ({!stable_counters}), the
    surviving connection tables, recorded invariant violations (without
    their timestamps), and scenario-provided observable strings
    (payload digests). Two runs of a correct program under different
    same-timestamp orderings must produce {!equal} fingerprints; a
    difference is a race. *)

type t

val stable_counters : string list
(** Metric counters allowed into the fingerprint. Everything else
    (frame, ack, retransmission, read-call counts) is legitimately
    schedule-dependent and excluded. *)

val capture :
  ?observables:string list ->
  Uls_engine.Sim.t ->
  subs:(int * Uls_substrate.Substrate.t) list ->
  t
(** Capture after the run reached quiescence. [observables] are
    scenario-level facts (e.g. ["client0 digest=..."]); order is
    preserved, so scenarios should emit them deterministically. *)

val equal : t -> t -> bool

val first_difference : t -> t -> string option
(** [None] when equal; otherwise a one-line description of the first
    differing fingerprint line (the divergence report). *)

val lines : t -> string list
val digest : t -> string
val to_string : t -> string
