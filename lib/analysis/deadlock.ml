(* Deadlock diagnoser. After a `Quiescent run the event queue is empty:
   any fiber still parked in suspend can never resume. Daemon fibers
   (protocol dispatch loops, service fibers) park forever by design and
   are filtered out; what remains is application work that will never
   finish — a deadlock, reported as a named wait-for list instead of the
   silent hang a wall-clock system would give. *)

open Uls_engine

type report = {
  rep_at : Time.ns;  (* virtual time the run went quiescent *)
  rep_stuck : Sim.parked list;  (* non-daemon parked fibers, oldest first *)
}

let check sim =
  let stuck =
    List.filter (fun p -> not p.Sim.daemon) (Sim.blocked_report sim)
  in
  if stuck = [] then None else Some { rep_at = Sim.now sim; rep_stuck = stuck }

let render r =
  let header =
    Printf.sprintf
      "DEADLOCK at t=%dns: %d fiber(s) parked with an empty event queue"
      r.rep_at (List.length r.rep_stuck)
  in
  let line p =
    Printf.sprintf "  fiber %-24s waiting on %-24s since t=%dns" p.Sim.fiber
      p.Sim.label p.Sim.since
  in
  String.concat "\n" (header :: List.map line r.rep_stuck)
