(* Final-state fingerprint for the race detector. The whole point of
   schedule perturbation is that a *correct* run reaches the same
   semantic end state under every same-timestamp reordering, so the
   fingerprint may only include observables the protocol contract
   promises to be schedule-independent: application-level operation
   counts, the surviving connection table, recorded invariant
   violations, and whatever the scenario itself observed (payload
   digests). Timing-sensitive counters — frames, retransmissions,
   acks, read() call counts (reads may split differently) — are
   deliberately excluded: they legitimately differ between schedules
   and would drown real divergence in noise. *)

open Uls_engine

(* Counters whose value is fixed by the application's behaviour, not by
   scheduling: how many connects/accepts/writes the scenario performed,
   how many connections were torn down by transport failure, how many
   sends EMP abandoned. *)
let stable_counters =
  [
    "emp.send_failures";
    "sub.accepts";
    "sub.connects";
    "sub.resets";
    "sub.writes";
  ]

type t = {
  fp_lines : string list;
  fp_digest : string;
}

let lines t = t.fp_lines
let digest t = t.fp_digest

let capture ?(observables = []) sim ~subs =
  let metrics = Metrics.for_sim sim in
  let counters =
    Metrics.counters_snapshot metrics
    |> List.filter_map (fun (node, name, v) ->
           if List.mem name stable_counters then
             Some (Printf.sprintf "counter node=%d %s=%d" node name v)
           else None)
  in
  let conn_tables =
    List.map
      (fun (node, sub) ->
        let ids = Uls_substrate.Substrate.conn_ids sub in
        Printf.sprintf "conns node=%d [%s]" node
          (String.concat ";" (List.map string_of_int ids)))
      subs
  in
  let violations =
    List.map
      (fun v ->
        (* No timestamp: *when* a violation fired is schedule-dependent,
           *that* it fired is not. *)
        Printf.sprintf "violation %s: %s" v.Invariant.v_name
          v.Invariant.v_detail)
      (Invariant.violations (Invariant.for_sim sim))
  in
  let observables = List.map (fun o -> "observe " ^ o) observables in
  let fp_lines = counters @ conn_tables @ violations @ observables in
  { fp_lines; fp_digest = Digest.to_hex (Digest.string (String.concat "\n" fp_lines)) }

let equal a b = a.fp_digest = b.fp_digest

let first_difference a b =
  if equal a b then None
  else
    (* Walk the two line lists for the first mismatch; fall back to the
       digests if one is a prefix of the other. *)
    let rec walk la lb =
      match (la, lb) with
      | [], [] -> Printf.sprintf "digests differ (%s vs %s)" a.fp_digest b.fp_digest
      | x :: _, [] -> Printf.sprintf "extra line %S" x
      | [], y :: _ -> Printf.sprintf "missing line %S" y
      | x :: la', y :: lb' ->
        if String.equal x y then walk la' lb'
        else Printf.sprintf "%S vs %S" x y
    in
    Some (walk a.fp_lines b.fp_lines)

let to_string t =
  String.concat "\n" ((Printf.sprintf "fingerprint %s" t.fp_digest) :: t.fp_lines)
