(* The invariant suite: small, closed workloads the race detector runs
   under schedule perturbation. A scenario builds a cluster with the
   requested tie-break policy, enables the invariant monitors, drives a
   workload to quiescence, then runs the sanitizers and captures the
   final-state fingerprint. Clean scenarios must fingerprint identically
   under every seed; the buggy fixtures exist so CI can prove the
   detector still catches the bug class they encode. *)

open Uls_engine
module Cluster = Uls_bench.Cluster
module Sub = Uls_substrate.Substrate
module Conn = Uls_substrate.Conn
module Opt = Uls_substrate.Options
module E = Uls_emp.Endpoint
module Mem = Uls_host.Memory

type tiebreak = Sim.tiebreak_spec

type outcome = {
  fingerprint : Fingerprint.t;
  violations : Invariant.violation list;
  deadlock : Deadlock.report option;
  leaks : Sanitizer.finding list;
  stop : [ `Quiescent | `Time_limit | `Stopped ];
}

(* Opt-in to systematic exploration. [b_runs] caps how many schedules
   the explorer executes; [b_preemptions] caps deviations from FIFO per
   schedule (max_int means the explorer may claim exhaustiveness if the
   tree drains within budget); [b_run], when set, is a reduced-size
   variant of the workload so each of the hundreds of explored schedules
   stays cheap. *)
type bound = {
  b_runs : int;
  b_preemptions : int;
  b_run : (?sched:[ `Heap | `Wheel ] -> tiebreak -> outcome) option;
}

type t = {
  sc_name : string;
  sc_descr : string;
  sc_buggy : bool;
  sc_run : ?sched:[ `Heap | `Wheel ] -> tiebreak -> outcome;
  sc_bound : bound option;
}

(* Observables accumulate from concurrently finishing fibers, so their
   arrival order is schedule-dependent even when their contents are not:
   sort before fingerprinting. *)
let finish cluster ~conns ~observables stop =
  let sim = Cluster.sim cluster in
  let leaks = Sanitizer.scan ~conns:!conns cluster in
  let fingerprint =
    Fingerprint.capture
      ~observables:(List.sort compare !observables)
      sim
      ~subs:(Cluster.substrates cluster)
  in
  {
    fingerprint;
    violations = Invariant.violations (Invariant.for_sim sim);
    deadlock = Deadlock.check sim;
    leaks;
    stop;
  }

let start ?(n = 2) ?match_engine ?sched tiebreak =
  let cluster = Cluster.create ?match_engine ?sched ~tiebreak ~n () in
  Invariant.enable (Invariant.for_sim (Cluster.sim cluster));
  cluster

let read_exact conn need =
  let buf = Buffer.create need in
  let rec go () =
    if Buffer.length buf < need then begin
      let chunk = Conn.read conn (need - Buffer.length buf) in
      if chunk <> "" then begin
        Buffer.add_string buf chunk;
        go ()
      end
    end
  in
  go ();
  Buffer.contents buf

let pattern ~client n =
  String.init n (fun j -> Char.chr (Char.code 'a' + ((client * 31 + j * 7) mod 26)))

let hex s = Digest.to_hex (Digest.string s)

(* --- eager-echo: streaming mode, two clients echoed by one server --- *)

let eager_echo ?match_engine ?opts
    ?(writes = [ 1_900; 4_096; 512; 9_000; 64; 2_048 ]) ?sched tiebreak =
  let cluster = start ~n:3 ?match_engine ?sched tiebreak in
  let sim = Cluster.sim cluster in
  let conns = ref [] and obs = ref [] in
  let server = Cluster.substrate ?opts cluster 0 in
  let total = List.fold_left ( + ) 0 writes in
  Sim.spawn sim ~name:"echo-server" (fun () ->
      let l = Sub.listen server ~port:80 ~backlog:4 in
      for _ = 1 to 2 do
        let conn, _ = Sub.accept server l in
        conns := (0, conn) :: !conns;
        Sim.spawn sim ~name:"echo-worker" (fun () ->
            let rec pump () =
              let chunk = Conn.read conn 8_192 in
              if chunk <> "" then begin
                Conn.write conn chunk;
                pump ()
              end
            in
            pump ();
            Conn.close conn)
      done;
      Sub.close_listener server l);
  for client = 1 to 2 do
    let sub = Cluster.substrate ?opts cluster client in
    Sim.spawn sim ~name:(Printf.sprintf "echo-client-%d" client) (fun () ->
        Sim.delay sim (Time.us 20);
        let conn = Sub.connect sub { Uls_api.Sockets_api.node = 0; port = 80 } in
        conns := (client, conn) :: !conns;
        List.iter (fun n -> Conn.write conn (pattern ~client n)) writes;
        let back = read_exact conn total in
        obs :=
          Printf.sprintf "echo client=%d bytes=%d digest=%s" client
            (String.length back) (hex back)
          :: !obs;
        Conn.close conn)
  done;
  let stop = Cluster.run cluster in
  finish cluster ~conns ~observables:obs stop

(* --- dg-rendezvous: datagram mode, large writes through the
   substrate's request/grant path from two clients at once (the surface
   of the shared-grant-queue bug this suite's fixture re-introduces) --- *)

let dg_rendezvous ?sched tiebreak =
  let cluster = start ~n:3 ?sched tiebreak in
  let sim = Cluster.sim cluster in
  let conns = ref [] and obs = ref [] in
  let opts = Opt.datagram in
  let server = Cluster.substrate ~opts cluster 0 in
  let msg_bytes = 96_000 (* > eager_max: forced onto rendezvous *) in
  let msgs = 3 in
  Sim.spawn sim ~name:"dg-server" (fun () ->
      let l = Sub.listen server ~port:90 ~backlog:4 in
      for _ = 1 to 2 do
        let conn, peer = Sub.accept server l in
        conns := (0, conn) :: !conns;
        Sim.spawn sim ~name:"dg-reader" (fun () ->
            for k = 1 to msgs do
              let msg = Conn.read conn msg_bytes in
              obs :=
                Printf.sprintf "dg from=%d msg=%d bytes=%d digest=%s"
                  peer.Uls_api.Sockets_api.node k (String.length msg) (hex msg)
                :: !obs
            done;
            ignore (Conn.read conn 1);
            Conn.close conn)
      done;
      Sub.close_listener server l);
  for client = 1 to 2 do
    let sub = Cluster.substrate ~opts cluster client in
    Sim.spawn sim ~name:(Printf.sprintf "dg-client-%d" client) (fun () ->
        Sim.delay sim (Time.us 20);
        let conn = Sub.connect sub { Uls_api.Sockets_api.node = 0; port = 90 } in
        conns := (client, conn) :: !conns;
        for k = 1 to msgs do
          Conn.write conn (pattern ~client:(client * 10 + k) msg_bytes)
        done;
        Conn.close conn)
  done;
  let stop = Cluster.run cluster in
  finish cluster ~conns ~observables:obs stop

(* --- connect-churn: connection setup/teardown cycles reclaim every
   descriptor (the 2N+3 provisioning of §5.3 against the leak scans) --- *)

let connect_churn ?opts ?sched tiebreak =
  let cluster = start ~n:2 ?sched tiebreak in
  let sim = Cluster.sim cluster in
  let conns = ref [] and obs = ref [] in
  let server = Cluster.substrate ?opts cluster 0 in
  let client = Cluster.substrate ?opts cluster 1 in
  let cycles = 4 in
  Sim.spawn sim ~name:"churn-server" (fun () ->
      let l = Sub.listen server ~port:70 ~backlog:2 in
      for _ = 1 to cycles do
        let conn, _ = Sub.accept server l in
        conns := (0, conn) :: !conns;
        let msg = read_exact conn 24 in
        Conn.write conn (hex msg);
        ignore (Conn.read conn 1);
        Conn.close conn
      done;
      Sub.close_listener server l);
  Sim.spawn sim ~name:"churn-client" (fun () ->
      Sim.delay sim (Time.us 20);
      for k = 1 to cycles do
        let conn = Sub.connect client { Uls_api.Sockets_api.node = 0; port = 70 } in
        conns := (1, conn) :: !conns;
        Conn.write conn (pattern ~client:k 24);
        let reply = read_exact conn 32 in
        obs := Printf.sprintf "churn cycle=%d reply=%s" k reply :: !obs;
        Conn.close conn
      done);
  let stop = Cluster.run cluster in
  finish cluster ~conns ~observables:obs stop

(* --- raw-EMP grant fixture -------------------------------------------
   A miniature rendezvous protocol over bare EMP. Two writer fibers on
   node 1 each request a transfer; the receiver on node 0 posts a
   per-request receive buffer tagged with the request id and answers
   with a grant naming that id. The [routed] variant delivers each grant
   to the mailbox of the writer that requested it (per-rid routing — the
   PR 2 fix); the buggy variant pushes all grants through one shared
   mailbox, so whichever writer pops first claims whatever grant arrived
   first. Under FIFO dispatch the orders happen to agree; under seeded
   shuffle the writers' wake-up order at the gate decouples from the
   grant arrival order and the pairing crosses — caught both by the
   [scenario.grant_routing] invariant and by fingerprint divergence. *)

let grant_fixture ~routed ?sched tiebreak =
  let cluster = start ~n:2 ?sched tiebreak in
  let sim = Cluster.sim cluster in
  let inv = Invariant.for_sim sim in
  let e0 = Cluster.emp cluster 0 in
  let e1 = Cluster.emp cluster 1 in
  let req_tag = 900 and grant_tag = 901 and data_tag = 910 in
  let size = 512 in
  let writers = 2 in
  let obs = ref [] in
  (* Receiver: one handler fiber per expected request. *)
  for i = 0 to writers - 1 do
    Sim.spawn sim ~name:(Printf.sprintf "grant-server-%d" i) (fun () ->
        let req_reg = Mem.alloc 64 in
        let req_rv = E.post_recv e0 ~src:1 ~tag:req_tag req_reg ~off:0 ~len:64 in
        let len, _, _ = E.wait_recv e0 req_rv in
        let rid, sz =
          match String.split_on_char ':' (Mem.sub_string req_reg ~off:0 ~len) with
          | [ a; b ] -> (int_of_string a, int_of_string b)
          | _ -> failwith "grant fixture: malformed request"
        in
        let data_reg = Mem.alloc sz in
        let data_rv =
          E.post_recv e0 ~src:1 ~tag:(data_tag + rid) data_reg ~off:0 ~len:sz
        in
        let grant = Mem.of_string (string_of_int rid) in
        E.wait_send e0
          (E.post_send e0 ~dst:1 ~tag:grant_tag grant ~off:0
             ~len:(Mem.length grant));
        let dlen, _, _ = E.wait_recv e0 data_rv in
        let payload = Mem.sub_string data_reg ~off:0 ~len:dlen in
        let writer =
          if dlen > 0 then Char.code payload.[0] - Char.code '0' else -1
        in
        Invariant.check inv ~name:"scenario.grant_routing" (writer = rid)
          (fun () ->
            Printf.sprintf
              "grant for request %d consumed by writer %d (grants crossed)"
              rid writer);
        obs :=
          Printf.sprintf "grant rid=%d len=%d writer=%d digest=%s" rid dlen
            writer (hex payload)
          :: !obs)
  done;
  (* Client node: grant delivery, then the writers. *)
  let gate = Cond.create ~label:"grant-gate" sim in
  let shared = Mailbox.create ~label:"shared-grant-queue" sim in
  let routed_boxes =
    Array.init writers (fun i ->
        Mailbox.create ~label:(Printf.sprintf "grant-queue-%d" i) sim)
  in
  let grants_seen = ref 0 in
  for i = 0 to writers - 1 do
    Sim.spawn sim ~name:(Printf.sprintf "grant-pump-%d" i) (fun () ->
        let reg = Mem.alloc 16 in
        let rv = E.post_recv e1 ~src:0 ~tag:grant_tag reg ~off:0 ~len:16 in
        let len, _, _ = E.wait_recv e1 rv in
        let rid = int_of_string (Mem.sub_string reg ~off:0 ~len) in
        if routed then Mailbox.send routed_boxes.(rid) rid
        else Mailbox.send shared rid;
        incr grants_seen;
        (* Release every writer at the same instant once all grants are
           queued: their wake-up order is exactly what the shuffle
           perturbs. *)
        if !grants_seen = writers then Cond.broadcast gate)
  done;
  for c = 0 to writers - 1 do
    Sim.spawn sim ~name:(Printf.sprintf "grant-writer-%d" c) (fun () ->
        let req = Mem.of_string (Printf.sprintf "%d:%d" c size) in
        E.wait_send e1
          (E.post_send e1 ~dst:0 ~tag:req_tag req ~off:0 ~len:(Mem.length req));
        while !grants_seen < writers do
          Cond.wait gate
        done;
        let grid =
          if routed then Mailbox.recv routed_boxes.(c) else Mailbox.recv shared
        in
        let data = Mem.of_string (String.make size (Char.chr (Char.code '0' + c))) in
        E.wait_send e1
          (E.post_send e1 ~dst:0 ~tag:(data_tag + grid) data ~off:0 ~len:size))
  done;
  let stop = Cluster.run cluster in
  finish cluster ~conns:(ref []) ~observables:obs stop

(* --- fabric-churn: fleet arrivals over the sharded serving fabric ---
   Unlike the raw-substrate scenarios above, this one drives the whole
   stack-on-top — ring placement, reuseport demux, per-cell schedulers —
   through Fleet's open-loop arrival process, and fingerprints the
   report's schedule-independent facts (placement, completion and
   failure counts, cell states). Fleet owns its cluster, so the
   sanitizer/invariant channels are empty here; divergence of the
   observables across tie-breaks is the signal. *)

let fabric_churn ?(sched = `Heap) tiebreak =
  let r =
    Uls_bench.Fleet.run
      {
        Uls_bench.Fleet.default with
        cells = 3;
        shards = 2;
        conns = 32;
        rate = 20_000.;
        size = 96;
        client_nodes = 2;
        seed = 11;
        tiebreak = Some tiebreak;
        event_sched = sched;
      }
  in
  let open Uls_bench.Fleet in
  let obs =
    Printf.sprintf
      "fleet established=%d completed=%d shed=%d refused=%d resets=%d \
       errors=%d mismatches=%d no_route=%d remapped=%d quiesced=%b intact=%b"
      r.established r.completed r.shed r.refused r.resets r.errors
      r.mismatches r.no_route r.remapped r.completed_run r.intact
    :: Array.to_list
         (Array.mapi
            (fun id c ->
              Printf.sprintf "cell %d state=%s conns=%d completed=%d shed=%d"
                id c.c_state c.c_connects c.c_completed c.c_shed)
            r.per_cell)
  in
  {
    fingerprint = Fingerprint.capture ~observables:obs (Sim.create ()) ~subs:[];
    violations = [];
    deadlock = None;
    leaks = [];
    stop = (if r.completed_run then `Quiescent else `Time_limit);
  }

(* --- rings-firehose: two producers, one reaper, one shared tx ring ---
   Two producer fibers interleave batched submissions ([post_sendv])
   into the same endpoint submission ring while a single reaper retires
   completions through the completion ring — the SQ cursor handoff,
   doorbell arming and CQ reaping are exactly the shared state the
   shuffle perturbs. Every message is tag-addressed, so a cross-producer
   descriptor mixup surfaces as a digest mismatch at the receiver.
   Doorbell/fetch-batch counts are schedule-dependent (a doorbell rung
   mid-fetch coalesces), so the fingerprint takes only the
   schedule-independent ring facts: submitted and completed. *)

let rings_firehose ?(msgs = 24) ?(batch = 4) ?sched tiebreak =
  let cluster = start ~n:2 ?sched tiebreak in
  let sim = Cluster.sim cluster in
  let obs = ref [] in
  let e0 = Cluster.emp cluster 0 and e1 = Cluster.emp cluster 1 in
  let producers = 2 and size = 96 in
  let payload p i =
    String.init size (fun j ->
        Char.chr (Char.code 'a' + (((p * 7) + (i * 3) + j) mod 26)))
  in
  (* Receiver: one fiber per producer, descriptors pre-posted through
     the fill ring so no message ever races a missing descriptor. *)
  for p = 0 to producers - 1 do
    Sim.spawn sim
      ~name:(Printf.sprintf "fire-recv-%d" p)
      (fun () ->
        let specs =
          List.init msgs (fun i -> (0, (p * 100) + i, Mem.alloc size, 0, size))
        in
        let rvs = E.post_recv_batch e1 specs in
        List.iteri
          (fun i rv ->
            let len, _, _ = E.wait_recv e1 rv in
            let _, _, reg, _, _ = List.nth specs i in
            let got = Mem.sub_string reg ~off:0 ~len in
            obs :=
              Printf.sprintf "fire p=%d i=%d len=%d ok=%b digest=%s" p i len
                (got = payload p i) (hex got)
              :: !obs)
          rvs)
  done;
  let pending = Mailbox.create ~label:"fire-pending" sim in
  let total = producers * msgs in
  for p = 0 to producers - 1 do
    Sim.spawn sim
      ~name:(Printf.sprintf "fire-prod-%d" p)
      (fun () ->
        Sim.delay sim (Time.us 30);
        let i = ref 0 in
        while !i < msgs do
          let k = min batch (msgs - !i) in
          let specs =
            List.init k (fun j ->
                let idx = !i + j in
                (1, (p * 100) + idx, Mem.of_string (payload p idx), 0, size))
          in
          let sends = E.post_sendv e0 specs in
          List.iter (fun s -> Mailbox.send pending s) sends;
          i := !i + k
        done)
  done;
  Sim.spawn sim ~name:"fire-reaper" (fun () ->
      let retired = ref 0 in
      while !retired < total do
        let s = Mailbox.recv pending in
        E.wait_send e0 s;
        incr retired;
        ignore (E.reap_sent e0)
      done;
      obs := Printf.sprintf "fire reaper retired=%d" !retired :: !obs;
      match E.tx_ring_stats e0 with
      | Some s ->
        obs :=
          Printf.sprintf "fire ring submitted=%d completed=%d"
            s.Uls_rings.Ringpair.submitted s.Uls_rings.Ringpair.completed
          :: !obs
      | None -> ());
  let stop = Cluster.run cluster in
  finish cluster ~conns:(ref []) ~observables:obs stop

(* --- lost-signal: a wakeup that only gets lost off the FIFO path ------
   The canonical lost-wakeup: a waiter parks on a condition and a
   signaller fires exactly once, both scheduled at the same instant.
   Under FIFO the waiter parks first and the signal lands; if the
   signaller wins the tie the signal finds no waiter and is dropped, and
   the waiter parks forever — a deadlock that exists on exactly one of
   the two possible schedules. Seed sampling finds it with probability
   1/2 per seed; the explorer proves both schedules. Runs on a bare sim
   (no cluster) so the schedule tree is exactly the two fibers. *)

let lost_signal ?sched tiebreak =
  let sim = Sim.create ?sched () in
  Sim.set_tiebreak sim tiebreak;
  Invariant.enable (Invariant.for_sim sim);
  let obs = ref [] in
  let ready = Cond.create ~label:"lost-signal-ready" sim in
  Sim.spawn sim ~name:"ls-waiter" (fun () ->
      Cond.wait ready;
      obs := "ls waiter woke" :: !obs);
  Sim.spawn sim ~name:"ls-signaller" (fun () ->
      Cond.signal ready;
      obs := "ls signalled" :: !obs);
  let stop = Sim.run sim in
  {
    fingerprint =
      Fingerprint.capture ~observables:(List.sort compare !obs) sim ~subs:[];
    violations = Invariant.violations (Invariant.for_sim sim);
    deadlock = Deadlock.check sim;
    leaks = [];
    stop;
  }

(* --- registry --------------------------------------------------------- *)

(* Exploration bounds. Micro fixtures get an unbounded preemption cap —
   their whole schedule tree fits in the run budget, so the explorer can
   claim exhaustiveness. Full protocol scenarios get a preemption-bounded
   sweep (every schedule within [b_preemptions] deviations of FIFO),
   with reduced-size workloads where each run would otherwise be too
   slow to afford hundreds of schedules. *)

(* Compact substrate profile for exploration runs: the object under
   test is the schedule tree, not bulk payload, and the default
   32-credit x 64 KB provisioning makes each of the hundreds of runs
   fault megabytes of fresh buffer pages (the whole sweep went from
   seconds to tens of seconds of kernel time without this). *)
let explore_opts =
  { Opt.data_streaming with Opt.credits = 4; buffer_size = 4_096 }

let exhaustive runs = Some { b_runs = runs; b_preemptions = max_int; b_run = None }

let preemption_bounded ?run ~runs ~preemptions () =
  Some { b_runs = runs; b_preemptions = preemptions; b_run = run }

let clean_suite =
  [
    {
      sc_name = "eager-echo";
      sc_descr = "streaming echo through credit flow control, 2 clients";
      sc_buggy = false;
      sc_run = eager_echo ?match_engine:None ?opts:None ?writes:None;
      sc_bound =
        preemption_bounded ~runs:160 ~preemptions:1
          ~run:
            (eager_echo ?match_engine:None ~opts:explore_opts
               ~writes:[ 512; 64 ])
          ();
    };
    {
      sc_name = "hashed-echo";
      sc_descr = "eager-echo over the hashed match engine: two RSS-steered \
                  receive queues with concurrent dispatcher fibers";
      sc_buggy = false;
      sc_run =
        eager_echo ~match_engine:Uls_nic.Match_list.Hashed ?opts:None
          ?writes:None;
      sc_bound =
        preemption_bounded ~runs:160 ~preemptions:1
          ~run:
            (eager_echo ~match_engine:Uls_nic.Match_list.Hashed
               ~opts:explore_opts ~writes:[ 512; 64 ])
          ();
    };
    {
      sc_name = "dg-rendezvous";
      sc_descr = "datagram large messages over the request/grant path";
      sc_buggy = false;
      sc_run = dg_rendezvous;
      sc_bound = None;
    };
    {
      sc_name = "connect-churn";
      sc_descr = "connect/transfer/close cycles reclaim all descriptors";
      sc_buggy = false;
      sc_run = connect_churn ?opts:None;
      sc_bound =
        preemption_bounded ~runs:160 ~preemptions:1
          ~run:(connect_churn ~opts:explore_opts)
          ();
    };
    {
      sc_name = "rendezvous-grants";
      sc_descr = "raw-EMP grant protocol with per-request grant routing";
      sc_buggy = false;
      sc_run = grant_fixture ~routed:true;
      sc_bound = preemption_bounded ~runs:256 ~preemptions:2 ();
    };
    {
      sc_name = "rings-firehose";
      sc_descr = "two producers batch-submitting into one shared tx ring, \
                  one reaper retiring completions";
      sc_buggy = false;
      sc_run = rings_firehose ?msgs:None ?batch:None;
      sc_bound =
        preemption_bounded ~runs:160 ~preemptions:1
          ~run:(rings_firehose ~msgs:6 ~batch:2)
          ();
    };
    {
      sc_name = "fabric-churn";
      sc_descr = "fleet arrivals over the sharded fabric: placement + \
                  completion counts are schedule-independent";
      sc_buggy = false;
      sc_run = fabric_churn;
      sc_bound = None;
    };
  ]

let buggy_suite =
  [
    {
      sc_name = "shared-grant-queue";
      sc_descr =
        "re-introduced PR 2 bug: grants popped from one shared mailbox";
      sc_buggy = true;
      sc_run = grant_fixture ~routed:false;
      sc_bound = preemption_bounded ~runs:256 ~preemptions:2 ();
    };
    {
      sc_name = "lost-signal";
      sc_descr =
        "lost-wakeup fixture: a signal that fires before its waiter parks \
         is dropped — deadlock on exactly one of two schedules";
      sc_buggy = true;
      sc_run = lost_signal;
      sc_bound = exhaustive 64;
    };
  ]

let all = clean_suite @ buggy_suite
let find name = List.find_opt (fun sc -> sc.sc_name = name) all
