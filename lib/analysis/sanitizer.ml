(* End-of-run leak scans. The in-line invariant checks (Invariant.check
   calls inside EMP and the substrate) catch violations at the offending
   transition; these scans catch what only shows at quiescence — state
   that should have been reclaimed and wasn't. Each finding is also
   recorded in the simulation's Invariant monitor so it lands in the
   fingerprint. *)

open Uls_engine

type finding = {
  f_check : string;  (* invariant name, e.g. "emp.desc_conservation" *)
  f_node : int;
  f_detail : string;
}

let record inv f =
  Invariant.fail inv ~name:f.f_check
    (Printf.sprintf "node %d: %s" f.f_node f.f_detail)

let scan ?(conns = []) cluster =
  let sim = Uls_bench.Cluster.sim cluster in
  let inv = Invariant.for_sim sim in
  let findings = ref [] in
  let add f =
    findings := f :: !findings;
    record inv f
  in
  (* Descriptor conservation: every receive descriptor ever posted is
     either completed (delivered, cancelled, or torn down by reset) or
     still live on the match list. A posted count exceeding
     completed + live means a descriptor vanished without completion —
     the user-level analogue of a kernel skb leak. *)
  List.iter
    (fun (node, ep) ->
      let d = Uls_emp.Endpoint.descriptor_stats ep in
      let balance =
        d.Uls_emp.Endpoint.descs_completed + d.Uls_emp.Endpoint.descs_live
      in
      if d.Uls_emp.Endpoint.descs_posted <> balance then
        add
          {
            f_check = "emp.desc_conservation";
            f_node = node;
            f_detail =
              Printf.sprintf "posted=%d but completed=%d + live=%d"
                d.Uls_emp.Endpoint.descs_posted
                d.Uls_emp.Endpoint.descs_completed
                d.Uls_emp.Endpoint.descs_live;
          })
    (Uls_bench.Cluster.endpoints cluster);
  (* Closed-connection descriptor leak: close/reset must unpost every
     receive slot of the connection (the 2N+3 reclamation of §5.3). A
     still-posted slot on a closed connection can never be reclaimed. *)
  List.iter
    (fun (node, conn) ->
      if Uls_substrate.Conn.is_closed conn || Uls_substrate.Conn.is_reset conn
      then begin
        let leaked = Uls_substrate.Conn.leaked_slots conn in
        if leaked > 0 then
          add
            {
              f_check = "sub.desc_leak";
              f_node = node;
              f_detail =
                Printf.sprintf "conn %d closed with %d receive slots still posted"
                  (Uls_substrate.Conn.id conn) leaked;
            }
      end)
    conns;
  (* Send-pool occupancy: at quiescence every ring-buffer send is either
     acknowledged or abandoned (failed). A slot still "in flight" holds
     a registered memory region that no completion will ever release. *)
  List.iter
    (fun pool ->
      let stuck = Uls_substrate.Sendpool.in_flight pool in
      if stuck > 0 then
        add
          {
            f_check = "sub.sendpool_leak";
            f_node = -1;
            f_detail =
              Printf.sprintf "%d send-pool slots still in flight at quiescence"
                stuck;
          })
    (Uls_substrate.Sendpool.pools_for_sim sim);
  List.rev !findings

let render findings =
  match findings with
  | [] -> "sanitizers: clean"
  | fs ->
    String.concat "\n"
      (List.map
         (fun f -> Printf.sprintf "LEAK [%s] node=%d %s" f.f_check f.f_node f.f_detail)
         fs)
