(** Schedule-perturbation race detector.

    Runs a scenario once under FIFO same-timestamp dispatch (the
    baseline) and [seeds] more times under seeded-shuffled dispatch
    ({!Uls_engine.Sim.set_tiebreak}), then compares final-state
    fingerprints and collects invariant violations and deadlock reports.
    The perturbation model reorders {e same-timestamp} tasks only —
    event timestamps never move — so it explores exactly the
    nondeterminism a real scheduler is allowed, and every finding
    replays deterministically from its seed. *)

type run = {
  r_seed : int option;  (** [None] is the FIFO baseline *)
  r_outcome : Scenarios.outcome;
}

type verdict = {
  v_scenario : Scenarios.t;
  v_baseline : run;
  v_perturbed : run list;
  v_divergent : (int * string) list;
      (** seeds whose fingerprint differs from the baseline, with the
          first differing fingerprint line *)
  v_violating : (int * string) list;
      (** seeds that recorded invariant violations ([-1] = baseline),
          with the first violation *)
  v_deadlocked : int list;
      (** seeds whose run left non-daemon fibers parked *)
}

val run_scenario : ?seeds:int -> ?sched:[ `Heap | `Wheel ] -> Scenarios.t -> verdict
(** Default 16 perturbed runs (seeds [0 .. 15]). [sched] selects the
    simulator event queue for every run (default heap); verdicts must
    not depend on it. *)

val run_until_flagged :
  ?max_seeds:int -> ?sched:[ `Heap | `Wheel ] -> Scenarios.t -> verdict
(** Like {!run_scenario} but stops adding seeds as soon as the verdict
    is {!flagged} — the smoke-mode driver for buggy fixtures, which only
    need one catching seed. *)

val clean : verdict -> bool
(** No divergence, no violations, no deadlock — what every clean
    scenario must satisfy. *)

val flagged : verdict -> bool
(** [not (clean v)] — what every buggy fixture must satisfy (the
    detector still catches it). *)

val replay : ?sched:[ `Heap | `Wheel ] -> Scenarios.t -> seed:int -> Scenarios.outcome
(** Re-run one scenario under one seed (deterministic reproduction). *)

val render : ?verbose:bool -> verdict -> string
