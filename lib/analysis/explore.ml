(* DPOR-style systematic schedule exploration.

   The sampling detector (Race) perturbs same-timestamp dispatch order
   with seeded shuffles and hopes a bad interleaving falls out. This
   module replaces hope with enumeration for scenarios that opt in
   (Scenarios.sc_bound): it drives the scenario under the engine's
   [`Controlled] tie-break, where every same-timestamp tie is an
   explicit decision point, and walks the schedule tree with a stateless
   depth-first search.

   Enumeration. A schedule is identified by its decision prefix: the
   list of choice indices taken at decision points 0..k-1, with the
   default (index 0 = FIFO order) everywhere after. After running a
   prefix, the search expands alternatives only at decision points at
   depth >= |prefix| — the classic duplicate-free stateless-DFS
   expansion rule, so every choice sequence in the bounded space is
   executed exactly once.

   Pruning (sleep-set flavour). Before expanding alternative task [a]
   at decision [i], the search checks the dispatch log of the run it
   just observed: if [a]'s footprint (the sync-object uids it touched
   when it eventually ran, recorded by Hb) is non-empty and disjoint
   from the footprints of every task dispatched between [i] and [a]'s
   actual position — all of which must themselves have non-empty
   footprints — then running [a] first commutes with all of them, the
   two schedules are Mazurkiewicz-equivalent, and the alternative is
   skipped. Tasks with empty footprints performed no tracked sync
   operation; they may still have touched shared state through plain
   refs, so they are conservatively dependent on everything — pruning
   never skips a schedule it cannot prove equivalent. The independence
   model (state flows through sync primitives) is documented in
   DESIGN.md §11.

   Bounding. Exhaustive enumeration is feasible for micro fixtures; a
   protocol scenario's tree explodes. Each scenario's bound carries a
   preemption cap — the maximum number of non-default (non-FIFO)
   choices per schedule — and a run budget. Within the cap the sweep is
   complete (every schedule at most P deviations from FIFO is visited),
   the CHESS observation being that real schedule bugs almost always
   need very few preemptions. Coverage is reported honestly: a verdict
   says "exhaustive" only when the tree drained with no alternative
   skipped by cap or budget.

   Every flagged finding carries its schedule id (the sparse decision
   prefix, e.g. "29:1"), replayable deterministically with
   [races --scenario S --explore --replay-schedule 29:1]. *)

open Uls_engine

type finding =
  | Divergent of string  (* first differing fingerprint line *)
  | Violating of string  (* first invariant violation, rendered *)
  | Deadlocked of Deadlock.report

type flagged = {
  fl_schedule : string;  (* schedule id: dotted decision prefix *)
  fl_finding : finding;
  fl_preemptions : int;  (* deviations from FIFO in this schedule *)
}

type stats = {
  st_runs : int;  (* schedules actually executed *)
  st_decision_points : int;  (* total decision points encountered *)
  st_max_depth : int;  (* deepest decision point seen *)
  st_pruned : int;  (* alternatives skipped as independence-equivalent *)
  st_capped : int;  (* alternatives skipped by the preemption cap *)
  st_truncated : int;  (* frontier entries abandoned when the run budget ran out *)
  st_distinct_states : int;  (* distinct end-state fingerprints *)
  st_exhaustive : bool;
      (* the whole tree was enumerated: frontier drained, nothing capped
         or truncated — "all N inequivalent schedules verified" *)
}

type verdict = {
  e_scenario : Scenarios.t;
  e_baseline : Scenarios.outcome;  (* the all-defaults (FIFO) schedule *)
  e_flagged : flagged list;
  e_pairs : Hb.pair list;
      (* racing pairs from the first flagged run: the conflicting
         operations the divergence hinged on *)
  e_stats : stats;
}

(* Schedule ids are sparse: "29:1,38:2" = at decision point 29 take
   index 1, at 38 take index 2, FIFO (index 0) everywhere else. A child
   prefix always ends in a non-default choice, so the sparse form is
   lossless including length. *)
let schedule_id prefix =
  let parts = ref [] in
  Array.iteri
    (fun i c -> if c <> 0 then parts := Printf.sprintf "%d:%d" i c :: !parts)
    prefix;
  if !parts = [] then "fifo" else String.concat "," (List.rev !parts)

let parse_schedule_id s =
  if s = "fifo" then Some [||]
  else
    try
      let pairs =
        List.map
          (fun p ->
            match String.split_on_char ':' p with
            | [ a; b ] -> (int_of_string a, int_of_string b)
            | _ -> raise Exit)
          (String.split_on_char ',' s)
      in
      let len = 1 + List.fold_left (fun m (p, _) -> max m p) (-1) pairs in
      let a = Array.make len 0 in
      List.iter
        (fun (p, c) ->
          if p < 0 || c <= 0 then raise Exit;
          a.(p) <- c)
        pairs;
      Some a
    with _ -> None

let preemptions prefix = Array.fold_left (fun n c -> if c <> 0 then n + 1 else n) 0 prefix

(* --- one controlled run ------------------------------------------------- *)

type decision = {
  d_enabled : int array;  (* task seqs sharing the instant, FIFO order *)
  d_chosen : int;  (* index taken *)
  d_pos : int;  (* dispatch index of the chosen task *)
}

(* Run the scenario once under the decision prefix (defaults beyond it).
   Returns the outcome, the decisions actually encountered (oldest
   first) and the attached happens-before tracker. Uses the global sim
   creation hook, so explorations cannot nest. *)
let run_once (run_fn : ?sched:[ `Heap | `Wheel ] -> Scenarios.tiebreak -> Scenarios.outcome)
    ?sched prefix =
  let hb = ref None in
  Sim.set_create_hook
    (Some
       (fun sim ->
         (* first sim created inside the run function is the scenario's *)
         if !hb = None then hb := Some (Hb.attach sim)));
  let decisions = ref [] in
  let depth = ref 0 in
  let choose enabled =
    let i = !depth in
    incr depth;
    let c = if i < Array.length prefix then prefix.(i) else 0 in
    let c = if c < 0 || c >= Array.length enabled then 0 else c in
    let pos = match !hb with Some h -> Hb.dispatch_count h | None -> 0 in
    decisions := { d_enabled = enabled; d_chosen = c; d_pos = pos } :: !decisions;
    c
  in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Sim.set_create_hook None)
      (fun () -> run_fn ?sched (`Controlled choose))
  in
  (outcome, List.rev !decisions, !hb)

(* --- the search --------------------------------------------------------- *)

let judge ~baseline (outcome : Scenarios.outcome) =
  match outcome.Scenarios.violations with
  | v :: _ -> Some (Violating (Invariant.string_of_violation v))
  | [] -> (
    match outcome.Scenarios.deadlock with
    | Some rep -> Some (Deadlocked rep)
    | None -> (
      match baseline with
      | None -> None
      | Some base -> (
        match
          Fingerprint.first_difference base.Scenarios.fingerprint
            outcome.Scenarios.fingerprint
        with
        | Some diff -> Some (Divergent diff)
        | None -> None)))

(* Is running [alt_seq] at dispatch position [from_pos] instead of at
   its observed position provably equivalent? True iff its footprint is
   non-empty and disjoint from every (non-empty) footprint dispatched
   in between. *)
let equivalent_alternative log ~from_pos ~alt_seq =
  let n = Array.length log in
  let alt_pos = ref (-1) in
  (let i = ref from_pos in
   while !alt_pos < 0 && !i < n do
     if fst log.(!i) = alt_seq then alt_pos := !i;
     incr i
   done);
  if !alt_pos < 0 then false  (* never ran (stopped early): must explore *)
  else begin
    let alt_fp = snd log.(!alt_pos) in
    if alt_fp = [] then false  (* untracked effects: conservatively dependent *)
    else begin
      let independent = ref true in
      let i = ref from_pos in
      while !independent && !i < !alt_pos do
        let fp = snd log.(!i) in
        if fp = [] || List.exists (fun u -> List.mem u alt_fp) fp then
          independent := false;
        incr i
      done;
      !independent
    end
  end

let explore ?sched ?max_runs ?max_preemptions (sc : Scenarios.t) =
  let bound =
    match sc.Scenarios.sc_bound with
    | Some b -> b
    | None ->
      invalid_arg
        (Printf.sprintf "Explore: scenario %s has no exploration bound"
           sc.Scenarios.sc_name)
  in
  let budget = Option.value max_runs ~default:bound.Scenarios.b_runs in
  let cap = Option.value max_preemptions ~default:bound.Scenarios.b_preemptions in
  let run_fn =
    match bound.Scenarios.b_run with
    | Some f -> f
    | None -> sc.Scenarios.sc_run
  in
  let frontier = Stack.create () in
  Stack.push [||] frontier;
  let runs = ref 0 in
  let decision_points = ref 0 in
  let max_depth = ref 0 in
  let pruned = ref 0 in
  let capped = ref 0 in
  let states = Hashtbl.create 64 in
  let baseline = ref None in
  let flagged_acc = ref [] in
  let pairs_acc = ref [] in
  while (not (Stack.is_empty frontier)) && !runs < budget do
    let prefix = Stack.pop frontier in
    let outcome, decisions, hb = run_once run_fn ?sched prefix in
    incr runs;
    if !baseline = None then baseline := Some outcome;
    Hashtbl.replace states (Fingerprint.digest outcome.Scenarios.fingerprint) ();
    let base = if !runs = 1 then None else !baseline in
    (match judge ~baseline:base outcome with
    | Some f ->
      flagged_acc :=
        {
          fl_schedule = schedule_id prefix;
          fl_finding = f;
          fl_preemptions = preemptions prefix;
        }
        :: !flagged_acc;
      if !pairs_acc = [] then
        pairs_acc := (match hb with Some h -> Hb.pairs h | None -> [])
    | None -> ());
    (* expansion: alternatives at decision points this run opened *)
    let log = match hb with Some h -> Hb.dispatch_log h | None -> [||] in
    let plen = Array.length prefix in
    let base_preempt = preemptions prefix in
    List.iteri
      (fun i d ->
        incr decision_points;
        if i + 1 > !max_depth then max_depth := i + 1;
        if i >= plen then
          for a = 0 to Array.length d.d_enabled - 1 do
            if a <> d.d_chosen then
              if base_preempt + (if a <> 0 then 1 else 0) > cap then incr capped
              else if
                equivalent_alternative log ~from_pos:d.d_pos
                  ~alt_seq:d.d_enabled.(a)
              then incr pruned
              else begin
                let child = Array.make (i + 1) 0 in
                Array.blit prefix 0 child 0 plen;
                (* defaults between |prefix| and i are already 0 *)
                child.(i) <- a;
                Stack.push child frontier
              end
          done)
      decisions;
    (match hb with Some h -> Hb.detach h | None -> ());
    (* Each run builds and abandons a full simulation (cluster state,
       buffers, the tracker's clock arrays); across hundreds of runs the
       dead heap outgrows what the incremental major GC keeps up with
       and RSS climbs into gigabytes. Compacting on a cadence keeps the
       whole sweep in a flat footprint for a few percent of run time. *)
    if !runs land 31 = 0 then Gc.compact ()
  done;
  let truncated = Stack.length frontier in
  let stats =
    {
      st_runs = !runs;
      st_decision_points = !decision_points;
      st_max_depth = !max_depth;
      st_pruned = !pruned;
      st_capped = !capped;
      st_truncated = truncated;
      st_distinct_states = Hashtbl.length states;
      st_exhaustive = truncated = 0 && !capped = 0;
    }
  in
  {
    e_scenario = sc;
    e_baseline =
      (match !baseline with
      | Some b -> b
      | None -> failwith "Explore: no runs executed");
    e_flagged = List.rev !flagged_acc;
    e_pairs = !pairs_acc;
    e_stats = stats;
  }

let clean v = v.e_flagged = []
let flagged v = not (clean v)

(* Deterministic single-schedule reproduction (the --replay-schedule
   path). Returns the outcome plus the racing pairs the happens-before
   tracker saw along that schedule. *)
let replay ?sched (sc : Scenarios.t) ~schedule =
  match parse_schedule_id schedule with
  | None -> invalid_arg (Printf.sprintf "Explore.replay: bad schedule id %S" schedule)
  | Some prefix ->
    let run_fn =
      match sc.Scenarios.sc_bound with
      | Some { Scenarios.b_run = Some f; _ } -> f
      | _ -> sc.Scenarios.sc_run
    in
    let outcome, _, hb = run_once run_fn ?sched prefix in
    let pairs = match hb with Some h -> Hb.pairs h | None -> [] in
    (match hb with Some h -> Hb.detach h | None -> ());
    (outcome, pairs)

(* --- rendering ---------------------------------------------------------- *)

let finding_line = function
  | Divergent d -> Printf.sprintf "divergence: %s" d
  | Violating v -> Printf.sprintf "violation: %s" v
  | Deadlocked rep ->
    Printf.sprintf "deadlock: %d fiber(s) stuck" (List.length rep.Deadlock.rep_stuck)

let coverage_line st =
  if st.st_exhaustive then
    Printf.sprintf
      "exhaustive: all %d schedules run (%d inequivalent end states, %d \
       equivalent alternatives pruned)"
      st.st_runs st.st_distinct_states st.st_pruned
  else
    Printf.sprintf
      "bounded: %d schedules run (%d inequivalent end states, %d pruned, %d \
       beyond preemption cap, %d beyond run budget)"
      st.st_runs st.st_distinct_states st.st_pruned st.st_capped st.st_truncated

let render ?(verbose = false) v =
  let b = Buffer.create 256 in
  let sc = v.e_scenario in
  Buffer.add_string b
    (Printf.sprintf "%-20s %-7s %s" sc.Scenarios.sc_name
       (if sc.Scenarios.sc_buggy then "[buggy]" else "[clean]")
       (coverage_line v.e_stats));
  if clean v then Buffer.add_string b "\n  no divergence, no violations, no deadlock"
  else begin
    let shown = if verbose then max_int else 3 in
    List.iteri
      (fun i f ->
        if i < shown then
          Buffer.add_string b
            (Printf.sprintf "\n  schedule %s (%d preemption%s): %s" f.fl_schedule
               f.fl_preemptions
               (if f.fl_preemptions = 1 then "" else "s")
               (finding_line f.fl_finding)))
      v.e_flagged;
    (if List.length v.e_flagged > shown then
       Buffer.add_string b
         (Printf.sprintf "\n  ... and %d more flagged schedule(s)"
            (List.length v.e_flagged - shown)));
    List.iteri
      (fun i p ->
        if i < shown then Buffer.add_string b ("\n  " ^ Hb.render_pair p))
      v.e_pairs;
    (match v.e_flagged with
    | f :: _ ->
      (match f.fl_finding with
      | Deadlocked rep when verbose -> Buffer.add_string b ("\n" ^ Deadlock.render rep)
      | _ -> ());
      Buffer.add_string b
        (Printf.sprintf
           "\n  replay deterministically with: ulsbench races --scenario %s \
            --explore --replay-schedule %s"
           sc.Scenarios.sc_name f.fl_schedule)
    | [] -> ())
  end;
  Buffer.contents b
