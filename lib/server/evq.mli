(** Epoll-style readiness engine.

    The portable sockets API only offers two ways to learn that a socket
    became ready: block in [recv]/[accept] (one fiber per socket), or
    [select] — an O(registered) scan of every stream on every wake-up.
    Neither survives thousands of connections. This engine is the third
    way: each registered socket installs a {e watcher} callback (the
    [watch]/[watch_accept] hooks both stacks now expose), readiness
    events push the socket's handle onto a ready queue, and {!wait}
    returns batches of ready payloads in O(ready) — work proportional to
    what happened, not to what is registered.

    Triggering follows epoll:

    - {e Level}: a handle is delivered as long as the socket is
      readable. After a batch is returned, any of its level handles
      still readable are re-armed on the next {!wait} (an O(batch)
      re-check, never a full scan). Level handles found unreadable at
      delivery time are dropped and counted as spurious.
    - {e Edge}: a handle is delivered once per readiness {e event};
      consumers must drain the socket or they will not hear about the
      remaining buffered data until the next event arrives.

    Everything runs inside the simulator's cooperative fibers, so no
    locking is needed; determinism is inherited from the engine.

    Metrics (per node): [server.evq.wakeups] (times {!wait} returned),
    [server.evq.ready_batch] (histogram of batch sizes),
    [server.evq.spurious] (handles delivered but found unreadable),
    [server.evq.registered] (gauge). Compare [server.evq.wakeups] ×
    batch size against [api.select_streams_scanned] to see the
    O(ready)-vs-O(n) gap. *)

type trigger = Level | Edge

type 'a t
(** An event queue delivering payloads of type ['a]. *)

type 'a handle
(** One registered interest. *)

val create : Uls_engine.Sim.t -> node:int -> 'a t

val register :
  'a t ->
  ?mode:trigger ->
  readable:(unit -> bool) ->
  watch:((unit -> unit) -> unit) ->
  'a ->
  'a handle
(** [register q ~readable ~watch payload] installs a watcher via [watch]
    and returns the handle. If the socket is already readable the handle
    is queued immediately (like epoll delivering on [EPOLL_CTL_ADD]).
    [mode] defaults to [Level]. The watcher persists for the socket's
    life — {!deregister} disarms the handle, it cannot uninstall the
    callback — so registering the same socket twice doubles its event
    load; don't. *)

val modify : 'a handle -> trigger -> unit
(** Switch triggering mode. Switching to [Level] re-checks readiness
    immediately, so buffered data that an edge consumer failed to drain
    becomes deliverable again. *)

val rearm : 'a handle -> unit
(** Queue the handle now if it is registered, not already queued, and
    readable. An explicit re-check for edge consumers that stopped
    draining early on purpose. *)

val deregister : 'a handle -> unit
(** Disarm: subsequent events are ignored and a queued-but-undelivered
    handle is silently discarded at the next {!wait}. Idempotent. *)

val payload : 'a handle -> 'a
val registered : 'a t -> int

val wait : 'a t -> 'a list
(** Block until at least one handle is ready (or {!kick}), then return
    the ready batch's payloads, oldest event first. Returns [[]] only
    after {!kick} — the shutdown path. Must be called from a fiber; the
    engine expects a single consumer fiber. *)

val kick : 'a t -> unit
(** Wake a blocked {!wait} even with nothing ready (it returns [[]]).
    Lets the consumer loop observe a stop flag. *)
