(** SO_REUSEPORT-style listener sharding.

    One bound port, N accept queues: a demux fiber drains the real
    listener with [try_accept] and steers each new connection to one of
    [shards] synthetic listeners by a hash of the peer address — the
    same trick [SO_REUSEPORT] plays in the kernel so that independent
    worker schedulers each own a private accept queue instead of
    thundering-herding on a shared one.

    Every synthetic listener implements the full
    {!Uls_api.Sockets_api.listener} contract ([try_accept] /
    [acceptable] / [watch_accept] / [pending] / blocking [accept]), so a
    {!Sched} plugs into a shard exactly as it plugs into a real
    listener. Steering is deterministic: a given peer address always
    lands on the same shard (flow affinity), and the hash is a seeded
    SplitMix64 finalizer, not [Hashtbl.hash], so runs are reproducible.

    Closing: each shard's [close_listener] closes that shard (queued,
    unclaimed connections are closed); the underlying listener is closed
    when the last shard closes. Connections steered to an
    already-closed shard are closed on arrival.

    Metrics (per node): [server.reuseport.steered] counts connections
    fanned out. *)

val listeners :
  Uls_engine.Sim.t ->
  node:int ->
  ?hash:(Uls_api.Sockets_api.addr -> int) ->
  shards:int ->
  Uls_api.Sockets_api.listener ->
  Uls_api.Sockets_api.listener array
(** [listeners sim ~node ~shards under] returns [shards] synthetic
    listeners fed from [under]. [hash] overrides the steering hash
    (must be non-negative). *)

val default_hash : Uls_api.Sockets_api.addr -> int
(** The built-in steering hash (SplitMix64 finalizer over the peer
    address). *)
