(** Connection scheduler: a fixed pool of worker fibers serving every
    connection of one listener, driven by the readiness engine.

    One dispatcher fiber blocks in {!Evq.wait}; the ready batch is fed
    into a FIFO run queue drained by [workers] worker fibers. Instead of
    one fiber per connection (the {!Uls_apps.Http.server} model — fine
    for three clients, hopeless for four thousand), fiber count is
    O(workers), and a connection only ever occupies memory proportional
    to its buffered data.

    Scheduling is fair by construction: a worker serves {e one} read
    chunk per dispatch, then requeues the connection at the {e tail} of
    the run queue if it still has buffered data — a hot connection
    pipelining megabytes cannot starve a neighbour that wants one
    request served.

    Backpressure has two stages. Admission control: beyond
    [max_inflight] open connections, new accepts are shed immediately
    (optional [reject] bytes, then close) so the server degrades by
    refusing work, not by collapsing. Flow control: workers write
    replies with the stream's own blocking [send], so a slow reader
    stalls (only) the workers serving it, and the substrate's credit
    scheme or TCP's window pushes back on the sender.

    Metrics (per node): [server.sched.accepts], [server.sched.shed],
    [server.sched.closes], [server.sched.dispatches],
    [server.sched.embryo_closed] (half-open orphans swept),
    [server.listener.backlog] (gauge: requests queued behind accept). *)

type reaction = {
  replies : string list;  (** written in order with the stream's [send] *)
  close : bool;  (** close the connection after the replies *)
}

(** Per-connection protocol logic: [handler peer] runs once per accepted
    connection and returns its state machine — a function from one read
    chunk to a {!reaction}. A raised exception closes the connection. *)
type handler = Uls_api.Sockets_api.addr -> string -> reaction

type config = {
  workers : int;
  accept_batch : int;  (** max accepts drained per readiness event *)
  max_inflight : int;  (** admission limit: open connections *)
  reject : string option;  (** sent (best-effort) before a shed close *)
  embryo_timeout : int;
      (** close accepted connections that never deliver a first byte
          within this many ns — the SYN_RCVD-timer analogue. A client
          whose connect raced a timeout abandons the handshake after the
          server has already built the connection; without this sweep
          each such half-open orphan pins an [max_inflight] slot (and
          its posted descriptors) forever, and a shard that collects
          enough of them stops accepting entirely. *)
  drain_batch : int;
      (** read chunks a worker consumes from one connection per dispatch
          before requeueing it (fairness quantum). The historical value
          is 1; larger values amortize the dispatch round trip when the
          substrate delivers completions in bulk (the ring path), at the
          price of a coarser fairness grain. Per-dispatch consumption is
          recorded in the [server.sched.drain_chunks] histogram. *)
}

val default_config : config
(** 4 workers, accept batches of 16, unlimited inflight, silent shed,
    2 s embryo timeout, drain batch 1. *)

type t

val start :
  Uls_engine.Sim.t ->
  node:int ->
  ?config:config ->
  listener:Uls_api.Sockets_api.listener ->
  handler:handler ->
  unit ->
  t
(** Spawn the dispatcher and worker fibers and start serving. *)

val inflight : t -> int
(** Currently open connections. *)

val peak_inflight : t -> int
(** High-water mark of {!inflight} over the scheduler's life — the
    witness that a fabric cell never crossed the NIC match-walk
    collapse threshold. *)

val accepted : t -> int
val shed : t -> int

val stop : t -> unit
(** Close the listener, stop dispatcher and workers, close every open
    connection. Idempotent. *)
