(** Connection scheduler: dispatcher + worker-pool fibers over {!Evq}.
    See the .mli for the scheduling and backpressure contract. *)

open Uls_engine
module Api = Uls_api.Sockets_api

type reaction = {
  replies : string list;
  close : bool;
}

type handler = Api.addr -> string -> reaction

type config = {
  workers : int;
  accept_batch : int;
  max_inflight : int;
  reject : string option;
  embryo_timeout : int;
  drain_batch : int;
      (* chunks a worker consumes from a connection per dispatch before
         requeueing it: >1 amortizes the dispatch round trip when the
         substrate delivers completions in bulk (ring path); 1 is the
         historical one-chunk-per-dispatch behaviour *)
}

let default_config =
  {
    workers = 4;
    accept_batch = 16;
    max_inflight = max_int;
    reject = None;
    embryo_timeout = Time.s 2;
    drain_batch = 1;
  }

let chunk = 65_536

type conn = {
  c_id : int;
  c_stream : Api.stream;
  c_react : string -> reaction;
  mutable c_seen_data : bool;
      (* a first byte arrived: no longer a half-open embryo *)
  mutable c_open : bool;
  mutable c_queued : bool;
      (* in the run queue (or being processed by a worker): readiness
         events for a queued connection are ignored — the worker
         re-checks [readable] when it finishes the current chunk, so no
         wake-up is lost and no connection sits in the queue twice *)
  mutable c_handle : payload Evq.handle option;
}

and payload = Accept | Conn of conn

type handles = {
  h_closes : Stats.Counter.t;
  h_dispatches : Stats.Counter.t;
  g_backlog : float ref;
  h_shed : Stats.Counter.t;
  h_accepts : Stats.Counter.t;
  h_embryo_closed : Stats.Counter.t;
  h_drain_chunks : Stats.Summary.t;
}

type t = {
  sim : Sim.t;
  node : int;
  cfg : config;
  listener : Api.listener;
  handler : handler;
  evq : payload Evq.t;
  runq : conn option Mailbox.t;  (* None = worker stop sentinel *)
  metrics : Metrics.t;
  mh : handles;
  conns : (int, conn) Hashtbl.t;
  mutable next_id : int;
  mutable inflight : int;
  mutable peak_inflight : int;
  mutable accepted : int;
  mutable shed : int;
  mutable running : bool;
}

let inflight t = t.inflight
let peak_inflight t = t.peak_inflight
let accepted t = t.accepted
let shed t = t.shed

let close_conn t c =
  if c.c_open then begin
    c.c_open <- false;
    (match c.c_handle with Some h -> Evq.deregister h | None -> ());
    Hashtbl.remove t.conns c.c_id;
    (try c.c_stream.close () with _ -> ());
    t.inflight <- t.inflight - 1;
    Stats.Counter.incr t.mh.h_closes
  end

(* The readable guard keeps a spurious edge event from parking the
   worker inside recv on an idle connection. *)
let one_chunk t c =
  Stats.Counter.incr t.mh.h_dispatches;
  let data = try c.c_stream.recv chunk with _ -> "" in
  if data = "" then close_conn t c
  else begin
    c.c_seen_data <- true;
    match c.c_react data with
    | exception _ -> close_conn t c
    | r ->
      List.iter
        (fun reply ->
          if c.c_open then
            try c.c_stream.send reply with _ -> close_conn t c)
        r.replies;
      if r.close then close_conn t c
  end

(* Up to [drain_batch] chunks per dispatch (historically exactly one):
   with bulk completion delivery underneath, requeueing after every
   chunk pays a dispatch round trip per message. *)
let process t c =
  let chunks = ref 0 in
  while
    !chunks < t.cfg.drain_batch && c.c_open && c.c_stream.readable ()
  do
    incr chunks;
    one_chunk t c
  done;
  if !chunks > 0 then
    Stats.Summary.add t.mh.h_drain_chunks (float_of_int !chunks);
  (* Fairness: still-hungry connections go to the back of the queue
     (c_queued stays true — no double enqueue from a racing event). *)
  if c.c_open && c.c_stream.readable () then Mailbox.send t.runq (Some c)
  else c.c_queued <- false

let update_backlog t =
  t.mh.g_backlog := float_of_int (try t.listener.pending () with _ -> 0)

let drain_accepts t =
  let n = ref 0 in
  let stop = ref false in
  (* try_accept, never accept: a blocking accept would wedge the
     dispatcher fiber — and the whole event loop — on a queue entry the
     stack resolves internally (e.g. a duplicate connect request). *)
  while t.running && not !stop && !n < t.cfg.accept_batch do
    incr n;
    match t.listener.try_accept () with
    | exception _ -> stop := true
    | None -> stop := true
    | Some (stream, peer) ->
      if t.inflight >= t.cfg.max_inflight then begin
        (* Shed with an explicit reject: the client learns immediately
           instead of timing out against a saturated server. *)
        (match t.cfg.reject with
        | Some bytes -> ( try stream.send bytes with _ -> ())
        | None -> ());
        (try stream.close () with _ -> ());
        t.shed <- t.shed + 1;
        Stats.Counter.incr t.mh.h_shed
      end
      else begin
        t.inflight <- t.inflight + 1;
        if t.inflight > t.peak_inflight then t.peak_inflight <- t.inflight;
        t.accepted <- t.accepted + 1;
        Stats.Counter.incr t.mh.h_accepts;
        let c =
          {
            c_id = t.next_id;
            c_stream = stream;
            c_react = t.handler peer;
            c_seen_data = false;
            c_open = true;
            c_queued = false;
            c_handle = None;
          }
        in
        t.next_id <- t.next_id + 1;
        Hashtbl.replace t.conns c.c_id c;
        (* Edge-triggered: a level conn handle still queued behind a
           busy worker would be re-armed by every Evq.wait and spin the
           dispatcher. The worker re-checks [readable] when it finishes
           a chunk, which is exactly the edge consumer's drain duty.
           register still checks readiness immediately, so a request
           pipelined behind the connect is dispatched at once. *)
        c.c_handle <-
          Some
            (Evq.register t.evq ~mode:Evq.Edge ~readable:stream.readable
               ~watch:stream.watch (Conn c));
        (* Embryo timer (one-shot, per connection — a perpetual sweeper
           tick would keep the cluster from ever quiescing): a client
           that abandoned the handshake after we built the connection
           never sends a byte, and its half-open orphan must not pin an
           inflight slot forever. *)
        if t.cfg.embryo_timeout > 0 && t.cfg.embryo_timeout < max_int then
          Sim.spawn t.sim
            ~name:(Printf.sprintf "sched-embryo-%d.%d" t.node c.c_id)
            ~daemon:true
            (fun () ->
              Sim.delay t.sim t.cfg.embryo_timeout;
              if c.c_open && not c.c_seen_data then begin
                Stats.Counter.incr t.mh.h_embryo_closed;
                close_conn t c
              end)
      end
  done;
  update_backlog t

let dispatcher t () =
  while t.running do
    let batch = Evq.wait t.evq in
    List.iter
      (function
        | Accept -> if t.running then drain_accepts t
        | Conn c ->
          if c.c_open && not c.c_queued then begin
            c.c_queued <- true;
            Mailbox.send t.runq (Some c)
          end)
      batch
  done

let worker t () =
  let rec loop () =
    match Mailbox.recv t.runq with
    | None -> ()
    | Some c ->
      process t c;
      loop ()
  in
  loop ()

let start sim ~node ?(config = default_config) ~listener ~handler () =
  let metrics = Metrics.for_sim sim in
  let counter name = Metrics.counter metrics ~node name in
  let t =
    {
      sim;
      node;
      cfg = config;
      listener;
      handler;
      evq = Evq.create sim ~node;
      runq = Mailbox.create ~label:(Printf.sprintf "sched:%d runq" node) sim;
      metrics;
      mh =
        {
          h_closes = counter "server.sched.closes";
          h_dispatches = counter "server.sched.dispatches";
          g_backlog = Metrics.gauge metrics ~node "server.listener.backlog";
          h_shed = counter "server.sched.shed";
          h_accepts = counter "server.sched.accepts";
          h_embryo_closed = counter "server.sched.embryo_closed";
          h_drain_chunks =
            Metrics.histogram metrics ~node "server.sched.drain_chunks";
        };
      conns = Hashtbl.create 64;
      next_id = 0;
      inflight = 0;
      peak_inflight = 0;
      accepted = 0;
      shed = 0;
      running = true;
    }
  in
  ignore
    (Evq.register t.evq ~readable:listener.acceptable
       ~watch:listener.watch_accept Accept);
  (* Dispatcher and workers idle forever between requests; like the
     protocol service fibers they are daemons for deadlock detection. *)
  Sim.spawn sim
    ~name:(Printf.sprintf "sched-dispatch-%d" node)
    ~daemon:true (dispatcher t);
  for i = 1 to config.workers do
    Sim.spawn sim
      ~name:(Printf.sprintf "sched-worker-%d.%d" node i)
      ~daemon:true (worker t)
  done;
  t

let stop t =
  if t.running then begin
    t.running <- false;
    (try t.listener.close_listener () with _ -> ());
    Evq.kick t.evq;
    for _ = 1 to t.cfg.workers do
      Mailbox.send t.runq None
    done;
    let open_conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    List.iter (close_conn t) open_conns
  end
