(** Epoll-style readiness engine: watcher callbacks push handles onto a
    ready queue; [wait] returns batches in O(ready). See the .mli for
    the triggering semantics. *)

open Uls_engine

type trigger = Level | Edge

type 'a t = {
  node : int;
  metrics : Metrics.t;
  ready : 'a handle Queue.t;
  cond : Cond.t;
  mutable kicked : bool;
  mutable last_batch : 'a handle list;
      (* previous wait's delivery, re-checked (O(batch)) to re-arm
         still-readable level-triggered handles *)
  mutable n_registered : int;
}

and 'a handle = {
  h_q : 'a t;
  h_payload : 'a;
  h_readable : unit -> bool;
  mutable h_mode : trigger;
  mutable h_queued : bool;
  mutable h_registered : bool;
}

let create sim ~node =
  {
    node;
    metrics = Metrics.for_sim sim;
    ready = Queue.create ();
    cond = Cond.create ~label:(Printf.sprintf "evq:%d" node) sim;
    kicked = false;
    last_batch = [];
    n_registered = 0;
  }

let payload h = h.h_payload
let registered t = t.n_registered

let enqueue t h =
  h.h_queued <- true;
  Queue.push h t.ready;
  Cond.broadcast t.cond

(* The watcher callback: runs in whatever fiber made the socket ready.
   Dedup via h_queued keeps the ready queue O(registered) worst case and
   each wake-up O(1). *)
let on_event h =
  if h.h_registered && not h.h_queued then enqueue h.h_q h

let register t ?(mode = Level) ~readable ~watch payload =
  let h =
    {
      h_q = t;
      h_payload = payload;
      h_readable = readable;
      h_mode = mode;
      h_queued = false;
      h_registered = true;
    }
  in
  t.n_registered <- t.n_registered + 1;
  Metrics.set_gauge t.metrics ~node:t.node "server.evq.registered"
    (float_of_int t.n_registered);
  watch (fun () -> on_event h);
  if readable () then enqueue t h;
  h

let rearm h =
  if h.h_registered && not h.h_queued && h.h_readable () then enqueue h.h_q h

let modify h mode =
  h.h_mode <- mode;
  if mode = Level then rearm h

let deregister h =
  if h.h_registered then begin
    h.h_registered <- false;
    let t = h.h_q in
    t.n_registered <- t.n_registered - 1;
    Metrics.set_gauge t.metrics ~node:t.node "server.evq.registered"
      (float_of_int t.n_registered)
  end

let wait t =
  (* Level-triggered re-arm: anything delivered last time and still
     readable goes around again. O(previous batch), not O(registered). *)
  List.iter
    (fun h ->
      if h.h_registered && h.h_mode = Level && not h.h_queued
         && h.h_readable ()
      then enqueue t h)
    t.last_batch;
  t.last_batch <- [];
  while Queue.is_empty t.ready && not t.kicked do
    Cond.wait t.cond
  done;
  t.kicked <- false;
  Metrics.incr t.metrics ~node:t.node "server.evq.wakeups";
  let batch = ref [] in
  while not (Queue.is_empty t.ready) do
    let h = Queue.pop t.ready in
    h.h_queued <- false;
    if not h.h_registered then () (* deregistered while ready: discard *)
    else if h.h_mode = Level && not (h.h_readable ()) then
      (* queued by an event but drained (or never readable) by delivery
         time — the epoll definition of a spurious wake-up *)
      Metrics.incr t.metrics ~node:t.node "server.evq.spurious"
    else batch := h :: !batch
  done;
  let batch = List.rev !batch in
  t.last_batch <- batch;
  Metrics.observe t.metrics ~node:t.node "server.evq.ready_batch"
    (float_of_int (List.length batch));
  List.map (fun h -> h.h_payload) batch

let kick t =
  t.kicked <- true;
  Cond.broadcast t.cond
