(** Epoll-style readiness engine: watcher callbacks push handles onto a
    ready queue; [wait] returns batches in O(ready). See the .mli for
    the triggering semantics. *)

open Uls_engine

type trigger = Level | Edge

type handles = {
  g_registered : float ref;
  hc_wakeups : Stats.Counter.t;
  hc_spurious : Stats.Counter.t;
  hs_ready_batch : Stats.Summary.t;
}

type 'a t = {
  node : int;
  metrics : Metrics.t;
  mh : handles;
  ready : 'a handle Queue.t;
  cond : Cond.t;
  mutable kicked : bool;
  mutable last_batch : 'a handle list;
      (* previous wait's delivery, re-checked (O(batch)) to re-arm
         still-readable level-triggered handles *)
  mutable n_registered : int;
}

and 'a handle = {
  h_q : 'a t;
  h_payload : 'a;
  h_readable : unit -> bool;
  mutable h_mode : trigger;
  mutable h_queued : bool;
  mutable h_registered : bool;
}

let create sim ~node =
  let metrics = Metrics.for_sim sim in
  {
    node;
    metrics;
    mh =
      {
        g_registered = Metrics.gauge metrics ~node "server.evq.registered";
        hc_wakeups = Metrics.counter metrics ~node "server.evq.wakeups";
        hc_spurious = Metrics.counter metrics ~node "server.evq.spurious";
        hs_ready_batch = Metrics.histogram metrics ~node "server.evq.ready_batch";
      };
    ready = Queue.create ();
    cond = Cond.create ~label:(Printf.sprintf "evq:%d" node) sim;
    kicked = false;
    last_batch = [];
    n_registered = 0;
  }

let payload h = h.h_payload
let registered t = t.n_registered

let enqueue t h =
  h.h_queued <- true;
  Queue.push h t.ready;
  Cond.broadcast t.cond

(* The watcher callback: runs in whatever fiber made the socket ready.
   Dedup via h_queued keeps the ready queue O(registered) worst case and
   each wake-up O(1). *)
let on_event h =
  if h.h_registered && not h.h_queued then enqueue h.h_q h

let register t ?(mode = Level) ~readable ~watch payload =
  let h =
    {
      h_q = t;
      h_payload = payload;
      h_readable = readable;
      h_mode = mode;
      h_queued = false;
      h_registered = true;
    }
  in
  t.n_registered <- t.n_registered + 1;
  t.mh.g_registered := float_of_int t.n_registered;
  watch (fun () -> on_event h);
  if readable () then enqueue t h;
  h

let rearm h =
  if h.h_registered && not h.h_queued && h.h_readable () then enqueue h.h_q h

let modify h mode =
  h.h_mode <- mode;
  if mode = Level then rearm h

let deregister h =
  if h.h_registered then begin
    h.h_registered <- false;
    let t = h.h_q in
    t.n_registered <- t.n_registered - 1;
    t.mh.g_registered := float_of_int t.n_registered
  end

let wait t =
  (* Level-triggered re-arm: anything delivered last time and still
     readable goes around again. O(previous batch), not O(registered). *)
  List.iter
    (fun h ->
      if h.h_registered && h.h_mode = Level && not h.h_queued
         && h.h_readable ()
      then enqueue t h)
    t.last_batch;
  t.last_batch <- [];
  while Queue.is_empty t.ready && not t.kicked do
    Cond.wait t.cond
  done;
  t.kicked <- false;
  Stats.Counter.incr t.mh.hc_wakeups;
  let batch = ref [] in
  while not (Queue.is_empty t.ready) do
    let h = Queue.pop t.ready in
    h.h_queued <- false;
    if not h.h_registered then () (* deregistered while ready: discard *)
    else if h.h_mode = Level && not (h.h_readable ()) then
      (* queued by an event but drained (or never readable) by delivery
         time — the epoll definition of a spurious wake-up *)
      Stats.Counter.incr t.mh.hc_spurious
    else batch := h :: !batch
  done;
  let batch = List.rev !batch in
  t.last_batch <- batch;
  Stats.Summary.add t.mh.hs_ready_batch (float_of_int (List.length batch));
  List.map (fun h -> h.h_payload) batch

let kick t =
  t.kicked <- true;
  Cond.broadcast t.cond
