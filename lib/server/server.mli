(** The event-driven servers: echo and keep-alive HTTP over the
    {!Sched} worker pool, identical over the EMP substrate and kernel
    TCP (anything implementing {!Uls_api.Sockets_api.stack}).

    - [Echo] mirrors every chunk back verbatim (never closes first);
      the load generator verifies the mirrored byte stream exactly.
    - [Http response_size] speaks real HTTP/1.1 via {!Uls_apps.Http}:
      incremental parsing across read boundaries, keep-alive by
      default, [Connection: close] honoured, responses carry
      [Http.body_for] bodies so clients verify them byte-exactly. A
      path of the form [/b/<n>] selects an [n]-byte body; anything else
      gets [response_size] bytes. When admission control sheds a
      connection it sends an explicit [503 Service Unavailable].

    Every request is recorded as an [App]-layer [server.request] span
    plus [server.http.requests] / [server.echo.chunks] counters, so
    per-request service appears in the Chrome trace alongside the
    substrate and NIC events it triggers. *)

type workload =
  | Echo
  | Http of int  (** default response-body bytes *)

type t

val start :
  Uls_engine.Sim.t ->
  Uls_api.Sockets_api.stack ->
  node:int ->
  port:int ->
  ?backlog:int ->
  ?config:Sched.config ->
  ?shards:int ->
  workload ->
  t
(** Listen and serve. [backlog] defaults to 64. [config] defaults to
    {!Sched.default_config} with a workload-appropriate reject (503 for
    HTTP, silent close for echo). [shards] (default 1) splits the accept
    stream {!Reuseport}-style across that many independent schedulers —
    one listener socket, [shards] x [config.workers] worker fibers, with
    flow-affine steering. [config] (including [max_inflight]) applies
    {e per shard}. *)

val http_reject : string
(** The serialised [503 Service Unavailable] sent on an HTTP shed — for
    callers building a custom {!Sched.config}. *)

val requests : t -> int
(** Requests served (HTTP) or chunks echoed (echo). *)

val sched : t -> Sched.t
(** The first (or only) shard's scheduler. *)

val scheds : t -> Sched.t list
(** All shard schedulers, in shard order. *)

val shards : t -> int

val inflight : t -> int
(** Open connections, summed over shards. *)

val accepted : t -> int
val shed : t -> int

val peak_inflight : t -> int
(** Sum of each shard's {!Sched.peak_inflight} — an upper bound on the
    server's true concurrent connection peak. *)

val stop : t -> unit
