(** Echo and keep-alive HTTP servers over the {!Sched} worker pool.
    See the .mli for the workload contract. *)

open Uls_engine
module Api = Uls_api.Sockets_api
module Http = Uls_apps.Http

type workload = Echo | Http of int

type handles = {
  h_echo_chunks : Stats.Counter.t;
  h_echo_bytes : Stats.Counter.t;
  h_http_requests : Stats.Counter.t;
}

type t = {
  node : int;
  metrics : Metrics.t;
  mh : handles;
  trace : Trace.t;
  mutable served : int;
  mutable scheds : Sched.t array;
}

let requests t = t.served

let sched t =
  if Array.length t.scheds = 0 then invalid_arg "Server.sched"
  else t.scheds.(0)

let scheds t = Array.to_list t.scheds
let shards t = Array.length t.scheds

let sum f t = Array.fold_left (fun acc s -> acc + f s) 0 t.scheds

let inflight t = sum Sched.inflight t
let accepted t = sum Sched.accepted t
let shed t = sum Sched.shed t

(* Sum of per-shard high-water marks: an upper bound on the cell's true
   concurrent peak (shards need not peak at the same instant), which is
   the safe direction for the "never crossed the match-walk collapse"
   check. *)
let peak_inflight t = sum Sched.peak_inflight t

let http_reject =
  Http.format_response
    {
      Http.status = 503;
      reason = "Service Unavailable";
      resp_version = "HTTP/1.1";
      resp_headers = [ ("connection", "close") ];
      resp_body = "";
    }

let echo_handler t _peer data =
  t.served <- t.served + 1;
  Stats.Counter.incr t.mh.h_echo_chunks;
  Stats.Counter.add t.mh.h_echo_bytes (String.length data);
  Trace.instant t.trace ~layer:Trace.App ~node:t.node "server.echo"
    ~args:[ ("bytes", string_of_int (String.length data)) ];
  { Sched.replies = [ data ]; close = false }

(* "/b/<n>" asks for an n-byte body; anything else gets the default. *)
let body_size_of_path ~default path =
  match String.split_on_char '/' path with
  | [ ""; "b"; n ] -> (
    match int_of_string_opt n with Some n when n >= 0 -> n | _ -> default)
  | _ -> default

let http_handler t default_size peer =
  let p = Http.Parser.create () in
  fun data ->
    (* Bad_request from the parser propagates: the scheduler closes the
       connection, which is all a server can do with unframeable bytes. *)
    let reqs = Http.Parser.feed p data in
    let close = ref false in
    let replies =
      List.filter_map
        (fun (req : Http.request) ->
          if !close then None (* nothing pipelined after Connection: close *)
          else
            Some
              (Trace.span t.trace ~layer:Trace.App ~node:t.node
                 "server.request"
                 ~args:[ ("peer", Format.asprintf "%a" Api.pp_addr peer) ]
                 (fun () ->
                   t.served <- t.served + 1;
                   Stats.Counter.incr t.mh.h_http_requests;
                   let size =
                     body_size_of_path ~default:default_size req.Http.path
                   in
                   let last = not (Http.keep_alive req) in
                   if last then close := true;
                   Http.format_response
                     {
                       Http.status = 200;
                       reason = "OK";
                       resp_version = "HTTP/1.1";
                       resp_headers =
                         [ ("connection",
                            if last then "close" else "keep-alive") ];
                       resp_body = Http.body_for ~size;
                     })))
        reqs
    in
    { Sched.replies; close = !close }

let start sim (stack : Api.stack) ~node ~port ?(backlog = 64) ?config
    ?(shards = 1) workload =
  let listener = stack.listen ~node ~port ~backlog in
  let config =
    match config with
    | Some c -> c
    | None ->
      {
        Sched.default_config with
        reject = (match workload with Http _ -> Some http_reject | Echo -> None);
      }
  in
  let metrics = Metrics.for_sim sim in
  let counter name = Metrics.counter metrics ~node name in
  let t =
    {
      node;
      metrics;
      mh =
        {
          h_echo_chunks = counter "server.echo.chunks";
          h_echo_bytes = counter "server.echo.bytes";
          h_http_requests = counter "server.http.requests";
        };
      trace = Trace.for_sim sim;
      served = 0;
      scheds = [||];
    }
  in
  let handler =
    match workload with
    | Echo -> echo_handler t
    | Http size -> http_handler t size
  in
  let listeners =
    if shards <= 1 then [| listener |]
    else Reuseport.listeners sim ~node ~shards listener
  in
  t.scheds <-
    Array.map
      (fun l -> Sched.start sim ~node ~config ~listener:l ~handler ())
      listeners;
  t

let stop t = Array.iter Sched.stop t.scheds
