(** SO_REUSEPORT-style accept sharding: one bound listener fanned out
    into N shard listeners, each consumable by its own {!Sched}. See the
    .mli for the steering contract. *)

open Uls_engine
module Api = Uls_api.Sockets_api

(* SplitMix64 finalizer: the steering hash must depend on every bit of
   the peer address (client ephemeral ports are sequential) and be
   stable across runs — Hashtbl.hash guarantees neither. *)
let mix64 (z : int64) =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let default_hash (a : Api.addr) =
  Int64.to_int (mix64 (Int64.of_int ((a.node * 65_599) + a.port))) land max_int

type shard = {
  s_queue : (Api.stream * Api.addr) Queue.t;
  mutable s_watchers : (unit -> unit) list;
  mutable s_closed : bool;
  s_cond : Cond.t;
}

type t = {
  sim : Sim.t;
  node : int;
  under : Api.listener;
  shards : shard array;
  hash : Api.addr -> int;
  metrics : Metrics.t;
  h_steered : Stats.Counter.t;
  mutable open_shards : int;
  mutable running : bool;
  wake : Cond.t;
}

let fire shard = List.iter (fun f -> f ()) shard.s_watchers

let deliver t (stream, peer) =
  let i = t.hash peer mod Array.length t.shards in
  let shard = t.shards.(i) in
  if shard.s_closed then (try stream.Api.close () with _ -> ())
  else begin
    Queue.push (stream, peer) shard.s_queue;
    Stats.Counter.incr t.h_steered;
    Cond.broadcast shard.s_cond;
    fire shard
  end

let drain t =
  let stop = ref false in
  while t.running && not !stop do
    match t.under.Api.try_accept () with
    | exception _ -> stop := true
    | None -> stop := true
    | Some conn -> deliver t conn
  done

(* The demux fiber is the only consumer of the real listener. The
   wait_until predicate re-checks queued work, so a readiness callback
   firing while a previous drain is still running cannot be lost. *)
let demux t () =
  while t.running do
    Cond.wait_until t.wake (fun () ->
        (not t.running)
        || (try t.under.Api.pending () > 0 with _ -> false));
    drain t
  done

let shard_listener t i =
  let shard = t.shards.(i) in
  let pop () =
    let (stream, peer) = Queue.pop shard.s_queue in
    (stream, peer)
  in
  {
    Api.accept =
      (fun () ->
        Cond.wait_until shard.s_cond (fun () ->
            shard.s_closed || not (Queue.is_empty shard.s_queue));
        if not (Queue.is_empty shard.s_queue) then pop ()
        else raise Api.Connection_closed);
    try_accept =
      (fun () -> if Queue.is_empty shard.s_queue then None else Some (pop ()));
    acceptable = (fun () -> not (Queue.is_empty shard.s_queue));
    watch_accept = (fun f -> shard.s_watchers <- f :: shard.s_watchers);
    pending = (fun () -> Queue.length shard.s_queue);
    close_listener =
      (fun () ->
        if not shard.s_closed then begin
          shard.s_closed <- true;
          Queue.iter
            (fun (s, _) -> try s.Api.close () with _ -> ())
            shard.s_queue;
          Queue.clear shard.s_queue;
          Cond.broadcast shard.s_cond;
          fire shard;
          t.open_shards <- t.open_shards - 1;
          if t.open_shards = 0 then begin
            t.running <- false;
            (try t.under.Api.close_listener () with _ -> ());
            Cond.broadcast t.wake
          end
        end);
  }

let listeners sim ~node ?(hash = default_hash) ~shards under =
  if shards < 1 then invalid_arg "Reuseport.listeners: shards < 1";
  let metrics = Metrics.for_sim sim in
  let t =
    {
      sim;
      node;
      under;
      shards =
        Array.init shards (fun i ->
            {
              s_queue = Queue.create ();
              s_watchers = [];
              s_closed = false;
              s_cond =
                Cond.create
                  ~label:(Printf.sprintf "reuseport:%d shard %d" node i)
                  sim;
            });
      hash;
      metrics;
      h_steered = Metrics.counter metrics ~node "server.reuseport.steered";
      open_shards = shards;
      running = true;
      wake = Cond.create ~label:(Printf.sprintf "reuseport:%d wake" node) sim;
    }
  in
  (* The watcher only signals; draining happens in the demux fiber, so
     no blocking work ever runs inside the stack's readiness callback. *)
  under.Api.watch_accept (fun () -> Cond.broadcast t.wake);
  Sim.spawn sim
    ~name:(Printf.sprintf "reuseport-demux-%d" node)
    ~daemon:true (demux t);
  Array.init shards (shard_listener t)
