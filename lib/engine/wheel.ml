(* Hierarchical timing wheel (hashed calendar queue) with a near-future
   heap, an exact-order contract, and an overflow heap for far-future
   timers.

   Layout: [levels] wheels of [W = 256] slots each. A level-[l] slot
   spans [grain << (slot_bits * l)] ns, so the whole level-[l] wheel
   spans exactly one level-[l+1] slot. Elements land in the lowest
   level whose wheel still covers their delta from [base] (the start of
   the level-0 cursor slot); anything beyond the top level's range goes
   to the [ovf] heap and migrates down when the cursor approaches.

   Exactness: everything with [time < base + grain] lives in [cur], a
   binary heap ordered by the caller's full comparator, so extraction
   order is *identical* to a plain comparison heap — the wheel only
   replaces where far-out elements wait, not how due elements are
   ordered. Advancing works slot-batch at a time: the next occupied
   level-0 slot is dumped into [cur] wholesale; occupied higher-level
   slots cascade down when the cursor enters them. Insertions are O(1)
   (an array append), extraction is O(log batch) on a batch that is one
   grain wide, and cursor movement amortizes to O(1) per element.

   Ordering safety of the near-future heap: [base] only moves forward,
   and any later insertion with [time < base + grain] is routed into
   [cur] where the comparator orders it exactly — so peeking ahead
   (which advances [base]) can never misorder a subsequent insert, even
   one earlier than the peeked element. *)

let slot_bits = 8
let wsize = 1 lsl slot_bits
let wmask = wsize - 1
let levels = 4

(* Dummy-backed resizable bag: a slot's elements, appended on insert,
   dumped and reset (with the dummy overwriting the tail, so nothing
   popped is retained) when the cursor reaches the slot. *)
type 'a bag = {
  mutable ba : 'a array;
  mutable bn : int;
}

(* Dummy-backed binary min-heap over the caller's comparator. *)
type 'a heap = {
  mutable ha : 'a array;
  mutable hn : int;
}

type 'a t = {
  time : 'a -> int;
  cmp : 'a -> 'a -> int;
  dummy : 'a;
  grain_bits : int;
  slots : 'a bag array array;  (* [levels][wsize] *)
  counts : int array;  (* elements resident per level *)
  mutable base : int;  (* start of the level-0 cursor slot; grain-aligned *)
  cur : 'a heap;
  ovf : 'a heap;
  mutable len : int;
}

let create ?(grain_bits = 8) ~dummy ~time ~cmp () =
  if grain_bits < 0 || grain_bits + (slot_bits * levels) >= Sys.int_size - 1
  then invalid_arg "Wheel.create: grain_bits out of range";
  {
    time;
    cmp;
    dummy;
    grain_bits;
    slots =
      Array.init levels (fun _ ->
          Array.init wsize (fun _ -> { ba = [||]; bn = 0 }));
    counts = Array.make levels 0;
    base = 0;
    cur = { ha = [||]; hn = 0 };
    ovf = { ha = [||]; hn = 0 };
    len = 0;
  }

let length w = w.len
let is_empty w = w.len = 0

(* level-l slot width and the absolute slot index of time [t] *)
let shift w l = w.grain_bits + (slot_bits * l)
let grain w = 1 lsl w.grain_bits

(* --- heap ops ----------------------------------------------------------- *)

let heap_push w (h : 'a heap) x =
  if h.hn = Array.length h.ha then begin
    let cap = if h.hn = 0 then 16 else 2 * h.hn in
    let a = Array.make cap w.dummy in
    Array.blit h.ha 0 a 0 h.hn;
    h.ha <- a
  end;
  h.ha.(h.hn) <- x;
  h.hn <- h.hn + 1;
  (* sift up *)
  let i = ref (h.hn - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if w.cmp h.ha.(!i) h.ha.(p) < 0 then begin
      let tmp = h.ha.(!i) in
      h.ha.(!i) <- h.ha.(p);
      h.ha.(p) <- tmp;
      i := p
    end
    else continue := false
  done

let heap_pop w (h : 'a heap) =
  let top = h.ha.(0) in
  h.hn <- h.hn - 1;
  h.ha.(0) <- h.ha.(h.hn);
  h.ha.(h.hn) <- w.dummy;
  (* sift down *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let s = ref !i in
    if l < h.hn && w.cmp h.ha.(l) h.ha.(!s) < 0 then s := l;
    if r < h.hn && w.cmp h.ha.(r) h.ha.(!s) < 0 then s := r;
    if !s <> !i then begin
      let tmp = h.ha.(!i) in
      h.ha.(!i) <- h.ha.(!s);
      h.ha.(!s) <- tmp;
      i := !s
    end
    else continue := false
  done;
  top

(* --- placement ---------------------------------------------------------- *)

(* Place [x] into the structure appropriate for its delta from [base].
   Shared by push and cascade; does not touch [len]. *)
let place w x =
  let t = w.time x in
  if t < w.base + grain w then heap_push w w.cur x
  else begin
    let delta = t - w.base in
    let l = ref 0 in
    while !l < levels && delta asr shift w (!l + 1) <> 0 do
      incr l
    done;
    if !l = levels then heap_push w w.ovf x
    else begin
      let l = !l in
      let slot = w.slots.(l).((t asr shift w l) land wmask) in
      if slot.bn = Array.length slot.ba then begin
        let cap = if slot.bn = 0 then 4 else 2 * slot.bn in
        let a = Array.make cap w.dummy in
        Array.blit slot.ba 0 a 0 slot.bn;
        slot.ba <- a
      end;
      slot.ba.(slot.bn) <- x;
      slot.bn <- slot.bn + 1;
      w.counts.(l) <- w.counts.(l) + 1
    end
  end

let push w x =
  w.len <- w.len + 1;
  place w x

(* Dump a slot's elements through [place] (level-0 slots land in [cur],
   higher-level slots redistribute downward) and reset it, overwriting
   the tail with the dummy so nothing dispatched is retained. *)
let cascade w l idx =
  let slot = w.slots.(l).(idx) in
  let n = slot.bn in
  if n > 0 then begin
    w.counts.(l) <- w.counts.(l) - n;
    slot.bn <- 0;
    for i = 0 to n - 1 do
      let x = slot.ba.(i) in
      slot.ba.(i) <- w.dummy;
      place w x
    done
  end

let top_range w = 1 lsl shift w levels

(* Pull every overflow element the wheel can now cover back down. Runs
   whenever the cursor enters a new top-level slot (and when the wheels
   drain entirely), so an overflow timer always migrates long before
   the wheel's range reaches it. *)
let migrate_ovf w =
  let limit = w.base + top_range w in
  while w.ovf.hn > 0 && w.time w.ovf.ha.(0) < limit do
    place w (heap_pop w w.ovf)
  done

(* Advance [base] until [cur] is non-empty (or the wheel is empty).
   Scans the lowest occupied level for its next slot; an exhausted
   window crosses the parent boundary, cascading the parent slot the
   cursor enters. Amortized O(1) per element: every scan either finds a
   batch or retires a whole window. *)
let advance w =
  if w.cur.hn = 0 && w.len > 0 then begin
    while w.cur.hn = 0 do
      let l = ref 0 in
      while !l < levels && w.counts.(!l) = 0 do
        incr l
      done;
      if !l = levels then begin
        (* wheels empty: jump to the first overflow element *)
        let t = w.time w.ovf.ha.(0) in
        w.base <- t land lnot (grain w - 1);
        migrate_ovf w
      end
      else begin
        let l = !l in
        let cursor = (w.base asr shift w l) land wmask in
        (* Mid-window, the cursor slot holds only wrapped next-window
           elements, so the scan starts after it. But when [base] sits
           exactly at the cursor slot's start (right after a boundary
           cross or jump), wrapped elements there have just become due
           and must be scanned — and only then is cascading the cursor
           slot safe: every element re-places strictly below level [l],
           never back into the slot being drained. *)
        let aligned = w.base land ((1 lsl shift w l) - 1) = 0 in
        let start = if aligned then cursor else cursor + 1 in
        let found = ref (-1) in
        let i = ref start in
        while !found < 0 && !i < wsize do
          if w.slots.(l).(!i).bn > 0 then found := !i;
          incr i
        done;
        if !found >= 0 then begin
          let s = !found in
          let slot_start =
            ((w.base asr shift w l) + (s - cursor)) lsl shift w l
          in
          if slot_start > w.base then begin
            w.base <- slot_start;
            (* a top-level jump enters a new top slot: pull newly
               coverable overflow elements down before cascading, or one
               parked just above an old base's horizon is overtaken *)
            if l = levels - 1 then migrate_ovf w
          end;
          cascade w l s
        end
        else begin
          (* Window exhausted: cross into the next parent slot. The new
             base is aligned at the level-(l+1) slot width, but it may
             coincide with boundaries at several levels at once (a
             level-0 window ending exactly at a level-2 slot edge), so
             the cursor can enter a NEW slot at every level above l in
             the same step. Enter them top-down — migrate overflow when
             a fresh top-level slot comes into range, then cascade each
             newly entered slot, higher levels first so their contents
             re-place below before the lower slot is drained. Cascading
             only the immediate parent would leave anything parked in a
             coincidentally entered higher slot to be silently overtaken
             until the wheel wrapped back around. *)
          let pshift = shift w (l + 1) in
          w.base <- ((w.base asr pshift) + 1) lsl pshift;
          if l + 1 >= levels then migrate_ovf w
          else
            (* Down to 0, not l+1: a higher cascade can feed [cur]
               directly, ending the advance loop before the scan would
               ever revisit the lower cursor slots — so their wrapped,
               now-due entries must be cascaded here as well. *)
            for lv = levels - 1 downto 0 do
              if w.base land ((1 lsl shift w lv) - 1) = 0 then begin
                if lv = levels - 1 then migrate_ovf w;
                cascade w lv ((w.base asr shift w lv) land wmask)
              end
            done
        end
      end
    done
  end

let peek w =
  advance w;
  if w.cur.hn = 0 then None else Some w.cur.ha.(0)

let debug_check = Sys.getenv_opt "ULS_WHEEL_CHECK" <> None

let debug_min w =
  (* exhaustive min over every residence, for the debug invariant only *)
  let best = ref None in
  let consider x =
    match !best with
    | None -> best := Some x
    | Some b -> if w.cmp x b < 0 then best := Some x
  in
  for i = 0 to w.cur.hn - 1 do consider w.cur.ha.(i) done;
  for i = 0 to w.ovf.hn - 1 do consider w.ovf.ha.(i) done;
  Array.iteri
    (fun _l lvl ->
      Array.iter (fun slot -> for i = 0 to slot.bn - 1 do consider slot.ba.(i) done) lvl)
    w.slots;
  !best

let locate w x =
  let where = ref "?" in
  for i = 0 to w.cur.hn - 1 do if w.cur.ha.(i) == x then where := "cur" done;
  for i = 0 to w.ovf.hn - 1 do if w.ovf.ha.(i) == x then where := "ovf" done;
  Array.iteri
    (fun l lvl ->
      Array.iteri
        (fun idx slot ->
          for i = 0 to slot.bn - 1 do
            if slot.ba.(i) == x then where := Printf.sprintf "L%d[%d]" l idx
          done)
        lvl)
    w.slots;
  !where

let pop w =
  advance w;
  if w.cur.hn = 0 then None
  else begin
    (if debug_check then
       match debug_min w with
       | Some m when w.cmp m w.cur.ha.(0) < 0 ->
         Printf.eprintf
           "WHEEL BUG: true min t=%d at %s but cur top t=%d; base=%d \
            counts=[%s] cur=%d ovf=%d\n%!"
           (w.time m) (locate w m)
           (w.time w.cur.ha.(0))
           w.base
           (String.concat ";" (Array.to_list (Array.map string_of_int w.counts)))
           w.cur.hn w.ovf.hn
       | _ -> ());
    w.len <- w.len - 1;
    Some (heap_pop w w.cur)
  end

let clear w =
  Array.iter
    (fun lvl ->
      Array.iter
        (fun slot ->
          slot.ba <- [||];
          slot.bn <- 0)
        lvl)
    w.slots;
  Array.fill w.counts 0 levels 0;
  w.cur.ha <- [||];
  w.cur.hn <- 0;
  w.ovf.ha <- [||];
  w.ovf.hn <- 0;
  w.len <- 0
