type t = {
  sim : Sim.t;
  uid : int;  (* sync identity for happens-before tracking *)
  name : string;
  mutable free_at : Time.ns;
  mutable busy : Time.ns;
  mutable jobs : int;
  mutable queue_delay : Time.ns;
}

let create sim ~name =
  { sim; uid = Sim.new_sync_uid sim; name; free_at = 0; busy = 0; jobs = 0;
    queue_delay = 0 }

let completion_after t d =
  if d < 0 then invalid_arg "Resource: negative duration";
  Sim.note_op t.sim Op_resource_use t.uid t.name;
  let now = Sim.now t.sim in
  let start = max now t.free_at in
  t.free_at <- start + d;
  t.busy <- t.busy + d;
  t.jobs <- t.jobs + 1;
  t.queue_delay <- t.queue_delay + (start - now);
  start + d

let use t d =
  let finish = completion_after t d in
  Sim.delay t.sim (finish - Sim.now t.sim)

let free_at t = max t.free_at (Sim.now t.sim)
let name t = t.name
let busy_time t = t.busy
let jobs t = t.jobs
let queue_delay_total t = t.queue_delay

let utilization t ~now =
  if now <= 0 then 0. else float_of_int t.busy /. float_of_int now
