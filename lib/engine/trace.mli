(** Structured cross-layer event tracing.

    Disabled by default (recording is a no-op until {!enable}). Each
    simulation has one shared trace reachable via {!for_sim}; the layers
    of the stack record {e instants} (point events) and {e spans}
    (begin/end pairs matched by id, so overlapping operations — e.g.
    messages in flight — nest correctly). Events carry the layer, node,
    optional connection id and sequence number, and the virtual
    timestamp. The buffer exports as a Chrome-trace JSON array loadable
    in chrome://tracing or Perfetto. *)

type layer = Net | Nic | Emp | Substrate | Tcpip | Collective | App | Engine

val layer_name : layer -> string

type kind = Span_begin of int | Span_end of int | Instant

type event = {
  ev_time : Time.ns;
  ev_layer : layer;
  ev_name : string;
  ev_kind : kind;
  ev_node : int;  (** -1 when not tied to a node *)
  ev_conn : int;  (** -1 when not tied to a connection *)
  ev_seq : int;  (** -1 when not tied to a sequence number *)
  ev_args : (string * string) list;
}

type t

val create : Sim.t -> t
(** A fresh, private trace (mostly for tests). *)

val for_sim : Sim.t -> t
(** The simulation's shared trace, created on first use. All stack
    instrumentation records here. Held in an ephemeron table: when the
    sim is collected, its trace goes too. *)

val registered_sims : unit -> int
(** Number of live sims with a trace (dead entries swept first). *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val instant :
  t ->
  layer:layer ->
  ?node:int ->
  ?conn:int ->
  ?seq:int ->
  ?args:(string * string) list ->
  string ->
  unit

val span_begin :
  t ->
  layer:layer ->
  ?node:int ->
  ?conn:int ->
  ?seq:int ->
  ?args:(string * string) list ->
  string ->
  int
(** Open a span; returns its id (0 when tracing is disabled — feeding 0
    back to {!span_end} is then a no-op). *)

val span_end :
  t ->
  layer:layer ->
  ?node:int ->
  ?conn:int ->
  ?seq:int ->
  ?args:(string * string) list ->
  string ->
  int ->
  unit

val span :
  t ->
  layer:layer ->
  ?node:int ->
  ?conn:int ->
  ?seq:int ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [span t ~layer name f] wraps [f] in a begin/end pair (the end is
    recorded even if [f] raises). *)

val events : t -> event list
(** Everything recorded while enabled, oldest first. *)

val clear : t -> unit

val span_totals : t -> (layer * string * int * int) list
(** Closed spans aggregated by (layer, name): [(layer, name, count,
    total_ns)], sorted. The basis for per-layer latency breakdowns. *)

val to_chrome_json : t -> string
(** The whole buffer as a Chrome-trace JSON array ([chrome://tracing]):
    pid = node, tid = layer, async spans keyed by span id. *)

(** {2 Legacy string interface} *)

val emit : t -> tag:string -> string -> unit
val emitf : t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val lines : t -> string list
(** Everything emitted while enabled, oldest first, rendered one event
    per line (legacy [emit] lines verbatim). *)

val dump : t -> Format.formatter -> unit
