type waiter = {
  mutable woken : bool;
  mutable timed_out : bool;
  resume : unit -> unit;
}

type t = {
  sim : Sim.t;
  uid : int;  (* sync identity for happens-before tracking *)
  label : string;
  queue : waiter Queue.t;
}

let create ?(label = "cond") sim =
  { sim; uid = Sim.new_sync_uid sim; label; queue = Queue.create () }

let label t = t.label

let waiters t =
  Queue.fold (fun n w -> if w.woken then n else n + 1) 0 t.queue

(* Waiters cancelled by timeout stay in the queue ([woken = true]) and are
   discarded lazily by [signal]/[broadcast]. *)

let prune t =
  (* Drop timed-out waiters at the head so a fiber polling with
     [wait_timeout] in a loop cannot grow the queue unboundedly. *)
  let rec go () =
    match Queue.peek_opt t.queue with
    | Some w when w.woken ->
      ignore (Queue.pop t.queue);
      go ()
    | _ -> ()
  in
  go ()

let enqueue t resume =
  prune t;
  let w = { woken = false; timed_out = false; resume } in
  Queue.push w t.queue;
  w

let wait t =
  Sim.note_op t.sim Op_cond_wait t.uid t.label;
  Sim.suspend t.sim ~label:t.label (fun resume -> ignore (enqueue t resume));
  Sim.note_op t.sim Op_cond_wake t.uid t.label

let wait_timeout t timeout =
  Sim.note_op t.sim Op_cond_wait t.uid t.label;
  let cell = ref None in
  Sim.suspend t.sim ~label:t.label (fun resume ->
      let w = enqueue t resume in
      cell := Some w;
      Sim.at t.sim
        (Sim.now t.sim + timeout)
        (fun () ->
          if not w.woken then begin
            w.woken <- true;
            w.timed_out <- true;
            w.resume ()
          end));
  match !cell with
  | Some w when w.timed_out -> `Timeout  (* no wake edge: nobody signalled *)
  | Some _ ->
    Sim.note_op t.sim Op_cond_wake t.uid t.label;
    `Ok
  | None ->
    (* The suspend registration runs before the fiber can be resumed, so
       the cell is always set by the time the fiber continues. *)
    failwith
      (Printf.sprintf
         "Cond.wait_timeout (%s): resumed before the waiter was registered"
         t.label)

let signal t =
  Sim.note_op t.sim Op_cond_signal t.uid t.label;
  let rec pop () =
    match Queue.take_opt t.queue with
    | None -> ()
    | Some w ->
      if w.woken then pop ()
      else begin
        w.woken <- true;
        w.resume ()
      end
  in
  pop ()

let broadcast t =
  Sim.note_op t.sim Op_cond_broadcast t.uid t.label;
  let rec drain () =
    match Queue.take_opt t.queue with
    | None -> ()
    | Some w ->
      if not w.woken then begin
        w.woken <- true;
        w.resume ()
      end;
      drain ()
  in
  drain ()

let rec wait_until t pred =
  if not (pred ()) then begin
    wait t;
    wait_until t pred
  end
