(** Per-simulation invariant monitors ("sanitizers").

    Protocol layers assert conserved quantities (credit counts in
    [0, N], descriptor posted/completed balance, buffer-ring occupancy)
    by calling {!check} at every state transition. When monitoring is
    disabled — the default — a check costs a field read and a branch, so
    the hooks live permanently in production paths; the analysis layer
    enables them for sanitized runs and reads back {!violations}.

    Like {!Metrics} and {!Trace}, one registry exists per simulation
    ({!for_sim}, keyed by {!Sim.uid}), so no handle is threaded through
    constructors. *)

type t

type violation = {
  v_name : string;  (** invariant name, e.g. ["sub.credit_range"] *)
  v_detail : string;
  v_fiber : string;  (** fiber running when the violation was recorded *)
  v_time : Time.ns;  (** virtual time of the violation *)
}

exception Violation of string
(** Raised by {!check}/{!fail} only under [enable ~strict:true]. *)

val create : Sim.t -> t
(** A fresh, private monitor (mostly for tests). *)

val for_sim : Sim.t -> t
(** The simulation's shared monitor, created on first use. Held in an
    ephemeron table: when the sim is collected, its monitor goes too. *)

val registered_sims : unit -> int
(** Number of live sims with a monitor (dead entries swept first). *)

val enable : ?strict:bool -> t -> unit
(** Turn monitoring on. With [strict], the first violation raises
    {!Violation} at the offending transition instead of only recording;
    without it, violations accumulate and the run continues (the race
    detector's mode: the fingerprint includes them). *)

val enabled : t -> bool

val check : t -> name:string -> bool -> (unit -> string) -> unit
(** [check t ~name ok detail] records a violation when monitoring is on
    and [ok] is false. [detail] is only forced on failure, so checks are
    free to interpolate state into the message. *)

val fail : t -> name:string -> string -> unit
(** Unconditionally record a violation (monitors that detect rather than
    assert, e.g. a leak scan). *)

val violations : t -> violation list
(** Oldest first. *)

val count : t -> int

val summary : t -> string list
(** One formatted line per violation, oldest first. *)

val string_of_violation : violation -> string
