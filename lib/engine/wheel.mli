(** Hierarchical timing wheel with an exact extraction-order contract.

    A calendar-queue replacement for the event heap: O(1) amortized
    insert and extract regardless of how many timers are pending, four
    levels of 256 slots each (a level-[l] slot spans
    [2^(grain_bits + 8l)] ns), and an overflow heap for timers beyond
    the top level's range (RTO ceilings, fault windows) that migrates
    down as the cursor approaches.

    Extraction order is {e identical} to a binary heap over the same
    comparator: every element whose time falls inside the current
    cursor slot sits in a near-future heap ordered by the full [cmp],
    so same-slot elements — in particular same-timestamp elements with
    tie-break priorities — dispatch in exactly the comparison order.
    Elements must never be inserted with a time earlier than the last
    extracted element's time (the simulator's no-scheduling-in-the-past
    rule); inserts earlier than the wheel's internal cursor but at or
    after the last extraction are routed into the near-future heap and
    order correctly. *)

type 'a t

val create :
  ?grain_bits:int ->
  dummy:'a ->
  time:('a -> int) ->
  cmp:('a -> 'a -> int) ->
  unit ->
  'a t
(** [create ~dummy ~time ~cmp ()] builds an empty wheel. [time] must be
    non-negative and consistent with [cmp]'s primary key. [dummy] fills
    vacated slots so extracted elements are never retained.
    [grain_bits] (default 8, i.e. 256 ns) sets the finest slot width;
    the four levels then span [2^(grain_bits+32)] ns (~18 min at the
    default) before the overflow heap takes over. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val peek : 'a t -> 'a option
val pop : 'a t -> 'a option
val clear : 'a t -> unit
