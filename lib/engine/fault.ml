(* Deterministic fault injection. Each link gets its own SplitMix64
   stream derived from (engine seed, link name): the verdict sequence a
   link sees depends only on how many frames crossed *that* link, so
   adding traffic elsewhere (or reordering link creation) does not
   reshuffle the faults — the property that makes chaos runs
   reproducible and their failures bisectable. *)

type decision =
  | Deliver
  | Drop of string
  | Corrupt
  | Duplicate
  | Delay of Time.ns

let decision_kind = function
  | Deliver -> "deliver"
  | Drop _ -> "drop"
  | Corrupt -> "corrupt"
  | Duplicate -> "duplicate"
  | Delay _ -> "delay"

type plan = {
  drop_p : float;
  burst_p : float;
  burst_len : int;
  corrupt_p : float;
  dup_p : float;
  delay_p : float;
  delay_max : Time.ns;
  down : (Time.ns * Time.ns) list;
}

let clean =
  {
    drop_p = 0.;
    burst_p = 0.;
    burst_len = 0;
    corrupt_p = 0.;
    dup_p = 0.;
    delay_p = 0.;
    delay_max = 0;
    down = [];
  }

let uniform_loss p = { clean with drop_p = p }

let plan_is_clean p =
  p.drop_p = 0. && p.burst_p = 0. && p.corrupt_p = 0. && p.dup_p = 0.
  && p.delay_p = 0. && p.down = []

type link_state = {
  ls_rng : Rng.t;
  mutable ls_plan : plan option;  (* None: follow the default plan *)
  mutable ls_burst_left : int;
}

type t = {
  sim : Sim.t;
  seed : int;
  metrics : Metrics.t;
  trace : Trace.t;
  links : (string, link_state) Hashtbl.t;
  pauses : (int, (Time.ns * Time.ns) list) Hashtbl.t;
  tally : (string, int) Hashtbl.t;
  fault_counters : (string, Stats.Counter.t) Hashtbl.t;
      (* key -> handle, memoised so injection skips the registry's name
         lookup *)
  mutable default_plan : plan;
  mutable injected : int;
  mutable active : bool;
}

let create ?(seed = 0) sim =
  {
    sim;
    seed;
    metrics = Metrics.for_sim sim;
    trace = Trace.for_sim sim;
    links = Hashtbl.create 16;
    pauses = Hashtbl.create 4;
    tally = Hashtbl.create 8;
    fault_counters = Hashtbl.create 8;
    default_plan = clean;
    injected = 0;
    active = false;
  }

let seed t = t.seed
let active t = t.active

let refresh_active t =
  let link_active =
    Hashtbl.fold
      (fun _ ls acc ->
        acc
        || match ls.ls_plan with Some p -> not (plan_is_clean p) | None -> false)
      t.links false
  in
  t.active <-
    link_active
    || not (plan_is_clean t.default_plan)
    || Hashtbl.length t.pauses > 0

let link_state t link =
  match Hashtbl.find_opt t.links link with
  | Some ls -> ls
  | None ->
    let ls =
      {
        (* Seed each link from (engine seed, link name) so streams are
           stable across runs and independent across links. *)
        ls_rng = Rng.create ~seed:(t.seed lxor (Hashtbl.hash link * 0x2545F49));
        ls_plan = None;
        ls_burst_left = 0;
      }
    in
    Hashtbl.replace t.links link ls;
    ls

let set_default_plan t plan =
  t.default_plan <- plan;
  refresh_active t

let set_link_plan t ~link plan =
  (link_state t link).ls_plan <- Some plan;
  refresh_active t

let link_down t ~link ~from ~until =
  let ls = link_state t link in
  let base = match ls.ls_plan with Some p -> p | None -> t.default_plan in
  ls.ls_plan <- Some { base with down = (from, until) :: base.down };
  refresh_active t

let pause_node t ~node ~from ~until =
  let windows =
    match Hashtbl.find_opt t.pauses node with Some w -> w | None -> []
  in
  Hashtbl.replace t.pauses node ((from, until) :: windows);
  refresh_active t

let in_window now windows =
  List.exists (fun (from, until) -> now >= from && now < until) windows

let node_paused t node now =
  match Hashtbl.find_opt t.pauses node with
  | Some windows -> in_window now windows
  | None -> false

let tally_key = function
  | Deliver -> ""
  | Drop cause -> "drop." ^ cause
  | Corrupt -> "corrupt"
  | Duplicate -> "duplicate"
  | Delay _ -> "delay"

let record t ~link verdict =
  match verdict with
  | Deliver -> verdict
  | _ ->
    let key = tally_key verdict in
    Hashtbl.replace t.tally key
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.tally key));
    t.injected <- t.injected + 1;
    let c =
      match Hashtbl.find_opt t.fault_counters key with
      | Some c -> c
      | None ->
        let c = Metrics.counter t.metrics ("fault." ^ key) in
        Hashtbl.add t.fault_counters key c;
        c
    in
    Stats.Counter.incr c;
    Trace.instant t.trace ~layer:Trace.Net ("fault." ^ decision_kind verdict)
      ~args:[ ("link", link) ];
    verdict

let decide t ~link ~src ~dst =
  if not t.active then Deliver
  else begin
    let now = Sim.now t.sim in
    if node_paused t src now || node_paused t dst now then
      record t ~link (Drop "pause")
    else begin
      let ls = link_state t link in
      let plan = match ls.ls_plan with Some p -> p | None -> t.default_plan in
      if plan_is_clean plan && ls.ls_burst_left = 0 then Deliver
      else if in_window now plan.down then record t ~link (Drop "down")
      else if ls.ls_burst_left > 0 then begin
        ls.ls_burst_left <- ls.ls_burst_left - 1;
        record t ~link (Drop "burst")
      end
      else begin
        (* Independent draws per fault class, in a fixed order, so a
           plan's loss pattern does not change when (say) duplication is
           also enabled... it does consume extra draws, but the same
           extra draws every run. *)
        let rng = ls.ls_rng in
        let drop = plan.drop_p > 0. && Rng.float rng < plan.drop_p in
        let burst = plan.burst_p > 0. && Rng.float rng < plan.burst_p in
        let corrupt = plan.corrupt_p > 0. && Rng.float rng < plan.corrupt_p in
        let dup = plan.dup_p > 0. && Rng.float rng < plan.dup_p in
        let delay = plan.delay_p > 0. && Rng.float rng < plan.delay_p in
        if drop then record t ~link (Drop "loss")
        else if burst then begin
          ls.ls_burst_left <- max 0 (plan.burst_len - 1);
          record t ~link (Drop "burst")
        end
        else if corrupt then record t ~link Corrupt
        else if dup then record t ~link Duplicate
        else if delay then
          record t ~link (Delay (1 + Rng.int rng (max 1 plan.delay_max)))
        else Deliver
      end
    end
  end

let decisions t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tally []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let faults_injected t = t.injected
