(** Growable array (OCaml 5.1 has no [Dynarray] yet). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Remove and return the last element. @raise Invalid_argument if empty. *)

val clear : 'a t -> unit

val truncate : 'a t -> int -> unit
(** Keep the first [n] elements, dropping the rest in place (no
    reallocation). @raise Invalid_argument if [n] exceeds the length. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_array : 'a t -> 'a array
val sort : ('a -> 'a -> int) -> 'a t -> unit
