(** Unbounded FIFO channel between fibers. *)

type 'a t

val create : ?label:string -> Sim.t -> 'a t
(** [label] names this channel in deadlock wait-for reports (see
    {!Cond.create}). *)

val send : 'a t -> 'a -> unit

val recv : 'a t -> 'a
(** Block the calling fiber until a message is available. *)

val recv_timeout : 'a t -> Time.ns -> 'a option
val try_recv : 'a t -> 'a option
val peek : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool
