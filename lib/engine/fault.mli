(** Deterministic, seeded fault injection for the simulated network.

    A {!t} is a fault-plan engine: each wire hop (uplink, switch stage,
    downlink) asks for a {!decision} per frame and applies the verdict
    itself — the engine owns all randomness (one SplitMix64 stream per
    link, derived from the engine seed and the link name, so a link's
    fault pattern is independent of the traffic on other links and of
    link creation order), the scheduled outage windows, and the per-kind
    accounting. Two runs with the same seed and plans see byte-identical
    fault sequences.

    When no plan is installed {!decide} short-circuits to {!Deliver}
    without drawing randomness, so an idle fault engine adds no cost and
    no nondeterminism. *)

type decision =
  | Deliver
  | Drop of string
      (** Frame lost on the wire. The argument names the cause:
          ["loss"], ["burst"], ["down"], ["pause"] or ["filter"]. *)
  | Corrupt
      (** Deliver with damaged payload bytes; the receiving NIC's CRC
          check catches it and drops the frame (so corruption consumes
          wire time and RX work, unlike a plain drop). *)
  | Duplicate  (** Deliver twice, back to back. *)
  | Delay of Time.ns
      (** Deliver late by the given extra delay. Delays larger than the
          inter-frame gap reorder frames on the link. *)

val decision_kind : decision -> string
(** Short name for accounting: "deliver", "drop", "corrupt",
    "duplicate", "delay". *)

(** Per-link fault plan. All probabilities are per frame in [0, 1]. *)
type plan = {
  drop_p : float;  (** independent Bernoulli frame loss *)
  burst_p : float;  (** probability a frame starts a loss burst *)
  burst_len : int;  (** frames lost per burst (including the first) *)
  corrupt_p : float;  (** byte corruption (caught by the NIC CRC) *)
  dup_p : float;  (** frame duplication *)
  delay_p : float;  (** probability of extra delay (reordering) *)
  delay_max : Time.ns;  (** extra delay is uniform in [1, delay_max] *)
  down : (Time.ns * Time.ns) list;
      (** scheduled link-down windows [(from, until))]: every frame in a
          window is dropped *)
}

val clean : plan
(** No faults: every field zero/empty. *)

val uniform_loss : float -> plan
(** [clean] with [drop_p] set — the loss-sweep workhorse. *)

type t

val create : ?seed:int -> Sim.t -> t
(** A fault engine for [sim]. Defaults to seed 0. *)

val seed : t -> int

val set_default_plan : t -> plan -> unit
(** Plan used by links that have no specific plan installed. *)

val set_link_plan : t -> link:string -> plan -> unit
(** Override the plan for one named link (e.g. ["uplink-0"]). *)

val link_down : t -> link:string -> from:Time.ns -> until:Time.ns -> unit
(** Add a scheduled outage window to one link's plan. *)

val pause_node : t -> node:int -> from:Time.ns -> until:Time.ns -> unit
(** Node outage: every frame to or from [node] inside the window is
    dropped on every hop, as if the host stopped responding. *)

val active : t -> bool
(** Some plan or pause window is installed ([decide] may return
    something other than [Deliver]). *)

val decide : t -> link:string -> src:int -> dst:int -> decision
(** Verdict for one frame crossing [link] now. [src]/[dst] are station
    ids (used only by node pause windows). Counts the verdict per kind
    in {!Metrics} (["fault.drop.<cause>"], ["fault.corrupt"], ...) and
    emits a {!Trace} instant for every non-[Deliver] verdict. *)

val decisions : t -> (string * int) list
(** Per-kind verdict counts so far, sorted by kind name (e.g.
    [("corrupt", 3); ("drop.loss", 17); ...]); "deliver" is not
    tracked. *)

val faults_injected : t -> int
(** Total non-[Deliver] verdicts. *)
