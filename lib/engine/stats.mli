(** Measurement collection for experiments. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Summary : sig
  (** Bounded-reservoir sample summary. [count]/[sum]/[mean]/[min]/
      [max]/[stddev] are exact over everything observed (running
      accumulators); percentiles are exact up to the reservoir capacity
      (8192 samples) and computed over a deterministic uniform
      subsample beyond it, so unbounded runs no longer retain every
      sample. Identical observation streams produce identical
      summaries (the reservoir PRNG is fixed-seeded). *)

  type t

  val create : unit -> t
  val add : t -> float -> unit

  val count : t -> int
  (** Total observations, not the retained-reservoir size. *)

  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val stddev : t -> float

  val percentile : t -> float -> float
  (** [percentile t 0.5] is the median. Nearest-rank on the sorted
      (reservoir) samples. *)

  val sum : t -> float
  val clear : t -> unit
end

module Series : sig
  (** (x, y) points accumulated by sweeps, printable as a table column. *)

  type t

  val create : name:string -> t
  val add : t -> x:float -> y:float -> unit
  val name : t -> string
  val points : t -> (float * float) list
end
