(** Named counters, gauges and histograms, optionally per node.

    One registry per simulation ({!for_sim}, keyed by {!Sim.uid}) so any
    layer can account events without a handle threaded through every
    constructor. Metric names follow ["<layer>.<event>"] with a unit
    suffix where one applies (e.g. ["emp.match_walk_descs"],
    ["sub.credit_wait_us"]). Unlike {!Trace}, metrics are always on:
    counters are too cheap to gate. *)

type t

val create : unit -> t
(** A fresh, private registry (mostly for tests). *)

val for_sim : Sim.t -> t
(** The simulation's shared registry, created on first use. Held in an
    ephemeron table: when the sim is collected, its registry goes too. *)

val registered_sims : unit -> int
(** Number of live sims with a registry (dead entries swept first) —
    lets tests assert the registry does not leak across sims. *)

(** {2 Counters} *)

val counter : t -> ?node:int -> string -> Stats.Counter.t
val incr : t -> ?node:int -> string -> unit
val add : t -> ?node:int -> string -> int -> unit
val counter_value : t -> ?node:int -> string -> int

(** {2 Gauges} *)

val gauge : t -> ?node:int -> string -> float ref
val set_gauge : t -> ?node:int -> string -> float -> unit
val gauge_value : t -> ?node:int -> string -> float

(** {2 Histograms} *)

val histogram : t -> ?node:int -> string -> Stats.Summary.t
(** Full sample summary: mean, min/max, stddev, percentiles. *)

val observe : t -> ?node:int -> string -> float -> unit

(** {2 Registry} *)

val reset : t -> unit
(** Zero every counter and gauge, clear every histogram (the metrics
    themselves stay registered). *)

val counters_snapshot : t -> (int * string * int) list
(** Every registered counter as [(node, name, value)], sorted — a
    canonical ordering usable for final-state fingerprints (node [-1]
    means not tied to a node). *)

val dump : t -> Format.formatter -> unit
(** Per-node listing: counters and gauges with values, histograms with
    count / mean / p50 / p95 / max. *)
