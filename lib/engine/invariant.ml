(* Per-simulation invariant monitor ("sanitizer") registry. Protocol
   layers call [check] at state transitions; the call is a field read
   and a branch when monitoring is disabled, so the hooks stay in
   production paths permanently. One registry per simulation (via the
   Sim uid, like Metrics/Trace) so layers need no handle threading. *)

type violation = {
  v_name : string;
  v_detail : string;
  v_fiber : string;
  v_time : Time.ns;
}

type t = {
  sim : Sim.t;
  mutable enabled : bool;
  mutable strict : bool;
  mutable violations : violation list;  (* newest first *)
}

exception Violation of string

let create sim = { sim; enabled = false; strict = false; violations = [] }

(* Ephemeron-keyed like Metrics/Trace: a collected sim evicts its
   monitor (the monitor references the sim, so a plain weak key would
   never die). *)
module Sim_tbl = Ephemeron.K1.Make (struct
  type nonrec t = Sim.t

  let equal = ( == )
  let hash = Sim.uid
end)

let registry : t Sim_tbl.t = Sim_tbl.create 8

let for_sim sim =
  match Sim_tbl.find_opt registry sim with
  | Some t -> t
  | None ->
    let t = create sim in
    Sim_tbl.replace registry sim t;
    t

let registered_sims () =
  Sim_tbl.clean registry;
  Sim_tbl.length registry

let enable ?(strict = false) t =
  t.enabled <- true;
  t.strict <- strict

let enabled t = t.enabled

let string_of_violation v =
  Printf.sprintf "[%s] t=%dns fiber=%s: %s" v.v_name v.v_time v.v_fiber
    v.v_detail

let fail t ~name detail =
  let v =
    {
      v_name = name;
      v_detail = detail;
      v_fiber = Sim.current_fiber t.sim;
      v_time = Sim.now t.sim;
    }
  in
  t.violations <- v :: t.violations;
  if t.strict then raise (Violation (string_of_violation v))

let check t ~name ok detail = if t.enabled && not ok then fail t ~name (detail ())

let violations t = List.rev t.violations
let count t = List.length t.violations
let summary t = List.rev_map string_of_violation t.violations
