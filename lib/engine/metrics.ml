(* Named counters / gauges / histograms, optionally per node. One
   registry per simulation (via the Sim uid, like Trace) so the layers
   of the stack can account events without threading a handle through
   every constructor. Naming convention: "<layer>.<event>" with a unit
   suffix where one applies ("emp.match_walk_descs",
   "sub.credit_wait_us"). *)

type key = {
  k_name : string;
  k_node : int;  (* -1 = not tied to a node *)
}

type t = {
  counters : (key, Stats.Counter.t) Hashtbl.t;
  gauges : (key, float ref) Hashtbl.t;
  histograms : (key, Stats.Summary.t) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 32;
  }

(* Ephemeron-keyed on the sim itself: when a simulation becomes
   unreachable its metrics registry is collected with it, so sweeps
   that build thousands of sims (races, chaos, benches) don't grow
   without bound. An ephemeron (not a plain weak key) is required
   because registry values may reference their sim. *)
module Sim_tbl = Ephemeron.K1.Make (struct
  type nonrec t = Sim.t

  let equal = ( == )
  let hash = Sim.uid
end)

let registry : t Sim_tbl.t = Sim_tbl.create 8

let for_sim sim =
  match Sim_tbl.find_opt registry sim with
  | Some m -> m
  | None ->
    let m = create () in
    Sim_tbl.replace registry sim m;
    m

let registered_sims () =
  Sim_tbl.clean registry;
  Sim_tbl.length registry

let find tbl mk k =
  match Hashtbl.find_opt tbl k with
  | Some v -> v
  | None ->
    let v = mk () in
    Hashtbl.replace tbl k v;
    v

let counter t ?(node = -1) name =
  find t.counters Stats.Counter.create { k_name = name; k_node = node }

let incr t ?node name = Stats.Counter.incr (counter t ?node name)
let add t ?node name n = Stats.Counter.add (counter t ?node name) n
let counter_value t ?node name = Stats.Counter.value (counter t ?node name)

let gauge t ?(node = -1) name =
  find t.gauges (fun () -> ref 0.) { k_name = name; k_node = node }

let set_gauge t ?node name v = gauge t ?node name := v
let gauge_value t ?node name = !(gauge t ?node name)

let histogram t ?(node = -1) name =
  find t.histograms Stats.Summary.create { k_name = name; k_node = node }

let observe t ?node name v = Stats.Summary.add (histogram t ?node name) v

let reset t =
  Hashtbl.iter (fun _ c -> Stats.Counter.reset c) t.counters;
  Hashtbl.iter (fun _ g -> g := 0.) t.gauges;
  Hashtbl.iter (fun _ h -> Stats.Summary.clear h) t.histograms

let counters_snapshot t =
  Hashtbl.fold
    (fun k c acc -> (k.k_node, k.k_name, Stats.Counter.value c) :: acc)
    t.counters []
  |> List.sort compare

(* --- dump --------------------------------------------------------------- *)

let nodes t =
  let seen = Hashtbl.create 8 in
  let note k _ = Hashtbl.replace seen k.k_node () in
  Hashtbl.iter note t.counters;
  Hashtbl.iter note t.gauges;
  Hashtbl.iter note t.histograms;
  List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) seen [])

let sorted_bindings tbl node =
  Hashtbl.fold
    (fun k v acc -> if k.k_node = node then (k.k_name, v) :: acc else acc)
    tbl []
  |> List.sort compare

let dump t fmt =
  List.iter
    (fun node ->
      if node < 0 then Format.fprintf fmt "global:@."
      else Format.fprintf fmt "node %d:@." node;
      List.iter
        (fun (name, c) ->
          Format.fprintf fmt "  %-32s %d@." name (Stats.Counter.value c))
        (sorted_bindings t.counters node);
      List.iter
        (fun (name, g) -> Format.fprintf fmt "  %-32s %g@." name !g)
        (sorted_bindings t.gauges node);
      List.iter
        (fun (name, h) ->
          if Stats.Summary.count h > 0 then
            Format.fprintf fmt
              "  %-32s n=%d mean=%.2f p50=%.2f p95=%.2f max=%.2f@." name
              (Stats.Summary.count h) (Stats.Summary.mean h)
              (Stats.Summary.percentile h 0.5)
              (Stats.Summary.percentile h 0.95)
              (Stats.Summary.max h))
        (sorted_bindings t.histograms node))
    (nodes t)
