type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }
let length v = v.len
let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i = check v i; v.data.(i)
let set v i x = check v i; v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 16 else 2 * cap in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  (* Overwrite the vacated slot to avoid retaining [x]. When the pop
     empties the vector there is no live element to copy from — any
     overwrite would be [x] itself (which used to pin every drained
     heap's last task forever), so drop the whole backing array. *)
  if v.len = 0 then v.data <- [||]
  else v.data.(v.len) <- v.data.(v.len - 1);
  x

let clear v =
  v.data <- [||];
  v.len <- 0

let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Vec.truncate";
  if n = 0 then clear v
  else begin
    (* Overwrite the vacated tail to avoid retaining the dropped values. *)
    let filler = v.data.(0) in
    for i = n to v.len - 1 do
      v.data.(i) <- filler
    done;
    v.len <- n
  end

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_array v = Array.sub v.data 0 v.len

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len
