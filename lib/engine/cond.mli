(** Condition variables for simulator fibers (FIFO wake-up order). *)

type t

val create : ?label:string -> Sim.t -> t
(** [label] names this condition in deadlock wait-for reports
    ({!Sim.blocked_report}); include the owning object (e.g.
    ["conn:3 credits"]) so a report reads without source access. *)

val label : t -> string

val wait : t -> unit
(** Block the calling fiber until signalled. *)

val wait_timeout : t -> Time.ns -> [ `Ok | `Timeout ]
(** Block until signalled or until the timeout elapses. *)

val wait_until : t -> (unit -> bool) -> unit
(** [wait_until c pred] returns as soon as [pred ()] holds, re-blocking on
    [c] after each spurious wake-up. Checks [pred] before first blocking. *)

val signal : t -> unit
(** Wake the oldest waiter, if any. *)

val broadcast : t -> unit
val waiters : t -> int
