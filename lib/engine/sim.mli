(** Discrete-event simulator with cooperative fibers.

    Protocol agents are written as ordinary OCaml functions running inside
    fibers (OCaml 5 effects). A fiber advances virtual time with {!delay}
    and blocks on external events with {!suspend}; higher-level
    synchronisation ({!Cond}, {!Mailbox}, {!Resource}) is built on these
    two primitives. Execution is fully deterministic: simultaneous events
    run in scheduling order. *)

type t

exception Fiber_failure of string * exn
(** Raised out of {!run} when a fiber dies with an uncaught exception.
    Carries the fiber's name and the original exception. *)

val create : unit -> t

val uid : t -> int
(** Process-unique identifier of this simulation instance, usable as a
    key in side tables (see {!Metrics.for_sim}, {!Trace.for_sim}). *)

val now : t -> Time.ns

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** Start a fiber at the current virtual time. *)

val spawn_at : t -> ?name:string -> Time.ns -> (unit -> unit) -> unit

val at : t -> Time.ns -> (unit -> unit) -> unit
(** Schedule a plain (non-fiber) callback at an absolute time. The
    callback must not perform fiber effects. *)

val delay : t -> Time.ns -> unit
(** [delay sim d] suspends the calling fiber for [d] nanoseconds of
    virtual time. [d <= 0] is a no-op. Must be called from a fiber. *)

val suspend : t -> ((unit -> unit) -> unit) -> unit
(** [suspend sim register] parks the calling fiber and calls
    [register resume]. Calling [resume] (from any context) schedules the
    fiber to continue at the then-current virtual time; second and later
    calls to [resume] are ignored, so racing wake-ups (e.g. a timeout and
    a signal) are safe. *)

val run : ?until:Time.ns -> t -> [ `Quiescent | `Time_limit | `Stopped ]
(** Execute events until the queue drains ([`Quiescent]), virtual time
    would pass [until] ([`Time_limit]), or {!stop} is called
    ([`Stopped]). Can be called repeatedly to resume. *)

val stop : t -> unit

val blocked_fibers : t -> int
(** Number of fibers currently parked in {!suspend}. After a [`Quiescent]
    run this being non-zero means those fibers can never resume —
    i.e. deadlock (the situation of Figure 7 of the paper). *)

val live_fibers : t -> int
val events_executed : t -> int
