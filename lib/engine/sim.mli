(** Discrete-event simulator with cooperative fibers.

    Protocol agents are written as ordinary OCaml functions running inside
    fibers (OCaml 5 effects). A fiber advances virtual time with {!delay}
    and blocks on external events with {!suspend}; higher-level
    synchronisation ({!Cond}, {!Mailbox}, {!Resource}) is built on these
    two primitives. Execution is fully deterministic: simultaneous events
    run in scheduling order under the default {b FIFO} tie-break, or in a
    seeded-shuffled order under {!set_tiebreak} — the analysis layer's
    schedule perturbation (same-timestamp reordering only; timestamps
    themselves never move). *)

type t

exception Fiber_failure of string * exn
(** Raised out of {!run} when a fiber dies with an uncaught exception.
    Carries the fiber's name and the original exception. *)

val create : ?sched:[ `Heap | `Wheel ] -> unit -> t
(** [create ()] uses the binary comparison heap (the original event
    queue). [~sched:`Wheel] selects the hierarchical timing wheel
    ({!Wheel}): O(1) amortized insert/extract regardless of pending-event
    count, with dispatch order {e byte-identical} to the heap — the
    (time, pri, seq) tie-break contract holds on both, so FIFO runs,
    seeded shuffles, and determinism fingerprints are scheduler-
    independent. *)

val sched : t -> [ `Heap | `Wheel ]
(** Which event queue this sim was created with. *)

val uid : t -> int
(** Process-unique identifier of this simulation instance, usable as a
    key in side tables (see {!Metrics.for_sim}, {!Trace.for_sim}). *)

val now : t -> Time.ns

val set_tiebreak : t -> [ `Fifo | `Seeded_shuffle of int ] -> unit
(** Dispatch policy for same-timestamp tasks. [`Fifo] (the default)
    runs them in scheduling order; [`Seeded_shuffle seed] assigns each
    subsequently scheduled task a priority drawn from a seeded PRNG, so
    simultaneous events dispatch in a reproducible shuffled order. Same
    seed, same schedule — a divergence found under one seed replays
    deterministically. Affects only tasks scheduled after the call. *)

val spawn : t -> ?name:string -> ?daemon:bool -> (unit -> unit) -> unit
(** Start a fiber at the current virtual time. [daemon] marks
    infrastructure fibers expected to stay parked forever (dispatch
    loops, protocol service fibers); deadlock diagnosis reports
    non-daemon parked fibers only. *)

val spawn_at : t -> ?name:string -> ?daemon:bool -> Time.ns -> (unit -> unit) -> unit

val at : t -> Time.ns -> (unit -> unit) -> unit
(** Schedule a plain (non-fiber) callback at an absolute time. The
    callback must not perform fiber effects. *)

val delay : t -> Time.ns -> unit
(** [delay sim d] suspends the calling fiber for [d] nanoseconds of
    virtual time. [d <= 0] is a no-op. Must be called from a fiber. *)

val suspend : t -> ?label:string -> ((unit -> unit) -> unit) -> unit
(** [suspend sim register] parks the calling fiber and calls
    [register resume]. Calling [resume] (from any context) schedules the
    fiber to continue at the then-current virtual time; second and later
    calls to [resume] are ignored, so racing wake-ups (e.g. a timeout and
    a signal) are safe. [label] names the suspend site in
    {!blocked_report} (deadlock diagnosis). If [register] itself raises,
    the fiber is accounted dead (not blocked) and the exception escapes
    as {!Fiber_failure}. *)

val run : ?until:Time.ns -> t -> [ `Quiescent | `Time_limit | `Stopped ]
(** Execute events until the queue drains ([`Quiescent]), virtual time
    would pass [until] ([`Time_limit]), or {!stop} is called
    ([`Stopped]). Can be called repeatedly to resume. *)

val stop : t -> unit

val blocked_fibers : t -> int
(** Number of fibers currently parked in {!suspend}. After a [`Quiescent]
    run this being non-zero means those fibers can never resume —
    i.e. deadlock (the situation of Figure 7 of the paper) for non-daemon
    fibers, or ordinary idling for daemon service loops. *)

type parked = {
  fiber : string;  (** fiber name given to {!spawn} *)
  label : string;  (** suspend-site label ({!Cond}/{!Mailbox} creation label) *)
  since : Time.ns;  (** virtual time the fiber parked *)
  daemon : bool;
}

val blocked_report : t -> parked list
(** Every currently parked fiber with what it suspended on, oldest
    first. The wait-for report behind deadlock diagnosis. *)

val current_fiber : t -> string
(** Name of the fiber currently executing ("main" outside any fiber).
    Lets invariant violations name their offending fiber. *)

val live_fibers : t -> int
val events_executed : t -> int
