(** Discrete-event simulator with cooperative fibers.

    Protocol agents are written as ordinary OCaml functions running inside
    fibers (OCaml 5 effects). A fiber advances virtual time with {!delay}
    and blocks on external events with {!suspend}; higher-level
    synchronisation ({!Cond}, {!Mailbox}, {!Resource}) is built on these
    two primitives. Execution is fully deterministic: simultaneous events
    run in scheduling order under the default {b FIFO} tie-break, or in a
    seeded-shuffled order under {!set_tiebreak} — the analysis layer's
    schedule perturbation (same-timestamp reordering only; timestamps
    themselves never move). *)

type t

exception Fiber_failure of string * exn
(** Raised out of {!run} when a fiber dies with an uncaught exception.
    Carries the fiber's name and the original exception. *)

val create : ?sched:[ `Heap | `Wheel ] -> unit -> t
(** [create ()] uses the binary comparison heap (the original event
    queue). [~sched:`Wheel] selects the hierarchical timing wheel
    ({!Wheel}): O(1) amortized insert/extract regardless of pending-event
    count, with dispatch order {e byte-identical} to the heap — the
    (time, pri, seq) tie-break contract holds on both, so FIFO runs,
    seeded shuffles, and determinism fingerprints are scheduler-
    independent. *)

val sched : t -> [ `Heap | `Wheel ]
(** Which event queue this sim was created with. *)

val uid : t -> int
(** Process-unique identifier of this simulation instance, usable as a
    key in side tables (see {!Metrics.for_sim}, {!Trace.for_sim}). *)

val now : t -> Time.ns

type tiebreak_spec =
  [ `Fifo | `Seeded_shuffle of int | `Controlled of (int array -> int) ]

val set_tiebreak : t -> tiebreak_spec -> unit
(** Dispatch policy for same-timestamp tasks. [`Fifo] (the default)
    runs them in scheduling order; [`Seeded_shuffle seed] assigns each
    subsequently scheduled task a priority drawn from a seeded PRNG, so
    simultaneous events dispatch in a reproducible shuffled order. Same
    seed, same schedule — a divergence found under one seed replays
    deterministically. Affects only tasks scheduled after the call.

    [`Controlled choose] is the systematic explorer's instrument: each
    time two or more tasks are due at the same instant, the whole tie is
    handed to [choose] as an array of task sequence numbers in FIFO
    order, and the returned index picks which runs next (out-of-range
    indices fall back to 0). The unchosen tasks are re-enqueued
    untouched and the tie is re-offered — minus the dispatched task —
    at the next step, so a chooser replaying a recorded decision list
    visits the exact same schedule. A singleton is not a decision
    point, and [choose] must not perform effects. *)

val spawn : t -> ?name:string -> ?daemon:bool -> (unit -> unit) -> unit
(** Start a fiber at the current virtual time. [daemon] marks
    infrastructure fibers expected to stay parked forever (dispatch
    loops, protocol service fibers); deadlock diagnosis reports
    non-daemon parked fibers only. *)

val spawn_at : t -> ?name:string -> ?daemon:bool -> Time.ns -> (unit -> unit) -> unit

val at : t -> Time.ns -> (unit -> unit) -> unit
(** Schedule a plain (non-fiber) callback at an absolute time. The
    callback must not perform fiber effects. *)

val delay : t -> Time.ns -> unit
(** [delay sim d] suspends the calling fiber for [d] nanoseconds of
    virtual time. [d <= 0] is a no-op. Must be called from a fiber. *)

val suspend : t -> ?label:string -> ((unit -> unit) -> unit) -> unit
(** [suspend sim register] parks the calling fiber and calls
    [register resume]. Calling [resume] (from any context) schedules the
    fiber to continue at the then-current virtual time; second and later
    calls to [resume] are ignored, so racing wake-ups (e.g. a timeout and
    a signal) are safe. [label] names the suspend site in
    {!blocked_report} (deadlock diagnosis). If [register] itself raises,
    the fiber is accounted dead (not blocked) and the exception escapes
    as {!Fiber_failure}. *)

val run : ?until:Time.ns -> t -> [ `Quiescent | `Time_limit | `Stopped ]
(** Execute events until the queue drains ([`Quiescent]), virtual time
    would pass [until] ([`Time_limit]), or {!stop} is called
    ([`Stopped]). Can be called repeatedly to resume. *)

val stop : t -> unit

val blocked_fibers : t -> int
(** Number of fibers currently parked in {!suspend}. After a [`Quiescent]
    run this being non-zero means those fibers can never resume —
    i.e. deadlock (the situation of Figure 7 of the paper) for non-daemon
    fibers, or ordinary idling for daemon service loops. *)

type parked = {
  fiber : string;  (** fiber name given to {!spawn} *)
  label : string;  (** suspend-site label ({!Cond}/{!Mailbox} creation label) *)
  since : Time.ns;  (** virtual time the fiber parked *)
  daemon : bool;
}

val blocked_report : t -> parked list
(** Every currently parked fiber with what it suspended on, oldest
    first. The wait-for report behind deadlock diagnosis. *)

val current_fiber : t -> string
(** Name of the fiber currently executing ("main" outside any fiber).
    Lets invariant violations name their offending fiber. *)

val live_fibers : t -> int
val events_executed : t -> int

(** {1 Sync-point instrumentation}

    Hooks let the analysis layer observe every synchronisation operation
    (for vector-clock happens-before tracking) and every dispatched task
    (for per-task footprints) without the engine knowing anything about
    clocks. With hooks unset — the default, and the only configuration
    benchmarks and production scenarios run — each instrumentation site
    costs one field read and branch and allocates nothing: {!op_kind}
    constructors are argless and [note_op] takes the uid and label as
    bare arguments. *)

type op_kind =
  | Op_spawn
  | Op_cond_wait  (** fiber is about to park on a {!Cond} *)
  | Op_cond_wake  (** fiber resumed from a {!Cond} wait (acquire edge) *)
  | Op_cond_signal  (** release edge to the woken waiter *)
  | Op_cond_broadcast  (** release edge to every woken waiter *)
  | Op_mailbox_send  (** release edge to the message's receiver *)
  | Op_mailbox_recv  (** acquire edge from the message's sender *)
  | Op_resource_use  (** serialization point: acquire + release *)

type hooks = {
  on_op : op_kind -> int -> string -> unit;
      (** [on_op kind uid label]: a sync operation on object [uid] by
          the fiber [current_fiber_id] (labels name the object in
          reports) *)
  on_spawn : parent:int -> child:int -> name:string -> unit;
      (** fiber creation: the program-order edge from parent to child *)
  on_dispatch : seq:int -> time:Time.ns -> unit;
      (** a task starts running; [seq] is its stable schedule number *)
}

val set_hooks : t -> hooks option -> unit
val note_op : t -> op_kind -> int -> string -> unit
(** Used by {!Cond}/{!Mailbox}/{!Resource} at each sync point; no-op
    (one branch, zero allocation) when hooks are unset. *)

val current_fiber_id : t -> int
(** Dense deterministic id of the executing fiber (0 = main; spawn
    order thereafter). Stable across runs of the same program, so
    vector clocks can be arrays indexed by fiber id. Plain {!at}
    callbacks do not reset it and inherit the last running fiber's id —
    sync operations from bare callbacks are rare and misattribution
    only weakens (never falsifies) a happens-before edge report. *)

val new_sync_uid : t -> int
(** Fresh deterministic identity for a sync object ({!Cond},
    {!Mailbox}, {!Resource}) within this sim. *)

val set_create_hook : (t -> unit) option -> unit
(** Module-level: called on every subsequently created sim. Lets the
    analysis layer attach {!hooks} to simulators it cannot construct
    itself (scenarios build their own clusters inside their run
    function). Unset it ([None]) as soon as the target sim exists; not
    for use outside the analysis layer. *)
