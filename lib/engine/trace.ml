(* Structured cross-layer event tracing. Events carry the layer they
   came from, the node, optional connection id / sequence number, and
   the virtual timestamp; spans (begin/end pairs matched by id) measure
   where a byte's latency goes, instants mark point events. The whole
   buffer exports as a Chrome-trace JSON array (chrome://tracing /
   Perfetto: one "process" per node, one "thread" per layer). *)

type layer = Net | Nic | Emp | Substrate | Tcpip | Collective | App | Engine

let layer_name = function
  | Net -> "net"
  | Nic -> "nic"
  | Emp -> "emp"
  | Substrate -> "substrate"
  | Tcpip -> "tcpip"
  | Collective -> "collective"
  | App -> "app"
  | Engine -> "engine"

let layer_index = function
  | Net -> 7
  | Nic -> 0
  | Emp -> 1
  | Substrate -> 2
  | Tcpip -> 3
  | Collective -> 4
  | App -> 5
  | Engine -> 6

type kind = Span_begin of int | Span_end of int | Instant

type event = {
  ev_time : Time.ns;
  ev_layer : layer;
  ev_name : string;
  ev_kind : kind;
  ev_node : int;  (* -1 when not tied to a node *)
  ev_conn : int;  (* -1 when not tied to a connection *)
  ev_seq : int;  (* -1 when not tied to a sequence number *)
  ev_args : (string * string) list;
}

type t = {
  sim : Sim.t;
  mutable on : bool;
  events : event Vec.t;
  mutable next_span : int;
}

let create sim = { sim; on = false; events = Vec.create (); next_span = 0 }

(* One shared trace per simulation, created on demand: instrumentation
   deep inside the stack reaches it through the sim it already holds.
   Ephemeron-keyed so a collected sim takes its trace with it — an
   ephemeron rather than a weak key because the trace holds the sim. *)
module Sim_tbl = Ephemeron.K1.Make (struct
  type nonrec t = Sim.t

  let equal = ( == )
  let hash = Sim.uid
end)

let registry : t Sim_tbl.t = Sim_tbl.create 8

let for_sim sim =
  match Sim_tbl.find_opt registry sim with
  | Some t -> t
  | None ->
    let t = create sim in
    Sim_tbl.replace registry sim t;
    t

let registered_sims () =
  Sim_tbl.clean registry;
  Sim_tbl.length registry

let enable t = t.on <- true
let disable t = t.on <- false
let enabled t = t.on

let record t ~layer ~node ~conn ~seq ~args name kind =
  Vec.push t.events
    {
      ev_time = Sim.now t.sim;
      ev_layer = layer;
      ev_name = name;
      ev_kind = kind;
      ev_node = node;
      ev_conn = conn;
      ev_seq = seq;
      ev_args = args;
    }

let instant t ~layer ?(node = -1) ?(conn = -1) ?(seq = -1) ?(args = []) name =
  if t.on then record t ~layer ~node ~conn ~seq ~args name Instant

let span_begin t ~layer ?(node = -1) ?(conn = -1) ?(seq = -1) ?(args = []) name
    =
  if t.on then begin
    t.next_span <- t.next_span + 1;
    record t ~layer ~node ~conn ~seq ~args name (Span_begin t.next_span);
    t.next_span
  end
  else 0

let span_end t ~layer ?(node = -1) ?(conn = -1) ?(seq = -1) ?(args = []) name
    id =
  if t.on && id > 0 then record t ~layer ~node ~conn ~seq ~args name (Span_end id)

let span t ~layer ?node ?conn ?seq ?args name f =
  let id = span_begin t ~layer ?node ?conn ?seq ?args name in
  Fun.protect
    ~finally:(fun () -> span_end t ~layer ?node ?conn ?seq ?args name id)
    f

let events t = List.rev (Vec.fold (fun acc e -> e :: acc) [] t.events)
let clear t = Vec.clear t.events

(* --- aggregation -------------------------------------------------------- *)

let span_totals t =
  let opened : (int, event) Hashtbl.t = Hashtbl.create 64 in
  let totals : (layer * string, int * int) Hashtbl.t = Hashtbl.create 16 in
  Vec.iter
    (fun e ->
      match e.ev_kind with
      | Span_begin id -> Hashtbl.replace opened id e
      | Span_end id -> (
        match Hashtbl.find_opt opened id with
        | Some b ->
          Hashtbl.remove opened id;
          let key = (b.ev_layer, b.ev_name) in
          let count, total =
            Option.value (Hashtbl.find_opt totals key) ~default:(0, 0)
          in
          Hashtbl.replace totals key (count + 1, total + (e.ev_time - b.ev_time))
        | None -> ())
      | Instant -> ())
    t.events;
  Hashtbl.fold
    (fun (layer, name) (count, total) acc -> (layer, name, count, total) :: acc)
    totals []
  |> List.sort compare

(* --- Chrome trace export ------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_to_chrome b e =
  let ph, extra =
    match e.ev_kind with
    | Span_begin id -> ("b", Printf.sprintf ",\"id\":%d" id)
    | Span_end id -> ("e", Printf.sprintf ",\"id\":%d" id)
    | Instant -> ("i", ",\"s\":\"t\"")
  in
  let args =
    (if e.ev_conn >= 0 then [ ("conn", string_of_int e.ev_conn) ] else [])
    @ (if e.ev_seq >= 0 then [ ("seq", string_of_int e.ev_seq) ] else [])
    @ e.ev_args
  in
  let args_json =
    match args with
    | [] -> ""
    | args ->
      ",\"args\":{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
             args)
      ^ "}"
  in
  Printf.bprintf b
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d%s%s}"
    (json_escape e.ev_name) (layer_name e.ev_layer) ph
    (float_of_int e.ev_time /. 1_000.)
    (max 0 e.ev_node) (layer_index e.ev_layer) extra args_json

let to_chrome_json t =
  let b = Buffer.create 4_096 in
  Buffer.add_string b "[";
  let first = ref true in
  Vec.iter
    (fun e ->
      if !first then first := false else Buffer.add_string b ",\n";
      event_to_chrome b e)
    t.events;
  Buffer.add_string b "]\n";
  Buffer.contents b

(* --- legacy string interface -------------------------------------------- *)

let render e =
  match List.assoc_opt "line" e.ev_args with
  | Some line -> line
  | None ->
    Format.asprintf "[%a] %-12s %s" Time.pp e.ev_time
      (layer_name e.ev_layer) e.ev_name

let emit t ~tag msg =
  if t.on then begin
    let line =
      Format.asprintf "[%a] %-12s %s" Time.pp (Sim.now t.sim) tag msg
    in
    record t ~layer:Engine ~node:(-1) ~conn:(-1) ~seq:(-1)
      ~args:[ ("tag", tag); ("line", line) ]
      msg Instant
  end

let emitf t ~tag fmt = Format.kasprintf (fun s -> emit t ~tag s) fmt
let lines t = List.map render (events t)
let dump t fmt = List.iter (fun l -> Format.fprintf fmt "%s@." l) (lines t)
