module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let reset t = t.v <- 0
end

module Summary = struct
  (* Bounded reservoir: the first [cap] samples are kept exactly (so
     percentiles on experiment-sized runs are unchanged); beyond that,
     Algorithm R replaces a uniformly drawn slot, keeping a uniform
     subsample of everything observed while count/sum/min/max/stddev
     stay exact via running accumulators (Welford for the variance).
     The replacement PRNG is seeded per-summary with a fixed constant,
     so identical observation streams yield identical reservoirs —
     determinism double-runs stay byte-identical. *)
  let cap = 8192
  let reservoir_seed = 0x52455356 (* "RESV" *)

  type t = {
    samples : float Vec.t;
    mutable sorted : bool;
    mutable n : int;  (* total observed, not reservoir size *)
    mutable total : float;
    mutable mn : float;
    mutable mx : float;
    mutable welford_mean : float;
    mutable m2 : float;
    mutable rng : Rng.t;
  }

  let create () =
    {
      samples = Vec.create ();
      sorted = true;
      n = 0;
      total = 0.;
      mn = infinity;
      mx = neg_infinity;
      welford_mean = 0.;
      m2 = 0.;
      rng = Rng.create ~seed:reservoir_seed;
    }

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x;
    let d = x -. t.welford_mean in
    t.welford_mean <- t.welford_mean +. (d /. float_of_int t.n);
    t.m2 <- t.m2 +. (d *. (x -. t.welford_mean));
    if Vec.length t.samples < cap then begin
      Vec.push t.samples x;
      t.sorted <- false
    end
    else begin
      let j = Rng.int t.rng t.n in
      if j < cap then begin
        Vec.set t.samples j x;
        t.sorted <- false
      end
    end

  let count t = t.n
  let sum t = t.total
  let mean t = if t.n = 0 then 0. else t.total /. float_of_int t.n
  let min t = t.mn
  let max t = t.mx

  let stddev t =
    if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))

  let percentile t p =
    let n = Vec.length t.samples in
    if n = 0 then 0.
    else begin
      if not t.sorted then begin
        Vec.sort Float.compare t.samples;
        t.sorted <- true
      end;
      let rank = int_of_float (Float.round (p *. float_of_int (n - 1))) in
      let rank = Stdlib.min (n - 1) (Stdlib.max 0 rank) in
      Vec.get t.samples rank
    end

  let clear t =
    Vec.clear t.samples;
    t.sorted <- true;
    t.n <- 0;
    t.total <- 0.;
    t.mn <- infinity;
    t.mx <- neg_infinity;
    t.welford_mean <- 0.;
    t.m2 <- 0.;
    t.rng <- Rng.create ~seed:reservoir_seed
end

module Series = struct
  type t = {
    name : string;
    mutable pts : (float * float) list;
  }

  let create ~name = { name; pts = [] }
  let add t ~x ~y = t.pts <- (x, y) :: t.pts
  let name t = t.name
  let points t = List.rev t.pts
end
