(* Task cells are mutable and pooled: dispatch recycles the cell onto an
   intrusive free list (and drops the closure) instead of garbage for
   every event. [dummy_task] is the free-list terminator and the filler
   value for the wheel's internal arrays. *)
type task = {
  mutable time : Time.ns;
  mutable pri : int;  (* tie-break priority among same-timestamp tasks *)
  mutable seq : int;
  mutable run : unit -> unit;
  mutable free_next : task;
}

let nop () = ()

let rec dummy_task =
  { time = max_int; pri = max_int; seq = max_int; run = nop;
    free_next = dummy_task }

(* Same-timestamp dispatch order. FIFO gives every task the same
   priority, so the [seq] fallback reproduces strict scheduling order;
   the seeded shuffle draws a random priority per task, perturbing the
   order of simultaneous events only — the race detector's schedule
   perturbation (timestamps themselves never move). [Controlled] hands
   each same-timestamp tie to an external chooser as an explicit
   decision point: the systematic explorer's instrument. *)
type tiebreak =
  | Fifo
  | Shuffle of Rng.t
  | Controlled of (int array -> int)

(* Sync-point instrumentation. Constructors are argless so classifying
   an operation never allocates; the entire hooks-off cost is one field
   read and branch per sync operation ([note_op]). *)
type op_kind =
  | Op_spawn
  | Op_cond_wait
  | Op_cond_wake
  | Op_cond_signal
  | Op_cond_broadcast
  | Op_mailbox_send
  | Op_mailbox_recv
  | Op_resource_use

type hooks = {
  on_op : op_kind -> int -> string -> unit;
      (* kind, sync-object uid, label; the acting fiber is
         [current_fiber_id] at call time *)
  on_spawn : parent:int -> child:int -> name:string -> unit;
  on_dispatch : seq:int -> time:Time.ns -> unit;
}

type park = {
  pk_fiber : string;
  pk_label : string;
  pk_since : Time.ns;
  pk_daemon : bool;
}

type parked = {
  fiber : string;
  label : string;
  since : Time.ns;
  daemon : bool;
}

(* Event queue: binary comparison heap (the original structure) or the
   hierarchical timing wheel. Both dispatch in identical
   (time, pri, seq) order — the wheel's near-future heap uses the same
   comparator — so the choice is a pure throughput ablation. *)
type queue =
  | Q_heap of task Heap.t
  | Q_wheel of task Wheel.t

type t = {
  uid : int;  (* process-unique: lets side tables key off a simulation *)
  q : queue;
  mutable now : Time.ns;
  mutable seq : int;
  mutable live : int;
  mutable blocked : int;
  mutable stopped : bool;
  mutable executed : int;
  mutable tiebreak : tiebreak;
  mutable cur_fiber : string;
  mutable cur_fiber_id : int;  (* 0 = main; deterministic spawn order *)
  mutable next_fiber_id : int;
  mutable next_sync_uid : int;  (* Cond/Mailbox/Resource identities *)
  mutable hooks : hooks option;
  parked : (int, park) Hashtbl.t;
  mutable next_park : int;
  mutable free : task;  (* head of the recycled task-cell list *)
  mutable pooled : int;
}

exception Fiber_failure of string * exn

let compare_task a b =
  let c = compare a.time b.time in
  if c <> 0 then c
  else
    let c = compare a.pri b.pri in
    if c <> 0 then c else compare a.seq b.seq

let next_uid = ref 0

(* Module-level creation hook: the analysis layer attaches happens-before
   tracking to sims it cannot construct itself (scenarios build their own
   clusters deep inside [sc_run]). Unset in normal operation. *)
let create_hook : (t -> unit) option ref = ref None
let set_create_hook h = create_hook := h

let create ?(sched = `Heap) () =
  incr next_uid;
  let t = {
    uid = !next_uid;
    q =
      (match sched with
      | `Heap -> Q_heap (Heap.create ~cmp:compare_task)
      | `Wheel ->
        Q_wheel
          (Wheel.create ~dummy:dummy_task ~time:(fun tk -> tk.time)
             ~cmp:compare_task ()));
    now = 0;
    seq = 0;
    live = 0;
    blocked = 0;
    stopped = false;
    executed = 0;
    tiebreak = Fifo;
    cur_fiber = "main";
    cur_fiber_id = 0;
    next_fiber_id = 0;
    next_sync_uid = 0;
    hooks = None;
    parked = Hashtbl.create 16;
    next_park = 0;
    free = dummy_task;
    pooled = 0;
  }
  in
  (match !create_hook with None -> () | Some f -> f t);
  t

let uid t = t.uid
let now t = t.now
let blocked_fibers t = t.blocked
let live_fibers t = t.live
let events_executed t = t.executed
let stop t = t.stopped <- true
let current_fiber t = t.cur_fiber
let current_fiber_id t = t.cur_fiber_id
let sched t = match t.q with Q_heap _ -> `Heap | Q_wheel _ -> `Wheel

type tiebreak_spec =
  [ `Fifo | `Seeded_shuffle of int | `Controlled of (int array -> int) ]

let set_tiebreak t = function
  | `Fifo -> t.tiebreak <- Fifo
  | `Seeded_shuffle seed -> t.tiebreak <- Shuffle (Rng.create ~seed)
  | `Controlled choose -> t.tiebreak <- Controlled choose

let set_hooks t h = t.hooks <- h

let new_sync_uid t =
  t.next_sync_uid <- t.next_sync_uid + 1;
  t.next_sync_uid

let note_op t kind uid label =
  match t.hooks with None -> () | Some h -> h.on_op kind uid label

let blocked_report t =
  Hashtbl.fold
    (fun _ p acc ->
      { fiber = p.pk_fiber; label = p.pk_label; since = p.pk_since;
        daemon = p.pk_daemon }
      :: acc)
    t.parked []
  |> List.sort (fun a b ->
         let c = compare a.since b.since in
         if c <> 0 then c
         else
           let c = compare a.fiber b.fiber in
           if c <> 0 then c else compare a.label b.label)

(* Pool cap: beyond this, freed cells go to the GC instead — bounds the
   retained memory of a sim that briefly spiked its outstanding-event
   count. *)
let pool_max = 4096

let alloc_task t ~time ~pri ~seq ~run =
  let cell = t.free in
  if cell == dummy_task then { time; pri; seq; run; free_next = dummy_task }
  else begin
    t.free <- cell.free_next;
    t.pooled <- t.pooled - 1;
    cell.free_next <- dummy_task;
    cell.time <- time;
    cell.pri <- pri;
    cell.seq <- seq;
    cell.run <- run;
    cell
  end

let release_task t cell =
  cell.run <- nop;  (* drop the closure and everything it captured *)
  if t.pooled < pool_max then begin
    cell.free_next <- t.free;
    t.free <- cell;
    t.pooled <- t.pooled + 1
  end

let schedule t ~time run =
  if time < t.now then invalid_arg "Sim: scheduling in the past";
  t.seq <- t.seq + 1;
  let pri =
    match t.tiebreak with
    | Fifo | Controlled _ -> 0  (* Controlled: FIFO order inside a tie *)
    | Shuffle rng -> Rng.int rng 0x4000_0000
  in
  let cell = alloc_task t ~time ~pri ~seq:t.seq ~run in
  match t.q with
  | Q_heap h -> Heap.push h cell
  | Q_wheel w -> Wheel.push w cell

let at t time run = schedule t ~time run

type _ Effect.t +=
  | Delay : t * Time.ns -> unit Effect.t
  | Suspend : t * string * ((unit -> unit) -> unit) -> unit Effect.t

let delay t d = if d > 0 then Effect.perform (Delay (t, d))

let suspend t ?(label = "suspend") register =
  Effect.perform (Suspend (t, label, register))

let run_fiber t ~daemon ~fid name f =
  let open Effect.Deep in
  (* Exactly-once exit bookkeeping, shared by the normal return, an
     uncaught exception in the fiber body, and a failure inside a
     suspend registration — so [live] can never go stale on the failure
     path. *)
  let finished = ref false in
  let finish () =
    if not !finished then begin
      finished := true;
      t.live <- t.live - 1
    end
  in
  let body () =
    t.cur_fiber <- name;
    t.cur_fiber_id <- fid;
    (try f ()
     with e ->
       finish ();
       raise (Fiber_failure (name, e)));
    finish ()
  in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    function
    | Delay (t', d) ->
      Some
        (fun k ->
          assert (t' == t);
          schedule t ~time:(t.now + d) (fun () ->
              t.cur_fiber <- name;
              t.cur_fiber_id <- fid;
              continue k ()))
    | Suspend (t', label, register) ->
      Some
        (fun k ->
          assert (t' == t);
          t.blocked <- t.blocked + 1;
          t.next_park <- t.next_park + 1;
          let park_id = t.next_park in
          Hashtbl.replace t.parked park_id
            { pk_fiber = name; pk_label = label; pk_since = t.now;
              pk_daemon = daemon };
          let resumed = ref false in
          let unpark () =
            resumed := true;
            t.blocked <- t.blocked - 1;
            Hashtbl.remove t.parked park_id
          in
          let resume () =
            if not !resumed then begin
              unpark ();
              schedule t ~time:t.now (fun () ->
                  t.cur_fiber <- name;
                  t.cur_fiber_id <- fid;
                  continue k ())
            end
          in
          (* If registration itself raises, the fiber can never be
             resumed: undo the parking bookkeeping and account the fiber
             as dead before the exception escapes, or [blocked] (and
             [live]) would stay stale forever. *)
          match register resume with
          | () -> ()
          | exception e ->
            if not !resumed then unpark ();
            finish ();
            raise (Fiber_failure (name, e)))
    | _ -> None
  in
  match_with body () { retc = Fun.id; exnc = raise; effc }

let spawn_at t ?(name = "fiber") ?(daemon = false) time f =
  t.live <- t.live + 1;
  t.next_fiber_id <- t.next_fiber_id + 1;
  let fid = t.next_fiber_id in
  (match t.hooks with
  | None -> ()
  | Some h -> h.on_spawn ~parent:t.cur_fiber_id ~child:fid ~name);
  schedule t ~time (fun () -> run_fiber t ~daemon ~fid name f)

let spawn t ?name ?daemon f = spawn_at t ?name ?daemon t.now f

let q_peek t = match t.q with Q_heap h -> Heap.peek h | Q_wheel w -> Wheel.peek w
let q_pop t = match t.q with Q_heap h -> Heap.pop h | Q_wheel w -> Wheel.pop w
let q_push t cell =
  match t.q with Q_heap h -> Heap.push h cell | Q_wheel w -> Wheel.push w cell

(* Under [Controlled], every task sharing the minimum timestamp is popped
   and the chooser picks which runs next (by index into the seq array,
   which is in FIFO order since Controlled pri is always 0); the rest are
   re-inserted untouched. A singleton tie is not a decision point. Due
   tasks re-insert into the wheel's exact-order near-future heap, so
   push-back is order-safe on both schedulers. *)
let pop_controlled t first choose =
  let rec gather acc =
    match q_peek t with
    | Some tk when tk.time = first.time ->
      ignore (q_pop t);
      gather (tk :: acc)
    | _ -> List.rev acc
  in
  match gather [] with
  | [] -> first
  | rest ->
    let all = Array.of_list (first :: rest) in
    let idx = choose (Array.map (fun (tk : task) -> tk.seq) all) in
    let idx = if idx < 0 || idx >= Array.length all then 0 else idx in
    Array.iteri (fun i tk -> if i <> idx then q_push t tk) all;
    all.(idx)

let run ?until t =
  t.stopped <- false;
  let result = ref `Quiescent in
  let running = ref true in
  while !running do
    if t.stopped then begin
      result := `Stopped;
      running := false
    end
    else
      match q_peek t with
      | None ->
        result := `Quiescent;
        running := false
      | Some task -> (
        match until with
        | Some limit when task.time > limit ->
          t.now <- limit;
          result := `Time_limit;
          running := false
        | _ ->
          ignore (q_pop t);
          let task =
            match t.tiebreak with
            | Fifo | Shuffle _ -> task
            | Controlled choose -> pop_controlled t task choose
          in
          t.now <- task.time;
          t.executed <- t.executed + 1;
          (match t.hooks with
          | None -> ()
          | Some h -> h.on_dispatch ~seq:task.seq ~time:task.time);
          (* Recycle the cell before running: the closure is extracted
             first, so even a raising task doesn't leak its cell, and
             tasks the closure schedules can safely reuse it. *)
          let f = task.run in
          release_task t task;
          f ())
  done;
  !result
